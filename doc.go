// Package dooc is a Go reproduction of "An Out-of-Core Dataflow Middleware
// to Reduce the Cost of Large Scale Iterative Solvers" (Zhou, Saule,
// Aktulga, Yang, Ng, Maris, Vary, Çatalyürek — ICPP 2012).
//
// DOoC is a distributed task-based runtime with data-dependency tracking
// and out-of-core capabilities, built on a filter-stream dataflow
// middleware. This root package re-exports the library's primary API; the
// implementation lives in the internal packages:
//
//	internal/datacutter  filter-stream middleware (filters, streams, layouts)
//	internal/storage     distributed immutable block storage, LRU, I/O filters
//	internal/dag         task graphs derived from data in/outputs
//	internal/scheduler   global affinity + local data-aware scheduling
//	internal/core        the DOoC engine and the iterated-SpMV application
//	internal/sparse      CSR matrices, binary CRS files, generators, kernels
//	internal/lanczos     Lanczos eigensolver + tridiagonal/Jacobi solvers
//	internal/ci          toy Configuration-Interaction model (Section II)
//	internal/mfdn        in-core baseline + calibrated Hopper model
//	internal/perfmodel   testbed model regenerating Tables III/IV, Figs 6/7
//	internal/simnet      in-process cluster substrate with traffic ledger
//	internal/simclock    discrete-event clock + max-min fair-shared resources
//	internal/devices     Fig. 1 hierarchy, Carver SSD testbed, Hopper model
//
// See README.md for a tour, DESIGN.md for the architecture and experiment
// index, and EXPERIMENTS.md for paper-vs-reproduction numbers.
package dooc

import (
	"dooc/internal/core"
	"dooc/internal/lanczos"
	"dooc/internal/solvers"
	"dooc/internal/sparse"
)

// System is a running DOoC instance (an in-process cluster of nodes, each
// with a storage filter, I/O filters and computing filters).
type System = core.System

// Options configures NewSystem.
type Options = core.Options

// SpMVConfig describes an out-of-core iterated SpMV run.
type SpMVConfig = core.SpMVConfig

// SpMVResult carries an iterated SpMV outcome.
type SpMVResult = core.SpMVResult

// Operator is the out-of-core SpMV as a lanczos.Operator.
type Operator = core.Operator

// CSR is a sparse matrix in compressed sparse row format.
type CSR = sparse.CSR

// NewSystem builds and starts a DOoC system.
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// StageMatrix writes a matrix's K×K blocks into per-node scratch
// directories for out-of-core execution.
func StageMatrix(scratchRoot string, m *CSR, cfg SpMVConfig) error {
	return core.StageMatrix(scratchRoot, m, cfg)
}

// LoadMatrixInMemory stages blocks directly into a running system.
func LoadMatrixInMemory(sys *System, m *CSR, cfg SpMVConfig) error {
	return core.LoadMatrixInMemory(sys, m, cfg)
}

// RunIteratedSpMV executes out-of-core power iterations.
func RunIteratedSpMV(sys *System, cfg SpMVConfig, x0 []float64) (*SpMVResult, error) {
	return core.RunIteratedSpMV(sys, cfg, x0)
}

// Lanczos runs the k-step Lanczos eigensolver over any operator
// (in-core matrices via lanczos.MatrixOperator, or the out-of-core
// Operator above).
func Lanczos(op lanczos.Operator, opts lanczos.Options) (*lanczos.Result, error) {
	return lanczos.Solve(op, opts)
}

// BasisStore keeps Lanczos basis vectors in DOoC storage (spillable to
// scratch) instead of process memory.
type BasisStore = core.BasisStore

// ResumeIteratedSpMV runs a checkpointed iterated SpMV, resuming from the
// newest durable iterate found in the system's scratch layout.
func ResumeIteratedSpMV(sys *System, cfg SpMVConfig, x0 []float64) (*SpMVResult, int, error) {
	return core.ResumeIteratedSpMV(sys, cfg, x0)
}

// CG solves A x = b over any operator with the Conjugate Gradient method
// (see internal/solvers for Jacobi, power iteration, and Chebyshev).
func CG(op solvers.Operator, b []float64, opts solvers.CGOptions) ([]float64, solvers.Stats, error) {
	return solvers.CG(op, b, opts)
}
