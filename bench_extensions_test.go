// Benchmarks for the paper's proposed-future-work extensions implemented in
// this reproduction: additional solver kernels (Section VII), the local-SSD
// configuration (Section VI-A), and the energy study (Section VI-B).
package dooc

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"dooc/internal/core"
	"dooc/internal/energy"
	"dooc/internal/lanczos"
	"dooc/internal/perfmodel"
	"dooc/internal/solvers"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// benchSPD builds a diagonally dominant symmetric matrix for solver benches.
func benchSPD(b *testing.B, n int, seed int64) *sparse.CSR {
	b.Helper()
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: n, Cols: n, D: 4, Seed: seed, Symmetric: true})
	if err != nil {
		b.Fatal(err)
	}
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		row := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.ColIdx[k]) != i {
				row += math.Abs(m.Val[k])
			}
			ts = append(ts, sparse.Triplet{Row: i, Col: int(m.ColIdx[k]), Val: m.Val[k]})
		}
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: row + 1})
	}
	spd, err := sparse.FromTriplets(n, n, ts)
	if err != nil {
		b.Fatal(err)
	}
	return spd
}

// BenchmarkSolverKernels compares the iterative kernels on one SPD system
// (iterations-to-convergence is the reported metric).
func BenchmarkSolverKernels(b *testing.B) {
	const n = 2000
	m := benchSPD(b, n, 1)
	rng := rand.New(rand.NewSource(2))
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = m.At(i, i)
	}
	op := lanczos.MatrixOperator{M: m, Workers: 2}

	b.Run("CG", func(b *testing.B) {
		var st solvers.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = solvers.CG(op, rhs, solvers.CGOptions{Tol: 1e-8})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.Iterations), "iters")
	})
	b.Run("Jacobi", func(b *testing.B) {
		var st solvers.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = solvers.Jacobi(op, rhs, solvers.JacobiOptions{Diag: diag, Tol: 1e-8})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.Iterations), "iters")
	})
	b.Run("Chebyshev", func(b *testing.B) {
		// Spectral bounds via a short Lanczos run.
		res, err := lanczos.Solve(op, lanczos.Options{Steps: 30, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		lmin := res.Eigenvalues[0] * 0.9
		lmax := res.Eigenvalues[len(res.Eigenvalues)-1] * 1.1
		var st solvers.Stats
		for i := 0; i < b.N; i++ {
			_, st, err = solvers.Chebyshev(op, rhs, solvers.ChebyshevOptions{LMin: lmin, LMax: lmax, Tol: 1e-8, MaxIter: 20000})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.Iterations), "iters")
	})
}

// BenchmarkExtensionLocalSSD quantifies the Section VI-A what-if.
func BenchmarkExtensionLocalSSD(b *testing.B) {
	var ioNode, local perfmodel.Row
	for i := 0; i < b.N; i++ {
		ioNode = perfmodel.Star()
		local = perfmodel.Run(energy.LocalSSDExperiment())
	}
	b.ReportMetric(ioNode.TimeSeconds/local.TimeSeconds, "speedup")
	b.ReportMetric(local.CPUHoursPerIter, "cpu-h/iter")
	b.ReportMetric(local.GFlops, "gflops")
}

// BenchmarkExtensionEnergy reports the Section VI-B energy comparison.
func BenchmarkExtensionEnergy(b *testing.B) {
	var reports []energy.Report
	for i := 0; i < b.N; i++ {
		reports = energy.Study()
	}
	for _, r := range reports {
		var key string
		switch {
		case r.Name[:7] == "testbed" && r.Name[8] == '3':
			key = "kJ-testbed36"
		case r.Name[:7] == "testbed":
			key = "kJ-star9"
		case r.Name[:5] == "local":
			key = "kJ-localSSD"
		default:
			key = "kJ-hopper"
		}
		b.ReportMetric(r.KJPerIter, key)
	}
}

// BenchmarkAblationDispersion sweeps the shared-GPFS variability parameter,
// quantifying how much of the simple policy's non-overlapped time is pure
// straggler effect (supports the EXPERIMENTS.md discussion).
func BenchmarkAblationDispersion(b *testing.B) {
	for _, disp := range []float64{0, 0.25, 0.5} {
		b.Run(fmt.Sprintf("dispersion=%.2f", disp), func(b *testing.B) {
			var r perfmodel.Row
			for i := 0; i < b.N; i++ {
				cfg := perfmodel.Experiment(36, perfmodel.PolicySimple)
				cfg.Testbed.BWDispersion = disp
				r = perfmodel.Run(cfg)
			}
			b.ReportMetric(r.TimeSeconds, "time-s")
			b.ReportMetric(100*r.NonOverlapped, "nonoverlap%")
		})
	}
}

// BenchmarkAblationIOWorkers sweeps the number of asynchronous I/O filters
// per node (the paper: "There should be as many I/O filters as is necessary
// to efficiently use the parallelism contained in the I/O subsystem").
func BenchmarkAblationIOWorkers(b *testing.B) {
	const dim, k = 3000, 5
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 6, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	root := b.TempDir()
	cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 2, Nodes: 1}
	if err := core.StageMatrix(root, m, cfg); err != nil {
		b.Fatal(err)
	}
	x0 := make([]float64, dim)
	x0[0] = 1
	for _, io := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("iofilters=%d", io), func(b *testing.B) {
			sys, err := core.NewSystem(core.Options{
				Nodes: 1, WorkersPerNode: 2, ScratchRoot: root,
				MemoryBudget: 1 << 22, PrefetchWindow: 4, Reorder: true, IOWorkers: io,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Tag = fmt.Sprintf("io%d-%d", io, i)
				if _, err := core.RunIteratedSpMV(sys, c, x0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSplitWays sweeps the task-splitting factor on a
// multi-worker node (paper §III-C: decompose tasks to match node
// parallelism).
func BenchmarkAblationSplitWays(b *testing.B) {
	const dim, k = 4000, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 4, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for _, ways := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			// The decode cache is what makes fine-grained splitting pay:
			// without it every sub-task re-decodes the whole block.
			sys, err := core.NewSystem(core.Options{
				Nodes: 1, WorkersPerNode: 4, Reorder: true,
				DecodeCacheBytes: 64 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 2, Nodes: 1, SplitWays: ways}
			if err := core.LoadMatrixInMemory(sys, m, cfg); err != nil {
				b.Fatal(err)
			}
			x0 := make([]float64, dim)
			x0[0] = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Tag = fmt.Sprintf("w%d-%d", ways, i)
				if _, err := core.RunIteratedSpMV(sys, c, x0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEvictionPolicy quantifies DESIGN.md decision 2: on the
// iterated SpMV access pattern, MRU eviction is the theoretical winner for
// FIFO-ordered cyclic scans, and the back-and-forth reordering is what
// makes plain LRU competitive — the scheduling insight of the paper's
// Fig. 5 expressed as cache policy.
func BenchmarkAblationEvictionPolicy(b *testing.B) {
	const dim, k = 2400, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 4, Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name     string
		reorder  bool
		eviction storage.EvictionPolicy
	}{
		{"fifo-order+LRU", false, storage.EvictLRU},
		{"fifo-order+MRU", false, storage.EvictMRU},
		{"backandforth+LRU", true, storage.EvictLRU},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var bytesRead int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				root, err := os.MkdirTemp("", "evict")
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 4, Nodes: 1}
				if err := core.StageMatrix(root, m, cfg); err != nil {
					b.Fatal(err)
				}
				info, err := core.DiscoverStagedMatrix(root)
				if err != nil {
					b.Fatal(err)
				}
				sys, err := core.NewSystem(core.Options{
					Nodes: 1, ScratchRoot: root,
					MemoryBudget: info.Bytes/int64(k*k)*5/2 + 1<<15, // ~2.5 blocks
					Reorder:      tc.reorder,
					Eviction:     tc.eviction,
				})
				if err != nil {
					b.Fatal(err)
				}
				x0 := make([]float64, dim)
				x0[0] = 1
				b.StartTimer()
				res, err := core.RunIteratedSpMV(sys, cfg, x0)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				bytesRead = res.Stats.BytesReadDisk()
				sys.Close()
				os.RemoveAll(root)
			}
			b.ReportMetric(float64(bytesRead)/1e6, "disk-MB/run")
		})
	}
}
