package dooc

import (
	"math"
	"math/rand"
	"testing"

	"dooc/internal/lanczos"
	"dooc/internal/sparse"
)

// TestFacadeEndToEnd exercises the public facade exactly as README's
// quickstart describes: stage a matrix, run iterated SpMV, run Lanczos over
// the out-of-core operator.
func TestFacadeEndToEnd(t *testing.T) {
	const dim = 36
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 3, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: 3, Iters: 2, Nodes: 2}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 16,
		PrefetchWindow: 1,
		Reorder:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	rng := rand.New(rand.NewSource(1))
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference.
	ref := append([]float64(nil), x0...)
	tmp := make([]float64, dim)
	for i := 0; i < 2; i++ {
		sparse.MulVec(m, ref, tmp)
		ref, tmp = tmp, ref
	}
	for i := range ref {
		if math.Abs(res.X[i]-ref[i]) > 1e-10 {
			t.Fatalf("X[%d] = %v, want %v", i, res.X[i], ref[i])
		}
	}

	// Lanczos over the facade operator.
	op := &Operator{Sys: sys, Cfg: cfg}
	lres, err := Lanczos(op, lanczos.Options{Steps: dim, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lanczos.JacobiEigen(m.Dense(), dim)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lres.Eigenvalues[0]-want[0]) > 1e-7*(1+math.Abs(want[0])) {
		t.Fatalf("lowest eig %v vs dense %v", lres.Eigenvalues[0], want[0])
	}
}

// TestFacadeInMemoryStaging covers the LoadMatrixInMemory path.
func TestFacadeInMemoryStaging(t *testing.T) {
	const dim = 20
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 2, Iters: 1, Nodes: 1}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, dim)
	x0[0] = 1
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, dim)
	sparse.MulVec(m, x0, want)
	for i := range want {
		if res.X[i] != want[i] {
			t.Fatalf("X[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
}
