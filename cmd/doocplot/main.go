// Command doocplot regenerates the paper's figures as SVG files:
//
//	fig5a.svg / fig5b.svg — the Fig. 5 Gantt charts (regular vs back-and-
//	                        forth), produced from the real scheduler policy
//	fig6.svg              — runtime relative to optimal I/O time
//	fig7.svg              — CPU-hours per iteration vs problem size, with
//	                        the 9-node "star" annotated
//
// Usage:
//
//	doocplot -out ./figures
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"dooc/internal/ci"
	"dooc/internal/dag"
	"dooc/internal/mfdn"
	"dooc/internal/perfmodel"
	"dooc/internal/scheduler"
	"dooc/internal/spmv"
	"dooc/internal/svgplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocplot: ")
	out := flag.String("out", "figures", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := fig5(*out); err != nil {
		log.Fatal(err)
	}
	if err := fig6(*out); err != nil {
		log.Fatal(err)
	}
	if err := fig7(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote fig5a.svg fig5b.svg fig6.svg fig7.svg to %s\n", *out)
}

func writeSVG(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fig5(dir string) error {
	cfg := spmv.ProgramConfig{K: 3, Iters: 2, SubBytes: 1000, VecBytes: 8}
	costs := scheduler.Costs{LoadSecondsPerByte: 0.003, RunSeconds: func(*dag.Task) float64 { return 1 }}
	for _, mode := range []struct {
		file, title string
		reorder     bool
	}{
		{"fig5a.svg", "Fig. 5(a) Regular — 3 loads/node/iteration", false},
		{"fig5b.svg", "Fig. 5(b) Back and forth — 3 then 2 loads/node/iteration", true},
	} {
		g, err := spmv.Graph(cfg)
		if err != nil {
			return err
		}
		plan, err := scheduler.Simulate(g, spmv.RowAssignment(cfg), cfg.K, cfg.SubBytes, mode.reorder, costs)
		if err != nil {
			return err
		}
		gantt := svgplot.Gantt{Title: mode.title, Lanes: []string{"P1", "P2", "P3"}}
		for _, op := range plan.Ops {
			label := op.Task
			bold := false
			if op.Kind == scheduler.OpLoad {
				label = "L(" + op.Ref.Array + ")"
				bold = true
			}
			gantt.Ops = append(gantt.Ops, svgplot.GanttOp{
				Lane: op.Node, Start: op.Start, End: op.End, Label: label, Bold: bold,
			})
		}
		if err := writeSVG(filepath.Join(dir, mode.file), gantt.Render); err != nil {
			return err
		}
	}
	return nil
}

func fig6(dir string) error {
	t3, t4 := perfmodel.Table3(), perfmodel.Table4()
	mk := func(rows []perfmodel.Row) ([]float64, []float64) {
		var xs, ys []float64
		for _, r := range rows {
			xs = append(xs, float64(r.Nodes))
			ys = append(ys, r.RelativeToOptimal())
		}
		return xs, ys
	}
	x3, y3 := mk(t3)
	x4, y4 := mk(t4)
	chart := svgplot.Chart{
		Title:  "Fig. 6 — runtime relative to optimal I/O time (20 GB/s peak)",
		XLabel: "compute nodes",
		YLabel: "time / optimal-I/O time",
		LogY:   true,
		Series: []svgplot.Series{
			{Name: "(a) simple policy", X: x3, Y: y3, Marker: true},
			{Name: "(b) interleaved", X: x4, Y: y4, Marker: true},
		},
	}
	return writeSVG(filepath.Join(dir, "fig6.svg"), chart.Render)
}

func fig7(dir string) error {
	var sx, sy []float64
	for _, r := range perfmodel.Table4() {
		sx = append(sx, r.SizeTB)
		sy = append(sy, r.CPUHoursPerIter)
	}
	var hx, hy []float64
	for i, r := range mfdn.ModelTable2() {
		t1 := ci.ReferenceTable1[i]
		// Problem size in TB: nnz at ~8 bytes/element.
		hx = append(hx, t1.NNZ*8/1e12)
		hy = append(hy, r.CPUHoursPerIter)
	}
	star := perfmodel.Star()
	chart := svgplot.Chart{
		Title:  "Fig. 7 — CPU-hours per iteration: SSD testbed vs Hopper",
		XLabel: "problem size (TB)",
		YLabel: "CPU-hours per iteration",
		LogY:   true,
		Series: []svgplot.Series{
			{Name: "DOoC on SSD testbed", X: sx, Y: sy, Marker: true},
			{Name: "MFDn on Hopper (model)", X: hx, Y: hy, Marker: true, Dashed: true},
		},
		Annotations: []svgplot.Annotation{{
			X: star.SizeTB, Y: star.CPUHoursPerIter,
			Text: fmt.Sprintf("star: 9 nodes, %.2f CPU-h", star.CPUHoursPerIter),
		}},
	}
	return writeSVG(filepath.Join(dir, "fig7.svg"), chart.Render)
}
