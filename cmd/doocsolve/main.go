// Command doocsolve runs an iterative solver over a staged out-of-core
// matrix: Lanczos eigenvalues (default), CG or Jacobi linear solves, or the
// power method — every matrix application executing through the DOoC
// middleware.
//
// Usage:
//
//	doocgen  -out /tmp/stage -dim 4000 -nnz 400000 -k 4 -nodes 2 -symmetric
//	doocsolve -dir /tmp/stage -solver lanczos -steps 30 -want 4
//	doocsolve -dir /tmp/stage -solver cg
//	doocsolve -dir /tmp/stage -solver power
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"dooc/internal/core"
	"dooc/internal/lanczos"
	"dooc/internal/solvers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocsolve: ")
	var (
		dir      = flag.String("dir", "", "staged matrix directory (required)")
		solver   = flag.String("solver", "lanczos", "lanczos | cg | jacobi | power")
		steps    = flag.Int("steps", 30, "lanczos: Krylov steps")
		want     = flag.Int("want", 4, "lanczos: eigenvalues to print")
		tol      = flag.Float64("tol", 1e-8, "cg/jacobi/power: tolerance")
		maxIter  = flag.Int("maxiter", 5000, "cg/jacobi/power: iteration cap")
		mem      = flag.Int64("mem", 1<<28, "per-node memory budget in bytes")
		workers  = flag.Int("workers", 2, "computing filters per node")
		prefetch = flag.Int("prefetch", 2, "prefetch window")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	info, err := core.DiscoverStagedMatrix(*dir)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("staged matrix: dim=%d K=%d nodes=%d nnz=%d", info.Dim, info.K, info.Nodes, info.NNZ)
	sys, err := core.NewSystem(core.Options{
		Nodes:          info.Nodes,
		WorkersPerNode: *workers,
		MemoryBudget:   *mem,
		ScratchRoot:    *dir,
		PrefetchWindow: *prefetch,
		Reorder:        true,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	op := &core.Operator{Sys: sys, Cfg: core.SpMVConfig{Dim: info.Dim, K: info.K, Iters: 1, Nodes: info.Nodes}}

	rng := rand.New(rand.NewSource(*seed))
	rhs := make([]float64, info.Dim)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}

	switch *solver {
	case "lanczos":
		// The Krylov basis also lives in storage, spilled to scratch.
		basis := &core.BasisStore{Store: sys.Store(0), Spill: true}
		defer basis.Close()
		res, err := lanczos.Solve(op, lanczos.Options{Steps: *steps, Seed: *seed, Basis: basis})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lanczos: %d steps, %d SpMV programs, %d spilled basis vectors\n",
			res.Steps, res.SpMVs, basis.Len())
		for i, ev := range res.Lowest(*want) {
			fmt.Printf("  eig[%d] = %.10g  (residual ~ %.2e)\n", i, ev, res.Residuals[i])
		}
	case "cg":
		x, st, err := solvers.CG(op, rhs, solvers.CGOptions{Tol: *tol, MaxIter: *maxIter})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cg: converged=%v iters=%d relative-residual=%.2e ||x||=%.6g\n",
			st.Converged, st.Iterations, st.Residual, norm(x))
	case "jacobi":
		// The operator hides entries; approximate D from probing e_i would
		// cost dim SpMVs, so require the staged matrix to be diagonally
		// dominant with the generator's unit-ish diagonal. For general use,
		// prefer cg.
		diag := make([]float64, info.Dim)
		for i := range diag {
			diag[i] = 1
		}
		x, st, err := solvers.Jacobi(op, rhs, solvers.JacobiOptions{Diag: diag, Tol: *tol, MaxIter: *maxIter})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("jacobi: converged=%v iters=%d residual=%.2e ||x||=%.6g\n",
			st.Converged, st.Iterations, st.Residual, norm(x))
	case "power":
		lambda, _, st, err := solvers.Power(op, solvers.PowerOptions{Tol: *tol, MaxIter: *maxIter})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("power: converged=%v iters=%d dominant eigenvalue=%.10g\n", st.Converged, st.Iterations, lambda)
	default:
		log.Fatalf("unknown solver %q", *solver)
	}
	var disk int64
	for n := 0; n < sys.Nodes(); n++ {
		disk += sys.Store(n).Stats().BytesReadDisk
	}
	fmt.Printf("out-of-core traffic: %.1f MB disk, %.2f MB network\n",
		float64(disk)/1e6, float64(sys.Cluster().TotalNetworkBytes())/1e6)
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
