package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dooc/internal/core"
	"dooc/internal/jobs"
	"dooc/internal/jobstore"
	"dooc/internal/sparse"
)

// durableRun measures the durable job control plane's kill-and-recover
// story. It reconstructs, in-process, exactly the on-disk state a kill -9
// leaves behind: a journal whose last acked transitions are the job's
// submit and running records, and a scratch tree holding the checkpoints
// the job flushed before dying (plus its dead segment arrays). A fresh
// store and system are then brought up over the same directories, recovery
// re-admits the job, and it resumes from its newest checkpoint. The
// experiment reports the journal replay time, the iterations the
// checkpoint saved, and — the acceptance bar — that the recovered result
// is bit-identical to an uninterrupted run. It also re-submits with the
// original idempotency key and checks the duplicate lands on the recovered
// job instead of starting a second one.
func durableRun() error {
	const (
		dim     = 2400
		k       = 3
		nodes   = 2
		iters   = 24
		seed    = 11
		crashAt = 6 // crash once this many iterations are checkpointed
	)
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 8, Seed: 7})
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "doocbench-durable")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	base := core.SpMVConfig{Dim: dim, K: k, Nodes: nodes}
	stage := base
	stage.Iters = 1
	if err := core.StageMatrix(root, m, stage); err != nil {
		return err
	}
	storeDir := filepath.Join(root, "ctrl")
	newSys := func() (*core.System, error) {
		return core.NewSystem(core.Options{
			Nodes:          nodes,
			WorkersPerNode: 2,
			MemoryBudget:   1 << 28,
			ScratchRoot:    root,
			Obs:            benchObs,
		})
	}

	// Reference: the same solve, uninterrupted, on a clean system.
	refSys, err := newSys()
	if err != nil {
		return err
	}
	refCfg := base
	refCfg.Iters = iters
	refCfg.Tag = "ref"
	refStart := time.Now()
	refRes, err := core.RunIteratedSpMV(refSys, refCfg, jobs.StartVector(dim, seed))
	if err != nil {
		refSys.Close()
		return fmt.Errorf("reference run: %w", err)
	}
	refWall := time.Since(refStart)
	core.DeleteSpMVArrays(refSys, refCfg)
	refSys.Close()
	refPayload := jobs.EncodeFloat64s(refRes.X)
	refSHA := sha256.Sum256(refPayload)

	// Victim: reconstruct the crash. Run the job's checkpointed solve only
	// to crashAt iterations — producing the same scratch state (checkpoint
	// files job1:x_1.._crashAt plus the dead segment's job1@0: arrays, left
	// undeleted) a process killed at that point leaves behind.
	const (
		jobID = 1
		key   = "exp-durable"
	)
	sys1, err := newSys()
	if err != nil {
		return err
	}
	crashCfg := base
	crashCfg.Iters = crashAt
	crashCfg.Tag = fmt.Sprintf("job%d", jobID)
	if _, _, err := core.ResumeIteratedSpMV(sys1, crashCfg, jobs.StartVector(dim, seed)); err != nil {
		sys1.Close()
		return fmt.Errorf("victim segment: %w", err)
	}
	sys1.Close()
	ckCfg := base
	ckCfg.Iters = iters
	ckCfg.Tag = crashCfg.Tag
	ck, err := core.LatestCheckpoint(root, ckCfg)
	if err != nil || ck == nil {
		return fmt.Errorf("no checkpoint on disk after the victim segment: %v", err)
	}
	ckIter := ck.Iter
	// Journal the transitions the manager had acked before the kill: the
	// keyed submission and its promotion to running. Abort freezes the WAL
	// without compaction — the durable state is the last acked append, with
	// the job still "running".
	store1, err := jobstore.Open(storeDir, jobstore.Options{Obs: benchObs})
	if err != nil {
		return err
	}
	jrec := jobstore.Record{
		ID:          jobID,
		Key:         key,
		Tenant:      "alice",
		Payload:     []byte(fmt.Sprintf(`{"iters":%d,"seed":%d}`, iters, seed)),
		State:       "queued",
		SubmittedAt: time.Now(),
	}
	if err := store1.Append(jrec); err != nil {
		return fmt.Errorf("journaling submit: %w", err)
	}
	jrec.State = "running"
	jrec.StartedAt = time.Now()
	if err := store1.Append(jrec); err != nil {
		return fmt.Errorf("journaling running: %w", err)
	}
	store1.Abort()

	// Recovery: fresh store and system over the same directories.
	recoverStart := time.Now()
	store2, err := jobstore.Open(storeDir, jobstore.Options{Obs: benchObs})
	if err != nil {
		return fmt.Errorf("reopening store: %w", err)
	}
	defer store2.Close()
	sys2, err := newSys()
	if err != nil {
		return err
	}
	defer sys2.Close()
	svc2 := jobs.NewSolverService(sys2, base, jobs.Config{MaxRunning: 1, QueueDepth: 4, Obs: benchObs, Store: store2})
	rec, err := svc2.Recover()
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	if rec.Resumed != 1 {
		return fmt.Errorf("recovery resumed %d jobs, want 1", rec.Resumed)
	}
	// Exactly-once: the original submission key lands on the recovered job.
	dup, err := svc2.Submit(jobs.SolveRequest{Tenant: "alice", Iters: iters, Seed: seed, Key: key})
	if err != nil {
		return fmt.Errorf("duplicate submit: %w", err)
	}
	if dup.ID != jobID {
		return fmt.Errorf("duplicate keyed submit created job %d, original was %d", dup.ID, jobID)
	}
	data, err := svc2.Manager.Result(jobID)
	if err != nil {
		return fmt.Errorf("recovered job: %w", err)
	}
	recoverWall := time.Since(recoverStart)
	gotSHA := sha256.Sum256(data)
	final, _ := svc2.Manager.Status(jobID)
	saved := benchObs.Sum("dooc_jobs_resume_iters_saved_total")

	fmt.Printf("durable job control plane: kill mid-run, recover, resume (dim=%d K=%d nodes=%d, %d iterations)\n\n", dim, k, nodes, iters)
	fmt.Printf("%-34s %14v\n", "uninterrupted run wall", refWall.Round(time.Millisecond))
	fmt.Printf("%-34s %14d\n", "checkpointed iteration at crash", ckIter)
	fmt.Printf("%-34s %14v\n", "journal replay at reboot", rec.ReplayDuration.Round(time.Microsecond))
	fmt.Printf("%-34s %14v\n", "crash-to-result wall", recoverWall.Round(time.Millisecond))
	fmt.Printf("%-34s %14d  (%.0f%% of the job)\n", "iterations saved by checkpoint", int(saved), 100*float64(saved)/float64(iters))
	fmt.Printf("%-34s %14d\n", "times resumed", final.Resumed)
	fmt.Printf("%-34s %14s\n", "duplicate keyed submit", "deduplicated")
	ident := "YES"
	if !bytes.Equal(refPayload, data) {
		ident = "NO"
	}
	fmt.Printf("%-34s %14s\n", "result bit-identical to reference", ident)
	fmt.Printf("\nreference sha256  %x\n", refSHA)
	fmt.Printf("recovered sha256  %x\n", gotSHA)
	if ident != "YES" {
		return fmt.Errorf("recovered result differs from uninterrupted reference")
	}
	fmt.Println("\nThe journal made the restart invisible to the client: the job kept its")
	fmt.Println("ID and key, recomputed only the iterations after its newest checkpoint,")
	fmt.Println("and produced the same bits an uninterrupted run does.")
	return nil
}
