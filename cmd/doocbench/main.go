// Command doocbench regenerates every table and figure of the paper's
// evaluation, printing reproduced values side by side with the published
// ones. EXPERIMENTS.md is a captured run of `doocbench -exp all`.
//
// Usage:
//
//	doocbench -exp all
//	doocbench -exp table3
//	doocbench -exp fig5
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"dooc/internal/ci"
	"dooc/internal/core"
	"dooc/internal/dag"
	"dooc/internal/datacutter"
	"dooc/internal/devices"
	"dooc/internal/energy"
	"dooc/internal/faults"
	"dooc/internal/mfdn"
	"dooc/internal/obs"
	"dooc/internal/perfmodel"
	"dooc/internal/remote"
	"dooc/internal/scheduler"
	"dooc/internal/sparse"
	"dooc/internal/spmv"
	"dooc/internal/storage"
)

var experiments = []struct {
	name string
	desc string
	run  func() error
}{
	{"table1", "CI problem characteristics (reference + toy-model growth)", table1},
	{"table2", "MFDn on Hopper: modeled vs published", table2},
	{"table3", "SSD testbed, simple scheduling policy", table3},
	{"table4", "SSD testbed, interleaved policy + local aggregation", table4},
	{"fig1", "memory hierarchy", fig1},
	{"fig34", "SpMV command list and dependency DAG (K=3, 2 iterations)", fig34},
	{"fig5", "Gantt: regular vs back-and-forth schedules", fig5},
	{"fig6", "runtime relative to 20 GB/s-optimal I/O time", fig6},
	{"fig7", "CPU-hour cost: SSD testbed vs Hopper (incl. the star run)", fig7},
	{"real", "real out-of-core execution on this machine (small scale)", realRun},
	{"hdd", "EXTENSION (paper §I): the same workload on HDD-era storage", hddRun},
	{"remote", "I/O-node separation over real TCP on this machine", remoteRun},
	{"localssd", "EXTENSION (paper §VI-A): SSDs on compute nodes, what-if", localSSD},
	{"energy", "EXTENSION (paper §VI-B): energy per iteration, testbed vs Hopper", energyStudy},
	{"faults", "EXTENSION: fault injection — recovery overhead and node-failure re-execution", faultsRun},
	{"codec", "EXTENSION: adaptive block compression — scratch, staged files, and wire", codecRun},
	{"streams", "filter-stream middleware traffic (DataCutter substrate)", streamsRun},
	{"jobs", "EXTENSION: multi-tenant job service — serial vs concurrent, bit-identical", jobsRun},
	{"durable", "EXTENSION: durable control plane — kill mid-job, replay journal, resume from checkpoint", durableRun},
	{"hotpath", "EXTENSION: allocation/GC cost of the steady-state data path", hotpathRun},
	{"cluster", "EXTENSION: peer-to-peer sharded storage — 1 vs 3 real TCP peers, bit-identical", clusterRun},
	{"proxy", "EXTENSION: proxy-object result plane — by-value vs by-reference fan-out, chained dataflow", proxyRun},
}

// faultRate is the -faults flag: when > 0, the `real` experiment also runs
// under a seeded injector at that I/O-error rate so the recovery overhead is
// visible next to the clean numbers.
var faultRate float64

// benchObs collects every layer's counters for the -metrics snapshot; it is
// always live (the registry is cheap), printed only when asked.
var benchObs = obs.NewRegistry()

// benchTrace is non-nil when -trace is set; instrumented experiments record
// task spans into it and main writes the Chrome trace JSON on exit.
var benchTrace *obs.Tracer

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocbench: ")
	exp := flag.String("exp", "all", "experiment to run (all, table1..4, fig1, fig34, fig5..7, real, faults, streams)")
	flag.Float64Var(&faultRate, "faults", 0, "transient I/O fault rate injected into the `real` experiment (0 disables; try 0.1)")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (Prometheus text format) after the run")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (load in perfetto or chrome://tracing)")
	flag.StringVar(&benchOut, "bench-out", "", "write the hotpath experiment's machine-readable result JSON here")
	flag.StringVar(&gateRef, "gate", "", "perf regression gate: reference BENCH_hotpath.json; fail unless result_sha256 matches and allocs_per_iter stays under -gate-allocs")
	flag.Float64Var(&gateAllocs, "gate-allocs", 1100, "allocs_per_iter ceiling enforced by -gate (0 disables the allocation check)")
	flag.StringVar(&proxyBenchOut, "proxy-bench-out", "", "write the proxy experiment's machine-readable result JSON here")
	flag.Parse()
	if *tracePath != "" {
		benchTrace = obs.NewTracer()
	}
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	if *exp == "all" {
		for _, e := range experiments {
			fmt.Printf("\n============ %s — %s ============\n\n", e.name, e.desc)
			run(e.name, e.run)
		}
	} else {
		found := false
		for _, e := range experiments {
			if e.name == *exp {
				run(e.name, e.run)
				found = true
				break
			}
		}
		if !found {
			log.Printf("unknown experiment %q", *exp)
			os.Exit(2)
		}
	}
	if *metrics {
		printMetricsSnapshot(benchObs)
	}
	if *tracePath != "" {
		if err := benchTrace.WriteFile(*tracePath); err != nil {
			log.Fatalf("trace: %v", err)
		}
		log.Printf("wrote %d trace events to %s", benchTrace.Len(), *tracePath)
	}
}

// printMetricsSnapshot summarizes the registry (cache and prefetch hit
// rates, per-node task counts) and then dumps the full exposition.
func printMetricsSnapshot(reg *obs.Registry) {
	fmt.Println("\n============ metrics snapshot ============")
	hits := reg.Sum("dooc_storage_cache_hits_total")
	misses := reg.Sum("dooc_storage_cache_misses_total")
	if total := hits + misses; total > 0 {
		fmt.Printf("storage cache hit rate: %.1f%% (%d hits, %d misses)\n",
			100*float64(hits)/float64(total), hits, misses)
	}
	loads := reg.Sum("dooc_storage_prefetch_loads_total")
	phits := reg.Sum("dooc_storage_prefetch_hits_total")
	if loads > 0 {
		fmt.Printf("prefetch hit rate: %.1f%% (%d of %d prefetched blocks were hit)\n",
			100*float64(phits)/float64(loads), phits, loads)
	}
	var taskLines []string
	for _, s := range reg.Snapshot() {
		if s.Name != "dooc_engine_tasks_completed_total" {
			continue
		}
		node := "?"
		for _, l := range s.Labels {
			if l.Key == "node" {
				node = l.Value
			}
		}
		taskLines = append(taskLines, fmt.Sprintf("node %s: %d", node, s.Value))
	}
	if len(taskLines) > 0 {
		sort.Strings(taskLines)
		fmt.Printf("tasks completed per node: %s\n", strings.Join(taskLines, ", "))
	}
	fmt.Println("\nfull exposition:")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		log.Printf("metrics: %v", err)
	}
}

func table1() error {
	fmt.Println("Published Table I (10B, MFDn on Hopper):")
	fmt.Println("  test        (Nmax,Mj)   D(H)       nnz(H)     n_p     v_local  H_local")
	for _, r := range ci.ReferenceTable1 {
		fmt.Printf("  %-11s (%d,%d)      %.2e   %.2e   %-6d  %.1f MB  %.0f MB\n",
			r.Name, r.Nmax, r.Mj, r.Dim, r.NNZ, r.Np, r.VLocalMB, r.HLocalMB)
	}
	fmt.Println("\nToy CI model (A=3 fermions, Mj=1/2), the same exponential growth at laptop scale:")
	rows, err := ci.ToyScaling(3, 1, []int{0, 1, 2, 3, 4}, 1)
	if err != nil {
		return err
	}
	fmt.Println("  Nmax   D        nnz       density")
	for _, r := range rows {
		fmt.Printf("  %-4d   %-6d   %-8d  %.4f\n", r.Nmax, r.Dim, r.NNZ, r.Density)
	}
	fmt.Println("\nTwo-species toy model (Z=2 protons, N=2 neutrons, Mj=0 — the 10B structure in miniature):")
	fmt.Println("  Nmax   D        nnz       density")
	for _, nmax := range []int{0, 1, 2} {
		b, err := ci.BuildTwoSpeciesBasis(ci.TwoSpeciesConfig{Z: 2, N: 2, Nmax: nmax, M2: 0})
		if err != nil {
			return err
		}
		h, err := ci.TwoSpeciesHamiltonian(b, ci.HamiltonianConfig{Seed: 1})
		if err != nil {
			return err
		}
		d := float64(b.Dim())
		fmt.Printf("  %-4d   %-6d   %-8d  %.4f\n", nmax, b.Dim(), h.NNZ(), float64(h.NNZ())/(d*d))
	}
	fmt.Println("\nMemory-driven processor counts (paper: minimum processors matching memory needs):")
	for _, r := range ci.ReferenceTable1 {
		fmt.Printf("  %-11s modeled np = %-6d published np = %d\n",
			r.Name, ci.RequiredProcessors(r.NNZ, 8, r.HLocalMB), r.Np)
	}
	return nil
}

func table2() error {
	fmt.Println("Table II: 99 Lanczos iterations of MFDn on Hopper (model vs published).")
	fmt.Println("  test         np      t_total(s)        comm%            CPU-h/iter")
	fmt.Println("                       model  published  model published  model published")
	for _, r := range mfdn.ModelTable2() {
		fmt.Printf("  %-12s %-6d  %-6.0f %-9.0f  %-5.0f %-9.0f  %-6.2f %-6.2f\n",
			r.Name, r.Np, r.TotalSeconds99, r.PubTotalSeconds,
			100*r.CommFraction, 100*r.PubCommFraction,
			r.CPUHoursPerIter, r.PubCPUHours)
	}
	return nil
}

func tablePrint(rows []perfmodel.Row, pub []perfmodel.PubRow, cpuHours bool) {
	fmt.Println("  nodes  dim    nnz      size    time(s)          GFlop/s       read BW GB/s  non-overlap")
	fmt.Println("                                 model published  model publ.   model publ.   model publ.")
	for i, r := range rows {
		p := pub[i]
		line := fmt.Sprintf("  %-5d  %3.0fM   %5.1fB   %4.2fTB  %-6.0f %-9.0f  %-5.2f %-6.2f   %-5.1f %-6.1f   %3.0f%%  %3.0f%%",
			r.Nodes, r.DimMillions, r.NNZBillions, r.SizeTB,
			r.TimeSeconds, p.TimeSeconds, r.GFlops, p.GFlops,
			r.ReadBWGBs, p.ReadBWGBs, 100*r.NonOverlapped, 100*p.NonOverlapped)
		if cpuHours {
			line += fmt.Sprintf("   cpu-h/iter %5.2f (publ. %5.2f)", r.CPUHoursPerIter, p.CPUHoursPerIter)
		}
		fmt.Println(line)
	}
}

func table3() error {
	fmt.Println("Table III: 4 SpMV iterations, simple scheduling policy.")
	tablePrint(perfmodel.Table3(), perfmodel.PublishedTable3, false)
	return nil
}

func table4() error {
	fmt.Println("Table IV: intra-iteration interleaving + per-node aggregation.")
	tablePrint(perfmodel.Table4(), perfmodel.PublishedTable4, true)
	return nil
}

func fig1() error {
	fmt.Println("Fig. 1: the memory hierarchy and the DRAM-HDD latency gap PCIe SSDs fill.")
	fmt.Println("  layer        capacity      latency        cycles@2.67GHz  bandwidth")
	for _, l := range devices.Hierarchy() {
		fmt.Printf("  %-12s %9.2e B  %11.2e s  %14.0f  %8.2e B/s\n",
			l.Name, l.TypicalBytes, l.LatencySeconds, l.LatencyCycles, l.BandwidthBytes)
	}
	return nil
}

func fig34() error {
	cfg := spmv.ProgramConfig{K: 3, Iters: 2, SubBytes: 4e9, VecBytes: 4e8}
	tasks, err := spmv.Program(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 3: commands emitted for two iterations of the 3x3 SpMV:")
	for _, t := range tasks {
		var parts []string
		for _, in := range t.Inputs {
			parts = append(parts, in.Array)
		}
		fmt.Printf("  %-12s <- %s\n", t.Outputs[0].Array, strings.Join(parts, " "))
	}
	g, err := dag.Build(tasks)
	if err != nil {
		return err
	}
	fmt.Println("\nFig. 4: derived dependencies (task <- predecessors):")
	for _, t := range g.Tasks() {
		preds := g.Preds(t.ID)
		if len(preds) == 0 {
			fmt.Printf("  %-14s (ready: seed data only)\n", t.ID)
			continue
		}
		fmt.Printf("  %-14s <- %s\n", t.ID, strings.Join(preds, ", "))
	}
	fmt.Printf("\ncritical path: %d tasks; %d tasks total\n", g.CriticalPathLen(), g.Len())
	return nil
}

func fig5() error {
	cfg := spmv.ProgramConfig{K: 3, Iters: 2, SubBytes: 1000, VecBytes: 8}
	costs := scheduler.Costs{LoadSecondsPerByte: 0.003, RunSeconds: func(*dag.Task) float64 { return 1 }}
	for _, mode := range []struct {
		label   string
		reorder bool
	}{
		{"(a) Regular (FIFO order)", false},
		{"(b) Back and forth (data-aware reordering)", true},
	} {
		g, err := spmv.Graph(cfg)
		if err != nil {
			return err
		}
		plan, err := scheduler.Simulate(g, spmv.RowAssignment(cfg), cfg.K, cfg.SubBytes, mode.reorder, costs)
		if err != nil {
			return err
		}
		fmt.Printf("%s — loads per node: %v (total %d)\n", mode.label, plan.LoadsPerNode, plan.TotalLoads())
		for n := 0; n < cfg.K; n++ {
			var cells []string
			for _, op := range plan.NodeOps(n) {
				if op.Kind == scheduler.OpLoad {
					cells = append(cells, "L("+op.Ref.Array+")")
				} else {
					cells = append(cells, op.Task)
				}
			}
			fmt.Printf("  P%d: %s\n", n+1, strings.Join(cells, " "))
		}
		fmt.Println()
	}
	fmt.Println("Paper: regular = 3 loads/node/iteration; back-and-forth = 3 then 2 per iteration.")
	return nil
}

func fig6() error {
	fmt.Println("Fig. 6: runtime relative to the minimum time to read all data at the 20 GB/s peak.")
	fmt.Println("  nodes   (a) simple policy   (b) interleaved")
	t3, t4 := perfmodel.Table3(), perfmodel.Table4()
	for i := range t3 {
		fmt.Printf("  %-6d  %-18.2f  %.2f\n", t3[i].Nodes, t3[i].RelativeToOptimal(), t4[i].RelativeToOptimal())
	}
	return nil
}

func fig7() error {
	fmt.Println("Fig. 7: CPU-hours per iteration vs problem size.")
	fmt.Println("\n  SSD testbed (Table IV rows):")
	fmt.Println("    size      nodes  CPU-h/iter (model)  (published)")
	for i, r := range perfmodel.Table4() {
		fmt.Printf("    %4.2f TB   %-5d  %-18.2f  %.2f\n", r.SizeTB, r.Nodes, r.CPUHoursPerIter, perfmodel.PublishedTable4[i].CPUHoursPerIter)
	}
	star := perfmodel.Star()
	fmt.Printf("    %4.2f TB   %-5d  %-18.2f  %.2f   <- the star: 3.5 TB on 9 nodes\n",
		star.SizeTB, star.Nodes, star.CPUHoursPerIter, perfmodel.PublishedStar.CPUHoursPerIter)
	fmt.Println("\n  MFDn on Hopper (Table II):")
	for _, r := range mfdn.ModelTable2() {
		fmt.Printf("    %-12s np=%-6d CPU-h/iter %-8.2f (published %.2f)\n", r.Name, r.Np, r.CPUHoursPerIter, r.PubCPUHours)
	}
	fmt.Printf("\n  Headline: star (%.2f) vs Hopper test_4560 (9.70): %.0f%% cheaper (paper: 32%%).\n",
		star.CPUHoursPerIter, 100*(1-star.CPUHoursPerIter/9.70))
	return nil
}

func remoteRun() error {
	// Stage one node's blocks, serve them over loopback TCP, and fetch them
	// from a client — the compute-node/I/O-node split with a real socket.
	const dim, k = 4000, 4
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 6, Seed: 11})
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "doocbench-remote")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 1, Nodes: 1}
	if err := core.StageMatrix(root, m, cfg); err != nil {
		return err
	}
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 28, ScratchDir: root + "/node0", IOWorkers: 4})
	if err != nil {
		return err
	}
	defer st.Close()
	srv, err := remote.Listen(st, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	cl, err := remote.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cl.Close()

	start := time.Now()
	var bytesMoved int64
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			data, err := cl.ReadAll(fmt.Sprintf("A_%03d_%03d", u, v))
			if err != nil {
				return err
			}
			bytesMoved += int64(len(data))
		}
	}
	cold := time.Since(start)
	// Second pass: server-side cache hot.
	start = time.Now()
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			if _, err := cl.ReadAll(fmt.Sprintf("A_%03d_%03d", u, v)); err != nil {
				return err
			}
		}
	}
	hot := time.Since(start)
	fmt.Printf("served %d blocks (%.1f MB) over TCP %s\n", k*k, float64(bytesMoved)/1e6, srv.Addr())
	fmt.Printf("  cold (disk + wire): %v  (%.0f MB/s)\n", cold.Round(time.Millisecond), float64(bytesMoved)/1e6/cold.Seconds())
	fmt.Printf("  hot  (cache + wire): %v  (%.0f MB/s)\n", hot.Round(time.Millisecond), float64(bytesMoved)/1e6/hot.Seconds())
	fmt.Printf("  server counters: %d requests, %.1f MB out\n", srv.Requests(), float64(srv.BytesOut())/1e6)
	fmt.Println("  (see also cmd/doocserve for running the server as its own OS process)")
	return nil
}

func hddRun() error {
	fmt.Println("Why SSDs: the Section V workload on one ~150 MB/s SATA HDD per node —")
	fmt.Println("the paper's Section I claim ('poor performance ... high latency and low")
	fmt.Println("bandwidth associated with traditional disk-based storage') quantified:")
	fmt.Println("\n  nodes   SSD testbed time(s)   HDD time(s)   slowdown   HDD CPU-h/iter  vs Hopper-equivalent")
	hopper := map[int]float64{9: 1.72, 36: 9.70} // comparable Table II rows
	for _, n := range []int{9, 36} {
		ssd := perfmodel.Run(perfmodel.Experiment(n, perfmodel.PolicyInterleaved))
		hdd := perfmodel.Run(energy.HDDExperiment(n))
		fmt.Printf("  %-6d  %-20.0f  %-12.0f  %-8.1fx  %-14.1f  %.1fx the in-core cost\n",
			n, ssd.TimeSeconds, hdd.TimeSeconds, hdd.TimeSeconds/ssd.TimeSeconds,
			hdd.CPUHoursPerIter, hdd.CPUHoursPerIter/hopper[n])
	}
	fmt.Println("\n  On HDDs the out-of-core approach loses its CPU-hour advantage entirely —")
	fmt.Println("  exactly why the topic lay dormant until PCIe flash arrived.")
	return nil
}

func localSSD() error {
	fmt.Println("The paper (Section VI-A) argues SSD cards should sit on the compute nodes,")
	fmt.Println("like GPUs, removing the interconnect hop and the shared-GPFS bottlenecks.")
	fmt.Println("Quantified on the 3.5 TB star problem at 9 nodes:")
	ioNode := perfmodel.Star()
	local := perfmodel.Run(energy.LocalSSDExperiment())
	fmt.Println("\n  configuration        time(s)  GFlop/s  read BW GB/s  CPU-h/iter")
	fmt.Printf("  I/O-node testbed     %-7.0f  %-7.2f  %-12.1f  %.2f\n",
		ioNode.TimeSeconds, ioNode.GFlops, ioNode.ReadBWGBs, ioNode.CPUHoursPerIter)
	fmt.Printf("  local SSDs (what-if) %-7.0f  %-7.2f  %-12.1f  %.2f\n",
		local.TimeSeconds, local.GFlops, local.ReadBWGBs, local.CPUHoursPerIter)
	fmt.Printf("\n  speedup %.2fx; CPU-hour cost falls below the Hopper run (9.70) to %.2f.\n",
		ioNode.TimeSeconds/local.TimeSeconds, local.CPUHoursPerIter)
	return nil
}

func energyStudy() error {
	fmt.Println("Energy per Lanczos-iteration-equivalent on the 3.5 TB problem (modeled;")
	fmt.Println("power parameters documented in internal/energy):")
	fmt.Println("\n  configuration                    power(kW)  iter(s)  kJ/iter")
	for _, r := range energy.Study() {
		fmt.Printf("  %-31s  %-9.1f  %-7.0f  %.0f\n", r.Name, r.PowerWatts/1e3, r.IterSeconds, r.KJPerIter)
	}
	fmt.Println("\n  Reading: the 9-node star already beats the 36-node run on energy; moving")
	fmt.Println("  the SSDs onto the compute nodes (no always-on I/O nodes, no InfiniBand")
	fmt.Println("  hop) brings out-of-core into the same energy league as Hopper while")
	fmt.Println("  using 9 nodes instead of 190.")
	return nil
}

// faultsRun quantifies the self-healing runtime: the same out-of-core
// workload is run clean, under a bounded budget of injected transient I/O
// errors and stalls, and through the death of a compute node mid-run. All
// three runs must produce identical iterates; the interesting numbers are
// the wall-clock overhead and the retry counters.
func faultsRun() error {
	const dim, k, nodes, iters = 3000, 4, 2, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 6, Seed: 13})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	fmt.Printf("matrix: %dx%d, %d nnz; %d nodes, %d iterations, K=%d\n", dim, dim, m.NNZ(), nodes, iters, k)

	run := func(inj *faults.Injector, killNode int) (*core.SpMVResult, time.Duration, error) {
		root, err := os.MkdirTemp("", "doocbench-faults")
		if err != nil {
			return nil, 0, err
		}
		defer os.RemoveAll(root)
		cfg := core.SpMVConfig{Dim: dim, K: k, Iters: iters, Nodes: nodes}
		if err := core.StageMatrix(root, m, cfg); err != nil {
			return nil, 0, err
		}
		sys, err := core.NewSystem(core.Options{
			Nodes:          nodes,
			WorkersPerNode: 2,
			MemoryBudget:   1 << 26,
			ScratchRoot:    root,
			Reorder:        true,
			Faults:         inj,
			Obs:            benchObs,
			Trace:          benchTrace,
		})
		if err != nil {
			return nil, 0, err
		}
		defer sys.Close()
		if killNode >= 0 {
			// Let the run get going, then fail one node under it.
			go func() {
				time.Sleep(5 * time.Millisecond)
				_ = sys.FailNode(killNode)
			}()
		}
		start := time.Now()
		res, err := core.RunIteratedSpMV(sys, cfg, x0)
		return res, time.Since(start), err
	}

	clean, cleanWall, err := run(nil, -1)
	if err != nil {
		return err
	}
	fmt.Printf("  %-28s %-12v\n", "clean baseline", cleanWall.Round(time.Millisecond))

	inj := faults.New(faults.Config{
		Seed: 5, IOErrorRate: 0.2, IOStallRate: 0.1,
		StallDuration: 2 * time.Millisecond, MaxInjections: 64,
	})
	faulty, faultyWall, err := run(inj, -1)
	if err != nil {
		return fmt.Errorf("run under injected I/O faults failed: %w", err)
	}
	fmt.Printf("  %-28s %-12v %d errors + %d stalls injected, %d ioPool retries, %d task retries, overhead %+.0f%%\n",
		"injected I/O faults", faultyWall.Round(time.Millisecond),
		inj.Counts().IOErrors, inj.Counts().IOStalls, faulty.Stats.IORetries(), faulty.Stats.TaskRetries,
		100*(faultyWall.Seconds()/cleanWall.Seconds()-1))

	killed, killedWall, err := run(nil, 1)
	if err != nil {
		return fmt.Errorf("run with a killed node failed: %w", err)
	}
	fmt.Printf("  %-28s %-12v %d node(s) failed, %d task re-executions, overhead %+.0f%%\n",
		"node 1 killed mid-run", killedWall.Round(time.Millisecond),
		killed.Stats.NodesFailed, killed.Stats.TaskRetries,
		100*(killedWall.Seconds()/cleanWall.Seconds()-1))
	fmt.Printf("  %-28s hits %d misses %d evictions %d block loads %d\n",
		"storage during faulty run", faulty.Stats.CacheHits(), faulty.Stats.CacheMisses(),
		faulty.Stats.Evictions(), faulty.Stats.BlockLoads())

	for _, other := range []*core.SpMVResult{faulty, killed} {
		for i := range clean.X {
			if clean.X[i] != other.X[i] {
				return fmt.Errorf("recovered run diverged from clean run at entry %d", i)
			}
		}
	}
	fmt.Println("  all three runs produced bit-identical iterates")
	return nil
}

func realRun() error {
	// A miniature end-to-end version of the testbed experiment on the local
	// machine: generate, stage, run out-of-core with both policies.
	const dim, k, nodes, iters = 4000, 5, 5, 4
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 8, Seed: 7})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	fmt.Printf("matrix: %dx%d, %d nnz; %d nodes, %d iterations, K=%d\n", dim, dim, m.NNZ(), nodes, iters, k)
	for _, reorder := range []bool{false, true} {
		root, err := os.MkdirTemp("", "doocbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(root)
		cfg := core.SpMVConfig{Dim: dim, K: k, Iters: iters, Nodes: nodes}
		if err := core.StageMatrix(root, m, cfg); err != nil {
			return err
		}
		info, err := core.DiscoverStagedMatrix(root)
		if err != nil {
			return err
		}
		// Budget ~2.5 blocks per node: small enough to force re-reads
		// across iterations, large enough that the back-and-forth boundary
		// block survives next to the in-flight prefetch.
		blockBytes := info.Bytes / int64(k*k)
		var inj *faults.Injector
		if faultRate > 0 {
			inj = faults.New(faults.Config{Seed: 3, IOErrorRate: faultRate, MaxInjections: 64})
		}
		sys, err := core.NewSystem(core.Options{
			Nodes:          nodes,
			WorkersPerNode: 1,
			MemoryBudget:   blockBytes*5/2 + 1<<16,
			ScratchRoot:    root,
			PrefetchWindow: 1,
			Reorder:        reorder,
			Faults:         inj,
			Obs:            benchObs,
			Trace:          benchTrace,
		})
		if err != nil {
			return err
		}
		res, err := core.RunIteratedSpMV(sys, cfg, x0)
		if err != nil {
			sys.Close()
			return err
		}
		label := "regular (FIFO)"
		if reorder {
			label = "back-and-forth"
		}
		line := fmt.Sprintf("  %-16s time %-12v disk-read %8.1f MB  network %6.2f MB",
			label, res.Stats.Wall.Round(1000000),
			float64(res.Stats.BytesReadDisk())/1e6,
			float64(sys.Cluster().TotalNetworkBytes())/1e6)
		if inj != nil {
			line += fmt.Sprintf("  (%d faults injected, %d task retries)", inj.Counts().Total(), res.Stats.TaskRetries)
		}
		fmt.Println(line)
		hits, miss := res.Stats.CacheHits(), res.Stats.CacheMisses()
		hitRate := 0.0
		if hits+miss > 0 {
			hitRate = 100 * float64(hits) / float64(hits+miss)
		}
		fmt.Printf("  %-16s cache %d/%d hits (%.0f%%)  evictions %d  prefetch %d loads / %d hits  block loads %d\n",
			"", hits, hits+miss, hitRate, res.Stats.Evictions(),
			res.Stats.PrefetchLoads(), res.Stats.PrefetchHits(), res.Stats.BlockLoads())
		sys.Close()
	}
	// The in-core baseline's comm growth, executed for real.
	fmt.Println("\n  in-core baseline (bulk-synchronous allgather), throttled link:")
	mSmall, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 1200, Cols: 1200, D: 4, Seed: 2})
	if err != nil {
		return err
	}
	xs := make([]float64, 1200)
	xs[0] = 1
	ranks := []int{2, 4, 8}
	fracs := make([]float64, 0, len(ranks))
	for _, r := range ranks {
		res, err := mfdn.RunInCore(mfdn.InCoreConfig{Matrix: mSmall, Ranks: r, Iters: 3, X0: xs, LinkBandwidth: 4 << 20})
		if err != nil {
			return err
		}
		fracs = append(fracs, res.CommFraction)
		fmt.Printf("    ranks=%d  comm fraction %.0f%%\n", r, 100*res.CommFraction)
	}
	if !sort.Float64sAreSorted(fracs) {
		fmt.Println("    (non-monotone on this machine; rerun for a cleaner signal)")
	}
	return nil
}

// streamsRun drives the DataCutter-style filter-stream substrate directly and
// surfaces Runtime.Stats() — the per-stream traffic the middleware accounts
// for each logical stream — alongside the dooc_stream_* counters.
func streamsRun() error {
	const buffers, payload = 256, 1 << 12
	l := datacutter.NewLayout()
	l.MustAddFilter("source", func() datacutter.Filter {
		return datacutter.FilterFunc(func(ctx *datacutter.Context) error {
			data := make([]byte, payload)
			for i := 0; i < buffers; i++ {
				ctx.Write("work", datacutter.Buffer{Tag: fmt.Sprint(i), Data: data})
			}
			return nil
		})
	})
	l.MustAddFilter("scale", func() datacutter.Filter {
		return datacutter.FilterFunc(func(ctx *datacutter.Context) error {
			for {
				b, ok := ctx.Read("work")
				if !ok {
					return nil
				}
				ctx.Write("done", b)
			}
		})
	}, datacutter.Copies(3))
	l.MustAddFilter("sink", func() datacutter.Filter {
		return datacutter.FilterFunc(func(ctx *datacutter.Context) error {
			for {
				if _, ok := ctx.Read("done"); !ok {
					return nil
				}
			}
		})
	})
	l.MustConnect("work", "source", "scale", datacutter.Depth(8))
	l.MustConnect("done", "scale", "sink", datacutter.Depth(8))
	rt, err := datacutter.NewRuntime(l, nil)
	if err != nil {
		return err
	}
	rt.Obs = benchObs
	start := time.Now()
	if err := rt.Run(); err != nil {
		return err
	}
	fmt.Printf("pipeline source -> scale(x3, transparent copies) -> sink: %d buffers of %d B in %v\n",
		buffers, payload, time.Since(start).Round(time.Millisecond))
	fmt.Println("  stream   buffers   bytes")
	for _, s := range rt.Stats() {
		fmt.Printf("  %-7s  %-8d  %d\n", s.Stream, s.Buffers, s.Bytes)
	}
	return nil
}
