package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"dooc/internal/cluster"
	"dooc/internal/core"
	"dooc/internal/jobs"
	"dooc/internal/remote"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// latePeerHandler breaks the construction cycle between a peer's RPC
// server (which needs the handler at listen time) and its cluster node
// (which needs every peer's listen address): the server is built around
// this shell first, the node is slotted in once all addresses are known.
type latePeerHandler struct {
	mu sync.Mutex
	h  remote.PeerHandler
}

func (l *latePeerHandler) set(h remote.PeerHandler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *latePeerHandler) get() remote.PeerHandler {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h
}

func (l *latePeerHandler) PeerPut(array string, block int, epoch uint64, data []byte, durable bool) (bool, error) {
	if h := l.get(); h != nil {
		return h.PeerPut(array, block, epoch, data, durable)
	}
	return false, fmt.Errorf("peer still starting")
}

func (l *latePeerHandler) PeerGet(array string, block int) ([]byte, uint64, bool, error) {
	if h := l.get(); h != nil {
		return h.PeerGet(array, block)
	}
	return nil, 0, false, fmt.Errorf("peer still starting")
}

func (l *latePeerHandler) PeerDelete(array string) error {
	if h := l.get(); h != nil {
		return h.PeerDelete(array)
	}
	return fmt.Errorf("peer still starting")
}

func (l *latePeerHandler) PeerViewExchange(v remote.PeerView) remote.PeerView {
	if h := l.get(); h != nil {
		return h.PeerViewExchange(v)
	}
	return remote.PeerView{}
}

// benchPeer is one in-process stand-in for a doocserve peer: a real TCP
// server with the cluster peer verbs in front of a cluster node.
type benchPeer struct {
	store *storage.Store
	late  *latePeerHandler
	srv   *remote.Server
	node  *cluster.Node
}

func (p *benchPeer) close() {
	if p.node != nil {
		p.node.Close()
	}
	if p.srv != nil {
		p.srv.Shutdown(time.Second)
	}
	if p.store != nil {
		p.store.Close()
	}
}

// clusterHot replicates the doocserve hot predicate: the SpMV input vector
// generations, with or without a run tag prefix.
func clusterHot(array string) bool {
	if i := strings.LastIndexByte(array, ':'); i >= 0 {
		array = array[i+1:]
	}
	return strings.HasPrefix(array, "x_")
}

// clusterRun measures the peer-to-peer sharded storage tier: the same
// iterated SpMV runs over a 1-peer ring (everything self-owned, pushes
// never reach remote durability) and a 3-peer ring (blocks shard across
// real TCP peers, misses forward to owners, hot vector blocks replicate
// locally). The result vector must be bit-identical across the two — block
// placement is a storage concern, never a numeric one.
func clusterRun() error {
	const (
		dim   = 2400
		k     = 3
		nodes = 2
		iters = 10
	)
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 8, Seed: 11})
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "doocbench-cluster")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	base := core.SpMVConfig{Dim: dim, K: k, Nodes: nodes, Iters: 1}
	if err := core.StageMatrix(root, m, base); err != nil {
		return err
	}
	info, err := core.DiscoverStagedMatrix(root)
	if err != nil {
		return err
	}
	blockBytes := info.Bytes / int64(k*k)

	type modeResult struct {
		peers    int
		wall     time.Duration
		sha      string
		counters cluster.Counters
		fetches  int64
		pushes   int64
	}

	runMode := func(peerCount int, tag string) (*modeResult, error) {
		// Build the ring: every peer listens first (port 0 → real address),
		// then the nodes are constructed over the full address set.
		ids := make([]string, peerCount)
		peers := make([]*benchPeer, peerCount)
		members := make([]cluster.Member, peerCount)
		defer func() {
			for _, p := range peers {
				if p != nil {
					p.close()
				}
			}
		}()
		for i := range peers {
			ids[i] = fmt.Sprintf("%s-p%d", tag, i)
			st, err := storage.NewLocal(storage.Config{MemoryBudget: 32 << 20})
			if err != nil {
				return nil, err
			}
			late := &latePeerHandler{}
			srv, err := remote.ListenOptions(st, "127.0.0.1:0", remote.ServerOptions{Peer: late})
			if err != nil {
				st.Close()
				return nil, err
			}
			peers[i] = &benchPeer{store: st, late: late, srv: srv}
			members[i] = cluster.Member{ID: ids[i], Addr: srv.Addr()}
		}
		for i, p := range peers {
			others := make([]cluster.Member, 0, peerCount-1)
			for j, m := range members {
				if j != i {
					others = append(others, m)
				}
			}
			node, err := cluster.NewNode(cluster.Config{
				Self: members[i],
				// Production-faithful: doocserve scopes ring keys by node ID.
				Scope:         ids[i],
				Peers:         others,
				Obs:           benchObs,
				Hot:           clusterHot,
				ProbeInterval: 50 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			p.node = node
			p.late.set(node)
		}

		// Roughly one matrix block resident per node: vector blocks get
		// evicted between iterations, so re-reads actually exercise the
		// shard tier (durable evictions skip the disk spill and refetch
		// over the ring).
		sys, err := core.NewSystem(core.Options{
			Nodes:          nodes,
			WorkersPerNode: 2,
			MemoryBudget:   blockBytes + 1<<17,
			ScratchRoot:    root,
			PrefetchWindow: 1,
			Obs:            benchObs,
			Shard:          peers[0].node,
		})
		if err != nil {
			return nil, err
		}
		defer sys.Close()

		cfg := base
		cfg.Iters = iters
		cfg.Tag = tag
		start := time.Now()
		res, err := core.RunIteratedSpMV(sys, cfg, jobs.StartVector(dim, 42))
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		sum := sha256.Sum256(jobs.EncodeFloat64s(res.X))
		return &modeResult{
			peers:    peerCount,
			wall:     wall,
			sha:      hex.EncodeToString(sum[:8]),
			counters: peers[0].node.Counters(),
			fetches:  res.Stats.ShardFetches(),
			pushes:   res.Stats.ShardPushes(),
		}, nil
	}

	fmt.Printf("peer-to-peer sharded storage: %d×%d matrix, K=%d, %d engine nodes, %d iterations\n\n",
		dim, dim, k, nodes, iters)
	results := make([]*modeResult, 0, 2)
	for _, pc := range []int{1, 3} {
		r, err := runMode(pc, fmt.Sprintf("c%d", pc))
		if err != nil {
			return fmt.Errorf("%d-peer run: %w", pc, err)
		}
		results = append(results, r)
	}
	fmt.Printf("%-6s %10s %10s %12s %12s %14s %12s  %s\n",
		"peers", "wall", "wall/iter", "shard-push", "fwd-reads", "fwd-ratio", "replica-hit", "result-sha")
	for _, r := range results {
		c := r.counters
		fwdRatio := 0.0
		if r.fetches > 0 {
			fwdRatio = float64(c.ForwardedReads) / float64(r.fetches)
		}
		repRate := 0.0
		if hot := c.ReplicaHits + c.ReplicaFills; hot > 0 {
			repRate = float64(c.ReplicaHits) / float64(hot)
		}
		fmt.Printf("%-6d %10v %10v %12d %12d %13.1f%% %11.1f%%  %s\n",
			r.peers, r.wall.Round(time.Millisecond), (r.wall / iters).Round(time.Millisecond),
			r.pushes, c.ForwardedReads, 100*fwdRatio, 100*repRate, r.sha)
	}
	if results[0].sha != results[1].sha {
		return fmt.Errorf("result diverged: 1-peer %s vs 3-peer %s", results[0].sha, results[1].sha)
	}
	fmt.Printf("\n1-peer and 3-peer results bit-identical: placement is a storage concern, not a numeric one\n\n")
	return clusterTierRun()
}

// clusterTierRun drives the shard tier directly through one storage filter
// under the solver's access shape — write a vector generation, read it back
// twice under a budget too small to keep it resident, delete the previous
// generation — and tabulates where the re-reads were served from. The
// engine benches above are too fast on a small box for the asynchronous
// durability verdicts to land mid-run; at paper scale an iteration takes
// seconds and this settle happens for free, so the phase waits for the
// verdicts explicitly instead of timing against them.
func clusterTierRun() error {
	const (
		generations = 8
		blocks      = 16
		blockSize   = 64 << 10
		passes      = 2
	)

	runTier := func(peerCount int, tag string) error {
		ids := make([]string, peerCount)
		peers := make([]*benchPeer, peerCount)
		members := make([]cluster.Member, peerCount)
		defer func() {
			for _, p := range peers {
				if p != nil {
					p.close()
				}
			}
		}()
		for i := range peers {
			ids[i] = fmt.Sprintf("%s-p%d", tag, i)
			st, err := storage.NewLocal(storage.Config{MemoryBudget: 32 << 20})
			if err != nil {
				return err
			}
			late := &latePeerHandler{}
			srv, err := remote.ListenOptions(st, "127.0.0.1:0", remote.ServerOptions{Peer: late})
			if err != nil {
				st.Close()
				return err
			}
			peers[i] = &benchPeer{store: st, late: late, srv: srv}
			members[i] = cluster.Member{ID: ids[i], Addr: srv.Addr()}
		}
		for i, p := range peers {
			others := make([]cluster.Member, 0, peerCount-1)
			for j, m := range members {
				if j != i {
					others = append(others, m)
				}
			}
			node, err := cluster.NewNode(cluster.Config{
				Self: members[i],
				// Production-faithful: doocserve scopes ring keys by node ID.
				Scope:         ids[i],
				Peers:         others,
				Obs:           benchObs,
				Hot:           clusterHot,
				ProbeInterval: 50 * time.Millisecond,
			})
			if err != nil {
				return err
			}
			p.node = node
			p.late.set(node)
		}

		// The driving store: memory only (no scratch directory), so a
		// block becomes evictable exactly when the tier reports it durable
		// — the cluster's spill-free eviction contract, isolated.
		drv, err := storage.NewLocal(storage.Config{
			MemoryBudget: blocks * blockSize / 2,
			Shard:        peers[0].node,
		})
		if err != nil {
			return err
		}
		defer drv.Close()

		start := time.Now()
		for g := 0; g < generations; g++ {
			name := fmt.Sprintf("x_%d", g)
			if err := drv.Create(name, blocks*blockSize, blockSize); err != nil {
				return err
			}
			for b := 0; b < blocks; b++ {
				lease, err := drv.Request(name, int64(b)*blockSize, int64(b+1)*blockSize, storage.PermWrite)
				if err != nil {
					return err
				}
				for i := range lease.Data {
					lease.Data[i] = byte(g + b + i)
				}
				lease.Release()
			}
			if peerCount > 1 {
				// Wait for the durability verdicts, standing in for the
				// seconds of compute a paper-scale iteration would spend
				// here anyway.
				deadline := time.Now().Add(5 * time.Second)
				for drv.Stats().ShardDurablePushes < int64((g+1)*blocks) &&
					time.Now().Before(deadline) {
					time.Sleep(2 * time.Millisecond)
				}
			}
			for pass := 0; pass < passes; pass++ {
				for b := 0; b < blocks; b++ {
					lease, err := drv.Request(name, int64(b)*blockSize, int64(b+1)*blockSize, storage.PermRead)
					if err != nil {
						return err
					}
					if lease.Data[0] != byte(g+b) {
						lease.Release()
						return fmt.Errorf("generation %d block %d corrupt after refetch", g, b)
					}
					lease.Release()
				}
			}
			if g > 0 {
				if err := drv.Delete(fmt.Sprintf("x_%d", g-1)); err != nil {
					return err
				}
			}
		}
		wall := time.Since(start)

		st := drv.Stats()
		c := peers[0].node.Counters()
		total := c.ForwardedReads + c.ReplicaHits
		fwdRatio, repRate := 0.0, 0.0
		if st.ShardFetches > 0 {
			fwdRatio = float64(c.ForwardedReads) / float64(st.ShardFetches)
		}
		if total > 0 {
			repRate = float64(c.ReplicaHits) / float64(total)
		}
		fmt.Printf("%-6d %10v %10v %12d %12d %13.1f%% %11.1f%%\n",
			peerCount, wall.Round(time.Millisecond),
			(wall / generations).Round(time.Millisecond),
			st.ShardDurablePushes, c.ForwardedReads, 100*fwdRatio, 100*repRate)
		return nil
	}

	fmt.Printf("shard tier direct: %d generations × %d blocks × %d KiB, %d read passes, budget ½ generation\n\n",
		generations, blocks, blockSize>>10, passes)
	fmt.Printf("%-6s %10s %10s %12s %12s %14s %12s\n",
		"peers", "wall", "wall/gen", "durable", "fwd-reads", "fwd-ratio", "replica-hit")
	for _, pc := range []int{1, 3} {
		if err := runTier(pc, fmt.Sprintf("t%d", pc)); err != nil {
			return fmt.Errorf("%d-peer tier run: %w", pc, err)
		}
	}
	return nil
}
