package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dooc/internal/core"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// benchOut is the -bench-out flag: where `-exp hotpath` writes its
// machine-readable result. The checked-in BENCH_hotpath.json is a captured
// run, giving future PRs an allocation trajectory to compare against.
var benchOut string

// gateRef is the -gate flag: a reference BENCH_hotpath.json to gate
// against. When set, hotpath fails unless result_sha256 matches the
// reference byte-for-byte and allocs_per_iter stays within -gate-allocs.
// Wall-clock is deliberately not gated — it varies by machine; bit-identity
// and allocation discipline do not.
var gateRef string

// gateAllocs is the -gate-allocs flag: the allocs_per_iter ceiling enforced
// when -gate is set.
var gateAllocs float64

// hotpathReport is the JSON schema of BENCH_hotpath.json. Counters are
// per-iteration averages over the measured runs; GC numbers are totals
// across the measurement window.
type hotpathReport struct {
	Experiment string    `json:"experiment"`
	Timestamp  time.Time `json:"timestamp"`
	GoVersion  string    `json:"go_version"`
	// GOMAXPROCS and NumCPU pin down the machine shape the numbers were
	// taken on, so allocation/latency trajectories across machines are
	// interpretable.
	GOMAXPROCS    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu"`
	Dim           int     `json:"dim"`
	K             int     `json:"k"`
	Nodes         int     `json:"nodes"`
	Iters         int     `json:"iters_per_run"`
	Runs          int     `json:"runs_measured"`
	AllocsPerIter float64 `json:"allocs_per_iter"`
	BytesPerIter  float64 `json:"bytes_per_iter"`
	NsPerIter     float64 `json:"ns_per_iter"`
	GCPauseNs     uint64  `json:"gc_pause_total_ns"`
	NumGC         uint32  `json:"num_gc"`
	ResultSHA256  string  `json:"result_sha256"`
	ZeroCopyViews bool    `json:"zero_copy_views"`
	// Roofline is the in-core kernel sweep across matrix densities: bytes
	// streamed per multiply vs floating-point work, the two axes of a
	// roofline plot.
	Roofline []rooflineRow `json:"roofline"`
	// Metrics is the benchObs registry snapshot at report time (family name
	// -> summed value), so the artifact carries the run's counter state.
	Metrics map[string]int64 `json:"metrics"`
}

// rooflineRow is one density point of the kernel sweep: a dim x dim GAP
// matrix multiplied in-core by the persistent pool, reporting achieved
// memory bandwidth (matrix + vector bytes streamed per multiply) against
// achieved arithmetic throughput (2 flops per stored entry).
type rooflineRow struct {
	D         int     `json:"gap_d"`
	NNZ       int64   `json:"nnz"`
	NNZPerRow float64 `json:"nnz_per_row"`
	NsPerMul  float64 `json:"ns_per_mulvec"`
	GBps      float64 `json:"gb_per_s"`
	GFlops    float64 `json:"gflop_per_s"`
}

// hotpathRun measures the allocator cost of the steady-state data path: the
// `real` experiment's workload (out-of-core iterated SpMV, back-and-forth
// scheduling, tight memory budget) executed repeatedly between
// runtime.ReadMemStats snapshots. The interesting numbers are allocations
// and bytes per iteration — with I/O overlapped, allocator/GC churn is the
// residual per-iteration cost this harness tracks across PRs.
func hotpathRun() error {
	const dim, k, nodes, iters, runs = 4000, 5, 5, 4, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 8, Seed: 7})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	root, err := os.MkdirTemp("", "doocbench-hotpath")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	cfg := core.SpMVConfig{Dim: dim, K: k, Iters: iters, Nodes: nodes}
	if err := core.StageMatrix(root, m, cfg); err != nil {
		return err
	}
	info, err := core.DiscoverStagedMatrix(root)
	if err != nil {
		return err
	}
	blockBytes := info.Bytes / int64(k*k)
	// Decoded blocks are ~the same size as their encoded frames; five slots
	// per node keep every block of the node's row stripe decoded after the
	// first sweep, so steady-state iterations touch only resident CSR and
	// the pipeline exists purely to absorb the cold-start decodes.
	decodedBlock := m.Bytes()/int64(k*k) + 1<<14
	sys, err := core.NewSystem(core.Options{
		Nodes:            nodes,
		WorkersPerNode:   1,
		MemoryBudget:     blockBytes*5/2 + 1<<16,
		ScratchRoot:      root,
		PrefetchWindow:   2,
		Reorder:          true,
		DecodeCacheBytes: 5 * decodedBlock,
		Obs:              benchObs,
		Trace:            benchTrace,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	fmt.Printf("matrix: %dx%d, %d nnz; %d nodes, K=%d, %d iterations/run, %d measured runs\n",
		dim, dim, m.NNZ(), nodes, k, iters, runs)

	// Warm-up run: pulls blocks off scratch, fills caches and pools, and
	// pins the reference result for the bit-identity check.
	run := func(tag string) (*core.SpMVResult, error) {
		c := cfg
		c.Tag = tag
		return core.RunIteratedSpMV(sys, c, x0)
	}
	ref, err := run("warm")
	if err != nil {
		return err
	}
	refSum := sha256Floats(ref.X)

	stopProfile := func() {}
	if pf := os.Getenv("HOTPATH_CPUPROFILE"); pf != "" {
		f, _ := os.Create(pf)
		pprof.StartCPUProfile(f)
		stopProfile = func() { pprof.StopCPUProfile(); f.Close() }
	}
	if pf := os.Getenv("HOTPATH_MEMPROFILE"); pf != "" {
		runtime.MemProfileRate = 1
		f, _ := os.Create(pf)
		defer func() { runtime.GC(); pprof.Lookup("allocs").WriteTo(f, 0); f.Close() }()
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < runs; r++ {
		res, err := run(fmt.Sprintf("hot%d", r))
		if err != nil {
			return err
		}
		if got := sha256Floats(res.X); got != refSum {
			return fmt.Errorf("hotpath run %d diverged: sha %s, want %s", r, got, refSum)
		}
	}
	wall := time.Since(start)
	stopProfile()
	runtime.ReadMemStats(&after)

	totalIters := float64(runs * iters)
	rep := hotpathReport{
		Experiment:    "hotpath",
		Timestamp:     time.Now().UTC(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Dim:           dim,
		K:             k,
		Nodes:         nodes,
		Iters:         iters,
		Runs:          runs,
		AllocsPerIter: float64(after.Mallocs-before.Mallocs) / totalIters,
		BytesPerIter:  float64(after.TotalAlloc-before.TotalAlloc) / totalIters,
		NsPerIter:     float64(wall.Nanoseconds()) / totalIters,
		GCPauseNs:     after.PauseTotalNs - before.PauseTotalNs,
		NumGC:         after.NumGC - before.NumGC,
		ResultSHA256:  refSum,
		ZeroCopyViews: storage.ZeroCopyViews(),
		Metrics:       benchObs.Totals(),
	}
	fmt.Printf("  allocs/iter %.0f   bytes/iter %.0f (%.2f MB)   ns/iter %.0f (%.1f ms)\n",
		rep.AllocsPerIter, rep.BytesPerIter, rep.BytesPerIter/1e6, rep.NsPerIter, rep.NsPerIter/1e6)
	fmt.Printf("  GC cycles %d   GC pause total %v   zero-copy views %v\n",
		rep.NumGC, time.Duration(rep.GCPauseNs), rep.ZeroCopyViews)
	fmt.Printf("  result sha256 %s (bit-identical across %d runs)\n", refSum, runs+1)
	km := benchObs.Totals()
	fmt.Printf("  pipeline decodes %d   stalls %d   waits %d   overlap %d\n",
		km["dooc_kernel_pipeline_decodes_total"], km["dooc_kernel_pipeline_stalls_total"],
		km["dooc_kernel_pipeline_waits_total"], km["dooc_kernel_pipeline_overlap_total"])

	roofline, err := rooflineSweep(dim)
	if err != nil {
		return err
	}
	rep.Roofline = roofline
	fmt.Printf("  roofline (dim %d, pool width %d):\n", dim, runtime.GOMAXPROCS(0))
	fmt.Printf("    %6s %10s %9s %10s %8s %9s\n", "gap_d", "nnz", "nnz/row", "ns/mul", "GB/s", "GFLOP/s")
	for _, r := range roofline {
		fmt.Printf("    %6d %10d %9.1f %10.0f %8.2f %9.3f\n", r.D, r.NNZ, r.NNZPerRow, r.NsPerMul, r.GBps, r.GFlops)
	}

	if benchOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(benchOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", benchOut)
	}
	if gateRef != "" {
		if err := gateAgainst(gateRef, &rep); err != nil {
			return err
		}
		fmt.Printf("  perf gate vs %s: ok (sha match, allocs/iter %.0f <= %.0f)\n", gateRef, rep.AllocsPerIter, gateAllocs)
	}
	return nil
}

// gateAgainst enforces the perf regression gate: the fresh run's result
// hash must equal the reference capture's (bit-identical arithmetic across
// PRs) and allocations per iteration must stay under the ceiling.
func gateAgainst(refPath string, rep *hotpathReport) error {
	raw, err := os.ReadFile(refPath)
	if err != nil {
		return fmt.Errorf("perf gate: reading reference: %w", err)
	}
	var ref hotpathReport
	if err := json.Unmarshal(raw, &ref); err != nil {
		return fmt.Errorf("perf gate: parsing %s: %w", refPath, err)
	}
	if ref.ResultSHA256 == "" {
		return fmt.Errorf("perf gate: reference %s has no result_sha256", refPath)
	}
	if rep.ResultSHA256 != ref.ResultSHA256 {
		return fmt.Errorf("perf gate: result_sha256 %s differs from reference %s — the iterate arithmetic changed",
			rep.ResultSHA256, ref.ResultSHA256)
	}
	if gateAllocs > 0 && rep.AllocsPerIter > gateAllocs {
		return fmt.Errorf("perf gate: allocs_per_iter %.1f exceeds ceiling %.1f (reference was %.1f)",
			rep.AllocsPerIter, gateAllocs, ref.AllocsPerIter)
	}
	return nil
}

// rooflineSweep multiplies dim x dim GAP matrices of three densities
// through a persistent pool and reports streamed bandwidth vs arithmetic
// throughput. Bytes per multiply count the matrix structure plus one read
// of x and one write of y — the memory traffic a cold-cache SpMV must
// sustain; flops are 2 per stored entry.
func rooflineSweep(dim int) ([]rooflineRow, error) {
	pool := sparse.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	var rows []rooflineRow
	for _, d := range []int{2, 8, 32} {
		m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: d, Seed: 7})
		if err != nil {
			return nil, err
		}
		x := make([]float64, dim)
		y := make([]float64, dim)
		for i := range x {
			x[i] = float64(i%17) * 0.25
		}
		nnz := m.NNZ()
		reps := int(3e8 / (2*nnz + 1))
		if reps < 5 {
			reps = 5
		} else if reps > 200 {
			reps = 200
		}
		pool.MulVec(m, x, y) // warm caches and the stripe plan
		start := time.Now()
		for r := 0; r < reps; r++ {
			pool.MulVec(m, x, y)
		}
		el := time.Since(start)
		nsPerMul := float64(el.Nanoseconds()) / float64(reps)
		bytesPerMul := float64(m.Bytes() + 8*int64(dim)*2)
		rows = append(rows, rooflineRow{
			D:         d,
			NNZ:       nnz,
			NNZPerRow: float64(nnz) / float64(dim),
			NsPerMul:  nsPerMul,
			GBps:      bytesPerMul / nsPerMul, // bytes/ns == GB/s
			GFlops:    float64(2*nnz) / nsPerMul,
		})
	}
	return rows, nil
}

// sha256Floats hashes a float64 vector in its little-endian wire form.
func sha256Floats(x []float64) string {
	buf := make([]byte, 8*len(x))
	storage.EncodeFloat64s(buf, x)
	return fmt.Sprintf("%x", sha256.Sum256(buf))
}
