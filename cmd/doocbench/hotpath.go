package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dooc/internal/core"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// benchOut is the -bench-out flag: where `-exp hotpath` writes its
// machine-readable result. The checked-in BENCH_hotpath.json is a captured
// run, giving future PRs an allocation trajectory to compare against.
var benchOut string

// hotpathReport is the JSON schema of BENCH_hotpath.json. Counters are
// per-iteration averages over the measured runs; GC numbers are totals
// across the measurement window.
type hotpathReport struct {
	Experiment    string    `json:"experiment"`
	Timestamp     time.Time `json:"timestamp"`
	GoVersion     string    `json:"go_version"`
	Dim           int       `json:"dim"`
	K             int       `json:"k"`
	Nodes         int       `json:"nodes"`
	Iters         int       `json:"iters_per_run"`
	Runs          int       `json:"runs_measured"`
	AllocsPerIter float64   `json:"allocs_per_iter"`
	BytesPerIter  float64   `json:"bytes_per_iter"`
	NsPerIter     float64   `json:"ns_per_iter"`
	GCPauseNs     uint64    `json:"gc_pause_total_ns"`
	NumGC         uint32    `json:"num_gc"`
	ResultSHA256  string    `json:"result_sha256"`
	ZeroCopyViews bool      `json:"zero_copy_views"`
	// Metrics is the benchObs registry snapshot at report time (family name
	// -> summed value), so the artifact carries the run's counter state.
	Metrics map[string]int64 `json:"metrics"`
}

// hotpathRun measures the allocator cost of the steady-state data path: the
// `real` experiment's workload (out-of-core iterated SpMV, back-and-forth
// scheduling, tight memory budget) executed repeatedly between
// runtime.ReadMemStats snapshots. The interesting numbers are allocations
// and bytes per iteration — with I/O overlapped, allocator/GC churn is the
// residual per-iteration cost this harness tracks across PRs.
func hotpathRun() error {
	const dim, k, nodes, iters, runs = 4000, 5, 5, 4, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 8, Seed: 7})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	root, err := os.MkdirTemp("", "doocbench-hotpath")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	cfg := core.SpMVConfig{Dim: dim, K: k, Iters: iters, Nodes: nodes}
	if err := core.StageMatrix(root, m, cfg); err != nil {
		return err
	}
	info, err := core.DiscoverStagedMatrix(root)
	if err != nil {
		return err
	}
	blockBytes := info.Bytes / int64(k*k)
	sys, err := core.NewSystem(core.Options{
		Nodes:          nodes,
		WorkersPerNode: 1,
		MemoryBudget:   blockBytes*5/2 + 1<<16,
		ScratchRoot:    root,
		PrefetchWindow: 1,
		Reorder:        true,
		Obs:            benchObs,
		Trace:          benchTrace,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	fmt.Printf("matrix: %dx%d, %d nnz; %d nodes, K=%d, %d iterations/run, %d measured runs\n",
		dim, dim, m.NNZ(), nodes, k, iters, runs)

	// Warm-up run: pulls blocks off scratch, fills caches and pools, and
	// pins the reference result for the bit-identity check.
	run := func(tag string) (*core.SpMVResult, error) {
		c := cfg
		c.Tag = tag
		return core.RunIteratedSpMV(sys, c, x0)
	}
	ref, err := run("warm")
	if err != nil {
		return err
	}
	refSum := sha256Floats(ref.X)

	if pf := os.Getenv("HOTPATH_MEMPROFILE"); pf != "" {
		runtime.MemProfileRate = 1
		f, _ := os.Create(pf)
		defer func() { runtime.GC(); pprof.Lookup("allocs").WriteTo(f, 0); f.Close() }()
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < runs; r++ {
		res, err := run(fmt.Sprintf("hot%d", r))
		if err != nil {
			return err
		}
		if got := sha256Floats(res.X); got != refSum {
			return fmt.Errorf("hotpath run %d diverged: sha %s, want %s", r, got, refSum)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	totalIters := float64(runs * iters)
	rep := hotpathReport{
		Experiment:    "hotpath",
		Timestamp:     time.Now().UTC(),
		GoVersion:     runtime.Version(),
		Dim:           dim,
		K:             k,
		Nodes:         nodes,
		Iters:         iters,
		Runs:          runs,
		AllocsPerIter: float64(after.Mallocs-before.Mallocs) / totalIters,
		BytesPerIter:  float64(after.TotalAlloc-before.TotalAlloc) / totalIters,
		NsPerIter:     float64(wall.Nanoseconds()) / totalIters,
		GCPauseNs:     after.PauseTotalNs - before.PauseTotalNs,
		NumGC:         after.NumGC - before.NumGC,
		ResultSHA256:  refSum,
		ZeroCopyViews: storage.ZeroCopyViews(),
		Metrics:       benchObs.Totals(),
	}
	fmt.Printf("  allocs/iter %.0f   bytes/iter %.0f (%.2f MB)   ns/iter %.0f (%.1f ms)\n",
		rep.AllocsPerIter, rep.BytesPerIter, rep.BytesPerIter/1e6, rep.NsPerIter, rep.NsPerIter/1e6)
	fmt.Printf("  GC cycles %d   GC pause total %v   zero-copy views %v\n",
		rep.NumGC, time.Duration(rep.GCPauseNs), rep.ZeroCopyViews)
	fmt.Printf("  result sha256 %s (bit-identical across %d runs)\n", refSum, runs+1)

	if benchOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(benchOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", benchOut)
	}
	return nil
}

// sha256Floats hashes a float64 vector in its little-endian wire form.
func sha256Floats(x []float64) string {
	buf := make([]byte, 8*len(x))
	storage.EncodeFloat64s(buf, x)
	return fmt.Sprintf("%x", sha256.Sum256(buf))
}
