package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"dooc/internal/compress"
	"dooc/internal/core"
	"dooc/internal/obs"
	"dooc/internal/remote"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// codecRun quantifies the adaptive block-compression subsystem
// (internal/compress) end to end: per-codec ratio and throughput on the
// payloads the runtime actually moves, staged-matrix disk bytes (V1 vs the
// section-compressed DOOCCRS2 container), spill traffic and iterate time
// under a compressed scratch store, and wire bytes between a remote client
// and server that negotiated the default codec. The matrix values are
// quantized to 1/1024 steps — the limited-precision structure of physical
// matrix elements — because uniformly random mantissas are incompressible
// by construction (the random row of the table shows the bail-out handling
// exactly that case).
func codecRun() error {
	const dim, k, nodes, iters = 4000, 4, 2, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 6, Seed: 17})
	if err != nil {
		return err
	}
	for i, v := range m.Val {
		m.Val[i] = math.Round(v*1024) / 1024
	}
	fmt.Printf("matrix: %dx%d, %d nnz, values quantized to 1/1024 steps\n\n", dim, dim, m.NNZ())

	// --- per-codec microbenchmark on the natural payloads ------------------
	rowptr := make([]byte, 8*len(m.RowPtr))
	for j, p := range m.RowPtr {
		binary.LittleEndian.PutUint64(rowptr[8*j:], uint64(p))
	}
	colidx := make([]byte, 4*len(m.ColIdx))
	for j, c := range m.ColIdx {
		binary.LittleEndian.PutUint32(colidx[4*j:], uint32(c))
	}
	values := make([]byte, 8*len(m.Val))
	for j, v := range m.Val {
		binary.LittleEndian.PutUint64(values[8*j:], math.Float64bits(v))
	}
	random := make([]byte, 1<<20)
	rand.New(rand.NewSource(99)).Read(random)

	fmt.Println("per-codec ratio and throughput (adaptive frames, CRC-verified decode):")
	fmt.Println("  codec    payload          raw KB   ratio   enc MB/s  dec MB/s  note")
	cases := []struct {
		codec   string
		payload string
		data    []byte
	}{
		{"raw", "values", values},
		{"delta64", "row pointers", rowptr},
		{"delta32", "column indices", colidx},
		{"fshuf", "values", values},
		{"fshuf", "random bytes", random},
	}
	for _, c := range cases {
		codec, ok := compress.ByName(c.codec)
		if !ok {
			return fmt.Errorf("codec %q not registered", c.codec)
		}
		frame, used, encMBs := benchEncode(codec, c.data)
		decMBs, err := benchDecode(frame, c.data)
		if err != nil {
			return err
		}
		note := ""
		if used.ID() != codec.ID() {
			note = "bailed out to raw (incompressible)"
		}
		fmt.Printf("  %-7s  %-15s  %-7.0f  %-6.2f  %-8.0f  %-8.0f  %s\n",
			c.codec, c.payload, float64(len(c.data))/1e3,
			float64(len(c.data))/float64(len(frame)), encMBs, decMBs, note)
	}

	// --- staged matrix: V1 vs section-compressed V2 ------------------------
	cfg := core.SpMVConfig{Dim: dim, K: k, Iters: iters, Nodes: nodes, Tag: "codec"}
	rawRoot, err := os.MkdirTemp("", "doocbench-codec-raw")
	if err != nil {
		return err
	}
	defer os.RemoveAll(rawRoot)
	encRoot, err := os.MkdirTemp("", "doocbench-codec-enc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(encRoot)
	if err := core.StageMatrix(rawRoot, m, cfg); err != nil {
		return err
	}
	if err := core.StageMatrixCompressed(encRoot, m, cfg); err != nil {
		return err
	}
	rawInfo, err := core.DiscoverStagedMatrix(rawRoot)
	if err != nil {
		return err
	}
	encInfo, err := core.DiscoverStagedMatrix(encRoot)
	if err != nil {
		return err
	}
	fmt.Printf("\nstaged matrix on disk (K=%d, %d nodes):\n", k, nodes)
	fmt.Printf("  V1 raw CRS          %8.2f MB\n", float64(rawInfo.Bytes)/1e6)
	fmt.Printf("  V2 DOOCCRS2         %8.2f MB   (%.2fx smaller; readers auto-detect)\n",
		float64(encInfo.Bytes)/1e6, float64(rawInfo.Bytes)/float64(encInfo.Bytes))

	// --- end-to-end iterate: raw vs compressed scratch ---------------------
	rng := rand.New(rand.NewSource(4))
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = math.Round(rng.NormFloat64()*256) / 256
	}
	run := func(root string, codec compress.Codec) (*core.SpMVResult, error) {
		sys, err := core.NewSystem(core.Options{
			Nodes:          nodes,
			WorkersPerNode: 2,
			MemoryBudget:   1 << 22, // force spills and re-reads
			ScratchRoot:    root,
			PrefetchWindow: 2,
			Reorder:        true,
			Codec:          codec,
			Obs:            benchObs,
			Trace:          benchTrace,
		})
		if err != nil {
			return nil, err
		}
		defer sys.Close()
		// Checkpointed runs flush every iterate, so the produced vectors
		// really travel through the (possibly compressing) spill path.
		res, _, err := core.ResumeIteratedSpMV(sys, cfg, x0)
		return res, err
	}
	rawRes, err := run(rawRoot, nil)
	if err != nil {
		return err
	}
	encRes, err := run(encRoot, compress.Default())
	if err != nil {
		return err
	}
	for i := range rawRes.X {
		if math.Float64bits(rawRes.X[i]) != math.Float64bits(encRes.X[i]) {
			return fmt.Errorf("compressed run diverged from raw run at entry %d", i)
		}
	}
	spillRaw, spillStored := encRes.Stats.CompressRawBytes(), encRes.Stats.CompressStoredBytes()
	rawSpill := rawRes.Stats.BytesWrittenDisk()
	fmt.Printf("\nend-to-end iterated SpMV (%d iterations, checkpointed, %s spills):\n",
		iters, compress.Default().Name())
	fmt.Printf("  raw scratch         time %-12v  spill writes %8.2f MB\n",
		rawRes.Stats.Wall.Round(time.Millisecond), float64(rawSpill)/1e6)
	fmt.Printf("  compressed scratch  time %-12v  spill writes %8.2f MB  (%.2fx, %d bail-outs)\n",
		encRes.Stats.Wall.Round(time.Millisecond), float64(spillStored)/1e6,
		float64(spillRaw)/float64(spillStored), encRes.Stats.CompressBailouts())
	fmt.Println("  iterates are bit-identical across both runs")

	// --- wire: negotiated codec vs plain TCP -------------------------------
	// A single-node staging so one served scratch directory holds every
	// block (the 2-node layout splits them across node dirs).
	wireRoot, err := os.MkdirTemp("", "doocbench-codec-wire")
	if err != nil {
		return err
	}
	defer os.RemoveAll(wireRoot)
	wireCfg := cfg
	wireCfg.Nodes = 1
	if err := core.StageMatrix(wireRoot, m, wireCfg); err != nil {
		return err
	}
	wire := func(codec compress.Codec) (int64, int64, error) {
		reg := obs.NewRegistry()
		st, err := storage.NewLocal(storage.Config{
			MemoryBudget: 1 << 28, ScratchDir: wireRoot + "/node0", IOWorkers: 4,
		})
		if err != nil {
			return 0, 0, err
		}
		defer st.Close()
		srv, err := remote.ListenOptions(st, "127.0.0.1:0", remote.ServerOptions{Obs: reg})
		if err != nil {
			return 0, 0, err
		}
		defer srv.Close()
		cl, err := remote.DialOptions(srv.Addr(), remote.Options{Codec: codec, Obs: reg})
		if err != nil {
			return 0, 0, err
		}
		defer cl.Close()
		var payload int64
		for u := 0; u < k; u++ {
			for v := 0; v < k; v++ {
				data, err := cl.ReadAll(fmt.Sprintf("A_%03d_%03d", u, v))
				if err != nil {
					return 0, 0, err
				}
				payload += int64(len(data))
			}
		}
		return payload, srv.BytesOut(), nil
	}
	payload, plainWire, err := wire(nil)
	if err != nil {
		return err
	}
	_, codecWire, err := wire(compress.Default())
	if err != nil {
		return err
	}
	fmt.Printf("\nwire bytes for all %d blocks of node 0 (%.2f MB of payload) over TCP:\n", k*k, float64(payload)/1e6)
	fmt.Printf("  plain client        %8.2f MB\n", float64(plainWire)/1e6)
	fmt.Printf("  negotiated %-8s %8.2f MB   (%.2fx smaller)\n",
		compress.Default().Name(), float64(codecWire)/1e6, float64(plainWire)/float64(codecWire))

	// --- the headline ------------------------------------------------------
	before := rawInfo.Bytes + rawSpill + plainWire
	after := encInfo.Bytes + spillStored + codecWire
	fmt.Printf("\ncombined scratch+wire traffic: %.2f MB -> %.2f MB — %.2fx reduction with the default codec\n",
		float64(before)/1e6, float64(after)/1e6, float64(before)/float64(after))
	if float64(before) < 1.5*float64(after) {
		return fmt.Errorf("combined reduction %.2fx is below the 1.5x the subsystem is designed to clear",
			float64(before)/float64(after))
	}
	return nil
}

// benchEncode measures adaptive encode throughput, repeating until enough
// work has accumulated for a stable MB/s figure.
func benchEncode(c compress.Codec, data []byte) ([]byte, compress.Codec, float64) {
	var frame []byte
	var used compress.Codec
	reps, elapsed := 0, time.Duration(0)
	for elapsed < 20*time.Millisecond && reps < 200 {
		start := time.Now()
		frame, used = compress.EncodeAdaptive(c, data)
		elapsed += time.Since(start)
		reps++
	}
	return frame, used, float64(len(data)) * float64(reps) / 1e6 / elapsed.Seconds()
}

// benchDecode measures frame decode throughput and verifies the round trip.
func benchDecode(frame, want []byte) (float64, error) {
	var got []byte
	reps, elapsed := 0, time.Duration(0)
	for elapsed < 20*time.Millisecond && reps < 200 {
		start := time.Now()
		out, _, err := compress.DecodeFrame(frame)
		if err != nil {
			return 0, err
		}
		elapsed += time.Since(start)
		got = out
		reps++
	}
	if !bytes.Equal(got, want) {
		return 0, fmt.Errorf("decode round trip mismatch")
	}
	return float64(len(want)) * float64(reps) / 1e6 / elapsed.Seconds(), nil
}
