package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"dooc/internal/core"
	"dooc/internal/jobs"
	"dooc/internal/sparse"
)

// jobsRun measures the multi-tenant job service: the same four solve
// requests run serially (one job slot) and then 4-way concurrently over
// one shared out-of-core system, checking every per-job result is
// bit-identical across the two schedules. The matrix is staged to scratch
// under a tight memory budget, so each job spends much of its life waiting
// on block I/O — exactly the stalls a co-scheduled job can fill. Fixed-order
// reductions make each job's result independent of what else the service is
// running — that is the property that lets tenants share a machine without
// renting determinism away.
func jobsRun() error {
	const (
		dim   = 2400
		k     = 3
		nodes = 2
	)
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 8, Seed: 7})
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "doocbench-jobs")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	base := core.SpMVConfig{Dim: dim, K: k, Nodes: nodes}
	stage := base
	stage.Iters = 1
	if err := core.StageMatrix(root, m, stage); err != nil {
		return err
	}
	info, err := core.DiscoverStagedMatrix(root)
	if err != nil {
		return err
	}
	// ~3 matrix blocks per node resident: every iteration re-reads most of
	// the sub-matrices from scratch.
	blockBytes := info.Bytes / int64(k*k)
	sys, err := core.NewSystem(core.Options{
		Nodes:          nodes,
		WorkersPerNode: 2,
		MemoryBudget:   blockBytes*3 + 1<<18,
		ScratchRoot:    root,
		PrefetchWindow: 1,
		Obs:            benchObs,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	reqs := []jobs.SolveRequest{
		{Tenant: "alice", Priority: 1, Iters: 12, Seed: 1, MemoryBytes: 1 << 24},
		{Tenant: "bob", Priority: 9, Iters: 12, Seed: 2, MemoryBytes: 1 << 24},
		{Tenant: "alice", Priority: 5, Iters: 12, Seed: 3},
		{Tenant: "carol", Priority: 3, Iters: 12, Seed: 4, ScratchBytes: 1 << 30},
	}

	// One SLO tracker spans both schedules; generous objectives so the table
	// shows real burn only when a schedule actually degrades latency.
	slo := jobs.NewSLOTracker(jobs.SLOConfig{
		QueueObjective: 2 * time.Second,
		RunObjective:   30 * time.Second,
		Obs:            benchObs,
	})

	runMode := func(maxRunning int) ([][]byte, []jobs.JobStatus, time.Duration, error) {
		svc := jobs.NewSolverService(sys, base, jobs.Config{MaxRunning: maxRunning, QueueDepth: 16, SLO: slo})
		start := time.Now()
		ids := make([]int64, len(reqs))
		for i, r := range reqs {
			st, err := svc.Submit(r)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("submit %d: %w", i, err)
			}
			ids[i] = st.ID
		}
		results := make([][]byte, len(reqs))
		for i, id := range ids {
			res, err := svc.Manager.Result(id)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("job %d: %w", id, err)
			}
			results[i] = res
		}
		wall := time.Since(start)
		finals := make([]jobs.JobStatus, len(ids))
		for i, id := range ids {
			finals[i], _ = svc.Manager.Status(id)
		}
		return results, finals, wall, nil
	}

	serial, serialFinals, serialWall, err := runMode(1)
	if err != nil {
		return fmt.Errorf("serial: %w", err)
	}
	conc, finals, concWall, err := runMode(len(reqs))
	if err != nil {
		return fmt.Errorf("concurrent: %w", err)
	}

	fmt.Printf("%d jobs (dim=%d K=%d nodes=%d, out-of-core, 12 iterations each, mixed priorities)\n\n", len(reqs), dim, k, nodes)
	fmt.Printf("%-24s %10s %14s\n", "schedule", "wall", "jobs/s")
	fmt.Printf("%-24s %10v %14.2f\n", "serial (max-jobs=1)", serialWall.Round(time.Millisecond), float64(len(reqs))/serialWall.Seconds())
	fmt.Printf("%-24s %10v %14.2f\n", fmt.Sprintf("concurrent (max-jobs=%d)", len(reqs)), concWall.Round(time.Millisecond), float64(len(reqs))/concWall.Seconds())
	fmt.Printf("\nthroughput ratio %.2fx (work-conserving: a lone job already keeps the\nmachine busy, so co-scheduling buys latency isolation, not extra FLOPs)\n\n", serialWall.Seconds()/concWall.Seconds())

	fmt.Printf("%-8s %-8s %-10s %16s %16s %6s\n", "tenant", "priority", "state", "serial q-wait", "conc q-wait", "ident")
	var serialWait, concWait float64
	for i, st := range finals {
		ident := "YES"
		if !bytes.Equal(serial[i], conc[i]) {
			ident = "NO"
		}
		serialWait += serialFinals[i].QueueWait
		concWait += st.QueueWait
		fmt.Printf("%-8s %-8d %-10s %15.3fs %15.3fs %6s\n",
			st.Tenant, st.Priority, st.State, serialFinals[i].QueueWait, st.QueueWait, ident)
		if ident == "NO" {
			return fmt.Errorf("job %d: concurrent result differs from serial", i)
		}
	}
	n := float64(len(reqs))
	fmt.Printf("\nmean queue-wait: serial %.3fs, concurrent %.3fs\n", serialWait/n, concWait/n)

	fmt.Printf("\nper-tenant SLO (queue<=%v run<=%v, both schedules):\n", slo.QueueObjective(), slo.RunObjective())
	fmt.Printf("%-8s %6s %14s %12s %12s %12s\n", "tenant", "jobs", "queue-breach", "run-breach", "mean-queue", "mean-run")
	for _, s := range slo.Summary() {
		fmt.Printf("%-8s %6d %13.1f%% %11.1f%% %11.3fs %11.3fs\n",
			s.Tenant, s.Jobs, 100*s.QueueBurn, 100*s.RunBurn, s.MeanQueueSec, s.MeanRunSec)
	}
	fmt.Println("\nEvery job's result is bit-identical under both schedules: fixed-order")
	fmt.Println("reductions make results scheduling-independent, so co-tenancy is free")
	fmt.Println("of numeric noise.")
	return nil
}
