package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"dooc/internal/core"
	"dooc/internal/jobs"
	"dooc/internal/obs"
	"dooc/internal/proxy"
	"dooc/internal/remote"
	"dooc/internal/sparse"
)

// proxyBenchOut is the -proxy-bench-out flag: where `-exp proxy` writes its
// machine-readable result. The checked-in BENCH_proxy.json is a captured
// run, pinning the by-value vs by-reference wire-byte ratio across PRs.
var proxyBenchOut string

// proxyReport is the JSON schema of BENCH_proxy.json.
type proxyReport struct {
	Experiment   string    `json:"experiment"`
	Timestamp    time.Time `json:"timestamp"`
	GoVersion    string    `json:"go_version"`
	Dim          int       `json:"dim"`
	K            int       `json:"k"`
	Nodes        int       `json:"nodes"`
	ProducerIter int       `json:"producer_iters"`
	ConsumerIter int       `json:"consumer_iters"`
	Consumers    int       `json:"consumers"`
	PayloadBytes int64     `json:"payload_bytes"`

	// Fan-out: every consumer obtains the producer's result — the full
	// vector by value, a ~100-byte handle by reference.
	ByValueWallMs float64 `json:"by_value_wall_ms"`
	ByValueBytes  int64   `json:"by_value_client_bytes"`
	ByRefWallMs   float64 `json:"by_reference_wall_ms"`
	ByRefBytes    int64   `json:"by_reference_client_bytes"`

	// Chained dataflow: job B consumes job A's handle server-side.
	ChainIdentical bool    `json:"chain_bit_identical"`
	ChainHopBytes  int64   `json:"chain_hop_client_bytes"`
	ChainWallMs    float64 `json:"chain_wall_ms"`

	ServerResolves    int64 `json:"server_resolves_total"`
	ResolvedBytes     int64 `json:"server_resolved_bytes_total"`
	HandlesRegistered int64 `json:"handles_registered_total"`
}

// proxyRun measures the proxy-object result plane against the by-value
// baseline on the scenario ROADMAP item 1 calls out: one producer job whose
// result fans out to 8 consumers. By value every consumer drags the full
// result vector over its client link; by reference each receives a compact
// handle naming the iterate and the payload stays on the server. A chained
// consumer job (input = the producer's handle) then continues the
// computation bit-identically to one unchained run, with zero result bytes
// crossing the client link between the jobs — verified with the clients'
// own received-payload-byte counters.
func proxyRun() error {
	const (
		dim          = 10000
		k            = 4
		nodes        = 2
		producerIter = 6
		consumerIter = 2
		consumers    = 8
	)
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 8, Seed: 7})
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(core.Options{Nodes: nodes, WorkersPerNode: 2, Obs: benchObs})
	if err != nil {
		return err
	}
	defer sys.Close()
	base := core.SpMVConfig{Dim: dim, K: k, Nodes: nodes}
	load := base
	load.Iters = 1
	if err := core.LoadMatrixInMemory(sys, m, load); err != nil {
		return err
	}
	reg := proxy.NewRegistry(proxy.Config{Scope: "bench", Obs: benchObs, OnReclaim: func(_ proxy.Handle, arrays []string) {
		for _, a := range arrays {
			core.DropArray(sys, a)
		}
	}})
	defer reg.Close()
	svc := jobs.NewSolverService(sys, base, jobs.Config{MaxRunning: 4, QueueDepth: 64, Proxy: reg, Obs: benchObs})
	defer svc.Manager.Drain()
	srv, err := remote.ListenOptions(sys.Store(0), "127.0.0.1:0", remote.ServerOptions{Jobs: svc})
	if err != nil {
		return err
	}
	defer srv.Close()

	// Producer: one job whose iterate every consumer wants.
	prod, err := svc.Submit(jobs.SolveRequest{Tenant: "producer", Iters: producerIter, Seed: 7})
	if err != nil {
		return err
	}
	prodBytes, err := svc.Manager.Result(prod.ID)
	if err != nil {
		return err
	}
	hProd, err := svc.ResultProxy(prod.ID)
	if err != nil {
		return err
	}

	// fanOut runs `consumers` parallel clients, each executing fetch, and
	// returns the wall time and the result-payload bytes that crossed the
	// client links (the clients' own received-byte counters).
	fanOut := func(fetch func(cl *remote.Client) error) (time.Duration, int64, error) {
		clObs := obs.NewRegistry()
		cls := make([]*remote.Client, consumers)
		for i := range cls {
			cl, err := remote.DialOptions(srv.Addr(), remote.Options{Handshake: true, Obs: clObs})
			if err != nil {
				return 0, 0, err
			}
			defer cl.Close()
			cls[i] = cl
		}
		start := time.Now()
		errs := make([]error, consumers)
		var wg sync.WaitGroup
		for i, cl := range cls {
			wg.Add(1)
			go func(i int, cl *remote.Client) {
				defer wg.Done()
				errs[i] = fetch(cl)
			}(i, cl)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, 0, err
			}
		}
		return wall, clObs.Sum("dooc_remote_client_bytes_in_total"), nil
	}

	// By value: every consumer downloads the full result vector.
	valueWall, valueBytes, err := fanOut(func(cl *remote.Client) error {
		data, _, err := cl.JobResult(prod.ID)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, prodBytes) {
			return fmt.Errorf("by-value consumer got divergent bytes")
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("by-value fan-out: %w", err)
	}

	// By reference: every consumer receives the handle — the payload stays
	// on the server, addressable for later chaining or resolve-on-demand.
	refWall, refBytes, err := fanOut(func(cl *remote.Client) error {
		h, _, err := cl.JobProxy(prod.ID)
		if err != nil {
			return err
		}
		if h.Length != int64(len(prodBytes)) {
			return fmt.Errorf("handle names %d bytes, result is %d", h.Length, len(prodBytes))
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("by-reference fan-out: %w", err)
	}

	// Chained dataflow over the wire: submit B with A's handle as input and
	// collect B by reference too. The client's byte counter proves no
	// result vector crossed its link on the A->B hop.
	chainStart := time.Now()
	var hChain proxy.Handle
	hopBytes, err := func() (int64, error) {
		clObs := obs.NewRegistry()
		cl, err := remote.DialOptions(srv.Addr(), remote.Options{Handshake: true, Obs: clObs})
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		st, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "chain", Iters: consumerIter, Input: hProd.Ref()})
		if err != nil {
			return 0, err
		}
		h, final, err := cl.JobProxy(st.ID)
		if err != nil {
			return 0, err
		}
		if final.State != "done" {
			return 0, fmt.Errorf("chained job finished %s", final.State)
		}
		hChain = h
		return clObs.Sum("dooc_remote_client_bytes_in_total"), nil
	}()
	if err != nil {
		return fmt.Errorf("chained submit: %w", err)
	}
	chainWallDone := time.Since(chainStart)

	// Bit-identity: the chained result equals one unchained
	// producerIter+consumerIter run from the producer's seed.
	chained, err := svc.ResolveProxy(hChain.Ref())
	if err != nil {
		return err
	}
	unchained, err := svc.Submit(jobs.SolveRequest{Tenant: "check", Iters: producerIter + consumerIter, Seed: 7})
	if err != nil {
		return err
	}
	ref, err := svc.Manager.Result(unchained.ID)
	if err != nil {
		return err
	}
	identical := bytes.Equal(chained, ref)

	payload := int64(len(prodBytes))
	rep := proxyReport{
		Experiment:        "proxy",
		Timestamp:         time.Now().UTC(),
		GoVersion:         runtime.Version(),
		Dim:               dim,
		K:                 k,
		Nodes:             nodes,
		ProducerIter:      producerIter,
		ConsumerIter:      consumerIter,
		Consumers:         consumers,
		PayloadBytes:      payload,
		ByValueWallMs:     float64(valueWall.Microseconds()) / 1e3,
		ByValueBytes:      valueBytes,
		ByRefWallMs:       float64(refWall.Microseconds()) / 1e3,
		ByRefBytes:        refBytes,
		ChainIdentical:    identical,
		ChainHopBytes:     hopBytes,
		ChainWallMs:       float64(chainWallDone.Microseconds()) / 1e3,
		ServerResolves:    benchObs.Sum("dooc_proxy_resolved_total"),
		ResolvedBytes:     benchObs.Sum("dooc_proxy_resolved_bytes_total"),
		HandlesRegistered: benchObs.Sum("dooc_proxy_registered_total"),
	}

	fmt.Printf("1 producer (dim=%d, %d iters, %d-byte result) fanned out to %d consumers over real TCP\n\n",
		dim, producerIter, payload, consumers)
	fmt.Printf("%-32s %12s %16s %16s\n", "mode", "wall", "client bytes", "bytes/consumer")
	fmt.Printf("%-32s %12v %16d %16d\n", "by-value (8x job-result)",
		valueWall.Round(time.Microsecond), valueBytes, valueBytes/consumers)
	fmt.Printf("%-32s %12v %16d %16d\n", "by-reference (8x job-proxy)",
		refWall.Round(time.Microsecond), refBytes, refBytes/consumers)
	fmt.Printf("\nresult-vector bytes on the client links: %d by value, %d by reference\n", valueBytes, refBytes)
	fmt.Printf("\nchained dataflow (B input = A's handle, both collected by reference):\n")
	fmt.Printf("  wall %v   client result bytes on the A->B hop: %d\n",
		chainWallDone.Round(time.Millisecond), hopBytes)
	fmt.Printf("  chained result bit-identical to unchained %d-iteration run: %v\n",
		producerIter+consumerIter, identical)
	fmt.Printf("server-side: %d handles registered, %d resolves, %d bytes materialized in-server\n",
		rep.HandlesRegistered, rep.ServerResolves, rep.ResolvedBytes)
	if !identical {
		return fmt.Errorf("chained result diverged from the by-value path")
	}
	if hopBytes != 0 {
		return fmt.Errorf("%d result bytes crossed the client link on the chained hop, want 0", hopBytes)
	}

	if proxyBenchOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(proxyBenchOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", proxyBenchOut)
	}
	return nil
}
