// Command doocserve plays the I/O-node role: it serves a scratch directory
// of staged arrays (e.g. doocgen output for one node) over TCP, so compute
// processes on other machines — or other terminals — can fetch blocks with
// the internal/remote client. This is the paper's compute-node / I/O-node
// separation across real OS processes.
//
// Usage:
//
//	doocgen  -out /tmp/stage -dim 8000 -nnz 800000 -k 4 -nodes 1
//	doocserve -scratch /tmp/stage/node0 -listen 127.0.0.1:7777
//
// Then, from another process, dial 127.0.0.1:7777 with remote.Dial and
// ReadAll("A_000_000") etc.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"dooc/internal/remote"
	"dooc/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocserve: ")
	var (
		scratch = flag.String("scratch", "", "scratch directory to serve (required)")
		listen  = flag.String("listen", "127.0.0.1:7777", "listen address")
		mem     = flag.Int64("mem", 1<<30, "server-side memory budget in bytes")
		stats   = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
	)
	flag.Parse()
	if *scratch == "" {
		flag.Usage()
		os.Exit(2)
	}
	st, err := storage.NewLocal(storage.Config{MemoryBudget: *mem, ScratchDir: *scratch, IOWorkers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	srv, err := remote.Listen(st, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("serving %s on %s", *scratch, srv.Addr())

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				s := st.Stats()
				fmt.Printf("requests=%d out=%.1fMB in=%.1fMB disk-read=%.1fMB resident=%.1fMB\n",
					srv.Requests(), float64(srv.BytesOut())/1e6, float64(srv.BytesIn())/1e6,
					float64(s.BytesReadDisk)/1e6, float64(s.MemUsed)/1e6)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down after %d requests", srv.Requests())
}
