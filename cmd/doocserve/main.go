// Command doocserve plays the I/O-node role: it serves a scratch directory
// of staged arrays (e.g. doocgen output for one node) over TCP, so compute
// processes on other machines — or other terminals — can fetch blocks with
// the internal/remote client. This is the paper's compute-node / I/O-node
// separation across real OS processes.
//
// Usage:
//
//	doocgen  -out /tmp/stage -dim 8000 -nnz 800000 -k 4 -nodes 1
//	doocserve -scratch /tmp/stage/node0 -listen 127.0.0.1:7777
//
// Then, from another process, dial 127.0.0.1:7777 with remote.Dial and
// ReadAll("A_000_000") etc.
//
// With -http, the server also exposes Prometheus-style metrics on
// GET /metrics (dooc_storage_* and dooc_remote_server_* series), liveness
// and readiness probes on /healthz and /readyz (readiness flips to 503 the
// moment a shutdown signal arrives), and the standard net/http/pprof
// profiling endpoints under /debug/pprof/.
//
// With -jobs, doocserve becomes a multi-tenant solver service instead of a
// plain block server: -scratch must point at a staged matrix root (doocgen
// -out), a core.System spanning the staged node count is built over it, and
// the TCP endpoint accepts the job verbs (submit/status/cancel/result/list
// — see doocrun -server for the client side). -max-jobs bounds concurrent
// jobs, -queue-depth bounds waiting ones, and -job-mem caps the aggregate
// admitted memory reservation; over-capacity submissions are rejected with
// typed errors, never queued blocking. The HTTP listener additionally
// serves GET /jobs, a JSON array of every job's status.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dooc/internal/compress"
	"dooc/internal/core"
	"dooc/internal/jobs"
	"dooc/internal/jobstore"
	"dooc/internal/obs"
	"dooc/internal/remote"
	"dooc/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocserve: ")
	var (
		scratch   = flag.String("scratch", "", "scratch directory to serve (required)")
		listen    = flag.String("listen", "127.0.0.1:7777", "listen address")
		mem       = flag.Int64("mem", 1<<30, "server-side memory budget in bytes")
		stats     = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
		httpAddr  = flag.String("http", "", "HTTP address for /metrics and /debug/pprof (empty = off)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
		codecName = flag.String("codec", "", "compress scratch spills and wire payloads with this codec (empty = off, \"default\" = "+compress.Default().Name()+")")
		jobsMode  = flag.Bool("jobs", false, "run as a multi-tenant solver service over the staged matrix in -scratch")
		maxJobs   = flag.Int("max-jobs", 2, "jobs mode: maximum concurrently running jobs")
		queueDep  = flag.Int("queue-depth", 8, "jobs mode: maximum queued jobs before submissions are rejected")
		jobMem    = flag.Int64("job-mem", 0, "jobs mode: aggregate memory budget for admitted jobs (0 = unlimited)")
		workers   = flag.Int("workers", 2, "jobs mode: computing filters per node")
		jobStore  = flag.String("job-store", "", "jobs mode: durable job-store directory — journal every transition, recover queued/interrupted jobs on boot (empty = in-memory)")
		jobHist   = flag.Int("job-history", 1024, "jobs mode: terminal jobs retained in the durable store across compactions")
		traceOut  = flag.String("trace", "", "jobs mode: write a Chrome trace of job lifecycle, engine, and storage spans to this file at shutdown")
		sloQueue  = flag.Int64("slo-queue-ms", 0, "jobs mode: queue-wait SLO objective in milliseconds (0 = track latency without breach accounting)")
		sloRun    = flag.Int64("slo-run-ms", 0, "jobs mode: run-latency SLO objective in milliseconds (0 = track latency without breach accounting)")
		flightN   = flag.Int("flight-events", 0, "jobs mode: per-job flight-recorder ring size (0 = default)")
	)
	flag.Parse()
	if *scratch == "" {
		flag.Usage()
		os.Exit(2)
	}
	var codec compress.Codec
	switch *codecName {
	case "", "none":
	case "default":
		codec = compress.Default()
	default:
		var ok bool
		if codec, ok = compress.ByName(*codecName); !ok {
			log.Fatalf("unknown codec %q (registered: %v)", *codecName, compress.Names())
		}
	}
	reg := obs.NewRegistry()
	health := &jobs.Health{}

	// Build the served store: a plain scratch-directory store, or — in jobs
	// mode — node 0 of a full system spanning the staged matrix, with a
	// solver service in front.
	var (
		srv        *remote.Server
		svc        *jobs.SolverService
		statsStore *storage.Store
	)
	var tracer *obs.Tracer
	var slo *jobs.SLOTracker
	if *jobsMode {
		info, err := core.DiscoverStagedMatrix(*scratch)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("staged matrix: dim=%d K=%d nodes=%d nnz=%d (%.1f MB)",
			info.Dim, info.K, info.Nodes, info.NNZ, float64(info.Bytes)/1e6)
		if *traceOut != "" {
			tracer = obs.NewTracer()
		}
		slo = jobs.NewSLOTracker(jobs.SLOConfig{
			QueueObjective: time.Duration(*sloQueue) * time.Millisecond,
			RunObjective:   time.Duration(*sloRun) * time.Millisecond,
			Obs:            reg,
		})
		sys, err := core.NewSystem(core.Options{
			Nodes:          info.Nodes,
			WorkersPerNode: *workers,
			MemoryBudget:   *mem,
			ScratchRoot:    *scratch,
			Obs:            reg,
			Codec:          codec,
			Trace:          tracer,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
		jcfg := jobs.Config{
			MaxRunning: *maxJobs, QueueDepth: *queueDep, MemoryBudget: *jobMem, Obs: reg,
			Trace: tracer, SLO: slo, FlightEvents: *flightN,
		}
		if *jobStore != "" {
			store, err := jobstore.Open(*jobStore, jobstore.Options{RetainHistory: *jobHist, Obs: reg})
			if err != nil {
				log.Fatalf("opening job store: %v", err)
			}
			defer store.Close()
			jcfg.Store = store
		}
		svc = jobs.NewSolverService(sys,
			core.SpMVConfig{Dim: info.Dim, K: info.K, Nodes: info.Nodes},
			jcfg)
		if *jobStore != "" {
			rec, err := svc.Recover()
			if err != nil {
				log.Fatalf("recovering job store: %v", err)
			}
			torn := ""
			if rec.Torn {
				torn = ", torn WAL tail repaired"
			}
			log.Printf("job store %s: replayed in %v (%d historical, %d requeued, %d resumed, %d unrecoverable%s)",
				*jobStore, rec.ReplayDuration.Round(time.Microsecond), rec.Historical, rec.Requeued, rec.Resumed, rec.Failed, torn)
		}
		statsStore = sys.Store(0)
		srv, err = remote.ListenOptions(statsStore, *listen, remote.ServerOptions{Obs: reg, Codec: codec, Jobs: svc})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("job service on %s (max-jobs=%d queue-depth=%d job-mem=%d)", srv.Addr(), *maxJobs, *queueDep, *jobMem)
		// /healthz detail: SLO standings per tenant, so a probe shows burn
		// without scraping /metrics.
		health.SetDetail(func() any {
			return struct {
				SLO []jobs.SLOSummary `json:"slo"`
			}{slo.Summary()}
		})
	} else {
		st, err := storage.NewLocal(storage.Config{MemoryBudget: *mem, ScratchDir: *scratch, IOWorkers: 4, Obs: reg, Codec: codec})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		statsStore = st
		srv, err = remote.ListenOptions(st, *listen, remote.ServerOptions{Obs: reg, Codec: codec})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving %s on %s", *scratch, srv.Addr())
	}
	if codec != nil {
		log.Printf("codec %s on scratch spills and negotiated wire payloads", codec.Name())
	}

	var httpSrv *http.Server
	if *httpAddr != "" {
		// net/http/pprof registered its handlers on DefaultServeMux at
		// import; add /metrics and the probes beside them.
		http.Handle("/metrics", obs.Handler(reg))
		http.HandleFunc("/healthz", health.Healthz)
		http.HandleFunc("/readyz", health.Readyz)
		if svc != nil {
			http.HandleFunc("/jobs", svc.ServeJobs)
			http.HandleFunc("/jobs/history", svc.ServeHistory)
			http.HandleFunc("/jobs/", svc.ServeJobItem)
		}
		httpSrv = &http.Server{Addr: *httpAddr}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics, pprof on http://%s/debug/pprof/", *httpAddr, *httpAddr)
	}

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				s := statsStore.Stats()
				fmt.Printf("requests=%d out=%.1fMB in=%.1fMB disk-read=%.1fMB resident=%.1fMB\n",
					srv.Requests(), float64(srv.BytesOut())/1e6, float64(srv.BytesIn())/1e6,
					float64(s.BytesReadDisk)/1e6, float64(s.MemUsed)/1e6)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Readiness flips first so load balancers stop sending work, then the
	// job manager drains (cancelling stragglers at the timeout), then the
	// RPC and HTTP listeners shut down.
	health.SetDraining(true)
	log.Printf("draining (up to %v) after %d requests", *drain, srv.Requests())
	if svc != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := svc.Manager.DrainContext(ctx)
		cancel()
		if err != nil {
			if *jobStore != "" {
				// Durable mode: the interrupted jobs are journaled (the drain
				// marker too) and will resume from their checkpoints on the
				// next boot — no need to burn their progress by cancelling.
				log.Printf("drain timeout: outstanding jobs stay journaled and resume on next start")
			} else {
				log.Printf("drain timeout: cancelling outstanding jobs")
				for _, j := range svc.Manager.List() {
					_ = svc.Manager.Cancel(j.ID)
				}
				_ = svc.Manager.DrainContext(context.Background())
			}
		}
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		_ = httpSrv.Shutdown(ctx)
		cancel()
	}
	srv.Shutdown(*drain)
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			log.Printf("writing trace: %v", err)
		} else {
			log.Printf("wrote %d trace events to %s", tracer.Len(), *traceOut)
		}
	}
	log.Printf("shut down after %d requests", srv.Requests())
}
