// Command doocserve plays the I/O-node role: it serves a scratch directory
// of staged arrays (e.g. doocgen output for one node) over TCP, so compute
// processes on other machines — or other terminals — can fetch blocks with
// the internal/remote client. This is the paper's compute-node / I/O-node
// separation across real OS processes.
//
// Usage:
//
//	doocgen  -out /tmp/stage -dim 8000 -nnz 800000 -k 4 -nodes 1
//	doocserve -scratch /tmp/stage/node0 -listen 127.0.0.1:7777
//
// Then, from another process, dial 127.0.0.1:7777 with remote.Dial and
// ReadAll("A_000_000") etc.
//
// With -http, the server also exposes Prometheus-style metrics on
// GET /metrics (dooc_storage_* and dooc_remote_server_* series) and the
// standard net/http/pprof profiling endpoints under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dooc/internal/compress"
	"dooc/internal/obs"
	"dooc/internal/remote"
	"dooc/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocserve: ")
	var (
		scratch   = flag.String("scratch", "", "scratch directory to serve (required)")
		listen    = flag.String("listen", "127.0.0.1:7777", "listen address")
		mem       = flag.Int64("mem", 1<<30, "server-side memory budget in bytes")
		stats     = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
		httpAddr  = flag.String("http", "", "HTTP address for /metrics and /debug/pprof (empty = off)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
		codecName = flag.String("codec", "", "compress scratch spills and wire payloads with this codec (empty = off, \"default\" = "+compress.Default().Name()+")")
	)
	flag.Parse()
	if *scratch == "" {
		flag.Usage()
		os.Exit(2)
	}
	var codec compress.Codec
	switch *codecName {
	case "", "none":
	case "default":
		codec = compress.Default()
	default:
		var ok bool
		if codec, ok = compress.ByName(*codecName); !ok {
			log.Fatalf("unknown codec %q (registered: %v)", *codecName, compress.Names())
		}
	}
	reg := obs.NewRegistry()
	st, err := storage.NewLocal(storage.Config{MemoryBudget: *mem, ScratchDir: *scratch, IOWorkers: 4, Obs: reg, Codec: codec})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	srv, err := remote.ListenOptions(st, *listen, remote.ServerOptions{Obs: reg, Codec: codec})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s on %s", *scratch, srv.Addr())
	if codec != nil {
		log.Printf("codec %s on scratch spills and negotiated wire payloads", codec.Name())
	}

	var httpSrv *http.Server
	if *httpAddr != "" {
		// net/http/pprof registered its handlers on DefaultServeMux at
		// import; add /metrics beside them.
		http.Handle("/metrics", obs.Handler(reg))
		httpSrv = &http.Server{Addr: *httpAddr}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics, pprof on http://%s/debug/pprof/", *httpAddr, *httpAddr)
	}

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				s := st.Stats()
				fmt.Printf("requests=%d out=%.1fMB in=%.1fMB disk-read=%.1fMB resident=%.1fMB\n",
					srv.Requests(), float64(srv.BytesOut())/1e6, float64(srv.BytesIn())/1e6,
					float64(s.BytesReadDisk)/1e6, float64(s.MemUsed)/1e6)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining (up to %v) after %d requests", *drain, srv.Requests())
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		_ = httpSrv.Shutdown(ctx)
		cancel()
	}
	srv.Shutdown(*drain)
	log.Printf("shut down after %d requests", srv.Requests())
}
