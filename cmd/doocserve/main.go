// Command doocserve plays the I/O-node role: it serves a scratch directory
// of staged arrays (e.g. doocgen output for one node) over TCP, so compute
// processes on other machines — or other terminals — can fetch blocks with
// the internal/remote client. This is the paper's compute-node / I/O-node
// separation across real OS processes.
//
// Usage:
//
//	doocgen  -out /tmp/stage -dim 8000 -nnz 800000 -k 4 -nodes 1
//	doocserve -scratch /tmp/stage/node0 -listen 127.0.0.1:7777
//
// Then, from another process, dial 127.0.0.1:7777 with remote.Dial and
// ReadAll("A_000_000") etc.
//
// With -http, the server also exposes Prometheus-style metrics on
// GET /metrics (dooc_storage_* and dooc_remote_server_* series), liveness
// and readiness probes on /healthz and /readyz (readiness flips to 503 the
// moment a shutdown signal arrives), and the standard net/http/pprof
// profiling endpoints under /debug/pprof/.
//
// With -jobs, doocserve becomes a multi-tenant solver service instead of a
// plain block server: -scratch must point at a staged matrix root (doocgen
// -out), a core.System spanning the staged node count is built over it, and
// the TCP endpoint accepts the job verbs (submit/status/cancel/result/list
// — see doocrun -server for the client side). -max-jobs bounds concurrent
// jobs, -queue-depth bounds waiting ones, and -job-mem caps the aggregate
// admitted memory reservation; over-capacity submissions are rejected with
// typed errors, never queued blocking. The HTTP listener additionally
// serves GET /jobs, a JSON array of every job's status.
//
// Jobs mode also runs the proxy result plane (on by default, -proxy=false
// to disable): every completed job registers its iterate as a refcounted
// handle (name@epoch[@scope]) that clients stat, addref, release, and
// resolve over the wire, and that a later job can consume as its starting
// vector (doocrun -input-proxy) without the payload ever crossing a
// client link. Handles journal through -job-store and survive restart;
// arrays are reclaimed on the last reference drop, -proxy-ttl bounds
// unclaimed origin leases, and -proxy-max / -proxy-bytes cap per-tenant
// handles and resident bytes. The HTTP listener serves GET /proxies, the
// live handle table as JSON.
//
// With -node-id (and -peers), the process joins a peer-to-peer sharded
// storage ring spanning several doocserve processes: written blocks are
// pushed to their consistent-hash owners, misses are forwarded to the owner
// peer, hot read blocks are replicated locally with epoch invalidation, and
// a peer death fails the engine nodes mapped to it onto the survivors. The
// HTTP listener additionally serves GET /cluster, the live membership view
// and shard counters as JSON. Peers dial this node at -advertise (default
// -listen, which must then carry a concrete host: wildcard and host-less
// listen addresses are rejected because remote peers cannot dial them).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"dooc/internal/cluster"
	"dooc/internal/compress"
	"dooc/internal/core"
	"dooc/internal/jobs"
	"dooc/internal/jobstore"
	"dooc/internal/obs"
	"dooc/internal/proxy"
	"dooc/internal/remote"
	"dooc/internal/storage"
)

// parsePeers decodes the -peers flag: a comma-separated id=addr list.
func parsePeers(s string) ([]cluster.Member, error) {
	if s == "" {
		return nil, nil
	}
	var out []cluster.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=addr)", part)
		}
		out = append(out, cluster.Member{ID: id, Addr: addr})
	}
	return out, nil
}

// hotSpMVArray marks the SpMV input vector generations — x_t blocks, read
// by every owning sub-matrix each iteration — as read-replica candidates.
// Array names may carry a job prefix ("job3:x_0_1").
func hotSpMVArray(array string) bool {
	if i := strings.LastIndexByte(array, ':'); i >= 0 {
		array = array[i+1:]
	}
	return strings.HasPrefix(array, "x_")
}

// deathHook late-binds the cluster's OnDeath callback: the cluster node
// must exist before the engine it notifies is built.
type deathHook struct {
	mu sync.Mutex
	fn func(id string)
}

func (h *deathHook) set(fn func(id string)) {
	h.mu.Lock()
	h.fn = fn
	h.mu.Unlock()
}

func (h *deathHook) call(id string) {
	h.mu.Lock()
	fn := h.fn
	h.mu.Unlock()
	if fn != nil {
		fn(id)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocserve: ")
	var (
		scratch   = flag.String("scratch", "", "scratch directory to serve (required)")
		listen    = flag.String("listen", "127.0.0.1:7777", "listen address")
		mem       = flag.Int64("mem", 1<<30, "server-side memory budget in bytes")
		stats     = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
		httpAddr  = flag.String("http", "", "HTTP address for /metrics and /debug/pprof (empty = off)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
		codecName = flag.String("codec", "", "compress scratch spills and wire payloads with this codec (empty = off, \"default\" = "+compress.Default().Name()+")")
		jobsMode  = flag.Bool("jobs", false, "run as a multi-tenant solver service over the staged matrix in -scratch")
		maxJobs   = flag.Int("max-jobs", 2, "jobs mode: maximum concurrently running jobs")
		queueDep  = flag.Int("queue-depth", 8, "jobs mode: maximum queued jobs before submissions are rejected")
		jobMem    = flag.Int64("job-mem", 0, "jobs mode: aggregate memory budget for admitted jobs (0 = unlimited)")
		workers   = flag.Int("workers", 2, "jobs mode: computing filters per node")
		jobStore  = flag.String("job-store", "", "jobs mode: durable job-store directory — journal every transition, recover queued/interrupted jobs on boot (empty = in-memory)")
		jobHist   = flag.Int("job-history", 1024, "jobs mode: terminal jobs retained in the durable store across compactions")
		traceOut  = flag.String("trace", "", "jobs mode: write a Chrome trace of job lifecycle, engine, and storage spans to this file at shutdown")
		sloQueue  = flag.Int64("slo-queue-ms", 0, "jobs mode: queue-wait SLO objective in milliseconds (0 = track latency without breach accounting)")
		sloRun    = flag.Int64("slo-run-ms", 0, "jobs mode: run-latency SLO objective in milliseconds (0 = track latency without breach accounting)")
		flightN   = flag.Int("flight-events", 0, "jobs mode: per-job flight-recorder ring size (0 = default)")
		proxyOn   = flag.Bool("proxy", true, "jobs mode: register job results as refcounted proxy handles (pass-by-reference results and job chaining)")
		proxyTTL  = flag.Duration("proxy-ttl", 0, "jobs mode: TTL on a result handle's origin lease (0 = never expires)")
		proxyMax  = flag.Int("proxy-max", 0, "jobs mode: per-tenant live proxy-handle cap (0 = unlimited)")
		proxyByte = flag.Int64("proxy-bytes", 0, "jobs mode: per-tenant resident proxy payload byte cap (0 = unlimited)")
		nodeID    = flag.String("node-id", "", "cluster: this peer's stable identity on the sharded-storage ring (empty = cluster off)")
		advertise = flag.String("advertise", "", "cluster: address other peers dial to reach this node (default -listen; required when -listen has a wildcard or empty host)")
		peersFlag = flag.String("peers", "", "cluster: comma-separated id=addr list of the other doocserve peers")
		vnodes    = flag.Int("vnodes", 0, "cluster: virtual nodes per member on the consistent-hash ring (0 = default)")
		tableMem  = flag.Int64("table-mem", 0, "cluster: byte budget for blocks held on behalf of the ring (0 = default)")
	)
	flag.Parse()
	if *scratch == "" {
		flag.Usage()
		os.Exit(2)
	}
	var codec compress.Codec
	switch *codecName {
	case "", "none":
	case "default":
		codec = compress.Default()
	default:
		var ok bool
		if codec, ok = compress.ByName(*codecName); !ok {
			log.Fatalf("unknown codec %q (registered: %v)", *codecName, compress.Names())
		}
	}
	reg := obs.NewRegistry()
	health := &jobs.Health{}

	// Cluster membership: with -node-id set, this process joins the
	// peer-to-peer sharded storage ring. The node is built before the engine
	// and the RPC listener because both hang off it — the engine pushes
	// written blocks through it (core.Options.Shard) and the listener serves
	// the peer verbs for it (remote.ServerOptions.Peer).
	var (
		clusterNode *cluster.Node
		hook        *deathHook
		memberIDs   []string
	)
	if *nodeID != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			log.Fatal(err)
		}
		// The gossiped self address must be dialable from other hosts: a
		// host-less or wildcard -listen (":7777", "0.0.0.0:7777") would be
		// dialed by remote peers as localhost, silently mis-routing peer
		// traffic in any multi-host deployment.
		selfAddr := *advertise
		if selfAddr == "" {
			host, _, herr := net.SplitHostPort(*listen)
			if herr != nil || host == "" {
				log.Fatalf("cluster: -listen %q has no dialable host; set -advertise to this node's reachable address", *listen)
			}
			if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
				log.Fatalf("cluster: -listen %q is a wildcard address peers cannot dial; set -advertise to this node's reachable address", *listen)
			}
			selfAddr = *listen
		}
		memberIDs = append(memberIDs, *nodeID)
		for _, p := range peers {
			memberIDs = append(memberIDs, p.ID)
		}
		sort.Strings(memberIDs)
		hook = &deathHook{}
		clusterNode, err = cluster.NewNode(cluster.Config{
			Self: cluster.Member{ID: *nodeID, Addr: selfAddr},
			// Job-scoped array names are numbered by this process's own job
			// counter; scoping them with the node ID keeps two peers' "job1:"
			// arrays from colliding in the shared ring.
			Scope:      *nodeID,
			Peers:      peers,
			VNodes:     *vnodes,
			TableBytes: *tableMem,
			Obs:        reg,
			Codec:      codec,
			Hot:        hotSpMVArray,
			OnDeath:    hook.call,
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer clusterNode.Close()
		log.Printf("cluster node %q on a ring of %d members", *nodeID, len(memberIDs))
	} else if *peersFlag != "" {
		log.Fatal("-peers requires -node-id")
	}

	// Build the served store: a plain scratch-directory store, or — in jobs
	// mode — node 0 of a full system spanning the staged matrix, with a
	// solver service in front.
	var (
		srv        *remote.Server
		svc        *jobs.SolverService
		statsStore *storage.Store
		proxyReg   *proxy.Registry
	)
	var tracer *obs.Tracer
	var slo *jobs.SLOTracker
	if *jobsMode {
		info, err := core.DiscoverStagedMatrix(*scratch)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("staged matrix: dim=%d K=%d nodes=%d nnz=%d (%.1f MB)",
			info.Dim, info.K, info.Nodes, info.NNZ, float64(info.Bytes)/1e6)
		if *traceOut != "" {
			tracer = obs.NewTracer()
		}
		slo = jobs.NewSLOTracker(jobs.SLOConfig{
			QueueObjective: time.Duration(*sloQueue) * time.Millisecond,
			RunObjective:   time.Duration(*sloRun) * time.Millisecond,
			Obs:            reg,
		})
		// Avoid a typed-nil interface: only assign when the cluster is on.
		var shard storage.ShardBackend
		if clusterNode != nil {
			shard = clusterNode
		}
		sys, err := core.NewSystem(core.Options{
			Nodes:          info.Nodes,
			WorkersPerNode: *workers,
			MemoryBudget:   *mem,
			ScratchRoot:    *scratch,
			Obs:            reg,
			Codec:          codec,
			Trace:          tracer,
			Shard:          shard,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
		if clusterNode != nil {
			// A dead peer takes its share of engine nodes with it: engine
			// node i maps to the i mod M-th member of the initial sorted
			// membership. The self member's share never fails this way — a
			// process cannot observe its own death.
			ids := memberIDs
			self := *nodeID
			hook.set(func(dead string) {
				if dead == self {
					return
				}
				for i := 0; i < sys.Nodes(); i++ {
					if ids[i%len(ids)] == dead {
						log.Printf("cluster: peer %s dead; failing engine node %d onto survivors", dead, i)
						_ = sys.FailNode(i)
					}
				}
			})
		}
		jcfg := jobs.Config{
			MaxRunning: *maxJobs, QueueDepth: *queueDep, MemoryBudget: *jobMem, Obs: reg,
			Trace: tracer, SLO: slo, FlightEvents: *flightN,
		}
		if *jobStore != "" {
			store, err := jobstore.Open(*jobStore, jobstore.Options{RetainHistory: *jobHist, Obs: reg})
			if err != nil {
				log.Fatalf("opening job store: %v", err)
			}
			defer store.Close()
			jcfg.Store = store
		}
		if *proxyOn {
			// The proxy registry shares the job store's WAL, so handles and
			// refcounts survive restart alongside the jobs that made them.
			// Reclaim drops the retained iterate arrays from whichever node
			// holds them.
			proxyReg = proxy.NewRegistry(proxy.Config{
				Store:             jcfg.Store,
				Obs:               reg,
				Scope:             *nodeID,
				TTL:               *proxyTTL,
				MaxPerTenant:      *proxyMax,
				MaxBytesPerTenant: *proxyByte,
				OnReclaim: func(h proxy.Handle, arrays []string) {
					for _, a := range arrays {
						core.DropArray(sys, a)
					}
				},
			})
			defer proxyReg.Close()
			jcfg.Proxy = proxyReg
			if clusterNode != nil {
				jcfg.ProxyFetch = clusterNode.ProxyFetch
			}
		}
		svc = jobs.NewSolverService(sys,
			core.SpMVConfig{Dim: info.Dim, K: info.K, Nodes: info.Nodes},
			jcfg)
		if *jobStore != "" {
			rec, err := svc.Recover()
			if err != nil {
				log.Fatalf("recovering job store: %v", err)
			}
			torn := ""
			if rec.Torn {
				torn = ", torn WAL tail repaired"
			}
			log.Printf("job store %s: replayed in %v (%d historical, %d requeued, %d resumed, %d unrecoverable%s)",
				*jobStore, rec.ReplayDuration.Round(time.Microsecond), rec.Historical, rec.Requeued, rec.Resumed, rec.Failed, torn)
		}
		statsStore = sys.Store(0)
		sopts := remote.ServerOptions{Obs: reg, Codec: codec, Jobs: svc}
		if clusterNode != nil {
			sopts.Peer = clusterNode
		}
		srv, err = remote.ListenOptions(statsStore, *listen, sopts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("job service on %s (max-jobs=%d queue-depth=%d job-mem=%d)", srv.Addr(), *maxJobs, *queueDep, *jobMem)
		if proxyReg != nil {
			log.Printf("proxy result plane on (ttl=%v max-per-tenant=%d bytes-per-tenant=%d)", *proxyTTL, *proxyMax, *proxyByte)
			if *proxyTTL > 0 {
				// TTL sweeper: expire origin leases a quarter-TTL late at worst.
				period := *proxyTTL / 4
				if period < 100*time.Millisecond {
					period = 100 * time.Millisecond
				}
				go func() {
					for range time.Tick(period) {
						if n := proxyReg.Sweep(time.Now()); n > 0 {
							log.Printf("proxy: expired %d origin leases", n)
						}
					}
				}()
			}
		}
		// /healthz detail: SLO standings per tenant, so a probe shows burn
		// without scraping /metrics.
		health.SetDetail(func() any {
			return struct {
				SLO []jobs.SLOSummary `json:"slo"`
			}{slo.Summary()}
		})
	} else {
		st, err := storage.NewLocal(storage.Config{MemoryBudget: *mem, ScratchDir: *scratch, IOWorkers: 4, Obs: reg, Codec: codec})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		statsStore = st
		sopts := remote.ServerOptions{Obs: reg, Codec: codec}
		if clusterNode != nil {
			sopts.Peer = clusterNode
		}
		srv, err = remote.ListenOptions(st, *listen, sopts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving %s on %s", *scratch, srv.Addr())
	}
	if codec != nil {
		log.Printf("codec %s on scratch spills and negotiated wire payloads", codec.Name())
	}

	var httpSrv *http.Server
	if *httpAddr != "" {
		// net/http/pprof registered its handlers on DefaultServeMux at
		// import; add /metrics and the probes beside them.
		http.Handle("/metrics", obs.Handler(reg))
		http.HandleFunc("/healthz", health.Healthz)
		http.HandleFunc("/readyz", health.Readyz)
		if svc != nil {
			http.HandleFunc("/jobs", svc.ServeJobs)
			http.HandleFunc("/jobs/history", svc.ServeHistory)
			http.HandleFunc("/jobs/", svc.ServeJobItem)
		}
		if proxyReg != nil {
			http.HandleFunc("/proxies", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(proxyReg.List())
			})
		}
		if clusterNode != nil {
			http.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(clusterNode.Status())
			})
		}
		httpSrv = &http.Server{Addr: *httpAddr}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics, pprof on http://%s/debug/pprof/", *httpAddr, *httpAddr)
	}

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				s := statsStore.Stats()
				fmt.Printf("requests=%d out=%.1fMB in=%.1fMB disk-read=%.1fMB resident=%.1fMB\n",
					srv.Requests(), float64(srv.BytesOut())/1e6, float64(srv.BytesIn())/1e6,
					float64(s.BytesReadDisk)/1e6, float64(s.MemUsed)/1e6)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Readiness flips first so load balancers stop sending work, then the
	// job manager drains (cancelling stragglers at the timeout), then the
	// RPC and HTTP listeners shut down.
	health.SetDraining(true)
	log.Printf("draining (up to %v) after %d requests", *drain, srv.Requests())
	if svc != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := svc.Manager.DrainContext(ctx)
		cancel()
		if err != nil {
			if *jobStore != "" {
				// Durable mode: the interrupted jobs are journaled (the drain
				// marker too) and will resume from their checkpoints on the
				// next boot — no need to burn their progress by cancelling.
				log.Printf("drain timeout: outstanding jobs stay journaled and resume on next start")
			} else {
				log.Printf("drain timeout: cancelling outstanding jobs")
				for _, j := range svc.Manager.List() {
					_ = svc.Manager.Cancel(j.ID)
				}
				_ = svc.Manager.DrainContext(context.Background())
			}
		}
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		_ = httpSrv.Shutdown(ctx)
		cancel()
	}
	srv.Shutdown(*drain)
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			log.Printf("writing trace: %v", err)
		} else {
			log.Printf("wrote %d trace events to %s", tracer.Len(), *traceOut)
		}
	}
	log.Printf("shut down after %d requests", srv.Requests())
}
