// Command doocgen generates partitioned sparse matrices for out-of-core
// iterated SpMV runs, using the paper's random-gap scheme (Section V) or
// the toy Configuration-Interaction model (Section II).
//
// Usage:
//
//	doocgen -out /tmp/stage -dim 20000 -nnz 2000000 -k 5 -nodes 5 -seed 1
//	doocgen -out /tmp/stage -ci -A 3 -nmax 2 -mj2 1 -k 4 -nodes 2
//
// The output layout (<out>/node<i>/A_<u>_<v>.arr) is what doocrun and
// dooc.NewSystem's ScratchRoot expect.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dooc/internal/ci"
	"dooc/internal/core"
	"dooc/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocgen: ")
	var (
		out       = flag.String("out", "", "output staging directory (required)")
		dim       = flag.Int("dim", 10000, "matrix dimension (gap generator)")
		nnz       = flag.Int64("nnz", 1000000, "target number of nonzeros (gap generator)")
		k         = flag.Int("k", 4, "grid order: K×K sub-matrices")
		nodes     = flag.Int("nodes", 1, "number of nodes to stage for")
		seed      = flag.Int64("seed", 1, "generator seed")
		symmetric = flag.Bool("symmetric", false, "generate a symmetric matrix")
		useCI     = flag.Bool("ci", false, "build a toy CI Hamiltonian instead of a random-gap matrix")
		a         = flag.Int("A", 3, "CI: particle count")
		nmax      = flag.Int("nmax", 2, "CI: Nmax truncation")
		mj2       = flag.Int("mj2", 1, "CI: twice the Mj projection")
		mtx       = flag.String("mtx", "", "stage an existing MatrixMarket (.mtx) file instead of generating")
		codec     = flag.String("codec", "", "stage section-compressed DOOCCRS2 blocks (any value enables; readers auto-detect)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var m *sparse.CSR
	var err error
	if *mtx != "" {
		m, err = sparse.ReadMatrixMarketFile(*mtx)
		if err != nil {
			log.Fatal(err)
		}
		if m.Rows != m.Cols {
			log.Fatalf("matrix is %dx%d; iterated SpMV needs a square matrix", m.Rows, m.Cols)
		}
	} else if *useCI {
		basis, berr := ci.BuildBasis(ci.BasisConfig{A: *a, Nmax: *nmax, M2: *mj2})
		if berr != nil {
			log.Fatal(berr)
		}
		log.Printf("CI basis: A=%d Nmax=%d Mj=%d/2 -> dimension %d", *a, *nmax, *mj2, basis.Dim())
		m, err = ci.Hamiltonian(basis, ci.HamiltonianConfig{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		d := sparse.DForTargetNNZ(*dim, *dim, *nnz)
		m, err = sparse.GapMatrix(sparse.GapGenConfig{
			Rows: *dim, Cols: *dim, D: d, Seed: *seed, Symmetric: *symmetric,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	stats := sparse.Summarize(m)
	log.Printf("matrix: %dx%d, %d nonzeros (%.2f/row), %.1f MB in CSR",
		stats.Rows, stats.Cols, stats.NNZ, stats.AvgPerRow, float64(stats.Bytes)/1e6)

	cfg := core.SpMVConfig{Dim: m.Rows, K: *k, Iters: 1, Nodes: *nodes}
	stage, format := core.StageMatrix, "CRS"
	if *codec != "" {
		stage, format = core.StageMatrixCompressed, "DOOCCRS2"
	}
	if err := stage(*out, m, cfg); err != nil {
		log.Fatal(err)
	}
	info, err := core.DiscoverStagedMatrix(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged %dx%d %s blocks for %d node(s) under %s (%.1f MB on disk)\n",
		*k, *k, format, *nodes, *out, float64(info.Bytes)/1e6)
}
