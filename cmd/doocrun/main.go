// Command doocrun executes out-of-core iterated SpMV over a staged block
// set (produced by doocgen or core.StageMatrix), printing per-run
// statistics and, optionally, an ASCII Gantt chart of the real execution.
//
// Usage:
//
//	doocrun -dir /tmp/stage -iters 4 -mem 67108864 -gantt
//
// With -server, doocrun is instead a thin client of a doocserve -jobs
// service: it submits one solve job (tenant, priority, iters, seed, and
// optional per-job memory/scratch quotas), blocks for the result, and
// prints the result vector's SHA-256 and L2 norm — two submissions with
// equal seeds and iterations print identical hashes, which is how the CI
// smoke test checks concurrent jobs for bit-identical results.
//
//	doocrun -server 127.0.0.1:7777 -tenant alice -priority 5 -iters 4 -seed 1
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"dooc/internal/compress"
	"dooc/internal/core"
	"dooc/internal/jobs"
	"dooc/internal/obs"
	"dooc/internal/proxy"
	"dooc/internal/remote"
	"dooc/internal/storage"
)

// codecByFlag resolves a -codec flag value: empty disables compression,
// "default" picks the registry default, anything else must be a registered
// codec name.
func codecByFlag(name string) compress.Codec {
	switch name {
	case "", "none":
		return nil
	case "default":
		return compress.Default()
	}
	c, ok := compress.ByName(name)
	if !ok {
		log.Fatalf("unknown codec %q (registered: %s)", name, strings.Join(compress.Names(), ", "))
	}
	return c
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("doocrun: ")
	var (
		dir       = flag.String("dir", "", "staged matrix directory (required)")
		iters     = flag.Int("iters", 4, "SpMV iterations")
		workers   = flag.Int("workers", 2, "computing filters per node")
		mem       = flag.Int64("mem", 1<<30, "per-node memory budget in bytes")
		prefetch  = flag.Int("prefetch", 2, "prefetch window (heavy blocks)")
		reorder   = flag.Bool("reorder", true, "enable data-aware task reordering")
		seed      = flag.Int64("seed", 1, "starting-vector seed")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt of the execution")
		metrics   = flag.Bool("metrics", false, "print a metrics snapshot after the run")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
		validate  = flag.String("validate-trace", "", "validate a Chrome trace-event JSON file and exit (CI smoke mode)")
		causal    = flag.String("validate-causal", "", "validate that comma-separated Chrome trace files form one causal tree (shared trace ID, no orphan spans) and exit (CI smoke mode)")
		codecName = flag.String("codec", "", "compress scratch spills with this codec (empty = off, \"default\" = "+compress.Default().Name()+")")
		server    = flag.String("server", "", "submit the run as a job to a doocserve -jobs service at this address instead of running locally")
		tenant    = flag.String("tenant", "default", "job mode: tenant name for scheduling")
		priority  = flag.Int("priority", 0, "job mode: priority (higher runs earlier)")
		jobMem    = flag.Int64("job-mem", 0, "job mode: per-job aggregate cache budget in bytes (0 = none)")
		jobScr    = flag.Int64("job-scratch", 0, "job mode: per-job aggregate scratch ceiling in bytes (0 = unlimited)")
		jobKey    = flag.String("job-key", "", "job mode: idempotency key — a resubmit with the same key (retry, reconnect, server restart) returns the existing job instead of starting a duplicate")
		proxyOut  = flag.Bool("proxy", false, "job mode: collect the job's result HANDLE (pass-by-reference) instead of its bytes — prints name@epoch[@scope] and the registered sha256; the vector stays on the server")
		inputRef  = flag.String("input-proxy", "", "job mode: chain the job's starting vector from this proxy handle (name@epoch[@scope]) instead of the seed — the payload never crosses the client link")
		resolveR  = flag.String("resolve", "", "job client: resolve this proxy handle at -server, print its payload summary, and exit")
		releaseR  = flag.String("release", "", "job client: release this proxy handle at -server (an anonymous reference, or with none outstanding the origin lease), print remaining refs, and exit")
	)
	flag.Parse()
	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.ValidateTrace(data); err != nil {
			log.Fatalf("%s: %v", *validate, err)
		}
		fmt.Printf("%s: valid Chrome trace\n", *validate)
		return
	}
	if *causal != "" {
		files := strings.Split(*causal, ",")
		blobs := make([][]byte, 0, len(files))
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				log.Fatal(err)
			}
			blobs = append(blobs, data)
		}
		if err := obs.ValidateCausal(blobs...); err != nil {
			log.Fatalf("%s: %v", *causal, err)
		}
		fmt.Printf("%s: one causal trace tree across %d file(s)\n", *causal, len(files))
		return
	}
	if *server != "" {
		if *resolveR != "" || *releaseR != "" {
			proxyVerb(*server, *resolveR, *releaseR)
			return
		}
		submitJob(*server, *tenant, *priority, *iters, *seed, *jobMem, *jobScr, *jobKey, *tracePath, *inputRef, *proxyOut)
		return
	}
	if *resolveR != "" || *releaseR != "" || *inputRef != "" || *proxyOut {
		log.Fatal("-proxy, -input-proxy, -resolve, and -release need -server")
	}
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	info, err := core.DiscoverStagedMatrix(*dir)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("staged matrix: dim=%d K=%d nodes=%d nnz=%d (%.1f MB)",
		info.Dim, info.K, info.Nodes, info.NNZ, float64(info.Bytes)/1e6)

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	sys, err := core.NewSystem(core.Options{
		Nodes:          info.Nodes,
		WorkersPerNode: *workers,
		MemoryBudget:   *mem,
		ScratchRoot:    *dir,
		PrefetchWindow: *prefetch,
		Reorder:        *reorder,
		Seed:           *seed,
		Obs:            reg,
		Trace:          tracer,
		Codec:          codecByFlag(*codecName),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	rng := rand.New(rand.NewSource(*seed))
	x0 := make([]float64, info.Dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	cfg := core.SpMVConfig{Dim: info.Dim, K: info.K, Iters: *iters, Nodes: info.Nodes}
	res, err := core.RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		log.Fatal(err)
	}

	st := res.Stats
	flops := 2 * float64(info.NNZ) * float64(*iters)
	fmt.Printf("time            %v\n", st.Wall)
	fmt.Printf("gflop/s         %.3f\n", flops/st.Wall.Seconds()/1e9)
	fmt.Printf("disk bytes read %d\n", st.BytesReadDisk())
	if raw, stored := st.CompressRawBytes(), st.CompressStoredBytes(); raw > 0 {
		fmt.Printf("spill codec     %.2fx (%d raw -> %d stored, %d bail-outs)\n",
			float64(raw)/float64(stored), raw, stored, st.CompressBailouts())
	}
	fmt.Printf("peer bytes      %d\n", st.PeerBytes())
	fmt.Printf("network bytes   %d\n", sys.Cluster().TotalNetworkBytes())
	for n := 0; n < info.Nodes; n++ {
		fmt.Printf("node %d tasks    %d\n", n, st.TasksPerNode[n])
	}
	if *gantt {
		printGantt(st)
	}
	if *metrics {
		printMetrics(reg)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*tracePath); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("wrote %d trace events to %s\n", tracer.Len(), *tracePath)
	}
}

// submitJob runs the job-client mode: submit one solve to a doocserve
// -jobs service, block for the result, and print a deterministic summary.
// With tracePath set, the client stamps a fresh 128-bit trace ID on the
// submission — the server's job, engine, and storage spans all join it —
// and writes its own side of the causal tree (root, submit, await spans)
// as a Chrome trace file.
func submitJob(addr, tenant string, priority, iters int, seed, jobMem, jobScratch int64, key, tracePath, inputRef string, proxyOut bool) {
	var (
		tracer *obs.Tracer
		root   obs.SpanContext
	)
	if tracePath != "" {
		tracer = obs.NewTracer()
		root = obs.NewSpanContext()
		tracer.SetProcessName(obs.PidClient, "doocrun")
		tracer.SetThreadName(obs.PidClient, 0, "client")
		log.Printf("trace %s", root.Trace)
	}
	req := jobs.SolveRequest{
		Tenant:       tenant,
		Priority:     priority,
		Iters:        iters,
		Seed:         seed,
		MemoryBytes:  jobMem,
		ScratchBytes: jobScratch,
		Key:          key,
		Trace:        root,
	}
	needProxy := proxyOut || inputRef != ""
	if inputRef != "" {
		ref, err := proxy.ParseRef(inputRef)
		if err != nil {
			log.Fatal(err)
		}
		req.Input = ref
	}
	clientStart := time.Now()
	// The proxy verbs need the capability handshake to detect a legacy
	// server; the plain result path keeps the zero-negotiation dial. The
	// client's own registry counts received payload bytes, so the
	// by-reference path can PROVE no result vector crossed this link.
	clObs := obs.NewRegistry()
	cl, err := remote.DialOptions(addr, remote.Options{Handshake: needProxy, Obs: clObs})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	submitStart := time.Now()
	st, err := cl.SubmitJob(req)
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	if tracer != nil {
		tracer.SpanCtx("submit", "client", obs.PidClient, 0, submitStart, time.Now(),
			root.Child(), root.Span, map[string]any{"job": st.ID, "tenant": tenant})
	}
	log.Printf("job %d submitted (tenant=%s priority=%d state=%s)", st.ID, st.Tenant, st.Priority, st.State)
	if proxyOut {
		h, final, err := cl.JobProxy(st.ID)
		if err != nil {
			log.Fatalf("job %d: %v", st.ID, err)
		}
		fmt.Printf("job        %d\n", st.ID)
		fmt.Printf("state      %s\n", final.State)
		fmt.Printf("proxy      %s\n", h)
		fmt.Printf("length     %d\n", h.Length)
		fmt.Printf("result     sha256=%s\n", h.SHA256)
		fmt.Printf("queue-wait %.3fs\n", final.QueueWait)
		fmt.Printf("recv-bytes %d\n", clObs.Sum("dooc_remote_client_bytes_in_total"))
		return
	}
	awaitStart := time.Now()
	data, final, err := cl.JobResult(st.ID)
	if err != nil {
		log.Fatalf("job %d: %v", st.ID, err)
	}
	if tracer != nil {
		now := time.Now()
		tracer.SpanCtx("await result", "client", obs.PidClient, 0, awaitStart, now,
			root.Child(), root.Span, map[string]any{"job": st.ID})
		tracer.SpanCtx("doocrun "+tenant, "client", obs.PidClient, 0, clientStart, now,
			root, obs.SpanID{}, map[string]any{"job": st.ID, "tenant": tenant})
		if err := tracer.WriteFile(tracePath); err != nil {
			log.Fatalf("trace: %v", err)
		}
		log.Printf("wrote %d client trace events to %s", tracer.Len(), tracePath)
	}
	x := storage.DecodeFloat64s(data)
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	fmt.Printf("job        %d\n", st.ID)
	fmt.Printf("state      %s\n", final.State)
	if final.TraceID != "" {
		fmt.Printf("trace      %s\n", final.TraceID)
	}
	fmt.Printf("dim        %d\n", len(x))
	fmt.Printf("result     sha256=%x\n", sha256.Sum256(data))
	fmt.Printf("l2norm     %.12e\n", math.Sqrt(norm))
	fmt.Printf("queue-wait %.3fs\n", final.QueueWait)
	if !final.FinishedAt.IsZero() && !final.StartedAt.IsZero() {
		fmt.Printf("run-time   %.3fs\n", final.FinishedAt.Sub(final.StartedAt).Seconds())
	}
}

// proxyVerb runs the standalone proxy-handle client verbs: -resolve prints
// a handle's payload summary (the bytes cross the wire once, on demand);
// -release drops a reference and prints what remains.
func proxyVerb(addr, resolveRef, releaseRef string) {
	cl, err := remote.DialOptions(addr, remote.Options{Handshake: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if resolveRef != "" {
		ref, err := proxy.ParseRef(resolveRef)
		if err != nil {
			log.Fatal(err)
		}
		data, h, err := cl.ResolveProxy(ref)
		if err != nil {
			log.Fatalf("resolve %s: %v", ref, err)
		}
		x := storage.DecodeFloat64s(data)
		var norm float64
		for _, v := range x {
			norm += v * v
		}
		fmt.Printf("proxy      %s\n", h)
		fmt.Printf("dim        %d\n", len(x))
		fmt.Printf("result     sha256=%x\n", sha256.Sum256(data))
		fmt.Printf("l2norm     %.12e\n", math.Sqrt(norm))
	}
	if releaseRef != "" {
		ref, err := proxy.ParseRef(releaseRef)
		if err != nil {
			log.Fatal(err)
		}
		refs, err := cl.ProxyRelease(ref, "")
		if err != nil {
			log.Fatalf("release %s: %v", ref, err)
		}
		fmt.Printf("released   %s\n", ref)
		fmt.Printf("refs-left  %d\n", refs)
	}
}

// printMetrics summarizes the registry's headline series and then dumps the
// full Prometheus exposition.
func printMetrics(reg *obs.Registry) {
	fmt.Println("\n============ metrics snapshot ============")
	hits := reg.Sum("dooc_storage_cache_hits_total")
	misses := reg.Sum("dooc_storage_cache_misses_total")
	if total := hits + misses; total > 0 {
		fmt.Printf("storage cache hit rate: %.1f%% (%d hits, %d misses)\n",
			100*float64(hits)/float64(total), hits, misses)
	}
	loads := reg.Sum("dooc_storage_prefetch_loads_total")
	phits := reg.Sum("dooc_storage_prefetch_hits_total")
	if loads > 0 {
		fmt.Printf("prefetch hit rate: %.1f%% (%d of %d prefetched blocks were hit)\n",
			100*float64(phits)/float64(loads), phits, loads)
	}
	fmt.Println("\nfull exposition:")
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		log.Printf("metrics: %v", err)
	}
}

// printGantt renders the run's events as one text lane per node.
func printGantt(st *core.RunStats) {
	if len(st.Events) == 0 {
		return
	}
	events := append([]core.Event(nil), st.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Start.Before(events[j].Start) })
	t0 := events[0].Start
	var end float64
	for _, e := range events {
		if d := e.End.Sub(t0).Seconds(); d > end {
			end = d
		}
	}
	const width = 100
	scale := width / end
	byNode := map[int][]core.Event{}
	maxNode := 0
	for _, e := range events {
		byNode[e.Node] = append(byNode[e.Node], e)
		if e.Node > maxNode {
			maxNode = e.Node
		}
	}
	fmt.Printf("\nGantt (total %.3fs, %d columns):\n", end, width)
	for n := 0; n <= maxNode; n++ {
		lane := []rune(strings.Repeat(".", width))
		for _, e := range byNode[n] {
			s := int(e.Start.Sub(t0).Seconds() * scale)
			f := int(e.End.Sub(t0).Seconds() * scale)
			if f >= width {
				f = width - 1
			}
			mark := 'M'
			if e.Kind == "sum" {
				mark = 'R'
			}
			for i := s; i <= f; i++ {
				lane[i] = mark
			}
		}
		fmt.Printf("node%-2d |%s|\n", n, string(lane))
	}
	fmt.Println("M = multiply task, R = reduction, . = idle/IO wait")
}
