module dooc

go 1.22
