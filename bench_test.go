// Benchmarks regenerating every table and figure of the paper, plus kernel
// and ablation benches for the design decisions called out in DESIGN.md.
// Reported metrics carry the reproduced values; `cmd/doocbench` prints the
// same data as formatted paper-vs-reproduction tables.
package dooc

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"dooc/internal/ci"
	"dooc/internal/core"
	"dooc/internal/dag"
	"dooc/internal/devices"
	"dooc/internal/lanczos"
	"dooc/internal/mfdn"
	"dooc/internal/perfmodel"
	"dooc/internal/scheduler"
	"dooc/internal/sparse"
	"dooc/internal/spmv"
)

// --- Table I ---

// BenchmarkTable1CIBasis measures toy CI basis + Hamiltonian construction
// and reports the dimension growth that forces MFDn out of core.
func BenchmarkTable1CIBasis(b *testing.B) {
	var lastDim int
	for i := 0; i < b.N; i++ {
		rows, err := ci.ToyScaling(3, 1, []int{0, 1, 2, 3}, 1)
		if err != nil {
			b.Fatal(err)
		}
		lastDim = rows[len(rows)-1].Dim
	}
	b.ReportMetric(float64(lastDim), "dim@Nmax3")
	b.ReportMetric(ci.ReferenceTable1[3].Dim, "paper-dim@Nmax10")
}

// --- Table II ---

// BenchmarkTable2HopperModel evaluates the calibrated Hopper model on the
// published problems and reports the largest run's modeled cost.
func BenchmarkTable2HopperModel(b *testing.B) {
	var rows []mfdn.ModeledRow
	for i := 0; i < b.N; i++ {
		rows = mfdn.ModelTable2()
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.CPUHoursPerIter, "cpu-h/iter@18336")
	b.ReportMetric(last.PubCPUHours, "paper-cpu-h/iter")
	b.ReportMetric(100*last.CommFraction, "comm%")
}

// BenchmarkTable2InCoreBaseline runs the executable bulk-synchronous
// baseline (real goroutines, real allgather) at several rank counts.
func BenchmarkTable2InCoreBaseline(b *testing.B) {
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 2000, Cols: 2000, D: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x0 := make([]float64, 2000)
	x0[0] = 1
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mfdn.RunInCore(mfdn.InCoreConfig{Matrix: m, Ranks: ranks, Iters: 4, X0: x0}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(2*m.NNZ()*4*int64(b.N))/b.Elapsed().Seconds()/1e9, "gflops")
		})
	}
}

// --- Tables III & IV ---

func reportRow(b *testing.B, r perfmodel.Row, p perfmodel.PubRow) {
	b.ReportMetric(r.TimeSeconds, "model-s")
	b.ReportMetric(p.TimeSeconds, "paper-s")
	b.ReportMetric(r.GFlops, "model-gflops")
	b.ReportMetric(p.GFlops, "paper-gflops")
	b.ReportMetric(r.ReadBWGBs, "model-GB/s")
	b.ReportMetric(100*r.NonOverlapped, "nonoverlap%")
}

// BenchmarkTable3SimplePolicy regenerates every Table III row.
func BenchmarkTable3SimplePolicy(b *testing.B) {
	for i, n := range perfmodel.NodeCounts {
		i, n := i, n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var r perfmodel.Row
			for j := 0; j < b.N; j++ {
				r = perfmodel.Run(perfmodel.Experiment(n, perfmodel.PolicySimple))
			}
			reportRow(b, r, perfmodel.PublishedTable3[i])
		})
	}
}

// BenchmarkTable4InterleavedPolicy regenerates every Table IV row.
func BenchmarkTable4InterleavedPolicy(b *testing.B) {
	for i, n := range perfmodel.NodeCounts {
		i, n := i, n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var r perfmodel.Row
			for j := 0; j < b.N; j++ {
				r = perfmodel.Run(perfmodel.Experiment(n, perfmodel.PolicyInterleaved))
			}
			reportRow(b, r, perfmodel.PublishedTable4[i])
			b.ReportMetric(r.CPUHoursPerIter, "cpu-h/iter")
		})
	}
}

// --- Fig. 1 ---

// BenchmarkFig1Hierarchy reports the DRAM->HDD latency gap (in cycles) that
// motivates SSD-based out-of-core computing.
func BenchmarkFig1Hierarchy(b *testing.B) {
	var layers []devices.Layer
	for i := 0; i < b.N; i++ {
		layers = devices.Hierarchy()
	}
	var dram, hdd, ssd float64
	for _, l := range layers {
		switch l.Name {
		case "DRAM":
			dram = l.LatencyCycles
		case "HDD (SATA)":
			hdd = l.LatencyCycles
		case "PCIe SSD":
			ssd = l.LatencyCycles
		}
	}
	b.ReportMetric(hdd/dram, "hdd/dram-latency")
	b.ReportMetric(ssd/dram, "ssd/dram-latency")
}

// --- Figs. 3 & 4 ---

// BenchmarkFig34ProgramDerivation measures task-program generation and DAG
// derivation for the paper's 3x3 example and a larger grid.
func BenchmarkFig34ProgramDerivation(b *testing.B) {
	for _, k := range []int{3, 10, 20} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			cfg := spmv.ProgramConfig{K: k, Iters: 4, SubBytes: 4e9, VecBytes: 4e8}
			var g *dag.Graph
			for i := 0; i < b.N; i++ {
				var err error
				g, err = spmv.Graph(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.Len()), "tasks")
			b.ReportMetric(float64(g.CriticalPathLen()), "critical-path")
		})
	}
}

// --- Fig. 5 ---

// BenchmarkFig5Schedules regenerates the two Fig. 5 plans and reports loads
// per node per policy (paper: 6 vs 5 for two iterations).
func BenchmarkFig5Schedules(b *testing.B) {
	for _, mode := range []struct {
		name    string
		reorder bool
	}{{"regular", false}, {"backandforth", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := spmv.ProgramConfig{K: 3, Iters: 2, SubBytes: 1000, VecBytes: 8}
			var plan *scheduler.Plan
			for i := 0; i < b.N; i++ {
				g, err := spmv.Graph(cfg)
				if err != nil {
					b.Fatal(err)
				}
				plan, err = scheduler.Simulate(g, spmv.RowAssignment(cfg), cfg.K, cfg.SubBytes, mode.reorder,
					scheduler.Costs{LoadSecondsPerByte: 0.003})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(plan.LoadsPerNode[0]), "loads/node")
			b.ReportMetric(plan.Makespan, "makespan")
		})
	}
}

// --- Fig. 6 ---

// BenchmarkFig6RelativeToOptimal reports the runtime/optimal-I/O ratios for
// both policies at the extreme node counts.
func BenchmarkFig6RelativeToOptimal(b *testing.B) {
	var t3, t4 []perfmodel.Row
	for i := 0; i < b.N; i++ {
		t3, t4 = perfmodel.Table3(), perfmodel.Table4()
	}
	b.ReportMetric(t3[0].RelativeToOptimal(), "simple@1")
	b.ReportMetric(t3[5].RelativeToOptimal(), "simple@36")
	b.ReportMetric(t4[0].RelativeToOptimal(), "interleaved@1")
	b.ReportMetric(t4[5].RelativeToOptimal(), "interleaved@36")
}

// --- Fig. 7 ---

// BenchmarkFig7CPUHours reports the paper's headline comparison: 36-node
// out-of-core vs Hopper, and the 9-node star run.
func BenchmarkFig7CPUHours(b *testing.B) {
	var n36, star perfmodel.Row
	for i := 0; i < b.N; i++ {
		rows := perfmodel.Table4()
		n36 = rows[len(rows)-1]
		star = perfmodel.Star()
	}
	const hopper4560 = 9.70
	b.ReportMetric(n36.CPUHoursPerIter/hopper4560, "36node/hopper")
	b.ReportMetric(star.CPUHoursPerIter/hopper4560, "star/hopper")
	b.ReportMetric(100*(1-star.CPUHoursPerIter/hopper4560), "star-saving%")
}

// --- Kernel and end-to-end benches ---

// BenchmarkSpMVKernel measures the CSR kernel at several worker counts.
func BenchmarkSpMVKernel(b *testing.B) {
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 20000, Cols: 20000, D: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 20000)
	y := make([]float64, 20000)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(m.Bytes())
			for i := 0; i < b.N; i++ {
				sparse.MulVecParallel(m, x, y, w)
			}
			b.ReportMetric(float64(2*m.NNZ()*int64(b.N))/b.Elapsed().Seconds()/1e9, "gflops")
		})
	}
}

// BenchmarkCRSCodec measures the binary CRS encode/decode path.
func BenchmarkCRSCodec(b *testing.B) {
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 5000, Cols: 5000, D: 8, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	path := dir + "/m.crs"
	b.Run("write", func(b *testing.B) {
		b.SetBytes(sparse.FileBytes(m.Rows, m.NNZ()))
		for i := 0; i < b.N; i++ {
			if err := sparse.WriteCRSFile(path, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		if err := sparse.WriteCRSFile(path, m); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(sparse.FileBytes(m.Rows, m.NNZ()))
		for i := 0; i < b.N; i++ {
			if _, err := sparse.ReadCRSFile(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOutOfCoreSpMV runs the real engine end to end from scratch files.
func BenchmarkOutOfCoreSpMV(b *testing.B) {
	const dim, k, nodes = 3000, 4, 2
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 6, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	root := b.TempDir()
	cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 4, Nodes: nodes}
	if err := core.StageMatrix(root, m, cfg); err != nil {
		b.Fatal(err)
	}
	x0 := make([]float64, dim)
	x0[0] = 1
	sys, err := core.NewSystem(core.Options{
		Nodes: nodes, WorkersPerNode: 2, ScratchRoot: root,
		MemoryBudget: 1 << 22, PrefetchWindow: 2, Reorder: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Tag = fmt.Sprintf("bench%d", i)
		if _, err := core.RunIteratedSpMV(sys, c, x0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*m.NNZ()*4*int64(b.N))/b.Elapsed().Seconds()/1e9, "gflops")
}

// BenchmarkLanczosEigensolver measures the full eigensolver (in-core
// operator) on a CI Hamiltonian.
func BenchmarkLanczosEigensolver(b *testing.B) {
	basis, err := ci.BuildBasis(ci.BasisConfig{A: 3, Nmax: 3, M2: 1})
	if err != nil {
		b.Fatal(err)
	}
	h, err := ci.Hamiltonian(basis, ci.HamiltonianConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(basis.Dim()), "dim")
	for i := 0; i < b.N; i++ {
		if _, err := lanczos.Solve(lanczos.MatrixOperator{M: h, Workers: 2}, lanczos.Options{Steps: 40, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 4) ---

// BenchmarkAblationReordering quantifies the back-and-forth gain on disk
// traffic in the real engine (design decision 4).
func BenchmarkAblationReordering(b *testing.B) {
	const dim, k = 2400, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 4, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		reorder bool
	}{{"fifo", false}, {"reorder", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				root, err := os.MkdirTemp("", "ablation")
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 4, Nodes: 1}
				if err := core.StageMatrix(root, m, cfg); err != nil {
					b.Fatal(err)
				}
				info, err := core.DiscoverStagedMatrix(root)
				if err != nil {
					b.Fatal(err)
				}
				sys, err := core.NewSystem(core.Options{
					Nodes: 1, ScratchRoot: root,
					MemoryBudget: info.Bytes/int64(k*k)*3/2 + 1<<15,
					Reorder:      mode.reorder,
				})
				if err != nil {
					b.Fatal(err)
				}
				x0 := make([]float64, dim)
				x0[0] = 1
				b.StartTimer()
				res, err := core.RunIteratedSpMV(sys, cfg, x0)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				bytes = res.Stats.BytesReadDisk()
				sys.Close()
				os.RemoveAll(root)
			}
			b.ReportMetric(float64(bytes)/1e6, "disk-MB/run")
		})
	}
}

// BenchmarkAblationPlacement compares affinity vs round-robin placement by
// network bytes moved (design decision 3).
func BenchmarkAblationPlacement(b *testing.B) {
	const dim, k, nodes = 2000, 4, 4
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 5, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"affinity", "roundrobin"} {
		b.Run(mode, func(b *testing.B) {
			var moved int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := core.NewSystem(core.Options{Nodes: nodes, Reorder: true})
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 2, Nodes: nodes}
				if err := core.LoadMatrixInMemory(sys, m, cfg); err != nil {
					b.Fatal(err)
				}
				x0 := make([]float64, dim)
				x0[0] = 1
				b.StartTimer()
				if mode == "affinity" {
					if _, err := core.RunIteratedSpMV(sys, cfg, x0); err != nil {
						b.Fatal(err)
					}
				} else {
					if err := runSpMVRoundRobin(sys, cfg, x0); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				moved = sys.Cluster().TotalNetworkBytes()
				sys.Close()
			}
			b.ReportMetric(float64(moved)/1e6, "network-MB/run")
		})
	}
}

// runSpMVRoundRobin reruns the SpMV program with a deliberately
// data-oblivious placement.
func runSpMVRoundRobin(sys *core.System, cfg core.SpMVConfig, x0 []float64) error {
	pcfg := spmv.ProgramConfig{K: cfg.K, Iters: cfg.Iters, SubBytes: 1, VecBytes: 1}
	tasks, err := spmv.Program(pcfg)
	if err != nil {
		return err
	}
	assign := scheduler.RoundRobin(tasks, cfg.Nodes)
	// Reuse the engine with the forced assignment: arrays must exist, so
	// route through the normal API with a custom assignment by rebuilding
	// the run by hand — simplest is to run the standard path on a copied
	// config and let affinity win, then charge the difference; instead we
	// execute the dedicated entry point below.
	return core.RunIteratedSpMVWithAssignment(sys, cfg, x0, assign)
}

// BenchmarkAblationPrefetchWindow sweeps the prefetch window (design
// decision 6) and reports wall time of a real out-of-core run.
func BenchmarkAblationPrefetchWindow(b *testing.B) {
	const dim, k = 3000, 4
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 6, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	root := b.TempDir()
	cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 3, Nodes: 1}
	if err := core.StageMatrix(root, m, cfg); err != nil {
		b.Fatal(err)
	}
	for _, window := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			sys, err := core.NewSystem(core.Options{
				Nodes: 1, WorkersPerNode: 2, ScratchRoot: root,
				MemoryBudget: 1 << 23, PrefetchWindow: window, Reorder: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			x0 := make([]float64, dim)
			x0[0] = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Tag = fmt.Sprintf("w%d-%d", window, i)
				if _, err := core.RunIteratedSpMV(sys, c, x0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEphemeralDeletion compares peak storage footprint with
// and without dead-generation reclamation (design decision 1).
func BenchmarkAblationEphemeralDeletion(b *testing.B) {
	const dim, k = 2000, 4
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 5, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"reclaim", "keep"} {
		b.Run(mode, func(b *testing.B) {
			var residual int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := core.NewSystem(core.Options{Nodes: 1, Reorder: true})
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 4, Nodes: 1}
				if err := core.LoadMatrixInMemory(sys, m, cfg); err != nil {
					b.Fatal(err)
				}
				x0 := make([]float64, dim)
				x0[0] = 1
				b.StartTimer()
				if mode == "reclaim" {
					if _, err := core.RunIteratedSpMV(sys, cfg, x0); err != nil {
						b.Fatal(err)
					}
				} else {
					if err := core.RunIteratedSpMVKeepAll(sys, cfg, x0); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				residual = int64(len(sys.Store(0).Map().Blocks))
				sys.Close()
			}
			b.ReportMetric(float64(residual), "arrays-resident-after")
		})
	}
}
