package cluster

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when the ring is
// built without an explicit setting. 512 points per member keeps the
// max/mean key-load ratio under 1.15 (measured ~1.06 for 3..8 members
// over 100k keys) while a member join or leave remaps only ~1/N of the
// keyspace; at 128 points the arc-length variance already breaks 1.19.
// The ring stays tiny either way — N*512 points sorted once per
// membership change.
const DefaultVNodes = 512

// Ring is an immutable consistent-hash ring over member IDs. Placement is
// deterministic: every process that builds a ring from the same member set
// and vnode count resolves every key to the same owner walk. Rebuild a new
// Ring on membership change; the type itself is safe for concurrent reads.
type Ring struct {
	vnodes  int
	members []string // sorted, for deterministic iteration
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member int32 // index into members
}

// NewRing builds a ring over the given member IDs with vnodes virtual
// points per member (DefaultVNodes when <= 0). Duplicate IDs collapse.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(ids))
	members := make([]string, 0, len(ids))
	for _, id := range ids {
		if id != "" && !seen[id] {
			seen[id] = true
			members = append(members, id)
		}
	}
	sort.Strings(members)
	r := &Ring{vnodes: vnodes, members: members}
	r.points = make([]ringPoint, 0, len(members)*vnodes)
	var buf []byte
	for mi, id := range members {
		for v := 0; v < vnodes; v++ {
			buf = append(buf[:0], id...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			r.points = append(r.points, ringPoint{hash: pointHash(buf), member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member IDs in sorted order. The slice is
// shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner resolves the primary owner of a key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners walks the ring clockwise from the key's hash and returns up to n
// distinct members in walk order: the primary owner first, then the
// replica successors. Fewer are returned when the ring has fewer members.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	var taken [64]bool // member-index bitmap for the common small cluster
	var takenBig map[int32]bool
	if len(r.members) > len(taken) {
		takenBig = make(map[int32]bool, n)
	}
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if takenBig != nil {
			if takenBig[p.member] {
				continue
			}
			takenBig[p.member] = true
		} else {
			if taken[p.member] {
				continue
			}
			taken[p.member] = true
		}
		out = append(out, r.members[p.member])
	}
	return out
}

// BlockKey renders the canonical ring key for one block of an array. The
// NUL separator cannot occur in array names, so keys never collide across
// (array, block) pairs.
func BlockKey(array string, block int) string {
	b := make([]byte, 0, len(array)+12)
	b = append(b, array...)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(block), 10)
	return string(b)
}

// pointHash hashes a vnode point label. FNV-1a with a splitmix64 finisher:
// FNV alone clusters sequential vnode labels, the finisher avalanches them
// so the ring points spread evenly.
func pointHash(b []byte) uint64 { return mix64(fnv1a(b)) }

// keyHash hashes a placement key.
func keyHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer — a cheap full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
