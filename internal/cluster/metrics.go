package cluster

import "dooc/internal/obs"

// nodeMetrics are one cluster node's dooc_cluster_* series, resolved once
// at construction. With a nil registry every field is nil and every
// operation a no-op (obs types are nil-safe).
type nodeMetrics struct {
	forwardedReads    *obs.Counter
	forwardedReadMiss *obs.Counter
	forwardedBytes    *obs.Counter
	pushes            *obs.Counter
	pushAcks          *obs.Counter
	pushBytes         *obs.Counter
	replicaHits       *obs.Counter
	replicaStale      *obs.Counter
	replicaFills      *obs.Counter
	peerDeaths        *obs.Counter
	viewExchanges     *obs.Counter
	legacyRejections  *obs.Counter
	servedGets        *obs.Counter
	servedPuts        *obs.Counter
	proxyFetches      *obs.Counter
	proxyFetchBytes   *obs.Counter

	members      *obs.Gauge
	viewVersion  *obs.Gauge
	tableBlocks  *obs.Gauge
	tableBytes   *obs.Gauge
	replicaCount *obs.Gauge
	replicaBytes *obs.Gauge
}

func newNodeMetrics(reg *obs.Registry, self string) nodeMetrics {
	l := obs.L("peer", self)
	return nodeMetrics{
		forwardedReads:    reg.Counter("dooc_cluster_forwarded_reads_total", "block reads resolved over the ring from another peer", l),
		forwardedReadMiss: reg.Counter("dooc_cluster_forwarded_read_misses_total", "ring walks that found no peer holding the block", l),
		forwardedBytes:    reg.Counter("dooc_cluster_forwarded_bytes_total", "block bytes fetched from peers", l),
		pushes:            reg.Counter("dooc_cluster_pushes_total", "blocks pushed toward their ring owners", l),
		pushAcks:          reg.Counter("dooc_cluster_push_acks_total", "remote peers that acknowledged a pushed copy", l),
		pushBytes:         reg.Counter("dooc_cluster_push_bytes_total", "block bytes pushed to peers", l),
		replicaHits:       reg.Counter("dooc_cluster_replica_hits_total", "hot-block reads served from the local replica cache", l),
		replicaStale:      reg.Counter("dooc_cluster_replica_stale_total", "replica reads rejected by epoch mismatch and refetched", l),
		replicaFills:      reg.Counter("dooc_cluster_replica_fills_total", "hot blocks installed into the replica cache", l),
		peerDeaths:        reg.Counter("dooc_cluster_peer_deaths_total", "peers declared dead by the prober", l),
		viewExchanges:     reg.Counter("dooc_cluster_view_exchanges_total", "membership view gossip rounds completed", l),
		legacyRejections:  reg.Counter("dooc_cluster_legacy_rejections_total", "peers rejected from membership for lacking the cluster capability", l),
		servedGets:        reg.Counter("dooc_cluster_served_gets_total", "peer-get requests answered from the local block table", l),
		servedPuts:        reg.Counter("dooc_cluster_served_puts_total", "peer-put requests accepted into the local block table", l),
		proxyFetches:      reg.Counter("dooc_cluster_proxy_fetches_total", "proxy payloads resolved from their origin peer over the cluster", l),
		proxyFetchBytes:   reg.Counter("dooc_cluster_proxy_fetch_bytes_total", "proxy payload bytes fetched from origin peers", l),

		members:      reg.Gauge("dooc_cluster_members", "live members in the current view", l),
		viewVersion:  reg.Gauge("dooc_cluster_view_version", "version of the current membership view", l),
		tableBlocks:  reg.Gauge("dooc_cluster_table_blocks", "blocks held in the shard table for the ring", l),
		tableBytes:   reg.Gauge("dooc_cluster_table_bytes", "bytes held in the shard table for the ring", l),
		replicaCount: reg.Gauge("dooc_cluster_replica_blocks", "hot-block replicas resident in the cache", l),
		replicaBytes: reg.Gauge("dooc_cluster_replica_bytes", "bytes resident in the replica cache", l),
	}
}
