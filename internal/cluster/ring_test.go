package cluster

import (
	"fmt"
	"testing"
)

// ringTestKeys builds count realistic placement keys: a few array name
// shapes (plain, hot-vector, job-scoped) crossed with block indices.
func ringTestKeys(count int) []string {
	arrays := []string{"A", "x_t", "y_next", "job42:basis", "cg:p"}
	keys := make([]string, 0, count)
	for i := 0; len(keys) < count; i++ {
		keys = append(keys, BlockKey(arrays[i%len(arrays)], i))
	}
	return keys
}

func memberIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node%d", i)
	}
	return ids
}

// TestRingBalance checks the load-spread acceptance number: with the
// default 128 vnodes per member, the most loaded member carries at most
// 1.15x the mean over a large keyspace.
func TestRingBalance(t *testing.T) {
	keys := ringTestKeys(100_000)
	for _, n := range []int{3, 5, 8} {
		r := NewRing(memberIDs(n), DefaultVNodes)
		load := make(map[string]int, n)
		for _, k := range keys {
			load[r.Owner(k)]++
		}
		if len(load) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(load))
		}
		max := 0
		for _, c := range load {
			if c > max {
				max = c
			}
		}
		mean := float64(len(keys)) / float64(n)
		if ratio := float64(max) / mean; ratio > 1.15 {
			t.Errorf("n=%d: max/mean load %.3f > 1.15 (max %d, mean %.0f)", n, ratio, max, mean)
		}
	}
}

// TestRingRemapOnJoin checks minimal remapping: adding one member moves
// only that member's fair share of keys (~1/N of the keyspace), and every
// moved key moves TO the new member — no unrelated shuffling.
func TestRingRemapOnJoin(t *testing.T) {
	keys := ringTestKeys(100_000)
	before := NewRing(memberIDs(4), DefaultVNodes)
	after := NewRing(append(memberIDs(4), "node4"), DefaultVNodes)
	moved := 0
	for _, k := range keys {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != "node4" {
			t.Fatalf("key %q moved %s -> %s, not to the joining member", k, oldOwner, newOwner)
		}
	}
	// The moved fraction is exactly the new member's load share, which the
	// balance bound keeps within 1.15x of fair (1/N of the keyspace).
	limit := 1.15 * float64(len(keys)) / 5
	if float64(moved) > limit {
		t.Errorf("join moved %d keys, want <= %.0f (~1/N of %d)", moved, limit, len(keys))
	}
	if moved == 0 {
		t.Error("join moved no keys at all")
	}
}

// TestRingRemapOnLeave is the converse: removing one member moves only the
// keys it owned, each onto some survivor.
func TestRingRemapOnLeave(t *testing.T) {
	keys := ringTestKeys(100_000)
	before := NewRing(memberIDs(5), DefaultVNodes)
	after := NewRing(memberIDs(4), DefaultVNodes) // node4 left
	moved := 0
	for _, k := range keys {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if oldOwner != "node4" {
			t.Fatalf("key %q moved %s -> %s though its owner did not leave", k, oldOwner, newOwner)
		}
	}
	limit := 1.15 * float64(len(keys)) / 5
	if float64(moved) > limit {
		t.Errorf("leave moved %d keys, want <= %.0f (~1/N of %d)", moved, limit, len(keys))
	}
	if moved == 0 {
		t.Error("leave moved no keys at all")
	}
}

// TestRingDeterministic checks that two processes building rings from the
// same membership — in different orders, with duplicates and blanks —
// resolve identical owner walks. Placement must never depend on which peer
// computes it.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n0", "n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "", "n0", "n2", "n1"}, 64)
	for _, k := range ringTestKeys(1_000) {
		oa, ob := a.Owners(k, 3), b.Owners(k, 3)
		if len(oa) != len(ob) {
			t.Fatalf("walk lengths differ for %q: %v vs %v", k, oa, ob)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("walks differ for %q: %v vs %v", k, oa, ob)
			}
		}
	}
}

// TestRingOwnersWalk checks the owner-walk contract: distinct members,
// primary first, truncated to the member count.
func TestRingOwnersWalk(t *testing.T) {
	r := NewRing(memberIDs(3), 64)
	for _, k := range ringTestKeys(500) {
		owners := r.Owners(k, 5)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 5) on a 3-ring returned %v", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("walk head %q != Owner %q", owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, id := range owners {
			if seen[id] {
				t.Fatalf("duplicate member in walk %v for %q", owners, k)
			}
			seen[id] = true
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate rings the node can pass
// through during startup and mass death.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := empty.Owners("k", 3); got != nil {
		t.Fatalf("empty ring owners = %v", got)
	}
	solo := NewRing([]string{"only"}, 0)
	if solo.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes default = %d", solo.VNodes())
	}
	for _, k := range ringTestKeys(100) {
		if got := solo.Owner(k); got != "only" {
			t.Fatalf("solo ring owner(%q) = %q", k, got)
		}
	}
}

// TestBlockKeyCollisionFree checks that the NUL separator keeps distinct
// (array, block) pairs distinct even for adversarial array names ending in
// digits.
func TestBlockKeyCollisionFree(t *testing.T) {
	arrays := []string{"a", "a1", "a11", "x_t", "x_t1"}
	blocks := []int{0, 1, 11, 111, -1}
	seen := make(map[string][2]any)
	for _, a := range arrays {
		for _, b := range blocks {
			k := BlockKey(a, b)
			if prev, dup := seen[k]; dup {
				t.Fatalf("BlockKey collision: (%s,%d) and %v -> %q", a, b, prev, k)
			}
			seen[k] = [2]any{a, b}
		}
	}
}
