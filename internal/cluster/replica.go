package cluster

import "sync"

// ReplicaCache holds read replicas of hot blocks on the reading side — the
// SpMV input vector is read K times per iteration, so a forwarded fetch
// that will repeat is worth keeping. Every replica is epoch-tagged; a read
// presents the epoch it expects (the epoch its own shard layer last pushed
// or observed), and a mismatch drops the replica as stale — the
// write-back invalidation path. The cache is bounded with LRU drops.
type ReplicaCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	tick   int64
	byKey  map[string]*replicaEntry
}

type replicaEntry struct {
	array   string
	block   int
	epoch   uint64
	data    []byte
	lastUse int64
}

// DefaultReplicaBytes bounds the replica cache when the caller does not
// choose: 64 MiB of hot blocks.
const DefaultReplicaBytes = 64 << 20

// NewReplicaCache builds a cache bounded to budget bytes
// (DefaultReplicaBytes when <= 0).
func NewReplicaCache(budget int64) *ReplicaCache {
	if budget <= 0 {
		budget = DefaultReplicaBytes
	}
	return &ReplicaCache{budget: budget, byKey: make(map[string]*replicaEntry)}
}

// Get returns a replica when one is resident at exactly wantEpoch
// (wantEpoch 0 accepts any resident epoch — the reader has no local epoch
// knowledge). A resident replica at the wrong epoch is dropped and
// reported stale, so the caller refetches from the owner.
func (c *ReplicaCache) Get(array string, block int, wantEpoch uint64) (data []byte, ok, stale bool) {
	key := BlockKey(array, block)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.byKey[key]
	if !found {
		return nil, false, false
	}
	if wantEpoch != 0 && e.epoch != wantEpoch {
		delete(c.byKey, key)
		c.used -= int64(len(e.data))
		return nil, false, true
	}
	c.tick++
	e.lastUse = c.tick
	return e.data, true, false
}

// Put fills (or refreshes) a replica. The cache takes ownership of data;
// entries are replaced wholesale, never written in place.
func (c *ReplicaCache) Put(array string, block int, epoch uint64, data []byte) {
	key := BlockKey(array, block)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, found := c.byKey[key]; found {
		if epoch < e.epoch {
			return
		}
		c.used += int64(len(data)) - int64(len(e.data))
		e.epoch, e.data = epoch, data
		c.tick++
		e.lastUse = c.tick
		c.reclaimLocked()
		return
	}
	e := &replicaEntry{array: array, block: block, epoch: epoch, data: data}
	c.tick++
	e.lastUse = c.tick
	c.byKey[key] = e
	c.used += int64(len(data))
	c.reclaimLocked()
}

// Invalidate drops a block's replica (write-back epoch bump).
func (c *ReplicaCache) Invalidate(array string, block int) {
	key := BlockKey(array, block)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, found := c.byKey[key]; found {
		delete(c.byKey, key)
		c.used -= int64(len(e.data))
	}
}

// InvalidateArray drops every replica of an array.
func (c *ReplicaCache) InvalidateArray(array string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.byKey {
		if e.array == array {
			delete(c.byKey, key)
			c.used -= int64(len(e.data))
		}
	}
}

// Len returns the resident replica count.
func (c *ReplicaCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Bytes returns the resident byte total.
func (c *ReplicaCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

func (c *ReplicaCache) reclaimLocked() {
	for c.used > c.budget && len(c.byKey) > 0 {
		var victimKey string
		var victim *replicaEntry
		for key, e := range c.byKey {
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = key, e
			}
		}
		delete(c.byKey, victimKey)
		c.used -= int64(len(victim.data))
	}
}
