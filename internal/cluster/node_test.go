package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dooc/internal/remote"
	"dooc/internal/storage"
)

// lateHandler is the construction-order shim: the remote server needs its
// PeerHandler at listen time, but the cluster node needs every peer's
// listen address first. The shim serves "still starting" until the node is
// bound in.
type lateHandler struct {
	mu sync.Mutex
	h  remote.PeerHandler
}

func (l *lateHandler) set(h remote.PeerHandler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) get() remote.PeerHandler {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h
}

func (l *lateHandler) PeerPut(array string, block int, epoch uint64, data []byte, durable bool) (bool, error) {
	h := l.get()
	if h == nil {
		return false, fmt.Errorf("peer still starting")
	}
	return h.PeerPut(array, block, epoch, data, durable)
}

func (l *lateHandler) PeerGet(array string, block int) ([]byte, uint64, bool, error) {
	h := l.get()
	if h == nil {
		return nil, 0, false, fmt.Errorf("peer still starting")
	}
	return h.PeerGet(array, block)
}

func (l *lateHandler) PeerDelete(array string) error {
	h := l.get()
	if h == nil {
		return fmt.Errorf("peer still starting")
	}
	return h.PeerDelete(array)
}

func (l *lateHandler) PeerViewExchange(v remote.PeerView) remote.PeerView {
	h := l.get()
	if h == nil {
		return remote.PeerView{}
	}
	return h.PeerViewExchange(v)
}

// testPeer is one in-process stand-in for a doocserve peer: a storage
// store, a real TCP server with the cluster role, and the cluster node.
type testPeer struct {
	id   string
	st   *storage.Store
	srv  *remote.Server
	late *lateHandler
	node *Node

	killed bool
}

// kill simulates SIGKILL: the TCP server drops every connection and stops
// accepting; the node's prober stops gossiping.
func (p *testPeer) kill() {
	if p.killed {
		return
	}
	p.killed = true
	p.node.Close()
	p.srv.Close()
}

// startTestCluster brings up n wired peers: all servers listen first (so
// every address is known), then every node starts with the full peer list.
// mut customizes each node's config before construction.
func startTestCluster(t *testing.T, n int, mut func(i int, cfg *Config)) []*testPeer {
	t.Helper()
	peers := make([]*testPeer, n)
	for i := range peers {
		st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 22, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		late := &lateHandler{}
		srv, err := remote.ListenOptions(st, "127.0.0.1:0", remote.ServerOptions{Peer: late})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = &testPeer{id: fmt.Sprintf("n%d", i), st: st, srv: srv, late: late}
	}
	members := make([]Member, n)
	for i, p := range peers {
		members[i] = Member{ID: p.id, Addr: p.srv.Addr()}
	}
	for i, p := range peers {
		cfg := Config{
			Self:   members[i],
			VNodes: 64,
			// Gossip off by default: tests that need liveness set a real
			// interval via mut, everything else stays deterministic.
			ProbeInterval: time.Hour,
			RPCTimeout:    2 * time.Second,
		}
		for j, m := range members {
			if j != i {
				cfg.Peers = append(cfg.Peers, m)
			}
		}
		if mut != nil {
			mut(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.node = node
		p.late.set(node)
	}
	t.Cleanup(func() {
		for _, p := range peers {
			p.kill()
			p.st.Close()
		}
	})
	return peers
}

func peerByID(peers []*testPeer, id string) *testPeer {
	for _, p := range peers {
		if p.id == id {
			return p
		}
	}
	return nil
}

// findBlockExcluding returns a block index of array whose fetch-walk
// owners do not include exclude — the shape that forces a forwarded read.
func findBlockExcluding(t *testing.T, r *Ring, array, exclude string) int {
	t.Helper()
	for b := 0; b < 4096; b++ {
		hit := false
		for _, id := range r.Owners(BlockKey(array, b), fetchCandidates) {
			if id == exclude {
				hit = true
				break
			}
		}
		if !hit {
			return b
		}
	}
	t.Fatalf("no block of %s excludes %s from its owner walk", array, exclude)
	return -1
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestNodePushDurableAndForwardedRead is the core data path over real TCP:
// a pushed block lands on its ring owners with two remote acks (durable),
// and a non-owner peer resolves it with one forwarded read.
func TestNodePushDurableAndForwardedRead(t *testing.T) {
	peers := startTestCluster(t, 4, nil)
	ring := peers[0].node.currentRing()
	block := findBlockExcluding(t, ring, "A", "n3")
	reader := peerByID(peers, "n3")
	pusher := peerByID(peers, ring.Owner(BlockKey("A", block)))

	payload := bytes.Repeat([]byte{0xAB}, 4096)
	if !pusher.node.PushBlock("A", block, payload) {
		t.Fatal("push with three live remote-capable owners not durable")
	}
	pc := pusher.node.Counters()
	if pc.Pushes != 1 || pc.PushAcks != int64(ReplicateCopies) || pc.PushBytes != 4096 {
		t.Fatalf("pusher counters after push: %+v", pc)
	}

	data, ok := reader.node.FetchBlock("A", block)
	if !ok || !bytes.Equal(data, payload) {
		t.Fatalf("forwarded fetch: ok=%v len=%d", ok, len(data))
	}
	rc := reader.node.Counters()
	if rc.ForwardedReads != 1 || rc.ForwardedBytes != 4096 {
		t.Fatalf("reader counters after fetch: %+v", rc)
	}
	// Some owner served it.
	var served int64
	for _, p := range peers {
		served += p.node.Counters().ServedGets
	}
	if served != 1 {
		t.Fatalf("served gets across peers = %d, want 1", served)
	}

	// A block nobody pushed is a clean miss: fall back to the local path.
	if _, ok := reader.node.FetchBlock("nowhere", 0); ok {
		t.Fatal("fetch of never-pushed block succeeded")
	}
	if c := reader.node.Counters(); c.ForwardedReadMisses != 1 {
		t.Fatalf("miss counter = %d, want 1", c.ForwardedReadMisses)
	}
}

// TestNodeTooFewPeersNotDurable checks the durability floor: with a single
// remote peer only one remote ack is possible, so the pusher must keep its
// local durability path (PushBlock false) — but the copy still serves
// reads.
func TestNodeTooFewPeersNotDurable(t *testing.T) {
	peers := startTestCluster(t, 2, nil)
	payload := bytes.Repeat([]byte{7}, 512)
	if peers[0].node.PushBlock("A", 0, payload) {
		t.Fatal("push reported durable with only one remote peer")
	}
	data, ok := peers[1].node.FetchBlock("A", 0)
	if !ok || !bytes.Equal(data, payload) {
		t.Fatalf("fetch after non-durable push: ok=%v", ok)
	}
}

// TestNodeBackpressureRefusesDurable checks the pinned-byte backpressure
// end to end: receivers whose shard tables cannot pin the copy refuse the
// durable put, the pusher sees missing acks and reports not-durable.
func TestNodeBackpressureRefusesDurable(t *testing.T) {
	peers := startTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.TableBytes = 64 // far below the payload size
	})
	if peers[0].node.PushBlock("A", 0, bytes.Repeat([]byte{1}, 1024)) {
		t.Fatal("push durable though every receiver refused to pin")
	}
	if c := peers[0].node.Counters(); c.PushAcks != 0 {
		t.Fatalf("push acks = %d, want 0 under backpressure", c.PushAcks)
	}
}

// TestNodeReplicaLifecycle walks the hot-block replica machinery over real
// forwarding: fill on first fetch, hit on repeat, write-back invalidation
// on push, and epoch-mismatch staleness when the expectation moves on.
func TestNodeReplicaLifecycle(t *testing.T) {
	hot := func(array string) bool { return strings.HasPrefix(array, "x_") }
	peers := startTestCluster(t, 4, func(i int, cfg *Config) {
		cfg.Hot = hot
	})
	ring := peers[0].node.currentRing()
	const array = "x_t"
	// The acting peer must not be an owner: every fetch then forwards, and
	// its own pushes keep no self copy.
	block := findBlockExcluding(t, ring, array, "n2")
	p := peerByID(peers, "n2")

	v1 := bytes.Repeat([]byte{1}, 1024)
	if !p.node.PushBlock(array, block, v1) {
		t.Fatal("v1 push not durable")
	}
	// First fetch forwards and fills the replica cache.
	if data, ok := p.node.FetchBlock(array, block); !ok || !bytes.Equal(data, v1) {
		t.Fatal("v1 fetch failed")
	}
	if c := p.node.Counters(); c.ForwardedReads != 1 || c.ReplicaFills != 1 || c.ReplicaHits != 0 {
		t.Fatalf("after fill: %+v", c)
	}
	// Second fetch is a replica hit — no new forwarded read.
	if data, ok := p.node.FetchBlock(array, block); !ok || !bytes.Equal(data, v1) {
		t.Fatal("replica fetch failed")
	}
	if c := p.node.Counters(); c.ForwardedReads != 1 || c.ReplicaHits != 1 {
		t.Fatalf("after hit: %+v", c)
	}

	// Write-back: the push invalidates the local replica, so the next
	// fetch forwards again and must see the new bytes, never the cached v1.
	v2 := bytes.Repeat([]byte{2}, 1024)
	if !p.node.PushBlock(array, block, v2) {
		t.Fatal("v2 push not durable")
	}
	if data, ok := p.node.FetchBlock(array, block); !ok || !bytes.Equal(data, v2) {
		t.Fatal("fetch after write-back returned stale bytes")
	}
	if c := p.node.Counters(); c.ForwardedReads != 2 || c.ReplicaFills != 2 || c.ReplicaHits != 1 {
		t.Fatalf("after write-back refetch: %+v", c)
	}

	// Staleness: another writer moves the block to epoch 3. Once this peer
	// learns the new epoch, its epoch-2 replica is detected stale, dropped,
	// and refetched from the owners.
	v3 := bytes.Repeat([]byte{3}, 1024)
	w := peerByID(peers, ring.Owner(BlockKey(array, block)))
	w.node.noteEpoch(array, block, 2) // writer continues from the observed epoch
	if !w.node.PushBlock(array, block, v3) {
		t.Fatal("v3 push not durable")
	}
	p.node.noteEpoch(array, block, 3)
	if data, ok := p.node.FetchBlock(array, block); !ok || !bytes.Equal(data, v3) {
		t.Fatal("fetch after external write returned stale bytes")
	}
	if c := p.node.Counters(); c.ReplicaStale != 1 || c.ForwardedReads != 3 {
		t.Fatalf("after stale refetch: %+v", c)
	}
}

// TestNodeInvalidateArray checks the delete path: the deleting peer drops
// its own state synchronously and peers drop theirs via the acked delete
// fan-out, with epochs folded so a recreated array starts fresh.
func TestNodeInvalidateArray(t *testing.T) {
	peers := startTestCluster(t, 3, nil)
	payload := bytes.Repeat([]byte{9}, 256)
	for b := 0; b < 4; b++ {
		peers[0].node.PushBlock("gone", b, payload)
	}
	peers[0].node.InvalidateArray("gone")
	waitFor(t, 2*time.Second, "peers to drop the deleted array", func() bool {
		for _, p := range peers {
			for b := 0; b < 4; b++ {
				if _, _, ok := p.node.table.Get("gone", b); ok {
					return false
				}
			}
		}
		return true
	})
	if _, ok := peers[1].node.FetchBlock("gone", 0); ok {
		t.Fatal("deleted array still fetchable")
	}
	// The recreated array's first push starts above every old epoch.
	if !peers[0].node.PushBlock("gone", 0, payload) {
		t.Fatal("push after recreate not durable")
	}
	if e := peers[0].node.epochOf("gone", 0); e < 2 {
		t.Fatalf("recreated epoch %d does not clear the old incarnation", e)
	}
}

// TestNodeScopeIsolation checks the ring-key namespace: two peers with
// distinct scopes (the doocserve wiring — scope = node ID) pushing the
// same per-process array name ("job1:x", numbered by each peer's own job
// counter) never see each other's bytes, and one peer's delete leaves the
// other's data intact.
func TestNodeScopeIsolation(t *testing.T) {
	peers := startTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.Scope = cfg.Self.ID
	})
	const array = "job1:x"
	a := bytes.Repeat([]byte{0xA0}, 512)
	b := bytes.Repeat([]byte{0xB1}, 512)
	if !peers[0].node.PushBlock(array, 0, a) {
		t.Fatal("n0 push not durable")
	}
	if !peers[1].node.PushBlock(array, 0, b) {
		t.Fatal("n1 push not durable")
	}
	if data, ok := peers[0].node.FetchBlock(array, 0); !ok || !bytes.Equal(data, a) {
		t.Fatalf("n0 fetch: ok=%v, want its own bytes", ok)
	}
	if data, ok := peers[1].node.FetchBlock(array, 0); !ok || !bytes.Equal(data, b) {
		t.Fatalf("n1 fetch: ok=%v, want its own bytes", ok)
	}
	// n0's delete removes only n0's scoped keys, everywhere.
	peers[0].node.InvalidateArray(array)
	waitFor(t, 2*time.Second, "n0's scoped delete to land", func() bool {
		_, ok := peers[0].node.FetchBlock(array, 0)
		return !ok
	})
	if data, ok := peers[1].node.FetchBlock(array, 0); !ok || !bytes.Equal(data, b) {
		t.Fatalf("n1 lost its data to n0's delete: ok=%v", ok)
	}
	// A scope containing NUL would alias other scopes' keys; refused.
	if _, err := NewNode(Config{Self: Member{ID: "bad"}, Scope: "a\x00b"}); err == nil {
		t.Fatal("NUL scope accepted")
	}
}

// denyDeletes wraps a peer handler with a switchable PeerDelete failure —
// the stand-in for a peer that is unreachable exactly when the delete
// fan-out runs.
type denyDeletes struct {
	remote.PeerHandler
	mu   sync.Mutex
	deny bool
}

func (d *denyDeletes) setDeny(v bool) {
	d.mu.Lock()
	d.deny = v
	d.mu.Unlock()
}

func (d *denyDeletes) PeerDelete(array string) error {
	d.mu.Lock()
	deny := d.deny
	d.mu.Unlock()
	if deny {
		return fmt.Errorf("injected delete failure")
	}
	return d.PeerHandler.PeerDelete(array)
}

// TestNodeDeleteRetryAndStaleEpochGuard covers the missed-delete hole: a
// peer that fails the delete RPC keeps its old-incarnation bytes, but (1)
// the deleting node's reads demand epochs above the folded floor, so the
// straggler's stale copy is rejected rather than served, and (2) the
// prober retries the delete until the straggler acks and drops the copy.
func TestNodeDeleteRetryAndStaleEpochGuard(t *testing.T) {
	peers := startTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.ProbeInterval = 20 * time.Millisecond
	})
	deny := &denyDeletes{PeerHandler: peers[1].node}
	deny.setDeny(true)
	peers[1].late.set(deny)

	payload := bytes.Repeat([]byte{0x5A}, 256)
	// With 3 members the push walk covers every peer, so n1 holds a copy.
	if !peers[0].node.PushBlock("gone", 0, payload) {
		t.Fatal("push not durable")
	}
	if _, _, ok := peers[1].node.table.Get("gone", 0); !ok {
		t.Fatal("n1 did not receive the pushed copy")
	}

	peers[0].node.InvalidateArray("gone")
	// n1 missed the delete and still holds epoch-1 bytes...
	if _, _, ok := peers[1].node.table.Get("gone", 0); !ok {
		t.Fatal("denied delete still removed n1's copy")
	}
	// ...but the deleting node's want is floor+1, so the stale copy can
	// never be served back to it.
	if want := peers[0].node.epochOf("gone", 0); want < 2 {
		t.Fatalf("post-delete epoch demand %d does not clear the dead incarnation", want)
	}
	if _, ok := peers[0].node.FetchBlock("gone", 0); ok {
		t.Fatal("deleted array served from a peer that missed the delete")
	}

	// Once the peer is reachable again, the prober's retry delivers the
	// delete and the stale copy disappears.
	deny.setDeny(false)
	waitFor(t, 5*time.Second, "retried delete to reach n1", func() bool {
		_, _, ok := peers[1].node.table.Get("gone", 0)
		return !ok
	})
}

// TestNodeDeathFailover kills one peer (SIGKILL-style: TCP gone, no
// goodbye) and checks the survivors: death detected by the prober, the
// OnDeath hook fired exactly once, the view version bumped and gossiped,
// and a durable block still fetchable from survivors.
func TestNodeDeathFailover(t *testing.T) {
	var deathMu sync.Mutex
	deaths := make(map[string][]string) // observer -> dead IDs
	peers := startTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.ProbeInterval = 20 * time.Millisecond
		self := fmt.Sprintf("n%d", i)
		cfg.OnDeath = func(id string) {
			deathMu.Lock()
			deaths[self] = append(deaths[self], id)
			deathMu.Unlock()
		}
	})
	// Let gossip run until everyone has seen everyone (death-marking is
	// gated on having been seen alive once).
	waitFor(t, 5*time.Second, "initial gossip convergence", func() bool {
		for _, p := range peers {
			if p.node.Counters().ViewExchanges < 4 {
				return false
			}
		}
		return true
	})

	payload := bytes.Repeat([]byte{5}, 2048)
	if !peers[0].node.PushBlock("A", 1, payload) {
		t.Fatal("push not durable before the kill")
	}

	peers[2].kill()
	waitFor(t, 5*time.Second, "survivors to declare n2 dead", func() bool {
		for _, p := range peers[:2] {
			live := p.node.LiveMembers()
			if len(live) != 2 {
				return false
			}
		}
		return true
	})
	for _, p := range peers[:2] {
		st := p.node.Status()
		if len(st.Dead) != 1 || st.Dead[0] != "n2" {
			t.Fatalf("%s dead list = %v", p.id, st.Dead)
		}
		if st.Version < 2 {
			t.Fatalf("%s view version %d not bumped", p.id, st.Version)
		}
	}
	deathMu.Lock()
	for _, p := range peers[:2] {
		if got := deaths[p.id]; len(got) != 1 || got[0] != "n2" {
			t.Fatalf("%s OnDeath calls = %v, want exactly [n2]", p.id, got)
		}
	}
	deathMu.Unlock()

	// Durable means: survives any single peer death.
	for _, p := range peers[:2] {
		if data, ok := p.node.FetchBlock("A", 1); !ok || !bytes.Equal(data, payload) {
			t.Fatalf("%s lost the durable block after one death", p.id)
		}
	}
}

// TestNodeRejoin restarts the killed peer as a fresh process (same ID, new
// address, empty state) and checks the join path: an established cluster
// whose view version moved past the newcomer's still admits it via the
// sender identity, clears its dead flag, and re-converges to 3 members.
func TestNodeRejoin(t *testing.T) {
	peers := startTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.ProbeInterval = 20 * time.Millisecond
	})
	waitFor(t, 5*time.Second, "initial gossip convergence", func() bool {
		for _, p := range peers {
			if p.node.Counters().ViewExchanges < 4 {
				return false
			}
		}
		return true
	})
	peers[2].kill()
	waitFor(t, 5*time.Second, "death of n2", func() bool {
		return len(peers[0].node.LiveMembers()) == 2 && len(peers[1].node.LiveMembers()) == 2
	})

	// Restart: a new process with the old identity but a fresh listener.
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 22, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	late := &lateHandler{}
	srv, err := remote.ListenOptions(st, "127.0.0.1:0", remote.ServerOptions{Peer: late})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	node, err := NewNode(Config{
		Self:          Member{ID: "n2", Addr: srv.Addr()},
		Peers:         []Member{{ID: "n0", Addr: peers[0].srv.Addr()}, {ID: "n1", Addr: peers[1].srv.Addr()}},
		VNodes:        64,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	late.set(node)

	waitFor(t, 5*time.Second, "rejoin convergence to 3 members", func() bool {
		for _, n := range []*Node{peers[0].node, peers[1].node, node} {
			live := n.LiveMembers()
			if len(live) != 3 {
				return false
			}
		}
		return true
	})
	for _, p := range peers[:2] {
		st := p.node.Status()
		if len(st.Dead) != 0 {
			t.Fatalf("%s still lists dead peers after rejoin: %v", p.id, st.Dead)
		}
		if m := peerByMember(st.Members, "n2"); m == nil || m.Addr != srv.Addr() {
			t.Fatalf("%s did not learn n2's new address: %+v", p.id, st.Members)
		}
	}
}

func peerByMember(members []Member, id string) *Member {
	for i := range members {
		if members[i].ID == id {
			return &members[i]
		}
	}
	return nil
}

// TestNodeLegacyRejection points a cluster node at a plain storage server
// (no peer role — a pre-cluster binary) and checks the typed rejection:
// ErrLegacyPeer on first contact, permanent expulsion from membership, and
// placement that never routes to the legacy peer again.
func TestNodeLegacyRejection(t *testing.T) {
	lst, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	legacy, err := remote.Listen(lst, "127.0.0.1:0") // no ServerOptions.Peer
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()

	peers := startTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.Peers = append(cfg.Peers, Member{ID: "old", Addr: legacy.Addr()})
	})
	n := peers[0].node
	if _, err := n.client("old"); !errors.Is(err, ErrLegacyPeer) {
		t.Fatalf("first contact error = %v, want ErrLegacyPeer", err)
	}
	// Expelled: no longer a member, counted, and listed dead.
	if _, err := n.client("old"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("post-expulsion error = %v, want ErrNotMember", err)
	}
	if c := n.Counters(); c.LegacyRejections != 1 {
		t.Fatalf("legacy rejections = %d, want 1", c.LegacyRejections)
	}
	st := n.Status()
	if len(st.Dead) != 1 || st.Dead[0] != "old" {
		t.Fatalf("dead list = %v, want [old]", st.Dead)
	}
	for _, id := range n.currentRing().Members() {
		if id == "old" {
			t.Fatal("legacy peer still on the ring")
		}
	}
	// The cluster keeps working without it.
	payload := bytes.Repeat([]byte{4}, 128)
	peers[0].node.PushBlock("A", 0, payload)
	if data, ok := peers[1].node.FetchBlock("A", 0); !ok || !bytes.Equal(data, payload) {
		t.Fatal("fetch failed after legacy expulsion")
	}
}

// TestNodeClosedRefuses checks that a closed node fails cleanly on every
// entry point instead of dialing dead pools.
func TestNodeClosedRefuses(t *testing.T) {
	peers := startTestCluster(t, 2, nil)
	n := peers[0].node
	n.Close()
	n.Close() // idempotent
	if _, ok := n.FetchBlock("A", 0); ok {
		t.Fatal("closed node served a fetch")
	}
	if n.PushBlock("A", 0, []byte{1}) {
		t.Fatal("closed node accepted a push")
	}
	if _, err := n.PeerPut("A", 0, 1, []byte{1}, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed PeerPut err = %v", err)
	}
	if _, _, _, err := n.PeerGet("A", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed PeerGet err = %v", err)
	}
}
