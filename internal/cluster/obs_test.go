package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dooc/internal/obs"
)

// TestClusterObsReconcile drives a shared-registry cluster through pushes,
// forwarded reads, replica traffic, and a legacy rejection, then checks
// that every dooc_cluster_* series reconciles exactly with the nodes'
// Counters() snapshots — the acceptance criterion that the two reporting
// paths can never drift (both are fed by the same increments).
func TestClusterObsReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	peers := startTestCluster(t, 4, func(i int, cfg *Config) {
		cfg.Obs = reg
		cfg.Hot = func(array string) bool { return strings.HasPrefix(array, "x_") }
	})

	ring := peers[0].node.currentRing()
	payload := bytes.Repeat([]byte{6}, 1024)
	// Cold pushes and forwarded reads across several keys.
	for b := 0; b < 6; b++ {
		pusher := peers[b%len(peers)]
		pusher.node.PushBlock("A", b, payload)
		reader := peerByID(peers, findNonOwner(ring, "A", b))
		reader.node.FetchBlock("A", b)
	}
	// Hot-array traffic: fills, hits, a write-back, and a delete.
	hotBlock := findBlockExcluding(t, ring, "x_t", "n1")
	hotPeer := peerByID(peers, "n1")
	hotPeer.node.PushBlock("x_t", hotBlock, payload)
	hotPeer.node.FetchBlock("x_t", hotBlock) // forward + fill
	hotPeer.node.FetchBlock("x_t", hotBlock) // replica hit
	hotPeer.node.PushBlock("x_t", hotBlock, payload)
	peers[0].node.InvalidateArray("A")
	// A miss and an explicit gossip round.
	peers[2].node.FetchBlock("missing", 0)
	peers[0].node.gossipOnce()
	// Let the best-effort remote deletes land so residency gauges are
	// stable before reconciling.
	waitFor(t, 2*time.Second, "remote deletes of A to settle", func() bool {
		for _, p := range peers {
			for b := 0; b < 6; b++ {
				if _, _, ok := p.node.table.Get("A", b); ok {
					return false
				}
			}
		}
		return true
	})

	counterSeries := map[string]func(Counters) int64{
		"dooc_cluster_forwarded_reads_total":       func(c Counters) int64 { return c.ForwardedReads },
		"dooc_cluster_forwarded_read_misses_total": func(c Counters) int64 { return c.ForwardedReadMisses },
		"dooc_cluster_forwarded_bytes_total":       func(c Counters) int64 { return c.ForwardedBytes },
		"dooc_cluster_pushes_total":                func(c Counters) int64 { return c.Pushes },
		"dooc_cluster_push_acks_total":             func(c Counters) int64 { return c.PushAcks },
		"dooc_cluster_push_bytes_total":            func(c Counters) int64 { return c.PushBytes },
		"dooc_cluster_replica_hits_total":          func(c Counters) int64 { return c.ReplicaHits },
		"dooc_cluster_replica_stale_total":         func(c Counters) int64 { return c.ReplicaStale },
		"dooc_cluster_replica_fills_total":         func(c Counters) int64 { return c.ReplicaFills },
		"dooc_cluster_peer_deaths_total":           func(c Counters) int64 { return c.PeerDeaths },
		"dooc_cluster_legacy_rejections_total":     func(c Counters) int64 { return c.LegacyRejections },
		"dooc_cluster_served_gets_total":           func(c Counters) int64 { return c.ServedGets },
		"dooc_cluster_served_puts_total":           func(c Counters) int64 { return c.ServedPuts },
		"dooc_cluster_view_exchanges_total":        func(c Counters) int64 { return c.ViewExchanges },
	}
	var total Counters
	for _, p := range peers {
		c := p.node.Counters()
		for name, field := range counterSeries {
			if got, want := reg.SumWhere(name, "peer", p.id), field(c); got != want {
				t.Errorf("%s{peer=%s} = %d, Counters says %d", name, p.id, got, want)
			}
		}
		total.ForwardedReads += c.ForwardedReads
		total.Pushes += c.Pushes
		total.PushAcks += c.PushAcks
	}
	// Registry-wide sums match the cross-peer totals too.
	if got := reg.Sum("dooc_cluster_forwarded_reads_total"); got != total.ForwardedReads {
		t.Errorf("summed forwarded reads %d != %d", got, total.ForwardedReads)
	}
	if got := reg.Sum("dooc_cluster_push_acks_total"); got != total.PushAcks {
		t.Errorf("summed push acks %d != %d", got, total.PushAcks)
	}
	// Sanity: this scenario actually produced traffic on the key series.
	if total.ForwardedReads == 0 || total.Pushes == 0 || total.PushAcks == 0 {
		t.Fatalf("scenario generated no traffic: %+v", total)
	}

	// Residency gauges track the live table/replica state per peer.
	for _, p := range peers {
		st := p.node.Status()
		if got := reg.SumWhere("dooc_cluster_table_blocks", "peer", p.id); got != int64(st.TableBlocks) {
			t.Errorf("table_blocks{peer=%s} = %d, Status says %d", p.id, got, st.TableBlocks)
		}
		if got := reg.SumWhere("dooc_cluster_table_bytes", "peer", p.id); got != st.TableBytes {
			t.Errorf("table_bytes{peer=%s} = %d, Status says %d", p.id, got, st.TableBytes)
		}
		if got := reg.SumWhere("dooc_cluster_replica_blocks", "peer", p.id); got != int64(st.ReplicaBlocks) {
			t.Errorf("replica_blocks{peer=%s} = %d, Status says %d", p.id, got, st.ReplicaBlocks)
		}
		if got := reg.SumWhere("dooc_cluster_members", "peer", p.id); got != int64(len(st.Members)) {
			t.Errorf("members{peer=%s} = %d, Status says %d", p.id, got, len(st.Members))
		}
	}
}

// findNonOwner returns the ID of some peer outside the block's fetch walk
// (there is always one in a 4-peer cluster with a 3-owner walk).
func findNonOwner(r *Ring, array string, block int) string {
	owners := r.Owners(BlockKey(array, block), fetchCandidates)
	for _, id := range r.Members() {
		hit := false
		for _, o := range owners {
			if o == id {
				hit = true
				break
			}
		}
		if !hit {
			return id
		}
	}
	return owners[len(owners)-1]
}
