// Proxy fetch: the cluster leg of job-to-job dataflow. A chained job whose
// input handle originates on another peer resolves it HERE — the consumer's
// server asks the handle's origin scope directly over the pooled peer
// connections, so the payload crosses one server-to-server link and never
// touches the client. Plugs into jobs.Config.ProxyFetch.

package cluster

import (
	"errors"
	"fmt"

	"dooc/internal/proxy"
)

// ProxyFetch resolves a foreign handle's payload from the peer whose node
// ID equals the handle's scope. The remote resolve verifies chunk checksums
// and the registered SHA-256 end to end; a scope that is not a live member
// reports ErrNotMember (the origin died — its handles died with it).
func (n *Node) ProxyFetch(scope, name string, epoch uint64) ([]byte, error) {
	if scope == n.cfg.Self.ID {
		return nil, fmt.Errorf("cluster: proxy %s@%d: fetch loop — scope is this node", name, epoch)
	}
	cl, err := n.client(scope)
	if err != nil {
		return nil, fmt.Errorf("cluster: proxy %s@%d@%s: %w", name, epoch, scope, err)
	}
	data, _, err := cl.ResolveProxy(proxy.Ref{Name: name, Epoch: epoch, Scope: scope})
	if err != nil {
		// A typed registry answer (gone, unknown, quota) came back over a
		// working connection — the peer is alive, the handle just isn't.
		if errors.Is(err, proxy.ErrProxyGone) || errors.Is(err, proxy.ErrUnknownProxy) ||
			errors.Is(err, proxy.ErrProxyQuota) || errors.Is(err, proxy.ErrNoRefs) {
			n.markSeen(scope)
		} else {
			n.maybeDead(scope)
		}
		return nil, err
	}
	n.markSeen(scope)
	n.metrics.proxyFetches.Inc()
	n.metrics.proxyFetchBytes.Add(int64(len(data)))
	return data, nil
}
