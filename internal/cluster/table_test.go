package cluster

import (
	"bytes"
	"testing"
)

func tableData(size int, fill byte) []byte {
	d := make([]byte, size)
	for i := range d {
		d[i] = fill
	}
	return d
}

// TestTableEpochOrdering checks the anti-rollback contract: an older-epoch
// put is refused, an equal-epoch put (reconnect replay) overwrites
// idempotently, a newer-epoch put supersedes.
func TestTableEpochOrdering(t *testing.T) {
	tb := NewBlockTable(1 << 20)
	if !tb.Put("A", 0, 5, tableData(8, 5), false) {
		t.Fatal("initial put refused")
	}
	if tb.Put("A", 0, 3, tableData(8, 3), false) {
		t.Fatal("older-epoch put accepted (rollback)")
	}
	if !tb.Put("A", 0, 5, tableData(8, 5), false) {
		t.Fatal("equal-epoch replay refused")
	}
	if !tb.Put("A", 0, 7, tableData(8, 7), false) {
		t.Fatal("newer-epoch put refused")
	}
	data, epoch, ok := tb.Get("A", 0)
	if !ok || epoch != 7 || !bytes.Equal(data, tableData(8, 7)) {
		t.Fatalf("resident after supersede: epoch=%d ok=%v data=%v", epoch, ok, data)
	}
}

// TestTableLRUDropsUnpinned checks that over budget the least recently
// served unpinned entries are shed, while recently served ones survive.
func TestTableLRUDropsUnpinned(t *testing.T) {
	tb := NewBlockTable(3 * 100)
	for b := 0; b < 3; b++ {
		if !tb.Put("A", b, 1, tableData(100, byte(b)), false) {
			t.Fatalf("put block %d refused", b)
		}
	}
	// Touch block 0 so block 1 is the LRU victim when block 3 arrives.
	if _, _, ok := tb.Get("A", 0); !ok {
		t.Fatal("block 0 missing before pressure")
	}
	if !tb.Put("A", 3, 1, tableData(100, 3), false) {
		t.Fatal("put under pressure refused")
	}
	if _, _, ok := tb.Get("A", 1); ok {
		t.Fatal("LRU victim (block 1) still resident")
	}
	for _, b := range []int{0, 2, 3} {
		if _, _, ok := tb.Get("A", b); !ok {
			t.Fatalf("block %d evicted though not LRU", b)
		}
	}
	if tb.Len() != 3 || tb.Bytes() != 300 {
		t.Fatalf("residency after reclaim: len=%d bytes=%d", tb.Len(), tb.Bytes())
	}
}

// TestTablePinnedSurvivePressure checks the durability contract: pinned
// (durable) entries are never LRU victims, even when unpinned churn blows
// through the budget.
func TestTablePinnedSurvivePressure(t *testing.T) {
	tb := NewBlockTable(2 * 100)
	if !tb.Put("A", 0, 1, tableData(100, 0), true) {
		t.Fatal("durable put refused")
	}
	for b := 1; b < 10; b++ {
		tb.Put("B", b, 1, tableData(100, byte(b)), false)
	}
	if _, _, ok := tb.Get("A", 0); !ok {
		t.Fatal("durable entry was LRU-dropped")
	}
}

// TestTablePinnedBackpressure checks that durable puts are refused rather
// than pinning unboundedly: the pusher sees the missing ack and keeps its
// local durability path.
func TestTablePinnedBackpressure(t *testing.T) {
	tb := NewBlockTable(150)
	if !tb.Put("A", 0, 1, tableData(100, 0), true) {
		t.Fatal("first durable put refused under budget")
	}
	if tb.Put("A", 1, 1, tableData(100, 1), true) {
		t.Fatal("durable put accepted over the pinned budget")
	}
	// Unpinned puts are still welcome (they are shed under pressure).
	if !tb.Put("A", 2, 1, tableData(40, 2), false) {
		t.Fatal("unpinned put refused")
	}
	// Upgrading a resident unpinned entry to durable respects the bound too.
	if tb.Put("A", 2, 2, tableData(60, 2), true) {
		t.Fatal("durable upgrade accepted over the pinned budget")
	}
	// Dropping the pinned array frees pinned bytes; durable puts fit again.
	if n := tb.DeleteArray("A"); n == 0 {
		t.Fatal("DeleteArray dropped nothing")
	}
	if !tb.Put("C", 0, 1, tableData(100, 9), true) {
		t.Fatal("durable put refused after pinned bytes were freed")
	}
}

// TestTableDeleteArrayAccounting checks that DeleteArray drops exactly the
// named array's blocks and returns the byte/len accounting to zero.
func TestTableDeleteArrayAccounting(t *testing.T) {
	tb := NewBlockTable(1 << 20)
	for b := 0; b < 4; b++ {
		tb.Put("gone", b, 1, tableData(50, byte(b)), b%2 == 0)
		tb.Put("kept", b, 1, tableData(50, byte(b)), false)
	}
	if n := tb.DeleteArray("gone"); n != 4 {
		t.Fatalf("DeleteArray dropped %d blocks, want 4", n)
	}
	if n := tb.DeleteArray("gone"); n != 0 {
		t.Fatalf("second DeleteArray dropped %d blocks", n)
	}
	for b := 0; b < 4; b++ {
		if _, _, ok := tb.Get("gone", b); ok {
			t.Fatalf("deleted block %d still resident", b)
		}
		if _, _, ok := tb.Get("kept", b); !ok {
			t.Fatalf("unrelated block %d vanished", b)
		}
	}
	if tb.Len() != 4 || tb.Bytes() != 200 {
		t.Fatalf("after delete: len=%d bytes=%d, want 4/200", tb.Len(), tb.Bytes())
	}
}
