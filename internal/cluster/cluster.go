// Package cluster promotes the in-process storage network into a real
// multi-process tier: N doocserve peers form a consistent-hash ring over
// which written blocks are placed, forwarded, and (for hot arrays, the
// SpMV input vector) read-replicated.
//
// The paper's storage design is a partitioned, non-replicated global map
// with random-peer forwarding; this package keeps that shape but moves it
// across OS processes over the existing gob/CRC32/hello wire protocol:
//
//   - ring.go places every (array, block) on a deterministic walk of
//     virtual-node points, so membership changes remap a minimal key
//     fraction (~1/N on a single join or leave);
//   - node.go is the per-process runtime: a versioned membership view
//     gossiped over peer-view exchanges, a lazily dialed pool of
//     compress-negotiated remote clients, a prober that detects peer
//     death, and the owner-aware forwarding used by the storage layer
//     (storage.ShardBackend);
//   - table.go holds the blocks this peer stores on behalf of the ring —
//     epoch-tagged so a deleted-and-recreated array can never serve stale
//     bytes;
//   - replica.go caches hot blocks on the reading side, invalidated by
//     epoch bump on write-back.
//
// Failure model: a peer that stops answering is marked dead, the view
// version is bumped and gossiped, and the ring rehashes its keys onto
// survivors. Blocks pushed to two live remote peers ("durable") survive
// any single peer death; the storage layer only drops its local copy
// without a disk spill for such blocks, so a SIGKILLed peer costs at most
// re-forwarded reads, never data. Blocks with fewer remote copies keep the
// usual local-disk durability path.
package cluster

import "errors"

// ErrLegacyPeer reports a peer whose handshake does not advertise the
// cluster protocol capability (a pre-cluster binary, or one started
// without -peers). Such peers would decode peer verbs as garbage or
// reject them with opaque strings, so ring membership refuses them with
// this typed error instead.
var ErrLegacyPeer = errors.New("cluster: peer does not speak the cluster protocol")

// ErrNotMember reports an operation addressed to a node ID outside the
// current membership view.
var ErrNotMember = errors.New("cluster: unknown member")

// ErrClosed reports use of a closed cluster node.
var ErrClosed = errors.New("cluster: node closed")
