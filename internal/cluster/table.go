package cluster

import "sync"

// BlockTable is the peer-side shard store: the blocks this process holds
// on behalf of the ring (its own pushes included when it owns the key).
// Entries are epoch-tagged — a put with an older epoch than the resident
// entry is refused, so a late replay can never roll a block back — and the
// table is bounded: over budget, the least recently served entries are
// dropped (they are a cache tier over the pusher's durability path, never
// the only copy unless the pusher marked them durable, in which case two
// distinct peers hold them).
type BlockTable struct {
	mu     sync.Mutex
	budget int64
	used   int64
	pinned int64 // bytes held by durable entries, bounded by budget
	tick   int64
	blocks map[string]*tableEntry         // BlockKey -> entry
	arrays map[string]map[int]*tableEntry // array -> block -> entry
}

type tableEntry struct {
	array   string
	block   int
	epoch   uint64
	data    []byte
	lastUse int64
	pinned  bool // durable entries are never LRU-dropped
}

// DefaultTableBytes bounds a peer's shard table when the caller does not
// choose: 256 MiB of remote blocks.
const DefaultTableBytes = 256 << 20

// NewBlockTable builds a table bounded to budget bytes (DefaultTableBytes
// when <= 0).
func NewBlockTable(budget int64) *BlockTable {
	if budget <= 0 {
		budget = DefaultTableBytes
	}
	return &BlockTable{
		budget: budget,
		blocks: make(map[string]*tableEntry),
		arrays: make(map[string]map[int]*tableEntry),
	}
}

// Put stores (or refreshes) a block at the given epoch. A put older than
// the resident epoch is refused (ok=false); equal epochs overwrite — a
// replayed push after reconnect is byte-identical, so the overwrite is
// idempotent. durable pins the entry against LRU drops: the pusher is
// counting on this copy to survive. Pinned bytes are bounded by the
// budget — a durable put that would exceed it is refused outright, which
// the pusher sees as a missing ack and keeps its local durability path
// (backpressure instead of unbounded pinning). The table takes ownership
// of data.
func (t *BlockTable) Put(array string, block int, epoch uint64, data []byte, durable bool) bool {
	key := BlockKey(array, block)
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.blocks[key]; ok {
		if epoch < e.epoch {
			return false
		}
		delta := int64(len(data)) - int64(len(e.data))
		if (durable || e.pinned) && !e.pinned {
			if t.pinned+int64(len(data)) > t.budget {
				return false
			}
			t.pinned += int64(len(data))
		} else if e.pinned {
			t.pinned += delta
		}
		t.used += delta
		e.epoch, e.data = epoch, data
		e.pinned = e.pinned || durable
		t.tick++
		e.lastUse = t.tick
		t.reclaimLocked()
		return true
	}
	if durable && t.pinned+int64(len(data)) > t.budget {
		return false
	}
	e := &tableEntry{array: array, block: block, epoch: epoch, data: data, pinned: durable}
	t.tick++
	e.lastUse = t.tick
	t.blocks[key] = e
	byBlock, ok := t.arrays[array]
	if !ok {
		byBlock = make(map[int]*tableEntry)
		t.arrays[array] = byBlock
	}
	byBlock[block] = e
	t.used += int64(len(data))
	if durable {
		t.pinned += int64(len(data))
	}
	t.reclaimLocked()
	return true
}

// Get returns a block's bytes and epoch. The slice must be treated as
// immutable: puts replace the pointer, they never write in place.
func (t *BlockTable) Get(array string, block int) (data []byte, epoch uint64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, found := t.blocks[BlockKey(array, block)]
	if !found {
		return nil, 0, false
	}
	t.tick++
	e.lastUse = t.tick
	return e.data, e.epoch, true
}

// DeleteArray drops every block of an array (the pusher deleted it).
func (t *BlockTable) DeleteArray(array string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	byBlock, ok := t.arrays[array]
	if !ok {
		return 0
	}
	n := 0
	for block, e := range byBlock {
		delete(t.blocks, BlockKey(array, block))
		t.used -= int64(len(e.data))
		if e.pinned {
			t.pinned -= int64(len(e.data))
		}
		n++
	}
	delete(t.arrays, array)
	return n
}

// Len returns the resident block count.
func (t *BlockTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.blocks)
}

// Bytes returns the resident byte total.
func (t *BlockTable) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// reclaimLocked drops least-recently-served unpinned entries until the
// table fits its budget. Pinned (durable) entries survive even over
// budget: dropping them would silently break the pusher's spill-free
// eviction contract.
func (t *BlockTable) reclaimLocked() {
	for t.used > t.budget {
		var victim *tableEntry
		for _, e := range t.blocks {
			if e.pinned {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(t.blocks, BlockKey(victim.array, victim.block))
		if byBlock, ok := t.arrays[victim.array]; ok {
			delete(byBlock, victim.block)
			if len(byBlock) == 0 {
				delete(t.arrays, victim.array)
			}
		}
		t.used -= int64(len(victim.data))
	}
}
