package cluster

import (
	"sync"
	"testing"
)

func replicaData(size int, fill byte) []byte {
	d := make([]byte, size)
	for i := range d {
		d[i] = fill
	}
	return d
}

// TestReplicaEpochValidation checks the write-back invalidation contract:
// a reader that expects a specific epoch gets the replica only at exactly
// that epoch; any mismatch drops the replica and reports stale so the
// caller refetches from the owner.
func TestReplicaEpochValidation(t *testing.T) {
	c := NewReplicaCache(1 << 20)
	c.Put("x_t", 0, 3, replicaData(16, 3))

	// Exact epoch: hit.
	if data, ok, stale := c.Get("x_t", 0, 3); !ok || stale || data[0] != 3 {
		t.Fatalf("exact-epoch get: ok=%v stale=%v", ok, stale)
	}
	// No epoch knowledge (0): accepts any resident epoch.
	if _, ok, stale := c.Get("x_t", 0, 0); !ok || stale {
		t.Fatalf("want-any get: ok=%v stale=%v", ok, stale)
	}
	// Newer expectation: the resident replica is stale — dropped, reported.
	if _, ok, stale := c.Get("x_t", 0, 4); ok || !stale {
		t.Fatalf("stale get: ok=%v stale=%v", ok, stale)
	}
	// The stale entry is gone for good: next read is a clean miss.
	if _, ok, stale := c.Get("x_t", 0, 4); ok || stale {
		t.Fatalf("post-stale get: ok=%v stale=%v, want clean miss", ok, stale)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after stale drop: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

// TestReplicaOlderPutIgnored checks that a late fill cannot roll a replica
// back to an older epoch.
func TestReplicaOlderPutIgnored(t *testing.T) {
	c := NewReplicaCache(1 << 20)
	c.Put("x_t", 0, 5, replicaData(16, 5))
	c.Put("x_t", 0, 2, replicaData(16, 2)) // late straggler
	data, ok, _ := c.Get("x_t", 0, 5)
	if !ok || data[0] != 5 {
		t.Fatalf("older put rolled the replica back: ok=%v data=%v", ok, data)
	}
}

// TestReplicaInvalidate checks the explicit invalidation paths used on
// write-back (single block) and array delete (all blocks).
func TestReplicaInvalidate(t *testing.T) {
	c := NewReplicaCache(1 << 20)
	for b := 0; b < 3; b++ {
		c.Put("x_t", b, 1, replicaData(16, byte(b)))
	}
	c.Put("other", 0, 1, replicaData(16, 9))
	c.Invalidate("x_t", 1)
	if _, ok, _ := c.Get("x_t", 1, 0); ok {
		t.Fatal("invalidated block still resident")
	}
	c.InvalidateArray("x_t")
	if c.Len() != 1 {
		t.Fatalf("after InvalidateArray: %d replicas resident, want 1", c.Len())
	}
	if _, ok, _ := c.Get("other", 0, 0); !ok {
		t.Fatal("unrelated array's replica vanished")
	}
}

// TestReplicaLRUBudget checks that the cache sheds least recently used
// replicas to fit its byte budget.
func TestReplicaLRUBudget(t *testing.T) {
	c := NewReplicaCache(3 * 100)
	for b := 0; b < 3; b++ {
		c.Put("x_t", b, 1, replicaData(100, byte(b)))
	}
	c.Get("x_t", 0, 0) // touch 0 so 1 is the victim
	c.Put("x_t", 3, 1, replicaData(100, 3))
	if _, ok, _ := c.Get("x_t", 1, 0); ok {
		t.Fatal("LRU victim still resident")
	}
	for _, b := range []int{0, 2, 3} {
		if _, ok, _ := c.Get("x_t", b, 0); !ok {
			t.Fatalf("block %d evicted though not LRU", b)
		}
	}
	if c.Bytes() > 300 {
		t.Fatalf("cache over budget: %d bytes", c.Bytes())
	}
}

// TestReplicaConcurrent hammers one cache with concurrent fills at rising
// epochs, epoch-checked reads, and invalidations — the -race exercise for
// the replica path. Readers assert self-consistency: whatever epoch a read
// lands on, the bytes must be that epoch's fill pattern (entries are
// replaced wholesale, never written in place).
func TestReplicaConcurrent(t *testing.T) {
	c := NewReplicaCache(1 << 20)
	const (
		blocks  = 8
		rounds  = 200
		readers = 4
	)
	var wg sync.WaitGroup
	wg.Add(1 + readers + 1)
	go func() { // writer: rising epochs per block
		defer wg.Done()
		for e := uint64(1); e <= rounds; e++ {
			for b := 0; b < blocks; b++ {
				c.Put("x_t", b, e, replicaData(64, byte(e)))
			}
		}
	}()
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds*blocks; i++ {
				b := i % blocks
				want := uint64(0)
				if i%3 == 0 {
					want = uint64(1 + i%rounds)
				}
				data, ok, _ := c.Get("x_t", b, want)
				if !ok {
					continue
				}
				fill := data[0]
				for _, by := range data {
					if by != fill {
						t.Errorf("torn replica read: %v", data[:8])
						return
					}
				}
				if want != 0 && fill != byte(want) {
					t.Errorf("epoch-checked read returned fill %d, want %d", fill, byte(want))
					return
				}
			}
		}(r)
	}
	go func() { // invalidator: the write-back and delete paths
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			c.Invalidate("x_t", i%blocks)
			if i%32 == 0 {
				c.InvalidateArray("x_t")
			}
		}
	}()
	wg.Wait()
}
