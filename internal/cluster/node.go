package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dooc/internal/compress"
	"dooc/internal/obs"
	"dooc/internal/remote"
)

// Member identifies one cluster peer: a stable node ID and the TCP
// address its doocserve process listens on.
type Member struct {
	ID   string
	Addr string
}

// Config builds a Node.
type Config struct {
	// Self is this process's identity. Self.Addr is what other peers dial;
	// it must match the doocserve listen address.
	Self Member
	// Peers are the other expected members at startup. Peers that turn out
	// to be legacy binaries are rejected from membership on first contact
	// (ErrLegacyPeer); peers that never answer are marked dead only after
	// they have been seen alive once, so a slow-starting cluster does not
	// eat spurious deaths.
	Peers []Member
	// Scope, when non-empty, namespaces every array name this node
	// originates (FetchBlock/PushBlock/InvalidateArray) as
	// "<scope>\x00<name>" ring-wide. Array names that are only unique
	// within one process — doocserve's job-scoped "jobN:..." arrays,
	// numbered by a per-process counter — MUST be scoped with a
	// cluster-unique value (doocserve uses the node ID), or two peers
	// accepting jobs would collide on "job1:..." keys and silently serve
	// each other's bytes. Empty keeps a single shared namespace, for
	// deployments whose array names are already cluster-unique. The scope
	// must not contain NUL. Peer verbs are exempt: wire names arrive
	// already scoped by their origin.
	Scope string
	// VNodes is the virtual-node count per member (DefaultVNodes when 0).
	VNodes int
	// Obs, when non-nil, receives the node's dooc_cluster_* series.
	Obs *obs.Registry
	// Codec, when non-nil, compresses inter-peer block traffic.
	Codec compress.Codec
	// Hot reports whether an array's blocks are worth read-replicating
	// (the SpMV input vector — read K times per iteration). Nil disables
	// the replica cache.
	Hot func(array string) bool
	// TableBytes bounds the shard table (DefaultTableBytes when 0).
	TableBytes int64
	// ReplicaBytes bounds the replica cache (DefaultReplicaBytes when 0).
	ReplicaBytes int64
	// ProbeInterval paces the gossip/liveness prober (default 250ms).
	ProbeInterval time.Duration
	// RPCTimeout bounds each inter-peer round trip (default 2s).
	RPCTimeout time.Duration
	// OnDeath, when non-nil, is called (on its own goroutine) once per
	// peer declared dead — the hook doocserve uses to fail the engine
	// nodes mapped onto that peer so their tasks re-execute on survivors.
	OnDeath func(id string)
	// Logf, when non-nil, receives membership event lines.
	Logf func(format string, args ...any)
}

// ReplicateCopies is how many ring-walk owners a written block is pushed
// to, and DurableCopies how many *remote* acks make the block durable —
// durable blocks survive any single peer death, so the pusher's storage
// layer may drop its local copy without a disk spill. A self-owned copy
// lands in the local table (it serves other peers' reads) but does not
// count toward durability: it dies with the pusher.
const (
	ReplicateCopies = 2
	DurableCopies   = 2
	fetchCandidates = 3
)

// Counters is an atomic snapshot of a node's event counts; the same
// increments feed the dooc_cluster_* obs series, so the two reconcile.
type Counters struct {
	ForwardedReads      int64
	ForwardedReadMisses int64
	ForwardedBytes      int64
	Pushes              int64
	PushAcks            int64
	PushBytes           int64
	ReplicaHits         int64
	ReplicaStale        int64
	ReplicaFills        int64
	PeerDeaths          int64
	LegacyRejections    int64
	ServedGets          int64
	ServedPuts          int64
	ViewExchanges       int64
}

// Status is the /cluster endpoint's payload: the node's identity, its
// current membership view, shard/replica residency, and event counters.
type Status struct {
	Self          string
	Addr          string
	Version       uint64
	Members       []Member
	Dead          []string
	TableBlocks   int
	TableBytes    int64
	ReplicaBlocks int
	ReplicaBytes  int64
	Counters      Counters
}

// arrayEpochs tracks the write epochs this node has assigned or observed
// for one array. floor carries the high-water mark across a delete —
// a recreated array's pushes start above every epoch the old incarnation
// ever used, which is what makes stale replicas detectable.
type arrayEpochs struct {
	floor  uint64
	blocks map[int]uint64
}

// Node is the per-process cluster runtime: membership view, consistent-
// hash ring, lazily dialed peer clients, shard table, replica cache, and
// the liveness prober. It implements remote.PeerHandler (the server-side
// verbs) and the storage layer's shard backend (FetchBlock / PushBlock /
// InvalidateArray). All methods are safe for concurrent use.
type Node struct {
	cfg      Config
	table    *BlockTable
	replicas *ReplicaCache
	metrics  nodeMetrics

	mu      sync.Mutex
	members map[string]Member
	dead    map[string]bool
	seen    map[string]bool // peers successfully contacted at least once
	version uint64
	ring    *Ring
	epochs  map[string]*arrayEpochs
	// pendingDel tracks per-array delete fan-outs not yet acknowledged:
	// array -> member IDs still owing an ack. The prober retries them every
	// tick until each member acks or is expelled, so a peer that missed a
	// delete (network blip, restart mid-RPC) still drops its copies once
	// reachable again. Entries survive a member's death on purpose — the
	// flaky peer that failed the delete RPC is exactly the one that gets
	// marked dead and later gossips back in with its table intact.
	pendingDel map[string]map[string]bool
	closed     bool

	clientsMu sync.Mutex
	clients   map[string]*clientEntry

	stop chan struct{}
	wg   sync.WaitGroup

	forwardedReads      atomic.Int64
	forwardedReadMisses atomic.Int64
	forwardedBytes      atomic.Int64
	pushes              atomic.Int64
	pushAcks            atomic.Int64
	pushBytes           atomic.Int64
	replicaHits         atomic.Int64
	replicaStale        atomic.Int64
	replicaFills        atomic.Int64
	peerDeaths          atomic.Int64
	legacyRejections    atomic.Int64
	servedGets          atomic.Int64
	servedPuts          atomic.Int64
	viewExchanges       atomic.Int64
}

// NewNode builds and starts a cluster node. The prober begins gossiping
// immediately; Close stops it.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self.ID == "" {
		return nil, fmt.Errorf("cluster: empty self node ID")
	}
	if strings.ContainsRune(cfg.Scope, 0) {
		return nil, fmt.Errorf("cluster: scope %q contains NUL", cfg.Scope)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 2 * time.Second
	}
	n := &Node{
		cfg:        cfg,
		table:      NewBlockTable(cfg.TableBytes),
		replicas:   NewReplicaCache(cfg.ReplicaBytes),
		metrics:    newNodeMetrics(cfg.Obs, cfg.Self.ID),
		members:    make(map[string]Member),
		dead:       make(map[string]bool),
		seen:       make(map[string]bool),
		epochs:     make(map[string]*arrayEpochs),
		pendingDel: make(map[string]map[string]bool),
		clients:    make(map[string]*clientEntry),
		stop:       make(chan struct{}),
	}
	n.members[cfg.Self.ID] = cfg.Self
	for _, p := range cfg.Peers {
		if p.ID == "" || p.ID == cfg.Self.ID {
			continue
		}
		n.members[p.ID] = p
	}
	n.version = 1
	n.rebuildRingLocked()
	n.wg.Add(1)
	go n.probeLoop()
	return n, nil
}

// Close stops the prober and tears down every peer connection.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
	n.clientsMu.Lock()
	entries := n.clients
	n.clients = make(map[string]*clientEntry)
	n.clientsMu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.cl != nil {
			e.cl.Close()
			e.cl = nil
		}
		e.mu.Unlock()
	}
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// rebuildRingLocked recomputes the ring over the live membership and
// refreshes the membership gauges. Caller holds n.mu.
func (n *Node) rebuildRingLocked() {
	ids := make([]string, 0, len(n.members))
	for id := range n.members {
		ids = append(ids, id)
	}
	n.ring = NewRing(ids, n.cfg.VNodes)
	n.metrics.members.Set(int64(len(n.members)))
	n.metrics.viewVersion.Set(int64(n.version))
}

// currentRing snapshots the ring pointer; rings are immutable once built.
func (n *Node) currentRing() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// LiveMembers returns the current live membership, sorted by ID — the
// deterministic order doocserve uses to map engine nodes onto peers.
func (n *Node) LiveMembers() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Version returns the current membership view version.
func (n *Node) Version() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.version
}

// Counters snapshots the node's event counts.
func (n *Node) Counters() Counters {
	return Counters{
		ForwardedReads:      n.forwardedReads.Load(),
		ForwardedReadMisses: n.forwardedReadMisses.Load(),
		ForwardedBytes:      n.forwardedBytes.Load(),
		Pushes:              n.pushes.Load(),
		PushAcks:            n.pushAcks.Load(),
		PushBytes:           n.pushBytes.Load(),
		ReplicaHits:         n.replicaHits.Load(),
		ReplicaStale:        n.replicaStale.Load(),
		ReplicaFills:        n.replicaFills.Load(),
		PeerDeaths:          n.peerDeaths.Load(),
		LegacyRejections:    n.legacyRejections.Load(),
		ServedGets:          n.servedGets.Load(),
		ServedPuts:          n.servedPuts.Load(),
		ViewExchanges:       n.viewExchanges.Load(),
	}
}

// Status snapshots the node for the /cluster endpoint.
func (n *Node) Status() Status {
	n.mu.Lock()
	version := n.version
	members := make([]Member, 0, len(n.members))
	for _, m := range n.members {
		members = append(members, m)
	}
	deadIDs := make([]string, 0, len(n.dead))
	for id := range n.dead {
		deadIDs = append(deadIDs, id)
	}
	n.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	sort.Strings(deadIDs)
	return Status{
		Self:          n.cfg.Self.ID,
		Addr:          n.cfg.Self.Addr,
		Version:       version,
		Members:       members,
		Dead:          deadIDs,
		TableBlocks:   n.table.Len(),
		TableBytes:    n.table.Bytes(),
		ReplicaBlocks: n.replicas.Len(),
		ReplicaBytes:  n.replicas.Bytes(),
		Counters:      n.Counters(),
	}
}

// syncStorageGauges refreshes the table/replica residency gauges after a
// mutation.
func (n *Node) syncStorageGauges() {
	n.metrics.tableBlocks.Set(int64(n.table.Len()))
	n.metrics.tableBytes.Set(n.table.Bytes())
	n.metrics.replicaCount.Set(int64(n.replicas.Len()))
	n.metrics.replicaBytes.Set(n.replicas.Bytes())
}

// ---- peer client pool ----

// clientEntry is one member's slot in the pool. The per-entry mutex
// serializes dials to that member only, so a slow or unreachable peer
// being dialed (up to RPCTimeout) never stalls other peers' RPCs — the
// pool-wide clientsMu is held just for map lookups.
type clientEntry struct {
	mu sync.Mutex
	cl *remote.Client
}

// client returns a connected, cluster-capable client for a member,
// dialing lazily. A member whose handshake lacks the cluster capability
// is expelled from membership and reported as ErrLegacyPeer.
func (n *Node) client(id string) (*remote.Client, error) {
	n.mu.Lock()
	m, ok := n.members[id]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, ErrNotMember
	}
	n.clientsMu.Lock()
	e, ok := n.clients[id]
	if !ok {
		e = &clientEntry{}
		n.clients[id] = e
	}
	n.clientsMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cl != nil {
		return e.cl, nil
	}
	cl, err := remote.DialOptions(m.Addr, remote.Options{
		Handshake:  true,
		Codec:      n.cfg.Codec,
		Timeout:    n.cfg.RPCTimeout,
		MaxRetries: 1,
	})
	if err != nil {
		return nil, err
	}
	if !cl.ClusterCapable() {
		cl.Close()
		n.expelLegacy(id)
		return nil, ErrLegacyPeer
	}
	// The entry may have been dropped while we dialed (peer died, node
	// closed); a dropped entry must not resurrect in the pool.
	n.clientsMu.Lock()
	current := n.clients[id]
	n.clientsMu.Unlock()
	if current != e {
		cl.Close()
		return nil, ErrNotMember
	}
	e.cl = cl
	return cl, nil
}

// dropClient closes and forgets a member's pooled connection. A dial in
// flight for the same member notices the dropped entry and discards its
// own result.
func (n *Node) dropClient(id string) {
	n.clientsMu.Lock()
	e, ok := n.clients[id]
	if ok {
		delete(n.clients, id)
	}
	n.clientsMu.Unlock()
	if !ok {
		return
	}
	e.mu.Lock()
	cl := e.cl
	e.cl = nil
	e.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// markSeen records that a peer answered an RPC, making it eligible for
// death-marking later.
func (n *Node) markSeen(id string) {
	n.mu.Lock()
	n.seen[id] = true
	n.mu.Unlock()
}

// maybeDead marks a peer dead after a transport failure, but only if it
// was seen alive before — errors against a never-contacted peer (still
// starting up) are skipped without prejudice.
func (n *Node) maybeDead(id string) {
	n.mu.Lock()
	if !n.seen[id] {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	n.markDead(id)
}

// markDead removes a peer from membership, bumps the view version, and
// fires the OnDeath hook. Idempotent.
func (n *Node) markDead(id string) {
	n.mu.Lock()
	if _, ok := n.members[id]; !ok || id == n.cfg.Self.ID {
		n.mu.Unlock()
		return
	}
	delete(n.members, id)
	n.dead[id] = true
	n.version++
	n.rebuildRingLocked()
	cb := n.cfg.OnDeath
	n.mu.Unlock()
	n.peerDeaths.Add(1)
	n.metrics.peerDeaths.Inc()
	n.logf("cluster: peer %s declared dead; view now v%d", id, n.Version())
	n.dropClient(id)
	if cb != nil {
		go cb(id)
	}
}

// expelLegacy removes a peer that cannot speak the cluster protocol.
// Unlike death, this is permanent for the peer's lifetime: it will never
// gossip its way back in, because it cannot gossip at all.
func (n *Node) expelLegacy(id string) {
	n.mu.Lock()
	if _, ok := n.members[id]; !ok {
		n.mu.Unlock()
		return
	}
	delete(n.members, id)
	n.dead[id] = true
	n.version++
	n.rebuildRingLocked()
	// A legacy peer never held ring blocks and can never ack, so it owes
	// no deletes.
	for array, owing := range n.pendingDel {
		delete(owing, id)
		if len(owing) == 0 {
			delete(n.pendingDel, array)
		}
	}
	n.mu.Unlock()
	n.legacyRejections.Add(1)
	n.metrics.legacyRejections.Inc()
	n.logf("cluster: peer %s rejected: %v", id, ErrLegacyPeer)
}

// ---- membership gossip ----

func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.gossipOnce()
			n.flushDeletes()
		}
	}
}

// gossipOnce exchanges views with every live remote member. N is small
// (a handful of I/O peers), so all-to-all keeps convergence fast and the
// code free of randomness.
func (n *Node) gossipOnce() {
	for _, m := range n.LiveMembers() {
		if m.ID == n.cfg.Self.ID {
			continue
		}
		cl, err := n.client(m.ID)
		if err != nil {
			n.maybeDead(m.ID)
			continue
		}
		theirs, err := cl.PeerViewExchange(n.wireView())
		if err != nil {
			n.maybeDead(m.ID)
			continue
		}
		n.markSeen(m.ID)
		n.viewExchanges.Add(1)
		n.metrics.viewExchanges.Inc()
		n.mergeView(theirs)
	}
}

// wireView snapshots the membership view in wire form, members sorted for
// determinism.
func (n *Node) wireView() remote.PeerView {
	n.mu.Lock()
	v := remote.PeerView{From: n.cfg.Self.ID, Version: n.version}
	v.Members = make([]remote.PeerMember, 0, len(n.members))
	for _, m := range n.members {
		v.Members = append(v.Members, remote.PeerMember{ID: m.ID, Addr: m.Addr})
	}
	n.mu.Unlock()
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].ID < v.Members[j].ID })
	return v
}

// mergeView folds a received view into ours. A strictly newer view is
// adopted wholesale (self is always re-added — a node never removes
// itself from its own view); otherwise an unknown sender is admitted as a
// join or rejoin with a version bump, which is how a freshly (re)started
// peer propagates into an established cluster whose version has moved on.
func (n *Node) mergeView(v remote.PeerView) {
	n.mu.Lock()
	changed := false
	if v.Version > n.version {
		nm := make(map[string]Member, len(v.Members)+1)
		for _, m := range v.Members {
			nm[m.ID] = Member{ID: m.ID, Addr: m.Addr}
		}
		version := v.Version
		if _, ok := nm[n.cfg.Self.ID]; !ok {
			nm[n.cfg.Self.ID] = n.cfg.Self
			version++
		}
		n.members = nm
		n.version = version
		for id := range nm {
			delete(n.dead, id) // present in a newer view = alive again
		}
		changed = true
	} else if v.From != "" && v.From != n.cfg.Self.ID {
		if _, ok := n.members[v.From]; !ok {
			for _, m := range v.Members {
				if m.ID == v.From {
					n.members[v.From] = Member{ID: m.ID, Addr: m.Addr}
					delete(n.dead, v.From)
					n.version++
					changed = true
					break
				}
			}
		}
	}
	if v.From != "" && v.From != n.cfg.Self.ID {
		n.seen[v.From] = true
	}
	if changed {
		n.rebuildRingLocked()
	}
	n.mu.Unlock()
	if changed {
		n.logf("cluster: view now v%d with %d members", n.Version(), len(n.LiveMembers()))
	}
}

// ---- epochs ----

// bumpEpoch assigns the next write epoch for a block: one past anything
// this node ever pushed or observed for it, including pre-delete history
// via the array floor.
func (n *Node) bumpEpoch(array string, block int) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	ae, ok := n.epochs[array]
	if !ok {
		ae = &arrayEpochs{blocks: make(map[int]uint64)}
		n.epochs[array] = ae
	}
	e := ae.floor
	if be := ae.blocks[block]; be > e {
		e = be
	}
	e++
	ae.blocks[block] = e
	return e
}

// noteEpoch records an epoch observed from a peer fetch, so later replica
// reads validate against it.
func (n *Node) noteEpoch(array string, block int, epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ae, ok := n.epochs[array]
	if !ok {
		ae = &arrayEpochs{blocks: make(map[int]uint64)}
		n.epochs[array] = ae
	}
	if epoch > ae.blocks[block] {
		ae.blocks[block] = epoch
	}
}

// epochOf returns the minimum epoch this node accepts for a block, 0 when
// it has no knowledge (accept any). A block with no post-delete epoch in
// an array that has a floor demands floor+1 — strictly above everything
// the dead incarnation ever pushed — so a reader rejects old-incarnation
// bytes from a peer that missed the delete even before the retried delete
// lands there.
func (n *Node) epochOf(array string, block int) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ae, ok := n.epochs[array]; ok {
		if e := ae.blocks[block]; e > 0 {
			return e
		}
		if ae.floor > 0 {
			return ae.floor + 1
		}
	}
	return 0
}

// foldEpochs collapses an array's per-block epochs into the floor on
// delete: the recreated array's pushes start above the old incarnation's
// epochs, and the per-block map stops growing across delete cycles.
func (n *Node) foldEpochs(array string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ae, ok := n.epochs[array]
	if !ok {
		return
	}
	for _, e := range ae.blocks {
		if e > ae.floor {
			ae.floor = e
		}
	}
	ae.blocks = make(map[int]uint64)
}

// ---- shard backend (the storage layer's hooks) ----

// scoped maps a caller-facing array name into the ring namespace. With a
// configured scope, every key this node originates carries a
// "<scope>\x00" prefix, so array names that are only unique per process
// (job-scoped "job1:x_0_0" from each peer's local job counter) never
// collide across peers in the shared ring. The peer verbs stay raw: wire
// names arrive already scoped by their origin.
func (n *Node) scoped(array string) string {
	if n.cfg.Scope == "" {
		return array
	}
	return n.cfg.Scope + "\x00" + array
}

// FetchBlock resolves a block over the ring: replica cache first for hot
// arrays, then the owner walk — own table for self-owned keys, forwarded
// PeerGet otherwise. ok=false means no live peer holds the block and the
// caller should fall back to its normal load path. The returned slice is
// shared and must be treated as immutable.
func (n *Node) FetchBlock(array string, block int) ([]byte, bool) {
	if n.isClosed() {
		return nil, false
	}
	hot := n.cfg.Hot != nil && n.cfg.Hot(array)
	array = n.scoped(array)
	want := n.epochOf(array, block)
	if hot {
		data, ok, stale := n.replicas.Get(array, block, want)
		if ok {
			n.replicaHits.Add(1)
			n.metrics.replicaHits.Inc()
			return data, true
		}
		if stale {
			n.replicaStale.Add(1)
			n.metrics.replicaStale.Inc()
			n.syncStorageGauges()
		}
	}
	ring := n.currentRing()
	if ring == nil || len(ring.Members()) == 0 {
		return nil, false
	}
	key := BlockKey(array, block)
	for _, id := range ring.Owners(key, fetchCandidates) {
		if id == n.cfg.Self.ID {
			data, epoch, ok := n.table.Get(array, block)
			if ok && (want == 0 || epoch >= want) {
				return data, true
			}
			continue
		}
		cl, err := n.client(id)
		if err != nil {
			if err != ErrLegacyPeer && err != ErrNotMember && err != ErrClosed {
				n.maybeDead(id)
			}
			continue
		}
		data, epoch, held, err := cl.PeerGet(array, block)
		if err != nil {
			n.maybeDead(id)
			continue
		}
		n.markSeen(id)
		if !held || (want != 0 && epoch < want) {
			continue
		}
		n.forwardedReads.Add(1)
		n.forwardedBytes.Add(int64(len(data)))
		n.metrics.forwardedReads.Inc()
		n.metrics.forwardedBytes.Add(int64(len(data)))
		n.noteEpoch(array, block, epoch)
		if hot {
			n.replicas.Put(array, block, epoch, data)
			n.replicaFills.Add(1)
			n.metrics.replicaFills.Inc()
			n.syncStorageGauges()
		}
		return data, true
	}
	n.forwardedReadMisses.Add(1)
	n.metrics.forwardedReadMiss.Inc()
	return nil, false
}

// PushBlock places a written block on its ring owners at a fresh epoch.
// The local replica (if any) is invalidated first — this is the write-
// back invalidation path. The return value reports durability: true only
// when DurableCopies distinct *remote* peers acknowledged the bytes, in
// which case the block survives any single peer death and the caller may
// skip its local disk spill. Node does not retain data; it copies what it
// keeps.
func (n *Node) PushBlock(array string, block int, data []byte) bool {
	if n.isClosed() {
		return false
	}
	array = n.scoped(array)
	epoch := n.bumpEpoch(array, block)
	n.replicas.Invalidate(array, block)
	ring := n.currentRing()
	if ring == nil || len(ring.Members()) == 0 {
		return false
	}
	n.pushes.Add(1)
	n.pushBytes.Add(int64(len(data)))
	n.metrics.pushes.Inc()
	n.metrics.pushBytes.Add(int64(len(data)))
	remoteAcks := 0
	attempted := 0
	// Walk one owner past ReplicateCopies so the self slot does not eat a
	// replica: the target is ReplicateCopies *remote* copies, with the self
	// copy as a bonus read server when self is among the owners.
	for _, id := range ring.Owners(BlockKey(array, block), ReplicateCopies+1) {
		if id == n.cfg.Self.ID {
			// The self copy serves other peers' forwarded reads but never
			// counts toward durability (it dies with this process), so it
			// is not pinned — LRU pressure may shed it.
			n.table.Put(array, block, epoch, append([]byte(nil), data...), false)
			continue
		}
		if attempted >= ReplicateCopies {
			break
		}
		attempted++
		cl, err := n.client(id)
		if err != nil {
			if err != ErrLegacyPeer && err != ErrNotMember && err != ErrClosed {
				n.maybeDead(id)
			}
			continue
		}
		ok, err := cl.PeerPut(array, block, epoch, data, true)
		if err != nil {
			n.maybeDead(id)
			continue
		}
		n.markSeen(id)
		if ok {
			remoteAcks++
			n.pushAcks.Add(1)
			n.metrics.pushAcks.Inc()
		}
	}
	n.syncStorageGauges()
	return remoteAcks >= DurableCopies
}

// InvalidateArray drops every trace of an array: local table and replica
// entries synchronously, remote peers' tables via a delete fan-out that
// is kicked immediately and retried from the probe loop until every live
// member acks. Per-block epochs fold into the array floor so a recreated
// array starts above them; until a straggling peer's ack lands, this
// node's reads demand epochs above the floor (epochOf), so the straggler
// can never serve old-incarnation bytes back to us.
func (n *Node) InvalidateArray(array string) {
	if n.isClosed() {
		return
	}
	array = n.scoped(array)
	n.foldEpochs(array)
	n.table.DeleteArray(array)
	n.replicas.InvalidateArray(array)
	n.syncStorageGauges()
	// Record the members owing an ack, then kick one immediate round. The
	// closed-check and wg.Add are one critical section with Close's setting
	// of closed, so Add can never race the final Wait.
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	owing := make(map[string]bool, len(n.members))
	for id := range n.members {
		if id != n.cfg.Self.ID {
			owing[id] = true
		}
	}
	if len(owing) == 0 {
		n.mu.Unlock()
		return
	}
	n.pendingDel[array] = owing
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		n.flushDeletes()
	}()
}

// flushDeletes retries every pending delete against its still-owing live
// members, clearing acked entries. Called from the probe loop each tick
// and once immediately per InvalidateArray. Members that are currently
// dead are skipped but stay owed — if they gossip back in with their
// table intact, the next tick reaches them; a restarted peer acks the
// no-op delete and clears itself.
func (n *Node) flushDeletes() {
	type target struct{ array, id string }
	n.mu.Lock()
	var work []target
	for array, owing := range n.pendingDel {
		for id := range owing {
			if _, live := n.members[id]; live {
				work = append(work, target{array, id})
			}
		}
	}
	n.mu.Unlock()
	for _, w := range work {
		cl, err := n.client(w.id)
		if err != nil {
			continue
		}
		if err := cl.PeerDelete(w.array); err != nil {
			continue // transport or handler failure: stays owed, retried next tick
		}
		n.markSeen(w.id)
		n.mu.Lock()
		if owing, ok := n.pendingDel[w.array]; ok {
			delete(owing, w.id)
			if len(owing) == 0 {
				delete(n.pendingDel, w.array)
			}
		}
		n.mu.Unlock()
	}
}

// ---- remote.PeerHandler (the server-side verbs) ----

// PeerPut stores a block pushed by a peer.
func (n *Node) PeerPut(array string, block int, epoch uint64, data []byte, durable bool) (bool, error) {
	if n.isClosed() {
		return false, ErrClosed
	}
	ok := n.table.Put(array, block, epoch, data, durable)
	if ok {
		n.servedPuts.Add(1)
		n.metrics.servedPuts.Inc()
	}
	n.syncStorageGauges()
	return ok, nil
}

// PeerGet serves a block from the local table.
func (n *Node) PeerGet(array string, block int) ([]byte, uint64, bool, error) {
	if n.isClosed() {
		return nil, 0, false, ErrClosed
	}
	data, epoch, ok := n.table.Get(array, block)
	if !ok {
		return nil, 0, false, nil
	}
	n.servedGets.Add(1)
	n.metrics.servedGets.Inc()
	return data, epoch, true, nil
}

// PeerDelete drops an array's blocks and replicas on behalf of the
// deleting peer.
func (n *Node) PeerDelete(array string) error {
	if n.isClosed() {
		return ErrClosed
	}
	n.foldEpochs(array)
	n.table.DeleteArray(array)
	n.replicas.InvalidateArray(array)
	n.syncStorageGauges()
	return nil
}

// PeerViewExchange merges the caller's view and returns ours — the
// server half of a gossip round.
func (n *Node) PeerViewExchange(v remote.PeerView) remote.PeerView {
	n.mergeView(v)
	n.viewExchanges.Add(1)
	n.metrics.viewExchanges.Inc()
	return n.wireView()
}
