// Package perfmodel regenerates the paper's testbed experiments (Tables III
// and IV, Figures 6 and 7) from first principles: the device parameters of
// internal/devices, the per-node workload of Section V (a 50M-row block of
// 12.8 billion nonzeros split into 25 four-gigabyte sub-matrices), and the
// two scheduling policies.
//
// The model is deliberately transfer-centric, following the paper's own
// argument: "in an out-of-core computation, the main factor that determines
// the overall performance will be how fast sub-matrices can be transferred
// from the file system to the local memory of compute nodes". Computation
// and communication are modeled and verified to hide behind I/O exactly
// where the paper says they do; what remains visible is (a) the per-node
// read bandwidth with its client/aggregate ceilings, (b) the shared-GPFS
// bandwidth variability that turns global barriers into straggler waits,
// and (c) each policy's synchronization structure.
package perfmodel

import (
	"fmt"
	"math"
	"math/rand"

	"dooc/internal/devices"
)

// Policy selects the synchronization structure of a run.
type Policy int

const (
	// PolicySimple is Table III's schedule: all local SpMVs, a global
	// barrier, a gather of every intermediate sub-vector to the row heads,
	// another barrier, then the next iteration.
	PolicySimple Policy = iota
	// PolicyInterleaved is Table IV's schedule: no post-SpMV barrier,
	// intermediate results pre-reduced locally before a single aggregated
	// send, and next-iteration loads allowed to run ahead up to the
	// prefetch window.
	PolicyInterleaved
)

func (p Policy) String() string {
	switch p {
	case PolicySimple:
		return "simple"
	case PolicyInterleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config sizes one experiment.
type Config struct {
	// Testbed supplies device parameters (defaults to CarverSSD).
	Testbed devices.Testbed
	// Nodes is the compute-node count (a perfect square in the paper).
	Nodes int
	// Iters is the number of SpMV iterations (the paper uses 4).
	Iters int
	// SubsPerBlock is the number of sub-matrices per node block (25).
	SubsPerBlock int
	// SubBytes is one sub-matrix's size (4 GB).
	SubBytes float64
	// NNZPerBlock is the nonzero count of one node block (12.8e9).
	NNZPerBlock float64
	// DimPerBlock is the row count of one node block (50e6).
	DimPerBlock float64
	// BlocksPerNode is how many node blocks each node processes (1; the
	// Fig. 7 "star" rerun gives 9 nodes 4 blocks each).
	BlocksPerNode int
	// CacheableSubs is how many sub-matrices survive in memory across
	// iterations (back-and-forth reuse; ~1 with 24 GB nodes, 4 GB blocks,
	// and a multi-block prefetch window).
	CacheableSubs int
	// AheadSubs is the prefetch lead (in sub-matrix loads) the interleaved
	// policy may run into the next iteration while stragglers finish.
	AheadSubs float64
	// Policy selects the schedule.
	Policy Policy
	// Seed drives the bandwidth-dispersion draws.
	Seed int64
}

// Experiment returns the paper's configuration for a node count and policy.
func Experiment(nodes int, policy Policy) Config {
	return Config{
		Testbed:       devices.CarverSSD(),
		Nodes:         nodes,
		Iters:         4,
		SubsPerBlock:  25,
		SubBytes:      4.0e9,
		NNZPerBlock:   12.8e9,
		DimPerBlock:   50e6,
		BlocksPerNode: 1,
		CacheableSubs: 1,
		AheadSubs:     10,
		Policy:        policy,
		Seed:          42,
	}
}

// StarExperiment is the Fig. 7 star: the 36-node (3.5 TB) problem rerun on
// 9 nodes, where the per-node bandwidth ratio is best.
func StarExperiment() Config {
	cfg := Experiment(9, PolicyInterleaved)
	cfg.BlocksPerNode = 4
	return cfg
}

// Row is one regenerated table row.
type Row struct {
	Nodes int
	// DimMillions, NNZBillions, SizeTB describe the matrix as the paper's
	// tables do.
	DimMillions float64
	NNZBillions float64
	SizeTB      float64
	// TimeSeconds is the total time of Iters iterations.
	TimeSeconds float64
	// GFlops is the sustained rate 2*nnz*iters/time.
	GFlops float64
	// ReadBWGBs is the file-system read bandwidth seen by the I/O
	// components (total bytes / mean per-node I/O busy time).
	ReadBWGBs float64
	// NonOverlapped is the fraction of runtime not spent reading.
	NonOverlapped float64
	// CPUHoursPerIter is nodes*cores*time/iters.
	CPUHoursPerIter float64
	// OptimalIOSeconds is the lower bound: total bytes at the 20 GB/s peak
	// (the Fig. 6 denominator).
	OptimalIOSeconds float64
}

// RelativeToOptimal is the Fig. 6 ratio.
func (r Row) RelativeToOptimal() float64 { return r.TimeSeconds / r.OptimalIOSeconds }

// Run evaluates the model.
func Run(cfg Config) Row {
	if cfg.Nodes <= 0 || cfg.Iters <= 0 || cfg.SubsPerBlock <= 0 || cfg.BlocksPerNode <= 0 {
		panic(fmt.Sprintf("perfmodel: invalid config %+v", cfg))
	}
	tb := cfg.Testbed
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Nodes
	base := tb.NodeReadBytes(n)

	subs := cfg.SubsPerBlock * cfg.BlocksPerNode
	bytesIter1 := float64(subs) * cfg.SubBytes
	bytesLater := float64(subs-cfg.CacheableSubs) * cfg.SubBytes

	// Per-iteration compute, to verify it hides behind I/O.
	computeSec := 2 * cfg.NNZPerBlock * float64(cfg.BlocksPerNode) / tb.NodeSpMVFlops

	// Communication structure. Row heads sit on a sqrt(n) x sqrt(n) node
	// grid; each node block holds a 5x5 sub-matrix arrangement whose
	// intermediate sub-vectors total 5 vector-parts of data.
	gridRows := int(math.Round(math.Sqrt(float64(n))))
	if gridRows < 1 {
		gridRows = 1
	}
	vecPartBytes := 8 * cfg.DimPerBlock * float64(cfg.BlocksPerNode)
	var commSec float64
	switch cfg.Policy {
	case PolicySimple:
		// Every node ships all (unreduced) intermediates to its row head:
		// 5 vector-parts per node, serialized into the head's NIC, plus the
		// head's local reduction at memory speed.
		inbound := float64(gridRows-1) * 5 * vecPartBytes
		commSec = inbound/tb.IBLinkBytes + 5*vecPartBytes/20e9
	case PolicyInterleaved:
		// Local pre-reduction first: one vector-part leaves each node.
		inbound := float64(gridRows-1) * vecPartBytes
		commSec = inbound / tb.IBLinkBytes
	}

	// Load times with the shared-GPFS dispersion: each (node, iteration)
	// draws a uniform multiplier on its load phase. The dispersion is a
	// contention effect, so it vanishes at one node (no sharing) and
	// averages out as phases grow longer (the star run's 100-sub-matrix
	// iterations see half the relative spread of the 25-sub-matrix ones).
	a := tb.BWDispersion * (1 - 1/float64(n)) / math.Sqrt(float64(subs)/25)
	loadTime := make([][]float64, cfg.Iters)
	for t := range loadTime {
		loadTime[t] = make([]float64, n)
		bytes := bytesLater
		if t == 0 {
			bytes = bytesIter1
		}
		for i := 0; i < n; i++ {
			m := 1 + a*(2*rng.Float64()-1)
			lt := bytes / base * m
			if computeSec > lt {
				// Compute-bound corner (never hit with paper parameters,
				// but the model stays honest if someone cranks flops up).
				lt = computeSec
			}
			loadTime[t][i] = lt
		}
	}

	var total float64
	switch cfg.Policy {
	case PolicySimple:
		// Barrier per phase: each iteration costs the slowest node's load
		// phase plus the non-overlapped communication.
		for t := 0; t < cfg.Iters; t++ {
			slowest := 0.0
			for _, lt := range loadTime[t] {
				if lt > slowest {
					slowest = lt
				}
			}
			total += slowest + commSec
		}
	case PolicyInterleaved:
		// No intra-iteration barrier. Nodes may prefetch AheadSubs loads of
		// the next iteration while stragglers finish; the inter-iteration
		// synchronization (the Lanczos reorthogonalization point) then
		// costs only the unabsorbed part of the straggler wait.
		ahead := cfg.AheadSubs * cfg.SubBytes / base
		loadDone := make([]float64, n) // per-node completion of its loads
		sync := 0.0
		for t := 0; t < cfg.Iters; t++ {
			slowest := 0.0
			for i := 0; i < n; i++ {
				start := loadDone[i]
				if s := sync - ahead; s > start {
					start = s
				}
				loadDone[i] = start + loadTime[t][i]
				if loadDone[i] > slowest {
					slowest = loadDone[i]
				}
			}
			sync = slowest + commSec
		}
		total = sync
	}

	// I/O busy time per node.
	var busySum float64
	for t := range loadTime {
		for _, lt := range loadTime[t] {
			busySum += lt
		}
	}
	meanBusy := busySum / float64(n)

	totalBytes := (bytesIter1 + float64(cfg.Iters-1)*bytesLater) * float64(n)
	nnzTotal := cfg.NNZPerBlock * float64(cfg.BlocksPerNode) * float64(n)
	sizeTB := float64(subs) * cfg.SubBytes * float64(n) / 1e12

	return Row{
		Nodes:            n,
		DimMillions:      cfg.DimPerBlock * math.Sqrt(float64(n*cfg.BlocksPerNode)) / 1e6,
		NNZBillions:      nnzTotal / 1e9,
		SizeTB:           sizeTB,
		TimeSeconds:      total,
		GFlops:           2 * nnzTotal * float64(cfg.Iters) / total / 1e9,
		ReadBWGBs:        totalBytes / meanBusy / 1e9,
		NonOverlapped:    1 - meanBusy/total,
		CPUHoursPerIter:  float64(n*tb.CoresPerNode) * (total / float64(cfg.Iters)) / 3600,
		OptimalIOSeconds: totalBytes / tb.GPFSPeakBytes,
	}
}

// NodeCounts are the node counts of Tables III/IV.
var NodeCounts = []int{1, 4, 9, 16, 25, 36}

// Table3 regenerates Table III (simple policy).
func Table3() []Row {
	rows := make([]Row, 0, len(NodeCounts))
	for _, n := range NodeCounts {
		rows = append(rows, Run(Experiment(n, PolicySimple)))
	}
	return rows
}

// Table4 regenerates Table IV (interleaved policy with local aggregation).
func Table4() []Row {
	rows := make([]Row, 0, len(NodeCounts))
	for _, n := range NodeCounts {
		rows = append(rows, Run(Experiment(n, PolicyInterleaved)))
	}
	return rows
}

// Star regenerates the Fig. 7 star run.
func Star() Row { return Run(StarExperiment()) }
