package perfmodel

// PubRow is one published row of Table III or IV, kept verbatim for
// side-by-side comparison in benches and EXPERIMENTS.md.
type PubRow struct {
	Nodes           int
	DimMillions     float64
	NNZBillions     float64
	SizeTB          float64
	TimeSeconds     float64
	GFlops          float64
	ReadBWGBs       float64
	NonOverlapped   float64
	CPUHoursPerIter float64 // Table IV only (zero for Table III rows)
}

// PublishedTable3 is the paper's Table III (simple scheduling policy).
var PublishedTable3 = []PubRow{
	{Nodes: 1, DimMillions: 50, NNZBillions: 12.8, SizeTB: 0.10, TimeSeconds: 290, GFlops: 0.35, ReadBWGBs: 1.5, NonOverlapped: 0.13},
	{Nodes: 4, DimMillions: 100, NNZBillions: 51.2, SizeTB: 0.39, TimeSeconds: 330, GFlops: 1.24, ReadBWGBs: 5.7, NonOverlapped: 0.19},
	{Nodes: 9, DimMillions: 150, NNZBillions: 115, SizeTB: 0.88, TimeSeconds: 384, GFlops: 2.40, ReadBWGBs: 12.8, NonOverlapped: 0.30},
	{Nodes: 16, DimMillions: 200, NNZBillions: 205, SizeTB: 1.56, TimeSeconds: 509, GFlops: 3.22, ReadBWGBs: 18.7, NonOverlapped: 0.36},
	{Nodes: 25, DimMillions: 250, NNZBillions: 320, SizeTB: 2.43, TimeSeconds: 791, GFlops: 3.23, ReadBWGBs: 17.9, NonOverlapped: 0.32},
	{Nodes: 36, DimMillions: 300, NNZBillions: 460, SizeTB: 3.50, TimeSeconds: 1172, GFlops: 3.15, ReadBWGBs: 18.3, NonOverlapped: 0.36},
}

// PublishedTable4 is the paper's Table IV (intra-iteration interleaving and
// per-node aggregation of results).
var PublishedTable4 = []PubRow{
	{Nodes: 1, DimMillions: 50, NNZBillions: 12.8, SizeTB: 0.10, TimeSeconds: 293, GFlops: 0.35, ReadBWGBs: 1.4, NonOverlapped: 0.00, CPUHoursPerIter: 0.16},
	{Nodes: 4, DimMillions: 100, NNZBillions: 51.2, SizeTB: 0.39, TimeSeconds: 335, GFlops: 1.22, ReadBWGBs: 5.8, NonOverlapped: 0.13, CPUHoursPerIter: 0.74},
	{Nodes: 9, DimMillions: 150, NNZBillions: 115, SizeTB: 0.88, TimeSeconds: 336, GFlops: 2.74, ReadBWGBs: 12.7, NonOverlapped: 0.11, CPUHoursPerIter: 1.68},
	{Nodes: 16, DimMillions: 200, NNZBillions: 205, SizeTB: 1.56, TimeSeconds: 432, GFlops: 3.79, ReadBWGBs: 18.2, NonOverlapped: 0.14, CPUHoursPerIter: 3.84},
	{Nodes: 25, DimMillions: 250, NNZBillions: 320, SizeTB: 2.43, TimeSeconds: 644, GFlops: 3.97, ReadBWGBs: 17.8, NonOverlapped: 0.08, CPUHoursPerIter: 8.95},
	{Nodes: 36, DimMillions: 300, NNZBillions: 460, SizeTB: 3.50, TimeSeconds: 910, GFlops: 4.05, ReadBWGBs: 18.5, NonOverlapped: 0.10, CPUHoursPerIter: 18.20},
}

// PublishedStar is the Fig. 7 star run: the 3.50 TB matrix on 9 nodes took
// 1318 s at 12.5 GB/s sustained, costing 6.59 CPU-hours per iteration —
// 32% below the comparable Hopper run (test_4560 at 9.70).
var PublishedStar = PubRow{
	Nodes: 9, SizeTB: 3.50, TimeSeconds: 1318, ReadBWGBs: 12.5, CPUHoursPerIter: 6.59,
}
