package perfmodel

import (
	"math"
	"testing"

	"dooc/internal/devices"
)

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

// TestTable3MatchesPublishedShape: every regenerated Table III row lands
// within the reproduction tolerances (time/GFlops/read-BW within 15%,
// non-overlap within 15 points except the 1-node row, see EXPERIMENTS.md).
func TestTable3MatchesPublishedShape(t *testing.T) {
	rows := Table3()
	for i, r := range rows {
		p := PublishedTable3[i]
		if r.Nodes != p.Nodes {
			t.Fatalf("row %d: nodes %d vs %d", i, r.Nodes, p.Nodes)
		}
		if relErr(r.TimeSeconds, p.TimeSeconds) > 0.15 {
			t.Errorf("N=%d: time %.0f vs published %.0f", r.Nodes, r.TimeSeconds, p.TimeSeconds)
		}
		if relErr(r.GFlops, p.GFlops) > 0.15 {
			t.Errorf("N=%d: GFlops %.2f vs published %.2f", r.Nodes, r.GFlops, p.GFlops)
		}
		if relErr(r.ReadBWGBs, p.ReadBWGBs) > 0.12 {
			t.Errorf("N=%d: read BW %.1f vs published %.1f", r.Nodes, r.ReadBWGBs, p.ReadBWGBs)
		}
		if r.Nodes > 1 && math.Abs(r.NonOverlapped-p.NonOverlapped) > 0.15 {
			t.Errorf("N=%d: non-overlap %.0f%% vs published %.0f%%", r.Nodes, 100*r.NonOverlapped, 100*p.NonOverlapped)
		}
		if relErr(r.SizeTB, p.SizeTB) > 0.05 {
			t.Errorf("N=%d: size %.2f vs %.2f TB", r.Nodes, r.SizeTB, p.SizeTB)
		}
	}
}

func TestTable4MatchesPublishedShape(t *testing.T) {
	rows := Table4()
	for i, r := range rows {
		p := PublishedTable4[i]
		if relErr(r.TimeSeconds, p.TimeSeconds) > 0.15 {
			t.Errorf("N=%d: time %.0f vs published %.0f", r.Nodes, r.TimeSeconds, p.TimeSeconds)
		}
		if relErr(r.GFlops, p.GFlops) > 0.15 {
			t.Errorf("N=%d: GFlops %.2f vs published %.2f", r.Nodes, r.GFlops, p.GFlops)
		}
		if relErr(r.CPUHoursPerIter, p.CPUHoursPerIter) > 0.15 {
			t.Errorf("N=%d: CPU-hours %.2f vs published %.2f", r.Nodes, r.CPUHoursPerIter, p.CPUHoursPerIter)
		}
		if math.Abs(r.NonOverlapped-p.NonOverlapped) > 0.17 {
			t.Errorf("N=%d: non-overlap %.0f%% vs published %.0f%%", r.Nodes, 100*r.NonOverlapped, 100*p.NonOverlapped)
		}
	}
}

// TestScalingShape checks the paper's headline scaling claims directly:
// near-linear GFlop/s growth from 1 to 9 nodes, then a plateau.
func TestScalingShape(t *testing.T) {
	rows := Table4()
	byNodes := map[int]Row{}
	for _, r := range rows {
		byNodes[r.Nodes] = r
	}
	// Near-linear to 9 nodes: efficiency >= 75%.
	g1, g9 := byNodes[1].GFlops, byNodes[9].GFlops
	if eff := g9 / (9 * g1); eff < 0.75 {
		t.Errorf("9-node efficiency %.2f, want near-linear", eff)
	}
	// Plateau: 16 -> 36 nodes gains < 15% despite 2.25x nodes.
	g16, g36 := byNodes[16].GFlops, byNodes[36].GFlops
	if g36/g16 > 1.15 {
		t.Errorf("no plateau: %.2f -> %.2f GFlop/s", g16, g36)
	}
	// Plateau sits around 3.5-4.2 GFlop/s (paper: 3.79-4.05).
	if g36 < 3.2 || g36 > 4.4 {
		t.Errorf("plateau at %.2f GFlop/s", g36)
	}
	// Read bandwidth saturates near 18.5 GB/s (~92% of the 20 GB/s peak).
	if bw := byNodes[36].ReadBWGBs; bw < 17.5 || bw > 19 {
		t.Errorf("saturated read BW %.1f", bw)
	}
}

// TestInterleavedBeatsSimple: the paper reports policy B 17-28% faster at
// >= 9 nodes; the model must reproduce a clear same-direction improvement,
// and must NOT show an improvement at 1 node (the paper saw a slight
// degradation there).
func TestInterleavedBeatsSimple(t *testing.T) {
	t3, t4 := Table3(), Table4()
	for i := range t3 {
		n := t3[i].Nodes
		speedup := t3[i].TimeSeconds / t4[i].TimeSeconds
		if n >= 9 && speedup < 1.06 {
			t.Errorf("N=%d: interleaved speedup %.2f, want clear improvement", n, speedup)
		}
		if n == 1 && speedup > 1.05 {
			t.Errorf("N=1: interleaved should not help much, got %.2f", speedup)
		}
		// Non-overlapped time must drop under interleaving at scale.
		if n >= 9 && t4[i].NonOverlapped >= t3[i].NonOverlapped {
			t.Errorf("N=%d: interleaving did not reduce non-overlap (%.2f vs %.2f)",
				n, t4[i].NonOverlapped, t3[i].NonOverlapped)
		}
	}
}

// TestFig6Shape: time relative to the 20 GB/s-peak optimum is hugely
// super-optimal at small node counts (the machine cannot be saturated by
// few clients) and approaches ~1.2-1.6 at scale; policy B is closer to
// optimal than policy A everywhere at scale.
func TestFig6Shape(t *testing.T) {
	t3, t4 := Table3(), Table4()
	for i := range t3 {
		ra, rb := t3[i].RelativeToOptimal(), t4[i].RelativeToOptimal()
		if ra < 1 || rb < 1 {
			t.Fatalf("N=%d: sub-optimal ratio a=%.2f b=%.2f (impossible)", t3[i].Nodes, ra, rb)
		}
		if t3[i].Nodes >= 9 && rb >= ra {
			t.Errorf("N=%d: policy B ratio %.2f not better than A %.2f", t3[i].Nodes, rb, ra)
		}
	}
	if r := t4[0].RelativeToOptimal(); r < 10 {
		t.Errorf("1-node ratio %.1f, want >> 1 (one client cannot saturate GPFS)", r)
	}
	if r := t4[5].RelativeToOptimal(); r > 1.8 {
		t.Errorf("36-node ratio %.2f, want near-optimal", r)
	}
}

// TestFig7CPUHourComparison is the paper's bottom line: at 36 nodes the
// out-of-core run costs about 2x the comparable Hopper run, while the
// 9-node star rerun of the same 3.5 TB matrix costs ~32% LESS.
func TestFig7CPUHourComparison(t *testing.T) {
	t4 := Table4()
	hopper4560 := 9.70 // published CPU-hours/iter for test_4560
	var n36 Row
	for _, r := range t4 {
		if r.Nodes == 36 {
			n36 = r
		}
	}
	ratio36 := n36.CPUHoursPerIter / hopper4560
	if ratio36 < 1.5 || ratio36 > 2.6 {
		t.Errorf("36-node cost ratio vs Hopper = %.2f, paper says ~2x", ratio36)
	}
	star := Star()
	if relErr(star.TimeSeconds, PublishedStar.TimeSeconds) > 0.15 {
		t.Errorf("star time %.0f vs published %.0f", star.TimeSeconds, PublishedStar.TimeSeconds)
	}
	saving := 1 - star.CPUHoursPerIter/hopper4560
	if saving < 0.20 || saving > 0.45 {
		t.Errorf("star saving vs Hopper = %.0f%%, paper says 32%%", 100*saving)
	}
	if star.SizeTB != n36.SizeTB {
		t.Errorf("star processes %.2f TB, 36-node run %.2f TB — must match", star.SizeTB, n36.SizeTB)
	}
}

// TestModelDeterminism: same seed, same rows.
func TestModelDeterminism(t *testing.T) {
	a := Run(Experiment(16, PolicyInterleaved))
	b := Run(Experiment(16, PolicyInterleaved))
	if a != b {
		t.Fatal("model is not deterministic")
	}
	c := Experiment(16, PolicyInterleaved)
	c.Seed = 7
	if Run(c) == a {
		t.Fatal("seed has no effect")
	}
}

// TestComputeStaysHidden: with paper parameters, per-iteration compute is
// far below per-iteration I/O on every node count (the premise of the
// transfer-centric model).
func TestComputeStaysHidden(t *testing.T) {
	tb := devices.CarverSSD()
	for _, n := range NodeCounts {
		compute := 2 * 12.8e9 / tb.NodeSpMVFlops
		io := 24 * 4.0e9 / tb.NodeReadBytes(n)
		if compute > io/2 {
			t.Errorf("N=%d: compute %.0fs vs io %.0fs — not hidden", n, compute, io)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid config")
		}
	}()
	Run(Config{})
}
