package perfmodel

import (
	"fmt"
	"math"
	"testing"

	"dooc/internal/devices"
	"dooc/internal/simclock"
)

// TestNodeRateMatchesFlowSimulation cross-validates the model's central
// bandwidth assumption — per-node rate = min(client ceiling, aggregate/N) —
// against the max-min fair-share flow simulator: N symmetric flows, each
// traversing its private GPFS-client pipe and the shared aggregate, must
// finish exactly when the analytic rate predicts.
func TestNodeRateMatchesFlowSimulation(t *testing.T) {
	tb := devices.CarverSSD()
	for _, n := range NodeCounts {
		clock := simclock.New()
		eng := simclock.NewEngine(clock)
		agg := eng.NewResource("gpfs", tb.AggregateReadBytes())
		bytes := 25 * 4.0e9
		var last simclock.Time
		for i := 0; i < n; i++ {
			client := eng.NewResource(fmt.Sprintf("client%d", i), tb.ClientReadBytes)
			eng.StartFlow(fmt.Sprintf("load%d", i), bytes,
				[]*simclock.Resource{client, agg},
				func(at simclock.Time) {
					if at > last {
						last = at
					}
				})
		}
		clock.Run()
		want := bytes / tb.NodeReadBytes(n)
		if math.Abs(float64(last)-want) > 1e-6*want {
			t.Errorf("N=%d: flow simulation finished at %.2fs, analytic model says %.2fs", n, float64(last), want)
		}
	}
}

// TestAsymmetricLoadStillCappedByAggregate: when one node reads 4x the data
// (the star run's layout), max-min sharing lets it use leftover aggregate
// bandwidth, but never exceed its client ceiling — confirming the star-run
// model's use of the client ceiling at 9 nodes.
func TestAsymmetricLoadStillCappedByAggregate(t *testing.T) {
	tb := devices.CarverSSD()
	clock := simclock.New()
	eng := simclock.NewEngine(clock)
	agg := eng.NewResource("gpfs", tb.AggregateReadBytes())
	done := make([]simclock.Time, 9)
	for i := 0; i < 9; i++ {
		client := eng.NewResource(fmt.Sprintf("client%d", i), tb.ClientReadBytes)
		bytes := 100 * 4.0e9 // every node reads a 4-block share
		i := i
		eng.StartFlow("load", bytes, []*simclock.Resource{client, agg}, func(at simclock.Time) {
			done[i] = at
		})
	}
	clock.Run()
	// 9 clients * 1.42 GB/s = 12.78 GB/s < 18.5 aggregate: client-bound.
	want := 100 * 4.0e9 / tb.ClientReadBytes
	for i, d := range done {
		if math.Abs(float64(d)-want) > 1e-6*want {
			t.Errorf("node %d finished at %.1fs, want %.1fs (client-bound)", i, float64(d), want)
		}
	}
}
