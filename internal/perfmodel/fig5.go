package perfmodel

// Closed forms for the Fig. 5 load-count ablation: K sub-matrices per node,
// per-node memory holding a single sub-matrix at a time, `iters` SpMV
// iterations. These are the analytic predictions the scheduler simulator and
// the dooc_storage_block_loads_total counters reconcile against.

// RegularLoadsPerNode is the Fig. 5(a) FIFO traversal cost: every iteration
// visits the sub-matrices in the same order, so nothing survives in cache
// between iterations and all k are reloaded each time.
func RegularLoadsPerNode(k, iters int) int {
	if k <= 0 || iters <= 0 {
		return 0
	}
	return k * iters
}

// BackAndForthLoadsPerNode is the Fig. 5(b) reordered traversal cost: the
// first iteration loads all k sub-matrices, and every later iteration starts
// from the boundary sub-matrix the previous one ended on, reusing it and
// loading only the remaining k-1.
func BackAndForthLoadsPerNode(k, iters int) int {
	if k <= 0 || iters <= 0 {
		return 0
	}
	return k + (iters-1)*(k-1)
}
