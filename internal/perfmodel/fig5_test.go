package perfmodel

import (
	"testing"

	"dooc/internal/dag"
	"dooc/internal/scheduler"
	"dooc/internal/spmv"
)

// simulateLoads list-schedules the K-node SpMV DAG with single-sub-matrix
// caches and returns per-node load counts.
func simulateLoads(t *testing.T, k, iters int, reorder bool) []int {
	t.Helper()
	cfg := spmv.ProgramConfig{K: k, Iters: iters, SubBytes: 1000, VecBytes: 8, FlopsPerMult: 1}
	g, err := spmv.Graph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := scheduler.Simulate(g, spmv.RowAssignment(cfg), k, cfg.SubBytes, reorder, scheduler.Costs{
		LoadSecondsPerByte: 0.003,
		RunSeconds:         func(*dag.Task) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan.LoadsPerNode
}

// TestClosedFormsMatchSimulator reconciles the analytic Fig. 5 load counts
// against the scheduler's list simulation across problem shapes: the model's
// prediction must equal the simulated per-node load count exactly, for both
// the FIFO and the back-and-forth policy.
func TestClosedFormsMatchSimulator(t *testing.T) {
	for k := 2; k <= 4; k++ {
		for iters := 1; iters <= 4; iters++ {
			regular := simulateLoads(t, k, iters, false)
			baf := simulateLoads(t, k, iters, true)
			wantReg := RegularLoadsPerNode(k, iters)
			wantBaf := BackAndForthLoadsPerNode(k, iters)
			for n := 0; n < k; n++ {
				if regular[n] != wantReg {
					t.Errorf("K=%d iters=%d node %d: FIFO simulated %d loads, closed form says %d",
						k, iters, n, regular[n], wantReg)
				}
				if baf[n] != wantBaf {
					t.Errorf("K=%d iters=%d node %d: back-and-forth simulated %d loads, closed form says %d",
						k, iters, n, baf[n], wantBaf)
				}
			}
		}
	}
}

// TestFig5HeadlineNumbers pins the paper's Fig. 5 scenario (K=3, 2
// iterations): 18 total loads under FIFO vs. 15 with reordering — the three
// boundary reuses that motivate the back-and-forth traversal.
func TestFig5HeadlineNumbers(t *testing.T) {
	const k, iters = 3, 2
	if got := k * RegularLoadsPerNode(k, iters); got != 18 {
		t.Errorf("regular total = %d, want 18", got)
	}
	if got := k * BackAndForthLoadsPerNode(k, iters); got != 15 {
		t.Errorf("back-and-forth total = %d, want 15", got)
	}
	var regTotal, bafTotal int
	for _, l := range simulateLoads(t, k, iters, false) {
		regTotal += l
	}
	for _, l := range simulateLoads(t, k, iters, true) {
		bafTotal += l
	}
	if regTotal != 18 || bafTotal != 15 {
		t.Errorf("simulator totals regular=%d back-and-forth=%d, want 18 and 15", regTotal, bafTotal)
	}
}
