package solvers

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dooc/internal/lanczos"
	"dooc/internal/sparse"
)

// spdMatrix builds a random symmetric positive-definite sparse matrix:
// the symmetric gap matrix plus a diagonal shift dominating its row sums.
func spdMatrix(t testing.TB, n int, seed int64) *sparse.CSR {
	t.Helper()
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: n, Cols: n, D: 3, Seed: seed, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	// Shift the diagonal to guarantee strict diagonal dominance.
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		row := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.ColIdx[k]) != i {
				row += math.Abs(m.Val[k])
			}
			ts = append(ts, sparse.Triplet{Row: i, Col: int(m.ColIdx[k]), Val: m.Val[k]})
		}
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: row + 1})
	}
	spd, err := sparse.FromTriplets(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	return spd
}

func residualNorm(m *sparse.CSR, x, b []float64) float64 {
	ax := make([]float64, len(b))
	sparse.MulVec(m, x, ax)
	worst := 0.0
	for i := range b {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestCGSolvesSPDSystem(t *testing.T) {
	n := 80
	m := spdMatrix(t, n, 1)
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, st, err := CG(lanczos.MatrixOperator{M: m}, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("CG did not converge: %+v", st)
	}
	if r := residualNorm(m, x, b); r > 1e-7 {
		t.Fatalf("residual %v", r)
	}
	if st.SpMVs != st.Iterations+0 && st.SpMVs != st.Iterations {
		t.Errorf("SpMVs %d vs iterations %d", st.SpMVs, st.Iterations)
	}
}

func TestCGWithWarmStart(t *testing.T) {
	n := 40
	m := spdMatrix(t, n, 3)
	b := make([]float64, n)
	b[0] = 1
	// Solve once, then restart from the solution: should converge instantly.
	x, _, err := CG(lanczos.MatrixOperator{M: m}, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := CG(lanczos.MatrixOperator{M: m}, b, CGOptions{X0: x})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 2 {
		t.Fatalf("warm start took %d iterations", st.Iterations)
	}
}

func TestCGRejectsNonSPD(t *testing.T) {
	// A negative-definite matrix must trigger the breakdown guard.
	var ts []sparse.Triplet
	for i := 0; i < 10; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: -1})
	}
	m, err := sparse.FromTriplets(10, 10, ts)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 10)
	b[0] = 1
	if _, _, err := CG(lanczos.MatrixOperator{M: m}, b, CGOptions{}); err == nil {
		t.Fatal("CG accepted a non-SPD operator")
	}
}

func TestCGValidation(t *testing.T) {
	m := spdMatrix(t, 8, 5)
	op := lanczos.MatrixOperator{M: m}
	if _, _, err := CG(op, make([]float64, 3), CGOptions{}); err == nil {
		t.Error("wrong b length accepted")
	}
	if _, _, err := CG(op, make([]float64, 8), CGOptions{X0: make([]float64, 2)}); err == nil {
		t.Error("wrong x0 length accepted")
	}
	// Zero RHS: trivially converged.
	x, st, err := CG(op, make([]float64, 8), CGOptions{})
	if err != nil || !st.Converged {
		t.Fatalf("zero RHS: %v %+v", err, st)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero RHS must give zero solution")
		}
	}
}

func TestJacobiSolvesDominantSystem(t *testing.T) {
	n := 60
	m := spdMatrix(t, n, 7)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = m.At(i, i)
	}
	rng := rand.New(rand.NewSource(8))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, st, err := Jacobi(lanczos.MatrixOperator{M: m}, b, JacobiOptions{Diag: diag})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("Jacobi did not converge: %+v", st)
	}
	if r := residualNorm(m, x, b); r > 1e-7 {
		t.Fatalf("residual %v", r)
	}
}

func TestJacobiValidation(t *testing.T) {
	m := spdMatrix(t, 6, 9)
	op := lanczos.MatrixOperator{M: m}
	if _, _, err := Jacobi(op, make([]float64, 6), JacobiOptions{Diag: make([]float64, 2)}); err == nil {
		t.Error("wrong diag length accepted")
	}
	if _, _, err := Jacobi(op, make([]float64, 6), JacobiOptions{Diag: make([]float64, 6)}); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestPowerFindsDominantEigenpair(t *testing.T) {
	n := 50
	m := spdMatrix(t, n, 11)
	lambda, v, st, err := Power(lanczos.MatrixOperator{M: m}, PowerOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("power method did not converge: %+v", st)
	}
	// Check A v ≈ λ v.
	av := make([]float64, n)
	sparse.MulVec(m, v, av)
	for i := range av {
		if math.Abs(av[i]-lambda*v[i]) > 1e-6*(1+math.Abs(lambda)) {
			t.Fatalf("not an eigenpair at %d: %v vs %v", i, av[i], lambda*v[i])
		}
	}
	// Cross-check against the full spectrum.
	want, err := lanczos.JacobiEigen(m.Dense(), n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-want[n-1]) > 1e-6*(1+math.Abs(want[n-1])) {
		t.Fatalf("dominant eigenvalue %v, dense says %v", lambda, want[n-1])
	}
}

func TestChebyshevSolvesWithSpectralBounds(t *testing.T) {
	n := 60
	m := spdMatrix(t, n, 13)
	vals, err := lanczos.JacobiEigen(m.Dense(), n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, st, err := Chebyshev(lanczos.MatrixOperator{M: m}, b, ChebyshevOptions{
		LMin: vals[0] * 0.9, LMax: vals[n-1] * 1.1, Tol: 1e-9, MaxIter: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("Chebyshev did not converge: %+v", st)
	}
	if r := residualNorm(m, x, b); r > 1e-6 {
		t.Fatalf("residual %v", r)
	}
}

func TestChebyshevValidation(t *testing.T) {
	m := spdMatrix(t, 6, 15)
	op := lanczos.MatrixOperator{M: m}
	if _, _, err := Chebyshev(op, make([]float64, 6), ChebyshevOptions{LMin: 2, LMax: 1}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, _, err := Chebyshev(op, make([]float64, 6), ChebyshevOptions{LMin: 0, LMax: 1}); err == nil {
		t.Error("zero LMin accepted")
	}
}

// TestCGBeatsJacobiOnIterations: on the same SPD system, CG must converge
// in no more iterations than Jacobi (it is optimal in the Krylov space).
func TestCGBeatsJacobiOnIterations(t *testing.T) {
	f := func(seed int64) bool {
		n := 30
		m := spdMatrix(t, n, seed)
		diag := make([]float64, n)
		for i := 0; i < n; i++ {
			diag[i] = m.At(i, i)
		}
		rng := rand.New(rand.NewSource(seed + 1))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		op := lanczos.MatrixOperator{M: m}
		_, cgStats, err := CG(op, b, CGOptions{Tol: 1e-8})
		if err != nil {
			return false
		}
		_, jStats, err := Jacobi(op, b, JacobiOptions{Diag: diag, Tol: 1e-8})
		if err != nil {
			return false
		}
		return cgStats.Converged && (!jStats.Converged || cgStats.Iterations <= jStats.Iterations)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
