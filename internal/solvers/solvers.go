// Package solvers implements the iterative linear-algebra kernels the paper
// positions DOoC under. Beyond the Lanczos eigensolver (internal/lanczos),
// the paper's conclusion names this as the path forward: "Developing more
// linear algebra kernels will lower the bar for the application scientists
// to use our proposed paradigm" — and its related work runs Jacobi and
// Conjugate Gradient out-of-core for large Markov models (reference [6]).
//
// Every solver works over the same Operator abstraction as Lanczos, so each
// runs equally over an in-core matrix or DOoC's out-of-core SpMV
// (internal/core.Operator). One operator application per iteration is the
// design target: that is the unit the middleware optimizes.
package solvers

import (
	"fmt"
	"math"

	"dooc/internal/lanczos"
	"dooc/internal/sparse"
)

// Operator re-exports the shared operator contract.
type Operator = lanczos.Operator

// Stats reports a solve's work and convergence.
type Stats struct {
	Iterations int
	SpMVs      int
	// Residual is the final residual norm (solver-specific definition).
	Residual float64
	// Converged reports whether the tolerance was met before the
	// iteration cap.
	Converged bool
}

// CGOptions tunes the Conjugate Gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖ (default 1e-10).
	Tol float64
	// MaxIter caps iterations (default 10·dim).
	MaxIter int
	// X0 is the starting guess (default zero).
	X0 []float64
}

// CG solves A x = b for symmetric positive-definite A by the Conjugate
// Gradient method.
func CG(op Operator, b []float64, opts CGOptions) ([]float64, Stats, error) {
	n := op.Dim()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("solvers: b has %d entries, want %d", len(b), n)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10 * n
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, Stats{}, fmt.Errorf("solvers: x0 has %d entries, want %d", len(opts.X0), n)
		}
		copy(x, opts.X0)
	}
	bnorm := sparse.Norm2(b)
	if bnorm == 0 {
		return x, Stats{Converged: true}, nil
	}
	var st Stats
	// r = b - A x.
	r := append([]float64(nil), b...)
	if sparse.Norm2(x) > 0 {
		ax, err := op.Apply(x)
		if err != nil {
			return nil, st, err
		}
		st.SpMVs++
		sparse.Axpy(-1, ax, r)
	}
	p := append([]float64(nil), r...)
	rs := sparse.Dot(r, r)
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		st.Residual = math.Sqrt(rs) / bnorm
		if st.Residual <= opts.Tol {
			st.Converged = true
			return x, st, nil
		}
		var ap []float64
		var pap float64
		var err error
		if dop, ok := op.(lanczos.DotOperator); ok {
			// Fused SpMV + reduction: one pass over ap while it is cache-hot.
			// Bit-identical to the composed branch — the kernel folds the dot
			// in the same index order, and float multiply commutes bitwise.
			ap, pap, err = dop.ApplyDot(p)
		} else {
			ap, err = op.Apply(p)
			if err == nil {
				pap = sparse.Dot(p, ap)
			}
		}
		if err != nil {
			return nil, st, err
		}
		st.SpMVs++
		if pap <= 0 {
			return nil, st, fmt.Errorf("solvers: CG broke down (pᵀAp = %v <= 0): operator not SPD", pap)
		}
		alpha := rs / pap
		sparse.Axpy(alpha, p, x)
		sparse.Axpy(-alpha, ap, r)
		rsNew := sparse.Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	st.Residual = math.Sqrt(rs) / bnorm
	return x, st, nil
}

// JacobiOptions tunes the Jacobi iteration.
type JacobiOptions struct {
	// Diag is the diagonal of A (required: the operator abstraction hides
	// entries, so the caller supplies D).
	Diag []float64
	// Tol is the relative update tolerance (default 1e-10).
	Tol float64
	// MaxIter caps iterations (default 10·dim).
	MaxIter int
}

// Jacobi solves A x = b by the Jacobi iteration
// x ← x + D⁻¹ (b − A x), converging for diagonally dominant A. This is the
// distributed out-of-core Markov solver of the paper's reference [6].
func Jacobi(op Operator, b []float64, opts JacobiOptions) ([]float64, Stats, error) {
	n := op.Dim()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("solvers: b has %d entries, want %d", len(b), n)
	}
	if len(opts.Diag) != n {
		return nil, Stats{}, fmt.Errorf("solvers: Diag has %d entries, want %d", len(opts.Diag), n)
	}
	for i, d := range opts.Diag {
		if d == 0 {
			return nil, Stats{}, fmt.Errorf("solvers: zero diagonal at %d", i)
		}
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10 * n
	}
	x := make([]float64, n)
	bnorm := sparse.Norm2(b)
	if bnorm == 0 {
		return x, Stats{Converged: true}, nil
	}
	var st Stats
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		ax, err := op.Apply(x)
		if err != nil {
			return nil, st, err
		}
		st.SpMVs++
		delta := 0.0
		for i := range x {
			step := (b[i] - ax[i]) / opts.Diag[i]
			x[i] += step
			delta += step * step
		}
		st.Residual = math.Sqrt(delta) / bnorm
		if st.Residual <= opts.Tol {
			st.Converged = true
			st.Iterations++
			return x, st, nil
		}
	}
	return x, st, nil
}

// PowerOptions tunes the power method.
type PowerOptions struct {
	// Tol is the eigenvalue-change tolerance (default 1e-12).
	Tol float64
	// MaxIter caps iterations (default 1000).
	MaxIter int
	// X0 is the starting vector (default e_1 + noise-free ones).
	X0 []float64
}

// Power computes the dominant eigenvalue and eigenvector of op by the
// power method — the simplest of the paper's iterated-SpMV clients.
func Power(op Operator, opts PowerOptions) (lambda float64, vec []float64, st Stats, err error) {
	n := op.Dim()
	if opts.Tol <= 0 {
		opts.Tol = 1e-12
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 1000
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return 0, nil, st, fmt.Errorf("solvers: x0 has %d entries, want %d", len(opts.X0), n)
		}
		copy(x, opts.X0)
	} else {
		for i := range x {
			x[i] = 1 / math.Sqrt(float64(n))
		}
	}
	nrm := sparse.Norm2(x)
	if nrm == 0 {
		return 0, nil, st, fmt.Errorf("solvers: zero starting vector")
	}
	sparse.Scale(1/nrm, x)
	prev := math.Inf(1)
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		y, err := op.Apply(x)
		if err != nil {
			return 0, nil, st, err
		}
		st.SpMVs++
		lambda = sparse.Dot(x, y)
		ynorm := sparse.Norm2(y)
		if ynorm == 0 {
			return 0, x, st, fmt.Errorf("solvers: operator annihilated the iterate")
		}
		sparse.Scale(1/ynorm, y)
		x = y
		st.Residual = math.Abs(lambda - prev)
		if st.Residual <= opts.Tol*(1+math.Abs(lambda)) {
			st.Converged = true
			st.Iterations++
			return lambda, x, st, nil
		}
		prev = lambda
	}
	return lambda, x, st, nil
}

// ChebyshevOptions tunes the Chebyshev semi-iteration.
type ChebyshevOptions struct {
	// LMin and LMax bound the operator's spectrum (required, 0 < LMin < LMax).
	LMin, LMax float64
	// Tol is the relative residual tolerance (default 1e-10).
	Tol float64
	// MaxIter caps iterations (default 10·dim).
	MaxIter int
}

// Chebyshev solves A x = b for SPD A with known spectral bounds, without
// inner products — attractive out-of-core because it removes the global
// reductions that the paper identifies as the synchronization cost.
func Chebyshev(op Operator, b []float64, opts ChebyshevOptions) ([]float64, Stats, error) {
	n := op.Dim()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("solvers: b has %d entries, want %d", len(b), n)
	}
	if !(opts.LMin > 0 && opts.LMax > opts.LMin) {
		return nil, Stats{}, fmt.Errorf("solvers: need 0 < LMin < LMax, got [%v, %v]", opts.LMin, opts.LMax)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10 * n
	}
	bnorm := sparse.Norm2(b)
	if bnorm == 0 {
		return make([]float64, n), Stats{Converged: true}, nil
	}
	theta := (opts.LMax + opts.LMin) / 2
	delta := (opts.LMax - opts.LMin) / 2
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	var p []float64
	var alpha, beta float64
	var st Stats
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		st.Residual = sparse.Norm2(r) / bnorm
		if st.Residual <= opts.Tol {
			st.Converged = true
			return x, st, nil
		}
		switch st.Iterations {
		case 0:
			p = append([]float64(nil), r...)
			alpha = 1 / theta
		case 1:
			beta = 0.5 * (delta * alpha) * (delta * alpha)
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		default:
			beta = (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		}
		sparse.Axpy(alpha, p, x)
		ap, err := op.Apply(p)
		if err != nil {
			return nil, st, err
		}
		st.SpMVs++
		sparse.Axpy(-alpha, ap, r)
	}
	st.Residual = sparse.Norm2(r) / bnorm
	return x, st, nil
}
