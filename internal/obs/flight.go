package obs

import (
	"sync"
	"time"
)

// FlightEvent is one structured entry in a job's flight recorder: a
// lifecycle transition, a span reference, or a retry/fault annotation. The
// hex-encoded causal IDs make a snapshot self-contained — it can be
// journaled, recovered after a crash, and rendered as a Chrome trace without
// the process that recorded it.
type FlightEvent struct {
	Seq    uint64            `json:"seq"`
	At     time.Time         `json:"at"`
	Kind   string            `json:"kind"` // "transition", "span", "retry", "note"
	Name   string            `json:"name"`
	Trace  string            `json:"trace_id,omitempty"`
	Span   string            `json:"span_id,omitempty"`
	Parent string            `json:"parent_id,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// DefaultFlightEvents bounds a flight recorder when no capacity is given.
const DefaultFlightEvents = 64

// FlightRecorder is a bounded ring of FlightEvents. When full, the oldest
// events are overwritten and counted as dropped — a job can never grow its
// journal records without bound. A nil *FlightRecorder discards everything.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []FlightEvent
	start   int // index of oldest event
	n       int // live events
	seq     uint64
	dropped uint64
}

// NewFlightRecorder returns a recorder bounded to capacity events
// (DefaultFlightEvents when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{ring: make([]FlightEvent, 0, capacity)}
}

// Record appends an event, evicting the oldest when the ring is full.
func (r *FlightRecorder) Record(kind, name string, sc SpanContext, parent SpanID, attrs map[string]string) {
	if r == nil {
		return
	}
	ev := FlightEvent{At: time.Now(), Kind: kind, Name: name, Attrs: attrs}
	if !sc.Trace.IsZero() {
		ev.Trace = sc.Trace.String()
	}
	if !sc.Span.IsZero() {
		ev.Span = sc.Span.String()
	}
	if !parent.IsZero() {
		ev.Parent = parent.String()
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if r.n < cap(r.ring) {
		r.ring = append(r.ring, FlightEvent{})
		r.ring[(r.start+r.n)%cap(r.ring)] = ev
		r.n++
	} else {
		r.ring[r.start] = ev
		r.start = (r.start + 1) % cap(r.ring)
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns the live events oldest-first.
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEvent, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(r.start+i)%cap(r.ring)])
	}
	return out
}

// Len returns the number of live events.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events the ring has overwritten.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Preload seeds the ring with recovered events (oldest-first), keeping the
// sequence counter ahead of them so post-recovery events sort after. Events
// beyond capacity drop from the front, as they would have in flight.
func (r *FlightRecorder) Preload(events []FlightEvent) {
	if r == nil || len(events) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ev := range events {
		if r.n < cap(r.ring) {
			r.ring = append(r.ring, FlightEvent{})
			r.ring[(r.start+r.n)%cap(r.ring)] = ev
			r.n++
		} else {
			r.ring[r.start] = ev
			r.start = (r.start + 1) % cap(r.ring)
			r.dropped++
		}
		if ev.Seq > r.seq {
			r.seq = ev.Seq
		}
	}
}
