package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dooc_test_ops_total", "ops", L("node", "0"))
	g := reg.Gauge("dooc_test_depth", "depth")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-resolving the series must return the same storage.
			c2 := reg.Counter("dooc_test_ops_total", "ops", L("node", "0"))
			for i := 0; i < per; i++ {
				c2.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestSeriesIdentityAndSum(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dooc_x_total", "x", L("node", "0"))
	b := reg.Counter("dooc_x_total", "x", L("node", "1"))
	if a == b {
		t.Fatal("distinct labels must produce distinct series")
	}
	// Label order must not split a series.
	c1 := reg.Counter("dooc_y_total", "y", L("a", "1"), L("b", "2"))
	c2 := reg.Counter("dooc_y_total", "y", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Fatal("label order split a series")
	}
	a.Add(3)
	b.Add(4)
	if got := reg.Sum("dooc_x_total"); got != 7 {
		t.Fatalf("Sum = %d, want 7", got)
	}
	if got := reg.Sum("dooc_missing_total"); got != 0 {
		t.Fatalf("Sum of unknown family = %d, want 0", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dooc_z_total", "z")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("dooc_z_total", "z")
}

func TestHistogramInvariants(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("dooc_test_seconds", "latency", []float64{0.001, 0.01, 0.1})
	var wg sync.WaitGroup
	vals := []float64{0.0001, 0.005, 0.05, 0.5, 2}
	const loops = 500
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				for _, v := range vals {
					h.Observe(v)
				}
			}
		}()
	}
	wg.Wait()
	want := int64(4 * loops * len(vals))
	if got := h.Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	var bucketSum int64
	for _, c := range h.BucketCounts() {
		bucketSum += c
	}
	if bucketSum != want {
		t.Fatalf("sum of bucket counts = %d, want %d (histogram must not lose observations)", bucketSum, want)
	}
	// 0.5 and 2 both exceed the last bound: +Inf bucket holds 2/5 of them.
	counts := h.BucketCounts()
	if counts[len(counts)-1] != int64(4*loops*2) {
		t.Fatalf("+Inf bucket = %d, want %d", counts[len(counts)-1], 4*loops*2)
	}
	if h.Sum() <= 0 {
		t.Fatalf("histogram sum = %g, want > 0", h.Sum())
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dooc_a_total", "a help", L("node", "0")).Add(5)
	reg.Gauge("dooc_b", "b help").Set(-2)
	h := reg.Histogram("dooc_c_seconds", "c help", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dooc_a_total a help",
		"# TYPE dooc_a_total counter",
		`dooc_a_total{node="0"} 5`,
		"# TYPE dooc_b gauge",
		"dooc_b -2",
		"# TYPE dooc_c_seconds histogram",
		`dooc_c_seconds_bucket{le="0.01"} 1`,
		`dooc_c_seconds_bucket{le="0.1"} 2`,
		`dooc_c_seconds_bucket{le="+Inf"} 3`,
		"dooc_c_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dooc_s_total", "s", L("node", "1")).Add(9)
	snap := reg.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series, want 1", len(snap))
	}
	s := snap[0]
	if s.Name != "dooc_s_total" || s.Kind != "counter" || s.Value != 9 {
		t.Fatalf("unexpected snapshot %+v", s)
	}
	if s.ID() != `dooc_s_total{node="1"}` {
		t.Fatalf("unexpected series ID %q", s.ID())
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x", "", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if reg.Sum("x") != 0 || reg.Snapshot() != nil {
		t.Fatal("nil registry must read empty")
	}
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatal("nil registry WritePrometheus must be a no-op")
	}
	var tr *Tracer
	tr.Span("a", "b", 0, 0, timeZero(), timeZero(), nil)
	tr.Instant("a", "b", 0, 0, timeZero(), nil)
	if tr.Len() != 0 {
		t.Fatal("nil tracer must record nothing")
	}
}
