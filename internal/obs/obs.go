// Package obs is the runtime's observability substrate: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket histograms with
// Prometheus text exposition) and a lightweight span/event tracer emitting
// Chrome trace-event JSON loadable in perfetto or chrome://tracing.
//
// Every layer of the middleware — storage, scheduler, engine, remote,
// datacutter — registers its series here under the naming scheme
// `dooc_<layer>_<name>` (counters end in `_total`, latency histograms in
// `_seconds`, sizes in `_bytes`). The registry is the measurement substrate
// the paper's quantitative claims are validated against: block-load counts
// (Fig. 5b), I/O overlap (Tables III/IV), and recovery overheads all
// reconcile against these counters in the test suite.
//
// All types are nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, or *Tracer are no-ops, so instrumentation call sites never
// branch on whether observability is enabled.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series (e.g. node="0").
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for the series to stay monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// series is one registered (name, labels) pair with its backing metric.
type series struct {
	name   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric series. All methods are safe for concurrent use;
// registering the same (name, labels) twice returns the same metric, so
// layers can resolve their counters independently and still share series.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	order     []string           // family registration order
	byID      map[string]*series // id = name + rendered labels
	seriesCap int
	dropped   *Counter // dooc_obs_series_dropped_total
}

// DefaultSeriesCap bounds the distinct series per metric family. High-
// cardinality label sources (per-job, per-tenant) overflow into a single
// catch-all series instead of growing the registry without bound.
const DefaultSeriesCap = 256

// overflowLabelValue replaces every label value of a series that would
// exceed the family's cardinality cap.
const overflowLabelValue = "other"

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families:  make(map[string]*family),
		byID:      make(map[string]*series),
		seriesCap: DefaultSeriesCap,
	}
}

// SetSeriesCap replaces the per-family series cap (n <= 0 restores the
// default). Series already registered are unaffected.
func (r *Registry) SetSeriesCap(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = DefaultSeriesCap
	}
	r.mu.Lock()
	r.seriesCap = n
	r.mu.Unlock()
}

// seriesID renders the unique identity of a (name, labels) pair. Labels are
// sorted so registration order does not split series.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels returns a sorted copy of labels.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup finds or creates a series. Registering an existing name with a
// different kind panics: that is a programming error, not runtime state.
// A new labelled series that would push its family past the cardinality cap
// is routed to the family's single overflow series (every label value
// "other") and counted in dooc_obs_series_dropped_total.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	labels = sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookupLocked(name, help, kind, labels, true)
}

func (r *Registry) lookupLocked(name, help string, kind metricKind, labels []Label, capped bool) *series {
	id := seriesID(name, labels)
	if s, ok := r.byID[id]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, s.kind))
		}
		return s
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric family %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	if capped && len(labels) > 0 && len(f.series) >= r.seriesCap {
		if r.dropped == nil {
			r.dropped = r.lookupLocked("dooc_obs_series_dropped_total",
				"series routed to a family's overflow slot by the cardinality cap",
				counterKind, nil, false).counter
		}
		r.dropped.Inc()
		other := make([]Label, len(labels))
		for i, l := range labels {
			other[i] = Label{Key: l.Key, Value: overflowLabelValue}
		}
		return r.lookupLocked(name, help, kind, other, false)
	}
	s := &series{name: name, labels: labels, kind: kind}
	switch kind {
	case counterKind:
		s.counter = &Counter{}
	case gaugeKind:
		s.gauge = &Gauge{}
	case histogramKind:
		// hist is attached by the caller (bucket bounds vary).
	}
	f.series = append(f.series, s)
	r.byID[id] = s
	return s
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, counterKind, labels).counter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, gaugeKind, labels).gauge
}

// Histogram registers (or finds) a histogram series with the given bucket
// upper bounds (ascending; +Inf is implicit). nil bounds use DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, histogramKind, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// Sum adds up the values of every counter or gauge series in the named
// family (e.g. the per-node cache hits of the whole cluster). Histogram
// families return the summed observation count.
func (r *Registry) Sum(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f, ok := r.families[name]
	var list []*series
	if ok {
		list = append(list, f.series...)
	}
	r.mu.Unlock()
	var n int64
	for _, s := range list {
		switch s.kind {
		case counterKind:
			n += s.counter.Value()
		case gaugeKind:
			n += s.gauge.Value()
		case histogramKind:
			n += s.hist.Count()
		}
	}
	return n
}

// Totals snapshots every family's summed value keyed by family name —
// counters and gauges sum their series, histograms their observation
// counts. Benchmark reports embed it (BENCH_*.json) so a result JSON
// carries the run's full counter state, diffable across PRs.
func (r *Registry) Totals() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	r.mu.Unlock()
	out := make(map[string]int64, len(names))
	for _, name := range names {
		out[name] = r.Sum(name)
	}
	return out
}

// SumWhere is Sum restricted to series carrying the label key=value —
// e.g. the bytes one codec contributed across every node.
func (r *Registry) SumWhere(name, key, value string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f, ok := r.families[name]
	var list []*series
	if ok {
		list = append(list, f.series...)
	}
	r.mu.Unlock()
	var n int64
	for _, s := range list {
		matched := false
		for _, l := range s.labels {
			if l.Key == key && l.Value == value {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		switch s.kind {
		case counterKind:
			n += s.counter.Value()
		case gaugeKind:
			n += s.gauge.Value()
		case histogramKind:
			n += s.hist.Count()
		}
	}
	return n
}
