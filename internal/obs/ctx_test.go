package obs

import (
	"context"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("ParseTraceID(%q) = %v, want %v", s, back, id)
	}
	hi, lo := id.Words()
	if TraceIDFromWords(hi, lo) != id {
		t.Fatal("Words round trip mismatch")
	}
	if _, err := ParseTraceID("nothex"); err == nil {
		t.Fatal("ParseTraceID accepted short input")
	}
	if _, err := ParseTraceID("zz000000000000000000000000000000"); err == nil {
		t.Fatal("ParseTraceID accepted non-hex input")
	}
}

func TestSpanIDRoundTrip(t *testing.T) {
	id := NewSpanID()
	if id.IsZero() {
		t.Fatal("NewSpanID returned zero")
	}
	back, err := ParseSpanID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatal("ParseSpanID round trip mismatch")
	}
	if SpanIDFromWord(id.Word()) != id {
		t.Fatal("Word round trip mismatch")
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[TraceID]bool)
	spans := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		tr := NewTraceID()
		if seen[tr] {
			t.Fatalf("duplicate trace id after %d draws", i)
		}
		seen[tr] = true
		sp := NewSpanID()
		if spans[sp] {
			t.Fatalf("duplicate span id after %d draws", i)
		}
		spans[sp] = true
	}
}

func TestSpanContext(t *testing.T) {
	var zero SpanContext
	if zero.Valid() {
		t.Fatal("zero SpanContext is valid")
	}
	root := NewSpanContext()
	if !root.Valid() {
		t.Fatal("NewSpanContext not valid")
	}
	child := root.Child()
	if child.Trace != root.Trace {
		t.Fatal("Child changed trace")
	}
	if child.Span == root.Span {
		t.Fatal("Child kept parent span id")
	}

	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("SpanFromContext = %+v, want %+v", got, root)
	}
	if got := SpanFromContext(context.Background()); got.Valid() {
		t.Fatal("empty context yielded a valid span context")
	}
	if got := SpanFromContext(nil); got.Valid() { //nolint:staticcheck
		t.Fatal("nil context yielded a valid span context")
	}
}
