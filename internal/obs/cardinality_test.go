package obs

import (
	"fmt"
	"testing"
)

func TestSeriesCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesCap(4)

	var last *Counter
	for i := 0; i < 10; i++ {
		last = r.Counter("dooc_test_jobs_total", "per-job counter", L("job", fmt.Sprint(i)))
		last.Inc()
	}

	// 4 real series + 1 overflow slot, never more.
	var fam, overflow int
	for _, s := range r.Snapshot() {
		if s.Name != "dooc_test_jobs_total" {
			continue
		}
		fam++
		if len(s.Labels) == 1 && s.Labels[0].Value == overflowLabelValue {
			overflow++
			if s.Value != 6 {
				t.Fatalf("overflow series = %d, want the 6 capped increments", s.Value)
			}
		}
	}
	if fam != 5 || overflow != 1 {
		t.Fatalf("family has %d series (%d overflow), want 5 (1)", fam, overflow)
	}
	if got := r.Sum("dooc_obs_series_dropped_total"); got != 6 {
		t.Fatalf("dropped counter = %d, want 6", got)
	}
	if got := r.Sum("dooc_test_jobs_total"); got != 10 {
		t.Fatalf("Sum = %d, want 10 (no increments lost)", got)
	}

	// Overflowed registrations share one series.
	again := r.Counter("dooc_test_jobs_total", "per-job counter", L("job", "99"))
	if again != last {
		t.Fatal("capped registrations did not share the overflow series")
	}

	// Existing series still resolve to themselves past the cap.
	first := r.Counter("dooc_test_jobs_total", "per-job counter", L("job", "0"))
	if first == last {
		t.Fatal("pre-cap series rerouted to overflow")
	}

	// Unlabelled series are never capped (there is only ever one).
	if c := r.Counter("dooc_test_plain_total", "no labels"); c == nil {
		t.Fatal("unlabelled counter nil")
	}
}

func TestSeriesCapHistograms(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesCap(2)
	for i := 0; i < 5; i++ {
		h := r.Histogram("dooc_test_lat_seconds", "per-tenant latency", nil, L("tenant", fmt.Sprint(i)))
		h.Observe(0.5)
	}
	if got := r.Sum("dooc_test_lat_seconds"); got != 5 {
		t.Fatalf("Sum = %d, want 5", got)
	}
	if got := r.Sum("dooc_obs_series_dropped_total"); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
}

func TestSetSeriesCapNilSafe(t *testing.T) {
	var r *Registry
	r.SetSeriesCap(10)
}
