package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Trace context: the causal identity a job carries across process
// boundaries. A TraceID names one causal tree end-to-end (client submit →
// queue → run → iterations → tasks → result); a SpanID names one node in
// that tree. Both travel over the gob wire as plain uint64 words so legacy
// peers, which never look at the fields, interoperate unchanged.

// TraceID is a 128-bit trace identifier. The zero value means "untraced".
type TraceID [16]byte

// SpanID is a 64-bit span identifier. The zero value means "no span".
type SpanID [8]byte

// IsZero reports whether t is the absent trace.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders t as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// Words splits t into (hi, lo) big-endian words for wire transport.
func (t TraceID) Words() (hi, lo uint64) {
	return binary.BigEndian.Uint64(t[:8]), binary.BigEndian.Uint64(t[8:])
}

// TraceIDFromWords reassembles a TraceID from its wire words.
func TraceIDFromWords(hi, lo uint64) TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], hi)
	binary.BigEndian.PutUint64(t[8:], lo)
	return t
}

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace id %q: want 32 hex digits", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	return t, nil
}

// IsZero reports whether s is the absent span.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders s as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Word returns s as a big-endian word for wire transport.
func (s SpanID) Word() uint64 { return binary.BigEndian.Uint64(s[:]) }

// SpanIDFromWord reassembles a SpanID from its wire word.
func SpanIDFromWord(w uint64) SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], w)
	return s
}

// ParseSpanID parses the 16-hex-digit form produced by String.
func ParseSpanID(str string) (SpanID, error) {
	var s SpanID
	if len(str) != 16 {
		return s, fmt.Errorf("obs: span id %q: want 16 hex digits", str)
	}
	if _, err := hex.Decode(s[:], []byte(str)); err != nil {
		return SpanID{}, fmt.Errorf("obs: span id %q: %w", str, err)
	}
	return s, nil
}

// SpanContext is the (trace, span) pair a caller passes down so children can
// link themselves under the right parent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether sc carries a usable causal identity.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Child returns a fresh span under the same trace.
func (sc SpanContext) Child() SpanContext {
	return SpanContext{Trace: sc.Trace, Span: NewSpanID()}
}

// NewSpanContext mints a fresh root: new trace, new root span.
func NewSpanContext() SpanContext {
	return SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
}

// ID generation: a crypto-seeded SplitMix64 stream behind an atomic counter.
// Tracing-path IDs only need uniqueness, not unpredictability, and an atomic
// add per ID keeps generation allocation-free and lock-free so even heavily
// traced runs pay nothing measurable.
var (
	idCounter atomic.Uint64
	idKey0    uint64
	idKey1    uint64
)

func init() {
	var seed [16]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		// Degraded environments still get per-process-unique IDs.
		binary.LittleEndian.PutUint64(seed[:8], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(seed[8:], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
	}
	idKey0 = binary.LittleEndian.Uint64(seed[:8]) | 1 // odd, never zero
	idKey1 = binary.LittleEndian.Uint64(seed[8:])
}

// splitmix64 is the finalizer from Steele et al.'s SplitMix generator: a
// bijection on uint64, so distinct inputs never collide.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func nextIDWord() uint64 {
	for {
		if w := splitmix64(idCounter.Add(1)*idKey0 + idKey1); w != 0 {
			return w
		}
	}
}

// NewTraceID mints a unique non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	return TraceIDFromWords(nextIDWord(), nextIDWord())
}

// NewSpanID mints a unique non-zero 64-bit span ID.
func NewSpanID() SpanID {
	return SpanIDFromWord(nextIDWord())
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc for downstream callees.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext extracts the span context stored by ContextWithSpan, or
// the zero SpanContext when none is present.
func SpanFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}
