package obs

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record("transition", "queued", SpanContext{}, SpanID{}, nil)
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	r.Preload([]FlightEvent{{Seq: 1}})
}

func TestFlightRecorderRingBound(t *testing.T) {
	r := NewFlightRecorder(4)
	sc := NewSpanContext()
	for i := 0; i < 10; i++ {
		r.Record("note", fmt.Sprintf("ev%d", i), sc, SpanID{}, nil)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		want := fmt.Sprintf("ev%d", 6+i)
		if ev.Name != want {
			t.Fatalf("event %d = %q, want %q (oldest-first, newest retained)", i, ev.Name, want)
		}
		if ev.Seq != uint64(7+i) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, 7+i)
		}
		if ev.Trace != sc.Trace.String() || ev.Span != sc.Span.String() {
			t.Fatal("causal ids not recorded")
		}
	}
}

func TestFlightRecorderPreload(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Preload([]FlightEvent{{Seq: 5, Kind: "transition", Name: "queued"}, {Seq: 6, Kind: "transition", Name: "running"}})
	r.Record("transition", "done", SpanContext{}, SpanID{}, nil)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].Name != "queued" || evs[1].Name != "running" || evs[2].Name != "done" {
		t.Fatalf("order wrong: %+v", evs)
	}
	if evs[2].Seq != 7 {
		t.Fatalf("post-recovery seq = %d, want 7 (continues past preloaded)", evs[2].Seq)
	}

	// Preload beyond capacity drops from the front.
	r2 := NewFlightRecorder(2)
	r2.Preload([]FlightEvent{{Seq: 1, Name: "a"}, {Seq: 2, Name: "b"}, {Seq: 3, Name: "c"}})
	evs = r2.Events()
	if len(evs) != 2 || evs[0].Name != "b" || evs[1].Name != "c" {
		t.Fatalf("overfull preload kept %+v", evs)
	}
	if r2.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r2.Dropped())
	}
}

func TestFlightTrace(t *testing.T) {
	r := NewFlightRecorder(16)
	root := NewSpanContext()
	r.Record("transition", "queued", root.Child(), root.Span, map[string]string{"tenant": "acme"})
	r.Record("transition", "running", root.Child(), root.Span, nil)
	r.Record("retry", "io", root.Child(), root.Span, map[string]string{"error": "transient"})
	r.Record("transition", "done", root.Child(), root.Span, nil)

	data, err := FlightTrace(r.Events(), PidJobs, "job1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(data); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	// 1 metadata + 2 state spans (queued, running) + retry instant + terminal instant.
	var spans, instants, meta int
	for _, ev := range tf.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if meta != 1 || spans != 2 || instants != 2 {
		t.Fatalf("meta/spans/instants = %d/%d/%d, want 1/2/2", meta, spans, instants)
	}

	// The root span is only referenced as a parent here; together with a
	// blob that contains it, the combined set must be causally closed.
	rootBlob := []byte(fmt.Sprintf(
		`[{"name":"job","ph":"X","ts":0,"dur":1,"pid":1,"tid":0,"args":{"trace_id":%q,"span_id":%q}}]`,
		root.Trace.String(), root.Span.String()))
	if err := ValidateCausal(rootBlob, data); err != nil {
		t.Fatalf("ValidateCausal: %v", err)
	}
	// Without the root blob, the flight events are all orphans.
	if err := ValidateCausal(data); err == nil {
		t.Fatal("ValidateCausal accepted orphan parents")
	}

	if _, err := FlightTrace(nil, 1, "x"); err == nil {
		t.Fatal("FlightTrace accepted empty events")
	}
}
