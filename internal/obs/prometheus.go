package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// SeriesSnapshot is one metric series at a point in time — the programmatic
// form the reconciliation tests and CLI snapshot printers consume.
type SeriesSnapshot struct {
	Name   string
	Labels []Label
	Kind   string // "counter", "gauge", "histogram"
	Value  int64  // counter/gauge value; histogram observation count
	Sum    float64
	// Bounds/Buckets are the histogram's bucket upper bounds and raw
	// (non-cumulative) counts; the final bucket is +Inf.
	Bounds  []float64
	Buckets []int64
}

// ID renders the series identity (name plus sorted labels).
func (s SeriesSnapshot) ID() string { return seriesID(s.Name, s.Labels) }

// Snapshot returns every series, families in registration order, series
// within a family sorted by label identity.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type fam struct {
		kind   metricKind
		series []*series
	}
	fams := make([]fam, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fams = append(fams, fam{kind: f.kind, series: append([]*series(nil), f.series...)})
	}
	r.mu.Unlock()

	var out []SeriesSnapshot
	for _, f := range fams {
		sort.Slice(f.series, func(i, j int) bool {
			return seriesID(f.series[i].name, f.series[i].labels) < seriesID(f.series[j].name, f.series[j].labels)
		})
		for _, s := range f.series {
			ss := SeriesSnapshot{
				Name:   s.name,
				Labels: append([]Label(nil), s.labels...),
				Kind:   s.kind.String(),
			}
			switch s.kind {
			case counterKind:
				ss.Value = s.counter.Value()
			case gaugeKind:
				ss.Value = s.gauge.Value()
			case histogramKind:
				ss.Value = s.hist.Count()
				ss.Sum = s.hist.Sum()
				ss.Bounds = s.hist.Bounds()
				ss.Buckets = s.hist.BucketCounts()
			}
			out = append(out, ss)
		}
	}
	return out
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabelValue escapes a label value per the 0.0.4 text format:
// backslash, double-quote, and newline must be backslash-escaped.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the 0.0.4 text format (backslash and
// newline only; quotes are legal there).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// renderLabels renders {k="v",...} for exposition, with an optional extra
// label appended (used for histogram `le`). Values are escaped per the
// 0.0.4 text format.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4): HELP/TYPE per family, one line per series, histograms as
// cumulative `_bucket{le=...}` plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, ss := range r.snapshotByFamily() {
		if ss.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", ss.name, escapeHelp(ss.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ss.name, ss.kind); err != nil {
			return err
		}
		for _, s := range ss.series {
			switch s.Kind {
			case "histogram":
				cum := int64(0)
				for i, c := range s.Buckets {
					cum += c
					le := "+Inf"
					if i < len(s.Bounds) {
						le = formatFloat(s.Bounds[i])
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						s.Name, renderLabels(s.Labels, Label{Key: "le", Value: le}), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, renderLabels(s.Labels), formatFloat(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, renderLabels(s.Labels), s.Value); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, renderLabels(s.Labels), s.Value); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

type familySnapshot struct {
	name   string
	help   string
	kind   string
	series []SeriesSnapshot
}

func (r *Registry) snapshotByFamily() []familySnapshot {
	r.mu.Lock()
	metaByName := make(map[string]*family, len(r.families))
	order := append([]string(nil), r.order...)
	for name, f := range r.families {
		metaByName[name] = f
	}
	r.mu.Unlock()

	byName := make(map[string][]SeriesSnapshot)
	for _, s := range r.Snapshot() {
		byName[s.Name] = append(byName[s.Name], s)
	}
	out := make([]familySnapshot, 0, len(order))
	for _, name := range order {
		f := metaByName[name]
		out = append(out, familySnapshot{
			name:   name,
			help:   f.help,
			kind:   f.kind.String(),
			series: byName[name],
		})
	}
	return out
}

// Handler returns an HTTP handler serving the registry in Prometheus text
// exposition format — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
