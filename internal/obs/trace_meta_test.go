package obs

import (
	"bytes"
	"testing"
	"time"
)

func TestTracerMetadataEvents(t *testing.T) {
	tr := NewTracer()
	tr.SetProcessName(PidJobs, "jobs.Manager")
	tr.SetProcessName(PidJobs, "jobs.Manager") // deduplicated
	tr.SetThreadName(PidJobs, 7, "job7")
	tr.SetProcessName(0, "node0")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicate metadata suppressed)", tr.Len())
	}
	tr.Span("work", "test", 0, 0, time.Now(), time.Now().Add(time.Millisecond), nil)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace with M events rejected: %v", err)
	}

	// Nil tracer: all metadata calls are no-ops.
	var nilTr *Tracer
	nilTr.SetProcessName(1, "x")
	nilTr.SetThreadName(1, 2, "y")
	nilTr.SpanCtx("a", "b", 0, 0, time.Now(), time.Now(), NewSpanContext(), SpanID{}, nil)
	nilTr.InstantCtx("a", "b", 0, 0, time.Now(), NewSpanContext(), SpanID{}, nil)
}

func TestValidateTraceMetadataShapes(t *testing.T) {
	// M event without ts/pid is fine; without args.name it is not.
	ok := []byte(`[{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"client"}},` +
		`{"name":"s","ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]`)
	if err := ValidateTrace(ok); err != nil {
		t.Fatalf("valid M event rejected: %v", err)
	}
	bad := []byte(`[{"name":"process_name","ph":"M","pid":1,"tid":0}]`)
	if err := ValidateTrace(bad); err == nil {
		t.Fatal("M event without args accepted")
	}
	bad = []byte(`[{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":3}}]`)
	if err := ValidateTrace(bad); err == nil {
		t.Fatal("M event with numeric args.name accepted")
	}
}

func TestValidateCausal(t *testing.T) {
	root := NewSpanContext()
	child := root.Child()
	a := []byte(`[{"name":"submit","ph":"X","ts":0,"dur":5,"pid":1,"tid":0,"args":{"trace_id":"` +
		root.Trace.String() + `","span_id":"` + root.Span.String() + `"}}]`)
	b := []byte(`[{"name":"run","ph":"X","ts":1,"dur":3,"pid":2,"tid":0,"args":{"trace_id":"` +
		child.Trace.String() + `","span_id":"` + child.Span.String() + `","parent_id":"` + root.Span.String() + `"}}]`)
	if err := ValidateCausal(a, b); err != nil {
		t.Fatalf("coherent tree rejected: %v", err)
	}
	// Orphan: parent never defined anywhere.
	orphan := []byte(`[{"name":"run","ph":"X","ts":1,"dur":3,"pid":2,"tid":0,"args":{"trace_id":"` +
		root.Trace.String() + `","span_id":"` + NewSpanID().String() + `","parent_id":"` + NewSpanID().String() + `"}}]`)
	if err := ValidateCausal(a, orphan); err == nil {
		t.Fatal("orphan span accepted")
	}
	// Split trace IDs.
	other := NewSpanContext()
	c := []byte(`[{"name":"x","ph":"X","ts":0,"dur":1,"pid":3,"tid":0,"args":{"trace_id":"` +
		other.Trace.String() + `","span_id":"` + other.Span.String() + `"}}]`)
	if err := ValidateCausal(a, c); err == nil {
		t.Fatal("split trace ids accepted")
	}
	// No annotations at all.
	plain := []byte(`[{"name":"x","ph":"X","ts":0,"dur":1,"pid":3,"tid":0}]`)
	if err := ValidateCausal(plain); err == nil {
		t.Fatal("unannotated trace accepted as causal")
	}
}
