package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func timeZero() time.Time { return time.Time{} }

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Span("task", "multiply", w, 0, start, start.Add(time.Millisecond), map[string]any{"i": i})
				tr.Instant("retry", "engine", w, 0, start, nil)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 4*50*2 {
		t.Fatalf("tracer holds %d events, want %d", tr.Len(), 4*50*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace failed validation: %v", err)
	}
	// The wrapper must carry the traceEvents key perfetto looks for.
	var wrapper map[string]any
	if err := json.Unmarshal(buf.Bytes(), &wrapper); err != nil {
		t.Fatal(err)
	}
	if _, ok := wrapper["traceEvents"]; !ok {
		t.Fatal("trace JSON missing traceEvents key")
	}
}

func TestTracerWriteFile(t *testing.T) {
	tr := NewTracer()
	now := time.Now()
	tr.Span("t0", "kind", 0, 0, now, now.Add(time.Millisecond), nil)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSpanClampsNegativeDuration(t *testing.T) {
	tr := NewTracer()
	now := time.Now()
	tr.Span("backwards", "", 0, 0, now, now.Add(-time.Second), nil)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("clamped span failed validation: %v", err)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        "nope{",
		"empty object":    `{}`,
		"empty array":     `[]`,
		"empty events":    `{"traceEvents":[]}`,
		"missing name":    `{"traceEvents":[{"ph":"X","ts":0,"pid":0,"tid":0}]}`,
		"missing ph":      `{"traceEvents":[{"name":"a","ts":0,"pid":0,"tid":0}]}`,
		"non-numeric ts":  `{"traceEvents":[{"name":"a","ph":"X","ts":"0","pid":0,"tid":0}]}`,
		"negative ts":     `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"pid":0,"tid":0}]}`,
		"missing pid":     `{"traceEvents":[{"name":"a","ph":"X","ts":0,"tid":0}]}`,
		"negative dur":    `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":-5,"pid":0,"tid":0}]}`,
		"non-numeric tid": `{"traceEvents":[{"name":"a","ph":"i","ts":0,"pid":0,"tid":"x"}]}`,
	}
	for label, data := range cases {
		if err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("%s: ValidateTrace accepted %q", label, data)
		}
	}
	// Bare-array form is accepted.
	ok := `[{"name":"a","ph":"i","ts":1.5,"pid":0,"tid":0}]`
	if err := ValidateTrace([]byte(ok)); err != nil {
		t.Errorf("bare array rejected: %v", err)
	}
}
