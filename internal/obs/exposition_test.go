package obs

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// buildConformanceRegistry returns a registry exercising every exposition
// shape: escaped label values, escaped help, cumulative histogram buckets.
func buildConformanceRegistry() *Registry {
	r := NewRegistry()
	r.Counter("dooc_test_requests_total", "requests served", L("path", "a\\b\"c\nd")).Add(3)
	r.Counter("dooc_test_requests_total", "requests served", L("path", "/ok")).Add(2)
	r.Gauge("dooc_test_depth", "queue depth").Set(7)
	h := r.Histogram("dooc_test_lat_seconds", "latency with\nnewline help", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	return r
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildConformanceRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusConformance checks 0.0.4 invariants structurally, so the
// golden file cannot lock in a spec violation.
func TestPrometheusConformance(t *testing.T) {
	var buf bytes.Buffer
	if err := buildConformanceRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var (
		bucketVals []int64
		lastLe     string
		sum        string
		count      int64
		sawInf     bool
	)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP"), strings.HasPrefix(line, "# TYPE"):
			if strings.Contains(line, "\n") {
				t.Fatalf("unescaped newline in %q", line)
			}
		case strings.HasPrefix(line, "dooc_test_lat_seconds_bucket"):
			le := line[strings.Index(line, `le="`)+4:]
			lastLe = le[:strings.Index(le, `"`)]
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if n := len(bucketVals); n > 0 && v < bucketVals[n-1] {
				t.Fatalf("buckets not cumulative: %v then %d", bucketVals, v)
			}
			bucketVals = append(bucketVals, v)
			if lastLe == "+Inf" {
				sawInf = true
			}
		case strings.HasPrefix(line, "dooc_test_lat_seconds_sum"):
			sum = line[strings.LastIndexByte(line, ' ')+1:]
		case strings.HasPrefix(line, "dooc_test_lat_seconds_count"):
			var err error
			count, err = strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
		case strings.HasPrefix(line, "dooc_test_requests_total{"):
			val := line[strings.Index(line, `path="`)+6 : strings.LastIndex(line, `"`)]
			if strings.ContainsAny(val, "\n") {
				t.Fatalf("raw newline in label value of %q", line)
			}
		}
	}
	if !sawInf || lastLe != "+Inf" {
		t.Fatalf("histogram missing trailing +Inf bucket (last le = %q)", lastLe)
	}
	if len(bucketVals) != 3 {
		t.Fatalf("bucket lines = %d, want 3 (2 bounds + +Inf)", len(bucketVals))
	}
	if bucketVals[len(bucketVals)-1] != count {
		t.Fatalf("+Inf bucket %d != _count %d", bucketVals[len(bucketVals)-1], count)
	}
	if want := "5.55"; sum != want {
		t.Fatalf("_sum = %s, want %s", sum, want)
	}
	if count != 3 {
		t.Fatalf("_count = %d, want 3", count)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		`back\slash`: `back\\slash`,
		`qu"ote`:     `qu\"ote`,
		"new\nline":  `new\nline`,
		"mix\\\"\nd": `mix\\\"\nd`,
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Fatalf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}
