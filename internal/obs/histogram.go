package obs

import (
	"math"
	"sync/atomic"
)

// DefBuckets are the default latency bounds in seconds, spanning microsecond
// block-cache hits to multi-second stalled I/O.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Histogram is a fixed-bucket histogram. Observations are counted into the
// first bucket whose upper bound is >= the value; values above every bound
// land in the implicit +Inf bucket. Sum is accumulated exactly (CAS on the
// float bits), so `sum(buckets) == count` holds at every instant.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
