package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace-event record. Phases used here: "X"
// (complete event with a duration) and "i" (instant). pid maps to the
// cluster node, tid to the worker lane within the node.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format perfetto and chrome://tracing load.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Tracer collects trace events. Safe for concurrent use; a nil *Tracer
// discards everything, so call sites need no gating.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []TraceEvent
}

// NewTracer returns a tracer whose timebase starts now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// us converts a wall time to trace microseconds.
func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.epoch)) / float64(time.Microsecond)
}

// Enabled reports whether events are being collected. Hot paths should gate
// event construction on it — a nil tracer discards events, but the args map
// built at the call site would still allocate.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records a complete event covering [start, end).
func (t *Tracer) Span(name, cat string, pid, tid int, start, end time.Time, args map[string]any) {
	if t == nil {
		return
	}
	ev := TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: t.us(start), Dur: float64(end.Sub(start)) / float64(time.Microsecond),
		Pid: pid, Tid: tid, Args: args,
	}
	if ev.Dur < 0 {
		ev.Dur = 0
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Instant records a point-in-time event.
func (t *Tracer) Instant(name, cat string, pid, tid int, at time.Time, args map[string]any) {
	if t == nil {
		return
	}
	ev := TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: t.us(at), Pid: pid, Tid: tid, S: "t", Args: args}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON emits the trace in Chrome trace-event JSON object format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path and validates what it wrote, so a
// corrupt emitter fails loudly instead of producing an unloadable file.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return ValidateTrace(data)
}

// ValidateTrace checks that data is non-empty, well-formed Chrome
// trace-event JSON: either an object with a traceEvents array or a bare
// array, every event carrying the required name/ph/ts/pid/tid fields with
// the right types, and "X" events a non-negative duration.
func ValidateTrace(data []byte) error {
	var wrapper struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &wrapper); err == nil && wrapper.TraceEvents != nil {
		events = wrapper.TraceEvents
	} else if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("obs: not trace-event JSON (neither {\"traceEvents\":[...]} nor a bare array): %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("obs: trace contains no events")
	}
	for i, ev := range events {
		if _, ok := ev["name"].(string); !ok {
			return fmt.Errorf("obs: event %d: missing or non-string \"name\"", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("obs: event %d: missing or non-string \"ph\"", i)
		}
		ts, ok := ev["ts"].(float64)
		if !ok {
			return fmt.Errorf("obs: event %d: missing or non-numeric \"ts\"", i)
		}
		if ts < 0 {
			return fmt.Errorf("obs: event %d: negative ts %g", i, ts)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key].(float64); !ok {
				return fmt.Errorf("obs: event %d: missing or non-numeric %q", i, key)
			}
		}
		if ph == "X" {
			if dur, present := ev["dur"]; present {
				d, ok := dur.(float64)
				if !ok || d < 0 {
					return fmt.Errorf("obs: event %d: complete event with invalid \"dur\"", i)
				}
			}
		}
	}
	return nil
}
