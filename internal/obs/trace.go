package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Stable pid values for tracks that are not cluster nodes. Engine workers
// keep pid == node index; these sit far above any realistic node count so
// the subsystem tracks never collide with node tracks.
const (
	PidClient = 9000 // doocrun job client
	PidJobs   = 9001 // jobs.Manager control plane
	PidEngine = 9002 // engine-level rollups (per-iteration spans)
)

// TraceEvent is one Chrome trace-event record. Phases used here: "X"
// (complete event with a duration), "i" (instant), and "M" (metadata:
// process_name/thread_name track labels). pid maps to the cluster node,
// tid to the worker lane within the node.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format perfetto and chrome://tracing load.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Tracer collects trace events. Safe for concurrent use; a nil *Tracer
// discards everything, so call sites need no gating.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []TraceEvent
	meta   map[string]bool // emitted process_name/thread_name keys
}

// NewTracer returns a tracer whose timebase starts now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// us converts a wall time to trace microseconds.
func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.epoch)) / float64(time.Microsecond)
}

// Enabled reports whether events are being collected. Hot paths should gate
// event construction on it — a nil tracer discards events, but the args map
// built at the call site would still allocate.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records a complete event covering [start, end).
func (t *Tracer) Span(name, cat string, pid, tid int, start, end time.Time, args map[string]any) {
	if t == nil {
		return
	}
	ev := TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: t.us(start), Dur: float64(end.Sub(start)) / float64(time.Microsecond),
		Pid: pid, Tid: tid, Args: args,
	}
	if ev.Dur < 0 {
		ev.Dur = 0
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// SpanCtx records a complete event annotated with its causal identity:
// trace_id, its own span_id, and (when non-zero) the parent span. Extra args
// may be passed in args (the map is taken over, not copied).
func (t *Tracer) SpanCtx(name, cat string, pid, tid int, start, end time.Time, sc SpanContext, parent SpanID, args map[string]any) {
	if t == nil {
		return
	}
	t.Span(name, cat, pid, tid, start, end, causalArgs(args, sc, parent))
}

// InstantCtx is Instant with causal annotations.
func (t *Tracer) InstantCtx(name, cat string, pid, tid int, at time.Time, sc SpanContext, parent SpanID, args map[string]any) {
	if t == nil {
		return
	}
	t.Instant(name, cat, pid, tid, at, causalArgs(args, sc, parent))
}

// causalArgs attaches the causal identity to an event's args map.
func causalArgs(args map[string]any, sc SpanContext, parent SpanID) map[string]any {
	if args == nil {
		args = make(map[string]any, 3)
	}
	if !sc.Trace.IsZero() {
		args["trace_id"] = sc.Trace.String()
	}
	if !sc.Span.IsZero() {
		args["span_id"] = sc.Span.String()
	}
	if !parent.IsZero() {
		args["parent_id"] = parent.String()
	}
	return args
}

// SetProcessName emits a process_name metadata event so the pid's track
// carries a stable subsystem name instead of a bare integer. Repeated calls
// for the same pid are deduplicated.
func (t *Tracer) SetProcessName(pid int, name string) {
	t.metadata("process_name", pid, 0, name)
}

// SetThreadName emits a thread_name metadata event for (pid, tid).
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	t.metadata("thread_name", pid, tid, name)
}

func (t *Tracer) metadata(kind string, pid, tid int, name string) {
	if t == nil || name == "" {
		return
	}
	key := fmt.Sprintf("%s/%d/%d", kind, pid, tid)
	t.mu.Lock()
	if t.meta == nil {
		t.meta = make(map[string]bool)
	}
	if !t.meta[key] {
		t.meta[key] = true
		t.events = append(t.events, TraceEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	t.mu.Unlock()
}

// Instant records a point-in-time event.
func (t *Tracer) Instant(name, cat string, pid, tid int, at time.Time, args map[string]any) {
	if t == nil {
		return
	}
	ev := TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: t.us(at), Pid: pid, Tid: tid, S: "t", Args: args}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON emits the trace in Chrome trace-event JSON object format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path and validates what it wrote, so a
// corrupt emitter fails loudly instead of producing an unloadable file.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return ValidateTrace(data)
}

// ValidateTrace checks that data is non-empty, well-formed Chrome
// trace-event JSON: either an object with a traceEvents array or a bare
// array, every event carrying the required name/ph fields with the right
// types, "X" events a non-negative duration, and non-metadata events
// numeric ts/pid/tid. "M" metadata events (process_name/thread_name) need
// only a string args.name.
func ValidateTrace(data []byte) error {
	events, err := parseTraceEvents(data)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("obs: trace contains no events")
	}
	for i, ev := range events {
		if _, ok := ev["name"].(string); !ok {
			return fmt.Errorf("obs: event %d: missing or non-string \"name\"", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("obs: event %d: missing or non-string \"ph\"", i)
		}
		if ph == "M" {
			args, ok := ev["args"].(map[string]any)
			if !ok {
				return fmt.Errorf("obs: event %d: metadata event without args", i)
			}
			if _, ok := args["name"].(string); !ok {
				return fmt.Errorf("obs: event %d: metadata event without string args.name", i)
			}
			continue
		}
		ts, ok := ev["ts"].(float64)
		if !ok {
			return fmt.Errorf("obs: event %d: missing or non-numeric \"ts\"", i)
		}
		if ts < 0 {
			return fmt.Errorf("obs: event %d: negative ts %g", i, ts)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key].(float64); !ok {
				return fmt.Errorf("obs: event %d: missing or non-numeric %q", i, key)
			}
		}
		if ph == "X" {
			if dur, present := ev["dur"]; present {
				d, ok := dur.(float64)
				if !ok || d < 0 {
					return fmt.Errorf("obs: event %d: complete event with invalid \"dur\"", i)
				}
			}
		}
	}
	return nil
}

// parseTraceEvents accepts both trace-file shapes and returns the raw
// events.
func parseTraceEvents(data []byte) ([]map[string]any, error) {
	var wrapper struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &wrapper); err == nil && wrapper.TraceEvents != nil {
		return wrapper.TraceEvents, nil
	} else if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("obs: not trace-event JSON (neither {\"traceEvents\":[...]} nor a bare array): %w", err)
	}
	return events, nil
}

// ValidateCausal checks that the causally-annotated events across one or
// more trace blobs (e.g. the client's trace file and the server's per-job
// trace) form a single coherent tree: every trace_id is the same, every
// parent_id resolves to some span_id in the combined set (no orphan spans),
// and at least one root span (trace_id but no parent_id) exists. Each blob
// must independently pass ValidateTrace first.
func ValidateCausal(blobs ...[]byte) error {
	spans := make(map[string]bool)
	var traceID string
	type pref struct {
		blob, idx int
		parent    string
	}
	var parents []pref
	roots := 0
	total := 0
	for bi, blob := range blobs {
		if err := ValidateTrace(blob); err != nil {
			return fmt.Errorf("obs: blob %d: %w", bi, err)
		}
		events, err := parseTraceEvents(blob)
		if err != nil {
			return fmt.Errorf("obs: blob %d: %w", bi, err)
		}
		for i, ev := range events {
			args, _ := ev["args"].(map[string]any)
			if args == nil {
				continue
			}
			tid, hasTrace := args["trace_id"].(string)
			if !hasTrace {
				continue
			}
			total++
			if traceID == "" {
				traceID = tid
			} else if tid != traceID {
				return fmt.Errorf("obs: blob %d event %d: trace_id %s, want shared %s", bi, i, tid, traceID)
			}
			if sid, ok := args["span_id"].(string); ok {
				spans[sid] = true
			}
			if pid, ok := args["parent_id"].(string); ok {
				parents = append(parents, pref{blob: bi, idx: i, parent: pid})
			} else {
				roots++
			}
		}
	}
	if total == 0 {
		return fmt.Errorf("obs: no causally-annotated events found")
	}
	if roots == 0 {
		return fmt.Errorf("obs: no root span (every annotated event has a parent_id)")
	}
	for _, p := range parents {
		if !spans[p.parent] {
			return fmt.Errorf("obs: blob %d event %d: orphan span (parent_id %s not found in any blob)", p.blob, p.idx, p.parent)
		}
	}
	return nil
}

// FlightTrace renders a flight-recorder snapshot as a self-contained Chrome
// trace scoped to one job. Consecutive "transition" events become state
// spans (the state entered lasts until the next transition); the final
// transition and every other kind become instants. All causal annotations
// survive, so the result composes with other trace files under
// ValidateCausal. label names the single process track.
func FlightTrace(events []FlightEvent, pid int, label string) ([]byte, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("obs: no flight events")
	}
	epoch := events[0].At
	us := func(at time.Time) float64 {
		d := float64(at.Sub(epoch)) / float64(time.Microsecond)
		if d < 0 {
			return 0
		}
		return d
	}
	args := func(ev FlightEvent) map[string]any {
		a := make(map[string]any, len(ev.Attrs)+4)
		for k, v := range ev.Attrs {
			a[k] = v
		}
		a["seq"] = ev.Seq
		if ev.Trace != "" {
			a["trace_id"] = ev.Trace
		}
		if ev.Span != "" {
			a["span_id"] = ev.Span
		}
		if ev.Parent != "" {
			a["parent_id"] = ev.Parent
		}
		return a
	}
	out := []TraceEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": label},
	}}
	// Index of the next transition after each transition, for span ends.
	lastTransition := -1
	for i, ev := range events {
		if ev.Kind != "transition" {
			out = append(out, TraceEvent{
				Name: ev.Kind + ":" + ev.Name, Cat: "flight", Ph: "i",
				Ts: us(ev.At), Pid: pid, Tid: 0, S: "t", Args: args(ev),
			})
			continue
		}
		if lastTransition >= 0 {
			prev := events[lastTransition]
			out = append(out, TraceEvent{
				Name: prev.Name, Cat: "flight", Ph: "X",
				Ts: us(prev.At), Dur: us(ev.At) - us(prev.At),
				Pid: pid, Tid: 0, Args: args(prev),
			})
		}
		lastTransition = i
	}
	if lastTransition >= 0 {
		ev := events[lastTransition]
		out = append(out, TraceEvent{
			Name: ev.Name, Cat: "flight", Ph: "i",
			Ts: us(ev.At), Pid: pid, Tid: 0, S: "t", Args: args(ev),
		})
	}
	data, err := json.Marshal(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"})
	if err != nil {
		return nil, err
	}
	if err := ValidateTrace(data); err != nil {
		return nil, err
	}
	return data, nil
}
