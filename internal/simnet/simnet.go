// Package simnet provides an in-process "distributed" cluster substrate:
// a set of nodes exchanging messages through ports, with per-link byte
// accounting and optional bandwidth/latency throttling.
//
// The paper runs DataCutter over MPI on real nodes; here every node is a set
// of goroutines inside one process and every link is a channel. This keeps
// the programming model (explicit messages, no shared mutable state between
// nodes) while making tests hermetic. Byte accounting feeds the network-
// volume statistics used by the scheduler-affinity ablation and the in-core
// baseline comparison; throttling (off by default) lets examples exhibit
// communication/computation overlap on a human scale.
package simnet

import (
	"fmt"
	"sync"
	"time"
)

// Message is one unit of inter-node traffic.
type Message struct {
	From, To int
	Port     string
	Payload  any
	// Bytes is the accounted wire size. The payload is shared by reference
	// (same process), so the sender declares what the message would cost on
	// a real interconnect.
	Bytes int64
}

// Config tunes the cluster substrate.
type Config struct {
	// Nodes is the number of nodes; must be positive.
	Nodes int
	// QueueDepth is the per-port mailbox depth (default 1024).
	QueueDepth int
	// LinkBandwidth, if positive, throttles each send to Bytes/LinkBandwidth
	// seconds of real time (bytes per second).
	LinkBandwidth float64
	// Latency, if positive, is added to every send as real time.
	Latency time.Duration
}

// Cluster is a set of in-process nodes.
type Cluster struct {
	cfg   Config
	nodes []*Node

	mu        sync.Mutex
	linkBytes map[[2]int]int64
}

// New creates a cluster of cfg.Nodes nodes.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("simnet: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	c := &Cluster{cfg: cfg, linkBytes: make(map[[2]int]int64)}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{
			id:      i,
			cluster: c,
			ports:   make(map[string]chan Message),
		})
	}
	return c, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("simnet: node %d out of [0,%d)", i, len(c.nodes)))
	}
	return c.nodes[i]
}

// LinkBytes returns the bytes sent from node a to node b so far.
func (c *Cluster) LinkBytes(a, b int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.linkBytes[[2]int{a, b}]
}

// TotalNetworkBytes returns bytes that crossed node boundaries (a != b).
func (c *Cluster) TotalNetworkBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for k, v := range c.linkBytes {
		if k[0] != k[1] {
			total += v
		}
	}
	return total
}

// ResetStats zeroes the traffic counters.
func (c *Cluster) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.linkBytes = make(map[[2]int]int64)
}

// Transfer accounts (and, if configured, throttles) a point-to-point
// transfer without delivering a message. It is the ledger entry used by
// higher layers that move payloads by reference within the process.
func (c *Cluster) Transfer(from, to int, bytes int64) {
	if from != to {
		if c.cfg.Latency > 0 {
			time.Sleep(c.cfg.Latency)
		}
		if c.cfg.LinkBandwidth > 0 && bytes > 0 {
			time.Sleep(time.Duration(float64(bytes) / c.cfg.LinkBandwidth * float64(time.Second)))
		}
	}
	c.account(from, to, bytes)
}

func (c *Cluster) account(from, to int, bytes int64) {
	c.mu.Lock()
	c.linkBytes[[2]int{from, to}] += bytes
	c.mu.Unlock()
}

// Node is one member of the cluster. Ports must be opened before use;
// opening is typically done during setup, before any goroutines send.
type Node struct {
	id      int
	cluster *Cluster

	mu    sync.Mutex
	ports map[string]chan Message
}

// ID returns the node's index.
func (n *Node) ID() int { return n.id }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Open creates (or returns) the mailbox for a named port.
func (n *Node) Open(port string) chan Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch, ok := n.ports[port]
	if !ok {
		ch = make(chan Message, n.cluster.cfg.QueueDepth)
		n.ports[port] = ch
	}
	return ch
}

// Close closes a port's mailbox, releasing receivers blocked on it.
func (n *Node) Close(port string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ch, ok := n.ports[port]; ok {
		close(ch)
		delete(n.ports, port)
	}
}

// Send delivers a message to (to, port). It blocks if the destination
// mailbox is full — this models finite network buffering and provides
// backpressure, exactly the property filter-stream pipelines rely on.
func (n *Node) Send(to int, port string, payload any, bytes int64) {
	dst := n.cluster.Node(to)
	ch := dst.Open(port)
	cfg := n.cluster.cfg
	if to != n.id {
		if cfg.Latency > 0 {
			time.Sleep(cfg.Latency)
		}
		if cfg.LinkBandwidth > 0 && bytes > 0 {
			time.Sleep(time.Duration(float64(bytes) / cfg.LinkBandwidth * float64(time.Second)))
		}
	}
	n.cluster.account(n.id, to, bytes)
	ch <- Message{From: n.id, To: to, Port: port, Payload: payload, Bytes: bytes}
}

// Recv blocks until a message arrives on port. ok is false if the port was
// closed and drained.
func (n *Node) Recv(port string) (Message, bool) {
	ch := n.Open(port)
	m, ok := <-ch
	return m, ok
}

// Barrier is a reusable synchronization point for a fixed set of parties.
type Barrier struct {
	n  int
	mu sync.Mutex
	c  *sync.Cond
	// count of arrived parties in the current generation.
	count int
	gen   int
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: barrier size %d", n))
	}
	b := &Barrier{n: n}
	b.c = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait for this generation.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.c.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.c.Wait()
	}
	b.mu.Unlock()
}
