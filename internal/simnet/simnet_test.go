package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	c, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Node(0).Send(1, "data", "hello", 5)
	m, ok := c.Node(1).Recv("data")
	if !ok {
		t.Fatal("port closed unexpectedly")
	}
	if m.Payload.(string) != "hello" || m.From != 0 || m.To != 1 || m.Bytes != 5 {
		t.Fatalf("message = %+v", m)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
}

func TestPortsAreIndependent(t *testing.T) {
	c, _ := New(Config{Nodes: 1})
	n := c.Node(0)
	n.Send(0, "a", 1, 0)
	n.Send(0, "b", 2, 0)
	mb, _ := n.Recv("b")
	ma, _ := n.Recv("a")
	if ma.Payload.(int) != 1 || mb.Payload.(int) != 2 {
		t.Fatalf("got %v %v", ma.Payload, mb.Payload)
	}
}

func TestByteAccounting(t *testing.T) {
	c, _ := New(Config{Nodes: 3})
	c.Node(0).Send(1, "p", nil, 100)
	c.Node(0).Send(1, "p", nil, 50)
	c.Node(1).Send(2, "p", nil, 10)
	c.Node(0).Send(0, "p", nil, 999) // local, not network traffic
	if got := c.LinkBytes(0, 1); got != 150 {
		t.Errorf("LinkBytes(0,1) = %d, want 150", got)
	}
	if got := c.TotalNetworkBytes(); got != 160 {
		t.Errorf("TotalNetworkBytes = %d, want 160", got)
	}
	c.ResetStats()
	if got := c.TotalNetworkBytes(); got != 0 {
		t.Errorf("after reset: %d", got)
	}
}

func TestCloseReleasesReceiver(t *testing.T) {
	c, _ := New(Config{Nodes: 1})
	n := c.Node(0)
	n.Open("p")
	done := make(chan bool)
	go func() {
		_, ok := n.Recv("p")
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	n.Close("p")
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned ok=true on closed port")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestManySendersOneReceiver(t *testing.T) {
	const nodes, perSender = 8, 100
	c, _ := New(Config{Nodes: nodes})
	var wg sync.WaitGroup
	for i := 1; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				c.Node(i).Send(0, "sink", j, 8)
			}
		}(i)
	}
	var got int64
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for k := 0; k < (nodes-1)*perSender; k++ {
			if _, ok := c.Node(0).Recv("sink"); ok {
				atomic.AddInt64(&got, 1)
			}
		}
	}()
	wg.Wait()
	rg.Wait()
	if got != (nodes-1)*perSender {
		t.Fatalf("received %d, want %d", got, (nodes-1)*perSender)
	}
	if c.TotalNetworkBytes() != int64((nodes-1)*perSender*8) {
		t.Fatalf("network bytes = %d", c.TotalNetworkBytes())
	}
}

func TestBandwidthThrottleSlowsTransfers(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100ms. Allow broad margins for CI noise.
	c, _ := New(Config{Nodes: 2, LinkBandwidth: 10 << 20})
	start := time.Now()
	c.Node(0).Send(1, "p", nil, 1<<20)
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Fatalf("throttled send took %v, want >= ~100ms", elapsed)
	}
}

func TestLocalSendsAreNotThrottled(t *testing.T) {
	c, _ := New(Config{Nodes: 1, LinkBandwidth: 1, Latency: time.Hour})
	start := time.Now()
	c.Node(0).Send(0, "p", nil, 1<<30)
	if time.Since(start) > time.Second {
		t.Fatal("local send was throttled")
	}
}

func TestBarrier(t *testing.T) {
	const n = 5
	b := NewBarrier(n)
	var phase int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := int32(1); p <= 3; p++ {
				b.Wait()
				// After the barrier, every party must observe phase >= p-1
				// having been fully published by the slowest party.
				atomic.CompareAndSwapInt32(&phase, p-1, p)
				b.Wait()
				if got := atomic.LoadInt32(&phase); got != p {
					t.Errorf("phase = %d, want %d", got, p)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestBarrierSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for barrier size 0")
		}
	}()
	NewBarrier(0)
}

func TestNodeOutOfRangePanics(t *testing.T) {
	c, _ := New(Config{Nodes: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	c.Node(2)
}
