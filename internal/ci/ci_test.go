package ci

import (
	"math"
	"testing"

	"dooc/internal/lanczos"
)

func TestSingleParticleStates(t *testing.T) {
	// Shell 0: l=0, j=1/2, m=±1/2 -> 2 states. Shell 1: l=1, j=3/2 (4) and
	// j=1/2 (2) -> 6 states. Matches (N+1)(N+2).
	sp := SingleParticleStates(2)
	counts := map[int]int{}
	for _, s := range sp {
		counts[s.N]++
		if s.J2 <= 0 || s.M2 < -s.J2 || s.M2 > s.J2 || (s.M2-s.J2)%2 != 0 {
			t.Fatalf("bad state %+v", s)
		}
		if s.L > s.N || (s.N-s.L)%2 != 0 {
			t.Fatalf("bad l for %+v", s)
		}
	}
	for n := 0; n <= 2; n++ {
		if counts[n] != ShellDegeneracy(n) {
			t.Errorf("shell %d has %d states, want %d", n, counts[n], ShellDegeneracy(n))
		}
	}
}

func TestMinQuanta(t *testing.T) {
	// 2 particles fill shell 0 (quanta 0); the 3rd goes to shell 1.
	if got := minQuanta(2); got != 0 {
		t.Errorf("minQuanta(2) = %d", got)
	}
	if got := minQuanta(3); got != 1 {
		t.Errorf("minQuanta(3) = %d", got)
	}
	// 2 in shell 0 + 6 in shell 1 = 8 particles, quanta 6; 9th adds 2.
	if got := minQuanta(8); got != 6 {
		t.Errorf("minQuanta(8) = %d", got)
	}
	if got := minQuanta(9); got != 8 {
		t.Errorf("minQuanta(9) = %d", got)
	}
}

func TestBuildBasisInvariants(t *testing.T) {
	for _, nmax := range []int{0, 1, 2} {
		b, err := BuildBasis(BasisConfig{A: 3, Nmax: nmax, M2: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.CheckDeterminants(); err != nil {
			t.Fatalf("Nmax=%d: %v", nmax, err)
		}
		if b.Dim() == 0 {
			t.Fatalf("Nmax=%d: empty basis", nmax)
		}
	}
}

func TestBasisGrowsWithNmax(t *testing.T) {
	var dims []int
	for _, nmax := range []int{0, 1, 2, 3} {
		b, err := BuildBasis(BasisConfig{A: 3, Nmax: nmax, M2: 1})
		if err != nil {
			t.Fatal(err)
		}
		dims = append(dims, b.Dim())
	}
	for i := 1; i < len(dims); i++ {
		if dims[i] <= dims[i-1] {
			t.Fatalf("dimension not growing: %v", dims)
		}
	}
	// The paper's Section II: exponential growth in Nmax. Check the fitted
	// log-slope is decidedly positive.
	rows, err := ToyScaling(3, 1, []int{0, 1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate := expGrowthRate(rows); rate < 0.5 {
		t.Errorf("growth rate %v too small for exponential growth", rate)
	}
}

func TestParityRestriction(t *testing.T) {
	all, err := BuildBasis(BasisConfig{A: 2, Nmax: 2, M2: 0})
	if err != nil {
		t.Fatal(err)
	}
	plus, err := BuildBasis(BasisConfig{A: 2, Nmax: 2, M2: 0, Parity: 1})
	if err != nil {
		t.Fatal(err)
	}
	minus, err := BuildBasis(BasisConfig{A: 2, Nmax: 2, M2: 0, Parity: -1})
	if err != nil {
		t.Fatal(err)
	}
	if plus.Dim()+minus.Dim() != all.Dim() {
		t.Fatalf("parity split %d + %d != %d", plus.Dim(), minus.Dim(), all.Dim())
	}
	if plus.Dim() == 0 || minus.Dim() == 0 {
		t.Fatal("a parity sector is empty")
	}
}

func TestBuildBasisValidation(t *testing.T) {
	if _, err := BuildBasis(BasisConfig{A: 0, Nmax: 1}); err == nil {
		t.Error("A=0 accepted")
	}
	if _, err := BuildBasis(BasisConfig{A: 1, Nmax: -1}); err == nil {
		t.Error("negative Nmax accepted")
	}
	if _, err := BuildBasis(BasisConfig{A: 1, Nmax: 1, Parity: 2}); err == nil {
		t.Error("bad parity accepted")
	}
}

func TestDifferBy(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 4}, 1},
		{[]int32{1, 2, 3}, []int32{4, 5, 6}, 3},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 1},
		{[]int32{1, 5, 9}, []int32{1, 6, 9}, 1},
	}
	for _, c := range cases {
		if got := DifferBy(c.a, c.b); got != c.want {
			t.Errorf("DifferBy(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := DifferBy(c.b, c.a); got != c.want {
			t.Errorf("DifferBy not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestHamiltonianStructure(t *testing.T) {
	b, err := BuildBasis(BasisConfig{A: 3, Nmax: 2, M2: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Hamiltonian(b, HamiltonianConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.IsSymmetric(0) {
		t.Fatal("Hamiltonian not symmetric")
	}
	// 2-body rule: H[i][j] == 0 whenever determinants differ by > 2.
	d := b.Dim()
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			diff := DifferBy(b.Dets[i], b.Dets[j])
			v := h.At(i, j)
			if diff > 2 && v != 0 {
				t.Fatalf("H[%d][%d] = %v but determinants differ by %d", i, j, v, diff)
			}
			if diff == 0 && i == j && v == 0 {
				t.Fatalf("zero diagonal at %d", i)
			}
		}
	}
}

func TestHamiltonianDeterministic(t *testing.T) {
	b, _ := BuildBasis(BasisConfig{A: 2, Nmax: 2, M2: 0})
	h1, err := Hamiltonian(b, HamiltonianConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hamiltonian(b, HamiltonianConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if h1.NNZ() != h2.NNZ() {
		t.Fatal("same seed produced different sparsity")
	}
	for i := range h1.Val {
		if h1.Val[i] != h2.Val[i] {
			t.Fatal("same seed produced different values")
		}
	}
	h3, err := Hamiltonian(b, HamiltonianConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range h1.Val {
		if i < len(h3.Val) && h1.Val[i] != h3.Val[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical values")
	}
}

func TestHamiltonianSparsityShrinksWithNmax(t *testing.T) {
	rows, err := ToyScaling(3, 1, []int{1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Density >= rows[i-1].Density {
			t.Fatalf("density not shrinking: %+v", rows)
		}
	}
}

func TestLanczosOnToyHamiltonian(t *testing.T) {
	// The full Section II pipeline at toy scale: build a CI Hamiltonian and
	// find its lowest eigenvalues with Lanczos; cross-check against Jacobi.
	b, err := BuildBasis(BasisConfig{A: 2, Nmax: 3, M2: 0})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Hamiltonian(b, HamiltonianConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	d := b.Dim()
	if d < 10 || d > 400 {
		t.Fatalf("unexpected toy dimension %d", d)
	}
	res, err := lanczos.Solve(lanczos.MatrixOperator{M: h}, lanczos.Options{Steps: d, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lanczos.JacobiEigen(h.Dense(), d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(res.Eigenvalues[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Fatalf("eig[%d]: %v vs %v", i, res.Eigenvalues[i], want[i])
		}
	}
	// The ground state sits near the HO scale estimate.
	scale := b.GroundStateEnergyScale(10)
	if math.Abs(res.Eigenvalues[0])+1 > 10*scale+100 {
		t.Fatalf("ground state %v implausible vs scale %v", res.Eigenvalues[0], scale)
	}
}

func TestReferenceTablesIntact(t *testing.T) {
	if len(ReferenceTable1) != 4 || len(ReferenceTable2) != 4 {
		t.Fatal("reference tables must have 4 rows")
	}
	for i, r := range ReferenceTable1 {
		if r.Dim <= 0 || r.NNZ <= 0 || r.Np <= 0 {
			t.Fatalf("row %d invalid: %+v", i, r)
		}
		if i > 0 && (r.Dim <= ReferenceTable1[i-1].Dim || r.Np <= ReferenceTable1[i-1].Np) {
			t.Fatalf("table 1 rows not monotone at %d", i)
		}
	}
	for i, r := range ReferenceTable2 {
		if i > 0 && r.CommFraction <= ReferenceTable2[i-1].CommFraction {
			t.Fatalf("comm fraction not increasing at row %d", i)
		}
	}
}

// TestRequiredProcessorsMatchesTable1: the memory-driven processor-count
// rule reproduces the published np within 20% for every row, using the
// paper's own avg local-matrix sizes and ~8 bytes per stored element.
func TestRequiredProcessorsMatchesTable1(t *testing.T) {
	for _, r := range ReferenceTable1 {
		got := RequiredProcessors(r.NNZ, 8, r.HLocalMB)
		rel := math.Abs(float64(got-r.Np)) / float64(r.Np)
		if rel > 0.20 {
			t.Errorf("%s: modeled np=%d, published %d (%.0f%% off)", r.Name, got, r.Np, 100*rel)
		}
	}
	if RequiredProcessors(0, 8, 800) != 0 {
		t.Error("degenerate input not rejected")
	}
}
