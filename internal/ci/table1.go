package ci

// Table1Row is one row of the paper's Table I: problem characteristics of
// ¹⁰B nuclear structure calculations with MFDn on Hopper.
type Table1Row struct {
	Name string
	// Nmax and Mj are the truncation parameters.
	Nmax int
	Mj   int
	// Dim is the Hamiltonian dimension D.
	Dim float64
	// NNZ is the number of non-zero matrix elements.
	NNZ float64
	// Np is the number of processors the in-core run needs.
	Np int
	// VLocalMB and HLocalMB are the average local vector / matrix sizes.
	VLocalMB float64
	HLocalMB float64
}

// ReferenceTable1 reproduces the paper's Table I verbatim: these are the
// published problem characteristics our synthetic workloads are calibrated
// against (the paper itself matches its random matrices to test_1128 and
// test_4560).
var ReferenceTable1 = []Table1Row{
	{Name: "test_276", Nmax: 7, Mj: 0, Dim: 4.66e7, NNZ: 2.81e10, Np: 276, VLocalMB: 8.8, HLocalMB: 880},
	{Name: "test_1128", Nmax: 8, Mj: 1, Dim: 1.60e8, NNZ: 1.24e11, Np: 1128, VLocalMB: 13.6, HLocalMB: 880},
	{Name: "test_4560", Nmax: 9, Mj: 2, Dim: 4.82e8, NNZ: 4.62e11, Np: 4560, VLocalMB: 20.4, HLocalMB: 800},
	{Name: "test_18336", Nmax: 10, Mj: 3, Dim: 1.30e9, NNZ: 1.51e12, Np: 18336, VLocalMB: 27.2, HLocalMB: 750},
}

// Table2Row is one row of the paper's Table II: measured performance of 99
// Lanczos iterations of MFDn on Hopper (the in-core baseline DOoC is
// compared against).
type Table2Row struct {
	Name string
	// TotalSeconds is t_total for 99 iterations.
	TotalSeconds float64
	// CommFraction is t_comm/t_total.
	CommFraction float64
	// CPUHoursPerIter is the CPU-hour cost of one Lanczos iteration.
	CPUHoursPerIter float64
}

// RequiredProcessors models the paper's processor-count selection rule:
// "Test cases were selected such that each calculation is performed on the
// minimum number of processors that matches the memory needs of the
// calculation." With ~1 GB of usable memory per Hopper core and a target
// local matrix share of hLocalMB megabytes per core, the rule is simply
// total matrix bytes / per-core share, rounded up.
func RequiredProcessors(nnz float64, bytesPerNNZ float64, hLocalMB float64) int {
	if nnz <= 0 || bytesPerNNZ <= 0 || hLocalMB <= 0 {
		return 0
	}
	total := nnz * bytesPerNNZ
	perCore := hLocalMB * 1e6
	np := int(total/perCore) + 1
	return np
}

// ReferenceTable2 reproduces the paper's Table II verbatim.
var ReferenceTable2 = []Table2Row{
	{Name: "test_276", TotalSeconds: 244, CommFraction: 0.34, CPUHoursPerIter: 0.19},
	{Name: "test_1128", TotalSeconds: 543, CommFraction: 0.60, CPUHoursPerIter: 1.72},
	{Name: "test_4560", TotalSeconds: 759, CommFraction: 0.67, CPUHoursPerIter: 9.70},
	{Name: "test_18336", TotalSeconds: 1870, CommFraction: 0.86, CPUHoursPerIter: 96.2},
}
