package ci

import (
	"math"
	"testing"

	"dooc/internal/lanczos"
)

func TestTwoSpeciesBasisInvariants(t *testing.T) {
	cfg := TwoSpeciesConfig{Z: 2, N: 2, Nmax: 1, M2: 0}
	b, err := BuildTwoSpeciesBasis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim() == 0 {
		t.Fatal("empty basis")
	}
	budget := b.MinQuanta + cfg.Nmax
	for i, pair := range b.Pairs {
		pd, nd := b.Protons[pair[0]], b.Neutrons[pair[1]]
		if pd.quanta+nd.quanta > budget {
			t.Fatalf("pair %d exceeds quanta budget", i)
		}
		if pd.m2+nd.m2 != cfg.M2 {
			t.Fatalf("pair %d has M2 %d, want %d", i, pd.m2+nd.m2, cfg.M2)
		}
		if len(pd.idx) != cfg.Z || len(nd.idx) != cfg.N {
			t.Fatalf("pair %d particle counts wrong", i)
		}
	}
}

func TestTwoSpeciesMinQuanta(t *testing.T) {
	// 2 protons fill shell 0, 2 neutrons fill shell 0 independently
	// (different species are distinguishable): combined floor is 0.
	b, err := BuildTwoSpeciesBasis(TwoSpeciesConfig{Z: 2, N: 2, Nmax: 0, M2: 0})
	if err != nil {
		t.Fatal(err)
	}
	if b.MinQuanta != 0 {
		t.Fatalf("MinQuanta = %d", b.MinQuanta)
	}
	// At Nmax=0 with M2=0 the two species both sit in shell 0: exactly one
	// configuration each species (both m=±1/2 filled) -> one pair.
	if b.Dim() != 1 {
		t.Fatalf("Dim = %d, want 1 (closed shells)", b.Dim())
	}
}

func TestTwoSpeciesGrowsWithNmax(t *testing.T) {
	var dims []int
	for _, nmax := range []int{0, 1, 2} {
		b, err := BuildTwoSpeciesBasis(TwoSpeciesConfig{Z: 2, N: 2, Nmax: nmax, M2: 0})
		if err != nil {
			t.Fatal(err)
		}
		dims = append(dims, b.Dim())
	}
	if !(dims[0] < dims[1] && dims[1] < dims[2]) {
		t.Fatalf("dims = %v, want strictly growing", dims)
	}
}

func TestTwoSpeciesParitySplit(t *testing.T) {
	cfg := TwoSpeciesConfig{Z: 2, N: 1, Nmax: 1, M2: 1}
	all, err := BuildTwoSpeciesBasis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parity = 1
	plus, err := BuildTwoSpeciesBasis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parity = -1
	minus, err := BuildTwoSpeciesBasis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plus.Dim()+minus.Dim() != all.Dim() {
		t.Fatalf("parity split %d+%d != %d", plus.Dim(), minus.Dim(), all.Dim())
	}
}

func TestTwoSpeciesValidation(t *testing.T) {
	if _, err := BuildTwoSpeciesBasis(TwoSpeciesConfig{Z: 0, N: 1, Nmax: 1}); err == nil {
		t.Error("Z=0 accepted")
	}
	if _, err := BuildTwoSpeciesBasis(TwoSpeciesConfig{Z: 1, N: 1, Nmax: -1}); err == nil {
		t.Error("negative Nmax accepted")
	}
	if _, err := BuildTwoSpeciesBasis(TwoSpeciesConfig{Z: 1, N: 1, Nmax: 1, Parity: 3}); err == nil {
		t.Error("bad parity accepted")
	}
}

func TestTwoSpeciesHamiltonianStructure(t *testing.T) {
	b, err := BuildTwoSpeciesBasis(TwoSpeciesConfig{Z: 2, N: 2, Nmax: 1, M2: 0})
	if err != nil {
		t.Fatal(err)
	}
	h, err := TwoSpeciesHamiltonian(b, HamiltonianConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.IsSymmetric(0) {
		t.Fatal("not symmetric")
	}
	d := b.Dim()
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if b.TwoSpeciesDiffer(i, j) > 2 && h.At(i, j) != 0 {
				t.Fatalf("H[%d][%d] nonzero across >2 differences", i, j)
			}
		}
	}
}

func TestTwoSpeciesDifferCountsBothSpecies(t *testing.T) {
	b, err := BuildTwoSpeciesBasis(TwoSpeciesConfig{Z: 2, N: 2, Nmax: 2, M2: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Find two states sharing the proton det but with different neutron
	// dets, and vice versa; differ counts must come from the right species.
	foundN, foundP := false, false
	for i := 0; i < b.Dim() && !(foundN && foundP); i++ {
		for j := i + 1; j < b.Dim(); j++ {
			if b.Pairs[i][0] == b.Pairs[j][0] && b.Pairs[i][1] != b.Pairs[j][1] {
				d := b.TwoSpeciesDiffer(i, j)
				want := DifferBy(b.Neutrons[b.Pairs[i][1]].idx, b.Neutrons[b.Pairs[j][1]].idx)
				if d != want {
					t.Fatalf("neutron-only differ = %d, want %d", d, want)
				}
				foundN = true
			}
			if b.Pairs[i][1] == b.Pairs[j][1] && b.Pairs[i][0] != b.Pairs[j][0] {
				d := b.TwoSpeciesDiffer(i, j)
				if d > 2 {
					continue // early-exit path returns partial count > 2; fine
				}
				want := DifferBy(b.Protons[b.Pairs[i][0]].idx, b.Protons[b.Pairs[j][0]].idx)
				if d != want {
					t.Fatalf("proton-only differ = %d, want %d", d, want)
				}
				foundP = true
			}
		}
	}
	if !foundN || !foundP {
		t.Fatal("test did not exercise both species")
	}
}

func TestTwoSpeciesLanczosGroundState(t *testing.T) {
	// A miniature "boron-like" system: 2 protons + 1 neutron, odd parity.
	b, err := BuildTwoSpeciesBasis(TwoSpeciesConfig{Z: 2, N: 1, Nmax: 2, M2: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := TwoSpeciesHamiltonian(b, HamiltonianConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d := b.Dim()
	if d < 5 || d > 2000 {
		t.Fatalf("dim = %d out of expected toy range", d)
	}
	steps := d
	if steps > 80 {
		steps = 80
	}
	res, err := lanczos.Solve(lanczos.MatrixOperator{M: h}, lanczos.Options{Steps: steps, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 120 {
		want, err := lanczos.JacobiEigen(h.Dense(), d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Eigenvalues[0]-want[0]) > 1e-6*(1+math.Abs(want[0])) {
			t.Fatalf("ground state %v vs dense %v", res.Eigenvalues[0], want[0])
		}
	}
}
