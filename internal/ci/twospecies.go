package ci

import (
	"fmt"

	"dooc/internal/sparse"
)

// Two-species Configuration Interaction: real nuclei have protons AND
// neutrons (¹⁰B has 5 of each), and MFDn's basis is a product of proton and
// neutron Slater determinants coupled by total Mj and total quanta. This
// file extends the toy model accordingly.

// TwoSpeciesConfig truncates a proton-neutron basis.
type TwoSpeciesConfig struct {
	// Z and N are the proton and neutron counts.
	Z, N int
	// Nmax bounds the total HO quanta above the combined minimal
	// configuration (protons and neutrons fill independently, as in MFDn).
	Nmax int
	// M2 is twice the required total Mj.
	M2 int
	// Parity restricts total parity: +1, -1, or 0 for both.
	Parity int
}

// speciesDet is one species' determinant with its aggregates.
type speciesDet struct {
	idx    []int32
	quanta int
	m2     int
	parity int
}

// TwoSpeciesBasis is the enumerated proton-neutron product basis.
type TwoSpeciesBasis struct {
	Config TwoSpeciesConfig
	// SP is the shared single-particle space.
	SP []SPState
	// Protons and Neutrons are the per-species candidate determinants.
	Protons, Neutrons []speciesDet
	// Pairs are (proton index, neutron index) combinations satisfying the
	// coupled truncation; the basis dimension is len(Pairs).
	Pairs [][2]int32
	// MinQuanta is the combined Pauli floor.
	MinQuanta int
}

// Dim returns the many-body dimension.
func (b *TwoSpeciesBasis) Dim() int { return len(b.Pairs) }

// enumerateSpecies lists all determinants of `count` particles with quanta
// at most budget.
func enumerateSpecies(sp []SPState, count, budget int) []speciesDet {
	var out []speciesDet
	det := make([]int32, 0, count)
	var rec func(start, quanta, m2, parity int)
	rec = func(start, quanta, m2, parity int) {
		if len(det) == count {
			out = append(out, speciesDet{
				idx:    append([]int32(nil), det...),
				quanta: quanta, m2: m2, parity: parity,
			})
			return
		}
		remaining := count - len(det)
		for i := start; i <= len(sp)-remaining; i++ {
			q := quanta + sp[i].N
			if q > budget {
				continue
			}
			det = append(det, int32(i))
			rec(i+1, q, m2+sp[i].M2, parity*sp[i].Parity())
			det = det[:len(det)-1]
		}
	}
	rec(0, 0, 0, 1)
	return out
}

// BuildTwoSpeciesBasis enumerates the coupled proton-neutron basis.
func BuildTwoSpeciesBasis(cfg TwoSpeciesConfig) (*TwoSpeciesBasis, error) {
	if cfg.Z <= 0 || cfg.N <= 0 {
		return nil, fmt.Errorf("ci: need positive proton and neutron counts, got Z=%d N=%d", cfg.Z, cfg.N)
	}
	if cfg.Nmax < 0 {
		return nil, fmt.Errorf("ci: negative Nmax %d", cfg.Nmax)
	}
	if cfg.Parity != 0 && cfg.Parity != 1 && cfg.Parity != -1 {
		return nil, fmt.Errorf("ci: parity must be -1, 0 or +1, got %d", cfg.Parity)
	}
	minQ := minQuanta(cfg.Z) + minQuanta(cfg.N)
	budget := minQ + cfg.Nmax
	sp := SingleParticleStates(budget)
	b := &TwoSpeciesBasis{
		Config:    cfg,
		SP:        sp,
		MinQuanta: minQ,
		Protons:   enumerateSpecies(sp, cfg.Z, budget),
		Neutrons:  enumerateSpecies(sp, cfg.N, budget),
	}
	// Join: group neutron dets by m2 for the coupled Mj constraint.
	byM2 := map[int][]int32{}
	for i, nd := range b.Neutrons {
		byM2[nd.m2] = append(byM2[nd.m2], int32(i))
	}
	for pi, pd := range b.Protons {
		for _, ni := range byM2[cfg.M2-pd.m2] {
			nd := b.Neutrons[ni]
			if pd.quanta+nd.quanta > budget {
				continue
			}
			if cfg.Parity != 0 && pd.parity*nd.parity != cfg.Parity {
				continue
			}
			b.Pairs = append(b.Pairs, [2]int32{int32(pi), ni})
		}
	}
	return b, nil
}

// TwoSpeciesDiffer counts the total single-particle differences between two
// coupled states: proton differences plus neutron differences.
func (b *TwoSpeciesBasis) TwoSpeciesDiffer(i, j int) int {
	pi, ni := b.Pairs[i][0], b.Pairs[i][1]
	pj, nj := b.Pairs[j][0], b.Pairs[j][1]
	d := 0
	if pi != pj {
		d += DifferBy(b.Protons[pi].idx, b.Protons[pj].idx)
	}
	if d > 2 {
		return d
	}
	if ni != nj {
		d += DifferBy(b.Neutrons[ni].idx, b.Neutrons[nj].idx)
	}
	return d
}

// energyOf returns the HO energy of coupled state i in units of ħω.
func (b *TwoSpeciesBasis) energyOf(i int) float64 {
	pd := b.Protons[b.Pairs[i][0]]
	nd := b.Neutrons[b.Pairs[i][1]]
	return float64(pd.quanta+nd.quanta) + 1.5*float64(b.Config.Z+b.Config.N)
}

// TwoSpeciesHamiltonian builds the sparse symmetric Hamiltonian with the
// 2-body rule over the coupled basis: entries are non-zero only when the
// two states differ in at most two single-particle states counted across
// both species (a 2-body force can move a proton pair, a neutron pair, or
// one of each).
func TwoSpeciesHamiltonian(b *TwoSpeciesBasis, cfg HamiltonianConfig) (*sparse.CSR, error) {
	if cfg.Strength == 0 {
		cfg.Strength = 1
	}
	if cfg.HbarOmega == 0 {
		cfg.HbarOmega = 10
	}
	d := b.Dim()
	if d == 0 {
		return nil, fmt.Errorf("ci: empty two-species basis")
	}
	var ts []sparse.Triplet
	for i := 0; i < d; i++ {
		ts = append(ts, sparse.Triplet{
			Row: i, Col: i,
			Val: cfg.HbarOmega*b.energyOf(i) + cfg.Strength*hashUnit(cfg.Seed, i, i),
		})
		for j := i + 1; j < d; j++ {
			if b.TwoSpeciesDiffer(i, j) > 2 {
				continue
			}
			v := cfg.Strength * hashUnit(cfg.Seed, i, j)
			ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: v}, sparse.Triplet{Row: j, Col: i, Val: v})
		}
	}
	return sparse.FromTriplets(d, d, ts)
}
