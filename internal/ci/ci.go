// Package ci implements a toy Configuration Interaction (CI) model of the
// nuclear structure problem that motivates the paper (Section II).
//
// The real MFDn code expands the nuclear many-body Schrödinger equation in a
// basis of Slater determinants of harmonic-oscillator (HO) single-particle
// states, truncated by the parameter Nmax (total HO quanta above the
// minimum) and the magnetic projection Mj. The Hamiltonian in this basis is
// sparse and symmetric: with a 2-body interaction, H[i][j] is non-zero only
// when determinants i and j differ in at most two single-particle states.
//
// This package reproduces that *structure* end to end at laptop scale:
// HO single-particle states with (n, l, j, m) quantum numbers, Slater
// determinant enumeration under (Nmax, Mj, parity) truncation, and a
// deterministic pseudo-random 2-body Hamiltonian with the correct sparsity
// rule. Matrix *values* are synthetic — the paper's evaluation itself uses
// randomly generated matrices calibrated to MFDn's dimensions (Section V),
// so a physically calibrated interaction is out of scope by the paper's own
// standard. Exact MFDn dimensions from the paper are kept as reference data
// (Table I) in table1.go.
package ci

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"dooc/internal/sparse"
)

// SPState is a harmonic-oscillator single-particle state. Angular momenta
// are stored doubled (J2 = 2j, M2 = 2m) so half-integers stay integral.
type SPState struct {
	// N is the HO major-shell quantum number (energy N + 3/2 in ħω).
	N int
	// L is the orbital angular momentum (N, N-2, ... >= 0).
	L int
	// J2 is twice the total angular momentum j = l ± 1/2.
	J2 int
	// M2 is twice the projection m = -j..j.
	M2 int
}

// Energy returns the state's HO energy in units of ħω.
func (s SPState) Energy() float64 { return float64(s.N) + 1.5 }

// Parity returns the state's parity (-1)^l.
func (s SPState) Parity() int {
	if s.L%2 == 0 {
		return 1
	}
	return -1
}

// SingleParticleStates enumerates all HO states with shell N <= maxShell in
// a fixed deterministic order (by N, then l descending, then j, then m).
func SingleParticleStates(maxShell int) []SPState {
	var out []SPState
	for n := 0; n <= maxShell; n++ {
		for l := n; l >= 0; l -= 2 {
			for _, j2 := range []int{2*l + 1, 2*l - 1} {
				if j2 <= 0 {
					continue
				}
				for m2 := -j2; m2 <= j2; m2 += 2 {
					out = append(out, SPState{N: n, L: l, J2: j2, M2: m2})
				}
			}
		}
	}
	return out
}

// ShellDegeneracy returns the number of states in shell N: (N+1)(N+2).
func ShellDegeneracy(n int) int { return (n + 1) * (n + 2) }

// BasisConfig truncates the many-body basis.
type BasisConfig struct {
	// A is the particle count (single species in the toy model).
	A int
	// Nmax is the allowed total HO quanta above the minimal configuration.
	Nmax int
	// M2 is twice the required total magnetic projection Mj.
	M2 int
	// Parity restricts total parity: +1, -1, or 0 for both.
	Parity int
}

// Basis is an enumerated set of Slater determinants.
type Basis struct {
	Config BasisConfig
	// SP is the single-particle space.
	SP []SPState
	// Dets lists determinants as strictly increasing SP indices.
	Dets [][]int32
	// MinQuanta is the Pauli-minimal total quanta for A particles.
	MinQuanta int
}

// Dim returns the basis dimension D.
func (b *Basis) Dim() int { return len(b.Dets) }

// minQuanta computes the minimal total HO quanta for a particles by filling
// shells bottom-up.
func minQuanta(a int) int {
	total := 0
	n := 0
	for a > 0 {
		take := ShellDegeneracy(n)
		if take > a {
			take = a
		}
		total += take * n
		a -= take
		n++
	}
	return total
}

// BuildBasis enumerates all Slater determinants of cfg.A particles with
// total quanta <= MinQuanta + Nmax, total M2 equal to cfg.M2, and matching
// parity. The search is depth-first with quanta pruning.
func BuildBasis(cfg BasisConfig) (*Basis, error) {
	if cfg.A <= 0 {
		return nil, fmt.Errorf("ci: need at least one particle, got %d", cfg.A)
	}
	if cfg.Nmax < 0 {
		return nil, fmt.Errorf("ci: negative Nmax %d", cfg.Nmax)
	}
	if cfg.Parity != 0 && cfg.Parity != 1 && cfg.Parity != -1 {
		return nil, fmt.Errorf("ci: parity must be -1, 0 or +1, got %d", cfg.Parity)
	}
	minQ := minQuanta(cfg.A)
	budget := minQ + cfg.Nmax
	// Any shell above the budget can never appear.
	sp := SingleParticleStates(budget)
	b := &Basis{Config: cfg, SP: sp, MinQuanta: minQ}

	det := make([]int32, 0, cfg.A)
	var rec func(start, quanta, m2 int)
	rec = func(start, quanta, m2 int) {
		if len(det) == cfg.A {
			if m2 != cfg.M2 {
				return
			}
			if cfg.Parity != 0 {
				par := 1
				for _, i := range det {
					par *= sp[i].Parity()
				}
				if par != cfg.Parity {
					return
				}
			}
			b.Dets = append(b.Dets, append([]int32(nil), det...))
			return
		}
		remaining := cfg.A - len(det)
		for i := start; i <= len(sp)-remaining; i++ {
			q := quanta + sp[i].N
			// Prune: the cheapest completion uses the smallest remaining
			// quanta, which is at least 0 each; tighter bound: states are
			// sorted by N, so all following states have N >= sp[i].N is not
			// guaranteed across l; use 0 as the safe lower bound.
			if q > budget {
				continue
			}
			det = append(det, int32(i))
			rec(i+1, q, m2+sp[i].M2)
			det = det[:len(det)-1]
		}
	}
	rec(0, 0, 0)
	return b, nil
}

// DifferBy returns the number of single-particle states in which two
// determinants (strictly increasing index slices) differ: |a \ b|.
func DifferBy(a, b []int32) int {
	i, j, diff := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			diff++
			i++
		default:
			j++
		}
	}
	return diff + (len(a) - i)
}

// HamiltonianConfig controls matrix-element synthesis.
type HamiltonianConfig struct {
	// Seed makes the synthetic interaction deterministic.
	Seed int64
	// Strength scales off-diagonal elements (default 1).
	Strength float64
	// HbarOmega is the oscillator energy scale (default 10).
	HbarOmega float64
}

// Hamiltonian builds the sparse symmetric Hamiltonian over basis b with the
// 2-body sparsity rule: H[i][j] != 0 iff determinants i and j differ in at
// most 2 single-particle states. Diagonal entries are the HO energies plus
// a deterministic perturbation; off-diagonals are deterministic pseudo-
// random values damped by the quanta difference.
func Hamiltonian(b *Basis, cfg HamiltonianConfig) (*sparse.CSR, error) {
	if cfg.Strength == 0 {
		cfg.Strength = 1
	}
	if cfg.HbarOmega == 0 {
		cfg.HbarOmega = 10
	}
	d := b.Dim()
	if d == 0 {
		return nil, fmt.Errorf("ci: empty basis")
	}
	var ts []sparse.Triplet
	for i := 0; i < d; i++ {
		ei := 0.0
		for _, s := range b.Dets[i] {
			ei += b.SP[s].Energy()
		}
		ts = append(ts, sparse.Triplet{
			Row: i, Col: i,
			Val: cfg.HbarOmega*ei + cfg.Strength*hashUnit(cfg.Seed, i, i),
		})
		for j := i + 1; j < d; j++ {
			if DifferBy(b.Dets[i], b.Dets[j]) > 2 {
				continue
			}
			v := cfg.Strength * hashUnit(cfg.Seed, i, j)
			ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: v}, sparse.Triplet{Row: j, Col: i, Val: v})
		}
	}
	return sparse.FromTriplets(d, d, ts)
}

// hashUnit maps (seed, i, j) to a deterministic value in [-1, 1).
func hashUnit(seed int64, i, j int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d/%d", seed, i, j)
	u := h.Sum64() >> 11 // 53 significant bits
	return 2*float64(u)/float64(1<<53) - 1
}

// ScalingRow is one row of the toy-model growth study (the Table I analogue
// at laptop scale).
type ScalingRow struct {
	Nmax    int
	M2      int
	Dim     int
	NNZ     int64
	Density float64
}

// ToyScaling enumerates the toy model's dimension and Hamiltonian sparsity
// as Nmax grows — reproducing the exponential basis growth that forces
// MFDn out of core.
func ToyScaling(a int, m2 int, nmaxes []int, seed int64) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, nmax := range nmaxes {
		b, err := BuildBasis(BasisConfig{A: a, Nmax: nmax, M2: m2})
		if err != nil {
			return nil, err
		}
		if b.Dim() == 0 {
			rows = append(rows, ScalingRow{Nmax: nmax, M2: m2})
			continue
		}
		h, err := Hamiltonian(b, HamiltonianConfig{Seed: seed})
		if err != nil {
			return nil, err
		}
		d := b.Dim()
		rows = append(rows, ScalingRow{
			Nmax:    nmax,
			M2:      m2,
			Dim:     d,
			NNZ:     h.NNZ(),
			Density: float64(h.NNZ()) / (float64(d) * float64(d)),
		})
	}
	return rows, nil
}

// SortDets orders determinants lexicographically (stable basis order for
// reproducibility across runs).
func (b *Basis) SortDets() {
	sort.Slice(b.Dets, func(i, j int) bool {
		a, c := b.Dets[i], b.Dets[j]
		for k := 0; k < len(a) && k < len(c); k++ {
			if a[k] != c[k] {
				return a[k] < c[k]
			}
		}
		return len(a) < len(c)
	})
}

// GroundStateEnergyScale returns a rough magnitude estimate of the lowest
// eigenvalue (the filled-configuration HO energy), useful for sanity checks.
func (b *Basis) GroundStateEnergyScale(hbarOmega float64) float64 {
	if hbarOmega == 0 {
		hbarOmega = 10
	}
	return hbarOmega * (float64(b.MinQuanta) + 1.5*float64(b.Config.A))
}

// CheckDeterminants validates basis invariants (strictly increasing indices,
// quanta budget, M2). Used by tests and doocbench self-checks.
func (b *Basis) CheckDeterminants() error {
	budget := b.MinQuanta + b.Config.Nmax
	for di, det := range b.Dets {
		if len(det) != b.Config.A {
			return fmt.Errorf("ci: determinant %d has %d particles, want %d", di, len(det), b.Config.A)
		}
		q, m2 := 0, 0
		for k, idx := range det {
			if k > 0 && det[k-1] >= idx {
				return fmt.Errorf("ci: determinant %d not strictly increasing", di)
			}
			if int(idx) >= len(b.SP) {
				return fmt.Errorf("ci: determinant %d references state %d out of %d", di, idx, len(b.SP))
			}
			q += b.SP[idx].N
			m2 += b.SP[idx].M2
		}
		if q > budget {
			return fmt.Errorf("ci: determinant %d has %d quanta, budget %d", di, q, budget)
		}
		if m2 != b.Config.M2 {
			return fmt.Errorf("ci: determinant %d has M2=%d, want %d", di, m2, b.Config.M2)
		}
	}
	return nil
}

// expGrowthRate fits log(D) vs Nmax to confirm exponential growth in tests.
func expGrowthRate(rows []ScalingRow) float64 {
	var xs, ys []float64
	for _, r := range rows {
		if r.Dim > 0 {
			xs = append(xs, float64(r.Nmax))
			ys = append(ys, math.Log(float64(r.Dim)))
		}
	}
	if len(xs) < 2 {
		return 0
	}
	// Least-squares slope.
	n := float64(len(xs))
	var sx, sy, sxy, sxx float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
