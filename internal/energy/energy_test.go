package energy

import (
	"strings"
	"testing"

	"dooc/internal/devices"
	"dooc/internal/perfmodel"
)

func TestStudyShape(t *testing.T) {
	reports := Study()
	if len(reports) != 4 {
		t.Fatalf("%d reports", len(reports))
	}
	byName := map[string]Report{}
	for _, r := range reports {
		if r.KJPerIter <= 0 || r.PowerWatts <= 0 || r.IterSeconds <= 0 {
			t.Fatalf("degenerate report %+v", r)
		}
		switch {
		case strings.HasPrefix(r.Name, "testbed-36"):
			byName["t36"] = r
		case strings.HasPrefix(r.Name, "testbed-star"):
			byName["star"] = r
		case strings.HasPrefix(r.Name, "local-SSD"):
			byName["local"] = r
		case strings.HasPrefix(r.Name, "hopper"):
			byName["hopper"] = r
		}
	}
	// Section VI-B's argument, quantified: the star (9 nodes) uses less
	// energy than the 36-node run of the same problem, and moving the SSDs
	// onto the compute nodes cuts it further (no always-on I/O nodes, no
	// InfiniBand hop, faster run).
	if byName["star"].KJPerIter >= byName["t36"].KJPerIter {
		t.Errorf("star energy %v >= 36-node %v", byName["star"].KJPerIter, byName["t36"].KJPerIter)
	}
	if byName["local"].KJPerIter >= byName["star"].KJPerIter {
		t.Errorf("local-SSD energy %v >= I/O-node star %v", byName["local"].KJPerIter, byName["star"].KJPerIter)
	}
	// The local-SSD configuration should be in Hopper's energy league
	// (within 2x either way) while using 9 nodes instead of 190.
	ratio := byName["local"].KJPerIter / byName["hopper"].KJPerIter
	if ratio > 2 || ratio < 0.1 {
		t.Errorf("local-SSD vs Hopper energy ratio %v outside plausible band", ratio)
	}
}

func TestCPUUtilizationIsLowOutOfCore(t *testing.T) {
	// The transfer-bound run must bill CPUs as mostly idle: its power draw
	// per node must be far below the all-active figure.
	tb := devices.CarverSSD()
	p := Default2012()
	star := perfmodel.Star()
	r := TestbedEnergy("star", star, tb, p)
	perNodeActive := p.computeNodeWatts(24, 1)
	perNodeBilled := (r.PowerWatts - float64(tb.IONodes)*(p.IONodeBase+float64(tb.SSDsPerIONode)*p.SSDActive)) / float64(star.Nodes)
	if perNodeBilled >= perNodeActive*0.8 {
		t.Errorf("billed %v W/node, active would be %v — utilization model broken", perNodeBilled, perNodeActive)
	}
}

func TestLocalSSDExperimentIsFaster(t *testing.T) {
	ioNode := perfmodel.Star()
	local := perfmodel.Run(LocalSSDExperiment())
	if local.TimeSeconds >= ioNode.TimeSeconds {
		t.Fatalf("local SSDs not faster: %v vs %v", local.TimeSeconds, ioNode.TimeSeconds)
	}
	// 2 GB/s per node vs ~1.4 GB/s shared: expect roughly a 1.4x speedup.
	speedup := ioNode.TimeSeconds / local.TimeSeconds
	if speedup < 1.2 || speedup > 2.0 {
		t.Errorf("local-SSD speedup %v outside expected band", speedup)
	}
	// And it beats the comparable Hopper run on CPU-hours outright.
	if local.CPUHoursPerIter >= 9.70 {
		t.Errorf("local-SSD star costs %v CPU-h/iter, Hopper test_4560 costs 9.70", local.CPUHoursPerIter)
	}
}

func TestHopperEnergyScalesWithCores(t *testing.T) {
	small := HopperEnergy("a", 276, 2.46)
	big := HopperEnergy("b", 18336, 18.9)
	if big.KJPerIter <= small.KJPerIter {
		t.Fatal("energy not growing with scale")
	}
	// 276 cores = 11.5 nodes * 456 W * 2.46 s ≈ 12.9 kJ.
	if small.KJPerIter < 10 || small.KJPerIter > 16 {
		t.Errorf("test_276 energy %v kJ/iter implausible", small.KJPerIter)
	}
}
