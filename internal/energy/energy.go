// Package energy implements the energy-efficiency study the paper proposes
// as future work (Section VI-B): "we are planning to investigate the
// SSD-equipped clusters from an energy-efficiency point of view ... a study
// where the energy-efficiency of alternative SSD-testbed configurations are
// compared against large-scale clusters like Hopper could be very
// interesting."
//
// This is an EXTENSION beyond the paper's measurements: the paper states
// the qualitative arguments (non-volatile storage needs no standby power;
// out-of-core runs leave CPUs mostly idle; the I/O-node separation forces
// all I/O nodes to stay powered and pushes every byte across InfiniBand),
// and this package turns them into a parameterized model evaluated on the
// same runs as Tables II/IV. Parameters are documented 2009-2012-era
// figures; EXPERIMENTS.md labels all outputs as modeled extensions.
package energy

import (
	"fmt"

	"dooc/internal/devices"
	"dooc/internal/mfdn"
	"dooc/internal/perfmodel"
)

// PowerModel holds per-component power draws in watts.
type PowerModel struct {
	// NodeBase is a compute node's power excluding CPU load and DRAM:
	// board, fans, PSU losses, NIC.
	NodeBase float64
	// CPUActive is the additional draw of one fully-loaded socket.
	CPUActive float64
	// SocketsPerNode is the socket count.
	SocketsPerNode int
	// DRAMPerGB is the standby+refresh draw per GB of installed DRAM
	// ("the need to power up the entire DRAM constantly is a big
	// contributor", Section VI-B).
	DRAMPerGB float64
	// SSDActive and SSDIdle are per-card draws; idle is near zero because
	// flash is non-volatile.
	SSDActive, SSDIdle float64
	// IONodeBase is an I/O server node's base power.
	IONodeBase float64
}

// Default2012 returns documented circa-2012 figures:
// dual-socket Nehalem node ~120 W base, ~80 W per loaded X5550 socket,
// ~0.9 W/GB DDR3, PCIe flash cards ~25 W active / ~3 W idle.
func Default2012() PowerModel {
	return PowerModel{
		NodeBase:       120,
		CPUActive:      80,
		SocketsPerNode: 2,
		DRAMPerGB:      0.9,
		SSDActive:      25,
		SSDIdle:        3,
		IONodeBase:     150,
	}
}

// HopperNodeWatts is the average per-node draw of Hopper (2.91 MW over
// 6,384 nodes ≈ 456 W, interconnect share included).
const HopperNodeWatts = 456.0

// HopperCoresPerNode is 24 (two 12-core Magny-Cours).
const HopperCoresPerNode = 24

// Report is one configuration's energy figure.
type Report struct {
	Name string
	// PowerWatts is the whole-system draw during the run.
	PowerWatts float64
	// IterSeconds is the duration of one iteration.
	IterSeconds float64
	// KJPerIter is the energy of one iteration in kilojoules.
	KJPerIter float64
}

// computeNodeWatts models one testbed compute node during an out-of-core
// run: base + DRAM + CPUs at the run's utilization.
func (p PowerModel) computeNodeWatts(memGB, cpuUtil float64) float64 {
	return p.NodeBase + p.DRAMPerGB*memGB + float64(p.SocketsPerNode)*p.CPUActive*cpuUtil
}

// TestbedEnergy evaluates the paper's I/O-node testbed on a perfmodel row.
// All ten I/O nodes must stay powered regardless of how many compute nodes
// the job uses (Section VI-B's complaint), with their SSDs active while the
// job reads.
func TestbedEnergy(name string, row perfmodel.Row, tb devices.Testbed, p PowerModel) Report {
	iterSec := row.TimeSeconds / 4 // the experiments run 4 iterations
	memGB := float64(tb.MemoryPerNode) / (1 << 30)
	// CPU utilization: the run is transfer-bound; cores are busy only for
	// the SpMV itself. 2*nnz at the node's SpMV rate over the iteration.
	nnzPerNode := row.NNZBillions * 1e9 / float64(row.Nodes)
	cpuUtil := (2 * nnzPerNode / tb.NodeSpMVFlops) / iterSec
	if cpuUtil > 1 {
		cpuUtil = 1
	}
	compute := float64(row.Nodes) * p.computeNodeWatts(memGB, cpuUtil)
	io := float64(tb.IONodes) * (p.IONodeBase + float64(tb.SSDsPerIONode)*p.SSDActive)
	watts := compute + io
	return Report{Name: name, PowerWatts: watts, IterSeconds: iterSec, KJPerIter: watts * iterSec / 1e3}
}

// LocalSSDEnergy evaluates the proposed configuration of Section VI-A:
// SSD cards on the compute nodes themselves — no I/O nodes to keep powered,
// no InfiniBand hop for loads.
func LocalSSDEnergy(name string, row perfmodel.Row, tb devices.Testbed, p PowerModel) Report {
	iterSec := row.TimeSeconds / 4
	memGB := float64(tb.MemoryPerNode) / (1 << 30)
	nnzPerNode := row.NNZBillions * 1e9 / float64(row.Nodes)
	cpuUtil := (2 * nnzPerNode / tb.NodeSpMVFlops) / iterSec
	if cpuUtil > 1 {
		cpuUtil = 1
	}
	perNode := p.computeNodeWatts(memGB, cpuUtil) + float64(tb.SSDsPerIONode)*p.SSDActive
	watts := float64(row.Nodes) * perNode
	return Report{Name: name, PowerWatts: watts, IterSeconds: iterSec, KJPerIter: watts * iterSec / 1e3}
}

// HopperEnergy evaluates an in-core MFDn run: np cores fully active on
// np/24 nodes at the measured per-node draw.
func HopperEnergy(name string, np int, iterSec float64) Report {
	nodes := float64(np) / HopperCoresPerNode
	watts := nodes * HopperNodeWatts
	return Report{Name: name, PowerWatts: watts, IterSeconds: iterSec, KJPerIter: watts * iterSec / 1e3}
}

// Study compares the three configurations on the paper's headline matchup:
// the 3.5 TB problem as (a) the 36-node I/O-node testbed run, (b) the
// 9-node star run, (c) the star run on a local-SSD testbed, and (d) the
// comparable Hopper run (test_4560).
func Study() []Report {
	tb := devices.CarverSSD()
	p := Default2012()
	rows := perfmodel.Table4()
	n36 := rows[len(rows)-1]
	star := perfmodel.Star()
	localStar := perfmodel.Run(LocalSSDExperiment())

	var t2 mfdn.ModeledRow
	for _, r := range mfdn.ModelTable2() {
		if r.Name == "test_4560" {
			t2 = r
		}
	}
	return []Report{
		TestbedEnergy("testbed-36-node (3.5TB)", n36, tb, p),
		TestbedEnergy("testbed-star-9-node (3.5TB)", star, tb, p),
		LocalSSDEnergy("local-SSD-star-9-node (3.5TB)", localStar, tb, p),
		HopperEnergy(fmt.Sprintf("hopper-%s (np=%d)", t2.Name, t2.Np), t2.Np, t2.IterSeconds),
	}
}

// LocalSSDExperiment is the Section VI-A what-if as a perfmodel config: the
// star run with both SSD cards local to each compute node — per-node read
// bandwidth of 2 GB/s, no shared-filesystem cap, and no shared-contention
// dispersion.
func LocalSSDExperiment() perfmodel.Config {
	cfg := perfmodel.StarExperiment()
	tb := cfg.Testbed
	tb.ClientReadBytes = float64(tb.SSDsPerIONode) * tb.SSDReadBytes // 2 GB/s local
	tb.GPFSPeakBytes = tb.ClientReadBytes * float64(cfg.Nodes) / tb.GPFSEfficiency
	tb.BWDispersion = 0.05 // local devices: no shared-FS variability
	cfg.Testbed = tb
	return cfg
}

// HDDExperiment quantifies the paper's motivation (Section I): the same
// out-of-core workload on an HDD-era storage system. Each node reads from
// local SATA disks at ~150 MB/s sustained — the bandwidth cliff that made
// parallel out-of-core linear algebra unattractive for a decade.
func HDDExperiment(nodes int) perfmodel.Config {
	cfg := perfmodel.Experiment(nodes, perfmodel.PolicyInterleaved)
	tb := cfg.Testbed
	tb.ClientReadBytes = 0.15e9 // one SATA HDD per node
	tb.GPFSPeakBytes = tb.ClientReadBytes * float64(nodes) / tb.GPFSEfficiency
	tb.BWDispersion = 0.1
	cfg.Testbed = tb
	return cfg
}
