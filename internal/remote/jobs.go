// Job-service verbs: the remote protocol's second personality. A server
// constructed with ServerOptions.Jobs fronts a jobs.SolverService, and
// clients submit, watch, cancel, and collect iterated-SpMV jobs over the
// same gob/CRC32/hello-negotiated connection the storage verbs use. Job
// results ride the normal payload path, so they get wire compression and
// checksum protection for free, and the result round-trip blocks
// server-side until the job finishes — the same long-poll discipline as a
// read of an unwritten interval.

package remote

import (
	"errors"
	"fmt"
	"strings"

	"dooc/internal/jobs"
	"dooc/internal/obs"
	"dooc/internal/proxy"
)

// jobWire carries job-verb parameters inside a request. Submit fills the
// solve fields; status/cancel/result address an existing job by ID.
type jobWire struct {
	ID           int64
	Tenant       string
	Priority     int
	Iters        int
	Seed         int64
	MemoryBytes  int64
	ScratchBytes int64
	// Key is the submit verb's idempotency key ("" = unkeyed). Keyed
	// submissions are replay-safe: a duplicate lands on the original job.
	Key string
	// TraceHi/TraceLo/TraceSpan carry the submitter's trace context (the
	// 128-bit trace ID and the client root span) so the server's job spans
	// join the client's causal tree. All-zero means untraced; gob omits
	// zero fields, so legacy peers on either side interoperate unchanged.
	TraceHi, TraceLo, TraceSpan uint64
	// Offset/Limit paginate the history verb.
	Offset int
	Limit  int
	// InputProxy is the submit verb's chained input handle in its
	// "name@epoch[@scope]" string form ("" = seed-derived start vector).
	// Gob omits the empty string, so legacy peers never see the field.
	InputProxy string
}

// dispatchJob executes one job-verb request. The caller runs it in a
// per-request goroutine, so a blocking result wait stalls nothing else.
func (s *Server) dispatchJob(req *request) *response {
	fail := func(err error) *response { return &response{Err: err.Error()} }
	svc := s.opts.Jobs
	if svc == nil {
		return fail(fmt.Errorf("remote: %s: job service not enabled on this server", req.Op))
	}
	switch req.Op {
	case opJobSubmit:
		sr := jobs.SolveRequest{
			Tenant:       req.Job.Tenant,
			Priority:     req.Job.Priority,
			Iters:        req.Job.Iters,
			Seed:         req.Job.Seed,
			MemoryBytes:  req.Job.MemoryBytes,
			ScratchBytes: req.Job.ScratchBytes,
			Key:          req.Job.Key,
			Trace: obs.SpanContext{
				Trace: obs.TraceIDFromWords(req.Job.TraceHi, req.Job.TraceLo),
				Span:  obs.SpanIDFromWord(req.Job.TraceSpan),
			},
		}
		if req.Job.InputProxy != "" {
			ref, err := proxy.ParseRef(req.Job.InputProxy)
			if err != nil {
				return fail(err)
			}
			sr.Input = ref
		}
		st, err := svc.Submit(sr)
		if err != nil {
			return fail(err)
		}
		return &response{Job: st}
	case opJobStatus:
		st, err := svc.Manager.Status(req.Job.ID)
		if err != nil {
			return fail(err)
		}
		return &response{Job: st}
	case opJobCancel:
		if err := svc.Manager.Cancel(req.Job.ID); err != nil {
			return fail(err)
		}
		return &response{}
	case opJobResult:
		data, err := svc.Manager.Result(req.Job.ID)
		if err != nil {
			return fail(err)
		}
		st, _ := svc.Manager.Status(req.Job.ID)
		return &response{Data: data, Job: st}
	case opJobList:
		return &response{JobList: svc.Manager.List()}
	case opJobHistory:
		page, total := svc.Manager.History(req.Job.Offset, req.Job.Limit)
		return &response{JobList: page, JobTotal: total}
	case opJobProxy:
		h, err := svc.ResultProxy(req.Job.ID)
		if err != nil {
			return fail(err)
		}
		st, _ := svc.Manager.Status(req.Job.ID)
		return &response{Proxy: h, Job: st}
	}
	return fail(fmt.Errorf("remote: unknown job opcode %v", req.Op))
}

// mapJobError resurfaces the jobs package's typed errors from a server
// error string, so remote callers can errors.Is() admission rejections and
// cancellations exactly like local ones.
func mapJobError(err error) error {
	if err == nil {
		return nil
	}
	var se *serverError
	if !errors.As(err, &se) {
		return err
	}
	for _, typed := range []error{
		jobs.ErrQueueFull,
		jobs.ErrQuotaExceeded,
		jobs.ErrDraining,
		jobs.ErrUnknownJob,
		jobs.ErrCancelled,
		jobs.ErrNoProxy,
		proxy.ErrUnknownProxy,
		proxy.ErrProxyGone,
		proxy.ErrProxyQuota,
		proxy.ErrNoRefs,
	} {
		if strings.Contains(se.msg, typed.Error()) {
			return fmt.Errorf("%w (%s)", typed, se.msg)
		}
	}
	return err
}

// SubmitJob submits a solve request to the server's job service and
// returns the admitted job's status snapshot.
//
// An UNKEYED submission is not idempotent, so unlike every storage verb it
// is never replayed after a connection loss: a transport error means the
// submission's fate is unknown and the caller should ListJobs before
// retrying. A KEYED submission (req.Key != "") is exactly-once server-side
// — a duplicate lands on the original job — so it rides the full
// reconnect-and-replay recovery path.
func (cl *Client) SubmitJob(req jobs.SolveRequest) (jobs.JobStatus, error) {
	hi, lo := req.Trace.Trace.Words()
	wire := &request{Op: opJobSubmit, Job: jobWire{
		Tenant:       req.Tenant,
		Priority:     req.Priority,
		Iters:        req.Iters,
		Seed:         req.Seed,
		MemoryBytes:  req.MemoryBytes,
		ScratchBytes: req.ScratchBytes,
		Key:          req.Key,
		TraceHi:      hi,
		TraceLo:      lo,
		TraceSpan:    req.Trace.Span.Word(),
	}}
	if req.Input.Valid() {
		// A chained input is a proxy-plane feature: refuse locally rather
		// than let a legacy server silently run from the seed vector.
		if !cl.ProxyCapable() {
			return jobs.JobStatus{}, fmt.Errorf("%w (submit with -input-proxy)", ErrLegacyProxy)
		}
		wire.Job.InputProxy = req.Input.String()
	}
	var resp *response
	var err error
	if req.Key != "" {
		resp, err = cl.call(wire)
	} else {
		resp, err = cl.roundTrip(wire, cl.opts.Timeout)
	}
	if err != nil {
		return jobs.JobStatus{}, mapJobError(err)
	}
	return resp.Job, nil
}

// JobStatus fetches a job's status snapshot.
func (cl *Client) JobStatus(id int64) (jobs.JobStatus, error) {
	resp, err := cl.call(&request{Op: opJobStatus, Job: jobWire{ID: id}})
	if err != nil {
		return jobs.JobStatus{}, mapJobError(err)
	}
	return resp.Job, nil
}

// CancelJob requests cancellation of a queued or running job. Cancelling a
// finished job is a no-op; unknown IDs map to jobs.ErrUnknownJob.
func (cl *Client) CancelJob(id int64) error {
	_, err := cl.call(&request{Op: opJobCancel, Job: jobWire{ID: id}})
	return mapJobError(err)
}

// JobResult blocks until the job reaches a terminal state and returns its
// result payload plus the final status. A cancelled or failed job returns
// the typed error (jobs.ErrCancelled for cancellations).
func (cl *Client) JobResult(id int64) ([]byte, jobs.JobStatus, error) {
	resp, err := cl.call(&request{Op: opJobResult, Job: jobWire{ID: id}})
	if err != nil {
		return nil, jobs.JobStatus{}, mapJobError(err)
	}
	return resp.Data, resp.Job, nil
}

// ListJobs returns every job the service has seen, ordered by ID.
func (cl *Client) ListJobs() ([]jobs.JobStatus, error) {
	resp, err := cl.call(&request{Op: opJobList})
	if err != nil {
		return nil, mapJobError(err)
	}
	return resp.JobList, nil
}

// JobHistory pages through terminal jobs ordered by ID (the list-history
// verb): it returns the window [offset, offset+limit) plus the total
// terminal count. limit <= 0 means the rest. After a restart of a durable
// server the history includes jobs finished before the restart.
func (cl *Client) JobHistory(offset, limit int) ([]jobs.JobStatus, int, error) {
	resp, err := cl.call(&request{Op: opJobHistory, Job: jobWire{Offset: offset, Limit: limit}})
	if err != nil {
		return nil, 0, mapJobError(err)
	}
	return resp.JobList, resp.JobTotal, nil
}
