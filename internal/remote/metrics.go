package remote

import (
	"sync"
	"sync/atomic"

	"dooc/internal/compress"
	"dooc/internal/obs"
)

// serverMetrics are one server's series in the shared obs registry. With a
// nil registry every field is nil and every operation a no-op.
type serverMetrics struct {
	requests      *obs.Counter
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	checksumFails *obs.Counter
	active        *obs.Gauge
	wire          *wireCompressMetrics
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		requests:      reg.Counter("dooc_remote_server_requests_total", "RPC requests received"),
		bytesIn:       reg.Counter("dooc_remote_server_bytes_in_total", "payload bytes received from clients"),
		bytesOut:      reg.Counter("dooc_remote_server_bytes_out_total", "payload bytes sent to clients"),
		checksumFails: reg.Counter("dooc_remote_server_checksum_failures_total", "request payloads rejected by CRC32 verification"),
		active:        reg.Gauge("dooc_remote_server_active_requests", "requests currently being handled"),
		wire:          newWireCompressMetrics(reg, "dooc_remote_server"),
	}
}

// clientMetrics are one client's series in the shared obs registry.
type clientMetrics struct {
	reconnects    *obs.Counter
	checksumFails *obs.Counter
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	rpcSeconds    *obs.Histogram
	wire          *wireCompressMetrics
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	return clientMetrics{
		reconnects:    reg.Counter("dooc_remote_client_reconnects_total", "connections re-established after unexpected loss"),
		checksumFails: reg.Counter("dooc_remote_client_checksum_failures_total", "response payloads rejected by CRC32 verification"),
		bytesIn:       reg.Counter("dooc_remote_client_bytes_in_total", "payload bytes received from the server"),
		bytesOut:      reg.Counter("dooc_remote_client_bytes_out_total", "payload bytes sent to the server"),
		rpcSeconds:    reg.Histogram("dooc_remote_client_rpc_seconds", "RPC round-trip latency per attempt", nil),
		wire:          newWireCompressMetrics(reg, "dooc_remote_client"),
	}
}

// wireCompressMetrics are one endpoint's wire-compression series, shared by
// the client and server sides under their respective prefixes. Per-codec
// byte counters are resolved lazily — which codecs appear depends on the
// adaptive encoder at runtime — and sends happen from many goroutines, so
// the map is mutex-guarded (the counters themselves are atomics).
type wireCompressMetrics struct {
	reg    *obs.Registry
	prefix string

	bailouts   *obs.Counter
	ratio      *obs.Gauge
	encSeconds *obs.Histogram
	decSeconds *obs.Histogram

	rawBytes    atomic.Int64
	storedBytes atomic.Int64

	mu       sync.Mutex
	perCodec map[uint8]*wireCodecCounters
}

// wireCodecCounters are one codec's byte series on one endpoint.
type wireCodecCounters struct {
	encRawBytes    *obs.Counter
	encStoredBytes *obs.Counter
	decStoredBytes *obs.Counter
	decRawBytes    *obs.Counter
}

func newWireCompressMetrics(reg *obs.Registry, prefix string) *wireCompressMetrics {
	return &wireCompressMetrics{
		reg:        reg,
		prefix:     prefix,
		bailouts:   reg.Counter(prefix+"_compress_bailouts_total", "payloads sent plain by the adaptive bail-out"),
		ratio:      reg.Gauge(prefix+"_compress_ratio_percent", "cumulative wire ratio of compressed payloads, 100*raw/stored"),
		encSeconds: reg.Histogram(prefix+"_compress_encode_seconds", "payload encode latency before send", nil),
		decSeconds: reg.Histogram(prefix+"_compress_decode_seconds", "payload decode latency on receipt", nil),
		perCodec:   make(map[uint8]*wireCodecCounters),
	}
}

func (w *wireCompressMetrics) codec(id uint8) *wireCodecCounters {
	w.mu.Lock()
	defer w.mu.Unlock()
	if cc, ok := w.perCodec[id]; ok {
		return cc
	}
	name := "unknown"
	if c, ok := compress.ByID(id); ok {
		name = c.Name()
	}
	l := obs.L("codec", name)
	cc := &wireCodecCounters{
		encRawBytes:    w.reg.Counter(w.prefix+"_compress_raw_bytes_total", "payload bytes fed to the wire encoder", l),
		encStoredBytes: w.reg.Counter(w.prefix+"_compress_stored_bytes_total", "frame bytes put on the wire", l),
		decStoredBytes: w.reg.Counter(w.prefix+"_decompress_stored_bytes_total", "frame bytes received from the wire", l),
		decRawBytes:    w.reg.Counter(w.prefix+"_decompress_raw_bytes_total", "payload bytes produced by the wire decoder", l),
	}
	w.perCodec[id] = cc
	return cc
}

// noteEncode records one kept (non-bail-out) wire frame.
func (w *wireCompressMetrics) noteEncode(id uint8, rawLen, wireLen int, secs float64) {
	w.encSeconds.Observe(secs)
	cc := w.codec(id)
	cc.encRawBytes.Add(int64(rawLen))
	cc.encStoredBytes.Add(int64(wireLen))
	raw := w.rawBytes.Add(int64(rawLen))
	stored := w.storedBytes.Add(int64(wireLen))
	if stored > 0 {
		w.ratio.Set(100 * raw / stored)
	}
}

// noteBailout records a payload the adaptive encoder refused to compress.
func (w *wireCompressMetrics) noteBailout(secs float64) {
	w.encSeconds.Observe(secs)
	w.bailouts.Inc()
}

// noteDecode records one wire frame decoded on receipt.
func (w *wireCompressMetrics) noteDecode(id uint8, wireLen, rawLen int, secs float64) {
	w.decSeconds.Observe(secs)
	cc := w.codec(id)
	cc.decStoredBytes.Add(int64(wireLen))
	cc.decRawBytes.Add(int64(rawLen))
}
