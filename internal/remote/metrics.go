package remote

import (
	"dooc/internal/obs"
)

// serverMetrics are one server's series in the shared obs registry. With a
// nil registry every field is nil and every operation a no-op.
type serverMetrics struct {
	requests      *obs.Counter
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	checksumFails *obs.Counter
	active        *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		requests:      reg.Counter("dooc_remote_server_requests_total", "RPC requests received"),
		bytesIn:       reg.Counter("dooc_remote_server_bytes_in_total", "payload bytes received from clients"),
		bytesOut:      reg.Counter("dooc_remote_server_bytes_out_total", "payload bytes sent to clients"),
		checksumFails: reg.Counter("dooc_remote_server_checksum_failures_total", "request payloads rejected by CRC32 verification"),
		active:        reg.Gauge("dooc_remote_server_active_requests", "requests currently being handled"),
	}
}

// clientMetrics are one client's series in the shared obs registry.
type clientMetrics struct {
	reconnects    *obs.Counter
	checksumFails *obs.Counter
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	rpcSeconds    *obs.Histogram
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	return clientMetrics{
		reconnects:    reg.Counter("dooc_remote_client_reconnects_total", "connections re-established after unexpected loss"),
		checksumFails: reg.Counter("dooc_remote_client_checksum_failures_total", "response payloads rejected by CRC32 verification"),
		bytesIn:       reg.Counter("dooc_remote_client_bytes_in_total", "payload bytes received from the server"),
		bytesOut:      reg.Counter("dooc_remote_client_bytes_out_total", "payload bytes sent to the server"),
		rpcSeconds:    reg.Histogram("dooc_remote_client_rpc_seconds", "RPC round-trip latency per attempt", nil),
	}
}
