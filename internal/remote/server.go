package remote

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dooc/internal/compress"
	"dooc/internal/faults"
	"dooc/internal/jobs"
	"dooc/internal/obs"
	"dooc/internal/storage"
)

// ServerOptions tunes a Server.
type ServerOptions struct {
	// Faults, when non-nil, injects connection drops and payload corruption
	// into the server's outgoing frames.
	Faults *faults.Injector
	// Obs, when non-nil, receives the server's RPC metrics
	// (dooc_remote_server_*).
	Obs *obs.Registry
	// Codec, when non-nil, compresses response payloads to clients that
	// negotiated the capability. When nil, responses to such clients use
	// the client's preferred codec instead; legacy clients always get plain
	// payloads.
	Codec compress.Codec
	// CompressMin is the smallest payload worth compressing (default 1 KiB).
	CompressMin int
	// Legacy emulates a pre-compression peer for compatibility tests: a
	// connection opening with a capability hello is dropped, exactly as an
	// old binary's gob decoder would drop it.
	Legacy bool
	// Jobs, when non-nil, enables the job-service verbs (submit, status,
	// cancel, result, list) against this solver service. When nil those
	// verbs fail cleanly; plain storage servers are unaffected.
	Jobs *jobs.SolverService
	// Peer, when non-nil, enables the cluster peer verbs (peer-put,
	// peer-get, peer-del, peer-view) and advertises ClusterCapBit in the
	// handshake hello, admitting this server to ring membership.
	Peer PeerHandler
}

// Server exposes one storage filter over TCP. It is the I/O-node role:
// typically constructed over a store whose scratch directory holds staged
// sub-matrix files, then serving compute-node clients.
type Server struct {
	store *storage.Store
	ln    net.Listener
	opts  ServerOptions

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup

	requests atomic.Int64
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	active   atomic.Int64 // requests decoded but not yet answered

	metrics serverMetrics
}

// Serve starts serving store on the listener. It returns immediately;
// Close shuts the server down.
func Serve(store *storage.Store, ln net.Listener) *Server {
	return ServeOptions(store, ln, ServerOptions{})
}

// ServeOptions starts serving store on the listener with explicit options.
func ServeOptions(store *storage.Store, ln net.Listener, opts ServerOptions) *Server {
	s := &Server{store: store, ln: ln, opts: opts, conns: make(map[*conn]struct{}), metrics: newServerMetrics(opts.Obs)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen is a convenience: listen on addr ("127.0.0.1:0" for tests) and
// serve store.
func Listen(store *storage.Store, addr string) (*Server, error) {
	return ListenOptions(store, addr, ServerOptions{})
}

// ListenOptions listens on addr and serves store with explicit options.
func ListenOptions(store *storage.Store, addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeOptions(store, ln, opts), nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Requests returns the number of requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

// BytesOut returns payload bytes sent to clients.
func (s *Server) BytesOut() int64 { return s.bytesOut.Load() }

// BytesIn returns payload bytes received from clients.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Shutdown drains the server gracefully: it stops accepting, waits up to
// timeout for in-flight requests to finish, then closes the connections.
// Requests parked on unwritten intervals cannot finish on their own, so the
// drain is bounded; whatever is still active when the timeout expires is cut
// off exactly as Close would.
func (s *Server) Shutdown(timeout time.Duration) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	s.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for s.active.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	s.mu.Lock()
	for c := range s.conns {
		c.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := newFaultyConn(raw, s.opts.Faults)
		c.compressMin = compressMinOrDefault(s.opts.CompressMin)
		c.wire = s.metrics.wire
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// negotiate handles an optional capability hello at the head of a fresh
// connection. A legacy client opens straight with gob (never a 0x00 byte),
// so the peek is unambiguous; the server replies with its own hello and
// enables compressed responses the client's mask admits.
func (s *Server) negotiate(c *conn) error {
	b, err := c.br.Peek(1)
	if err != nil {
		return err
	}
	if b[0] != helloByte {
		return nil // legacy client: plain protocol
	}
	if s.opts.Legacy {
		return fmt.Errorf("remote: legacy server dropping handshake hello")
	}
	buf := make([]byte, helloLen)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return err
	}
	mask, pref, err := parseHello(buf)
	if err != nil {
		return err
	}
	replyMask := compress.Mask() &^ (ClusterCapBit | ProxyCapBit)
	if s.opts.Peer != nil {
		replyMask |= ClusterCapBit
	}
	if s.opts.Jobs != nil && s.opts.Jobs.ProxyEnabled() {
		replyMask |= ProxyCapBit
	}
	if _, err := c.raw.Write(helloFrame(replyMask, pref)); err != nil {
		return err
	}
	enc := s.opts.Codec
	if enc == nil {
		if cdc, ok := compress.ByID(pref); ok {
			enc = cdc
		}
	}
	if enc != nil && enc.ID() != (compress.Raw{}).ID() && mask&(1<<enc.ID()) != 0 {
		c.codec = enc
	}
	return nil
}

func (s *Server) handleConn(c *conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.close()
	}()
	if err := s.negotiate(c); err != nil {
		return
	}
	// Handlers may block (reads wait for writers), so each request runs in
	// its own goroutine; the per-connection write lock serializes replies.
	// Handlers are deliberately NOT waited for on teardown: a read parked on
	// a never-written interval unblocks only when the interval is written or
	// the underlying store closes (ErrClosed), at which point the handler's
	// reply to the dead connection is a no-op. Waiting here would deadlock
	// Server.Close against the storage layer's read-blocks-until-written
	// semantics.
	for {
		var req request
		if err := c.dec.Decode(&req); err != nil {
			return
		}
		s.requests.Add(1)
		s.metrics.requests.Inc()
		s.bytesIn.Add(int64(len(req.Data)))
		s.metrics.bytesIn.Add(int64(len(req.Data)))
		s.active.Add(1)
		s.metrics.active.Add(1)
		go func(req request) {
			defer func() {
				s.active.Add(-1)
				s.metrics.active.Add(-1)
			}()
			var resp *response
			if err := verifyRequest(&req); err != nil {
				// A corrupted payload must never reach the store: reject it
				// with the attributed checksum error instead of dispatching.
				s.metrics.checksumFails.Inc()
				resp = &response{Err: err.Error()}
			} else if req.Enc {
				// The checksum held over the wire bytes; now undo the wire
				// compression. A frame that fails its own CRC must never
				// reach the store either.
				data, derr := decodePayload(req.Data, s.metrics.wire)
				if derr != nil {
					s.metrics.checksumFails.Inc()
					resp = &response{Err: fmt.Sprintf("remote: %s %q [%d,%d): decoding wire frame: %v", req.Op, req.Array, req.Lo, req.Hi, derr)}
				} else {
					req.Data, req.Enc = data, false
					resp = s.dispatch(&req)
				}
			} else {
				resp = s.dispatch(&req)
			}
			resp.ID = req.ID
			// A failed send means the connection died; the decode loop will
			// notice and tear down.
			n, _ := c.sendResponse(resp)
			s.bytesOut.Add(int64(n))
			s.metrics.bytesOut.Add(int64(n))
		}(req)
	}
}

// dispatch executes one request against the wrapped store.
func (s *Server) dispatch(req *request) *response {
	fail := func(err error) *response { return &response{Err: err.Error()} }
	switch req.Op {
	case opCreate:
		if err := s.store.Create(req.Array, req.Size, req.BlockSize); err != nil {
			return fail(err)
		}
	case opDelete:
		if err := s.store.Delete(req.Array); err != nil {
			return fail(err)
		}
	case opRead:
		lease, err := s.store.Request(req.Array, req.Lo, req.Hi, storage.PermRead)
		if err != nil {
			return fail(err)
		}
		data := append([]byte(nil), lease.Data...)
		lease.Release()
		return &response{Data: data}
	case opWrite:
		if int64(len(req.Data)) != req.Hi-req.Lo {
			return fail(fmt.Errorf("remote: write payload %d bytes for interval [%d,%d)", len(req.Data), req.Lo, req.Hi))
		}
		lease, err := s.store.Request(req.Array, req.Lo, req.Hi, storage.PermWrite)
		if err != nil {
			return fail(err)
		}
		copy(lease.Data, req.Data)
		lease.Release()
	case opPrefetch:
		s.store.Prefetch(req.Array, req.Lo, req.Hi)
	case opFlush:
		if err := s.store.Flush(req.Array); err != nil {
			return fail(err)
		}
	case opInfo:
		info, err := s.store.Info(req.Array)
		if err != nil {
			return fail(err)
		}
		return &response{Info: info}
	case opEvict:
		if err := s.store.Evict(req.Array, req.Block); err != nil {
			return fail(err)
		}
	case opStats:
		return &response{Stats: s.store.Stats()}
	case opJobSubmit, opJobStatus, opJobCancel, opJobResult, opJobList, opJobHistory, opJobProxy:
		return s.dispatchJob(req)
	case opPeerPut, opPeerGet, opPeerDel, opPeerView:
		return s.dispatchPeer(req)
	case opProxyStat, opProxyAddRef, opProxyRelease, opProxyResolve:
		return s.dispatchProxy(req)
	default:
		return fail(fmt.Errorf("remote: unknown opcode %v", req.Op))
	}
	return &response{}
}
