package remote

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dooc/internal/faults"
	"dooc/internal/obs"
	"dooc/internal/storage"
)

// ServerOptions tunes a Server.
type ServerOptions struct {
	// Faults, when non-nil, injects connection drops and payload corruption
	// into the server's outgoing frames.
	Faults *faults.Injector
	// Obs, when non-nil, receives the server's RPC metrics
	// (dooc_remote_server_*).
	Obs *obs.Registry
}

// Server exposes one storage filter over TCP. It is the I/O-node role:
// typically constructed over a store whose scratch directory holds staged
// sub-matrix files, then serving compute-node clients.
type Server struct {
	store *storage.Store
	ln    net.Listener
	opts  ServerOptions

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup

	requests atomic.Int64
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	active   atomic.Int64 // requests decoded but not yet answered

	metrics serverMetrics
}

// Serve starts serving store on the listener. It returns immediately;
// Close shuts the server down.
func Serve(store *storage.Store, ln net.Listener) *Server {
	return ServeOptions(store, ln, ServerOptions{})
}

// ServeOptions starts serving store on the listener with explicit options.
func ServeOptions(store *storage.Store, ln net.Listener, opts ServerOptions) *Server {
	s := &Server{store: store, ln: ln, opts: opts, conns: make(map[*conn]struct{}), metrics: newServerMetrics(opts.Obs)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen is a convenience: listen on addr ("127.0.0.1:0" for tests) and
// serve store.
func Listen(store *storage.Store, addr string) (*Server, error) {
	return ListenOptions(store, addr, ServerOptions{})
}

// ListenOptions listens on addr and serves store with explicit options.
func ListenOptions(store *storage.Store, addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeOptions(store, ln, opts), nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Requests returns the number of requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

// BytesOut returns payload bytes sent to clients.
func (s *Server) BytesOut() int64 { return s.bytesOut.Load() }

// BytesIn returns payload bytes received from clients.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Shutdown drains the server gracefully: it stops accepting, waits up to
// timeout for in-flight requests to finish, then closes the connections.
// Requests parked on unwritten intervals cannot finish on their own, so the
// drain is bounded; whatever is still active when the timeout expires is cut
// off exactly as Close would.
func (s *Server) Shutdown(timeout time.Duration) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	s.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for s.active.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	s.mu.Lock()
	for c := range s.conns {
		c.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := newFaultyConn(raw, s.opts.Faults)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) handleConn(c *conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.close()
	}()
	// Handlers may block (reads wait for writers), so each request runs in
	// its own goroutine; the per-connection write lock serializes replies.
	// Handlers are deliberately NOT waited for on teardown: a read parked on
	// a never-written interval unblocks only when the interval is written or
	// the underlying store closes (ErrClosed), at which point the handler's
	// reply to the dead connection is a no-op. Waiting here would deadlock
	// Server.Close against the storage layer's read-blocks-until-written
	// semantics.
	for {
		var req request
		if err := c.dec.Decode(&req); err != nil {
			return
		}
		s.requests.Add(1)
		s.metrics.requests.Inc()
		s.bytesIn.Add(int64(len(req.Data)))
		s.metrics.bytesIn.Add(int64(len(req.Data)))
		s.active.Add(1)
		s.metrics.active.Add(1)
		go func(req request) {
			defer func() {
				s.active.Add(-1)
				s.metrics.active.Add(-1)
			}()
			var resp *response
			if err := verifyRequest(&req); err != nil {
				// A corrupted payload must never reach the store: reject it
				// with the attributed checksum error instead of dispatching.
				s.metrics.checksumFails.Inc()
				resp = &response{Err: err.Error()}
			} else {
				resp = s.dispatch(&req)
			}
			resp.ID = req.ID
			s.bytesOut.Add(int64(len(resp.Data)))
			s.metrics.bytesOut.Add(int64(len(resp.Data)))
			// A failed send means the connection died; the decode loop will
			// notice and tear down.
			_ = c.sendResponse(resp)
		}(req)
	}
}

// dispatch executes one request against the wrapped store.
func (s *Server) dispatch(req *request) *response {
	fail := func(err error) *response { return &response{Err: err.Error()} }
	switch req.Op {
	case opCreate:
		if err := s.store.Create(req.Array, req.Size, req.BlockSize); err != nil {
			return fail(err)
		}
	case opDelete:
		if err := s.store.Delete(req.Array); err != nil {
			return fail(err)
		}
	case opRead:
		lease, err := s.store.Request(req.Array, req.Lo, req.Hi, storage.PermRead)
		if err != nil {
			return fail(err)
		}
		data := append([]byte(nil), lease.Data...)
		lease.Release()
		return &response{Data: data}
	case opWrite:
		if int64(len(req.Data)) != req.Hi-req.Lo {
			return fail(fmt.Errorf("remote: write payload %d bytes for interval [%d,%d)", len(req.Data), req.Lo, req.Hi))
		}
		lease, err := s.store.Request(req.Array, req.Lo, req.Hi, storage.PermWrite)
		if err != nil {
			return fail(err)
		}
		copy(lease.Data, req.Data)
		lease.Release()
	case opPrefetch:
		s.store.Prefetch(req.Array, req.Lo, req.Hi)
	case opFlush:
		if err := s.store.Flush(req.Array); err != nil {
			return fail(err)
		}
	case opInfo:
		info, err := s.store.Info(req.Array)
		if err != nil {
			return fail(err)
		}
		return &response{Info: info}
	case opEvict:
		if err := s.store.Evict(req.Array, req.Block); err != nil {
			return fail(err)
		}
	case opStats:
		return &response{Stats: s.store.Stats()}
	default:
		return fail(fmt.Errorf("remote: unknown opcode %v", req.Op))
	}
	return &response{}
}
