package remote

import (
	"fmt"
	"net"
	"sync"

	"dooc/internal/storage"
)

// Client is a compute node's handle on a remote storage server. It is safe
// for concurrent use; requests are multiplexed over one TCP connection and
// matched to responses by ID, so a read blocked on an unwritten interval
// does not stall other requests.
type Client struct {
	c *conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *response
	closed  bool
	readErr error

	wg sync.WaitGroup
}

// Dial connects to a storage server.
func Dial(addr string) (*Client, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{c: newConn(raw), pending: make(map[uint64]chan *response)}
	cl.wg.Add(1)
	go cl.readLoop()
	return cl, nil
}

// Close tears the connection down; in-flight calls fail.
func (cl *Client) Close() {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	cl.mu.Unlock()
	cl.c.close()
	cl.wg.Wait()
}

func (cl *Client) readLoop() {
	defer cl.wg.Done()
	for {
		var resp response
		if err := cl.c.dec.Decode(&resp); err != nil {
			cl.mu.Lock()
			cl.readErr = errClosed
			for id, ch := range cl.pending {
				ch <- &response{ID: id, Err: errClosed.Error()}
				delete(cl.pending, id)
			}
			cl.closed = true
			cl.mu.Unlock()
			return
		}
		cl.mu.Lock()
		ch, ok := cl.pending[resp.ID]
		delete(cl.pending, resp.ID)
		cl.mu.Unlock()
		if ok {
			ch <- &resp
		}
	}
}

// call performs one request/response round trip.
func (cl *Client) call(req *request) (*response, error) {
	ch := make(chan *response, 1)
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, errClosed
	}
	cl.nextID++
	req.ID = cl.nextID
	cl.pending[req.ID] = ch
	cl.mu.Unlock()

	if err := cl.c.sendRequest(req); err != nil {
		cl.mu.Lock()
		delete(cl.pending, req.ID)
		cl.mu.Unlock()
		return nil, fmt.Errorf("remote: send: %w", err)
	}
	resp := <-ch
	if resp.Err != "" {
		return nil, fmt.Errorf("remote %s: %s", req.Op, resp.Err)
	}
	return resp, nil
}

// Create declares an immutable array on the server.
func (cl *Client) Create(name string, size, blockSize int64) error {
	_, err := cl.call(&request{Op: opCreate, Array: name, Size: size, BlockSize: blockSize})
	return err
}

// Delete removes an array.
func (cl *Client) Delete(name string) error {
	_, err := cl.call(&request{Op: opDelete, Array: name})
	return err
}

// ReadInterval fetches [lo, hi) of an array, blocking (server-side) until
// the interval has been written.
func (cl *Client) ReadInterval(array string, lo, hi int64) ([]byte, error) {
	resp, err := cl.call(&request{Op: opRead, Array: array, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// WriteInterval publishes [lo, hi) of an array. The interval must not have
// been written before (immutability is enforced by the server's store).
func (cl *Client) WriteInterval(array string, lo, hi int64, data []byte) error {
	_, err := cl.call(&request{Op: opWrite, Array: array, Lo: lo, Hi: hi, Data: data})
	return err
}

// Prefetch warms the server-side cache for [lo, hi).
func (cl *Client) Prefetch(array string, lo, hi int64) error {
	_, err := cl.call(&request{Op: opPrefetch, Array: array, Lo: lo, Hi: hi})
	return err
}

// Flush persists the array on the server's scratch directory.
func (cl *Client) Flush(array string) error {
	_, err := cl.call(&request{Op: opFlush, Array: array})
	return err
}

// Evict drops a resident block server-side.
func (cl *Client) Evict(array string, block int) error {
	_, err := cl.call(&request{Op: opEvict, Array: array, Block: block})
	return err
}

// Info returns an array's metadata.
func (cl *Client) Info(array string) (storage.ArrayInfo, error) {
	resp, err := cl.call(&request{Op: opInfo, Array: array})
	if err != nil {
		return storage.ArrayInfo{}, err
	}
	return resp.Info, nil
}

// Stats returns the server store's counters.
func (cl *Client) Stats() (storage.Stats, error) {
	resp, err := cl.call(&request{Op: opStats})
	if err != nil {
		return storage.Stats{}, err
	}
	return resp.Stats, nil
}

// ReadAll fetches an entire array block by block.
func (cl *Client) ReadAll(array string) ([]byte, error) {
	info, err := cl.Info(array)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, info.Size)
	for b := 0; b < info.NumBlocks(); b++ {
		lo := int64(b) * info.BlockSize
		hi := lo + info.BlockSize
		if hi > info.Size {
			hi = info.Size
		}
		data, err := cl.ReadInterval(array, lo, hi)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}
