package remote

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dooc/internal/compress"
	"dooc/internal/faults"
	"dooc/internal/obs"
	"dooc/internal/storage"
)

// Options tunes a Client's recovery behavior.
type Options struct {
	// Timeout bounds each request round trip. Zero disables deadlines —
	// the default, because a read of a not-yet-written interval legally
	// blocks server-side for as long as the producer takes.
	Timeout time.Duration
	// MaxRetries is how many reconnect-and-replay attempts follow a lost
	// connection or expired deadline (default 3; negative disables retries).
	MaxRetries int
	// ReconnectBackoff is the delay before the first reconnect attempt; it
	// doubles per attempt (default 20ms).
	ReconnectBackoff time.Duration
	// Faults, when non-nil, injects connection drops and payload corruption
	// into this client's outgoing frames.
	Faults *faults.Injector
	// Obs, when non-nil, receives the client's RPC metrics
	// (dooc_remote_client_*).
	Obs *obs.Registry
	// Codec, when non-nil, opens the connection with a capability handshake
	// and compresses payloads both ways with any codec the peer's mask
	// admits. Against a legacy server the client transparently falls back
	// to the plain protocol (NegotiatedCodec reports nil).
	Codec compress.Codec
	// CompressMin is the smallest payload worth compressing (default 1 KiB).
	CompressMin int
	// Handshake forces the capability hello even without a codec, so the
	// client learns the server's full capability mask (ClusterCapable).
	// Against a legacy server the client still falls back to the plain
	// protocol; the mask then stays zero.
	Handshake bool
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 20 * time.Millisecond
	}
	return o
}

// errDeadline reports an expired per-request deadline.
var errDeadline = errors.New("remote: request deadline exceeded")

// serverError is an error the server returned for a dispatched request; it
// is terminal (the connection is fine), but a replayed mutation may map it
// back to success — see resolveReplay.
type serverError struct {
	op  opcode
	msg string
}

func (e *serverError) Error() string { return fmt.Sprintf("remote %s: %s", e.op, e.msg) }

type callResult struct {
	resp *response
	err  error
}

// pendingCall ties an in-flight request to the connection generation that
// carries it, so a dead connection fails exactly its own calls.
type pendingCall struct {
	ch  chan callResult
	gen int
}

// Client is a compute node's handle on a remote storage server. It is safe
// for concurrent use; requests are multiplexed over one TCP connection and
// matched to responses by ID, so a read blocked on an unwritten interval
// does not stall other requests. When the connection is lost the client
// reconnects with backoff and replays in-flight calls: reads are idempotent,
// and mutations are resolved against the server's immutable-array state
// (a write that already landed verifies by read-back instead of failing).
type Client struct {
	addr string
	opts Options

	// reconnMu single-flights reconnection attempts.
	reconnMu sync.Mutex

	mu         sync.Mutex
	c          *conn // nil between a lost connection and its replacement
	gen        int
	nextID     uint64
	pending    map[uint64]*pendingCall
	closed     bool
	reconnects int64
	negotiated compress.Codec // wire codec agreed at handshake; nil = plain
	peerMask   uint8          // server capability mask from the handshake; 0 = plain/legacy

	metrics clientMetrics

	wg sync.WaitGroup
}

// Dial connects to a storage server with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to a storage server.
func DialOptions(addr string, opts Options) (*Client, error) {
	cl := &Client{
		addr:    addr,
		opts:    opts.withDefaults(),
		pending: make(map[uint64]*pendingCall),
		metrics: newClientMetrics(opts.Obs),
	}
	c, err := cl.dialConn()
	if err != nil {
		return nil, err
	}
	cl.c = c
	cl.wg.Add(1)
	go cl.readLoop(cl.c, cl.gen)
	return cl, nil
}

// dialConn dials the server and, when a codec is configured, runs the
// capability handshake. A peer that does not speak the handshake drops the
// connection (or stays silent past the deadline); the client then redials
// and talks the plain protocol, so old servers keep working uncompressed.
func (cl *Client) dialConn() (*conn, error) {
	raw, err := net.Dial("tcp", cl.addr)
	if err != nil {
		return nil, err
	}
	var negotiated compress.Codec
	var peerMask uint8
	codec := cl.opts.Codec
	if codec != nil && codec.ID() == (compress.Raw{}).ID() {
		codec = nil
	}
	if codec != nil || cl.opts.Handshake {
		neg, mask, herr := clientHandshake(raw, codec)
		if herr != nil {
			raw.Close()
			raw, err = net.Dial("tcp", cl.addr)
			if err != nil {
				return nil, err
			}
		} else {
			negotiated, peerMask = neg, mask
		}
	}
	c := newFaultyConn(raw, cl.opts.Faults)
	c.codec = negotiated
	c.compressMin = compressMinOrDefault(cl.opts.CompressMin)
	c.wire = cl.metrics.wire
	cl.mu.Lock()
	cl.negotiated = negotiated
	cl.peerMask = peerMask
	cl.mu.Unlock()
	return c, nil
}

// NegotiatedCodec returns the wire codec agreed with the server at the last
// (re)connect, or nil when the connection speaks the plain protocol.
func (cl *Client) NegotiatedCodec() compress.Codec {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.negotiated
}

// Close tears the connection down; in-flight calls fail terminally.
func (cl *Client) Close() {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	c := cl.c
	cl.mu.Unlock()
	if c != nil {
		c.close()
	}
	cl.wg.Wait()
}

// Reconnects returns how many times the client re-established its
// connection after an unexpected loss.
func (cl *Client) Reconnects() int64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.reconnects
}

func (cl *Client) readLoop(c *conn, gen int) {
	defer cl.wg.Done()
	for {
		var resp response
		if err := c.dec.Decode(&resp); err != nil {
			cl.failGeneration(gen)
			return
		}
		cl.mu.Lock()
		pc, ok := cl.pending[resp.ID]
		if ok && pc.gen == gen {
			delete(cl.pending, resp.ID)
		} else {
			ok = false
		}
		cl.mu.Unlock()
		if ok {
			pc.ch <- callResult{resp: &resp}
		}
	}
}

// failGeneration fails every pending call carried by generation gen: with
// errClosed after a deliberate Close (terminal), with errConnLost otherwise
// (eligible for replay).
func (cl *Client) failGeneration(gen int) {
	cl.mu.Lock()
	if cl.gen == gen && cl.c != nil {
		cl.c.close()
		cl.c = nil
	}
	err := errConnLost
	if cl.closed {
		err = errClosed
	}
	for id, pc := range cl.pending {
		if pc.gen != gen {
			continue
		}
		delete(cl.pending, id)
		pc.ch <- callResult{err: err}
	}
	cl.mu.Unlock()
}

// reconnect re-establishes the connection if it is currently down.
func (cl *Client) reconnect() error {
	cl.reconnMu.Lock()
	defer cl.reconnMu.Unlock()
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return errClosed
	}
	if cl.c != nil { // another caller already reconnected
		cl.mu.Unlock()
		return nil
	}
	cl.mu.Unlock()
	c, err := cl.dialConn()
	if err != nil {
		return fmt.Errorf("%w: reconnect to %s: %v", errConnLost, cl.addr, err)
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		c.close()
		return errClosed
	}
	cl.gen++
	cl.c = c
	cl.reconnects++
	cl.metrics.reconnects.Inc()
	gen := cl.gen
	cl.wg.Add(1)
	cl.mu.Unlock()
	go cl.readLoop(c, gen)
	return nil
}

// roundTrip performs one attempt of a request over the current connection,
// applying the deadline. It never retries.
func (cl *Client) roundTrip(req *request, timeout time.Duration) (*response, error) {
	started := time.Now()
	defer func() { cl.metrics.rpcSeconds.Observe(time.Since(started).Seconds()) }()
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, errClosed
	}
	c := cl.c
	if c == nil {
		cl.mu.Unlock()
		return nil, errConnLost
	}
	gen := cl.gen
	cl.nextID++
	id := cl.nextID
	req.ID = id
	pc := &pendingCall{ch: make(chan callResult, 1), gen: gen}
	cl.pending[id] = pc
	cl.mu.Unlock()

	n, err := c.sendRequest(req)
	cl.metrics.bytesOut.Add(int64(n))
	if err != nil {
		cl.mu.Lock()
		delete(cl.pending, id)
		if cl.gen == gen && cl.c == c {
			cl.c.close()
			cl.c = nil
		}
		cl.mu.Unlock()
		return nil, fmt.Errorf("%w: send %s: %v", errConnLost, req.Op, err)
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case res := <-pc.ch:
		if res.err != nil {
			return nil, res.err
		}
		if res.resp.Err != "" {
			return nil, &serverError{op: req.Op, msg: res.resp.Err}
		}
		if err := verifyResponse(req, res.resp); err != nil {
			cl.metrics.checksumFails.Inc()
			return nil, err
		}
		cl.metrics.bytesIn.Add(int64(len(res.resp.Data)))
		if res.resp.Enc {
			data, derr := decodePayload(res.resp.Data, cl.metrics.wire)
			if derr != nil {
				cl.metrics.checksumFails.Inc()
				return nil, fmt.Errorf("remote: %s %q [%d,%d): decoding wire frame: %w", req.Op, req.Array, req.Lo, req.Hi, derr)
			}
			res.resp.Data, res.resp.Enc = data, false
		}
		return res.resp, nil
	case <-timer:
		cl.mu.Lock()
		delete(cl.pending, id)
		cl.mu.Unlock()
		return nil, fmt.Errorf("%w: %s %q after %v", errDeadline, req.Op, req.Array, timeout)
	}
}

// retryable reports whether a failed attempt is worth a reconnect-and-replay.
// Server-side errors and checksum mismatches are terminal; only transport
// losses and deadlines are transient.
func retryable(err error) bool {
	return errors.Is(err, errConnLost) || errors.Is(err, errDeadline)
}

// call performs a request with the full recovery policy: per-attempt
// deadline, reconnect with exponential backoff, and idempotent replay.
func (cl *Client) call(req *request) (*response, error) {
	backoff := cl.opts.ReconnectBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := cl.reconnect(); err != nil {
				if errors.Is(err, errClosed) {
					return nil, err
				}
				lastErr = err
				if attempt >= cl.opts.MaxRetries {
					break
				}
				time.Sleep(backoff)
				backoff *= 2
				continue
			}
		}
		resp, err := cl.roundTrip(req, cl.opts.Timeout)
		if err == nil {
			return resp, nil
		}
		if attempt > 0 {
			// A replayed mutation may fail precisely because the original
			// attempt landed before the connection died; resolve against the
			// server's state before trusting the error.
			resolved, inconclusive := cl.resolveReplay(req, err)
			if resolved {
				return &response{}, nil
			}
			if inconclusive && attempt < cl.opts.MaxRetries {
				// The verification itself hit a transport fault; replay the
				// whole mutation — it will re-verify if it collides again.
				lastErr = err
				time.Sleep(backoff)
				backoff *= 2
				continue
			}
		}
		if !retryable(err) {
			return nil, err
		}
		lastErr = err
		if attempt >= cl.opts.MaxRetries {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return nil, fmt.Errorf("remote: %s %q failed after %d retries: %w", req.Op, req.Array, cl.opts.MaxRetries, lastErr)
}

// resolveReplay decides whether a replayed mutation's failure actually means
// the original attempt succeeded. Arrays are immutable, so the checks are
// exact: a write that landed is byte-identical on read-back, a create that
// landed left matching metadata, a delete that landed left nothing.
// inconclusive means the verification itself hit a transport fault (or
// found the interval unwritten) and the caller should replay the mutation.
func (cl *Client) resolveReplay(req *request, err error) (resolved, inconclusive bool) {
	var se *serverError
	if !errors.As(err, &se) {
		return false, false
	}
	switch req.Op {
	case opWrite:
		if !strings.Contains(se.msg, "immutable") {
			return false, false
		}
		// Bound the read-back: if the interval is not fully written the
		// verification read would park server-side forever.
		verifyTimeout := cl.opts.Timeout
		if verifyTimeout <= 0 {
			verifyTimeout = 500 * time.Millisecond
		}
		resp, rerr := cl.roundTrip(&request{Op: opRead, Array: req.Array, Lo: req.Lo, Hi: req.Hi}, verifyTimeout)
		if rerr != nil {
			return false, retryable(rerr)
		}
		if bytes.Equal(resp.Data, req.Data) {
			return true, false // the original write landed
		}
		return false, false // genuinely conflicting data
	case opCreate:
		if !strings.Contains(se.msg, "already exists") {
			return false, false
		}
		resp, rerr := cl.roundTrip(&request{Op: opInfo, Array: req.Array}, cl.opts.Timeout)
		if rerr != nil {
			return false, retryable(rerr)
		}
		if resp.Info.Size == req.Size && resp.Info.BlockSize == req.BlockSize {
			return true, false
		}
		return false, false
	case opDelete:
		if strings.Contains(se.msg, "does not exist") {
			return true, false
		}
	}
	return false, false
}

// Create declares an immutable array on the server.
func (cl *Client) Create(name string, size, blockSize int64) error {
	_, err := cl.call(&request{Op: opCreate, Array: name, Size: size, BlockSize: blockSize})
	return err
}

// Delete removes an array.
func (cl *Client) Delete(name string) error {
	_, err := cl.call(&request{Op: opDelete, Array: name})
	return err
}

// ReadInterval fetches [lo, hi) of an array, blocking (server-side) until
// the interval has been written.
func (cl *Client) ReadInterval(array string, lo, hi int64) ([]byte, error) {
	resp, err := cl.call(&request{Op: opRead, Array: array, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// WriteInterval publishes [lo, hi) of an array. The interval must not have
// been written before (immutability is enforced by the server's store).
func (cl *Client) WriteInterval(array string, lo, hi int64, data []byte) error {
	_, err := cl.call(&request{Op: opWrite, Array: array, Lo: lo, Hi: hi, Data: data})
	return err
}

// Prefetch warms the server-side cache for [lo, hi).
func (cl *Client) Prefetch(array string, lo, hi int64) error {
	_, err := cl.call(&request{Op: opPrefetch, Array: array, Lo: lo, Hi: hi})
	return err
}

// Flush persists the array on the server's scratch directory.
func (cl *Client) Flush(array string) error {
	_, err := cl.call(&request{Op: opFlush, Array: array})
	return err
}

// Evict drops a resident block server-side.
func (cl *Client) Evict(array string, block int) error {
	_, err := cl.call(&request{Op: opEvict, Array: array, Block: block})
	return err
}

// Info returns an array's metadata.
func (cl *Client) Info(array string) (storage.ArrayInfo, error) {
	resp, err := cl.call(&request{Op: opInfo, Array: array})
	if err != nil {
		return storage.ArrayInfo{}, err
	}
	return resp.Info, nil
}

// Stats returns the server store's counters.
func (cl *Client) Stats() (storage.Stats, error) {
	resp, err := cl.call(&request{Op: opStats})
	if err != nil {
		return storage.Stats{}, err
	}
	return resp.Stats, nil
}

// ReadAll fetches an entire array block by block.
func (cl *Client) ReadAll(array string) ([]byte, error) {
	info, err := cl.Info(array)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, info.Size)
	for b := 0; b < info.NumBlocks(); b++ {
		lo := int64(b) * info.BlockSize
		hi := lo + info.BlockSize
		if hi > info.Size {
			hi = info.Size
		}
		data, err := cl.ReadInterval(array, lo, hi)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}
