// Package remote exposes a DOoC storage node over TCP — the paper's
// compute-node / I/O-node separation with a real network in between
// ("Data is streamed from the I/O nodes to the requesting compute nodes
// using the 4X QDR InfiniBand interconnect"). A server wraps one storage
// filter (typically scanning an I/O node's scratch directory); clients on
// other processes read and write intervals of its immutable arrays.
//
// The wire protocol is deliberately interval-granular, mirroring the
// storage layer's lease API: a read round-trip blocks server-side until the
// interval has been written (the immutable-array discipline travels over
// the network unchanged), and a write publishes atomically on receipt.
// Payload frames carry a CRC32 checksum so wire corruption is detected at
// the protocol layer instead of surfacing as a wrong eigenvalue.
package remote

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"dooc/internal/compress"
	"dooc/internal/faults"
	"dooc/internal/jobs"
	"dooc/internal/proxy"
	"dooc/internal/storage"
)

// opcode identifies a request type.
type opcode uint8

const (
	opCreate opcode = iota + 1
	opDelete
	opRead
	opWrite
	opPrefetch
	opFlush
	opInfo
	opEvict
	opStats
	// Job-service verbs (server must be constructed with ServerOptions.Jobs).
	opJobSubmit
	opJobStatus
	opJobCancel
	opJobResult
	opJobList
	// opJobHistory pages through terminal jobs (appended last for wire
	// compatibility with older peers).
	opJobHistory
	// Cluster peer verbs (server must be constructed with
	// ServerOptions.Peer; gated by ClusterCapBit in the handshake mask).
	opPeerPut
	opPeerGet
	opPeerDel
	opPeerView
	// Proxy-object verbs (server's job service must have a proxy registry;
	// gated by ProxyCapBit in the handshake mask). Appended last for wire
	// compatibility with older peers.
	opProxyStat
	opProxyAddRef
	opProxyRelease
	opProxyResolve
	// opJobProxy returns a finished job's result handle instead of its bytes.
	opJobProxy
)

func (o opcode) String() string {
	switch o {
	case opCreate:
		return "create"
	case opDelete:
		return "delete"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opPrefetch:
		return "prefetch"
	case opFlush:
		return "flush"
	case opInfo:
		return "info"
	case opEvict:
		return "evict"
	case opStats:
		return "stats"
	case opJobSubmit:
		return "job-submit"
	case opJobStatus:
		return "job-status"
	case opJobCancel:
		return "job-cancel"
	case opJobResult:
		return "job-result"
	case opJobList:
		return "job-list"
	case opJobHistory:
		return "job-history"
	case opPeerPut:
		return "peer-put"
	case opPeerGet:
		return "peer-get"
	case opPeerDel:
		return "peer-del"
	case opPeerView:
		return "peer-view"
	case opProxyStat:
		return "proxy-stat"
	case opProxyAddRef:
		return "proxy-addref"
	case opProxyRelease:
		return "proxy-release"
	case opProxyResolve:
		return "proxy-resolve"
	case opJobProxy:
		return "job-proxy"
	default:
		return fmt.Sprintf("opcode(%d)", uint8(o))
	}
}

// request is one client->server message. Sum is the CRC32 (IEEE) of Data,
// set by the sender and verified by the receiver. When Enc is true, Data is
// an adaptive compress frame and Sum covers the wire (encoded) bytes.
type request struct {
	ID              uint64
	Op              opcode
	Array           string
	Lo, Hi          int64
	Size, BlockSize int64
	Block           int
	Data            []byte
	Enc             bool
	Sum             uint32
	// Job carries the job-verb parameters (gob omits the zero value for
	// storage verbs; old peers simply never see the field).
	Job jobWire
	// Cluster peer-verb parameters: the block epoch and durability pin for
	// peer-put, and the gossiped membership view for peer-view. Gob omits
	// the zero values on every other verb.
	Epoch   uint64
	Durable bool
	View    PeerView
}

// response is one server->client message. Sum covers Data (the wire form
// when Enc is true).
type response struct {
	ID    uint64
	Err   string
	Data  []byte
	Enc   bool
	Info  storage.ArrayInfo
	Stats storage.Stats
	Sum   uint32
	// Job and JobList carry job-verb results (status snapshots; job-list).
	Job     jobs.JobStatus
	JobList []jobs.JobStatus
	// JobTotal is the total terminal-job count behind a job-history page.
	JobTotal int
	// Cluster peer-verb results: Held reports a peer-get hit (and a
	// peer-put accepted), Epoch tags the returned block, View answers a
	// view exchange.
	Held  bool
	Epoch uint64
	View  PeerView
	// Proxy-verb results: the handle (stat/addref/job-proxy/resolve), the
	// live reference count (stat/addref/release), and the payload's total
	// length behind a chunked resolve. Gob omits the zero values elsewhere.
	Proxy proxy.Handle
	Refs  int
	Total int64
}

// Wire-compression handshake. A gob stream's first byte is a message length
// prefix, which is never zero, so a leading 0x00 unambiguously marks a
// capability hello. A codec-configured client opens with a hello; a current
// server consumes it and replies in kind, after which both sides may send
// compressed payloads the peer's mask admits. A legacy server's gob decoder
// chokes on the 0x00 and drops the connection, and the client falls back to
// redialing the plain protocol — old peers keep working, just uncompressed.
const (
	helloByte    = 0x00
	helloLen     = 8
	protoVersion = 1

	// defaultCompressMin is the payload size below which compression is not
	// attempted: small frames are latency-bound and the 18-byte frame header
	// plus encode time buys nothing.
	defaultCompressMin = 1024

	// handshakeTimeout bounds the client's wait for the server's hello reply.
	handshakeTimeout = 2 * time.Second
)

var helloMagic = [4]byte{'D', 'Z', 'R', 'H'}

// compressMinOrDefault resolves a configured compression threshold.
func compressMinOrDefault(n int) int {
	if n <= 0 {
		return defaultCompressMin
	}
	return n
}

// helloFrame renders a capability hello: marker, magic, protocol version,
// codec capability mask (compress.Mask), preferred codec ID.
func helloFrame(mask, pref uint8) []byte {
	return []byte{helloByte, helloMagic[0], helloMagic[1], helloMagic[2], helloMagic[3], protoVersion, mask, pref}
}

// parseHello validates a received hello and extracts the peer's capability
// mask and preferred codec.
func parseHello(b []byte) (mask, pref uint8, err error) {
	if len(b) != helloLen || b[0] != helloByte ||
		b[1] != helloMagic[0] || b[2] != helloMagic[1] || b[3] != helloMagic[2] || b[4] != helloMagic[3] {
		return 0, 0, fmt.Errorf("remote: malformed handshake hello % x", b)
	}
	if b[5] < 1 {
		return 0, 0, fmt.Errorf("remote: handshake protocol version %d", b[5])
	}
	return b[6], b[7], nil
}

// clientHandshake sends a hello and waits (bounded) for the server's reply.
// It returns the negotiated encode codec (nil when no codec was requested
// or the server cannot decode it) and the server's raw capability mask —
// codec bits plus ClusterCapBit and ProxyCapBit. An error means the peer did not speak the
// handshake — the caller must discard the connection and redial plain.
// codec may be nil: the hello is then a pure capability probe (the cluster
// layer dials with no codec but still needs the mask).
func clientHandshake(raw net.Conn, codec compress.Codec) (compress.Codec, uint8, error) {
	pref := (compress.Raw{}).ID()
	if codec != nil {
		pref = codec.ID()
	}
	raw.SetDeadline(time.Now().Add(handshakeTimeout))
	defer raw.SetDeadline(time.Time{})
	if _, err := raw.Write(helloFrame(compress.Mask()&^(ClusterCapBit|ProxyCapBit), pref)); err != nil {
		return nil, 0, err
	}
	reply := make([]byte, helloLen)
	if _, err := io.ReadFull(raw, reply); err != nil {
		return nil, 0, err
	}
	mask, _, err := parseHello(reply)
	if err != nil {
		return nil, 0, err
	}
	if codec == nil || mask&(1<<codec.ID()) == 0 {
		return nil, mask, nil
	}
	return codec, mask, nil
}

// payloadSum is the wire checksum of a payload (CRC32/IEEE; 0 for empty).
func payloadSum(data []byte) uint32 {
	if len(data) == 0 {
		return 0
	}
	return crc32.ChecksumIEEE(data)
}

// verifyRequest checks a received request's payload against its checksum.
func verifyRequest(r *request) error {
	if got := payloadSum(r.Data); got != r.Sum {
		return fmt.Errorf("remote: %s %q [%d,%d): payload checksum mismatch (crc %08x, frame says %08x): corrupted in flight",
			r.Op, r.Array, r.Lo, r.Hi, got, r.Sum)
	}
	return nil
}

// verifyResponse checks a received response's payload against its checksum.
// The request provides attribution.
func verifyResponse(req *request, r *response) error {
	if got := payloadSum(r.Data); got != r.Sum {
		return fmt.Errorf("remote: %s %q [%d,%d): response payload checksum mismatch (crc %08x, frame says %08x): corrupted in flight",
			req.Op, req.Array, req.Lo, req.Hi, got, r.Sum)
	}
	return nil
}

// conn wraps a TCP stream with gob codecs and a write lock (responses are
// sent from many goroutines — reads can block server-side for a long time
// and must not stall other requests). An optional fault injector can drop
// the connection or corrupt outgoing payloads after their checksum is
// computed, emulating a flaky wire.
type conn struct {
	raw    net.Conn
	br     *bufio.Reader
	dec    *gob.Decoder
	faults *faults.Injector

	// codec, when non-nil, compresses outgoing payloads of at least
	// compressMin bytes into adaptive frames (Enc=true). It is set only
	// after a successful capability handshake, so a frame is never sent to
	// a peer that cannot decode it.
	codec       compress.Codec
	compressMin int
	wire        *wireCompressMetrics

	mu  sync.Mutex
	enc *gob.Encoder
}

func newConn(raw net.Conn) *conn { return newFaultyConn(raw, nil) }

func newFaultyConn(raw net.Conn, inj *faults.Injector) *conn {
	br := bufio.NewReader(raw)
	return &conn{raw: raw, br: br, dec: gob.NewDecoder(br), enc: gob.NewEncoder(raw), faults: inj}
}

// framePool recycles wire-compression frame buffers across sends. gob's
// Encode copies the payload into its own stream buffer before returning, so
// a frame is dead the moment Encode returns and its backing can be reused
// by the next send on any connection.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// encodePayload compresses data for the wire if the connection negotiated a
// codec and the payload is worth it. The adaptive encoder's raw bail-out is
// mapped back to sending the plain payload: a raw frame would only add the
// header. When the returned bool is true, the frame's backing is pooled and
// the caller must release it with putFrame after the bytes have been copied
// to the wire.
func (c *conn) encodePayload(data []byte) ([]byte, bool, *[]byte) {
	if c.codec == nil || len(data) < c.compressMin {
		return data, false, nil
	}
	start := time.Now()
	buf := framePool.Get().(*[]byte)
	frame, used := compress.AppendFrameAdaptive((*buf)[:0], c.codec, data)
	*buf = frame[:0]
	secs := time.Since(start).Seconds()
	if used.ID() == (compress.Raw{}).ID() {
		framePool.Put(buf)
		c.wire.noteBailout(secs)
		return data, false, nil
	}
	c.wire.noteEncode(used.ID(), len(data), len(frame), secs)
	return frame, true, buf
}

// putFrame returns an encodePayload frame buffer to the pool (nil is a no-op).
func putFrame(buf *[]byte) {
	if buf != nil {
		framePool.Put(buf)
	}
}

// decodePayload undoes wire compression on a received payload.
func decodePayload(data []byte, w *wireCompressMetrics) ([]byte, error) {
	start := time.Now()
	raw, used, err := compress.DecodeFrame(data)
	if err != nil {
		return nil, err
	}
	w.noteDecode(used.ID(), len(data), len(raw), time.Since(start).Seconds())
	return raw, nil
}

// corruptCopy returns data, or a bit-flipped copy if the injector fires.
// The copy keeps the sender's buffer (and any lease it aliases) intact.
func (c *conn) corruptCopy(data []byte) []byte {
	if c.faults == nil || len(data) == 0 {
		return data
	}
	cp := append([]byte(nil), data...)
	if c.faults.Corrupt(cp) {
		return cp
	}
	return data
}

// sendRequest encodes and sends a request, returning the payload's wire
// length (the frame length when compressed).
func (c *conn) sendRequest(r *request) (int, error) {
	out := *r
	var fbuf *[]byte
	out.Data, out.Enc, fbuf = c.encodePayload(r.Data)
	out.Sum = payloadSum(out.Data)
	if c.faults.Drop() {
		putFrame(fbuf)
		c.raw.Close()
		return 0, fmt.Errorf("remote: send %s: %w: connection dropped", r.Op, faults.ErrInjected)
	}
	out.Data = c.corruptCopy(out.Data)
	n := len(out.Data)
	c.mu.Lock()
	err := c.enc.Encode(&out)
	c.mu.Unlock()
	putFrame(fbuf)
	return n, err
}

// sendResponse encodes and sends a response, returning the payload's wire
// length.
func (c *conn) sendResponse(r *response) (int, error) {
	out := *r
	var fbuf *[]byte
	out.Data, out.Enc, fbuf = c.encodePayload(r.Data)
	out.Sum = payloadSum(out.Data)
	if c.faults.Drop() {
		putFrame(fbuf)
		c.raw.Close()
		return 0, fmt.Errorf("remote: send response: %w: connection dropped", faults.ErrInjected)
	}
	out.Data = c.corruptCopy(out.Data)
	n := len(out.Data)
	c.mu.Lock()
	err := c.enc.Encode(&out)
	c.mu.Unlock()
	putFrame(fbuf)
	return n, err
}

func (c *conn) close() error { return c.raw.Close() }

// errClosed reports a deliberate local Close; it is terminal.
var errClosed = fmt.Errorf("remote: connection closed")

// errConnLost reports an unexpected connection teardown; calls failing with
// it are eligible for reconnect-and-replay.
var errConnLost = fmt.Errorf("remote: connection lost")
