// Package remote exposes a DOoC storage node over TCP — the paper's
// compute-node / I/O-node separation with a real network in between
// ("Data is streamed from the I/O nodes to the requesting compute nodes
// using the 4X QDR InfiniBand interconnect"). A server wraps one storage
// filter (typically scanning an I/O node's scratch directory); clients on
// other processes read and write intervals of its immutable arrays.
//
// The wire protocol is deliberately interval-granular, mirroring the
// storage layer's lease API: a read round-trip blocks server-side until the
// interval has been written (the immutable-array discipline travels over
// the network unchanged), and a write publishes atomically on receipt.
package remote

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"dooc/internal/storage"
)

// opcode identifies a request type.
type opcode uint8

const (
	opCreate opcode = iota + 1
	opDelete
	opRead
	opWrite
	opPrefetch
	opFlush
	opInfo
	opEvict
	opStats
)

func (o opcode) String() string {
	switch o {
	case opCreate:
		return "create"
	case opDelete:
		return "delete"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opPrefetch:
		return "prefetch"
	case opFlush:
		return "flush"
	case opInfo:
		return "info"
	case opEvict:
		return "evict"
	case opStats:
		return "stats"
	default:
		return fmt.Sprintf("opcode(%d)", uint8(o))
	}
}

// request is one client->server message.
type request struct {
	ID              uint64
	Op              opcode
	Array           string
	Lo, Hi          int64
	Size, BlockSize int64
	Block           int
	Data            []byte
}

// response is one server->client message.
type response struct {
	ID    uint64
	Err   string
	Data  []byte
	Info  storage.ArrayInfo
	Stats storage.Stats
}

// conn wraps a TCP stream with gob codecs and a write lock (responses are
// sent from many goroutines — reads can block server-side for a long time
// and must not stall other requests).
type conn struct {
	raw net.Conn
	dec *gob.Decoder

	mu  sync.Mutex
	enc *gob.Encoder
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, dec: gob.NewDecoder(raw), enc: gob.NewEncoder(raw)}
}

func (c *conn) sendRequest(r *request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(r)
}

func (c *conn) sendResponse(r *response) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(r)
}

func (c *conn) close() error { return c.raw.Close() }

// errClosed reports connection teardown uniformly.
var errClosed = fmt.Errorf("remote: connection closed")
