// Package remote exposes a DOoC storage node over TCP — the paper's
// compute-node / I/O-node separation with a real network in between
// ("Data is streamed from the I/O nodes to the requesting compute nodes
// using the 4X QDR InfiniBand interconnect"). A server wraps one storage
// filter (typically scanning an I/O node's scratch directory); clients on
// other processes read and write intervals of its immutable arrays.
//
// The wire protocol is deliberately interval-granular, mirroring the
// storage layer's lease API: a read round-trip blocks server-side until the
// interval has been written (the immutable-array discipline travels over
// the network unchanged), and a write publishes atomically on receipt.
// Payload frames carry a CRC32 checksum so wire corruption is detected at
// the protocol layer instead of surfacing as a wrong eigenvalue.
package remote

import (
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"net"
	"sync"

	"dooc/internal/faults"
	"dooc/internal/storage"
)

// opcode identifies a request type.
type opcode uint8

const (
	opCreate opcode = iota + 1
	opDelete
	opRead
	opWrite
	opPrefetch
	opFlush
	opInfo
	opEvict
	opStats
)

func (o opcode) String() string {
	switch o {
	case opCreate:
		return "create"
	case opDelete:
		return "delete"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opPrefetch:
		return "prefetch"
	case opFlush:
		return "flush"
	case opInfo:
		return "info"
	case opEvict:
		return "evict"
	case opStats:
		return "stats"
	default:
		return fmt.Sprintf("opcode(%d)", uint8(o))
	}
}

// request is one client->server message. Sum is the CRC32 (IEEE) of Data,
// set by the sender and verified by the receiver.
type request struct {
	ID              uint64
	Op              opcode
	Array           string
	Lo, Hi          int64
	Size, BlockSize int64
	Block           int
	Data            []byte
	Sum             uint32
}

// response is one server->client message. Sum covers Data.
type response struct {
	ID    uint64
	Err   string
	Data  []byte
	Info  storage.ArrayInfo
	Stats storage.Stats
	Sum   uint32
}

// payloadSum is the wire checksum of a payload (CRC32/IEEE; 0 for empty).
func payloadSum(data []byte) uint32 {
	if len(data) == 0 {
		return 0
	}
	return crc32.ChecksumIEEE(data)
}

// verifyRequest checks a received request's payload against its checksum.
func verifyRequest(r *request) error {
	if got := payloadSum(r.Data); got != r.Sum {
		return fmt.Errorf("remote: %s %q [%d,%d): payload checksum mismatch (crc %08x, frame says %08x): corrupted in flight",
			r.Op, r.Array, r.Lo, r.Hi, got, r.Sum)
	}
	return nil
}

// verifyResponse checks a received response's payload against its checksum.
// The request provides attribution.
func verifyResponse(req *request, r *response) error {
	if got := payloadSum(r.Data); got != r.Sum {
		return fmt.Errorf("remote: %s %q [%d,%d): response payload checksum mismatch (crc %08x, frame says %08x): corrupted in flight",
			req.Op, req.Array, req.Lo, req.Hi, got, r.Sum)
	}
	return nil
}

// conn wraps a TCP stream with gob codecs and a write lock (responses are
// sent from many goroutines — reads can block server-side for a long time
// and must not stall other requests). An optional fault injector can drop
// the connection or corrupt outgoing payloads after their checksum is
// computed, emulating a flaky wire.
type conn struct {
	raw    net.Conn
	dec    *gob.Decoder
	faults *faults.Injector

	mu  sync.Mutex
	enc *gob.Encoder
}

func newConn(raw net.Conn) *conn { return newFaultyConn(raw, nil) }

func newFaultyConn(raw net.Conn, inj *faults.Injector) *conn {
	return &conn{raw: raw, dec: gob.NewDecoder(raw), enc: gob.NewEncoder(raw), faults: inj}
}

// corruptCopy returns data, or a bit-flipped copy if the injector fires.
// The copy keeps the sender's buffer (and any lease it aliases) intact.
func (c *conn) corruptCopy(data []byte) []byte {
	if c.faults == nil || len(data) == 0 {
		return data
	}
	cp := append([]byte(nil), data...)
	if c.faults.Corrupt(cp) {
		return cp
	}
	return data
}

func (c *conn) sendRequest(r *request) error {
	r.Sum = payloadSum(r.Data)
	if c.faults.Drop() {
		c.raw.Close()
		return fmt.Errorf("remote: send %s: %w: connection dropped", r.Op, faults.ErrInjected)
	}
	out := *r
	out.Data = c.corruptCopy(r.Data)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(&out)
}

func (c *conn) sendResponse(r *response) error {
	r.Sum = payloadSum(r.Data)
	if c.faults.Drop() {
		c.raw.Close()
		return fmt.Errorf("remote: send response: %w: connection dropped", faults.ErrInjected)
	}
	out := *r
	out.Data = c.corruptCopy(r.Data)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(&out)
}

func (c *conn) close() error { return c.raw.Close() }

// errClosed reports a deliberate local Close; it is terminal.
var errClosed = fmt.Errorf("remote: connection closed")

// errConnLost reports an unexpected connection teardown; calls failing with
// it are eligible for reconnect-and-replay.
var errConnLost = fmt.Errorf("remote: connection lost")
