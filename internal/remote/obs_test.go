package remote

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dooc/internal/obs"
	"dooc/internal/storage"
)

// startObsServer is startServer with a shared registry on both ends.
func startObsServer(t *testing.T, reg *obs.Registry) (*Server, *Client) {
	t.Helper()
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenOptions(st, "127.0.0.1:0", ServerOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialOptions(srv.Addr(), Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		st.Close()
	})
	return srv, cl
}

// TestRemoteMetricsReconcile checks that the wire is accounted identically on
// both ends: the client's RPC-latency histogram counts exactly the requests
// the server received, payload byte counters agree crosswise, and the active
// gauge settles back to zero once the traffic stops.
func TestRemoteMetricsReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	srv, cl := startObsServer(t, reg)

	if err := cl.Create("arr", 64, 32); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("ab"), 16)
	if err := cl.WriteInterval("arr", 0, 32, payload); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("arr", 32, 64, payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.ReadInterval("arr", 0, 32); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}

	if got, want := reg.Sum("dooc_remote_server_requests_total"), srv.Requests(); got != want {
		t.Errorf("server requests metric = %d, Server.Requests() = %d", got, want)
	}
	// Clean connection, no retries: one client round trip per server request.
	if got, want := reg.Sum("dooc_remote_client_rpc_seconds"), srv.Requests(); got != want {
		t.Errorf("client observed %d round trips, server received %d", got, want)
	}
	// The wire is symmetric: what the client sends the server receives.
	if in, out := reg.Sum("dooc_remote_server_bytes_in_total"), reg.Sum("dooc_remote_client_bytes_out_total"); in != out {
		t.Errorf("server bytes in %d != client bytes out %d", in, out)
	}
	if out, in := reg.Sum("dooc_remote_server_bytes_out_total"), reg.Sum("dooc_remote_client_bytes_in_total"); out != in {
		t.Errorf("server bytes out %d != client bytes in %d", out, in)
	}
	if in, want := srv.BytesIn(), int64(2*len(payload)); in != want {
		t.Errorf("server bytes in = %d, want the two write payloads = %d", in, want)
	}
	if reconnects := reg.Sum("dooc_remote_client_reconnects_total"); reconnects != 0 {
		t.Errorf("clean run recorded %d reconnects", reconnects)
	}
	if fails := reg.Sum("dooc_remote_server_checksum_failures_total") + reg.Sum("dooc_remote_client_checksum_failures_total"); fails != 0 {
		t.Errorf("clean run recorded %d checksum failures", fails)
	}
	if active := reg.Sum("dooc_remote_server_active_requests"); active != 0 {
		t.Errorf("active-request gauge = %d after all replies", active)
	}

	// The exposition endpoint serves the same numbers.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dooc_remote_server_requests_total") {
		t.Error("exposition is missing the server request counter")
	}
}

// TestServerShutdownDrains exercises the graceful path doocserve uses on
// SIGINT/SIGTERM: Shutdown must let an in-flight request finish (no dropped
// reply), stop accepting new connections, and return.
func TestServerShutdownDrains(t *testing.T) {
	reg := obs.NewRegistry()
	srv, cl := startObsServer(t, reg)
	if err := cl.Create("arr", 32, 32); err != nil {
		t.Fatal(err)
	}

	// Park a read on a not-yet-written interval, then write it from a second
	// client while Shutdown is draining: the parked reply must still arrive.
	readDone := make(chan error, 1)
	go func() {
		_, err := cl.ReadInterval("arr", 0, 32)
		readDone <- err
	}()
	// Give the read time to reach the server and park.
	time.Sleep(50 * time.Millisecond)

	cl2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	// A round trip proves the server accepted cl2's connection — Dial alone
	// only guarantees the kernel-level connect, and Shutdown closes the
	// listener immediately.
	if _, err := cl2.Info("arr"); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		srv.Shutdown(2 * time.Second)
		close(done)
	}()
	go func() {
		time.Sleep(50 * time.Millisecond)
		if err := cl2.WriteInterval("arr", 0, 32, bytes.Repeat([]byte("z"), 32)); err != nil {
			t.Errorf("drain-time write failed: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	select {
	case err := <-readDone:
		if err != nil {
			t.Errorf("parked read failed during drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked read never completed")
	}
	// The listener is closed: new connections must be refused.
	if _, err := Dial(srv.Addr()); err == nil {
		t.Error("Dial succeeded after Shutdown")
	}
	// Shutdown is idempotent.
	srv.Shutdown(time.Millisecond)
}
