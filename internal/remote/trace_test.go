package remote

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dooc/internal/jobs"
	"dooc/internal/obs"
)

// TestTracePropagatesOverWire: a submission stamped with a client trace
// context rides the gob framing to the server, the server's job spans join
// it, and the client-side and server-side Chrome traces compose into one
// causal tree under obs.ValidateCausal — the end-to-end property the CI
// trace smoke asserts across real processes.
func TestTracePropagatesOverWire(t *testing.T) {
	server := obs.NewTracer()
	cl, svc, _, _ := newJobServer(t, jobs.Config{MaxRunning: 2, QueueDepth: 8, Trace: server})

	client := obs.NewTracer()
	client.SetProcessName(obs.PidClient, "doocrun-test")
	root := obs.NewSpanContext()
	start := time.Now()

	st, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "alice", Iters: 2, Seed: 1, Trace: root})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != root.Trace.String() {
		t.Fatalf("submitted status trace ID %q, want the client's %q", st.TraceID, root.Trace.String())
	}
	if _, _, err := cl.JobResult(st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.JobStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.TraceID != root.Trace.String() {
		t.Fatalf("final status trace ID %q, want %q", final.TraceID, root.Trace.String())
	}
	client.SpanCtx("doocrun alice", "client", obs.PidClient, 0, start, time.Now(),
		root, obs.SpanID{}, nil)

	var clientBlob, serverBlob bytes.Buffer
	if err := client.WriteJSON(&clientBlob); err != nil {
		t.Fatal(err)
	}
	if err := server.WriteJSON(&serverBlob); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateCausal(clientBlob.Bytes(), serverBlob.Bytes()); err != nil {
		t.Fatalf("client+server traces do not form one causal tree: %v", err)
	}

	// The server's flight recorder carries the same identity, so the
	// journaled per-job trace joins the tree too.
	events, _, err := svc.Manager.FlightEvents(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Trace != root.Trace.String() {
		t.Fatalf("flight events do not carry the client trace ID: %+v", events)
	}
	jobBlob, err := obs.FlightTrace(events, obs.PidJobs, "job1")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateCausal(clientBlob.Bytes(), serverBlob.Bytes(), jobBlob); err != nil {
		t.Fatalf("flight-recorder trace breaks the causal tree: %v", err)
	}
}

// TestUntracedClientInterop: a legacy-style submission (zero trace words on
// the wire) still works against a tracing server — the server mints its own
// identity and the result round-trip is unaffected.
func TestUntracedClientInterop(t *testing.T) {
	cl, _, _, _ := newJobServer(t, jobs.Config{MaxRunning: 1, QueueDepth: 4, Trace: obs.NewTracer()})
	st, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "bob", Iters: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.JobResult(st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.JobStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.TraceID == "" {
		t.Fatal("tracing server minted no trace ID for an untraced submission")
	}
	if _, err := obs.ParseTraceID(final.TraceID); err != nil {
		t.Fatalf("minted trace ID %q does not parse: %v", final.TraceID, err)
	}
}

// TestJobStatusCarriesTraceJSON: the wire status marshals trace_id for HTTP
// consumers exactly as the local JobStatus does.
func TestJobStatusCarriesTraceJSON(t *testing.T) {
	cl, _, _, _ := newJobServer(t, jobs.Config{MaxRunning: 1, QueueDepth: 4, Trace: obs.NewTracer()})
	root := obs.NewSpanContext()
	st, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "carol", Iters: 1, Seed: 3, Trace: root})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.JobResult(st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.JobStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(final)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["trace_id"] != root.Trace.String() {
		t.Fatalf("status JSON trace_id = %v, want %s", decoded["trace_id"], root.Trace)
	}
}
