package remote

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dooc/internal/core"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// startServer spins up a loopback storage server over a fresh store.
func startServer(t *testing.T, scratch string) (*Server, *Client) {
	t.Helper()
	cfg := storage.Config{MemoryBudget: 1 << 20, Seed: 1}
	if scratch != "" {
		cfg.ScratchDir = scratch
	}
	st, err := storage.NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Listen(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		st.Close()
	})
	return srv, cl
}

func TestRemoteCreateWriteRead(t *testing.T) {
	srv, cl := startServer(t, "")
	if err := cl.Create("arr", 64, 32); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("xy"), 16) // 32 bytes
	if err := cl.WriteInterval("arr", 0, 32, payload); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("arr", 32, 64, payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadInterval("arr", 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[2:10]) {
		t.Fatalf("read %q", got)
	}
	all, err := cl.ReadAll("arr")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 64 {
		t.Fatalf("ReadAll %d bytes", len(all))
	}
	if srv.Requests() == 0 || srv.BytesOut() == 0 || srv.BytesIn() == 0 {
		t.Fatalf("server counters empty: %d req %d out %d in", srv.Requests(), srv.BytesOut(), srv.BytesIn())
	}
}

func TestRemoteImmutability(t *testing.T) {
	_, cl := startServer(t, "")
	if err := cl.Create("imm", 16, 16); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("imm", 0, 8, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("imm", 4, 12, make([]byte, 8)); err == nil {
		t.Fatal("overlapping remote write accepted")
	}
	if err := cl.WriteInterval("imm", 8, 16, make([]byte, 4)); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestRemoteReadBlocksUntilWritten(t *testing.T) {
	// Two clients: one reads an unwritten interval (blocking server-side),
	// the other writes it; the read must then complete. This proves the
	// immutable-array discipline crosses the network, and that a blocked
	// read does not stall the connection.
	srv, reader := startServer(t, "")
	writer, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	if err := reader.Create("late", 8, 8); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		data, err := reader.ReadInterval("late", 0, 8)
		if err != nil {
			got <- nil
			return
		}
		got <- data
	}()
	select {
	case <-got:
		t.Fatal("read completed before write")
	case <-time.After(50 * time.Millisecond):
	}
	// The reader's connection must still serve other requests while the
	// read is parked.
	if _, err := reader.Info("late"); err != nil {
		t.Fatalf("connection stalled by blocked read: %v", err)
	}
	if err := writer.WriteInterval("late", 0, 8, []byte("ARRIVED!")); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if string(data) != "ARRIVED!" {
			t.Fatalf("read %q", data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never unblocked")
	}
}

func TestRemoteServesScannedScratch(t *testing.T) {
	// The I/O-node pattern: the server's scratch directory already holds a
	// staged CRS block; a remote compute node fetches it and multiplies.
	dir := t.TempDir()
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 50, Cols: 50, D: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sparse.WriteCRS(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "A.arr"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, dir)
	raw, err := cl.ReadAll("A")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sparse.ReadCRS(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 50)
	x[0], x[49] = 1, -1
	want := make([]float64, 50)
	sparse.MulVec(m, x, want)
	y := make([]float64, 50)
	sparse.MulVec(got, x, y)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("SpMV over network-fetched block differs at %d", i)
		}
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	srv, first := startServer(t, "")
	_ = first
	const clients, arrays = 6, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			for a := 0; a < arrays; a++ {
				name := fmt.Sprintf("c%d-a%d", c, a)
				size := int64(64 + rng.Intn(256))
				if err := cl.Create(name, size, size); err != nil {
					errs <- err
					return
				}
				payload := make([]byte, size)
				rng.Read(payload)
				if err := cl.WriteInterval(name, 0, size, payload); err != nil {
					errs <- err
					return
				}
				got, err := cl.ReadAll(name)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("%s: payload mismatch", name)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, cl := startServer(t, "")
	if _, err := cl.ReadInterval("ghost", 0, 8); err == nil {
		t.Error("read of unknown array succeeded")
	}
	if _, err := cl.Info("ghost"); err == nil {
		t.Error("info of unknown array succeeded")
	}
	if err := cl.Create("", 1, 1); err == nil {
		t.Error("invalid create succeeded")
	}
	// Flush without scratch errors.
	if err := cl.Create("f", 8, 8); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("f", 0, 8, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush("f"); err == nil {
		t.Error("flush without scratch succeeded")
	}
}

func TestRemoteClientCloseFailsInflight(t *testing.T) {
	_, cl := startServer(t, "")
	if err := cl.Create("never", 8, 8); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.ReadInterval("never", 0, 8) // blocks: never written
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cl.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight read succeeded after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight read not failed by close")
	}
}

func TestRemoteOutOfCoreSpMVEndToEnd(t *testing.T) {
	// Full compute-node/I/O-node round trip: blocks staged on the server's
	// scratch, fetched over TCP by a "compute process" that runs iterated
	// SpMV locally and checks against the in-core reference.
	const dim, k, iters = 60, 3, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := core.SpMVConfig{Dim: dim, K: k, Iters: 1, Nodes: 1}
	if err := core.StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, filepath.Join(root, "node0"))

	p, err := sparse.NewGridPartition(dim, k)
	if err != nil {
		t.Fatal(err)
	}
	// Fetch each block once, cache decoded client-side (the compute node's
	// local memory), iterate.
	blocks := make([][]*sparse.CSR, k)
	for u := 0; u < k; u++ {
		blocks[u] = make([]*sparse.CSR, k)
		for v := 0; v < k; v++ {
			raw, err := cl.ReadAll(fmt.Sprintf("A_%03d_%03d", u, v))
			if err != nil {
				t.Fatal(err)
			}
			b, err := sparse.ReadCRS(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			blocks[u][v] = b
		}
	}
	rng := rand.New(rand.NewSource(10))
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := append([]float64(nil), x...)
	tmp := make([]float64, dim)
	for it := 0; it < iters; it++ {
		next := make([]float64, dim)
		for u := 0; u < k; u++ {
			yu := next[p.Start(u):p.Start(u+1)]
			for v := 0; v < k; v++ {
				sparse.MulVecAdd(blocks[u][v], x[p.Start(v):p.Start(v+1)], yu)
			}
		}
		x = next
		sparse.MulVec(m, ref, tmp)
		ref, tmp = tmp, ref
	}
	for i := range ref {
		if x[i] != ref[i] {
			t.Fatalf("network-staged SpMV differs at %d", i)
		}
	}
}

// BenchmarkRemoteRead measures interval-read throughput over loopback TCP.
func BenchmarkRemoteRead(b *testing.B) {
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 26, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv, err := Listen(st, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	const size = 1 << 20
	if err := cl.Create("big", size, size); err != nil {
		b.Fatal(err)
	}
	if err := cl.WriteInterval("big", 0, size, make([]byte, size)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.ReadInterval("big", 0, size); err != nil {
			b.Fatal(err)
		}
	}
}
