package remote

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"dooc/internal/storage"
)

// recordingPeer is a PeerHandler that stores blocks in a map and records
// the views it was offered — enough to check the wire round trips.
type recordingPeer struct {
	mu      sync.Mutex
	blocks  map[string][]byte
	epochs  map[string]uint64
	deleted []string
	views   []PeerView
}

func newRecordingPeer() *recordingPeer {
	return &recordingPeer{blocks: make(map[string][]byte), epochs: make(map[string]uint64)}
}

func peerKey(array string, block int) string {
	return array + "\x00" + string(rune('0'+block))
}

func (p *recordingPeer) PeerPut(array string, block int, epoch uint64, data []byte, durable bool) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := peerKey(array, block)
	if epoch < p.epochs[k] {
		return false, nil
	}
	p.blocks[k] = append([]byte(nil), data...)
	p.epochs[k] = epoch
	return true, nil
}

func (p *recordingPeer) PeerGet(array string, block int) ([]byte, uint64, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := peerKey(array, block)
	data, ok := p.blocks[k]
	if !ok {
		return nil, 0, false, nil
	}
	return data, p.epochs[k], true, nil
}

func (p *recordingPeer) PeerDelete(array string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deleted = append(p.deleted, array)
	for k := range p.blocks {
		if strings.HasPrefix(k, array+"\x00") {
			delete(p.blocks, k)
		}
	}
	return nil
}

func (p *recordingPeer) PeerViewExchange(v PeerView) PeerView {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.views = append(p.views, v)
	return PeerView{From: "srv", Version: 42, Members: []PeerMember{{ID: "srv", Addr: "addr"}}}
}

func startPeerServer(t *testing.T, h PeerHandler) (*Server, *Client) {
	t.Helper()
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenOptions(st, "127.0.0.1:0", ServerOptions{Peer: h})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	cl, err := DialOptions(srv.Addr(), Options{Handshake: true, Timeout: 2 * time.Second})
	if err != nil {
		srv.Close()
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		st.Close()
	})
	return srv, cl
}

// TestPeerVerbsRoundTrip drives every cluster peer verb over a real TCP
// connection with the handshake negotiated.
func TestPeerVerbsRoundTrip(t *testing.T) {
	h := newRecordingPeer()
	_, cl := startPeerServer(t, h)
	if !cl.ClusterCapable() {
		t.Fatal("peer-enabled server did not advertise the cluster capability")
	}

	payload := bytes.Repeat([]byte{0xC3}, 2048)
	ok, err := cl.PeerPut("A", 1, 7, payload, true)
	if err != nil || !ok {
		t.Fatalf("PeerPut: ok=%v err=%v", ok, err)
	}
	// An older epoch is refused by the handler; the refusal (not an error)
	// must survive the wire.
	ok, err = cl.PeerPut("A", 1, 3, payload, true)
	if err != nil || ok {
		t.Fatalf("stale PeerPut: ok=%v err=%v", ok, err)
	}

	data, epoch, held, err := cl.PeerGet("A", 1)
	if err != nil || !held || epoch != 7 || !bytes.Equal(data, payload) {
		t.Fatalf("PeerGet: held=%v epoch=%d err=%v", held, epoch, err)
	}
	// Clean miss: held=false, no error.
	_, _, held, err = cl.PeerGet("A", 2)
	if err != nil || held {
		t.Fatalf("PeerGet miss: held=%v err=%v", held, err)
	}

	if err := cl.PeerDelete("A"); err != nil {
		t.Fatalf("PeerDelete: %v", err)
	}
	_, _, held, err = cl.PeerGet("A", 1)
	if err != nil || held {
		t.Fatalf("PeerGet after delete: held=%v err=%v", held, err)
	}

	sent := PeerView{From: "cli", Version: 3, Members: []PeerMember{{ID: "cli", Addr: "c"}, {ID: "srv", Addr: "addr"}}}
	got, err := cl.PeerViewExchange(sent)
	if err != nil {
		t.Fatalf("PeerViewExchange: %v", err)
	}
	if got.From != "srv" || got.Version != 42 || len(got.Members) != 1 {
		t.Fatalf("exchanged view = %+v", got)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.views) != 1 || h.views[0].From != "cli" || h.views[0].Version != 3 || len(h.views[0].Members) != 2 {
		t.Fatalf("server saw views %+v", h.views)
	}
	if len(h.deleted) != 1 || h.deleted[0] != "A" {
		t.Fatalf("server saw deletes %v", h.deleted)
	}
}

// TestPeerCapabilityGating checks the handshake bit: a server without the
// peer role does not advertise ClusterCapBit, and a peer verb sent anyway
// fails with the typed role error rather than garbling the stream — and
// the connection stays usable for ordinary storage verbs.
func TestPeerCapabilityGating(t *testing.T) {
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := Listen(st, "127.0.0.1:0") // no Peer: a plain storage server
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialOptions(srv.Addr(), Options{Handshake: true, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if cl.ClusterCapable() {
		t.Fatal("plain server advertised the cluster capability")
	}
	_, err = cl.PeerPut("A", 0, 1, []byte{1}, false)
	if err == nil || !strings.Contains(err.Error(), "peer role not enabled") {
		t.Fatalf("peer verb against plain server: %v", err)
	}
	// The error is an in-band response; the connection is not poisoned.
	if err := cl.Create("A", 64, 16); err != nil {
		t.Fatalf("storage verb after rejected peer verb: %v", err)
	}
}

// TestPeerCapabilityAdvertised checks the positive half against a real
// cluster-role server and that the bit survives reconnects.
func TestPeerCapabilityAdvertised(t *testing.T) {
	h := newRecordingPeer()
	srv, cl := startPeerServer(t, h)
	if !cl.ClusterCapable() {
		t.Fatal("capability bit missing")
	}
	_ = srv
}
