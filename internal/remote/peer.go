// Cluster peer verbs: the remote protocol's third personality. A server
// constructed with ServerOptions.Peer joins the sharded storage tier —
// other doocserve processes push owned blocks into it, fetch them back on
// miss, and exchange versioned membership views over the same
// gob/CRC32/hello-negotiated connection the storage and job verbs use.
// Block payloads ride the normal payload path, so they get wire
// compression and checksum protection for free.
//
// Capability gating: a cluster-enabled server advertises ClusterCapBit in
// its handshake hello mask. Peers that do not (legacy pre-cluster
// binaries, or current ones started without a peer role) are detected at
// dial time — Client.ClusterCapable reports false — and the cluster layer
// rejects them from ring membership with a typed error instead of ever
// sending them a peer verb they would garble.

package remote

import (
	"fmt"
)

// ClusterCapBit is the handshake hello mask bit advertising the cluster
// peer verbs. The low bits of the mask byte carry codec capabilities
// (compress.Mask, IDs 0..5); bit 7 is reserved for this and bit 6 for
// ProxyCapBit.
const ClusterCapBit uint8 = 1 << 7

// PeerMember identifies one cluster member on the wire.
type PeerMember struct {
	ID   string
	Addr string
}

// PeerView is a versioned membership view. Higher versions supersede
// lower ones; every membership change (death, join) bumps the version on
// the node that observed it and gossips outward on view exchanges. From
// identifies the sender, so a receiver that does not know the sender yet
// can admit it (the join/rejoin path) even when the sender's view version
// is behind.
type PeerView struct {
	From    string
	Version uint64
	Members []PeerMember
}

// PeerHandler is the server-side cluster hook. internal/cluster.Node
// implements it; the interface lives here so remote does not import the
// cluster package.
type PeerHandler interface {
	// PeerPut stores a block at the given epoch on behalf of the ring.
	// durable pins the copy (the pusher relies on it for spill-free
	// eviction). A put older than the resident epoch reports ok=false.
	PeerPut(array string, block int, epoch uint64, data []byte, durable bool) (ok bool, err error)
	// PeerGet returns a held block and its epoch; held=false is a clean
	// miss (never an error).
	PeerGet(array string, block int) (data []byte, epoch uint64, held bool, err error)
	// PeerDelete drops every held block of an array.
	PeerDelete(array string) error
	// PeerViewExchange merges the caller's view and returns this node's
	// (possibly updated) view — the gossip primitive.
	PeerViewExchange(v PeerView) PeerView
}

// dispatchPeer executes one cluster peer verb.
func (s *Server) dispatchPeer(req *request) *response {
	fail := func(err error) *response { return &response{Err: err.Error()} }
	h := s.opts.Peer
	if h == nil {
		return fail(fmt.Errorf("remote: %s: cluster peer role not enabled on this server", req.Op))
	}
	switch req.Op {
	case opPeerPut:
		ok, err := h.PeerPut(req.Array, req.Block, req.Epoch, req.Data, req.Durable)
		if err != nil {
			return fail(err)
		}
		return &response{Held: ok}
	case opPeerGet:
		data, epoch, held, err := h.PeerGet(req.Array, req.Block)
		if err != nil {
			return fail(err)
		}
		return &response{Data: data, Epoch: epoch, Held: held}
	case opPeerDel:
		if err := h.PeerDelete(req.Array); err != nil {
			return fail(err)
		}
		return &response{}
	case opPeerView:
		return &response{View: h.PeerViewExchange(req.View)}
	}
	return fail(fmt.Errorf("remote: unknown peer opcode %v", req.Op))
}

// ClusterCapable reports whether the server at the other end advertised
// the cluster peer verbs in the last (re)connect's handshake. False for
// legacy binaries (the handshake itself fell back to the plain protocol)
// and for current binaries running without a peer role.
func (cl *Client) ClusterCapable() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.peerMask&ClusterCapBit != 0
}

// PeerPut pushes one block of an array to the peer at the given epoch.
// ok=false means the peer already held a newer epoch and refused the
// rollback. Idempotent: a reconnect replay re-puts identical bytes.
func (cl *Client) PeerPut(array string, block int, epoch uint64, data []byte, durable bool) (bool, error) {
	resp, err := cl.call(&request{Op: opPeerPut, Array: array, Block: block, Epoch: epoch, Durable: durable, Data: data})
	if err != nil {
		return false, err
	}
	return resp.Held, nil
}

// PeerGet fetches one block of an array from the peer. held=false is a
// clean miss.
func (cl *Client) PeerGet(array string, block int) (data []byte, epoch uint64, held bool, err error) {
	resp, err := cl.call(&request{Op: opPeerGet, Array: array, Block: block})
	if err != nil {
		return nil, 0, false, err
	}
	return resp.Data, resp.Epoch, resp.Held, nil
}

// PeerDelete drops every block of an array held by the peer.
func (cl *Client) PeerDelete(array string) error {
	_, err := cl.call(&request{Op: opPeerDel, Array: array})
	return err
}

// PeerViewExchange sends this node's membership view and returns the
// peer's — one gossip round, also the liveness probe.
func (cl *Client) PeerViewExchange(v PeerView) (PeerView, error) {
	resp, err := cl.call(&request{Op: opPeerView, View: v})
	if err != nil {
		return PeerView{}, err
	}
	return resp.View, nil
}
