package remote

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dooc/internal/core"
	"dooc/internal/jobs"
	"dooc/internal/sparse"
)

// newJobServer stands up a 2-node in-memory system with a loaded matrix, a
// solver service over it, and a TCP server exposing the job verbs. The
// returned cleanup must run before the test ends (it drains the manager so
// the system is quiescent when closed).
func newJobServer(t *testing.T, cfg jobs.Config) (*Client, *jobs.SolverService, *core.System, string) {
	t.Helper()
	const dim, k, nodes = 400, 2, 2
	sys, err := core.NewSystem(core.Options{Nodes: nodes, WorkersPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	base := core.SpMVConfig{Dim: dim, K: k, Nodes: nodes}
	load := base
	load.Iters = 1
	if err := core.LoadMatrixInMemory(sys, m, load); err != nil {
		t.Fatal(err)
	}
	svc := jobs.NewSolverService(sys, base, cfg)
	srv, err := ListenOptions(sys.Store(0), "127.0.0.1:0", ServerOptions{Jobs: svc})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		svc.Manager.Drain()
		sys.Close()
	})
	return cl, svc, sys, srv.Addr()
}

// TestJobVerbsRoundTrip submits concurrent jobs over the wire, collects
// each result, and checks it bit-identical to a direct serial run of the
// same request on the same system.
func TestJobVerbsRoundTrip(t *testing.T) {
	cl, svc, sys, _ := newJobServer(t, jobs.Config{MaxRunning: 4, QueueDepth: 16})
	reqs := []jobs.SolveRequest{
		{Tenant: "alice", Priority: 2, Iters: 3, Seed: 101, MemoryBytes: 1 << 22},
		{Tenant: "bob", Priority: 7, Iters: 4, Seed: 202},
		{Tenant: "carol", Priority: 4, Iters: 2, Seed: 303, ScratchBytes: 1 << 30},
	}
	type sub struct {
		st  jobs.JobStatus
		err error
	}
	subs := make([]sub, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r jobs.SolveRequest) {
			defer wg.Done()
			st, err := cl.SubmitJob(r)
			subs[i] = sub{st, err}
		}(i, r)
	}
	wg.Wait()
	for i, s := range subs {
		if s.err != nil {
			t.Fatalf("submit %d: %v", i, s.err)
		}
		if s.st.ID == 0 || s.st.Tenant != reqs[i].Tenant {
			t.Fatalf("submit %d: bad status %+v", i, s.st)
		}
	}
	for i, s := range subs {
		got, final, err := cl.JobResult(s.st.ID)
		if err != nil {
			t.Fatalf("result %d: %v", s.st.ID, err)
		}
		if final.State != "done" {
			t.Fatalf("job %d final state %s", s.st.ID, final.State)
		}
		cfg := svc.Base()
		cfg.Iters = reqs[i].Iters
		cfg.Tag = fmt.Sprintf("wire-ref%d", i)
		res, err := core.RunIteratedSpMV(sys, cfg, jobs.StartVector(svc.Base().Dim, reqs[i].Seed))
		if err != nil {
			t.Fatal(err)
		}
		core.DeleteSpMVArrays(sys, cfg)
		if want := jobs.EncodeFloat64s(res.X); !bytes.Equal(got, want) {
			t.Fatalf("job %d wire result differs from serial run", s.st.ID)
		}
	}

	// Status of a finished job and the full listing agree.
	st, err := cl.JobStatus(subs[0].st.ID)
	if err != nil || st.State != "done" {
		t.Fatalf("status = %+v, %v", st, err)
	}
	ls, err := cl.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != len(reqs) {
		t.Fatalf("list has %d jobs, want %d", len(ls), len(reqs))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].ID <= ls[i-1].ID {
			t.Fatalf("list not ID-ordered: %+v", ls)
		}
	}
}

// TestJobTypedErrorsOverWire drives every typed rejection across the
// protocol and asserts errors.Is still works on the client side.
func TestJobTypedErrorsOverWire(t *testing.T) {
	cl, _, _, _ := newJobServer(t, jobs.Config{MaxRunning: 1, QueueDepth: 1, MemoryBudget: 1 << 20})

	// Unknown job.
	if _, err := cl.JobStatus(999); !errors.Is(err, jobs.ErrUnknownJob) {
		t.Fatalf("status err = %v, want ErrUnknownJob", err)
	}
	if err := cl.CancelJob(999); !errors.Is(err, jobs.ErrUnknownJob) {
		t.Fatalf("cancel err = %v, want ErrUnknownJob", err)
	}

	// Memory quota: a request bigger than the aggregate budget.
	if _, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "hog", Iters: 1, MemoryBytes: 2 << 20}); !errors.Is(err, jobs.ErrQuotaExceeded) {
		t.Fatalf("submit err = %v, want ErrQuotaExceeded", err)
	}

	// Queue full: occupy the single run slot with a long job, fill the
	// 1-deep queue, and watch the third submission bounce.
	long, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "a", Iters: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		st, err := cl.JobStatus(long.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "running" {
			break
		}
		select {
		case <-deadline:
			t.Fatal("long job never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	queued, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "a", Iters: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "a", Iters: 1, Seed: 3}); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("submit err = %v, want ErrQueueFull", err)
	}

	// Cancel both; the running job's result carries the typed error.
	if err := cl.CancelJob(queued.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.CancelJob(long.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.JobResult(long.ID); !errors.Is(err, jobs.ErrCancelled) {
		t.Fatalf("result err = %v, want ErrCancelled", err)
	}
	if _, _, err := cl.JobResult(queued.ID); !errors.Is(err, jobs.ErrCancelled) {
		t.Fatalf("queued result err = %v, want ErrCancelled", err)
	}
	if st, err := cl.JobStatus(long.ID); err != nil || st.State != "cancelled" {
		t.Fatalf("status = %+v, %v", st, err)
	}
}

// TestKeyedSubmitDedupAcrossReconnect simulates the client-retry story the
// idempotency key exists for: submit a keyed job, drop the connection, dial
// a fresh one (a reconnecting client that never saw its ack), and resubmit
// the identical request. The retry must land on the original job — same ID,
// same bytes — and the history verb must show exactly one terminal job.
func TestKeyedSubmitDedupAcrossReconnect(t *testing.T) {
	cl, _, _, addr := newJobServer(t, jobs.Config{MaxRunning: 2, QueueDepth: 8})
	req := jobs.SolveRequest{Tenant: "alice", Iters: 3, Seed: 77, Key: "submit-retry-1"}
	st, err := cl.SubmitJob(req)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := cl.JobResult(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close() // the "lost" connection

	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	dup, err := cl2.SubmitJob(req)
	if err != nil {
		t.Fatalf("retried submit: %v", err)
	}
	if dup.ID != st.ID {
		t.Fatalf("retried keyed submit created job %d, original was %d", dup.ID, st.ID)
	}
	if dup.Key != req.Key {
		t.Fatalf("status key = %q, want %q", dup.Key, req.Key)
	}
	again, _, err := cl2.JobResult(dup.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("result after reconnect differs from the original")
	}
	// An unkeyed copy of the same request is a distinct job.
	unkeyed := req
	unkeyed.Key = ""
	fresh, err := cl2.SubmitJob(unkeyed)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == st.ID {
		t.Fatal("unkeyed submit deduplicated onto the keyed job")
	}
	if _, _, err := cl2.JobResult(fresh.ID); err != nil {
		t.Fatal(err)
	}
	hist, total, err := cl2.JobHistory(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || len(hist) != 2 {
		t.Fatalf("history = %d jobs (total %d), want 2", len(hist), total)
	}
	if hist[0].ID != st.ID || hist[0].Key != req.Key {
		t.Fatalf("history[0] = %+v, want job %d key %q", hist[0], st.ID, req.Key)
	}
}

// TestJobVerbsDisabled asserts a plain storage server rejects job verbs
// cleanly instead of crashing or hanging.
func TestJobVerbsDisabled(t *testing.T) {
	_, cl := startServer(t, "")
	if _, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "a", Iters: 1}); err == nil {
		t.Fatal("submit on plain server succeeded")
	}
	if _, err := cl.ListJobs(); err == nil {
		t.Fatal("list on plain server succeeded")
	}
}
