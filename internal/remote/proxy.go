// Proxy-object verbs: the remote protocol's fourth personality. A server
// whose job service carries a proxy registry advertises ProxyCapBit in its
// handshake hello, and clients then pass job results around BY REFERENCE: a
// stat/addref/release manage a handle's refcounted lifetime, a resolve
// streams its payload in codec-framed chunks, and a job-proxy fetches a
// finished job's handle instead of its bytes. Chunk payloads ride the
// normal payload path, so they get wire compression and checksum protection
// for free; the whole reassembled payload is additionally verified against
// the handle's registered SHA-256, end to end.
//
// Capability gating mirrors the cluster tier: a legacy peer (pre-proxy
// binary, or a current one running without a registry) never advertises the
// bit, and every client proxy verb fails fast with the typed ErrLegacyProxy
// instead of sending an opcode the peer would garble.

package remote

import (
	"crypto/sha256"
	"fmt"

	"dooc/internal/jobs"
	"dooc/internal/proxy"
)

// ProxyCapBit is the handshake hello mask bit advertising the proxy-object
// verbs. The low bits of the mask byte carry codec capabilities
// (compress.Mask, IDs 0..3); bit 7 is ClusterCapBit, bit 6 is this.
const ProxyCapBit uint8 = 1 << 6

// ErrLegacyProxy reports a proxy verb aimed at a server that did not
// advertise ProxyCapBit — a legacy binary, a server without a proxy
// registry, or a connection dialed without the capability handshake.
var ErrLegacyProxy = fmt.Errorf("remote: server does not speak the proxy-object verbs")

// resolveChunk is the payload size of one proxy-resolve round-trip. Result
// vectors are a few MiB at most; 256 KiB chunks keep any single gob frame
// bounded while giving the wire codec enough bytes to bite on.
const resolveChunk = 256 << 10

// dispatchProxy executes one proxy verb. The ref travels in req.Array
// ("name@epoch[@scope]") and an optional owner in req.Job.Key.
func (s *Server) dispatchProxy(req *request) *response {
	fail := func(err error) *response { return &response{Err: err.Error()} }
	svc := s.opts.Jobs
	if svc == nil || !svc.ProxyEnabled() {
		return fail(fmt.Errorf("remote: %s: proxy registry not enabled on this server", req.Op))
	}
	ref, err := proxy.ParseRef(req.Array)
	if err != nil {
		return fail(err)
	}
	switch req.Op {
	case opProxyStat:
		h, refs, err := svc.ProxyStat(ref)
		if err != nil {
			return fail(err)
		}
		return &response{Proxy: h, Refs: refs, Total: h.Length}
	case opProxyAddRef:
		h, err := svc.ProxyAddRef(ref, req.Job.Key)
		if err != nil {
			return fail(err)
		}
		_, refs, _ := svc.ProxyStat(ref)
		return &response{Proxy: h, Refs: refs}
	case opProxyRelease:
		refs, err := svc.ProxyRelease(ref, req.Job.Key)
		if err != nil {
			return fail(err)
		}
		return &response{Refs: refs}
	case opProxyResolve:
		data, total, err := svc.ResolveProxyRange(ref, req.Lo, req.Hi)
		if err != nil {
			return fail(err)
		}
		return &response{Data: data, Total: total}
	}
	return fail(fmt.Errorf("remote: unknown proxy opcode %v", req.Op))
}

// ProxyCapable reports whether the server at the other end advertised the
// proxy-object verbs in the last (re)connect's handshake. False for legacy
// binaries and for servers running without a proxy registry. Like
// ClusterCapable it needs the capability handshake — dial with a codec or
// Options.Handshake.
func (cl *Client) ProxyCapable() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.peerMask&ProxyCapBit != 0
}

// proxyCall gates a proxy verb on the negotiated capability, then runs it
// with the full recovery policy (every proxy verb is idempotent: stat and
// resolve are reads, addref/release with a named owner are
// absorbing, and anonymous ones the caller retries knowingly).
func (cl *Client) proxyCall(req *request) (*response, error) {
	if !cl.ProxyCapable() {
		return nil, fmt.Errorf("%w (%s %q)", ErrLegacyProxy, req.Op, req.Array)
	}
	resp, err := cl.call(req)
	if err != nil {
		return nil, mapJobError(err)
	}
	return resp, nil
}

// ProxyStat fetches a handle's metadata and live reference count without
// touching its payload.
func (cl *Client) ProxyStat(ref proxy.Ref) (proxy.Handle, int, error) {
	resp, err := cl.proxyCall(&request{Op: opProxyStat, Array: ref.String()})
	if err != nil {
		return proxy.Handle{}, 0, err
	}
	return resp.Proxy, resp.Refs, nil
}

// ProxyAddRef takes a reference on a handle. owner "" takes an anonymous
// client reference; a named owner is idempotent (re-adding is a no-op).
func (cl *Client) ProxyAddRef(ref proxy.Ref, owner string) (proxy.Handle, int, error) {
	resp, err := cl.proxyCall(&request{Op: opProxyAddRef, Array: ref.String(), Job: jobWire{Key: owner}})
	if err != nil {
		return proxy.Handle{}, 0, err
	}
	return resp.Proxy, resp.Refs, nil
}

// ProxyRelease drops a reference and returns the remaining live count (0
// means the handle is gone and its arrays reclaimed). An anonymous release
// with no anonymous references outstanding drops the origin lease instead —
// the explicit "free this result" verb.
func (cl *Client) ProxyRelease(ref proxy.Ref, owner string) (int, error) {
	resp, err := cl.proxyCall(&request{Op: opProxyRelease, Array: ref.String(), Job: jobWire{Key: owner}})
	if err != nil {
		return 0, err
	}
	return resp.Refs, nil
}

// ResolveProxy materializes a handle's full payload, streaming it in
// resolveChunk pieces and verifying the reassembled bytes against the
// handle's registered SHA-256. The server pins the handle per chunk; a
// handle whose last reference drops mid-stream fails the next chunk with
// proxy.ErrProxyGone — the client never returns partial bytes.
func (cl *Client) ResolveProxy(ref proxy.Ref) ([]byte, proxy.Handle, error) {
	var out []byte
	var total int64 = -1
	for lo := int64(0); total < 0 || lo < total; {
		hi := lo + resolveChunk
		if total >= 0 && hi > total {
			hi = total
		}
		resp, err := cl.proxyCall(&request{Op: opProxyResolve, Array: ref.String(), Lo: lo, Hi: hi})
		if err != nil {
			return nil, proxy.Handle{}, err
		}
		if total < 0 {
			total = resp.Total
			out = make([]byte, 0, total)
		} else if resp.Total != total {
			return nil, proxy.Handle{}, fmt.Errorf("remote: resolve %s: payload length changed mid-stream (%d -> %d)", ref, total, resp.Total)
		}
		out = append(out, resp.Data...)
		lo += int64(len(resp.Data))
		if int64(len(resp.Data)) == 0 && lo < total {
			return nil, proxy.Handle{}, fmt.Errorf("remote: resolve %s: empty chunk at offset %d of %d", ref, lo, total)
		}
	}
	h, _, err := cl.ProxyStat(ref)
	if err != nil {
		return nil, proxy.Handle{}, err
	}
	if int64(len(out)) != h.Length {
		return nil, proxy.Handle{}, fmt.Errorf("remote: resolve %s: %d bytes, handle registers %d", ref, len(out), h.Length)
	}
	if sum := fmt.Sprintf("%x", sha256.Sum256(out)); sum != h.SHA256 {
		return nil, proxy.Handle{}, fmt.Errorf("remote: resolve %s: payload hash %s does not match registered %s", ref, sum, h.SHA256)
	}
	return out, h, nil
}

// JobProxy blocks until the job reaches a terminal state and returns its
// result HANDLE — the pass-by-reference counterpart of JobResult. The
// result payload stays on the server; chain it into another job's submit or
// ResolveProxy it on demand.
func (cl *Client) JobProxy(id int64) (proxy.Handle, jobs.JobStatus, error) {
	if !cl.ProxyCapable() {
		return proxy.Handle{}, jobs.JobStatus{}, fmt.Errorf("%w (job-proxy %d)", ErrLegacyProxy, id)
	}
	resp, err := cl.call(&request{Op: opJobProxy, Job: jobWire{ID: id}})
	if err != nil {
		return proxy.Handle{}, jobs.JobStatus{}, mapJobError(err)
	}
	return resp.Proxy, resp.Job, nil
}
