package remote

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"dooc/internal/faults"
	"dooc/internal/storage"
)

// TestClientFailsWhenServerDiesMidRequest is the regression test for the
// original hang: a pending call must fail with a connection error when the
// server dies, never block indefinitely.
func TestClientFailsWhenServerDiesMidRequest(t *testing.T) {
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := Listen(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialOptions(srv.Addr(), Options{ReconnectBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("never", 8, 8); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.ReadInterval("never", 0, 8) // parks server-side: never written
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read succeeded against a dead server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client hung forever after server death")
	}
}

func TestClientRequestDeadline(t *testing.T) {
	_, blocked := startServer(t, "")
	cl, err := DialOptions(blocked.addrForTest(), Options{Timeout: 60 * time.Millisecond, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("slow", 8, 8); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = cl.ReadInterval("slow", 0, 8) // never written: deadline must fire
	if err == nil {
		t.Fatal("deadline never fired")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error not attributed to deadline: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline took %v", d)
	}
	// The connection survives an expired deadline: other requests work.
	if _, err := cl.Info("slow"); err != nil {
		t.Fatalf("connection unusable after deadline: %v", err)
	}
}

// addrForTest exposes the server address a startServer client connected to.
func (cl *Client) addrForTest() string { return cl.addr }

// TestClientReconnectsAndReplays drives a full create/write/read workload
// while a seeded injector tears the connection down on both sides; the
// client must reconnect, replay, and finish with byte-identical data.
func TestClientReconnectsAndReplays(t *testing.T) {
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srvInj := faults.New(faults.Config{Seed: 11, DropRate: 0.15, MaxInjections: 3})
	srv, err := ListenOptions(st, "127.0.0.1:0", ServerOptions{Faults: srvInj})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clInj := faults.New(faults.Config{Seed: 17, DropRate: 0.15, MaxInjections: 4})
	cl, err := DialOptions(srv.Addr(), Options{
		MaxRetries:       5,
		ReconnectBackoff: 2 * time.Millisecond,
		Faults:           clInj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	payloads := make(map[string][]byte)
	for a := 0; a < 6; a++ {
		name := fmt.Sprintf("arr%d", a)
		payload := bytes.Repeat([]byte{byte('A' + a)}, 64)
		if err := cl.Create(name, 64, 32); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		if err := cl.WriteInterval(name, 0, 32, payload[:32]); err != nil {
			t.Fatalf("write %s lo: %v", name, err)
		}
		if err := cl.WriteInterval(name, 32, 64, payload[32:]); err != nil {
			t.Fatalf("write %s hi: %v", name, err)
		}
		payloads[name] = payload
	}
	for name, want := range payloads {
		got, err := cl.ReadAll(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: data differs after recovery", name)
		}
	}
	if clInj.Counts().Drops+srvInj.Counts().Drops == 0 {
		t.Fatal("no drops injected; test proved nothing")
	}
	if cl.Reconnects() == 0 {
		t.Fatal("connection dropped but client never reconnected")
	}
}

// TestReplayResolvesLandedWrite unit-tests the idempotent-replay resolution:
// a replayed write rejected as an immutability violation is recognized as
// the original write having landed iff the bytes match.
func TestReplayResolvesLandedWrite(t *testing.T) {
	_, cl := startServer(t, "")
	if err := cl.Create("w", 8, 8); err != nil {
		t.Fatal(err)
	}
	payload := []byte("LANDED!!")
	if err := cl.WriteInterval("w", 0, 8, payload); err != nil {
		t.Fatal(err)
	}
	se := &serverError{op: opWrite, msg: `storage: immutable violation: "w"[0,8) already written or being written`}
	resolved, inconclusive := cl.resolveReplay(&request{Op: opWrite, Array: "w", Lo: 0, Hi: 8, Data: payload}, se)
	if !resolved || inconclusive {
		t.Fatalf("landed write not resolved: %v %v", resolved, inconclusive)
	}
	// Different bytes at the same interval: genuinely conflicting write.
	resolved, _ = cl.resolveReplay(&request{Op: opWrite, Array: "w", Lo: 0, Hi: 8, Data: []byte("DIFFER!!")}, se)
	if resolved {
		t.Fatal("conflicting write wrongly resolved as landed")
	}
}

func TestReplayResolvesLandedCreateAndDelete(t *testing.T) {
	_, cl := startServer(t, "")
	if err := cl.Create("c", 64, 32); err != nil {
		t.Fatal(err)
	}
	se := &serverError{op: opCreate, msg: `storage: array "c" already exists`}
	resolved, inconclusive := cl.resolveReplay(&request{Op: opCreate, Array: "c", Size: 64, BlockSize: 32}, se)
	if !resolved || inconclusive {
		t.Fatalf("landed create not resolved: %v %v", resolved, inconclusive)
	}
	resolved, _ = cl.resolveReplay(&request{Op: opCreate, Array: "c", Size: 128, BlockSize: 32}, se)
	if resolved {
		t.Fatal("create with different shape wrongly resolved")
	}
	de := &serverError{op: opDelete, msg: `storage: array "gone" does not exist`}
	resolved, _ = cl.resolveReplay(&request{Op: opDelete, Array: "gone"}, de)
	if !resolved {
		t.Fatal("landed delete not resolved")
	}
}

// TestCorruptionDetectedServerToClient injects payload corruption into the
// server's responses: the client must detect it via checksum and fail with
// an attributed error instead of returning wrong bytes.
func TestCorruptionDetectedServerToClient(t *testing.T) {
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	inj := faults.New(faults.Config{Seed: 4, CorruptRate: 1})
	srv, err := ListenOptions(st, "127.0.0.1:0", ServerOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("pay", 32, 32); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("pay", 0, 32, bytes.Repeat([]byte{9}, 32)); err != nil {
		t.Fatal(err)
	}
	_, err = cl.ReadInterval("pay", 0, 32)
	if err == nil {
		t.Fatal("corrupted payload accepted")
	}
	for _, want := range []string{"checksum", `"pay"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if inj.Counts().Corruptions == 0 {
		t.Fatal("injector never corrupted")
	}
}

// TestCorruptionDetectedClientToServer injects corruption into the client's
// write payloads: the server must reject the frame before it reaches the
// store.
func TestCorruptionDetectedClientToServer(t *testing.T) {
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := Listen(st, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	inj := faults.New(faults.Config{Seed: 6, CorruptRate: 1})
	cl, err := DialOptions(srv.Addr(), Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("up", 16, 16); err != nil {
		t.Fatal(err)
	}
	err = cl.WriteInterval("up", 0, 16, bytes.Repeat([]byte{3}, 16))
	if err == nil {
		t.Fatal("corrupted write accepted")
	}
	for _, want := range []string{"checksum", `"up"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// The rejected frame must not have published anything: the interval is
	// still writable through a clean client.
	clean, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if err := clean.WriteInterval("up", 0, 16, bytes.Repeat([]byte{3}, 16)); err != nil {
		t.Fatalf("interval poisoned by rejected corrupt write: %v", err)
	}
}
