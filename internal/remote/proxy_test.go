package remote

import (
	"bytes"
	"errors"
	"testing"

	"dooc/internal/jobs"
	"dooc/internal/obs"
	"dooc/internal/proxy"
)

// newProxyServer is newJobServer with the proxy result plane enabled and a
// capability-handshaking client (the proxy verbs require the hello).
func newProxyServer(t *testing.T, clObs *obs.Registry) (*Client, *jobs.SolverService, string) {
	t.Helper()
	reg := proxy.NewRegistry(proxy.Config{Scope: "nodeA"})
	t.Cleanup(reg.Close)
	_, svc, _, addr := newJobServer(t, jobs.Config{MaxRunning: 2, QueueDepth: 16, Proxy: reg})
	cl, err := DialOptions(addr, Options{Handshake: true, Obs: clObs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if !cl.ProxyCapable() {
		t.Fatal("proxy-enabled server did not advertise ProxyCapBit")
	}
	return cl, svc, addr
}

// TestProxyVerbsRoundTrip drives the full by-reference surface over a live
// TCP server: submit, job-proxy, stat, addref/release, resolve — with the
// resolved bytes equal to the by-value result.
func TestProxyVerbsRoundTrip(t *testing.T) {
	cl, _, _ := newProxyServer(t, nil)
	st, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "alice", Iters: 3, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	h, final, err := cl.JobProxy(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || !h.Valid() || h.Scope != "nodeA" {
		t.Fatalf("job-proxy: state=%s handle=%+v", final.State, h)
	}
	byValue, _, err := cl.JobResult(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if h.Length != int64(len(byValue)) {
		t.Fatalf("handle length %d, by-value %d", h.Length, len(byValue))
	}

	got, h2, err := cl.ResolveProxy(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("resolve returned handle %+v, want %+v", h2, h)
	}
	if !bytes.Equal(got, byValue) {
		t.Fatal("resolved bytes differ from by-value result")
	}

	if _, refs, err := cl.ProxyStat(h.Ref()); err != nil || refs != 1 {
		t.Fatalf("stat: refs=%d err=%v", refs, err)
	}
	if _, refs, err := cl.ProxyAddRef(h.Ref(), ""); err != nil || refs != 2 {
		t.Fatalf("addref: refs=%d err=%v", refs, err)
	}
	if refs, err := cl.ProxyRelease(h.Ref(), ""); err != nil || refs != 1 {
		t.Fatalf("release: refs=%d err=%v", refs, err)
	}
	// The origin lease is the last reference; releasing it frees the result.
	if refs, err := cl.ProxyRelease(h.Ref(), ""); err != nil || refs != 0 {
		t.Fatalf("final release: refs=%d err=%v", refs, err)
	}
	if _, _, err := cl.ProxyStat(h.Ref()); !errors.Is(err, proxy.ErrProxyGone) {
		t.Fatalf("stat after free: %v", err)
	}
}

// TestProxyChunkedResolve exercises the chunked resolve protocol directly
// with ranges far below resolveChunk and reassembles the payload by hand.
func TestProxyChunkedResolve(t *testing.T) {
	cl, _, _ := newProxyServer(t, nil)
	st, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "alice", Iters: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := cl.JobProxy(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cl.ResolveProxy(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 777 // deliberately unaligned
	var out []byte
	for lo := int64(0); lo < h.Length; lo += chunk {
		hi := lo + chunk
		if hi > h.Length {
			hi = h.Length
		}
		resp, err := cl.proxyCall(&request{Op: opProxyResolve, Array: h.Ref().String(), Lo: lo, Hi: hi})
		if err != nil {
			t.Fatalf("chunk [%d,%d): %v", lo, hi, err)
		}
		if resp.Total != h.Length {
			t.Fatalf("chunk total %d, handle %d", resp.Total, h.Length)
		}
		out = append(out, resp.Data...)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("hand-chunked payload differs from streamed resolve")
	}
	// An out-of-bounds range is rejected, not clamped into silence.
	if _, err := cl.proxyCall(&request{Op: opProxyResolve, Array: h.Ref().String(), Lo: h.Length + 1, Hi: h.Length + 2}); err == nil {
		t.Fatal("out-of-bounds resolve range accepted")
	}
}

// TestProxyChainZeroClientBytes is the wire half of the dataflow
// acceptance: chain job A into job B purely by reference and assert — via
// the client's own payload-byte counter — that no result bytes crossed the
// client link until B's final explicit resolve.
func TestProxyChainZeroClientBytes(t *testing.T) {
	clObs := obs.NewRegistry()
	cl, svc, _ := newProxyServer(t, clObs)
	bytesIn := func() int64 { return clObs.Sum("dooc_remote_client_bytes_in_total") }

	a, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "alice", Iters: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ha, _, err := cl.JobProxy(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "alice", Iters: 2, Input: ha.Ref()})
	if err != nil {
		t.Fatal(err)
	}
	hb, final, err := cl.JobProxy(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("chained job state %s", final.State)
	}
	if got := bytesIn(); got != 0 {
		t.Fatalf("%d result bytes crossed the client link on the A->B hop, want 0", got)
	}

	// B's result matches an unchained 5-iteration run, fetched by reference.
	bBytes, _, err := cl.ResolveProxy(hb.Ref())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := svc.Manager.Result(bServerRef(t, svc, 5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bBytes, ref) {
		t.Fatal("chained by-reference result differs from unchained run")
	}
	if got := bytesIn(); got != hb.Length {
		t.Fatalf("client received %d payload bytes, want exactly the final resolve (%d)", got, hb.Length)
	}
}

// bServerRef runs an unchained reference job server-side and returns its ID.
func bServerRef(t *testing.T, svc *jobs.SolverService, iters int, seed int64) int64 {
	t.Helper()
	st, err := svc.Submit(jobs.SolveRequest{Tenant: "ref", Iters: iters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// TestProxyLegacyRejection: every proxy verb fails fast with the typed
// ErrLegacyProxy when the capability was not negotiated — a client dialed
// without the handshake, and a handshaking client against a server whose
// proxy plane is off.
func TestProxyLegacyRejection(t *testing.T) {
	// Proxy-enabled server, legacy client (no handshake).
	_, _, addr := newProxyServer(t, nil)
	legacy, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	ref := proxy.Ref{Name: "job1", Epoch: 1}
	if _, _, err := legacy.ProxyStat(ref); !errors.Is(err, ErrLegacyProxy) {
		t.Fatalf("stat on legacy conn: %v", err)
	}
	if _, _, err := legacy.ResolveProxy(ref); !errors.Is(err, ErrLegacyProxy) {
		t.Fatalf("resolve on legacy conn: %v", err)
	}
	if _, _, err := legacy.JobProxy(1); !errors.Is(err, ErrLegacyProxy) {
		t.Fatalf("job-proxy on legacy conn: %v", err)
	}
	if _, err := legacy.SubmitJob(jobs.SolveRequest{Tenant: "a", Iters: 1, Input: ref}); !errors.Is(err, ErrLegacyProxy) {
		t.Fatalf("chained submit on legacy conn: %v", err)
	}

	// Proxy-less server, handshaking client: capability absent.
	_, _, _, plainAddr := newJobServer(t, jobs.Config{MaxRunning: 1, QueueDepth: 4})
	hs, err := DialOptions(plainAddr, Options{Handshake: true})
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	if hs.ProxyCapable() {
		t.Fatal("proxy-less server advertised ProxyCapBit")
	}
	if _, _, err := hs.ProxyStat(ref); !errors.Is(err, ErrLegacyProxy) {
		t.Fatalf("stat against proxy-less server: %v", err)
	}
}

// TestProxyTypedErrorsOverWire: registry lifetime errors survive the wire
// round trip as errors.Is-able values.
func TestProxyTypedErrorsOverWire(t *testing.T) {
	cl, _, _ := newProxyServer(t, nil)
	if _, _, err := cl.ProxyStat(proxy.Ref{Name: "job99", Epoch: 1}); !errors.Is(err, proxy.ErrUnknownProxy) {
		t.Fatalf("unknown handle: %v", err)
	}
	st, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "alice", Iters: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := cl.JobProxy(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ProxyRelease(h.Ref(), ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.ResolveProxy(h.Ref()); !errors.Is(err, proxy.ErrProxyGone) {
		t.Fatalf("resolve of released handle: %v", err)
	}
	// A chained submit naming the dead handle is rejected typed, up front.
	if _, err := cl.SubmitJob(jobs.SolveRequest{Tenant: "alice", Iters: 1, Input: h.Ref()}); !errors.Is(err, proxy.ErrProxyGone) {
		t.Fatalf("chained submit on dead handle: %v", err)
	}
}
