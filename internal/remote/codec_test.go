package remote

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"dooc/internal/compress"
	"dooc/internal/obs"
	"dooc/internal/storage"
)

// wirePayload builds n bytes of quantized float64 data — the shape of a
// solver vector, and compressible by the default codec.
func wirePayload(n int) []byte {
	out := make([]byte, n)
	for i := 0; i+8 <= n; i += 8 {
		v := math.Round((1+1e-3*math.Sin(float64(i)/300))*4096) / 4096
		binary.LittleEndian.PutUint64(out[i:], math.Float64bits(v))
	}
	return out
}

// startCodecServer wires a codec-configured server and client over a local
// store, with a shared registry when reg is non-nil.
func startCodecServer(t *testing.T, reg *obs.Registry, srvOpts ServerOptions, clOpts Options) (*Server, *Client) {
	t.Helper()
	st, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srvOpts.Obs = reg
	clOpts.Obs = reg
	srv, err := ListenOptions(st, "127.0.0.1:0", srvOpts)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialOptions(srv.Addr(), clOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		st.Close()
	})
	return srv, cl
}

// TestWireCompressionRoundTrip negotiates the default codec and moves a
// compressible payload both ways: the data must round-trip exactly while the
// wire carries fewer payload bytes than the logical interval.
func TestWireCompressionRoundTrip(t *testing.T) {
	srv, cl := startCodecServer(t, nil, ServerOptions{}, Options{Codec: compress.Default()})
	if got := cl.NegotiatedCodec(); got == nil || got.ID() != compress.Default().ID() {
		t.Fatalf("NegotiatedCodec() = %v, want %s", got, compress.Default().Name())
	}

	payload := wirePayload(64 << 10)
	if err := cl.Create("v", int64(len(payload)), int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("v", 0, int64(len(payload)), payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadInterval("v", 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("compressed wire round trip corrupted the payload")
	}
	if in := srv.BytesIn(); in >= int64(len(payload)) {
		t.Errorf("server received %d wire bytes for a %d-byte write: not compressed", in, len(payload))
	}
	if out := srv.BytesOut(); out >= int64(len(payload)) {
		t.Errorf("server sent %d wire bytes for a %d-byte read: not compressed", out, len(payload))
	}
}

// TestWireCompressionBailsOutOnRandomPayload sends incompressible data: the
// adaptive encoder must fall back to the plain payload (no frame overhead on
// the wire) and the bytes must still round-trip exactly.
func TestWireCompressionBailsOutOnRandomPayload(t *testing.T) {
	reg := obs.NewRegistry()
	srv, cl := startCodecServer(t, reg, ServerOptions{}, Options{Codec: compress.Default()})

	payload := make([]byte, 32<<10)
	rand.New(rand.NewSource(41)).Read(payload)
	if err := cl.Create("r", int64(len(payload)), int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("r", 0, int64(len(payload)), payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadInterval("r", 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("bail-out round trip corrupted the payload")
	}
	// The payload went plain: exactly the logical bytes on the wire, and the
	// bail-out counted on both encoding ends.
	if in := srv.BytesIn(); in != int64(len(payload)) {
		t.Errorf("server received %d wire bytes, want the plain payload %d", in, len(payload))
	}
	if reg.Sum("dooc_remote_client_compress_bailouts_total") == 0 {
		t.Error("client never counted the bail-out")
	}
	if reg.Sum("dooc_remote_server_compress_bailouts_total") == 0 {
		t.Error("server never counted the bail-out")
	}
}

// TestLegacyServerFallback dials a codec-configured client against a server
// that drops handshake hellos the way a pre-compression binary's gob decoder
// would: the client must transparently fall back to the plain protocol.
func TestLegacyServerFallback(t *testing.T) {
	srv, cl := startCodecServer(t, nil, ServerOptions{Legacy: true}, Options{Codec: compress.Default()})
	if got := cl.NegotiatedCodec(); got != nil {
		t.Fatalf("NegotiatedCodec() = %s against a legacy server", got.Name())
	}

	payload := wirePayload(16 << 10)
	if err := cl.Create("p", int64(len(payload)), int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("p", 0, int64(len(payload)), payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadInterval("p", 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fallback round trip corrupted the payload")
	}
	// Nothing was compressed: wire bytes equal logical bytes.
	if in := srv.BytesIn(); in != int64(len(payload)) {
		t.Errorf("server received %d wire bytes, want plain %d", in, len(payload))
	}
}

// TestLegacyClientAgainstCodecServer checks the other direction: a client
// that never sends a hello gets plain payloads from a codec-capable server.
func TestLegacyClientAgainstCodecServer(t *testing.T) {
	srv, cl := startCodecServer(t, nil, ServerOptions{Codec: compress.Default()}, Options{})
	payload := wirePayload(16 << 10)
	if err := cl.Create("q", int64(len(payload)), int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("q", 0, int64(len(payload)), payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadInterval("q", 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("legacy-client round trip corrupted the payload")
	}
	if out := srv.BytesOut(); out < int64(len(payload)) {
		t.Errorf("server sent %d wire bytes to a legacy client: compressed without negotiation", out)
	}
}

// TestWireCompressionMetricsReconcile checks the compressed wire is still
// accounted symmetrically — what one end's encoder puts on the wire the
// other end's decoder takes off — and that the per-codec invariant
// stored <= raw holds on every encoding path.
func TestWireCompressionMetricsReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	_, cl := startCodecServer(t, reg, ServerOptions{}, Options{Codec: compress.Default()})

	payload := wirePayload(64 << 10)
	if err := cl.Create("m", int64(len(payload)), int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteInterval("m", 0, int64(len(payload)), payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.ReadInterval("m", 0, int64(len(payload))); err != nil {
			t.Fatal(err)
		}
	}

	// Wire symmetry survives compression: both ends count wire bytes.
	if in, out := reg.Sum("dooc_remote_server_bytes_in_total"), reg.Sum("dooc_remote_client_bytes_out_total"); in != out {
		t.Errorf("server bytes in %d != client bytes out %d", in, out)
	}
	if out, in := reg.Sum("dooc_remote_server_bytes_out_total"), reg.Sum("dooc_remote_client_bytes_in_total"); out != in {
		t.Errorf("server bytes out %d != client bytes in %d", out, in)
	}
	// Encoder/decoder symmetry: client-encoded frames are server-decoded and
	// vice versa, codec for codec.
	for _, name := range compress.Names() {
		cw := reg.SumWhere("dooc_remote_client_compress_stored_bytes_total", "codec", name)
		sr := reg.SumWhere("dooc_remote_server_decompress_stored_bytes_total", "codec", name)
		if cw != sr {
			t.Errorf("codec %s: client wrote %d frame bytes, server decoded %d", name, cw, sr)
		}
		sw := reg.SumWhere("dooc_remote_server_compress_stored_bytes_total", "codec", name)
		cr := reg.SumWhere("dooc_remote_client_decompress_stored_bytes_total", "codec", name)
		if sw != cr {
			t.Errorf("codec %s: server wrote %d frame bytes, client decoded %d", name, sw, cr)
		}
		for _, prefix := range []string{"dooc_remote_client", "dooc_remote_server"} {
			raw := reg.SumWhere(prefix+"_compress_raw_bytes_total", "codec", name)
			stored := reg.SumWhere(prefix+"_compress_stored_bytes_total", "codec", name)
			if name != "raw" && stored > raw {
				t.Errorf("%s codec %s stored %d > raw %d", prefix, name, stored, raw)
			}
		}
	}
	// Both directions actually compressed something.
	if reg.Sum("dooc_remote_client_compress_stored_bytes_total") == 0 {
		t.Error("client never compressed a request payload")
	}
	if reg.Sum("dooc_remote_server_compress_stored_bytes_total") == 0 {
		t.Error("server never compressed a response payload")
	}
	// The ratio gauges report a win (>100%).
	if r := reg.Sum("dooc_remote_client_compress_ratio_percent"); r <= 100 {
		t.Errorf("client wire ratio gauge = %d%%, want > 100", r)
	}
	if r := reg.Sum("dooc_remote_server_compress_ratio_percent"); r <= 100 {
		t.Errorf("server wire ratio gauge = %d%%, want > 100", r)
	}
}
