package proxy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dooc/internal/jobstore"
	"dooc/internal/obs"
)

func mustRegister(t *testing.T, r *Registry, name, tenant string, job int64, sha string, length int64, arrays ...string) Handle {
	t.Helper()
	h, err := r.Register(RegisterRequest{Name: name, Tenant: tenant, JobID: job, SHA256: sha, Length: length, Arrays: arrays})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return h
}

func TestRefParseRoundTrip(t *testing.T) {
	for _, s := range []string{"job1@1", "job12@3@nodeB"} {
		ref, err := ParseRef(s)
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", s, err)
		}
		if ref.String() != s {
			t.Fatalf("round trip %q -> %q", s, ref.String())
		}
	}
	for _, s := range []string{"", "job1", "@1", "job1@0", "job1@x", "a@1@b@c"} {
		if _, err := ParseRef(s); err == nil {
			t.Fatalf("ParseRef(%q) accepted", s)
		}
	}
}

func TestLifetimeStateMachine(t *testing.T) {
	var reclaimed []string
	var mu sync.Mutex
	r := NewRegistry(Config{Scope: "nodeA", OnReclaim: func(h Handle, arrays []string) {
		mu.Lock()
		reclaimed = append(reclaimed, h.String())
		mu.Unlock()
	}})
	h := mustRegister(t, r, "job1", "t", 1, "aa", 64, "job1:x_3_0", "job1:x_3_1")
	if h.Scope != "nodeA" || h.Epoch != 1 {
		t.Fatalf("handle %+v", h)
	}
	// Anonymous addref then release: handle stays live on the origin lease.
	if _, err := r.AddRef(h.Ref(), ""); err != nil {
		t.Fatal(err)
	}
	if n, err := r.Release(h.Ref(), ""); err != nil || n != 1 {
		t.Fatalf("release anon: n=%d err=%v", n, err)
	}
	if !r.Retained("job1:x_3_1") {
		t.Fatal("live handle does not retain its arrays")
	}
	// Anonymous release with no refs outstanding drops the origin lease:
	// the handle goes gone and is reclaimed (nothing pins it).
	if n, err := r.Release(h.Ref(), ""); err != nil || n != 0 {
		t.Fatalf("release origin: n=%d err=%v", n, err)
	}
	if _, _, err := r.Stat(h.Ref()); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("stat after last release: %v", err)
	}
	if _, err := r.Acquire(h.Ref()); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("acquire after last release: %v", err)
	}
	if r.Retained("job1:x_3_0") {
		t.Fatal("reclaimed handle still retains arrays")
	}
	mu.Lock()
	got := append([]string(nil), reclaimed...)
	mu.Unlock()
	if len(got) != 1 || got[0] != "job1@1@nodeA" {
		t.Fatalf("reclaimed %v", got)
	}
	// A ref never issued is unknown, not gone.
	if _, _, err := r.Stat(Ref{Name: "job9", Epoch: 1}); !errors.Is(err, ErrUnknownProxy) {
		t.Fatalf("unknown handle: %v", err)
	}
	// Releasing the gone handle again reports no refs.
	if _, err := r.Release(h.Ref(), ""); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("double release: %v", err)
	}
}

func TestPinDefersReclaim(t *testing.T) {
	var reclaims atomic.Int64
	r := NewRegistry(Config{OnReclaim: func(Handle, []string) { reclaims.Add(1) }})
	h := mustRegister(t, r, "job1", "t", 1, "aa", 8, "job1:x_1_0")
	pin, err := r.Acquire(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r.Release(h.Ref(), ""); err != nil || n != 0 {
		t.Fatalf("release under pin: n=%d err=%v", n, err)
	}
	// Gone but pinned: the arrays must survive until the pin closes.
	if reclaims.Load() != 0 {
		t.Fatal("reclaimed while pinned")
	}
	if _, err := r.Acquire(h.Ref()); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("new acquire of gone handle: %v", err)
	}
	pin.Close()
	pin.Close() // idempotent
	if reclaims.Load() != 1 {
		t.Fatalf("reclaims=%d after pin close", reclaims.Load())
	}
}

func TestIdempotentReRegisterAndEpochBump(t *testing.T) {
	r := NewRegistry(Config{})
	h1 := mustRegister(t, r, "job1", "t", 1, "aa", 8, "job1:x_1_0")
	// Same payload identity: same handle back, arrays repointed.
	h2 := mustRegister(t, r, "job1", "t", 1, "aa", 8, "job1@2:x_1_0")
	if h1 != h2 {
		t.Fatalf("re-register bumped handle: %v vs %v", h1, h2)
	}
	if !r.Retained("job1@2:x_1_0") || r.Retained("job1:x_1_0") {
		t.Fatal("re-register did not repoint the retained arrays")
	}
	// Changed payload: new epoch, and the old handle keeps resolving its own
	// (still-live) entry.
	h3 := mustRegister(t, r, "job1", "t", 1, "bb", 8)
	if h3.Epoch != 2 {
		t.Fatalf("epoch %d after payload change", h3.Epoch)
	}
	if _, _, err := r.Stat(h1.Ref()); err != nil {
		t.Fatalf("old epoch gone after bump: %v", err)
	}
}

func TestNamedOwnersIdempotent(t *testing.T) {
	r := NewRegistry(Config{})
	h := mustRegister(t, r, "job1", "t", 1, "aa", 8)
	for i := 0; i < 3; i++ { // re-take is a no-op
		if _, err := r.AddRef(h.Ref(), "job7"); err != nil {
			t.Fatal(err)
		}
	}
	if _, refs, _ := r.Stat(h.Ref()); refs != 2 { // origin + job7
		t.Fatalf("refs=%d", refs)
	}
	if n, err := r.Release(h.Ref(), "job7"); err != nil || n != 1 {
		t.Fatalf("owner release: n=%d err=%v", n, err)
	}
	// Releasing a non-held owner is a crash-safe no-op.
	if n, err := r.Release(h.Ref(), "job7"); err != nil || n != 1 {
		t.Fatalf("idempotent owner release: n=%d err=%v", n, err)
	}
}

func TestQuotas(t *testing.T) {
	r := NewRegistry(Config{MaxPerTenant: 1, MaxBytesPerTenant: 100})
	mustRegister(t, r, "a", "t1", 1, "aa", 60)
	if _, err := r.Register(RegisterRequest{Name: "b", Tenant: "t1", JobID: 2, SHA256: "bb", Length: 8}); !errors.Is(err, ErrProxyQuota) {
		t.Fatalf("count quota: %v", err)
	}
	// Another tenant is unaffected; its byte cap binds independently.
	mustRegister(t, r, "c", "t2", 3, "cc", 60)
	if _, err := r.Register(RegisterRequest{Name: "d", Tenant: "t2", JobID: 4, SHA256: "dd", Length: 60}); !errors.Is(err, ErrProxyQuota) {
		t.Fatalf("byte quota: %v", err)
	}
	// Releasing frees quota headroom.
	if _, err := r.Release(Ref{Name: "a", Epoch: 1}, ""); err != nil {
		t.Fatal(err)
	}
	mustRegister(t, r, "b", "t1", 2, "bb", 8)
}

func TestTTLSweep(t *testing.T) {
	r := NewRegistry(Config{TTL: time.Minute})
	h := mustRegister(t, r, "job1", "t", 1, "aa", 8)
	if n := r.Sweep(time.Now()); n != 0 {
		t.Fatalf("premature expiry of %d handles", n)
	}
	// A client still holding a reference keeps the payload past expiry.
	if _, err := r.AddRef(h.Ref(), ""); err != nil {
		t.Fatal(err)
	}
	if n := r.Sweep(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("expired %d", n)
	}
	if _, _, err := r.Stat(h.Ref()); err != nil {
		t.Fatalf("handle with live client ref expired away: %v", err)
	}
	if n, err := r.Release(h.Ref(), ""); err != nil || n != 0 {
		t.Fatalf("final release: n=%d err=%v", n, err)
	}
	if _, _, err := r.Stat(h.Ref()); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("after final release: %v", err)
	}
}

// TestHammer races anonymous addref/release against acquires and the final
// origin release across many goroutines: every acquire must either pin the
// whole entry (arrays intact) or fail with a typed lifetime error — and the
// registry must end fully reclaimed with reconciling metrics.
func TestHammer(t *testing.T) {
	const handles = 8
	const workers = 6
	const rounds = 200
	oreg := obs.NewRegistry()
	var reclaims atomic.Int64
	r := NewRegistry(Config{Obs: oreg, OnReclaim: func(h Handle, arrays []string) {
		if len(arrays) != 2 {
			t.Errorf("reclaim %s with %d arrays", h, len(arrays))
		}
		reclaims.Add(1)
	}})
	refs := make([]Ref, handles)
	for i := range refs {
		h := mustRegister(t, r, fmt.Sprintf("job%d", i), "t", int64(i), "aa", 16,
			fmt.Sprintf("job%d:x_1_0", i), fmt.Sprintf("job%d:x_1_1", i))
		refs[i] = h.Ref()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ref := refs[(w+i)%handles]
				switch i % 3 {
				case 0:
					if _, err := r.AddRef(ref, ""); err == nil {
						if _, err := r.Release(ref, ""); err != nil && !errors.Is(err, ErrProxyGone) {
							t.Errorf("release after addref: %v", err)
						}
					} else if !errors.Is(err, ErrProxyGone) {
						t.Errorf("addref: %v", err)
					}
				case 1:
					pin, err := r.Acquire(ref)
					if err != nil {
						if !errors.Is(err, ErrProxyGone) {
							t.Errorf("acquire: %v", err)
						}
						continue
					}
					if len(pin.Arrays) != 2 || !pin.Handle.Valid() {
						t.Errorf("partial pin: %+v", pin.Handle)
					}
					pin.Close()
				case 2:
					if i > rounds/2 {
						// The final-release edge the race is about.
						if _, err := r.Release(ref, ""); err != nil &&
							!errors.Is(err, ErrProxyGone) && !errors.Is(err, ErrNoRefs) {
							t.Errorf("origin release: %v", err)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain whatever survived, then reconcile.
	for _, ref := range refs {
		for {
			if _, err := r.Release(ref, ""); err != nil {
				break
			}
		}
	}
	if live := len(r.List()); live != 0 {
		t.Fatalf("%d handles survived the drain", live)
	}
	if reclaims.Load() != handles {
		t.Fatalf("reclaims=%d want %d", reclaims.Load(), handles)
	}
	reconcileMetrics(t, oreg, r)
}

// reconcileMetrics asserts the dooc_proxy_* series agree exactly with the
// registry's state: registered - reclaimed == live handles, and resident
// bytes equal the sum of live lengths.
func reconcileMetrics(t *testing.T, oreg *obs.Registry, r *Registry) {
	t.Helper()
	live := r.List()
	var bytes int64
	for _, st := range live {
		bytes += st.Length
	}
	reg := oreg.Sum("dooc_proxy_registered_total")
	rec := oreg.Sum("dooc_proxy_reclaimed_total")
	if got := oreg.Sum("dooc_proxy_handles"); got != reg-rec || got != int64(len(live)) {
		t.Fatalf("handles gauge %d, registered-reclaimed %d, live %d", got, reg-rec, len(live))
	}
	if got := oreg.Sum("dooc_proxy_resident_bytes"); got != bytes {
		t.Fatalf("resident bytes gauge %d, live sum %d", got, bytes)
	}
}

func TestMetricsReconcile(t *testing.T) {
	oreg := obs.NewRegistry()
	r := NewRegistry(Config{Obs: oreg})
	a := mustRegister(t, r, "a", "t", 1, "aa", 10)
	mustRegister(t, r, "b", "t", 2, "bb", 20)
	reconcileMetrics(t, oreg, r)
	if _, err := r.Release(a.Ref(), ""); err != nil {
		t.Fatal(err)
	}
	reconcileMetrics(t, oreg, r)
}

// TestRestartRecovery journals a mixed-lifetime population through a real
// jobstore, kills it, and asserts the rebuilt registry's handles, refcounts,
// owners, and gone/unknown discrimination match the pre-crash state.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := jobstore.Open(dir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(Config{Store: store, Scope: "nodeA"})
	a := mustRegister(t, r, "a", "t1", 1, "aa", 10, "job1:x_2_0")
	b := mustRegister(t, r, "b", "t2", 2, "bb", 20)
	if _, err := r.AddRef(a.Ref(), ""); err != nil { // anonymous wire ref
		t.Fatal(err)
	}
	if _, err := r.AddRef(a.Ref(), "job3"); err != nil { // consumer job
		t.Fatal(err)
	}
	if _, err := r.Release(b.Ref(), ""); err != nil { // b@1 tombstoned
		t.Fatal(err)
	}
	// Re-register b with a changed payload: epoch 2, so the recovered
	// latest map still knows epoch 1 was once issued.
	if b2 := mustRegister(t, r, "b", "t2", 2, "b2", 20); b2.Epoch != 2 {
		t.Fatalf("re-register after tombstone: %+v", b2)
	}
	want := r.List()
	store.Close() // crash: no compaction, WAL tail is what recovery sees

	store2, err := jobstore.Open(dir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	r2 := NewRegistry(Config{Store: store2, Scope: "nodeA"})
	n, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d handles, want 2", n)
	}
	got := r2.List()
	if len(got) != len(want) {
		t.Fatalf("recovered %d live handles, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Handle != want[i].Handle || got[i].Refs != want[i].Refs ||
			got[i].Tenant != want[i].Tenant || got[i].JobID != want[i].JobID ||
			fmt.Sprint(got[i].Owners) != fmt.Sprint(want[i].Owners) {
			t.Fatalf("recovered[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if !r2.Retained("job1:x_2_0") {
		t.Fatal("recovered handle lost its retained arrays")
	}
	// The tombstoned epoch answers gone (not unknown): the live epoch-2
	// record rebuilt the latest map past it. An epoch never issued stays
	// unknown.
	if _, _, err := r2.Stat(b.Ref()); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("tombstoned handle after recovery: %v", err)
	}
	if _, _, err := r2.Stat(Ref{Name: "b", Epoch: 3}); !errors.Is(err, ErrUnknownProxy) {
		t.Fatalf("never-issued epoch after recovery: %v", err)
	}
	// The anonymous ref survived: two releases reach the origin, three fail.
	if n, err := r2.Release(a.Ref(), "job3"); err != nil || n != 2 {
		t.Fatalf("owner release after recovery: n=%d err=%v", n, err)
	}
	if n, err := r2.Release(a.Ref(), ""); err != nil || n != 1 {
		t.Fatalf("anon release after recovery: n=%d err=%v", n, err)
	}
	if n, err := r2.Release(a.Ref(), ""); err != nil || n != 0 {
		t.Fatalf("origin release after recovery: n=%d err=%v", n, err)
	}
	if _, _, err := r2.Stat(a.Ref()); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("after full drain: %v", err)
	}
}

// TestRetireJob drops the origin lease of a job's handles (the failed /
// cancelled retirement edge) while client references keep them alive.
func TestRetireJob(t *testing.T) {
	r := NewRegistry(Config{})
	h := mustRegister(t, r, "job1", "t", 1, "aa", 8)
	keep := mustRegister(t, r, "job2", "t", 2, "bb", 8)
	if _, err := r.AddRef(keep.Ref(), ""); err != nil {
		t.Fatal(err)
	}
	if got := r.RetireJob(1); len(got) != 1 || got[0] != h {
		t.Fatalf("retire job 1: %v", got)
	}
	if _, _, err := r.Stat(h.Ref()); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("retired handle: %v", err)
	}
	// Job 2's handle loses only its origin lease; the client ref holds it.
	if got := r.RetireJob(2); len(got) != 1 {
		t.Fatalf("retire job 2: %v", got)
	}
	if _, _, err := r.Stat(keep.Ref()); err != nil {
		t.Fatalf("client-held handle died at retirement: %v", err)
	}
}

func TestHandleForJob(t *testing.T) {
	r := NewRegistry(Config{})
	mustRegister(t, r, "job1", "t", 1, "aa", 8)
	h2 := mustRegister(t, r, "job1", "t", 1, "bb", 8) // epoch bump
	got, ok := r.HandleForJob(1)
	if !ok || got != h2 {
		t.Fatalf("HandleForJob = %v, %v", got, ok)
	}
	if _, ok := r.HandleForJob(9); ok {
		t.Fatal("HandleForJob invented a handle")
	}
}

func TestClosedRegistry(t *testing.T) {
	r := NewRegistry(Config{})
	h := mustRegister(t, r, "job1", "t", 1, "aa", 8)
	r.Close()
	if _, err := r.Register(RegisterRequest{Name: "x", SHA256: "cc", Length: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v", err)
	}
	if _, err := r.AddRef(h.Ref(), ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("addref after close: %v", err)
	}
	if _, err := r.Acquire(h.Ref()); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
}
