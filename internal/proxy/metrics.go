package proxy

import "dooc/internal/obs"

// metrics are the registry's dooc_proxy_* series, resolved once at
// construction. With a nil registry every field is nil and every operation
// a no-op (obs types are nil-safe). The counters and gauges reconcile
// exactly with registry state:
//
//	registered - reclaimed == dooc_proxy_handles (live count)
//	resident bytes          == Σ length over live handles
type metrics struct {
	registered    *obs.Counter
	resolved      *obs.Counter
	resolvedBytes *obs.Counter
	released      *obs.Counter
	reclaimed     *obs.Counter
	expired       *obs.Counter
	quotaRejects  *obs.Counter

	count         *obs.Gauge
	residentBytes *obs.Gauge

	resolveSeconds *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		registered:    reg.Counter("dooc_proxy_registered_total", "proxy handles registered (including journal recovery)"),
		resolved:      reg.Counter("dooc_proxy_resolved_total", "proxy handles resolved end to end"),
		resolvedBytes: reg.Counter("dooc_proxy_resolved_bytes_total", "payload bytes materialized by proxy resolves"),
		released:      reg.Counter("dooc_proxy_released_total", "references dropped (client release, TTL expiry, owner retirement)"),
		reclaimed:     reg.Counter("dooc_proxy_reclaimed_total", "handles reclaimed after their last reference dropped"),
		expired:       reg.Counter("dooc_proxy_expired_total", "origin leases released by TTL expiry"),
		quotaRejects:  reg.Counter("dooc_proxy_quota_rejections_total", "registrations rejected by tenant proxy quotas"),

		count:         reg.Gauge("dooc_proxy_handles", "live proxy handles"),
		residentBytes: reg.Gauge("dooc_proxy_resident_bytes", "payload bytes retained under live handles"),

		resolveSeconds: reg.Histogram("dooc_proxy_resolve_seconds", "end-to-end proxy resolve latency",
			[]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
	}
}
