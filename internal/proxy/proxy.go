// Package proxy is DOoC's pass-by-reference result plane, borrowed from the
// ProxyStore papers: a completed job registers its iterate under a compact,
// durable handle (name, epoch, SHA-256, byte length, origin scope) instead
// of shipping the vector to whoever asked. Any client or downstream job
// resolves the handle on demand against the storage tier, and the backing
// arrays live exactly as long as someone holds a reference — client addrefs,
// the origin job's lease (optionally TTL-bounded), or a consumer job that
// named the handle as its input. Refcounted ownership replaces the job
// service's eager per-job DeleteSpMVArrays teardown, which is what turns
// the job service into a composable dataflow: job B consumes job A's output
// without the bytes ever leaving the cluster.
//
// Lifetime state machine (DESIGN.md §15):
//
//	registered ──addref/release──▶ registered (refs+owners > 0)
//	     │ last reference drops (release, TTL expiry, owner-job retirement)
//	     ▼
//	   gone ──(in-flight resolves pinned: reclaim deferred)──▶ reclaimed
//
// A resolve pins the entry in memory before reading, so a resolve racing
// the last release either completes with the whole payload or fails with
// ErrProxyGone — never partial bytes. Pins are memory-only (an in-flight
// resolve does not survive a crash); refs and owners journal through
// internal/jobstore, so handles and refcounts are rebuilt exactly after a
// restart.
package proxy

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dooc/internal/jobstore"
	"dooc/internal/obs"
)

// OwnerOrigin is the named reference the registry itself takes at Register
// on behalf of the producing job — the lease that TTL expiry, failed-job
// retirement, or an anonymous release with no outstanding addrefs drops.
const OwnerOrigin = "origin"

// Typed lifetime errors.
var (
	// ErrUnknownProxy reports a handle the registry has never issued.
	ErrUnknownProxy = errors.New("proxy: unknown handle")
	// ErrProxyGone reports a handle whose last reference dropped — the
	// typed answer a resolve racing the final release gets instead of
	// partial bytes.
	ErrProxyGone = errors.New("proxy: handle released")
	// ErrProxyQuota rejects a registration that would exceed the tenant's
	// proxy count or resident-byte quota.
	ErrProxyQuota = errors.New("proxy: tenant proxy quota exceeded")
	// ErrNoRefs reports a release with no matching reference outstanding.
	ErrNoRefs = errors.New("proxy: release without outstanding reference")
	// ErrClosed reports use of a closed registry.
	ErrClosed = errors.New("proxy: registry closed")
)

// Handle is the compact pass-by-reference identity of a job result. It is
// what crosses the wire instead of the vector: ~100 bytes naming megabytes.
type Handle struct {
	Name   string `json:"name"`
	Epoch  uint64 `json:"epoch"`
	SHA256 string `json:"sha256"`
	Length int64  `json:"length"`
	// Scope is the origin node's cluster scope; a resolver whose local
	// registry does not know the handle forwards to this owner.
	Scope string `json:"scope,omitempty"`
}

// Valid reports whether the handle names anything.
func (h Handle) Valid() bool { return h.Name != "" && h.Epoch > 0 }

// Ref returns the handle's reference (the resolvable part).
func (h Handle) Ref() Ref { return Ref{Name: h.Name, Epoch: h.Epoch, Scope: h.Scope} }

// String renders "name@epoch" (plus "@scope" when scoped) — the form
// doocrun prints and parses.
func (h Handle) String() string { return h.Ref().String() }

// Ref addresses a handle: name@epoch, optionally scoped to its origin node.
type Ref struct {
	Name  string `json:"name"`
	Epoch uint64 `json:"epoch"`
	Scope string `json:"scope,omitempty"`
}

// Valid reports whether the ref addresses anything.
func (r Ref) Valid() bool { return r.Name != "" && r.Epoch > 0 }

func (r Ref) String() string {
	s := r.Name + "@" + strconv.FormatUint(r.Epoch, 10)
	if r.Scope != "" {
		s += "@" + r.Scope
	}
	return s
}

// ParseRef parses "name@epoch" or "name@epoch@scope" (doocrun's flag and
// output format).
func ParseRef(s string) (Ref, error) {
	parts := strings.Split(s, "@")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
		return Ref{}, fmt.Errorf("proxy: malformed ref %q (want name@epoch[@scope])", s)
	}
	epoch, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil || epoch == 0 {
		return Ref{}, fmt.Errorf("proxy: malformed ref %q: bad epoch %q", s, parts[1])
	}
	r := Ref{Name: parts[0], Epoch: epoch}
	if len(parts) == 3 {
		r.Scope = parts[2]
	}
	return r, nil
}

// Config parameterizes a Registry.
type Config struct {
	// Store, when non-nil, journals every registration, refcount change,
	// and reclaim through the job store's WAL, so handles survive restart.
	Store *jobstore.Store
	// Obs receives the dooc_proxy_* series (nil disables).
	Obs *obs.Registry
	// Scope is stamped on registered handles as their origin (doocserve's
	// cluster node ID; "" for single-process registries).
	Scope string
	// TTL bounds the origin lease: a registered handle whose origin
	// reference is still held when the TTL passes has it released by Sweep.
	// 0 means the origin lease never expires.
	TTL time.Duration
	// MaxPerTenant / MaxBytesPerTenant cap one tenant's live handles and
	// their resident payload bytes (0 = unlimited). Registrations beyond
	// either fail with ErrProxyQuota.
	MaxPerTenant      int
	MaxBytesPerTenant int64
	// OnReclaim, when non-nil, is called (outside the registry lock) after
	// a handle's last reference drops and no resolve pins it — the hook
	// that drops the retained storage arrays.
	OnReclaim func(h Handle, arrays []string)
}

// entry is one live handle's registry state.
type entry struct {
	h      Handle
	tenant string
	jobID  int64
	arrays []string
	refs   int                 // anonymous wire references (journaled)
	owners map[string]struct{} // named references (journaled)
	// deadline is the origin lease's TTL expiry (zero = none).
	deadline time.Time
	// pins counts in-flight resolves (memory only): while > 0 a gone entry
	// defers its physical reclaim so readers finish with whole bytes.
	pins int
	gone bool
}

func (e *entry) live() int { return e.refs + len(e.owners) }

// Registry is the refcounted proxy-handle table. All methods are safe for
// concurrent use.
type Registry struct {
	cfg Config
	m   metrics

	mu      sync.Mutex
	entries map[string]*entry // key: ref "name@epoch"
	latest  map[string]uint64 // newest epoch ever issued per name
	closed  bool
}

// NewRegistry builds a registry; call Recover before serving traffic when a
// journal may hold pre-crash handles.
func NewRegistry(cfg Config) *Registry {
	return &Registry{
		cfg:     cfg,
		m:       newMetrics(cfg.Obs),
		entries: make(map[string]*entry),
		latest:  make(map[string]uint64),
	}
}

// Scope returns the registry's origin scope.
func (r *Registry) Scope() string { return r.cfg.Scope }

// RegisterRequest describes one registration.
type RegisterRequest struct {
	// Name is the handle's name (the job service uses "job<id>").
	Name   string
	Tenant string
	JobID  int64
	// SHA256 (hex) and Length identify the payload.
	SHA256 string
	Length int64
	// Arrays are the storage arrays retained under the handle.
	Arrays []string
}

// Register issues a handle for a completed result, taking the origin
// reference on the producing job's behalf. Re-registering the same name
// with the same payload identity (a resumed job re-finishing) is
// idempotent: the existing live handle is returned with its retained
// arrays updated, not a new epoch. A changed payload bumps the epoch so a
// stale handle can never resolve to different bytes.
func (r *Registry) Register(req RegisterRequest) (Handle, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return Handle{}, ErrClosed
	}
	if cur, ok := r.entries[Ref{Name: req.Name, Epoch: r.latest[req.Name]}.String()]; ok && !cur.gone &&
		cur.h.SHA256 == req.SHA256 && cur.h.Length == req.Length {
		cur.arrays = append([]string(nil), req.Arrays...)
		h := cur.h
		err := r.journalLocked(cur)
		r.mu.Unlock()
		if err != nil {
			return Handle{}, err
		}
		return h, nil
	}
	if err := r.quotaLocked(req.Tenant, req.Length); err != nil {
		r.m.quotaRejects.Inc()
		r.mu.Unlock()
		return Handle{}, err
	}
	epoch := r.latest[req.Name] + 1
	e := &entry{
		h: Handle{
			Name:   req.Name,
			Epoch:  epoch,
			SHA256: req.SHA256,
			Length: req.Length,
			Scope:  r.cfg.Scope,
		},
		tenant: req.Tenant,
		jobID:  req.JobID,
		arrays: append([]string(nil), req.Arrays...),
		owners: map[string]struct{}{OwnerOrigin: {}},
	}
	if r.cfg.TTL > 0 {
		e.deadline = time.Now().Add(r.cfg.TTL)
	}
	if err := r.journalLocked(e); err != nil {
		r.mu.Unlock()
		return Handle{}, err
	}
	r.entries[entryKey(e.h)] = e
	r.latest[req.Name] = epoch
	r.m.registered.Inc()
	r.m.residentBytes.Add(req.Length)
	r.m.count.Add(1)
	h := e.h
	r.mu.Unlock()
	return h, nil
}

// quotaLocked enforces the per-tenant handle-count and resident-byte caps.
func (r *Registry) quotaLocked(tenant string, add int64) error {
	if r.cfg.MaxPerTenant <= 0 && r.cfg.MaxBytesPerTenant <= 0 {
		return nil
	}
	count, bytes := 0, int64(0)
	for _, e := range r.entries {
		if e.tenant == tenant && !e.gone {
			count++
			bytes += e.h.Length
		}
	}
	if r.cfg.MaxPerTenant > 0 && count+1 > r.cfg.MaxPerTenant {
		return fmt.Errorf("%w: tenant %q at %d/%d handles", ErrProxyQuota, tenant, count, r.cfg.MaxPerTenant)
	}
	if r.cfg.MaxBytesPerTenant > 0 && bytes+add > r.cfg.MaxBytesPerTenant {
		return fmt.Errorf("%w: tenant %q at %d+%d/%d resident bytes", ErrProxyQuota, tenant, bytes, add, r.cfg.MaxBytesPerTenant)
	}
	return nil
}

// entryKey is the canonical entries-map key for a handle: name@epoch with
// the scope stripped, so a scoped ref from the wire and the local handle
// land on the same entry.
func entryKey(h Handle) string { return Ref{Name: h.Name, Epoch: h.Epoch}.String() }

// lookupLocked resolves a ref to its live entry, mapping the two failure
// shapes to their typed errors: a name@epoch the registry once issued but
// has reclaimed is ErrProxyGone; a ref it never issued is ErrUnknownProxy.
func (r *Registry) lookupLocked(ref Ref) (*entry, error) {
	e, ok := r.entries[Ref{Name: ref.Name, Epoch: ref.Epoch}.String()]
	if ok && !e.gone {
		return e, nil
	}
	if ok || ref.Epoch <= r.latest[ref.Name] {
		return nil, fmt.Errorf("%w: %s", ErrProxyGone, ref)
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownProxy, ref)
}

// AddRef takes a reference on a handle. owner "" counts an anonymous wire
// reference; a non-empty owner takes a named reference, idempotently (a
// consumer job re-taking its input ref after a crash is a no-op).
func (r *Registry) AddRef(ref Ref, owner string) (Handle, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return Handle{}, ErrClosed
	}
	e, err := r.lookupLocked(ref)
	if err != nil {
		r.mu.Unlock()
		return Handle{}, err
	}
	if owner == "" {
		e.refs++
	} else if _, held := e.owners[owner]; !held {
		e.owners[owner] = struct{}{}
	} else {
		h := e.h
		r.mu.Unlock()
		return h, nil // idempotent re-take: nothing to journal
	}
	if err := r.journalLocked(e); err != nil {
		// Roll the unjournaled reference back: an acked ref must survive
		// restart or a release after the crash would double-free.
		if owner == "" {
			e.refs--
		} else {
			delete(e.owners, owner)
		}
		r.mu.Unlock()
		return Handle{}, err
	}
	h := e.h
	r.mu.Unlock()
	return h, nil
}

// Release drops a reference. owner "" first consumes an anonymous
// reference; with none outstanding it falls back to the origin lease —
// that is how a client's explicit `doocrun -release` disposes of a result
// nobody addref'd. Releasing a named owner that is not held is a no-op
// (idempotent, for crash-safe consumer retirement). When the last
// reference drops the handle goes gone immediately (new resolves fail with
// ErrProxyGone) and is physically reclaimed once no in-flight resolve pins
// it. Returns the references remaining.
func (r *Registry) Release(ref Ref, owner string) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	e, err := r.lookupLocked(ref)
	if err != nil {
		r.mu.Unlock()
		return 0, err
	}
	released := owner
	switch {
	case owner == "" && e.refs > 0:
		e.refs--
	case owner == "":
		if _, held := e.owners[OwnerOrigin]; !held {
			r.mu.Unlock()
			return 0, fmt.Errorf("%w: %s", ErrNoRefs, ref)
		}
		delete(e.owners, OwnerOrigin)
		released = OwnerOrigin
	default:
		if _, held := e.owners[owner]; !held {
			remaining := e.live()
			r.mu.Unlock()
			return remaining, nil
		}
		delete(e.owners, owner)
	}
	return r.releasedLocked(e, released)
}

// releasedLocked journals the post-release state (a tombstone when the
// last reference dropped), runs deferred reclaim bookkeeping, and unlocks.
func (r *Registry) releasedLocked(e *entry, owner string) (int, error) {
	remaining := e.live()
	if remaining == 0 {
		e.gone = true
	}
	if err := r.journalLocked(e); err != nil {
		// Journal failure: roll back so durable and in-memory state agree.
		if owner == "" {
			e.refs++
		} else {
			e.owners[owner] = struct{}{}
		}
		e.gone = false
		r.mu.Unlock()
		return 0, err
	}
	r.m.released.Inc()
	var reclaim *entry
	if e.gone && e.pins == 0 {
		reclaim = e
		r.reclaimLocked(e)
	}
	r.mu.Unlock()
	if reclaim != nil && r.cfg.OnReclaim != nil {
		r.cfg.OnReclaim(reclaim.h, reclaim.arrays)
	}
	return remaining, nil
}

// reclaimLocked removes a gone, unpinned entry from the table and settles
// the gauges. The caller invokes OnReclaim outside the lock.
func (r *Registry) reclaimLocked(e *entry) {
	delete(r.entries, entryKey(e.h))
	r.m.reclaimed.Inc()
	r.m.residentBytes.Add(-e.h.Length)
	r.m.count.Add(-1)
}

// Pin is an in-flight resolve's hold on a handle: while open, the entry's
// backing arrays outlive even the final release. Close is idempotent.
type Pin struct {
	Handle Handle
	JobID  int64
	Arrays []string

	r      *Registry
	once   sync.Once
	closed bool
}

// Close drops the pin; if the handle went gone while pinned, the deferred
// physical reclaim runs now.
func (p *Pin) Close() {
	p.once.Do(func() {
		r := p.r
		r.mu.Lock()
		e, ok := r.entries[entryKey(p.Handle)]
		if !ok {
			r.mu.Unlock()
			return
		}
		e.pins--
		var reclaim *entry
		if e.gone && e.pins == 0 {
			reclaim = e
			r.reclaimLocked(e)
		}
		r.mu.Unlock()
		if reclaim != nil && r.cfg.OnReclaim != nil {
			r.cfg.OnReclaim(reclaim.h, reclaim.arrays)
		}
	})
}

// Acquire pins a live handle for resolution. The returned Pin must be
// Closed when the read finishes. A gone or unknown handle fails typed
// (ErrProxyGone / ErrUnknownProxy) — the resolve-vs-last-release race
// resolves to whole bytes or a typed error, never a partial read.
func (r *Registry) Acquire(ref Ref) (*Pin, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	e, err := r.lookupLocked(ref)
	if err != nil {
		return nil, err
	}
	e.pins++
	return &Pin{
		Handle: e.h,
		JobID:  e.jobID,
		Arrays: append([]string(nil), e.arrays...),
		r:      r,
	}, nil
}

// Stat returns a handle and its current reference count.
func (r *Registry) Stat(ref Ref) (Handle, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, err := r.lookupLocked(ref)
	if err != nil {
		return Handle{}, 0, err
	}
	return e.h, e.live(), nil
}

// HandleForJob returns the live handle registered by job id (the newest,
// when a re-registration bumped the epoch), or false.
func (r *Registry) HandleForJob(id int64) (Handle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best Handle
	found := false
	for _, e := range r.entries {
		if e.jobID == id && !e.gone && (!found || e.h.Epoch > best.Epoch) {
			best, found = e.h, true
		}
	}
	return best, found
}

// Retained reports whether any live handle retains the named storage
// array — the check the job service's teardown paths make before deleting.
func (r *Registry) Retained(array string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.gone {
			continue
		}
		for _, a := range e.arrays {
			if a == array {
				return true
			}
		}
	}
	return false
}

// RetireJob drops the origin lease of every handle job id registered — the
// owning-job-retirement edge of the lifetime machine (a failed or
// cancelled job's result must not stay resolvable). Returns the handles
// whose origin lease was released.
func (r *Registry) RetireJob(id int64) []Handle {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	var victims []*entry
	for _, e := range r.entries {
		if e.jobID != id || e.gone {
			continue
		}
		if _, held := e.owners[OwnerOrigin]; held {
			victims = append(victims, e)
		}
	}
	var out []Handle
	for _, e := range victims {
		delete(e.owners, OwnerOrigin)
		out = append(out, e.h)
		// releasedLocked unlocks; re-take for the next victim.
		r.releasedLocked(e, OwnerOrigin)
		r.mu.Lock()
	}
	r.mu.Unlock()
	return out
}

// Sweep releases the origin lease of every handle whose TTL deadline has
// passed, returning how many expired. doocserve calls it periodically.
func (r *Registry) Sweep(now time.Time) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0
	}
	var victims []*entry
	for _, e := range r.entries {
		if e.gone || e.deadline.IsZero() || e.deadline.After(now) {
			continue
		}
		if _, held := e.owners[OwnerOrigin]; held {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		delete(e.owners, OwnerOrigin)
		r.m.expired.Inc()
		r.releasedLocked(e, OwnerOrigin)
		r.mu.Lock()
	}
	r.mu.Unlock()
	return len(victims)
}

// ObserveResolve feeds the resolve-side series: call once per successful
// end-to-end resolution with the payload size and wall seconds.
func (r *Registry) ObserveResolve(bytes int64, seconds float64) {
	r.m.resolved.Inc()
	r.m.resolvedBytes.Add(bytes)
	r.m.resolveSeconds.Observe(seconds)
}

// Status is one handle's externally visible state (the /proxies endpoint).
type Status struct {
	Handle
	Tenant   string    `json:"tenant,omitempty"`
	JobID    int64     `json:"job"`
	Refs     int       `json:"refs"`
	Owners   []string  `json:"owners,omitempty"`
	Pins     int       `json:"pins,omitempty"`
	Deadline time.Time `json:"deadline,omitempty"`
}

// List snapshots every live handle, ordered by name then epoch.
func (r *Registry) List() []Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Status, 0, len(r.entries))
	for _, e := range r.entries {
		if e.gone {
			continue
		}
		st := Status{
			Handle: e.h,
			Tenant: e.tenant,
			JobID:  e.jobID,
			Refs:   e.refs,
			Pins:   e.pins,
		}
		for o := range e.owners {
			st.Owners = append(st.Owners, o)
		}
		sort.Strings(st.Owners)
		if !e.deadline.IsZero() {
			st.Deadline = e.deadline
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Name != out[k].Name {
			return out[i].Name < out[k].Name
		}
		return out[i].Epoch < out[k].Epoch
	})
	return out
}

// Recover rebuilds the registry from the journal's live proxy records.
// Call once after NewRegistry, before serving traffic. Returns the number
// of handles rebuilt. No-op without a store.
func (r *Registry) Recover() (int, error) {
	if r.cfg.Store == nil {
		return 0, nil
	}
	recs := r.cfg.Store.ProxyRecords()
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rec := range recs {
		key := Ref{Name: rec.Name, Epoch: rec.Epoch}.String()
		if _, ok := r.entries[key]; ok {
			continue // recovered already (Recover called twice)
		}
		e := &entry{
			h: Handle{
				Name:   rec.Name,
				Epoch:  rec.Epoch,
				SHA256: rec.SHA256,
				Length: rec.Length,
				Scope:  rec.Scope,
			},
			tenant:   rec.Tenant,
			jobID:    rec.JobID,
			arrays:   append([]string(nil), rec.Arrays...),
			refs:     rec.Refs,
			owners:   make(map[string]struct{}, len(rec.Owners)),
			deadline: rec.Deadline,
		}
		for _, o := range rec.Owners {
			e.owners[o] = struct{}{}
		}
		r.entries[key] = e
		if rec.Epoch > r.latest[rec.Name] {
			r.latest[rec.Name] = rec.Epoch
		}
		r.m.registered.Inc()
		r.m.residentBytes.Add(rec.Length)
		r.m.count.Add(1)
		n++
	}
	return n, nil
}

// journalLocked appends the entry's current durable state (a tombstone
// when gone). No-op without a store.
func (r *Registry) journalLocked(e *entry) error {
	if r.cfg.Store == nil {
		return nil
	}
	rec := jobstore.ProxyRecord{
		Name:     e.h.Name,
		Epoch:    e.h.Epoch,
		SHA256:   e.h.SHA256,
		Length:   e.h.Length,
		Scope:    e.h.Scope,
		Tenant:   e.tenant,
		JobID:    e.jobID,
		Arrays:   e.arrays,
		Refs:     e.refs,
		Deadline: e.deadline,
		Released: e.gone,
	}
	for o := range e.owners {
		rec.Owners = append(rec.Owners, o)
	}
	sort.Strings(rec.Owners)
	return r.cfg.Store.AppendProxy(rec)
}

// Close marks the registry closed; subsequent mutations fail with
// ErrClosed. It does not reclaim live handles — they are durable state.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
}
