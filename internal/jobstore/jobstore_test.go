package jobstore

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dooc/internal/obs"
)

func rec(id int64, state string) Record {
	return Record{
		ID:          id,
		Key:         fmt.Sprintf("key%d", id),
		Tenant:      "t",
		Priority:    int(id),
		Payload:     []byte(fmt.Sprintf(`{"iters":%d}`, id)),
		State:       state,
		SubmittedAt: time.Unix(1000+id, 0).UTC(),
	}
}

// TestRoundTrip: appended records survive a close/reopen cycle with order,
// payloads, and the ID high-water mark intact.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := s.Append(rec(i, "queued")); err != nil {
			t.Fatal(err)
		}
	}
	// A transition updates in place, not as a new job.
	r2 := rec(2, "done")
	if err := s.Append(r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, want := range []int64{1, 2, 3} {
		if recs[i].ID != want {
			t.Fatalf("record %d has ID %d, want %d (submission order lost)", i, recs[i].ID, want)
		}
	}
	if recs[1].State != "done" || recs[0].State != "queued" {
		t.Fatalf("states not replayed: %q %q", recs[0].State, recs[1].State)
	}
	if !bytes.Equal(recs[2].Payload, []byte(`{"iters":3}`)) {
		t.Fatalf("payload lost: %q", recs[2].Payload)
	}
	if s2.MaxID() != 3 {
		t.Fatalf("MaxID = %d, want 3", s2.MaxID())
	}
	if s2.ReplayInfo().Torn {
		t.Fatal("clean close reported a torn WAL")
	}
}

// TestTornFinalRecord: a WAL whose last record was cut mid-write (the crash
// signature) replays everything before the tear, reports Torn, repairs the
// file, and accepts new appends.
func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		if err := s.Append(rec(i, "queued")); err != nil {
			t.Fatal(err)
		}
	}
	s.Abort() // no compaction: everything lives in the WAL

	// Tear the final record: chop a few bytes off the file.
	path := filepath.Join(dir, walName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.ReplayInfo().Torn {
		t.Fatal("torn WAL not reported")
	}
	if got := len(s2.Records()); got != 3 {
		t.Fatalf("replayed %d records after tear, want 3", got)
	}
	// The repaired journal accepts and persists new entries.
	if err := s2.Append(rec(9, "queued")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := len(s3.Records()); got != 4 {
		t.Fatalf("post-repair store replayed %d records, want 4", got)
	}
	if s3.ReplayInfo().Torn {
		t.Fatal("repaired WAL still reports torn")
	}
}

// TestAbortDropsNothingAcknowledged: every Append acknowledged before the
// simulated crash is visible after reopen (the fsync-per-transition
// contract).
func TestAbortDropsNothingAcknowledged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := s.Append(rec(i, "running")); err != nil {
			t.Fatal(err)
		}
	}
	s.Abort()
	if err := s.Append(rec(6, "queued")); err != ErrClosed {
		t.Fatalf("append after abort: %v, want ErrClosed", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Records()); got != 5 {
		t.Fatalf("recovered %d records, want 5", got)
	}
}

// TestCompactionAndRetention: compaction folds the WAL into the snapshot,
// prunes terminal history beyond the retention bound oldest-first, removes
// pruned result files, and never prunes live jobs or the ID high-water mark.
func TestCompactionAndRetention(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, Options{CompactEvery: 1000, RetainHistory: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for i := int64(1); i <= 5; i++ {
		r := rec(i, "done")
		if i == 4 {
			r.State = "running" // live: must survive pruning
		} else {
			file, sha, err := s.SaveResult(i, []byte{byte(i)})
			if err != nil {
				t.Fatal(err)
			}
			r.ResultFile, r.ResultSHA = file, sha
			files = append(files, filepath.Join(dir, file))
		}
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// 4 terminal records, retention 2: jobs 1 and 2 pruned, their results gone.
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("after retention: %d records, want 3", len(recs))
	}
	for _, r := range recs {
		if r.ID == 1 || r.ID == 2 {
			t.Fatalf("job %d should have been pruned", r.ID)
		}
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatalf("pruned job 1's result file survives: %v", err)
	}
	if _, err := os.Stat(files[2]); err != nil {
		t.Fatalf("retained job 3's result file gone: %v", err)
	}
	// The WAL is empty after compaction; replay comes from the snapshot.
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not truncated after compaction: %v size=%d", err, fi.Size())
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Records()); got != 3 {
		t.Fatalf("snapshot replayed %d records, want 3", got)
	}
	if s2.MaxID() != 5 {
		t.Fatalf("MaxID %d after pruning, want 5 (IDs must never be reused)", s2.MaxID())
	}
}

// TestAutoCompaction: the CompactEvery threshold triggers compaction from
// inside Append.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int64(1); i <= 4; i++ {
		if err := s.Append(rec(i, "queued")); err != nil {
			t.Fatal(err)
		}
	}
	if fi, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil || fi.Size() == 0 {
		t.Fatalf("no snapshot after CompactEvery appends: %v", err)
	}
	if fi, _ := os.Stat(filepath.Join(dir, walName)); fi.Size() != 0 {
		t.Fatalf("WAL holds %d bytes after auto-compaction", fi.Size())
	}
}

// TestResultRoundTrip: SaveResult/LoadResult round-trips the payload, the
// SHA matches, and corruption is detected.
func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := []byte("the final iterate")
	file, sha, err := s.SaveResult(7, payload)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%x", sha256.Sum256(payload))
	if sha != want {
		t.Fatalf("sha %s, want %s", sha, want)
	}
	r := Record{ID: 7, State: "done", ResultFile: file, ResultSHA: sha}
	got, err := s.LoadResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("result %q, want %q", got, payload)
	}
	// Flip a payload bit on disk: the frame CRC must catch it.
	abs := filepath.Join(dir, file)
	raw, err := os.ReadFile(abs)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(abs, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadResult(r); err == nil {
		t.Fatal("corrupted result loaded without error")
	}
}

// TestOversizedAppendRejected: an entry past the journal frame cap is
// rejected at Append time — never acknowledged, never written — instead of
// being persisted as a frame replay would treat as torn (which would
// silently drop every later acknowledged entry).
func TestOversizedAppendRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(1, "queued")); err != nil {
		t.Fatal(err)
	}
	big := rec(2, "queued")
	big.Payload = make([]byte, maxWALFrameLen+1)
	if err := s.Append(big); err == nil {
		t.Fatal("oversized append acknowledged")
	}
	// The store keeps working, and entries after the rejection survive.
	if err := s.Append(rec(3, "queued")); err != nil {
		t.Fatalf("append after oversized rejection: %v", err)
	}
	s.Abort()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.ReplayInfo().Torn {
		t.Fatal("rejected oversized append left a torn WAL")
	}
	recs := s2.Records()
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 3 {
		t.Fatalf("replayed %v, want jobs 1 and 3", recs)
	}
}

// TestLargeResultRoundTrip: result files are one frame per file and are not
// subject to the journal's 16 MiB entry cap — a result bigger than the cap
// (e.g. an 8*Dim iterate with millions of elements) persists and loads back
// across a restart instead of failing as "corrupt".
func TestLargeResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, maxWALFrameLen+4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	file, sha, err := s.SaveResult(11, payload)
	if err != nil {
		t.Fatalf("saving %d-byte result: %v", len(payload), err)
	}
	r := rec(11, "done")
	r.ResultFile, r.ResultSHA = file, sha
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	s.Abort()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.LoadResult(s2.Records()[0])
	if err != nil {
		t.Fatalf("loading large result after restart: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large result payload mutated across restart")
	}
}

// TestSaveResultAfterAbortRejected: after Abort (the kill -9 simulation) a
// racing worker must not keep adding durable result files — durable state
// stays exactly what the last acknowledged Append left.
func TestSaveResultAfterAbortRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Abort()
	if _, _, err := s.SaveResult(3, []byte("late")); err != ErrClosed {
		t.Fatalf("SaveResult after Abort: %v, want ErrClosed", err)
	}
	if _, err := os.Stat(filepath.Join(dir, resultsDir, "job3.res")); !os.IsNotExist(err) {
		t.Fatalf("result file written after abort: %v", err)
	}
}

// TestDrainMarker: MarkDrain survives replay and is reported.
func TestDrainMarker(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(1, "running")); err != nil {
		t.Fatal(err)
	}
	before := time.Now().Add(-time.Second)
	if err := s.MarkDrain(); err != nil {
		t.Fatal(err)
	}
	s.Abort()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if d := s2.ReplayInfo().LastDrain; !d.After(before) {
		t.Fatalf("drain marker not replayed: %v", d)
	}
}

// TestProxyRecordReplay: proxy-handle records replay across close/reopen —
// latest-wins updates, tombstone deletion, and survival of compaction.
func TestProxyRecordReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prx := func(name string, epoch uint64, refs int, owners ...string) ProxyRecord {
		return ProxyRecord{
			Name: name, Epoch: epoch, SHA256: "aa", Length: 16,
			Scope: "nodeA", Tenant: "t", JobID: 1,
			Arrays: []string{name + ":x_1_0"}, Refs: refs, Owners: owners,
		}
	}
	for _, r := range []ProxyRecord{
		prx("a", 1, 0, "origin"),
		prx("b", 1, 0, "origin"),
		prx("a", 1, 2, "origin", "job3"), // update in place, latest wins
	} {
		if err := s.AppendProxy(r); err != nil {
			t.Fatal(err)
		}
	}
	tomb := prx("b", 1, 0)
	tomb.Released = true
	if err := s.AppendProxy(tomb); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	live := s2.ProxyRecords()
	if len(live) != 1 || live[0].Name != "a" || live[0].Refs != 2 {
		t.Fatalf("replayed %+v", live)
	}
	if fmt.Sprint(live[0].Owners) != "[origin job3]" {
		t.Fatalf("owners %v", live[0].Owners)
	}
	if len(live[0].Arrays) != 1 || live[0].Arrays[0] != "a:x_1_0" {
		t.Fatalf("arrays %v", live[0].Arrays)
	}

	// Compaction folds the journal down to live state only: the surviving
	// handle rides through, the tombstoned one stays dead.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	live = s3.ProxyRecords()
	if len(live) != 1 || live[0].Name != "a" || live[0].Epoch != 1 || live[0].Refs != 2 {
		t.Fatalf("post-compaction %+v", live)
	}
}
