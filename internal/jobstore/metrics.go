package jobstore

import "dooc/internal/obs"

// storeMetrics are the job store's series. With a nil registry every
// operation is a no-op (the obs types are nil-safe).
type storeMetrics struct {
	appends       *obs.Counter   // dooc_jobstore_appends_total
	compactions   *obs.Counter   // dooc_jobstore_compactions_total
	compactErrors *obs.Counter   // dooc_jobstore_compact_errors_total
	pruned        *obs.Counter   // dooc_jobstore_pruned_total
	replaySeconds *obs.Histogram // dooc_jobstore_replay_seconds
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	return storeMetrics{
		appends:       reg.Counter("dooc_jobstore_appends_total", "journal entries appended and fsynced"),
		compactions:   reg.Counter("dooc_jobstore_compactions_total", "WAL compactions into the snapshot"),
		compactErrors: reg.Counter("dooc_jobstore_compact_errors_total", "failed compaction attempts (journal stays intact)"),
		pruned:        reg.Counter("dooc_jobstore_pruned_total", "terminal records dropped by the retention policy"),
		replaySeconds: reg.Histogram("dooc_jobstore_replay_seconds", "snapshot+WAL replay duration at Open", nil),
	}
}
