// Package jobstore is a dependency-free, crash-safe embedded store for the
// job manager's control plane. The design mirrors the paper's premise one
// layer up: just as iterative solver state is cheap to externalize to
// scratch disk, the control plane's state — which jobs exist, where each is
// in its lifecycle, where its result lives — is cheap to journal, and doing
// so turns a doocserve restart from "every job silently dropped" into
// "queued jobs re-queue, interrupted jobs resume from their checkpoints,
// finished results stay addressable".
//
// The layout under one directory:
//
//	wal.log       append-only journal of length-prefixed, CRC32-C-framed
//	              gob entries, fsynced per append (every append is a job
//	              state transition, acknowledged only after the sync)
//	snapshot.gob  periodic compaction of the journal: the latest record
//	              per job, in submission order, written atomically
//	              (tmp + rename) so it is never observed torn
//	results/      one framed file per done job's result payload
//
// Replay applies the snapshot, then the WAL on top. Entries carry the full
// job record, so re-applying a WAL that was already compacted (a crash
// between the snapshot rename and the WAL truncate) is idempotent. A torn
// final WAL record — the expected signature of a crash mid-append — is
// detected by its frame CRC, dropped, and the file repaired to the last
// good boundary.
package jobstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dooc/internal/obs"
)

// Record is the durable snapshot of one job. Entries journal the whole
// record, so the newest entry for an ID is the job's state; there is no
// delta encoding to mis-apply.
type Record struct {
	ID int64
	// Key is the client-supplied idempotency key ("" when the submission
	// was not keyed). Replay rebuilds the dedup index from it, so a
	// duplicate submit across a restart still returns the original job.
	Key      string
	Tenant   string
	Priority int

	MemoryBytes  int64
	ScratchBytes int64

	// Payload is the service-level job specification, opaque to the store;
	// recovery hands it back to the service to rebuild the job's work
	// function.
	Payload []byte

	State       string
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	Err         string

	// ResultFile names the framed result payload under the store directory
	// (done jobs only); ResultSHA is the payload's SHA-256 hex.
	ResultFile string
	ResultSHA  string

	// Resumed counts how many times recovery re-admitted this job after a
	// crash or an interrupted drain.
	Resumed int

	// TraceID/RootSpan are the job's causal identity (hex; empty for
	// records written before tracing existed — gob omits zero values, so
	// old journals replay unchanged).
	TraceID  string
	RootSpan string

	// Events is the job's flight-recorder snapshot at the time the record
	// was journaled. The recorder ring is bounded, so the journal entry
	// stays within the WAL frame cap; after a crash these are the only
	// surviving account of what the job did.
	Events []obs.FlightEvent
}

// Terminal reports whether the record's state is final.
func (r Record) Terminal() bool {
	return r.State == "done" || r.State == "failed" || r.State == "cancelled"
}

// ProxyRecord is the durable state of one proxy handle — a pass-by-reference
// job result registered by the proxy registry (internal/proxy). Like job
// records, entries journal the whole record: the newest entry for a
// (Name, Epoch) pair is the handle's state, and a Released entry is a
// tombstone that removes it. Tombstones live only in the WAL — a released
// handle is simply absent from the next snapshot — so the proxy namespace
// never accretes dead entries across compactions.
type ProxyRecord struct {
	// Name/Epoch identify the handle; Epoch disambiguates re-registrations
	// under a reused name (a re-run job) so a stale handle can never resolve
	// to fresh bytes.
	Name  string
	Epoch uint64
	// SHA256 (hex) and Length pin the payload's identity; resolvers verify
	// bytes against them end to end.
	SHA256 string
	Length int64
	// Scope is the origin node's cluster scope (doocserve's node ID), so a
	// foreign handle routes to its owner for resolution.
	Scope  string
	Tenant string
	// JobID is the owning job — the result the handle names.
	JobID int64
	// Arrays are the storage-tier array names retained under this handle
	// (the job's final iterate); reclaim drops them.
	Arrays []string
	// Refs counts anonymous (wire addref) references; Owners are named
	// references (the origin lease, downstream consumer jobs). The handle is
	// live while Refs+len(Owners) > 0.
	Refs   int
	Owners []string
	// Deadline is the origin lease's TTL expiry (zero = no expiry).
	Deadline time.Time
	// Released marks a tombstone: the last reference dropped and the handle
	// was reclaimed.
	Released bool
}

// ---- frame codec ----

// Every journal and snapshot entry travels as one frame:
//
//	[4B LE payload length][4B LE CRC32-C of payload][payload]
//
// The CRC makes a torn or bit-flipped entry self-evident; the length prefix
// bounds the read so a forged header cannot balloon an allocation past the
// file's own size.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeaderLen = 8
	// maxWALFrameLen bounds one journal/snapshot entry; a record is a few
	// hundred bytes plus the service payload, so anything near this is
	// corruption.
	maxWALFrameLen = 16 << 20
	// maxResultLen bounds a result file's payload — the uint32 length
	// prefix's ceiling. Result frames are one-per-file, so the read side is
	// additionally bounded by the file's own size.
	maxResultLen = 1<<32 - 1
)

// errTorn reports a frame that ends early or fails its CRC — the shape of a
// crash mid-append.
var errTorn = errors.New("jobstore: torn journal record")

// writeFrame frames payload onto w. The size is validated against max (and
// the uint32 length prefix) before anything is written, so an oversized
// payload is rejected cleanly rather than persisted as a frame the reader
// will treat as corrupt.
func writeFrame(w io.Writer, payload []byte, max int64) error {
	if int64(len(payload)) > max || int64(len(payload)) > maxResultLen {
		return fmt.Errorf("jobstore: frame payload %d bytes exceeds limit %d", len(payload), max)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame returns the next payload, io.EOF at a clean end of stream, or
// errTorn for a partial or corrupt trailing frame. remaining bounds the
// declared length against the bytes actually left in the file; max is the
// writer-side cap for this frame kind.
func readFrame(r io.Reader, remaining, max int64) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:]))
	if n == 0 || n > max || n > remaining-frameHeaderLen {
		return nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, errTorn
	}
	return payload, nil
}

// ---- journal entries ----

type entryKind uint8

const (
	entryRecord entryKind = iota + 1
	entryMeta
	entryDrain
	entryProxy
)

// entry is the unit both the WAL and the snapshot are made of. Meta
// entries persist the ID high-water mark (so pruning old history never
// recycles an ID); drain entries mark a graceful shutdown's start, which
// recovery reports so an operator can tell a drain-interrupted boot from a
// crash; proxy entries journal proxy-handle state (gob omits the zero
// value, so journals written before the proxy plane replay unchanged).
type entry struct {
	Kind  entryKind
	Rec   Record
	MaxID int64
	At    time.Time
	Proxy ProxyRecord
}

func encodeEntry(e *entry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeEntry(payload []byte) (*entry, error) {
	var e entry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

// ---- store ----

// Options tunes a Store.
type Options struct {
	// CompactEvery is the number of appends between snapshot compactions
	// (default 512). Compaction also applies the history retention policy.
	CompactEvery int
	// RetainHistory bounds the terminal records kept across compactions
	// (default 1024). The oldest terminal jobs beyond it are pruned and
	// their result files removed; live (non-terminal) records are never
	// pruned.
	RetainHistory int
	// Obs receives the store's metric series (nil disables).
	Obs *obs.Registry
}

func (o *Options) fill() {
	if o.CompactEvery <= 0 {
		o.CompactEvery = 512
	}
	if o.RetainHistory <= 0 {
		o.RetainHistory = 1024
	}
}

// ReplayStats summarizes what Open reconstructed.
type ReplayStats struct {
	// Entries is the total journal+snapshot entries applied.
	Entries int
	// Jobs is the number of distinct job records recovered.
	Jobs int
	// Torn reports that the WAL ended in a partial or corrupt record
	// (dropped and repaired) — the expected signature of a crash.
	Torn bool
	// LastDrain is the newest graceful-drain marker, zero if none.
	LastDrain time.Time
	// Duration is the wall time of the replay.
	Duration time.Duration
}

// ErrClosed reports an append to a closed (or crash-simulated) store.
var ErrClosed = errors.New("jobstore: store closed")

// ErrPoisoned reports a store that refused further appends after a journal
// write or fsync failure it could not repair: accepting more entries after
// garbage bytes (or an fsync of unknown effect) would ack transitions that
// replay silently drops at the first torn frame.
var ErrPoisoned = errors.New("jobstore: store poisoned by unrepairable journal write failure")

// Store is the crash-safe job journal. All methods are safe for concurrent
// use; Append returns only after the entry is fsynced, so an acknowledged
// transition survives a kill -9.
type Store struct {
	dir  string
	opts Options
	m    storeMetrics

	mu       sync.Mutex
	wal      *os.File
	walSize  int64 // bytes of intact, fsynced frames in the WAL
	byID     map[int64]*Record
	order    []int64 // submission order of byID keys
	byProxy  map[string]*ProxyRecord
	prxOrder []string // registration order of byProxy keys
	maxID    int64
	appends  int // since the last compaction
	stats    ReplayStats
	closed   bool
	poisoned bool // a journal write failed and could not be rolled back
}

const (
	walName      = "wal.log"
	snapshotName = "snapshot.gob"
	resultsDir   = "results"
)

// Open creates or replays the store under dir.
func Open(dir string, opts Options) (*Store, error) {
	opts.fill()
	if err := os.MkdirAll(filepath.Join(dir, resultsDir), 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		m:       newStoreMetrics(opts.Obs),
		byID:    make(map[int64]*Record),
		byProxy: make(map[string]*ProxyRecord),
	}
	start := time.Now()
	if err := s.replaySnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	s.stats.Jobs = len(s.byID)
	s.stats.Duration = time.Since(start)
	s.m.replaySeconds.Observe(s.stats.Duration.Seconds())
	return s, nil
}

func (s *Store) replaySnapshot() error {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	remaining := fi.Size()
	for remaining > 0 {
		payload, err := readFrame(f, remaining, maxWALFrameLen)
		if err == io.EOF {
			break
		}
		if err != nil {
			// The snapshot is written atomically, so a bad frame is real
			// corruption, not a crash artifact — refuse to guess.
			return fmt.Errorf("jobstore: corrupt snapshot %s: %w", snapshotName, err)
		}
		remaining -= frameHeaderLen + int64(len(payload))
		e, err := decodeEntry(payload)
		if err != nil {
			return fmt.Errorf("jobstore: corrupt snapshot entry: %w", err)
		}
		s.apply(e)
	}
	return nil
}

// replayWAL applies journal entries up to the first torn record, then
// truncates the file back to the last good boundary so subsequent appends
// extend a clean journal.
func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := fi.Size()
	var good int64
	for good < size {
		payload, err := readFrame(f, size-good, maxWALFrameLen)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.stats.Torn = true
			break
		}
		e, derr := decodeEntry(payload)
		if derr != nil {
			// Framed but undecodable: same treatment as torn — drop the
			// tail rather than the store.
			s.stats.Torn = true
			break
		}
		good += frameHeaderLen + int64(len(payload))
		s.apply(e)
	}
	f.Close()
	if s.stats.Torn {
		if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("jobstore: repairing torn WAL: %w", err)
		}
	}
	s.walSize = good
	return nil
}

func (s *Store) apply(e *entry) {
	s.stats.Entries++
	switch e.Kind {
	case entryMeta:
		if e.MaxID > s.maxID {
			s.maxID = e.MaxID
		}
	case entryDrain:
		if e.At.After(s.stats.LastDrain) {
			s.stats.LastDrain = e.At
		}
	case entryRecord:
		rec := e.Rec
		if existing, ok := s.byID[rec.ID]; ok {
			*existing = rec
		} else {
			cp := rec
			s.byID[rec.ID] = &cp
			s.order = append(s.order, rec.ID)
		}
		if rec.ID > s.maxID {
			s.maxID = rec.ID
		}
	case entryProxy:
		rec := e.Proxy
		key := proxyKey(rec.Name, rec.Epoch)
		if rec.Released {
			// Tombstone: the handle was reclaimed. Drop it; the next snapshot
			// simply omits it.
			if _, ok := s.byProxy[key]; ok {
				delete(s.byProxy, key)
				for i, k := range s.prxOrder {
					if k == key {
						s.prxOrder = append(s.prxOrder[:i], s.prxOrder[i+1:]...)
						break
					}
				}
			}
			return
		}
		if existing, ok := s.byProxy[key]; ok {
			*existing = rec
		} else {
			cp := rec
			s.byProxy[key] = &cp
			s.prxOrder = append(s.prxOrder, key)
		}
	}
}

func proxyKey(name string, epoch uint64) string {
	return fmt.Sprintf("%s@%d", name, epoch)
}

// Append journals one job record: framed, written, fsynced — only then is
// the in-memory state updated and the call acknowledged. Every CompactEvery
// appends the journal is folded into the snapshot.
func (s *Store) Append(rec Record) error {
	return s.append(&entry{Kind: entryRecord, Rec: rec})
}

// MarkDrain journals the start of a graceful drain, so a restart can tell
// an interrupted drain from a crash (both resume the interrupted jobs).
func (s *Store) MarkDrain() error {
	return s.append(&entry{Kind: entryDrain, At: time.Now()})
}

// AppendProxy journals one proxy-handle record (same fsync-before-ack
// contract as Append). A record with Released set is a tombstone that
// removes the handle from replayed state.
func (s *Store) AppendProxy(rec ProxyRecord) error {
	return s.append(&entry{Kind: entryProxy, Proxy: rec})
}

// ProxyRecords returns the live (non-released) proxy handles in
// registration order — what the proxy registry rebuilds its refcounts from
// after a restart.
func (s *Store) ProxyRecords() []ProxyRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ProxyRecord, 0, len(s.prxOrder))
	for _, key := range s.prxOrder {
		out = append(out, *s.byProxy[key])
	}
	return out
}

func (s *Store) append(e *entry) error {
	payload, err := encodeEntry(e)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.poisoned {
		return ErrPoisoned
	}
	if err := writeFrame(s.wal, payload, maxWALFrameLen); err != nil {
		// The frame may be partially on disk (e.g. ENOSPC after the header).
		// Roll the file back to the last intact boundary; if that fails the
		// garbage would tear every later append off replay, so poison the
		// store rather than keep acknowledging doomed entries.
		if terr := s.wal.Truncate(s.walSize); terr != nil {
			s.poisoned = true
			return fmt.Errorf("jobstore: appending journal entry: %w (rollback failed: %v; store poisoned)", err, terr)
		}
		return fmt.Errorf("jobstore: appending journal entry: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		// After a failed fsync the kernel may have dropped the dirty pages;
		// what is durable is unknowable, so no further append may be
		// acknowledged on top of it.
		s.poisoned = true
		return fmt.Errorf("jobstore: syncing journal: %w; store poisoned", err)
	}
	s.walSize += frameHeaderLen + int64(len(payload))
	s.apply(e)
	s.m.appends.Inc()
	s.appends++
	if s.appends >= s.opts.CompactEvery {
		if err := s.compactLocked(); err != nil {
			// The journal itself is intact; a failed compaction only means
			// replay stays longer. Surface it without failing the append.
			s.m.compactErrors.Inc()
		}
	}
	return nil
}

// Records returns the replayed/current records in submission order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.byID[id])
	}
	return out
}

// MaxID is the ID high-water mark ever journaled — the floor for new IDs,
// immune to history pruning.
func (s *Store) MaxID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxID
}

// ReplayInfo reports what Open reconstructed.
func (s *Store) ReplayInfo() ReplayStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Compact folds the journal into the snapshot immediately (it also runs
// automatically every CompactEvery appends).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked writes the retained records to a fresh snapshot (atomic via
// tmp + rename + directory sync), then truncates the WAL. A crash between
// the rename and the truncate replays WAL entries that are already in the
// snapshot — harmless, because entries carry full records.
func (s *Store) compactLocked() error {
	s.pruneLocked()
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	write := func(e *entry) error {
		payload, err := encodeEntry(e)
		if err != nil {
			return err
		}
		return writeFrame(f, payload, maxWALFrameLen)
	}
	err = write(&entry{Kind: entryMeta, MaxID: s.maxID})
	for _, id := range s.order {
		if err != nil {
			break
		}
		err = write(&entry{Kind: entryRecord, Rec: *s.byID[id]})
	}
	// Live proxy handles compact alongside the job records; released
	// handles were dropped at their tombstone and are simply absent.
	for _, key := range s.prxOrder {
		if err != nil {
			break
		}
		err = write(&entry{Kind: entryProxy, Proxy: *s.byProxy[key]})
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.dir)
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	s.walSize = 0
	if err := s.wal.Sync(); err != nil {
		return err
	}
	// The snapshot now holds exactly the acknowledged state and the WAL is
	// verifiably empty, so a store poisoned by an unrepairable append is
	// whole again.
	s.poisoned = false
	s.appends = 0
	s.m.compactions.Inc()
	return nil
}

// pruneLocked applies the history retention policy: the oldest terminal
// records beyond RetainHistory are dropped and their result files removed.
func (s *Store) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.byID[id].Terminal() {
			terminal++
		}
	}
	if terminal <= s.opts.RetainHistory {
		return
	}
	excess := terminal - s.opts.RetainHistory
	kept := s.order[:0]
	for _, id := range s.order {
		rec := s.byID[id]
		if excess > 0 && rec.Terminal() {
			excess--
			if rec.ResultFile != "" {
				os.Remove(filepath.Join(s.dir, rec.ResultFile))
			}
			delete(s.byID, id)
			s.m.pruned.Inc()
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// SaveResult persists a done job's result payload as a framed file under
// results/, atomically, and returns its store-relative path and SHA-256
// hex. Callers journal the returned references with the done transition,
// so a journaled "done" always points at a durable result. Results are one
// frame per file and may exceed the journal's per-entry cap (bounded only
// by the uint32 length prefix).
func (s *Store) SaveResult(id int64, data []byte) (file, shaHex string, err error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		// After Abort (the kill -9 simulation) or Close, durable state must
		// stay exactly what the last acknowledged Append left — a racing
		// worker must not keep adding result files.
		return "", "", ErrClosed
	}
	rel := filepath.Join(resultsDir, fmt.Sprintf("job%d.res", id))
	abs := filepath.Join(s.dir, rel)
	tmp := abs + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", "", err
	}
	err = writeFrame(f, data, maxResultLen)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", "", err
	}
	if err := os.Rename(tmp, abs); err != nil {
		os.Remove(tmp)
		return "", "", err
	}
	syncDir(filepath.Join(s.dir, resultsDir))
	sum := sha256.Sum256(data)
	return rel, fmt.Sprintf("%x", sum), nil
}

// LoadResult reads a record's durable result payload, verifying the frame
// CRC (and, when the record carries one, the SHA-256).
func (s *Store) LoadResult(rec Record) ([]byte, error) {
	if rec.ResultFile == "" {
		return nil, fmt.Errorf("jobstore: job %d has no durable result", rec.ID)
	}
	path := filepath.Join(s.dir, rec.ResultFile)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, err := readFrame(f, fi.Size(), maxResultLen)
	if err != nil {
		return nil, fmt.Errorf("jobstore: result %s corrupt: %w", rec.ResultFile, err)
	}
	if rec.ResultSHA != "" {
		if sum := sha256.Sum256(data); fmt.Sprintf("%x", sum) != rec.ResultSHA {
			return nil, fmt.Errorf("jobstore: result %s fails its journaled SHA-256", rec.ResultFile)
		}
	}
	return data, nil
}

// Close compacts and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.compactLocked()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.closed = true
	return err
}

// Abort simulates a crash for tests and the kill-and-recover experiment:
// the WAL handle closes without compaction or further syncs, and every
// subsequent Append fails with ErrClosed. Durable state is exactly what the
// last acknowledged Append left — the same contract as a kill -9.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.wal.Close()
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best-effort: some filesystems refuse directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
