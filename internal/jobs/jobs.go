// Package jobs turns DOoC's single-run engine into a multi-tenant solver
// service: a job manager with bounded per-tenant queues, weighted-priority
// scheduling with aging, admission control that rejects instead of
// blocking, per-job resource quotas enforced by the storage layer, and
// cancellation that propagates through the engine's task retirement and
// lease abandonment. The remote protocol and doocserve expose it over the
// wire; everything here is dependency-free.
package jobs

import (
	"errors"
	"time"

	"dooc/internal/obs"
)

// State is a job's lifecycle position:
//
//	queued → admitted → running → done | failed | cancelled
//
// Admitted is the instant between the scheduler picking a job and its
// worker goroutine starting; it exists so queue-wait is measured at the
// scheduling decision, not at goroutine wake-up.
type State int

const (
	StateQueued State = iota
	StateAdmitted
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateAdmitted:
		return "admitted"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return "invalid"
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// stateFromString is the inverse of String, for records replayed from the
// durable store. Unknown strings map to StateFailed — a record whose state
// cannot be parsed is not resumable.
func stateFromString(s string) State {
	switch s {
	case "queued":
		return StateQueued
	case "admitted":
		return StateAdmitted
	case "running":
		return StateRunning
	case "done":
		return StateDone
	case "cancelled":
		return StateCancelled
	}
	return StateFailed
}

// Typed admission and lookup errors. Submit never blocks: over-capacity
// submissions fail fast with one of these so clients can back off.
var (
	// ErrQueueFull rejects a submission when QueueDepth jobs are already
	// waiting.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrQuotaExceeded rejects a submission whose memory request does not
	// fit in the service's aggregate budget alongside admitted work.
	ErrQuotaExceeded = errors.New("jobs: aggregate memory quota exceeded")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("jobs: service draining")
	// ErrUnknownJob reports an ID the manager has never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrCancelled is the result error of a job cancelled before or during
	// execution.
	ErrCancelled = errors.New("jobs: job cancelled")
	// ErrNoProxy reports a result-proxy request for a job that registered no
	// handle (no proxy registry, or registration was rejected by quota).
	ErrNoProxy = errors.New("jobs: job has no proxy handle")
)

// Request carries a submission's scheduling and resource parameters.
type Request struct {
	Tenant   string
	Priority int // higher runs earlier; weighted per tenant
	// MemoryBytes is the job's aggregate cache-budget request, counted
	// against Config.MemoryBudget at admission and sliced per node into a
	// storage quota by the solver service. 0 requests no reservation.
	MemoryBytes int64
	// ScratchBytes is the job's aggregate scratch ceiling (hard, enforced
	// by the storage layer on flush). 0 means unlimited.
	ScratchBytes int64
	// Key is an optional client idempotency key. A submit whose key matches
	// any job the manager knows (including terminal and recovered jobs)
	// returns that job instead of enqueuing a duplicate — exactly-once
	// submission across client retries, reconnects, and server restarts.
	Key string
	// Payload is an opaque job specification journaled with the record;
	// recovery hands it back to the service to rebuild the job's work
	// function. Unused without a durable store.
	Payload []byte
	// Trace is the submitter's span context. When valid, the job joins the
	// caller's trace (its lifecycle spans parent under the caller's span);
	// when zero, the manager mints a fresh TraceID at admission.
	Trace obs.SpanContext
}

// Work executes one job. It receives the manager-issued job ID (used to
// namespace the job's arrays and quotas) and a channel closed on
// cancellation; it returns the result payload.
type Work func(id int64, cancel <-chan struct{}) ([]byte, error)

// JobStatus is an exported snapshot of one job, JSON-encodable for the
// /jobs endpoint and gob-encodable for the remote protocol.
type JobStatus struct {
	ID           int64     `json:"id"`
	Tenant       string    `json:"tenant"`
	Priority     int       `json:"priority"`
	State        string    `json:"state"`
	SubmittedAt  time.Time `json:"submitted_at"`
	StartedAt    time.Time `json:"started_at,omitempty"`
	FinishedAt   time.Time `json:"finished_at,omitempty"`
	QueueWait    float64   `json:"queue_wait_seconds"`
	Err          string    `json:"error,omitempty"`
	MemoryBytes  int64     `json:"memory_bytes,omitempty"`
	ScratchBytes int64     `json:"scratch_bytes,omitempty"`
	// Key echoes the submission's idempotency key, if any.
	Key string `json:"key,omitempty"`
	// Resumed counts how many times recovery re-admitted the job after a
	// crash or interrupted drain.
	Resumed int `json:"resumed,omitempty"`
	// ResultSHA is the SHA-256 hex of the durable result payload (done jobs
	// under a durable store only).
	ResultSHA string `json:"result_sha256,omitempty"`
	// TraceID is the job's causal trace identity (hex). Clients that
	// submitted with a trace context see their own TraceID echoed here.
	TraceID string `json:"trace_id,omitempty"`
	// Proxy is the job's registered result handle ("name@epoch[@scope]"),
	// present once a done job's iterate is resolvable by reference.
	Proxy string `json:"proxy,omitempty"`
}
