package jobs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"dooc/internal/jobstore"
	"dooc/internal/obs"
)

// TestTraceJoinsClientContext: a job submitted with a client span context
// reports the client's trace ID in its status, and the manager's spans plus
// the client's own trace compose into one causal tree.
func TestTraceJoinsClientContext(t *testing.T) {
	server := obs.NewTracer()
	m := NewManager(Config{MaxRunning: 1, Trace: server})

	client := obs.NewTracer()
	client.SetProcessName(obs.PidClient, "testclient")
	root := obs.NewSpanContext()
	clientStart := time.Now()

	j, err := m.Submit(Request{Tenant: "a", Trace: root}, func(int64, <-chan struct{}) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(j.ID); err != nil {
		t.Fatal(err)
	}
	st, err := m.Status(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != root.Trace.String() {
		t.Fatalf("status trace ID %q, want the client's %q", st.TraceID, root.Trace.String())
	}
	client.SpanCtx("client root", "client", obs.PidClient, 0, clientStart, time.Now(),
		root, obs.SpanID{}, nil)

	var clientBlob, serverBlob bytes.Buffer
	if err := client.WriteJSON(&clientBlob); err != nil {
		t.Fatal(err)
	}
	if err := server.WriteJSON(&serverBlob); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateCausal(clientBlob.Bytes(), serverBlob.Bytes()); err != nil {
		t.Fatalf("client+server traces do not form one causal tree: %v", err)
	}
	// The server blob alone must still be a valid Chrome trace (its root
	// points at the client span, so only the combined view is causal).
	if err := obs.ValidateTrace(serverBlob.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestTraceMintedWhenClientUntraced: an untraced submission still gets a
// trace identity so /jobs/<id>/trace works for every job.
func TestTraceMintedWhenClientUntraced(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1, Trace: obs.NewTracer()})
	j, err := m.Submit(Request{Tenant: "a"}, func(int64, <-chan struct{}) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(j.ID); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status(j.ID)
	if st.TraceID == "" {
		t.Fatal("untraced submission got no minted trace ID")
	}
	sc, err := m.TraceContext(j.ID)
	if err != nil || !sc.Valid() {
		t.Fatalf("TraceContext = %+v, %v", sc, err)
	}
}

// TestFlightRecorderLifecycle: the ring sees every lifecycle transition in
// order, with causal identity on each event.
func TestFlightRecorderLifecycle(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1})
	j, err := m.Submit(Request{Tenant: "a"}, func(int64, <-chan struct{}) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(j.ID); err != nil {
		t.Fatal(err)
	}
	events, dropped, err := m.FlightEvents(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	var states []string
	for _, ev := range events {
		if ev.Kind == "transition" {
			states = append(states, ev.Name)
		}
		if ev.Trace == "" {
			t.Fatalf("event %q has no trace ID", ev.Name)
		}
	}
	want := []string{"queued", "admitted", "running", "done"}
	if len(states) != len(want) {
		t.Fatalf("transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", states, want)
		}
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("flight seq not monotonic: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

// TestFlightEventsSurviveCrash: a journal frozen mid-lifecycle (the SIGKILL
// case) still yields the pre-crash flight events after recovery — the
// "running" journal entry carries the ring, so /jobs/<id>/events and
// /jobs/<id>/trace answer for jobs that never reached a terminal state.
func TestFlightEventsSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	store1, err := jobstore.Open(dir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(Config{MaxRunning: 1, Store: store1})
	release := make(chan struct{})
	started := make(chan int64, 1)
	j, err := m1.Submit(Request{Tenant: "a", Key: "crash"}, gatedWork(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the "running" transition is journaled before work starts
	store1.Abort()

	store2, err := jobstore.Open(dir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	m2 := NewManager(Config{MaxRunning: 1, Store: store2})
	if _, err := m2.Recover(func(rec jobstore.Record) (Work, error) {
		return gatedWork(nil, release), nil
	}); err != nil {
		t.Fatal(err)
	}
	events, _, err := m2.FlightEvents(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev.Kind+":"+ev.Name] = true
	}
	for _, want := range []string{"transition:queued", "transition:running", "note:recovered"} {
		if !seen[want] {
			t.Fatalf("recovered flight events missing %q; have %v", want, seen)
		}
	}
	// Preload keeps the sequence ahead of the journaled events, so post-
	// recovery events never collide with pre-crash ones.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("flight seq regressed across recovery: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
	// The journaled ring renders as a standalone Chrome trace.
	if _, err := obs.FlightTrace(events, obs.PidJobs, "job1"); err != nil {
		t.Fatal(err)
	}
	close(release) // let the recovered job (and m1's abandoned one) finish
	m2.Drain()
}

// TestSLOTrackerBurn: breach accounting against the objectives, per tenant,
// including jobs cancelled before they ran.
func TestSLOTrackerBurn(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewSLOTracker(SLOConfig{
		QueueObjective: 10 * time.Millisecond,
		RunObjective:   20 * time.Millisecond,
		Obs:            reg,
	})
	tr.Observe("a", 5*time.Millisecond, 10*time.Millisecond, 15*time.Millisecond, true)
	tr.Observe("a", 20*time.Millisecond, 30*time.Millisecond, 50*time.Millisecond, true)
	tr.Observe("b", 15*time.Millisecond, 0, 15*time.Millisecond, false) // cancelled while queued

	sum := tr.Summary()
	if len(sum) != 2 || sum[0].Tenant != "a" || sum[1].Tenant != "b" {
		t.Fatalf("summary = %+v", sum)
	}
	a, b := sum[0], sum[1]
	if a.Jobs != 2 || a.QueueBreaches != 1 || a.RunBreaches != 1 {
		t.Fatalf("tenant a = %+v", a)
	}
	if a.QueueBurn != 0.5 || a.RunBurn != 0.5 {
		t.Fatalf("tenant a burn = %v/%v, want 0.5/0.5", a.QueueBurn, a.RunBurn)
	}
	if b.Jobs != 1 || b.QueueBreaches != 1 || b.RunBreaches != 0 {
		t.Fatalf("tenant b = %+v", b)
	}
	if got := reg.Sum("dooc_slo_jobs_total"); got != 3 {
		t.Fatalf("dooc_slo_jobs_total = %d, want 3", got)
	}
	if got := reg.Sum("dooc_slo_queue_breaches_total"); got != 2 {
		t.Fatalf("dooc_slo_queue_breaches_total = %d, want 2", got)
	}
	if got := reg.Sum("dooc_slo_run_breaches_total"); got != 1 {
		t.Fatalf("dooc_slo_run_breaches_total = %d, want 1", got)
	}
	// Histograms observed every terminal job; the run histogram skips the
	// never-ran cancellation.
	if got := reg.Sum("dooc_slo_e2e_seconds"); got != 3 {
		t.Fatalf("e2e observations = %d, want 3", got)
	}
	if got := reg.Sum("dooc_slo_run_seconds"); got != 2 {
		t.Fatalf("run observations = %d, want 2", got)
	}
}

// TestManagerObservesSLO: terminal jobs feed the tracker through the
// manager, including queued cancellations.
func TestManagerObservesSLO(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	m := NewManager(Config{MaxRunning: 1, SLO: tr})
	j, err := m.Submit(Request{Tenant: "a"}, func(int64, <-chan struct{}) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(j.ID); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if len(sum) != 1 || sum[0].Tenant != "a" || sum[0].Jobs != 1 {
		t.Fatalf("summary after done job = %+v", sum)
	}
}

// TestServeJobItemEndpoints drives the /jobs/<id>[...] routes end to end
// over a real (tiny) solver service.
func TestServeJobItemEndpoints(t *testing.T) {
	base, root, _ := durableFixture(t)
	sys := durableSystem(t, root)
	defer sys.Close()
	svc := NewSolverService(sys, base, Config{MaxRunning: 1, QueueDepth: 4, Trace: obs.NewTracer()})
	st, err := svc.Submit(SolveRequest{Tenant: "a", Iters: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Manager.Result(st.ID); err != nil {
		t.Fatal(err)
	}

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		svc.ServeJobItem(w, httptest.NewRequest("GET", path, nil))
		return w
	}

	if w := get("/jobs/1"); w.Code != 200 {
		t.Fatalf("GET /jobs/1 = %d", w.Code)
	} else {
		var got JobStatus
		if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil || got.ID != 1 {
			t.Fatalf("status body %q: %v", w.Body.Bytes(), err)
		}
		if got.TraceID == "" {
			t.Fatal("status body has no trace_id")
		}
	}
	if w := get("/jobs/1/events"); w.Code != 200 {
		t.Fatalf("GET /jobs/1/events = %d", w.Code)
	} else {
		var got struct {
			Job     int64             `json:"job"`
			TraceID string            `json:"trace_id"`
			Events  []obs.FlightEvent `json:"events"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		if got.Job != 1 || got.TraceID == "" || len(got.Events) == 0 {
			t.Fatalf("events body = %+v", got)
		}
	}
	if w := get("/jobs/1/trace"); w.Code != 200 {
		t.Fatalf("GET /jobs/1/trace = %d", w.Code)
	} else if err := obs.ValidateTrace(w.Body.Bytes()); err != nil {
		t.Fatalf("/jobs/1/trace is not a valid Chrome trace: %v", err)
	}
	for _, path := range []string{"/jobs/99", "/jobs/notanid", "/jobs/1/bogus"} {
		if w := get(path); w.Code != 404 {
			t.Fatalf("GET %s = %d, want 404", path, w.Code)
		}
	}
	svc.Manager.Drain()
}
