package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"

	"dooc/internal/core"
	"dooc/internal/jobstore"
	"dooc/internal/obs"
)

// SolveRequest is one iterated-SpMV job over the service's staged matrix.
type SolveRequest struct {
	Tenant   string
	Priority int
	Iters    int
	// Seed generates the starting vector (doocrun's convention: NormFloat64
	// from rand.NewSource(Seed)), so equal seeds give bit-identical runs.
	Seed int64
	// MemoryBytes / ScratchBytes are the job's aggregate quotas, sliced
	// evenly across nodes into storage quota groups. 0 means unlimited.
	MemoryBytes  int64
	ScratchBytes int64
	// Key is the client's idempotency key; a duplicate submit (retry,
	// reconnect, or post-restart) returns the existing job. "" disables
	// deduplication for this submission.
	Key string
	// Trace is the submitting client's span context; when valid the job
	// joins the client's trace end-to-end.
	Trace obs.SpanContext
}

// solvePayload is the journaled job specification — everything recovery
// needs to rebuild the work function (scheduling and quota parameters live
// in the record itself).
type solvePayload struct {
	Iters int   `json:"iters"`
	Seed  int64 `json:"seed"`
}

// SolverService runs SolveRequests as managed jobs over one shared
// core.System. Each job's transient arrays are namespaced "job<id>:" —
// that tag doubles as the storage quota-group prefix, so cache pressure
// and scratch ceilings are attributed to the job that caused them. The
// staged matrix arrays are untagged and shared by every job.
//
// With a durable store (Config.Store) and a scratch-backed system, jobs
// run through the checkpointed resume path: every iterate is flushed to
// scratch, so a job interrupted by a crash restarts from its newest valid
// checkpoint — recomputing only the iterations after it — instead of from
// x⁰.
type SolverService struct {
	Manager *Manager
	sys     *core.System
	base    core.SpMVConfig
	store   *jobstore.Store
	// itersSaved counts iterations recovery did NOT recompute because a
	// checkpoint supplied them.
	itersSaved *obs.Counter
}

// NewSolverService wraps a system whose matrix is already staged or
// loaded. base carries Dim/K/Nodes; per-job Iters and Tag are filled per
// submission. With cfg.Store set the service is durable: it installs its
// artifact-retirement hook and journals every lifecycle transition.
func NewSolverService(sys *core.System, base core.SpMVConfig, cfg Config) *SolverService {
	s := &SolverService{
		sys:        sys,
		base:       base,
		store:      cfg.Store,
		itersSaved: cfg.Obs.Counter("dooc_jobs_resume_iters_saved_total", "iterations recovered from checkpoints instead of recomputed"),
	}
	if cfg.Store != nil {
		cfg.Retire = s.retire
	}
	s.Manager = NewManager(cfg)
	return s
}

// Base returns the service's matrix geometry.
func (s *SolverService) Base() core.SpMVConfig { return s.base }

// Submit admits a solve job; admission errors are typed (ErrQueueFull,
// ErrQuotaExceeded, ErrDraining). A keyed request matching a known job
// returns that job's status instead of enqueuing a duplicate.
func (s *SolverService) Submit(req SolveRequest) (JobStatus, error) {
	if req.Iters <= 0 {
		return JobStatus{}, fmt.Errorf("jobs: invalid iters %d", req.Iters)
	}
	payload, err := json.Marshal(solvePayload{Iters: req.Iters, Seed: req.Seed})
	if err != nil {
		return JobStatus{}, err
	}
	j, err := s.Manager.Submit(Request{
		Tenant:       req.Tenant,
		Priority:     req.Priority,
		MemoryBytes:  req.MemoryBytes,
		ScratchBytes: req.ScratchBytes,
		Key:          req.Key,
		Payload:      payload,
		Trace:        req.Trace,
	}, s.work(req.Iters, req.Seed, req.MemoryBytes, req.ScratchBytes))
	if err != nil {
		return JobStatus{}, err
	}
	return s.Manager.Status(j.ID)
}

// Recover replays the durable store into the manager, rebuilding each
// interrupted job's work function from its journaled payload. Call once on
// startup, before serving traffic. No-op without a store.
func (s *SolverService) Recover() (RecoveryStats, error) {
	return s.Manager.Recover(func(rec jobstore.Record) (Work, error) {
		var p solvePayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return nil, fmt.Errorf("jobs: job %d payload: %w", rec.ID, err)
		}
		if p.Iters <= 0 {
			return nil, fmt.Errorf("jobs: job %d payload has no iterations", rec.ID)
		}
		return s.work(p.Iters, p.Seed, rec.MemoryBytes, rec.ScratchBytes), nil
	})
}

// durable reports whether jobs run through the checkpointed resume path:
// that needs both the journal (to know a job must resume) and a scratch
// root (to hold its checkpoints).
func (s *SolverService) durable() bool {
	return s.store != nil && s.sys.ScratchRoot() != ""
}

// work builds the job body: install per-node quota slices, run the
// (checkpointed, when durable) cancellable solve, encode the final vector,
// then drop the job's transient arrays and quota groups whatever the
// outcome. The parameters are exactly what solvePayload journals, so
// recovery rebuilds an identical closure.
func (s *SolverService) work(iters int, seed int64, memoryBytes, scratchBytes int64) Work {
	return func(id int64, cancel <-chan struct{}) ([]byte, error) {
		cfg := s.base
		cfg.Iters = iters
		cfg.Tag = fmt.Sprintf("job%d", id)
		// The engine parents its per-iteration and per-task spans under the
		// job's running-phase span, linking client → lifecycle → compute
		// into one causal tree.
		cfg.Trace = s.Manager.RunSpanContext(id)
		prefix := cfg.Tag + ":"
		nodes := s.sys.Nodes()
		if memoryBytes > 0 || scratchBytes > 0 {
			for i := 0; i < nodes; i++ {
				s.sys.Store(i).SetQuota(prefix, perNode(memoryBytes, nodes), perNode(scratchBytes, nodes))
			}
			defer func() {
				for i := 0; i < nodes; i++ {
					s.sys.Store(i).ClearQuota(prefix)
				}
			}()
		}
		if !s.durable() {
			res, err := core.RunIteratedSpMVCancel(s.sys, cfg, StartVector(s.base.Dim, seed), cancel)
			if err != nil {
				return nil, err
			}
			// The result is copied out; the job's generations are dead weight
			// in the shared cache.
			core.DeleteSpMVArrays(s.sys, cfg)
			return EncodeFloat64s(res.X), nil
		}
		// Durable path. A previous attempt that died mid-run left its
		// partially-written segment arrays on scratch, re-registered by the
		// storage startup scan — purge them or the fresh segment run
		// collides on Create. The checkpoint files (prefix "job<id>:") stay.
		core.PurgeTaggedArtifacts(s.sys, cfg.Tag+"@")
		res, start, err := core.ResumeIteratedSpMVCancel(s.sys, cfg, StartVector(s.base.Dim, seed), cancel)
		if err != nil {
			return nil, err
		}
		if start > 0 {
			s.itersSaved.Add(int64(start))
		}
		// Drop the segment run's dead generations (the resume path namespaced
		// them "job<id>@<start>:").
		if start < iters {
			rest := cfg
			rest.Iters = iters - start
			rest.Tag = fmt.Sprintf("%s@%d", cfg.Tag, start)
			core.DeleteSpMVArrays(s.sys, rest)
		}
		return EncodeFloat64s(res.X), nil
	}
}

// retire is the manager's terminal hook under a durable store: a job that
// is done or cancelled no longer needs its checkpoints or stray segment
// arrays, so purge both namespaces. A FAILED job keeps everything — the
// dominant failure mode is process death or drain-interrupt, and its
// checkpoints are exactly what the post-restart resume needs.
func (s *SolverService) retire(id int64, final State) {
	if final != StateDone && final != StateCancelled {
		return
	}
	tag := fmt.Sprintf("job%d", id)
	core.PurgeTaggedArtifacts(s.sys, tag+":")
	core.PurgeTaggedArtifacts(s.sys, tag+"@")
}

// perNode slices an aggregate budget evenly, rounding up so the slices
// cover the whole.
func perNode(total int64, nodes int) int64 {
	if total <= 0 {
		return 0
	}
	return (total + int64(nodes) - 1) / int64(nodes)
}

// StartVector is the deterministic starting vector both doocrun and the
// service derive from a seed.
func StartVector(dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// EncodeFloat64s is the little-endian payload encoding of a result vector
// (the inverse of storage.DecodeFloat64s).
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// ServeJobs is the /jobs HTTP handler: a JSON array of every job's
// status, ordered by ID.
func (s *SolverService) ServeJobs(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Manager.List())
}

// ServeJobItem handles the per-job routes under /jobs/:
//
//	/jobs/<id>         one job's status (JSON)
//	/jobs/<id>/events  the job's flight-recorder events (JSON)
//	/jobs/<id>/trace   Chrome-trace JSON scoped to the job, rebuilt from
//	                   the flight recorder — available even for jobs that
//	                   died in a crash, because the ring is journaled
//
// Mount it on the "/jobs/" prefix; more specific patterns (/jobs,
// /jobs/history) win on Go's ServeMux, so they are unaffected.
func (s *SolverService) ServeJobItem(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	idStr, sub, _ := strings.Cut(rest, "/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		http.NotFound(w, r)
		return
	}
	switch sub {
	case "":
		st, err := s.Manager.Status(id)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	case "events":
		events, dropped, err := s.Manager.FlightEvents(id)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		sc, _ := s.Manager.TraceContext(id)
		resp := struct {
			Job     int64             `json:"job"`
			TraceID string            `json:"trace_id,omitempty"`
			Dropped uint64            `json:"dropped"`
			Events  []obs.FlightEvent `json:"events"`
		}{Job: id, Dropped: dropped, Events: events}
		if sc.Valid() {
			resp.TraceID = sc.Trace.String()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	case "trace":
		events, _, err := s.Manager.FlightEvents(id)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		data, err := obs.FlightTrace(events, obs.PidJobs, fmt.Sprintf("job%d", id))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	default:
		http.NotFound(w, r)
	}
}

// ServeHistory is the /jobs/history HTTP handler: a paginated JSON window
// of terminal jobs (?offset=N&limit=N), including jobs finished before a
// restart.
func (s *SolverService) ServeHistory(w http.ResponseWriter, r *http.Request) {
	offset, _ := strconv.Atoi(r.URL.Query().Get("offset"))
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	jobs, total := s.Manager.History(offset, limit)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Total  int         `json:"total"`
		Offset int         `json:"offset"`
		Jobs   []JobStatus `json:"jobs"`
	}{Total: total, Offset: offset, Jobs: jobs})
}
