package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"

	"dooc/internal/core"
)

// SolveRequest is one iterated-SpMV job over the service's staged matrix.
type SolveRequest struct {
	Tenant   string
	Priority int
	Iters    int
	// Seed generates the starting vector (doocrun's convention: NormFloat64
	// from rand.NewSource(Seed)), so equal seeds give bit-identical runs.
	Seed int64
	// MemoryBytes / ScratchBytes are the job's aggregate quotas, sliced
	// evenly across nodes into storage quota groups. 0 means unlimited.
	MemoryBytes  int64
	ScratchBytes int64
}

// SolverService runs SolveRequests as managed jobs over one shared
// core.System. Each job's transient arrays are namespaced "job<id>:" —
// that tag doubles as the storage quota-group prefix, so cache pressure
// and scratch ceilings are attributed to the job that caused them. The
// staged matrix arrays are untagged and shared by every job.
type SolverService struct {
	Manager *Manager
	sys     *core.System
	base    core.SpMVConfig
}

// NewSolverService wraps a system whose matrix is already staged or
// loaded. base carries Dim/K/Nodes; per-job Iters and Tag are filled per
// submission.
func NewSolverService(sys *core.System, base core.SpMVConfig, cfg Config) *SolverService {
	return &SolverService{Manager: NewManager(cfg), sys: sys, base: base}
}

// Base returns the service's matrix geometry.
func (s *SolverService) Base() core.SpMVConfig { return s.base }

// Submit admits a solve job; admission errors are typed (ErrQueueFull,
// ErrQuotaExceeded, ErrDraining).
func (s *SolverService) Submit(req SolveRequest) (JobStatus, error) {
	if req.Iters <= 0 {
		return JobStatus{}, fmt.Errorf("jobs: invalid iters %d", req.Iters)
	}
	j, err := s.Manager.Submit(Request{
		Tenant:       req.Tenant,
		Priority:     req.Priority,
		MemoryBytes:  req.MemoryBytes,
		ScratchBytes: req.ScratchBytes,
	}, s.work(req))
	if err != nil {
		return JobStatus{}, err
	}
	return s.Manager.Status(j.ID)
}

// work builds the job body: install per-node quota slices, run the
// cancellable solve, encode the final vector, then drop the job's
// transient arrays and quota groups whatever the outcome.
func (s *SolverService) work(req SolveRequest) Work {
	return func(id int64, cancel <-chan struct{}) ([]byte, error) {
		cfg := s.base
		cfg.Iters = req.Iters
		cfg.Tag = fmt.Sprintf("job%d", id)
		prefix := cfg.Tag + ":"
		nodes := s.sys.Nodes()
		if req.MemoryBytes > 0 || req.ScratchBytes > 0 {
			for i := 0; i < nodes; i++ {
				s.sys.Store(i).SetQuota(prefix, perNode(req.MemoryBytes, nodes), perNode(req.ScratchBytes, nodes))
			}
			defer func() {
				for i := 0; i < nodes; i++ {
					s.sys.Store(i).ClearQuota(prefix)
				}
			}()
		}
		res, err := core.RunIteratedSpMVCancel(s.sys, cfg, StartVector(s.base.Dim, req.Seed), cancel)
		if err != nil {
			return nil, err
		}
		// The result is copied out; the job's generations are dead weight
		// in the shared cache.
		core.DeleteSpMVArrays(s.sys, cfg)
		return EncodeFloat64s(res.X), nil
	}
}

// perNode slices an aggregate budget evenly, rounding up so the slices
// cover the whole.
func perNode(total int64, nodes int) int64 {
	if total <= 0 {
		return 0
	}
	return (total + int64(nodes) - 1) / int64(nodes)
}

// StartVector is the deterministic starting vector both doocrun and the
// service derive from a seed.
func StartVector(dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// EncodeFloat64s is the little-endian payload encoding of a result vector
// (the inverse of storage.DecodeFloat64s).
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// ServeJobs is the /jobs HTTP handler: a JSON array of every job's
// status, ordered by ID.
func (s *SolverService) ServeJobs(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Manager.List())
}
