package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dooc/internal/core"
	"dooc/internal/jobstore"
	"dooc/internal/obs"
	"dooc/internal/proxy"
	"dooc/internal/storage"
)

// SolveRequest is one iterated-SpMV job over the service's staged matrix.
type SolveRequest struct {
	Tenant   string
	Priority int
	Iters    int
	// Seed generates the starting vector (doocrun's convention: NormFloat64
	// from rand.NewSource(Seed)), so equal seeds give bit-identical runs.
	Seed int64
	// MemoryBytes / ScratchBytes are the job's aggregate quotas, sliced
	// evenly across nodes into storage quota groups. 0 means unlimited.
	MemoryBytes  int64
	ScratchBytes int64
	// Key is the client's idempotency key; a duplicate submit (retry,
	// reconnect, or post-restart) returns the existing job. "" disables
	// deduplication for this submission.
	Key string
	// Trace is the submitting client's span context; when valid the job
	// joins the client's trace end-to-end.
	Trace obs.SpanContext
	// Input, when valid, names a proxy handle whose payload becomes the
	// job's starting vector instead of the seed-derived one — job-to-job
	// dataflow chaining. The server materializes it from local state or the
	// cluster tier; the bytes never cross the client link.
	Input proxy.Ref
}

// solvePayload is the journaled job specification — everything recovery
// needs to rebuild the work function (scheduling and quota parameters live
// in the record itself). Input is the chained input handle in its
// "name@epoch[@scope]" form, so a recovered consumer job re-materializes
// the same proxy.
type solvePayload struct {
	Iters int    `json:"iters"`
	Seed  int64  `json:"seed"`
	Input string `json:"input,omitempty"`
}

// SolverService runs SolveRequests as managed jobs over one shared
// core.System. Each job's transient arrays are namespaced "job<id>:" —
// that tag doubles as the storage quota-group prefix, so cache pressure
// and scratch ceilings are attributed to the job that caused them. The
// staged matrix arrays are untagged and shared by every job.
//
// With a durable store (Config.Store) and a scratch-backed system, jobs
// run through the checkpointed resume path: every iterate is flushed to
// scratch, so a job interrupted by a crash restarts from its newest valid
// checkpoint — recomputing only the iterations after it — instead of from
// x⁰.
type SolverService struct {
	Manager *Manager
	sys     *core.System
	base    core.SpMVConfig
	store   *jobstore.Store
	// reg is the pass-by-reference result plane (nil disables): done jobs
	// register their iterate as a refcounted handle, and teardown routes
	// through the registry so it can never race a concurrent resolve.
	reg *proxy.Registry
	// fetch materializes a foreign-scope handle from its origin peer over
	// the cluster tier (nil = local resolution only).
	fetch func(scope, name string, epoch uint64) ([]byte, error)
	// itersSaved counts iterations recovery did NOT recompute because a
	// checkpoint supplied them.
	itersSaved *obs.Counter

	// inputs tracks each live consumer job's input handle, so retirement
	// releases the consumed-by-job reference exactly once.
	inputsMu sync.Mutex
	inputs   map[int64]proxy.Ref
}

// NewSolverService wraps a system whose matrix is already staged or
// loaded. base carries Dim/K/Nodes; per-job Iters and Tag are filled per
// submission. With cfg.Store set the service is durable: it installs its
// artifact-retirement hook and journals every lifecycle transition. With
// cfg.Proxy set it is a dataflow node: results register as proxy handles
// and jobs may consume other jobs' results by reference.
func NewSolverService(sys *core.System, base core.SpMVConfig, cfg Config) *SolverService {
	s := &SolverService{
		sys:        sys,
		base:       base,
		store:      cfg.Store,
		reg:        cfg.Proxy,
		fetch:      cfg.ProxyFetch,
		itersSaved: cfg.Obs.Counter("dooc_jobs_resume_iters_saved_total", "iterations recovered from checkpoints instead of recomputed"),
		inputs:     make(map[int64]proxy.Ref),
	}
	if cfg.Store != nil || cfg.Proxy != nil {
		cfg.Retire = s.retire
	}
	s.Manager = NewManager(cfg)
	return s
}

// ProxyEnabled reports whether this service registers and resolves proxy
// handles (the remote server advertises the capability from it).
func (s *SolverService) ProxyEnabled() bool { return s.reg != nil }

// Proxies exposes the registry (nil when the proxy plane is disabled).
func (s *SolverService) Proxies() *proxy.Registry { return s.reg }

// scope is the service's origin scope ("" without a registry).
func (s *SolverService) scope() string {
	if s.reg == nil {
		return ""
	}
	return s.reg.Scope()
}

// Base returns the service's matrix geometry.
func (s *SolverService) Base() core.SpMVConfig { return s.base }

// Submit admits a solve job; admission errors are typed (ErrQueueFull,
// ErrQuotaExceeded, ErrDraining). A keyed request matching a known job
// returns that job's status instead of enqueuing a duplicate.
func (s *SolverService) Submit(req SolveRequest) (JobStatus, error) {
	if req.Iters <= 0 {
		return JobStatus{}, fmt.Errorf("jobs: invalid iters %d", req.Iters)
	}
	p := solvePayload{Iters: req.Iters, Seed: req.Seed}
	if req.Input.Valid() {
		if s.reg == nil {
			return JobStatus{}, fmt.Errorf("%w: proxy inputs need a proxy registry", proxy.ErrUnknownProxy)
		}
		// A local handle is validated at admission so a dead ref fails the
		// submit, not the run. Foreign-scope refs resolve at run time over
		// the cluster tier.
		if req.Input.Scope == "" || req.Input.Scope == s.scope() {
			if _, _, err := s.reg.Stat(req.Input); err != nil {
				return JobStatus{}, err
			}
		}
		p.Input = req.Input.String()
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return JobStatus{}, err
	}
	j, err := s.Manager.Submit(Request{
		Tenant:       req.Tenant,
		Priority:     req.Priority,
		MemoryBytes:  req.MemoryBytes,
		ScratchBytes: req.ScratchBytes,
		Key:          req.Key,
		Payload:      payload,
		Trace:        req.Trace,
	}, s.work(req.Iters, req.Seed, req.Input, req.MemoryBytes, req.ScratchBytes))
	if err != nil {
		return JobStatus{}, err
	}
	if req.Input.Valid() {
		s.trackInput(j.ID, req.Input)
	}
	return s.Manager.Status(j.ID)
}

// trackInput takes the consumed-by-job reference on a chained job's input
// handle and records it for release at retirement. The named AddRef is
// idempotent, so re-tracking after a keyed duplicate submit or a recovery
// replay is a no-op.
func (s *SolverService) trackInput(id int64, ref proxy.Ref) {
	s.inputsMu.Lock()
	s.inputs[id] = ref
	s.inputsMu.Unlock()
	if s.reg != nil && (ref.Scope == "" || ref.Scope == s.scope()) {
		// Best-effort: a handle that went gone between Stat and here fails
		// the job at run time with the typed resolve error.
		s.reg.AddRef(ref, fmt.Sprintf("job%d", id))
	}
}

// releaseInput drops a retired consumer job's input reference (idempotent).
func (s *SolverService) releaseInput(id int64) {
	s.inputsMu.Lock()
	ref, ok := s.inputs[id]
	delete(s.inputs, id)
	s.inputsMu.Unlock()
	if ok && s.reg != nil && (ref.Scope == "" || ref.Scope == s.scope()) {
		s.reg.Release(ref, fmt.Sprintf("job%d", id))
	}
}

// Recover replays the durable store into the manager, rebuilding each
// interrupted job's work function from its journaled payload, re-associates
// journal-recovered proxy handles with their jobs, and re-takes live
// consumer jobs' input references (terminal ones are reconciled released —
// a crash between the terminal journal entry and the retire hook must not
// leak a reference). Call once on startup, before serving traffic.
func (s *SolverService) Recover() (RecoveryStats, error) {
	if s.reg != nil {
		if _, err := s.reg.Recover(); err != nil {
			return RecoveryStats{}, err
		}
	}
	stats, err := s.Manager.Recover(func(rec jobstore.Record) (Work, error) {
		p, ref, perr := s.parsePayload(rec.ID, rec.Payload)
		if perr != nil {
			return nil, perr
		}
		if ref.Valid() {
			s.trackInput(rec.ID, ref)
		}
		return s.work(p.Iters, p.Seed, ref, rec.MemoryBytes, rec.ScratchBytes), nil
	})
	if err != nil || s.store == nil {
		return stats, err
	}
	if s.reg != nil {
		for _, st := range s.reg.List() {
			s.Manager.SetProxy(st.JobID, st.Handle)
		}
		// Reconcile terminal consumers: their input refs release idempotently.
		for _, rec := range s.store.Records() {
			if !rec.Terminal() {
				continue
			}
			if _, ref, perr := s.parsePayload(rec.ID, rec.Payload); perr == nil && ref.Valid() &&
				(ref.Scope == "" || ref.Scope == s.scope()) {
				s.reg.Release(ref, fmt.Sprintf("job%d", rec.ID))
			}
		}
	}
	return stats, nil
}

// parsePayload decodes a journaled solvePayload and its input ref.
func (s *SolverService) parsePayload(id int64, payload []byte) (solvePayload, proxy.Ref, error) {
	var p solvePayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return p, proxy.Ref{}, fmt.Errorf("jobs: job %d payload: %w", id, err)
	}
	if p.Iters <= 0 {
		return p, proxy.Ref{}, fmt.Errorf("jobs: job %d payload has no iterations", id)
	}
	var ref proxy.Ref
	if p.Input != "" {
		var err error
		if ref, err = proxy.ParseRef(p.Input); err != nil {
			return p, proxy.Ref{}, fmt.Errorf("jobs: job %d input: %w", id, err)
		}
	}
	return p, ref, nil
}

// durable reports whether jobs run through the checkpointed resume path:
// that needs both the journal (to know a job must resume) and a scratch
// root (to hold its checkpoints).
func (s *SolverService) durable() bool {
	return s.store != nil && s.sys.ScratchRoot() != ""
}

// work builds the job body: install per-node quota slices, materialize the
// input vector (seed-derived, or resolved from a proxy handle for chained
// jobs), run the (checkpointed, when durable) cancellable solve, encode the
// final vector, register it as a proxy handle, then drop the job's dead
// transient arrays — keeping only those the registry now retains. The
// parameters are exactly what solvePayload journals, so recovery rebuilds
// an identical closure.
func (s *SolverService) work(iters int, seed int64, input proxy.Ref, memoryBytes, scratchBytes int64) Work {
	return func(id int64, cancel <-chan struct{}) ([]byte, error) {
		cfg := s.base
		cfg.Iters = iters
		cfg.Tag = fmt.Sprintf("job%d", id)
		// The engine parents its per-iteration and per-task spans under the
		// job's running-phase span, linking client → lifecycle → compute
		// into one causal tree.
		cfg.Trace = s.Manager.RunSpanContext(id)
		x0, err := s.startVector(seed, input)
		if err != nil {
			return nil, err
		}
		prefix := cfg.Tag + ":"
		nodes := s.sys.Nodes()
		if memoryBytes > 0 || scratchBytes > 0 {
			for i := 0; i < nodes; i++ {
				s.sys.Store(i).SetQuota(prefix, perNode(memoryBytes, nodes), perNode(scratchBytes, nodes))
			}
			defer func() {
				for i := 0; i < nodes; i++ {
					s.sys.Store(i).ClearQuota(prefix)
				}
			}()
		}
		if !s.durable() {
			res, err := core.RunIteratedSpMVCancel(s.sys, cfg, x0, cancel)
			if err != nil {
				return nil, err
			}
			payload := EncodeFloat64s(res.X)
			// Register the final iterate as a proxy handle before deleting the
			// job's generations; the kept set is exactly what the registry now
			// retains (nil keep when registration is disabled or rejected).
			keep := s.registerResult(id, payload, core.FinalIterateArrays(cfg))
			core.DeleteSpMVArraysKeep(s.sys, cfg, keep)
			return payload, nil
		}
		// Durable path. A previous attempt that died mid-run left its
		// partially-written segment arrays on scratch, re-registered by the
		// storage startup scan — purge them or the fresh segment run
		// collides on Create. The checkpoint files (prefix "job<id>:") stay,
		// as do arrays a live proxy handle retains (a resumed re-finish
		// re-registers idempotently and re-points the handle).
		core.PurgeTaggedArtifactsExcept(s.sys, cfg.Tag+"@", s.retained())
		res, start, err := core.ResumeIteratedSpMVCancel(s.sys, cfg, x0, cancel)
		if err != nil {
			return nil, err
		}
		if start > 0 {
			s.itersSaved.Add(int64(start))
		}
		payload := EncodeFloat64s(res.X)
		if start < iters {
			// The resume path namespaced the segment run "job<id>@<start>:";
			// its final iterate backs the proxy handle, the rest are dead.
			rest := cfg
			rest.Iters = iters - start
			rest.Tag = fmt.Sprintf("%s@%d", cfg.Tag, start)
			keep := s.registerResult(id, payload, core.FinalIterateArrays(rest))
			core.DeleteSpMVArraysKeep(s.sys, rest, keep)
		} else {
			// start == iters: a checkpoint already supplied the whole run, so
			// no segment arrays exist. The durable result payload (or the
			// checkpoint files) serve resolves.
			s.registerResult(id, payload, nil)
		}
		return payload, nil
	}
}

// registerResult publishes a finished job's iterate as a proxy handle named
// after the job, and returns the retention predicate DeleteSpMVArraysKeep
// uses to spare the handle's backing arrays. Registration failure (quota,
// closed registry) degrades gracefully: the job still succeeds by value,
// and a nil keep deletes everything.
func (s *SolverService) registerResult(id int64, payload []byte, arrays []string) func(string) bool {
	if s.reg == nil {
		return nil
	}
	tenant := ""
	if st, err := s.Manager.Status(id); err == nil {
		tenant = st.Tenant
	}
	sum := sha256.Sum256(payload)
	h, err := s.reg.Register(proxy.RegisterRequest{
		Name:   fmt.Sprintf("job%d", id),
		Tenant: tenant,
		JobID:  id,
		SHA256: fmt.Sprintf("%x", sum),
		Length: int64(len(payload)),
		Arrays: arrays,
	})
	if err != nil {
		return nil
	}
	s.Manager.SetProxy(id, h)
	return s.retained()
}

// retained adapts the registry's array-retention lookup to the purge/delete
// keep-predicate shape (nil when the proxy plane is disabled).
func (s *SolverService) retained() func(string) bool {
	if s.reg == nil {
		return nil
	}
	return s.reg.Retained
}

// startVector materializes a job's starting vector: the proxy payload for
// chained jobs, the seed-derived vector otherwise.
func (s *SolverService) startVector(seed int64, input proxy.Ref) ([]float64, error) {
	if !input.Valid() {
		return StartVector(s.base.Dim, seed), nil
	}
	data, err := s.ResolveProxy(input)
	if err != nil {
		return nil, fmt.Errorf("jobs: materializing input %s: %w", input, err)
	}
	if len(data) != 8*s.base.Dim {
		return nil, fmt.Errorf("jobs: input %s is %d bytes, want %d (dim %d)", input, len(data), 8*s.base.Dim, s.base.Dim)
	}
	return storage.DecodeFloat64s(data), nil
}

// retire is the manager's terminal hook: always release the job's consumer
// input reference; retire a non-done job's own handle (a failed or
// cancelled result must not stay resolvable); and under a durable store
// purge a done or cancelled job's checkpoints and stray segment arrays —
// except those the registry retains for live handles, so teardown never
// races a concurrent resolve. A FAILED job keeps its artifacts — the
// dominant failure mode is process death or drain-interrupt, and its
// checkpoints are exactly what the post-restart resume needs.
func (s *SolverService) retire(id int64, final State) {
	s.releaseInput(id)
	if s.reg != nil && final != StateDone {
		s.reg.RetireJob(id)
	}
	if s.store == nil || (final != StateDone && final != StateCancelled) {
		return
	}
	tag := fmt.Sprintf("job%d", id)
	keep := s.retained()
	core.PurgeTaggedArtifactsExcept(s.sys, tag+":", keep)
	core.PurgeTaggedArtifactsExcept(s.sys, tag+"@", keep)
}

// ResolveProxy materializes a handle's full payload: pin the entry so
// reclamation defers past the read, serve from the job result (memoized or
// durable) when available, else reassemble from the retained iterate
// arrays. A foreign-scope handle unknown locally is fetched from its origin
// peer over the cluster tier. Returns proxy.ErrProxyGone (typed) when the
// last reference dropped — never partial bytes.
func (s *SolverService) ResolveProxy(ref proxy.Ref) ([]byte, error) {
	start := time.Now()
	data, err := s.resolve(ref)
	if err != nil {
		return nil, err
	}
	if s.reg != nil {
		s.reg.ObserveResolve(int64(len(data)), time.Since(start).Seconds())
	}
	return data, nil
}

// ResolveProxyRange materializes payload[lo:hi) for the wire's chunked
// resolve verb. The full payload is still assembled per call (cheap: the
// manager memoizes durable result bytes), and the resolve metrics observe
// only the first chunk so one logical resolve counts once.
func (s *SolverService) ResolveProxyRange(ref proxy.Ref, lo, hi int64) ([]byte, int64, error) {
	start := time.Now()
	data, err := s.resolve(ref)
	if err != nil {
		return nil, 0, err
	}
	total := int64(len(data))
	if lo < 0 || lo > total || hi < lo {
		return nil, 0, fmt.Errorf("jobs: resolve range [%d,%d) out of bounds (payload %d bytes)", lo, hi, total)
	}
	if hi > total {
		hi = total
	}
	if s.reg != nil && lo == 0 {
		s.reg.ObserveResolve(total, time.Since(start).Seconds())
	}
	return data[lo:hi], total, nil
}

func (s *SolverService) resolve(ref proxy.Ref) ([]byte, error) {
	if s.reg == nil {
		return nil, fmt.Errorf("%w: proxy plane disabled", ErrNoProxy)
	}
	pin, err := s.reg.Acquire(ref)
	if err != nil {
		// A foreign-scope handle this node has never seen lives on its origin
		// peer; forward over the cluster tier.
		if errors.Is(err, proxy.ErrUnknownProxy) && ref.Scope != "" && ref.Scope != s.scope() && s.fetch != nil {
			return s.fetch(ref.Scope, ref.Name, ref.Epoch)
		}
		return nil, err
	}
	defer pin.Close()
	return s.resolvePinned(pin)
}

// resolvePinned assembles a pinned handle's payload and verifies it against
// the registered length and SHA-256, so a resolve never returns bytes that
// differ from what the producer registered.
func (s *SolverService) resolvePinned(pin *proxy.Pin) ([]byte, error) {
	data, err := s.pinnedBytes(pin)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != pin.Handle.Length {
		return nil, fmt.Errorf("jobs: proxy %s payload is %d bytes, registered %d", pin.Handle.Ref(), len(data), pin.Handle.Length)
	}
	if sum := fmt.Sprintf("%x", sha256.Sum256(data)); sum != pin.Handle.SHA256 {
		return nil, fmt.Errorf("jobs: proxy %s payload hash %s does not match registered %s", pin.Handle.Ref(), sum, pin.Handle.SHA256)
	}
	return data, nil
}

func (s *SolverService) pinnedBytes(pin *proxy.Pin) ([]byte, error) {
	// Fast path: the job's result payload, memoized in memory or loaded from
	// the durable store.
	if st, err := s.Manager.Status(pin.JobID); err == nil && st.State == StateDone.String() {
		if data, err := s.Manager.Result(pin.JobID); err == nil && int64(len(data)) == pin.Handle.Length {
			return data, nil
		}
	}
	// Slow path: reassemble the final iterate from its retained arrays.
	if len(pin.Arrays) == 0 {
		return nil, fmt.Errorf("jobs: proxy %s has no resolvable backing (no result payload, no retained arrays)", pin.Handle.Ref())
	}
	return s.collectArrays(pin.Arrays)
}

// collectArrays concatenates the retained per-partition iterate arrays in
// partition order. Array u lives on the node that owns partition u.
func (s *SolverService) collectArrays(arrays []string) ([]byte, error) {
	p, err := s.base.Partition()
	if err != nil {
		return nil, err
	}
	if len(arrays) != s.base.K {
		return nil, fmt.Errorf("jobs: %d retained arrays for %d partitions", len(arrays), s.base.K)
	}
	out := make([]byte, 0, 8*s.base.Dim)
	for u := 0; u < s.base.K; u++ {
		node := s.base.OwnerOf(u)
		raw, err := s.sys.Store(node).ReadAll(arrays[u])
		if err != nil {
			return nil, fmt.Errorf("jobs: reading retained array %s: %w", arrays[u], err)
		}
		if len(raw) != 8*p.Size(u) {
			return nil, fmt.Errorf("jobs: retained array %s is %d bytes, want %d", arrays[u], len(raw), 8*p.Size(u))
		}
		out = append(out, raw...)
	}
	return out, nil
}

// ResultProxy returns a finished job's handle — see Manager.ResultProxy.
func (s *SolverService) ResultProxy(id int64) (proxy.Handle, error) {
	return s.Manager.ResultProxy(id)
}

// ProxyStat, ProxyAddRef, and ProxyRelease are the remote layer's
// pass-throughs to the registry (ErrNoProxy when the plane is disabled).

func (s *SolverService) ProxyStat(ref proxy.Ref) (proxy.Handle, int, error) {
	if s.reg == nil {
		return proxy.Handle{}, 0, fmt.Errorf("%w: proxy plane disabled", ErrNoProxy)
	}
	return s.reg.Stat(ref)
}

func (s *SolverService) ProxyAddRef(ref proxy.Ref, owner string) (proxy.Handle, error) {
	if s.reg == nil {
		return proxy.Handle{}, fmt.Errorf("%w: proxy plane disabled", ErrNoProxy)
	}
	return s.reg.AddRef(ref, owner)
}

func (s *SolverService) ProxyRelease(ref proxy.Ref, owner string) (int, error) {
	if s.reg == nil {
		return 0, fmt.Errorf("%w: proxy plane disabled", ErrNoProxy)
	}
	return s.reg.Release(ref, owner)
}

// perNode slices an aggregate budget evenly, rounding up so the slices
// cover the whole.
func perNode(total int64, nodes int) int64 {
	if total <= 0 {
		return 0
	}
	return (total + int64(nodes) - 1) / int64(nodes)
}

// StartVector is the deterministic starting vector both doocrun and the
// service derive from a seed.
func StartVector(dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// EncodeFloat64s is the little-endian payload encoding of a result vector
// (the inverse of storage.DecodeFloat64s).
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// ServeJobs is the /jobs HTTP handler: a JSON array of every job's
// status, ordered by ID.
func (s *SolverService) ServeJobs(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Manager.List())
}

// ServeJobItem handles the per-job routes under /jobs/:
//
//	/jobs/<id>         one job's status (JSON)
//	/jobs/<id>/events  the job's flight-recorder events (JSON)
//	/jobs/<id>/trace   Chrome-trace JSON scoped to the job, rebuilt from
//	                   the flight recorder — available even for jobs that
//	                   died in a crash, because the ring is journaled
//
// Mount it on the "/jobs/" prefix; more specific patterns (/jobs,
// /jobs/history) win on Go's ServeMux, so they are unaffected.
func (s *SolverService) ServeJobItem(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	idStr, sub, _ := strings.Cut(rest, "/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		http.NotFound(w, r)
		return
	}
	switch sub {
	case "":
		st, err := s.Manager.Status(id)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	case "events":
		events, dropped, err := s.Manager.FlightEvents(id)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		sc, _ := s.Manager.TraceContext(id)
		resp := struct {
			Job     int64             `json:"job"`
			TraceID string            `json:"trace_id,omitempty"`
			Dropped uint64            `json:"dropped"`
			Events  []obs.FlightEvent `json:"events"`
		}{Job: id, Dropped: dropped, Events: events}
		if sc.Valid() {
			resp.TraceID = sc.Trace.String()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	case "trace":
		events, _, err := s.Manager.FlightEvents(id)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		data, err := obs.FlightTrace(events, obs.PidJobs, fmt.Sprintf("job%d", id))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	default:
		http.NotFound(w, r)
	}
}

// ServeHistory is the /jobs/history HTTP handler: a paginated JSON window
// of terminal jobs (?offset=N&limit=N), including jobs finished before a
// restart.
func (s *SolverService) ServeHistory(w http.ResponseWriter, r *http.Request) {
	offset, _ := strconv.Atoi(r.URL.Query().Get("offset"))
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	jobs, total := s.Manager.History(offset, limit)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Total  int         `json:"total"`
		Offset int         `json:"offset"`
		Jobs   []JobStatus `json:"jobs"`
	}{Total: total, Offset: offset, Jobs: jobs})
}
