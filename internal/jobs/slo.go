package jobs

import (
	"sort"
	"sync"
	"time"

	"dooc/internal/obs"
)

// SLOConfig parameterizes a per-tenant SLO tracker. A zero objective means
// "no objective": latencies are still observed, but nothing counts as a
// breach.
type SLOConfig struct {
	// QueueObjective is the queue-wait objective (doocserve -slo-queue-ms).
	QueueObjective time.Duration
	// RunObjective is the run-latency objective (doocserve -slo-run-ms).
	RunObjective time.Duration
	// Obs receives the dooc_slo_* series (nil disables export; the tracker
	// still keeps its own counts for Summary).
	Obs *obs.Registry
}

// tenantSLO is one tenant's series plus local counts (the registry may cap
// tenant cardinality, so Summary never reads back through it).
type tenantSLO struct {
	e2e, queue, run *obs.Histogram
	jobs            *obs.Counter
	queueBurn       *obs.Counter
	runBurn         *obs.Counter

	nJobs, nQueueBreach, nRunBreach int64
	sumQueue, sumRun, sumE2E        time.Duration
}

// SLOTracker observes per-tenant end-to-end, queue-wait, and run latencies
// against configurable objectives, exporting dooc_slo_* histograms and burn
// (objective-breach) counters. A nil *SLOTracker is a no-op.
type SLOTracker struct {
	cfg SLOConfig

	mu      sync.Mutex
	tenants map[string]*tenantSLO
}

// NewSLOTracker builds a tracker.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{cfg: cfg, tenants: make(map[string]*tenantSLO)}
}

// QueueObjective returns the configured queue-wait objective.
func (t *SLOTracker) QueueObjective() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.QueueObjective
}

// RunObjective returns the configured run-latency objective.
func (t *SLOTracker) RunObjective() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.RunObjective
}

func (t *SLOTracker) tenant(name string) *tenantSLO {
	s, ok := t.tenants[name]
	if !ok {
		l := obs.L("tenant", name)
		reg := t.cfg.Obs
		s = &tenantSLO{
			e2e:       reg.Histogram("dooc_slo_e2e_seconds", "submit-to-terminal latency per tenant", nil, l),
			queue:     reg.Histogram("dooc_slo_queue_wait_seconds", "queue-wait latency per tenant", nil, l),
			run:       reg.Histogram("dooc_slo_run_seconds", "run latency per tenant", nil, l),
			jobs:      reg.Counter("dooc_slo_jobs_total", "terminal jobs observed per tenant", l),
			queueBurn: reg.Counter("dooc_slo_queue_breaches_total", "jobs whose queue wait exceeded the objective", l),
			runBurn:   reg.Counter("dooc_slo_run_breaches_total", "jobs whose run latency exceeded the objective", l),
		}
		t.tenants[name] = s
	}
	return s
}

// Observe records one terminal job. ran is false for jobs cancelled before
// admission (no run latency to observe).
func (t *SLOTracker) Observe(tenant string, queueWait, run, e2e time.Duration, ran bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.tenant(tenant)
	s.nJobs++
	s.sumQueue += queueWait
	s.sumE2E += e2e
	s.jobs.Inc()
	s.e2e.Observe(e2e.Seconds())
	s.queue.Observe(queueWait.Seconds())
	if t.cfg.QueueObjective > 0 && queueWait > t.cfg.QueueObjective {
		s.nQueueBreach++
		s.queueBurn.Inc()
	}
	if ran {
		s.sumRun += run
		s.run.Observe(run.Seconds())
		if t.cfg.RunObjective > 0 && run > t.cfg.RunObjective {
			s.nRunBreach++
			s.runBurn.Inc()
		}
	}
}

// SLOSummary is one tenant's standing against the objectives — the /healthz
// detail and doocbench -exp jobs report shape.
type SLOSummary struct {
	Tenant        string `json:"tenant"`
	Jobs          int64  `json:"jobs"`
	QueueBreaches int64  `json:"queue_breaches"`
	RunBreaches   int64  `json:"run_breaches"`
	// Burn rates are breach fractions in [0,1]: the error budget consumed.
	QueueBurn    float64 `json:"queue_burn"`
	RunBurn      float64 `json:"run_burn"`
	MeanQueueSec float64 `json:"mean_queue_seconds"`
	MeanRunSec   float64 `json:"mean_run_seconds"`
	MeanE2ESec   float64 `json:"mean_e2e_seconds"`
}

// Summary returns per-tenant standings sorted by tenant name.
func (t *SLOTracker) Summary() []SLOSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOSummary, 0, len(t.tenants))
	for name, s := range t.tenants {
		sum := SLOSummary{
			Tenant:        name,
			Jobs:          s.nJobs,
			QueueBreaches: s.nQueueBreach,
			RunBreaches:   s.nRunBreach,
		}
		if s.nJobs > 0 {
			sum.QueueBurn = float64(s.nQueueBreach) / float64(s.nJobs)
			sum.RunBurn = float64(s.nRunBreach) / float64(s.nJobs)
			sum.MeanQueueSec = (s.sumQueue / time.Duration(s.nJobs)).Seconds()
			sum.MeanRunSec = (s.sumRun / time.Duration(s.nJobs)).Seconds()
			sum.MeanE2ESec = (s.sumE2E / time.Duration(s.nJobs)).Seconds()
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
