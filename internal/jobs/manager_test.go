package jobs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// gatedWork returns a Work that blocks until release is closed, plus the
// channels to observe and control it.
func gatedWork(started chan<- int64, release <-chan struct{}) Work {
	return func(id int64, cancel <-chan struct{}) ([]byte, error) {
		if started != nil {
			started <- id
		}
		select {
		case <-release:
			return []byte{byte(id)}, nil
		case <-cancel:
			return nil, errors.New("work: saw cancel")
		}
	}
}

func TestSubmitRunsAndReturnsResult(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1})
	j, err := m.Submit(Request{Tenant: "a"}, func(id int64, _ <-chan struct{}) ([]byte, error) {
		return []byte("hi"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Result(j.ID)
	if err != nil || string(res) != "hi" {
		t.Fatalf("result = %q, %v", res, err)
	}
	st, err := m.Status(j.ID)
	if err != nil || st.State != "done" {
		t.Fatalf("status = %+v, %v", st, err)
	}
}

func TestQueueFullTyped(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1, QueueDepth: 2})
	release := make(chan struct{})
	defer close(release)
	started := make(chan int64, 1)
	if _, err := m.Submit(Request{Tenant: "a"}, gatedWork(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started // the first job occupies the only run slot
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(Request{Tenant: "a"}, gatedWork(nil, release)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := m.Submit(Request{Tenant: "a"}, gatedWork(nil, release))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestMemoryQuotaTyped(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1, MemoryBudget: 100})
	release := make(chan struct{})
	defer close(release)
	started := make(chan int64, 1)
	if _, err := m.Submit(Request{Tenant: "a", MemoryBytes: 60}, gatedWork(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	_, err := m.Submit(Request{Tenant: "b", MemoryBytes: 60}, gatedWork(nil, release))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	// A request that fits is admitted.
	if _, err := m.Submit(Request{Tenant: "b", MemoryBytes: 40}, gatedWork(nil, release)); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityOrderAndTenantFIFO(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1, QueueDepth: 16, AgingStep: time.Hour})
	release := make(chan struct{})
	started := make(chan int64, 16)
	// Occupy the slot so subsequent submissions queue up.
	first, _ := m.Submit(Request{Tenant: "x"}, gatedWork(started, release))
	<-started

	lowEarly, _ := m.Submit(Request{Tenant: "a", Priority: 1}, gatedWork(started, release))
	lowLate, _ := m.Submit(Request{Tenant: "a", Priority: 9}, gatedWork(started, release)) // behind lowEarly in tenant FIFO
	high, _ := m.Submit(Request{Tenant: "b", Priority: 5}, gatedWork(started, release))

	close(release)
	order := []int64{<-started, <-started, <-started}
	// Tenant b's head (priority 5) beats tenant a's head (priority 1,
	// FIFO holds back the 9 behind it).
	want := []int64{high.ID, lowEarly.ID, lowLate.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v (first=%d)", order, want, first.ID)
		}
	}
}

func TestWeightedTenants(t *testing.T) {
	m := NewManager(Config{
		MaxRunning:   1,
		AgingStep:    time.Hour,
		TenantWeight: map[string]int{"gold": 10},
	})
	release := make(chan struct{})
	started := make(chan int64, 8)
	blocker, _ := m.Submit(Request{Tenant: "x"}, gatedWork(started, release))
	<-started
	_ = blocker

	silver, _ := m.Submit(Request{Tenant: "silver", Priority: 5}, gatedWork(started, release))
	gold, _ := m.Submit(Request{Tenant: "gold", Priority: 1}, gatedWork(started, release))

	close(release)
	if got := []int64{<-started, <-started}; got[0] != gold.ID || got[1] != silver.ID {
		t.Fatalf("order = %v, want gold %d before silver %d", got, gold.ID, silver.ID)
	}
}

func TestAgingBeatsPriority(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1, AgingStep: time.Millisecond})
	release := make(chan struct{})
	started := make(chan int64, 8)
	_, _ = m.Submit(Request{Tenant: "x"}, gatedWork(started, release))
	<-started

	old, _ := m.Submit(Request{Tenant: "a", Priority: 0}, gatedWork(started, release))
	time.Sleep(50 * time.Millisecond) // ~50 aging points
	fresh, _ := m.Submit(Request{Tenant: "b", Priority: 10}, gatedWork(started, release))

	close(release)
	if got := []int64{<-started, <-started}; got[0] != old.ID || got[1] != fresh.ID {
		t.Fatalf("order = %v, want aged job %d first (fresh=%d)", got, old.ID, fresh.ID)
	}
}

func TestCancelQueued(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1})
	release := make(chan struct{})
	defer close(release)
	started := make(chan int64, 4)
	_, _ = m.Submit(Request{Tenant: "x"}, gatedWork(started, release))
	<-started

	q, _ := m.Submit(Request{Tenant: "a", MemoryBytes: 7}, gatedWork(nil, release))
	if err := m.Cancel(q.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(q.ID); !errors.Is(err, ErrCancelled) {
		t.Fatalf("result err = %v, want ErrCancelled", err)
	}
	st, _ := m.Status(q.ID)
	if st.State != "cancelled" {
		t.Fatalf("state = %s", st.State)
	}
	queued, _ := m.Counts()
	if queued != 0 {
		t.Fatalf("queued = %d after cancel", queued)
	}
}

func TestCancelRunning(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1})
	started := make(chan int64, 1)
	j, _ := m.Submit(Request{Tenant: "a"}, func(id int64, cancel <-chan struct{}) ([]byte, error) {
		started <- id
		<-cancel
		return nil, errors.New("aborted by cancel")
	})
	<-started
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(j.ID); !errors.Is(err, ErrCancelled) {
		t.Fatalf("result err = %v, want ErrCancelled", err)
	}
	if st, _ := m.Status(j.ID); st.State != "cancelled" {
		t.Fatalf("state = %s", st.State)
	}
	// Cancel after finish is a no-op; unknown IDs are typed.
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(999); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

func TestCancelRacesCompletion(t *testing.T) {
	// A job whose work returns success even though cancel was requested
	// stays done — the result is valid.
	m := NewManager(Config{MaxRunning: 1})
	started := make(chan int64, 1)
	proceed := make(chan struct{})
	j, _ := m.Submit(Request{Tenant: "a"}, func(id int64, cancel <-chan struct{}) ([]byte, error) {
		started <- id
		<-proceed
		return []byte("ok"), nil
	})
	<-started
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	close(proceed)
	res, err := m.Result(j.ID)
	if err != nil || string(res) != "ok" {
		t.Fatalf("result = %q, %v", res, err)
	}
}

func TestDrain(t *testing.T) {
	m := NewManager(Config{MaxRunning: 2})
	release := make(chan struct{})
	started := make(chan int64, 4)
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(Request{Tenant: "a"}, gatedWork(started, release)); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	<-started
	var wg sync.WaitGroup
	wg.Add(1)
	drained := make(chan struct{})
	go func() {
		defer wg.Done()
		m.Drain()
		close(drained)
	}()
	// Submissions during the drain are rejected with the typed error.
	deadline := time.After(2 * time.Second)
	for {
		_, err := m.Submit(Request{Tenant: "a"}, gatedWork(nil, release))
		if errors.Is(err, ErrDraining) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("never saw ErrDraining")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case <-drained:
		t.Fatal("drain returned with jobs still running")
	default:
	}
	close(release)
	wg.Wait()
	if q, r := m.Counts(); q != 0 || r != 0 {
		t.Fatalf("after drain: queued=%d running=%d", q, r)
	}
}

func TestListOrdered(t *testing.T) {
	m := NewManager(Config{MaxRunning: 4})
	for i := 0; i < 5; i++ {
		if _, err := m.Submit(Request{Tenant: "a"}, func(id int64, _ <-chan struct{}) ([]byte, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	m.Drain()
	ls := m.List()
	if len(ls) != 5 {
		t.Fatalf("%d jobs listed", len(ls))
	}
	for i, st := range ls {
		if st.ID != int64(i+1) {
			t.Fatalf("list not ID-ordered: %v", ls)
		}
		if st.State != "done" {
			t.Fatalf("job %d state %s", st.ID, st.State)
		}
	}
}
