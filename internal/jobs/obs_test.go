package jobs

import (
	"errors"
	"sync"
	"testing"

	"dooc/internal/obs"
)

// TestMetricsReconcile drives a mixed workload — concurrent submissions,
// forced rejections, cancellations — and asserts the registry's job series
// reconcile exactly with the manager's own accounting. Run under -race.
func TestMetricsReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Config{MaxRunning: 2, QueueDepth: 4, MemoryBudget: 1000, Obs: reg})

	release := make(chan struct{})
	started := make(chan int64, 64)
	work := gatedWork(started, release)

	var mu sync.Mutex
	rejected := map[string]int64{}
	var submitted int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := string(rune('a' + g))
			for i := 0; i < 8; i++ {
				_, err := m.Submit(Request{Tenant: tenant, Priority: i % 3, MemoryBytes: 100}, work)
				mu.Lock()
				switch {
				case err == nil:
					submitted++
				case errors.Is(err, ErrQueueFull):
					rejected["queue_full"]++
				case errors.Is(err, ErrQuotaExceeded):
					rejected["memory_quota"]++
				default:
					t.Errorf("unexpected submit error: %v", err)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	// Cancel one queued or running job if any exist, then let the rest run.
	var cancelled int64
	for _, st := range m.List() {
		if st.State == "queued" {
			if err := m.Cancel(st.ID); err == nil {
				cancelled++
			}
			break
		}
	}
	close(release)
	m.Drain()

	// Manager-side truth.
	list := m.List()
	if int64(len(list)) != submitted {
		t.Fatalf("list has %d jobs, submitted %d", len(list), submitted)
	}
	byState := map[string]int64{}
	for _, st := range list {
		if !stateTerminal(st.State) {
			t.Fatalf("job %d not terminal after drain: %s", st.ID, st.State)
		}
		byState[st.State]++
	}
	if byState["cancelled"] != cancelled {
		t.Fatalf("cancelled: list says %d, test did %d", byState["cancelled"], cancelled)
	}

	// Registry-side: every counter reconciles.
	if got := reg.Sum("dooc_jobs_submitted_total"); got != submitted {
		t.Fatalf("submitted metric %d, want %d", got, submitted)
	}
	for reason, want := range rejected {
		if got := reg.SumWhere("dooc_jobs_rejected_total", "reason", reason); got != want {
			t.Fatalf("rejected{%s} metric %d, want %d", reason, got, want)
		}
	}
	if got := reg.Sum("dooc_jobs_rejected_total"); got != rejected["queue_full"]+rejected["memory_quota"] {
		t.Fatalf("rejected total %d, want %d", got, rejected["queue_full"]+rejected["memory_quota"])
	}
	for _, state := range []string{"done", "failed", "cancelled"} {
		if got := reg.SumWhere("dooc_jobs_completed_total", "state", state); got != byState[state] {
			t.Fatalf("completed{%s} metric %d, manager says %d", state, got, byState[state])
		}
	}
	if got := reg.Sum("dooc_jobs_completed_total"); got != submitted {
		t.Fatalf("completed total %d, want %d (every admitted job terminal)", got, submitted)
	}
	// Gauges are quiescent and the queue-wait histogram saw every
	// admission that was dispatched (all non-queue-cancelled jobs).
	if got := reg.Sum("dooc_jobs_queued"); got != 0 {
		t.Fatalf("queued gauge %d after drain", got)
	}
	if got := reg.Sum("dooc_jobs_running"); got != 0 {
		t.Fatalf("running gauge %d after drain", got)
	}
}

func stateTerminal(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}
