package jobs

import (
	"net/http"
	"sync/atomic"
)

// Health gates doocserve's liveness and readiness probes. Liveness is
// unconditional (the process answers); readiness flips false when the
// server enters its graceful drain so load balancers stop routing new
// work while in-flight jobs finish.
type Health struct {
	draining atomic.Bool
}

// SetDraining flips the readiness state.
func (h *Health) SetDraining(v bool) { h.draining.Store(v) }

// Draining reports whether the drain has started.
func (h *Health) Draining() bool { return h.draining.Load() }

// Healthz answers the liveness probe: always 200.
func (h *Health) Healthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// Readyz answers the readiness probe: 200 until the drain starts, 503
// after.
func (h *Health) Readyz(w http.ResponseWriter, _ *http.Request) {
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}
