package jobs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// Health gates doocserve's liveness and readiness probes. Liveness is
// unconditional (the process answers); readiness flips false when the
// server enters its graceful drain so load balancers stop routing new
// work while in-flight jobs finish.
type Health struct {
	draining atomic.Bool
	// detail, when set, is called per /healthz request to append a JSON
	// detail object (SLO standings, queue depths) after the "ok" line.
	detail atomic.Value // func() any
}

// SetDraining flips the readiness state.
func (h *Health) SetDraining(v bool) { h.draining.Store(v) }

// Draining reports whether the drain has started.
func (h *Health) Draining() bool { return h.draining.Load() }

// SetDetail installs a callback whose result is appended to /healthz
// responses as a JSON object — surfacing SLO standings without a second
// endpoint. nil-safe to never have been set.
func (h *Health) SetDetail(f func() any) {
	if f != nil {
		h.detail.Store(f)
	}
}

// Healthz answers the liveness probe: always 200, "ok" first so trivially
// cheap probes can match on the first line, then the optional detail JSON.
func (h *Health) Healthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
	if f, _ := h.detail.Load().(func() any); f != nil {
		if v := f(); v != nil {
			json.NewEncoder(w).Encode(v)
		}
	}
}

// Readyz answers the readiness probe: 200 until the drain starts, 503
// after.
func (h *Health) Readyz(w http.ResponseWriter, _ *http.Request) {
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}
