package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"dooc/internal/core"
	"dooc/internal/sparse"
)

// newTestService builds a 2-node in-memory system with a loaded matrix and
// wraps it in a SolverService.
func newTestService(t *testing.T, cfg Config) (*SolverService, *core.System) {
	t.Helper()
	const dim, k, nodes = 400, 2, 2
	sys, err := core.NewSystem(core.Options{Nodes: nodes, WorkersPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	base := core.SpMVConfig{Dim: dim, K: k, Nodes: nodes}
	load := base
	load.Iters = 1 // Validate requires Iters > 0; staging ignores it
	if err := core.LoadMatrixInMemory(sys, m, load); err != nil {
		t.Fatal(err)
	}
	return NewSolverService(sys, base, cfg), sys
}

// serialReference runs the same request directly on the system (distinct
// tag) and returns the encoded result.
func serialReference(t *testing.T, sys *core.System, base core.SpMVConfig, req SolveRequest, tag string) []byte {
	t.Helper()
	cfg := base
	cfg.Iters = req.Iters
	cfg.Tag = tag
	res, err := core.RunIteratedSpMV(sys, cfg, StartVector(base.Dim, req.Seed))
	if err != nil {
		t.Fatal(err)
	}
	core.DeleteSpMVArrays(sys, cfg)
	return EncodeFloat64s(res.X)
}

// TestConcurrentJobsBitIdentical is the tentpole acceptance test: four
// concurrent jobs with mixed priorities produce results bit-identical to
// the same jobs run serially.
func TestConcurrentJobsBitIdentical(t *testing.T) {
	svc, sys := newTestService(t, Config{MaxRunning: 4, QueueDepth: 16})
	reqs := []SolveRequest{
		{Tenant: "alice", Priority: 1, Iters: 3, Seed: 11, MemoryBytes: 1 << 22},
		{Tenant: "bob", Priority: 9, Iters: 4, Seed: 22, MemoryBytes: 1 << 22},
		{Tenant: "carol", Priority: 5, Iters: 2, Seed: 33},
		{Tenant: "dave", Priority: 3, Iters: 5, Seed: 44, ScratchBytes: 1 << 30},
	}
	ids := make([]int64, len(reqs))
	for i, r := range reqs {
		st, err := svc.Submit(r)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		got, err := svc.Manager.Result(id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		want := serialReference(t, sys, svc.Base(), reqs[i], fmt.Sprintf("serial%d", i))
		if !bytes.Equal(got, want) {
			t.Fatalf("job %d result differs from serial run (%d vs %d bytes)", id, len(got), len(want))
		}
	}
	// All quota groups were cleared on completion.
	for i := 0; i < sys.Nodes(); i++ {
		for _, id := range ids {
			if _, ok := sys.Store(i).Quota(fmt.Sprintf("job%d:", id)); ok {
				t.Fatalf("node %d still has quota group for job %d", i, id)
			}
		}
	}
}

// TestCancelReleasesResources cancels a running job and asserts its
// transient arrays and quota groups are gone: per-node memory returns to
// the pre-submit level (the staged matrix only).
func TestCancelReleasesResources(t *testing.T) {
	svc, sys := newTestService(t, Config{MaxRunning: 1})
	var before int64
	for i := 0; i < sys.Nodes(); i++ {
		before += sys.Store(i).Stats().MemUsed
	}

	st, err := svc.Submit(SolveRequest{Tenant: "a", Iters: 200, Seed: 7, MemoryBytes: 1 << 22, ScratchBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Let the run get going, then cancel.
	deadline := time.After(5 * time.Second)
	for {
		s, _ := svc.Manager.Status(st.ID)
		if s.State == "running" {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if err := svc.Manager.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Manager.Result(st.ID); !errors.Is(err, ErrCancelled) {
		t.Fatalf("result err = %v, want ErrCancelled", err)
	}

	var after int64
	for i := 0; i < sys.Nodes(); i++ {
		after += sys.Store(i).Stats().MemUsed
		if _, ok := sys.Store(i).Quota(fmt.Sprintf("job%d:", st.ID)); ok {
			t.Fatalf("node %d: quota group survived cancellation", i)
		}
	}
	if after > before {
		t.Fatalf("cancelled job leaked memory: before=%d after=%d", before, after)
	}

	// The service still works.
	ok, err := svc.Submit(SolveRequest{Tenant: "a", Iters: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Manager.Result(ok.ID); err != nil {
		t.Fatalf("run after cancel: %v", err)
	}
}

func TestServiceRejectsInvalidIters(t *testing.T) {
	svc, _ := newTestService(t, Config{})
	if _, err := svc.Submit(SolveRequest{Tenant: "a"}); err == nil {
		t.Fatal("zero iters accepted")
	}
}
