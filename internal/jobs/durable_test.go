package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"dooc/internal/core"
	"dooc/internal/jobstore"
	"dooc/internal/sparse"
)

// durableFixture stages a small matrix under a temp scratch root and
// returns the base geometry plus the directory the job store lives in.
func durableFixture(t *testing.T) (core.SpMVConfig, string, string) {
	t.Helper()
	const dim, k, nodes = 96, 2, 2
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	base := core.SpMVConfig{Dim: dim, K: k, Nodes: nodes}
	stage := base
	stage.Iters = 1
	if err := core.StageMatrix(root, m, stage); err != nil {
		t.Fatal(err)
	}
	return base, root, filepath.Join(root, "ctrl")
}

func durableSystem(t *testing.T, root string) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Nodes:          2,
		WorkersPerNode: 2,
		MemoryBudget:   1 << 24,
		ScratchRoot:    root,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestDurableJobJournalsLifecycle: a keyed job run to completion under a
// durable store survives a full restart — its record, result file, and
// SHA-256 replay into history, the durable result bytes match what the
// original manager returned, and the idempotency key still deduplicates.
func TestDurableJobJournalsLifecycle(t *testing.T) {
	base, root, storeDir := durableFixture(t)
	store, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys := durableSystem(t, root)
	svc := NewSolverService(sys, base, Config{MaxRunning: 1, QueueDepth: 4, Store: store})
	st, err := svc.Submit(SolveRequest{Tenant: "alice", Iters: 3, Seed: 5, Key: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := svc.Manager.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	svc.Manager.Drain()
	sys.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	if len(recs) != 1 {
		t.Fatalf("reopened store has %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != st.ID || r.Key != "k1" || r.State != "done" {
		t.Fatalf("replayed record = %+v", r)
	}
	if r.ResultFile == "" || r.ResultSHA == "" {
		t.Fatalf("done record missing durable result: %+v", r)
	}
	durable, err := re.LoadResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(durable, data) {
		t.Fatal("durable result differs from the bytes the manager returned")
	}

	sys2 := durableSystem(t, root)
	defer sys2.Close()
	svc2 := NewSolverService(sys2, base, Config{MaxRunning: 1, QueueDepth: 4, Store: re})
	rec, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Historical != 1 || rec.Requeued != 0 || rec.Resumed != 0 {
		t.Fatalf("recovery stats = %+v", rec)
	}
	hist, total := svc2.Manager.History(0, 10)
	if total != 1 || len(hist) != 1 || hist[0].ID != st.ID || hist[0].ResultSHA != r.ResultSHA {
		t.Fatalf("history = %+v (total %d)", hist, total)
	}
	got, err := svc2.Manager.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-restart result differs")
	}
	dup, err := svc2.Submit(SolveRequest{Tenant: "alice", Iters: 3, Seed: 5, Key: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != st.ID {
		t.Fatalf("keyed resubmit after restart created job %d, want %d", dup.ID, st.ID)
	}
	svc2.Manager.Drain()
}

// TestCrashRecoveryResumesBitIdentical is the acceptance test for the
// crash path: reconstruct the on-disk state a kill -9 leaves (journal
// acked through "running", checkpoints through iteration 2, dead segment
// arrays on scratch), recover, and require the resumed job's bytes to be
// identical to an uninterrupted run's — with only the post-checkpoint
// iterations recomputed.
func TestCrashRecoveryResumesBitIdentical(t *testing.T) {
	base, root, storeDir := durableFixture(t)
	const (
		iters   = 5
		seed    = 13
		crashAt = 2
		jobID   = 1
		key     = "crash-key"
	)

	refSys := durableSystem(t, root)
	refCfg := base
	refCfg.Iters = iters
	refCfg.Tag = "ref"
	refRes, err := core.RunIteratedSpMV(refSys, refCfg, StartVector(base.Dim, seed))
	if err != nil {
		t.Fatal(err)
	}
	core.DeleteSpMVArrays(refSys, refCfg)
	refSys.Close()
	want := EncodeFloat64s(refRes.X)

	// The "crash": a checkpointed segment run to crashAt whose segment
	// arrays are left on scratch, and a journal frozen mid-lifecycle.
	sys1 := durableSystem(t, root)
	crashCfg := base
	crashCfg.Iters = crashAt
	crashCfg.Tag = fmt.Sprintf("job%d", jobID)
	if _, _, err := core.ResumeIteratedSpMV(sys1, crashCfg, StartVector(base.Dim, seed)); err != nil {
		t.Fatal(err)
	}
	sys1.Close()
	store1, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jrec := jobstore.Record{
		ID:          jobID,
		Key:         key,
		Tenant:      "alice",
		Payload:     []byte(fmt.Sprintf(`{"iters":%d,"seed":%d}`, iters, seed)),
		State:       "queued",
		SubmittedAt: time.Now(),
	}
	if err := store1.Append(jrec); err != nil {
		t.Fatal(err)
	}
	jrec.State = "running"
	jrec.StartedAt = time.Now()
	if err := store1.Append(jrec); err != nil {
		t.Fatal(err)
	}
	store1.Abort()

	store2, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	sys2 := durableSystem(t, root)
	defer sys2.Close()
	svc2 := NewSolverService(sys2, base, Config{MaxRunning: 1, QueueDepth: 4, Store: store2})
	rec, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Resumed != 1 || rec.Requeued != 0 || rec.Failed != 0 {
		t.Fatalf("recovery stats = %+v, want exactly one resumed job", rec)
	}
	dup, err := svc2.Submit(SolveRequest{Tenant: "alice", Iters: iters, Seed: seed, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != jobID {
		t.Fatalf("keyed resubmit during recovery created job %d, want %d", dup.ID, jobID)
	}
	got, err := svc2.Manager.Result(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered result differs from the uninterrupted reference")
	}
	final, err := svc2.Manager.Status(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Resumed != 1 {
		t.Fatalf("status reports %d resumptions, want 1", final.Resumed)
	}
	if final.ResultSHA == "" {
		t.Fatal("done job has no durable result SHA")
	}
	svc2.Manager.Drain()
}

// TestRecoverRequeuesQueuedInOrder: queued-at-crash jobs re-enter their
// tenant's queue in original submission order.
func TestRecoverRequeuesQueuedInOrder(t *testing.T) {
	base, root, storeDir := durableFixture(t)
	store1, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 3; id++ {
		err := store1.Append(jobstore.Record{
			ID:          id,
			Tenant:      "alice",
			Payload:     []byte(fmt.Sprintf(`{"iters":1,"seed":%d}`, id)),
			State:       "queued",
			SubmittedAt: time.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	store1.Abort()

	store2, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	sys := durableSystem(t, root)
	defer sys.Close()
	svc := NewSolverService(sys, base, Config{MaxRunning: 1, QueueDepth: 8, Store: store2})
	rec, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Requeued != 3 || rec.Resumed != 0 {
		t.Fatalf("recovery stats = %+v, want 3 requeued", rec)
	}
	for id := int64(1); id <= 3; id++ {
		if _, err := svc.Manager.Result(id); err != nil {
			t.Fatalf("requeued job %d: %v", id, err)
		}
	}
	var prev time.Time
	for id := int64(1); id <= 3; id++ {
		st, err := svc.Manager.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.StartedAt.Before(prev) {
			t.Fatalf("job %d started before job %d — requeue order lost", id, id-1)
		}
		prev = st.StartedAt
	}
	svc.Manager.Drain()
}

// TestDrainContextBounded: a drain whose context expires returns the
// context error while the straggler keeps running, and a later unbounded
// drain completes once the job does.
func TestDrainContextBounded(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1})
	release := make(chan struct{})
	started := make(chan int64, 1)
	if _, err := m.Submit(Request{Tenant: "a"}, gatedWork(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := m.DrainContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded drain returned %v, want deadline exceeded", err)
	}
	if _, running := m.Counts(); running != 1 {
		t.Fatalf("straggler was killed by the bounded drain (running=%d)", running)
	}
	close(release)
	if err := m.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainContextNoGoroutineLeak: expired bounded drains must not park a
// watcher goroutine until the manager next goes idle — a long-lived
// embedder issuing periodic bounded drains while jobs are in flight would
// otherwise accumulate stuck goroutines.
func TestDrainContextNoGoroutineLeak(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1})
	release := make(chan struct{})
	started := make(chan int64, 1)
	if _, err := m.Submit(Request{Tenant: "a"}, gatedWork(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	baseline := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		if err := m.DrainContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
			cancel()
			t.Fatalf("bounded drain %d returned %v, want deadline exceeded", i, err)
		}
		cancel()
	}
	// The straggler is still running (the manager is not idle), so any
	// leaked watcher would still be parked on the cond var. Allow a little
	// scheduler slack for AfterFunc goroutines to retire.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutines grew from %d to %d across 10 expired drains", baseline, n)
	}
	close(release)
	if err := m.DrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}
