package jobs

import (
	"net/http/httptest"
	"testing"
)

func TestHealthEndpoints(t *testing.T) {
	h := &Health{}

	rec := httptest.NewRecorder()
	h.Healthz(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.Readyz(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("readyz before drain = %d", rec.Code)
	}

	h.SetDraining(true)
	rec = httptest.NewRecorder()
	h.Healthz(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("healthz during drain = %d (liveness must hold)", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.Readyz(rec, nil)
	if rec.Code != 503 {
		t.Fatalf("readyz during drain = %d, want 503", rec.Code)
	}
	if !h.Draining() {
		t.Fatal("Draining() = false")
	}
}
