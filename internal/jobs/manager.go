package jobs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dooc/internal/obs"
)

// Config parameterizes a Manager.
type Config struct {
	// MaxRunning bounds concurrently executing jobs (default 2).
	MaxRunning int
	// QueueDepth bounds jobs waiting across all tenants (default 16);
	// submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// MemoryBudget, when > 0, is the aggregate MemoryBytes the manager
	// admits across queued and running jobs; submissions beyond it fail
	// with ErrQuotaExceeded.
	MemoryBudget int64
	// AgingStep is the queue age that buys one effective priority point,
	// preventing starvation of low-priority tenants (default 1s).
	AgingStep time.Duration
	// TenantWeight scales a tenant's priorities (default 1 per tenant).
	TenantWeight map[string]int
	// Obs receives the manager's metric series (nil disables).
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.MaxRunning <= 0 {
		c.MaxRunning = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.AgingStep <= 0 {
		c.AgingStep = time.Second
	}
}

// Job is the manager's record of one submission. Exported fields are
// immutable after Submit; mutable state is guarded by the manager's lock
// and read through Status.
type Job struct {
	ID           int64
	Tenant       string
	Priority     int
	MemoryBytes  int64
	ScratchBytes int64

	work   Work
	cancel chan struct{}
	done   chan struct{}

	// guarded by Manager.mu
	state             State
	submitted         time.Time
	started, finished time.Time
	queueWait         time.Duration
	cancelRequested   bool
	result            []byte
	err               error
}

// Manager owns job lifecycle: admission, per-tenant FIFO queues under
// weighted priorities with aging, a bounded run pool, cancellation, and
// result retrieval. Dispatch is event-driven — every submit, completion,
// and cancellation re-evaluates the queues; no timers are involved.
type Manager struct {
	cfg Config
	m   managerMetrics

	mu       sync.Mutex
	idle     *sync.Cond // broadcast when no job is queued or running
	seq      int64
	jobs     map[int64]*Job
	queues   map[string][]*Job // per-tenant FIFO of queued jobs
	queued   int
	running  int
	memInUse int64
	draining bool
}

// NewManager builds a manager; zero config fields take defaults.
func NewManager(cfg Config) *Manager {
	cfg.fill()
	m := &Manager{
		cfg:    cfg,
		m:      newManagerMetrics(cfg.Obs),
		jobs:   make(map[int64]*Job),
		queues: make(map[string][]*Job),
	}
	m.idle = sync.NewCond(&m.mu)
	return m
}

// Submit admits a job or rejects it immediately with ErrDraining,
// ErrQueueFull, or ErrQuotaExceeded — it never blocks. The returned Job's
// ID is stable; its progress is read via Status/Result.
func (m *Manager) Submit(req Request, work Work) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.m.rejected("draining").Inc()
		return nil, ErrDraining
	}
	if m.queued >= m.cfg.QueueDepth {
		m.m.rejected("queue_full").Inc()
		return nil, fmt.Errorf("%w: depth %d", ErrQueueFull, m.cfg.QueueDepth)
	}
	if m.cfg.MemoryBudget > 0 && m.memInUse+req.MemoryBytes > m.cfg.MemoryBudget {
		m.m.rejected("memory_quota").Inc()
		return nil, fmt.Errorf("%w: %d in use + %d requested > budget %d",
			ErrQuotaExceeded, m.memInUse, req.MemoryBytes, m.cfg.MemoryBudget)
	}
	m.seq++
	j := &Job{
		ID:           m.seq,
		Tenant:       req.Tenant,
		Priority:     req.Priority,
		MemoryBytes:  req.MemoryBytes,
		ScratchBytes: req.ScratchBytes,
		work:         work,
		cancel:       make(chan struct{}),
		done:         make(chan struct{}),
		state:        StateQueued,
		submitted:    time.Now(),
	}
	m.jobs[j.ID] = j
	m.queues[j.Tenant] = append(m.queues[j.Tenant], j)
	m.queued++
	m.memInUse += j.MemoryBytes
	m.m.submitted(j.Tenant).Inc()
	m.m.queuedG.Set(int64(m.queued))
	m.dispatchLocked()
	return j, nil
}

func (m *Manager) weight(tenant string) int {
	if w, ok := m.cfg.TenantWeight[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// score ranks a queued job: weighted priority plus queue-age measured in
// AgingSteps, so any job's effective priority eventually dominates and
// starvation is bounded.
func (m *Manager) score(j *Job, now time.Time) float64 {
	return float64(m.weight(j.Tenant)*j.Priority) +
		float64(now.Sub(j.submitted))/float64(m.cfg.AgingStep)
}

// dispatchLocked starts queued jobs while run slots are free. Only tenant
// queue heads compete (per-tenant FIFO); among heads the highest score
// wins, ties to the earliest submission.
func (m *Manager) dispatchLocked() {
	now := time.Now()
	for m.running < m.cfg.MaxRunning && m.queued > 0 {
		var best *Job
		var bestScore float64
		for _, q := range m.queues {
			if len(q) == 0 {
				continue
			}
			h := q[0]
			sc := m.score(h, now)
			if best == nil || sc > bestScore || (sc == bestScore && h.ID < best.ID) {
				best, bestScore = h, sc
			}
		}
		if best == nil {
			return
		}
		q := m.queues[best.Tenant]
		m.queues[best.Tenant] = q[1:]
		if len(q) == 1 {
			delete(m.queues, best.Tenant)
		}
		m.queued--
		m.running++
		best.state = StateAdmitted
		best.queueWait = now.Sub(best.submitted)
		m.m.queueWait.Observe(best.queueWait.Seconds())
		m.m.queuedG.Set(int64(m.queued))
		m.m.runningG.Set(int64(m.running))
		go m.run(best)
	}
}

func (m *Manager) run(j *Job) {
	m.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	m.mu.Unlock()

	result, err := j.work(j.ID, j.cancel)

	m.mu.Lock()
	defer m.mu.Unlock()
	j.finished = time.Now()
	j.result, j.err = result, err
	switch {
	case err == nil:
		// A completion that raced a cancel request still counts as done:
		// the result is valid.
		j.state = StateDone
	case j.cancelRequested:
		j.state = StateCancelled
		j.err = fmt.Errorf("%w: %v", ErrCancelled, err)
	default:
		j.state = StateFailed
	}
	m.finishLocked(j)
}

// finishLocked retires a job that reached a terminal state: releases its
// admission accounting, publishes done, and refills run slots.
func (m *Manager) finishLocked(j *Job) {
	m.running--
	m.memInUse -= j.MemoryBytes
	m.m.completed(j.state).Inc()
	m.m.latency(j.Tenant).Observe(j.finished.Sub(j.submitted).Seconds())
	m.m.runningG.Set(int64(m.running))
	close(j.done)
	m.dispatchLocked()
	if m.queued == 0 && m.running == 0 {
		m.idle.Broadcast()
	}
}

// Cancel requests cancellation. A queued job is removed immediately; a
// running job's cancel channel closes and the engine retires its tasks.
// Cancelling a finished job is a no-op.
func (m *Manager) Cancel(id int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued:
		q := m.queues[j.Tenant]
		for i, qj := range q {
			if qj == j {
				m.queues[j.Tenant] = append(q[:i], q[i+1:]...)
				break
			}
		}
		if len(m.queues[j.Tenant]) == 0 {
			delete(m.queues, j.Tenant)
		}
		m.queued--
		m.memInUse -= j.MemoryBytes
		j.state = StateCancelled
		j.err = ErrCancelled
		j.finished = time.Now()
		m.m.completed(StateCancelled).Inc()
		m.m.latency(j.Tenant).Observe(j.finished.Sub(j.submitted).Seconds())
		m.m.queuedG.Set(int64(m.queued))
		close(j.done)
		if m.queued == 0 && m.running == 0 {
			m.idle.Broadcast()
		}
	case StateAdmitted, StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			close(j.cancel)
		}
	}
	return nil
}

// Result blocks until the job finishes and returns its payload or error.
func (m *Manager) Result(id int64) ([]byte, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	<-j.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.result, j.err
}

// Status returns a snapshot of one job.
func (m *Manager) Status(id int64) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return m.statusLocked(j), nil
}

func (m *Manager) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:           j.ID,
		Tenant:       j.Tenant,
		Priority:     j.Priority,
		State:        j.state.String(),
		SubmittedAt:  j.submitted,
		StartedAt:    j.started,
		FinishedAt:   j.finished,
		QueueWait:    j.queueWait.Seconds(),
		MemoryBytes:  j.MemoryBytes,
		ScratchBytes: j.ScratchBytes,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// List returns snapshots of every job the manager has seen, ordered by ID.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Drain stops admission (subsequent Submits fail with ErrDraining) and
// blocks until every queued and running job reaches a terminal state.
func (m *Manager) Drain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.draining = true
	for m.queued > 0 || m.running > 0 {
		m.idle.Wait()
	}
}

// Counts returns the current queued and running totals (for tests and
// readiness probes).
func (m *Manager) Counts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued, m.running
}
