package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dooc/internal/jobstore"
	"dooc/internal/obs"
	"dooc/internal/proxy"
)

// Config parameterizes a Manager.
type Config struct {
	// MaxRunning bounds concurrently executing jobs (default 2).
	MaxRunning int
	// QueueDepth bounds jobs waiting across all tenants (default 16);
	// submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// MemoryBudget, when > 0, is the aggregate MemoryBytes the manager
	// admits across queued and running jobs; submissions beyond it fail
	// with ErrQuotaExceeded.
	MemoryBudget int64
	// AgingStep is the queue age that buys one effective priority point,
	// preventing starvation of low-priority tenants (default 1s).
	AgingStep time.Duration
	// TenantWeight scales a tenant's priorities (default 1 per tenant).
	TenantWeight map[string]int
	// Obs receives the manager's metric series (nil disables).
	Obs *obs.Registry
	// Store, when non-nil, makes the manager durable: every lifecycle
	// transition is journaled (fsynced) before it is acknowledged, done
	// results persist as store files, and Recover rebuilds the control
	// plane after a restart.
	Store *jobstore.Store
	// Retire, when non-nil, is called (outside the manager lock) after a
	// job reaches a terminal state — the service's hook for purging the
	// job's scratch artifacts. It receives the final state so resumable
	// residue (checkpoints of a job failed by shutdown) can be kept.
	Retire func(id int64, final State)
	// Trace receives lifecycle spans for every job (nil disables). Spans
	// carry the job's causal identity, so a client trace and this tracer's
	// output compose into one tree under obs.ValidateCausal.
	Trace *obs.Tracer
	// SLO, when non-nil, observes each terminal job's queue-wait, run, and
	// end-to-end latency against the configured objectives.
	SLO *SLOTracker
	// FlightEvents bounds each job's flight-recorder ring
	// (obs.DefaultFlightEvents when 0). The ring snapshot is journaled with
	// every record, so the bound also caps journal-entry growth.
	FlightEvents int
	// Proxy, when non-nil, is the pass-by-reference result plane: the
	// solver service registers each done job's iterate as a refcounted
	// handle instead of eagerly deleting its arrays, and retirement routes
	// through the registry's refcounts.
	Proxy *proxy.Registry
	// ProxyFetch, when non-nil, materializes a foreign-scope proxy from its
	// origin node over the cluster tier (owner-forwarded fetch) — how a
	// chained job consumes an input produced on another peer without the
	// bytes crossing a client link.
	ProxyFetch func(scope, name string, epoch uint64) ([]byte, error)
}

func (c *Config) fill() {
	if c.MaxRunning <= 0 {
		c.MaxRunning = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.AgingStep <= 0 {
		c.AgingStep = time.Second
	}
}

// Job is the manager's record of one submission. Exported fields are
// immutable after Submit; mutable state is guarded by the manager's lock
// and read through Status.
type Job struct {
	ID           int64
	Key          string
	Tenant       string
	Priority     int
	MemoryBytes  int64
	ScratchBytes int64

	work    Work
	payload []byte
	cancel  chan struct{}
	done    chan struct{}

	// guarded by Manager.mu
	state             State
	submitted         time.Time
	started, finished time.Time
	queueWait         time.Duration
	cancelRequested   bool
	result            []byte
	err               error
	resumed           int
	resultFile        string
	resultSHA         string
	proxyHandle       proxy.Handle

	// loadOnce gates the one durable-result disk read however many clients
	// poll Result concurrently; loadErr is its sticky failure.
	loadOnce sync.Once
	loadErr  error

	// trace is the job's root span context (the anchor every lifecycle and
	// engine span parents under); parentSpan links it to the submitting
	// client's span, when one travelled with the request. runSpan is the
	// running-phase span, handed to the engine as the parent of its
	// per-iteration spans. flight is the job's bounded event ring.
	trace      obs.SpanContext
	parentSpan obs.SpanID
	runSpan    obs.SpanID
	flight     *obs.FlightRecorder
}

// Manager owns job lifecycle: admission, per-tenant FIFO queues under
// weighted priorities with aging, a bounded run pool, cancellation, and
// result retrieval. Dispatch is event-driven — every submit, completion,
// and cancellation re-evaluates the queues; no timers are involved.
//
// With Config.Store set the lifecycle is durable: the queued record is
// journaled before Submit returns, terminal records before the job is
// published as finished, and Recover replays the journal into a manager
// that picks up exactly where the crashed one stopped.
type Manager struct {
	cfg Config
	m   managerMetrics

	mu       sync.Mutex
	idle     *sync.Cond // broadcast when no job is queued or running
	seq      int64
	jobs     map[int64]*Job
	byKey    map[string]*Job   // idempotency-key index
	queues   map[string][]*Job // per-tenant FIFO of queued jobs
	queued   int
	running  int
	memInUse int64
	draining bool
}

// NewManager builds a manager; zero config fields take defaults.
func NewManager(cfg Config) *Manager {
	cfg.fill()
	m := &Manager{
		cfg:    cfg,
		m:      newManagerMetrics(cfg.Obs),
		jobs:   make(map[int64]*Job),
		byKey:  make(map[string]*Job),
		queues: make(map[string][]*Job),
	}
	m.idle = sync.NewCond(&m.mu)
	if cfg.Trace.Enabled() {
		cfg.Trace.SetProcessName(obs.PidJobs, "jobs.Manager")
	}
	return m
}

// Store exposes the durable backing store (nil when the manager is
// in-memory only).
func (m *Manager) Store() *jobstore.Store { return m.cfg.Store }

// Submit admits a job or rejects it immediately with ErrDraining,
// ErrQueueFull, or ErrQuotaExceeded — it never blocks. The returned Job's
// ID is stable; its progress is read via Status/Result.
//
// A keyed request that matches an existing job (queued, running, or
// terminal) returns that job without enqueuing: duplicate submits across
// client retries and reconnects are exactly-once. With a durable store the
// queued record is fsynced before Submit returns; a submission that cannot
// be journaled is not admitted.
func (m *Manager) Submit(req Request, work Work) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if req.Key != "" {
		if j, ok := m.byKey[req.Key]; ok {
			m.m.dedupedC.Inc()
			return j, nil
		}
	}
	if m.draining {
		m.m.rejected("draining").Inc()
		return nil, ErrDraining
	}
	if m.queued >= m.cfg.QueueDepth {
		m.m.rejected("queue_full").Inc()
		return nil, fmt.Errorf("%w: depth %d", ErrQueueFull, m.cfg.QueueDepth)
	}
	if m.cfg.MemoryBudget > 0 && m.memInUse+req.MemoryBytes > m.cfg.MemoryBudget {
		m.m.rejected("memory_quota").Inc()
		return nil, fmt.Errorf("%w: %d in use + %d requested > budget %d",
			ErrQuotaExceeded, m.memInUse, req.MemoryBytes, m.cfg.MemoryBudget)
	}
	m.seq++
	j := &Job{
		ID:           m.seq,
		Key:          req.Key,
		Tenant:       req.Tenant,
		Priority:     req.Priority,
		MemoryBytes:  req.MemoryBytes,
		ScratchBytes: req.ScratchBytes,
		work:         work,
		payload:      req.Payload,
		cancel:       make(chan struct{}),
		done:         make(chan struct{}),
		state:        StateQueued,
		submitted:    time.Now(),
	}
	// Causal identity: join the submitter's trace when one travelled with
	// the request, mint a fresh one otherwise. The flight recorder starts
	// with the queued transition so even a job that dies before running
	// leaves an account of itself in the journal.
	if req.Trace.Valid() {
		j.parentSpan = req.Trace.Span
		j.trace = obs.SpanContext{Trace: req.Trace.Trace, Span: obs.NewSpanID()}
	} else {
		j.trace = obs.NewSpanContext()
	}
	j.flight = obs.NewFlightRecorder(m.cfg.FlightEvents)
	j.flight.Record("transition", "queued", j.trace, j.parentSpan, map[string]string{"tenant": j.Tenant})
	// Journal-then-admit: an unjournaled submission must not be
	// acknowledged, or a restart would silently drop a job the client was
	// told is queued.
	if err := m.journalLocked(j); err != nil {
		return nil, fmt.Errorf("jobs: journaling submission: %w", err)
	}
	m.jobs[j.ID] = j
	if j.Key != "" {
		m.byKey[j.Key] = j
	}
	m.queues[j.Tenant] = append(m.queues[j.Tenant], j)
	m.queued++
	m.memInUse += j.MemoryBytes
	m.m.submitted(j.Tenant).Inc()
	m.m.queuedG.Set(int64(m.queued))
	m.dispatchLocked()
	return j, nil
}

// journalLocked appends the job's current record to the durable store
// (no-op without one).
func (m *Manager) journalLocked(j *Job) error {
	if m.cfg.Store == nil {
		return nil
	}
	return m.cfg.Store.Append(m.recordLocked(j))
}

// recordLocked snapshots a job as its durable record.
func (m *Manager) recordLocked(j *Job) jobstore.Record {
	rec := jobstore.Record{
		ID:           j.ID,
		Key:          j.Key,
		Tenant:       j.Tenant,
		Priority:     j.Priority,
		MemoryBytes:  j.MemoryBytes,
		ScratchBytes: j.ScratchBytes,
		Payload:      j.payload,
		State:        j.state.String(),
		SubmittedAt:  j.submitted,
		StartedAt:    j.started,
		FinishedAt:   j.finished,
		ResultFile:   j.resultFile,
		ResultSHA:    j.resultSHA,
		Resumed:      j.resumed,
	}
	if j.trace.Valid() {
		rec.TraceID = j.trace.Trace.String()
		rec.RootSpan = j.trace.Span.String()
	}
	rec.Events = j.flight.Events()
	if j.err != nil {
		rec.Err = j.err.Error()
	}
	return rec
}

func (m *Manager) weight(tenant string) int {
	if w, ok := m.cfg.TenantWeight[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// score ranks a queued job: weighted priority plus queue-age measured in
// AgingSteps, so any job's effective priority eventually dominates and
// starvation is bounded.
func (m *Manager) score(j *Job, now time.Time) float64 {
	return float64(m.weight(j.Tenant)*j.Priority) +
		float64(now.Sub(j.submitted))/float64(m.cfg.AgingStep)
}

// dispatchLocked starts queued jobs while run slots are free. Only tenant
// queue heads compete (per-tenant FIFO); among heads the highest score
// wins, ties to the earliest submission.
func (m *Manager) dispatchLocked() {
	now := time.Now()
	for m.running < m.cfg.MaxRunning && m.queued > 0 {
		var best *Job
		var bestScore float64
		for _, q := range m.queues {
			if len(q) == 0 {
				continue
			}
			h := q[0]
			sc := m.score(h, now)
			if best == nil || sc > bestScore || (sc == bestScore && h.ID < best.ID) {
				best, bestScore = h, sc
			}
		}
		if best == nil {
			return
		}
		q := m.queues[best.Tenant]
		m.queues[best.Tenant] = q[1:]
		if len(q) == 1 {
			delete(m.queues, best.Tenant)
		}
		m.queued--
		m.running++
		best.state = StateAdmitted
		best.queueWait = now.Sub(best.submitted)
		best.flight.Record("transition", "admitted", best.trace.Child(), best.trace.Span, nil)
		if m.cfg.Trace.Enabled() {
			m.cfg.Trace.SetThreadName(obs.PidJobs, int(best.ID), fmt.Sprintf("job%d", best.ID))
			m.cfg.Trace.SpanCtx(fmt.Sprintf("job%d queued", best.ID), "jobs", obs.PidJobs, int(best.ID),
				best.submitted, now, best.trace.Child(), best.trace.Span,
				map[string]any{"tenant": best.Tenant})
		}
		// Best-effort journal: if the admitted record is lost, replay
		// re-queues the job from its queued record — same outcome, repeated
		// queue wait.
		m.journalLocked(best)
		m.m.queueWait.Observe(best.queueWait.Seconds())
		m.m.queuedG.Set(int64(m.queued))
		m.m.runningG.Set(int64(m.running))
		go m.run(best)
	}
}

func (m *Manager) run(j *Job) {
	m.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	// The running span is the causal parent the engine hangs its
	// per-iteration spans under; the service reads it via RunSpanContext.
	j.runSpan = obs.NewSpanID()
	j.flight.Record("transition", "running", obs.SpanContext{Trace: j.trace.Trace, Span: j.runSpan}, j.trace.Span, nil)
	// Best-effort: a lost running record replays as admitted and re-runs.
	m.journalLocked(j)
	m.mu.Unlock()

	result, err := j.work(j.ID, j.cancel)

	// Persist the result before taking the lock: the job is still
	// StateRunning, so its fields are stable, and a multi-MB write + fsync
	// must not serialize Submit/Status/List/Cancel behind disk I/O.
	var resultFile, resultSHA string
	var saveErr error
	if err == nil && m.cfg.Store != nil {
		resultFile, resultSHA, saveErr = m.cfg.Store.SaveResult(j.ID, result)
	}

	m.mu.Lock()
	j.finished = time.Now()
	j.result, j.err = result, err
	switch {
	case err == nil:
		// A completion that raced a cancel request still counts as done:
		// the result is valid.
		j.state = StateDone
	case j.cancelRequested:
		j.state = StateCancelled
		j.err = fmt.Errorf("%w: %v", ErrCancelled, err)
	default:
		j.state = StateFailed
	}
	if j.state == StateDone && m.cfg.Store != nil {
		if saveErr == nil {
			j.resultFile, j.resultSHA = resultFile, resultSHA
		} else {
			j.state = StateFailed
			j.err = fmt.Errorf("jobs: persisting result: %w", saveErr)
		}
	}
	terminalAttrs := map[string]string{}
	if j.err != nil {
		terminalAttrs["error"] = j.err.Error()
	}
	j.flight.Record("transition", j.state.String(), j.trace.Child(), j.trace.Span, terminalAttrs)
	// The terminal journal is strict for done: an unjournaled completion
	// would be re-run by replay while the client saw success. Flip it to
	// failed (recoverable: the job re-runs from its checkpoints) and record
	// that best-effort.
	if jerr := m.journalLocked(j); jerr != nil && j.state == StateDone {
		j.state = StateFailed
		j.err = fmt.Errorf("jobs: journaling completion: %w", jerr)
		j.flight.Record("transition", j.state.String(), j.trace.Child(), j.trace.Span,
			map[string]string{"error": j.err.Error()})
		m.journalLocked(j)
	}
	if m.cfg.Trace.Enabled() {
		m.cfg.Trace.SpanCtx(fmt.Sprintf("job%d run", j.ID), "jobs", obs.PidJobs, int(j.ID),
			j.started, j.finished, obs.SpanContext{Trace: j.trace.Trace, Span: j.runSpan}, j.trace.Span,
			map[string]any{"state": j.state.String()})
		m.cfg.Trace.SpanCtx(fmt.Sprintf("job%d", j.ID), "jobs", obs.PidJobs, int(j.ID),
			j.submitted, j.finished, j.trace, j.parentSpan,
			map[string]any{"tenant": j.Tenant, "state": j.state.String()})
	}
	final := j.state
	m.finishLocked(j)
	m.mu.Unlock()
	if m.cfg.Retire != nil {
		m.cfg.Retire(j.ID, final)
	}
}

// finishLocked retires a job that reached a terminal state: releases its
// admission accounting, publishes done, and refills run slots.
func (m *Manager) finishLocked(j *Job) {
	m.running--
	m.memInUse -= j.MemoryBytes
	m.m.completed(j.state).Inc()
	m.m.latency(j.Tenant).Observe(j.finished.Sub(j.submitted).Seconds())
	m.m.runningG.Set(int64(m.running))
	m.observeSLOLocked(j)
	close(j.done)
	m.dispatchLocked()
	if m.queued == 0 && m.running == 0 {
		m.idle.Broadcast()
	}
}

// observeSLOLocked feeds a terminal job's latencies to the SLO tracker. A
// job cancelled before admission has no run latency; its whole life was
// queue wait.
func (m *Manager) observeSLOLocked(j *Job) {
	if m.cfg.SLO == nil {
		return
	}
	e2e := j.finished.Sub(j.submitted)
	ran := !j.started.IsZero()
	qw := j.queueWait
	var run time.Duration
	if ran {
		run = j.finished.Sub(j.started)
	} else {
		qw = e2e
	}
	m.cfg.SLO.Observe(j.Tenant, qw, run, e2e, ran)
}

// Cancel requests cancellation. A queued job is removed immediately; a
// running job's cancel channel closes and the engine retires its tasks.
// Cancelling a finished job is a no-op.
func (m *Manager) Cancel(id int64) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	retired := false
	switch j.state {
	case StateQueued:
		q := m.queues[j.Tenant]
		for i, qj := range q {
			if qj == j {
				m.queues[j.Tenant] = append(q[:i], q[i+1:]...)
				break
			}
		}
		if len(m.queues[j.Tenant]) == 0 {
			delete(m.queues, j.Tenant)
		}
		m.queued--
		m.memInUse -= j.MemoryBytes
		j.state = StateCancelled
		j.err = ErrCancelled
		j.finished = time.Now()
		j.flight.Record("transition", "cancelled", j.trace.Child(), j.trace.Span,
			map[string]string{"while": "queued"})
		// Best-effort: replay of a lost cancelled record re-queues the job;
		// the client's next Status shows it and can cancel again.
		m.journalLocked(j)
		if m.cfg.Trace.Enabled() {
			m.cfg.Trace.SpanCtx(fmt.Sprintf("job%d", j.ID), "jobs", obs.PidJobs, int(j.ID),
				j.submitted, j.finished, j.trace, j.parentSpan,
				map[string]any{"tenant": j.Tenant, "state": "cancelled"})
		}
		m.m.completed(StateCancelled).Inc()
		m.m.latency(j.Tenant).Observe(j.finished.Sub(j.submitted).Seconds())
		m.m.queuedG.Set(int64(m.queued))
		m.observeSLOLocked(j)
		close(j.done)
		retired = true
		if m.queued == 0 && m.running == 0 {
			m.idle.Broadcast()
		}
	case StateAdmitted, StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.flight.Record("note", "cancel-requested", j.trace.Child(), j.trace.Span, nil)
			close(j.cancel)
		}
	}
	m.mu.Unlock()
	if retired && m.cfg.Retire != nil {
		m.cfg.Retire(j.ID, StateCancelled)
	}
	return nil
}

// Result blocks until the job finishes and returns its payload or error.
// Under a durable store, a done job recovered from a previous process
// lifetime serves its result from the store (verified against the
// journaled SHA-256). The loaded bytes are memoized and the disk read runs
// outside the manager lock, single-flight: N clients polling one result
// pay one read and one allocation between them, and a multi-MB load never
// serializes Submit/Status/List/Cancel behind disk I/O.
func (m *Manager) Result(id int64) ([]byte, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	<-j.done
	m.mu.Lock()
	result, jerr, file := j.result, j.err, j.resultFile
	m.mu.Unlock()
	if result != nil || jerr != nil || file == "" || m.cfg.Store == nil {
		return result, jerr
	}
	j.loadOnce.Do(func() {
		m.mu.Lock()
		rec := m.recordLocked(j)
		m.mu.Unlock()
		data, err := m.cfg.Store.LoadResult(rec)
		m.mu.Lock()
		if err != nil {
			j.loadErr = err
		} else {
			j.result = data
		}
		m.mu.Unlock()
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.loadErr != nil {
		return nil, j.loadErr
	}
	return j.result, j.err
}

// ResultProxy blocks until the job finishes and returns its registered
// result handle — the pass-by-reference alternative to Result: ~100 bytes
// naming the iterate instead of the iterate itself. Fails with the job's
// error for failed/cancelled jobs and with ErrNoProxy when no handle was
// registered (no registry configured, or registration rejected by quota).
func (m *Manager) ResultProxy(id int64) (proxy.Handle, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return proxy.Handle{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	<-j.done
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.err != nil {
		return proxy.Handle{}, j.err
	}
	if !j.proxyHandle.Valid() {
		return proxy.Handle{}, fmt.Errorf("%w: job %d", ErrNoProxy, id)
	}
	return j.proxyHandle, nil
}

// SetProxy records a job's registered result handle (the solver service
// calls it at registration time and again when recovery re-associates
// journal-recovered handles with their jobs).
func (m *Manager) SetProxy(id int64, h proxy.Handle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.proxyHandle = h
	}
}

// Status returns a snapshot of one job.
func (m *Manager) Status(id int64) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return m.statusLocked(j), nil
}

func (m *Manager) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:           j.ID,
		Tenant:       j.Tenant,
		Priority:     j.Priority,
		State:        j.state.String(),
		SubmittedAt:  j.submitted,
		StartedAt:    j.started,
		FinishedAt:   j.finished,
		QueueWait:    j.queueWait.Seconds(),
		MemoryBytes:  j.MemoryBytes,
		ScratchBytes: j.ScratchBytes,
		Key:          j.Key,
		Resumed:      j.resumed,
		ResultSHA:    j.resultSHA,
	}
	if j.trace.Valid() {
		st.TraceID = j.trace.Trace.String()
	}
	if j.proxyHandle.Valid() {
		st.Proxy = j.proxyHandle.String()
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// List returns snapshots of every job the manager has seen, ordered by ID.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// History returns a page of terminal jobs ordered by ID, plus the total
// terminal count. offset/limit paginate; limit <= 0 means the rest. The
// window includes jobs finished before a restart — they were replayed from
// the durable store.
func (m *Manager) History(offset, limit int) ([]JobStatus, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	term := make([]JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		if j.state.Terminal() {
			term = append(term, m.statusLocked(j))
		}
	}
	sort.Slice(term, func(i, k int) bool { return term[i].ID < term[k].ID })
	total := len(term)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	return term[offset:end], total
}

// RebuildWork reconstructs a job's work function from its journaled record
// during recovery — the service-level inverse of Request.Payload.
type RebuildWork func(rec jobstore.Record) (Work, error)

// RecoveryStats summarizes what Recover reconstructed.
type RecoveryStats struct {
	// Historical terminal records carried over (served by Status/History).
	Historical int
	// Requeued jobs were queued at the crash and re-queued in original
	// submission order.
	Requeued int
	// Resumed jobs were admitted or running at the crash and were
	// re-admitted (their work functions resume from checkpoints).
	Resumed int
	// Failed records could not be rebuilt and were marked failed.
	Failed int
	// Torn reports the WAL ended in a partial record (repaired).
	Torn bool
	// ReplayDuration is the store's replay wall time at Open.
	ReplayDuration time.Duration
}

// Recover replays the durable store into the manager: terminal jobs become
// history, queued jobs re-queue in original submission order, and
// interrupted (admitted/running) jobs re-admit with their Resumed count
// bumped — their rebuilt work functions pick up from the newest checkpoint.
// Call once, after NewManager and before serving traffic. No-op without a
// store.
func (m *Manager) Recover(rebuild RebuildWork) (RecoveryStats, error) {
	st := m.cfg.Store
	if st == nil {
		return RecoveryStats{}, nil
	}
	info := st.ReplayInfo()
	stats := RecoveryStats{Torn: info.Torn, ReplayDuration: info.Duration}
	m.mu.Lock()
	defer m.mu.Unlock()
	if max := st.MaxID(); max > m.seq {
		m.seq = max
	}
	for _, rec := range st.Records() {
		if _, ok := m.jobs[rec.ID]; ok {
			continue // replayed already (Recover called twice)
		}
		j := &Job{
			ID:           rec.ID,
			Key:          rec.Key,
			Tenant:       rec.Tenant,
			Priority:     rec.Priority,
			MemoryBytes:  rec.MemoryBytes,
			ScratchBytes: rec.ScratchBytes,
			payload:      rec.Payload,
			cancel:       make(chan struct{}),
			done:         make(chan struct{}),
			submitted:    rec.SubmittedAt,
			started:      rec.StartedAt,
			finished:     rec.FinishedAt,
			resumed:      rec.Resumed,
			resultFile:   rec.ResultFile,
			resultSHA:    rec.ResultSHA,
		}
		if rec.Err != "" {
			j.err = errors.New(rec.Err)
		}
		// Rebuild the causal identity and the pre-crash flight recorder from
		// the journal; these events are the only surviving account of what
		// the job did before the process died.
		if tr, err := obs.ParseTraceID(rec.TraceID); err == nil {
			if sp, err := obs.ParseSpanID(rec.RootSpan); err == nil {
				j.trace = obs.SpanContext{Trace: tr, Span: sp}
			}
		}
		j.flight = obs.NewFlightRecorder(m.cfg.FlightEvents)
		j.flight.Preload(rec.Events)
		m.jobs[j.ID] = j
		if j.Key != "" {
			m.byKey[j.Key] = j
		}
		state := stateFromString(rec.State)
		if state.Terminal() {
			j.state = state
			close(j.done)
			stats.Historical++
			continue
		}
		// A job that will run again needs a valid trace even if its record
		// predates tracing.
		if !j.trace.Valid() {
			j.trace = obs.NewSpanContext()
		}
		work, err := rebuild(rec)
		if err != nil {
			j.state = StateFailed
			j.err = fmt.Errorf("jobs: recovery cannot rebuild work: %w", err)
			j.finished = time.Now()
			j.flight.Record("transition", "failed", j.trace.Child(), j.trace.Span,
				map[string]string{"error": j.err.Error()})
			m.journalLocked(j)
			close(j.done)
			stats.Failed++
			continue
		}
		j.work = work
		if state == StateQueued {
			stats.Requeued++
			j.flight.Record("note", "recovered", j.trace.Child(), j.trace.Span,
				map[string]string{"from": rec.State})
		} else {
			// Interrupted mid-run: count the resumption and journal it, so a
			// crash loop is visible in the record.
			j.resumed++
			stats.Resumed++
			m.m.resumedC.Inc()
			j.flight.Record("note", "recovered", j.trace.Child(), j.trace.Span,
				map[string]string{"from": rec.State, "resumed": fmt.Sprint(j.resumed)})
			j.flight.Record("transition", "queued", j.trace.Child(), j.trace.Span, nil)
			m.journalLocked(j)
		}
		j.state = StateQueued
		m.queues[j.Tenant] = append(m.queues[j.Tenant], j)
		m.queued++
		m.memInUse += j.MemoryBytes
	}
	m.m.queuedG.Set(int64(m.queued))
	m.dispatchLocked()
	return stats, nil
}

// Drain stops admission (subsequent Submits fail with ErrDraining) and
// blocks until every queued and running job reaches a terminal state.
func (m *Manager) Drain() {
	m.DrainContext(context.Background())
}

// DrainContext is Drain with a bounded wait: it stops admission, journals
// the drain marker (so a restart can tell an interrupted drain from a
// crash — both resume the interrupted jobs), and waits for idle until ctx
// expires. On expiry the in-flight jobs keep running and keep journaling;
// under a durable store they are resumable after the process exits.
func (m *Manager) DrainContext(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	if m.cfg.Store != nil {
		m.cfg.Store.MarkDrain()
	}
	// Expiry broadcasts the idle cond so the wait below wakes and re-checks
	// ctx — no goroutine is left parked past the call's return, so repeated
	// bounded drains in a long-lived embedder do not accumulate leaks.
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.idle.Broadcast()
		m.mu.Unlock()
	})
	defer stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for (m.queued > 0 || m.running > 0) && ctx.Err() == nil {
		m.idle.Wait()
	}
	if m.queued == 0 && m.running == 0 {
		return nil
	}
	// In-flight jobs keep running and keep journaling; under a durable
	// store they are resumable after the process exits.
	return ctx.Err()
}

// Counts returns the current queued and running totals (for tests and
// readiness probes).
func (m *Manager) Counts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued, m.running
}

// FlightEvents returns the job's flight-recorder snapshot (oldest-first)
// plus how many older events the bounded ring dropped. After a crash the
// snapshot is whatever the journal preserved.
func (m *Manager) FlightEvents(id int64) ([]obs.FlightEvent, uint64, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return j.flight.Events(), j.flight.Dropped(), nil
}

// TraceContext returns the job's root span context.
func (m *Manager) TraceContext(id int64) (obs.SpanContext, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return obs.SpanContext{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return j.trace, nil
}

// RunSpanContext returns the job's running-phase span context — the causal
// parent a work function hands to the engine so per-iteration and per-task
// spans attach under the right lifecycle node. Zero before the job runs.
func (m *Manager) RunSpanContext(id int64) obs.SpanContext {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.runSpan.IsZero() {
		return obs.SpanContext{}
	}
	return obs.SpanContext{Trace: j.trace.Trace, Span: j.runSpan}
}
