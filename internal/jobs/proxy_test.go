package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dooc/internal/core"
	"dooc/internal/jobstore"
	"dooc/internal/proxy"
)

func proxyService(t *testing.T, reg *proxy.Registry) (*SolverService, *core.System) {
	t.Helper()
	svc, sys := newTestService(t, Config{MaxRunning: 2, QueueDepth: 16, Proxy: reg})
	t.Cleanup(reg.Close)
	return svc, sys
}

func retainReclaim(sys *core.System) func(proxy.Handle, []string) {
	return func(_ proxy.Handle, arrays []string) {
		for _, a := range arrays {
			core.DropArray(sys, a)
		}
	}
}

// TestProxyChainBitIdentical is the dataflow acceptance test: job A's
// registered result feeds job B by reference, and B's output is
// bit-identical to one uninterrupted run of iters(A)+iters(B) from A's
// seed. The consumer's named reference on A is released at B's retirement.
func TestProxyChainBitIdentical(t *testing.T) {
	reg := proxy.NewRegistry(proxy.Config{})
	svc, sys := proxyService(t, reg)

	a, err := svc.Submit(SolveRequest{Tenant: "alice", Iters: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	aBytes, err := svc.Manager.Result(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	h, err := svc.Manager.ResultProxy(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if h.Length != int64(len(aBytes)) {
		t.Fatalf("handle length %d, result %d bytes", h.Length, len(aBytes))
	}
	// Resolution through the registry reproduces the by-value bytes exactly
	// (collected from the retained arrays, SHA-verified).
	resolved, err := svc.ResolveProxy(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resolved, aBytes) {
		t.Fatal("resolved proxy bytes differ from the by-value result")
	}

	b, err := svc.Submit(SolveRequest{Tenant: "bob", Iters: 2, Input: h.Ref()})
	if err != nil {
		t.Fatal(err)
	}
	bBytes, err := svc.Manager.Result(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := serialReference(t, sys, svc.Base(), SolveRequest{Iters: 5, Seed: 7}, "chainref")
	if !bytes.Equal(bBytes, want) {
		t.Fatal("chained A->B result differs from the unchained 5-iteration run")
	}

	// B's retirement releases its consumer reference; A's handle settles
	// back to the origin lease alone.
	deadline := time.After(5 * time.Second)
	for {
		if _, refs, err := svc.ProxyStat(h.Ref()); err == nil && refs == 1 {
			break
		}
		select {
		case <-deadline:
			_, refs, err := svc.ProxyStat(h.Ref())
			t.Fatalf("A's refs never settled: refs=%d err=%v", refs, err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// B registered its own handle too — both jobs' results are addressable.
	if _, err := svc.Manager.ResultProxy(b.ID); err != nil {
		t.Fatalf("consumer job has no handle: %v", err)
	}
}

// TestProxyInputValidatedAtSubmit: a chained submit naming a handle the
// registry never issued is rejected up front with the typed error, not at
// run time.
func TestProxyInputValidatedAtSubmit(t *testing.T) {
	reg := proxy.NewRegistry(proxy.Config{})
	svc, _ := proxyService(t, reg)
	_, err := svc.Submit(SolveRequest{Tenant: "a", Iters: 1, Input: proxy.Ref{Name: "job99", Epoch: 1}})
	if !errors.Is(err, proxy.ErrUnknownProxy) {
		t.Fatalf("unknown input accepted: %v", err)
	}
}

// TestCancelledConsumerReleasesInput: failure-path teardown routes through
// the refcount — a consumer job cancelled before (or while) running still
// drops its named reference on the input handle.
func TestCancelledConsumerReleasesInput(t *testing.T) {
	reg := proxy.NewRegistry(proxy.Config{})
	svc, _ := newTestService(t, Config{MaxRunning: 1, QueueDepth: 16, Proxy: reg})
	t.Cleanup(reg.Close)

	a, err := svc.Submit(SolveRequest{Tenant: "alice", Iters: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := svc.ResultProxy(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single slot so the consumer stays queued, then cancel it.
	blocker, err := svc.Submit(SolveRequest{Tenant: "alice", Iters: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	consumer, err := svc.Submit(SolveRequest{Tenant: "bob", Iters: 1, Input: h.Ref()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.ProxyStat(h.Ref()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Manager.Cancel(consumer.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		_, refs, err := svc.ProxyStat(h.Ref())
		if err == nil && refs == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("cancelled consumer kept its input ref: refs=%d err=%v", refs, err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := svc.Manager.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestResultMemoizedSingleFlight: after a restart, a durable result is
// loaded from the store once — concurrent callers share one read, and
// sequential calls return the same backing allocation.
func TestResultMemoizedSingleFlight(t *testing.T) {
	base, root, storeDir := durableFixture(t)
	store, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys := durableSystem(t, root)
	svc := NewSolverService(sys, base, Config{MaxRunning: 1, QueueDepth: 4, Store: store})
	st, err := svc.Submit(SolveRequest{Tenant: "a", Iters: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.Manager.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	svc.Manager.Drain()
	sys.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sys2 := durableSystem(t, root)
	defer sys2.Close()
	svc2 := NewSolverService(sys2, base, Config{MaxRunning: 1, QueueDepth: 4, Store: re})
	if _, err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	const callers = 8
	results := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := svc2.Manager.Result(st.ID)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = got
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if !bytes.Equal(got, want) {
			t.Fatalf("caller %d got different bytes", i)
		}
		// Memoized: every caller shares the single loaded allocation.
		if len(got) > 0 && &got[0] != &results[0][0] {
			t.Fatalf("caller %d got a separate load (memoization broken)", i)
		}
	}
	svc2.Manager.Drain()
}

// TestProxyRecoveryReassociates: handles journaled through the job store
// survive a full restart — Recover rebuilds the registry, re-associates
// each handle with its job, and the handle resolves to the same bytes
// (served from the durable result after the in-memory arrays died with the
// old process).
func TestProxyRecoveryReassociates(t *testing.T) {
	base, root, storeDir := durableFixture(t)
	store, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys := durableSystem(t, root)
	reg := proxy.NewRegistry(proxy.Config{Store: store, Scope: "nodeA", OnReclaim: retainReclaim(sys)})
	svc := NewSolverService(sys, base, Config{MaxRunning: 1, QueueDepth: 4, Store: store, Proxy: reg})
	st, err := svc.Submit(SolveRequest{Tenant: "a", Iters: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.Manager.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	h, err := svc.ResultProxy(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	svc.Manager.Drain()
	reg.Close()
	sys.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sys2 := durableSystem(t, root)
	defer sys2.Close()
	reg2 := proxy.NewRegistry(proxy.Config{Store: re, Scope: "nodeA", OnReclaim: retainReclaim(sys2)})
	defer reg2.Close()
	svc2 := NewSolverService(sys2, base, Config{MaxRunning: 1, QueueDepth: 4, Store: re, Proxy: reg2})
	if _, err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	h2, err := svc2.ResultProxy(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("recovered handle %+v, want %+v", h2, h)
	}
	got, err := svc2.ResolveProxy(h2.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-restart resolve differs from the pre-crash result")
	}
	// Chaining still works across the restart: a consumer of the recovered
	// handle extends the pre-crash computation bit-identically.
	b, err := svc2.Submit(SolveRequest{Tenant: "b", Iters: 2, Input: h2.Ref()})
	if err != nil {
		t.Fatal(err)
	}
	bBytes, err := svc2.Manager.Result(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref := serialReference(t, sys2, base, SolveRequest{Iters: 5, Seed: 5}, "postcrash")
	if !bytes.Equal(bBytes, ref) {
		t.Fatal("post-restart chained result differs from the unchained run")
	}
	svc2.Manager.Drain()
}

// TestResultProxyWithoutRegistry: the by-reference surface fails typed, not
// silently, when the proxy plane is disabled.
func TestResultProxyWithoutRegistry(t *testing.T) {
	svc, _ := newTestService(t, Config{MaxRunning: 1})
	st, err := svc.Submit(SolveRequest{Tenant: "a", Iters: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Manager.Result(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Manager.ResultProxy(st.ID); !errors.Is(err, ErrNoProxy) {
		t.Fatalf("ResultProxy without registry: %v", err)
	}
	if _, err := svc.ResolveProxy(proxy.Ref{Name: "job1", Epoch: 1}); !errors.Is(err, ErrNoProxy) {
		t.Fatalf("ResolveProxy without registry: %v", err)
	}
}

// TestProxyReleaseReclaimsArrays: dropping the origin lease through the
// service surface reclaims the retained iterate arrays from storage.
func TestProxyReleaseReclaimsArrays(t *testing.T) {
	var mu sync.Mutex
	var reclaimed []string
	reg := proxy.NewRegistry(proxy.Config{OnReclaim: func(_ proxy.Handle, arrays []string) {
		mu.Lock()
		reclaimed = append(reclaimed, arrays...)
		mu.Unlock()
	}})
	svc, _ := proxyService(t, reg)
	st, err := svc.Submit(SolveRequest{Tenant: "a", Iters: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Manager.Result(st.ID); err != nil {
		t.Fatal(err)
	}
	h, err := svc.ResultProxy(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := svc.ProxyRelease(h.Ref(), ""); err != nil || n != 0 {
		t.Fatalf("release: n=%d err=%v", n, err)
	}
	mu.Lock()
	n := len(reclaimed)
	mu.Unlock()
	if n == 0 {
		t.Fatal("release reclaimed no arrays")
	}
	if _, err := svc.ResolveProxy(h.Ref()); !errors.Is(err, proxy.ErrProxyGone) {
		t.Fatalf("resolve after release: %v", err)
	}
	// The arrays the registry reclaimed are the job's final iterate.
	for _, a := range reclaimed {
		if want := fmt.Sprintf("job%d:", st.ID); len(a) < len(want) || a[:len(want)] != want {
			t.Fatalf("reclaimed foreign array %q", a)
		}
	}
}
