package jobs

import (
	"dooc/internal/obs"
)

// managerMetrics are the job layer's series. Labelled counters are
// resolved lazily (tenants and terminal states appear at runtime); the
// maps are only touched under the manager's lock, the counters themselves
// are atomics. With a nil registry everything is a no-op.
type managerMetrics struct {
	reg *obs.Registry

	queuedG   *obs.Gauge
	runningG  *obs.Gauge
	queueWait *obs.Histogram
	resumedC  *obs.Counter // dooc_jobs_resumed_total
	dedupedC  *obs.Counter // dooc_jobs_deduped_total

	perTenant    map[string]*obs.Counter   // dooc_jobs_submitted_total
	perReason    map[string]*obs.Counter   // dooc_jobs_rejected_total
	perState     map[State]*obs.Counter    // dooc_jobs_completed_total
	perTenantLat map[string]*obs.Histogram // dooc_jobs_latency_seconds
}

func newManagerMetrics(reg *obs.Registry) managerMetrics {
	return managerMetrics{
		reg:          reg,
		queuedG:      reg.Gauge("dooc_jobs_queued", "jobs waiting for a run slot"),
		runningG:     reg.Gauge("dooc_jobs_running", "jobs currently executing"),
		queueWait:    reg.Histogram("dooc_jobs_queue_wait_seconds", "time from submission to admission", nil),
		resumedC:     reg.Counter("dooc_jobs_resumed_total", "interrupted jobs re-admitted by recovery"),
		dedupedC:     reg.Counter("dooc_jobs_deduped_total", "keyed submissions matched to an existing job"),
		perTenant:    make(map[string]*obs.Counter),
		perReason:    make(map[string]*obs.Counter),
		perState:     make(map[State]*obs.Counter),
		perTenantLat: make(map[string]*obs.Histogram),
	}
}

func (m *managerMetrics) submitted(tenant string) *obs.Counter {
	c, ok := m.perTenant[tenant]
	if !ok {
		c = m.reg.Counter("dooc_jobs_submitted_total", "jobs accepted by admission control", obs.L("tenant", tenant))
		m.perTenant[tenant] = c
	}
	return c
}

func (m *managerMetrics) rejected(reason string) *obs.Counter {
	c, ok := m.perReason[reason]
	if !ok {
		c = m.reg.Counter("dooc_jobs_rejected_total", "submissions rejected by admission control", obs.L("reason", reason))
		m.perReason[reason] = c
	}
	return c
}

func (m *managerMetrics) completed(s State) *obs.Counter {
	c, ok := m.perState[s]
	if !ok {
		c = m.reg.Counter("dooc_jobs_completed_total", "jobs reaching a terminal state", obs.L("state", s.String()))
		m.perState[s] = c
	}
	return c
}

func (m *managerMetrics) latency(tenant string) *obs.Histogram {
	h, ok := m.perTenantLat[tenant]
	if !ok {
		h = m.reg.Histogram("dooc_jobs_latency_seconds", "submission-to-finish latency", nil, obs.L("tenant", tenant))
		m.perTenantLat[tenant] = h
	}
	return h
}
