// Package mfdn provides the in-core baseline the paper compares DOoC
// against: MFDn-style bulk-synchronous distributed iterated SpMV.
//
// Two artifacts live here:
//
//  1. An *executable* baseline (RunInCore): row-striped SpMV over the
//     in-process cluster, with an allgather of the iterate between
//     iterations — the classic in-core distribution whose communication
//     share grows with the number of ranks. It demonstrates, at laptop
//     scale and with real message passing, the effect that makes Table II's
//     comm fraction climb from 34% to 86%.
//  2. A *model-driven* regeneration of Table II (ModelTable2), evaluating
//     the calibrated Hopper cost model (internal/devices) on the published
//     problem sizes of Table I.
package mfdn

import (
	"fmt"
	"sync"
	"time"

	"dooc/internal/ci"
	"dooc/internal/devices"
	"dooc/internal/simnet"
	"dooc/internal/sparse"
)

// InCoreConfig configures the executable baseline.
type InCoreConfig struct {
	// Matrix is the full square matrix (replicating MFDn's in-core layout,
	// each rank keeps only its row stripe; the full matrix here is the
	// test's convenience handle).
	Matrix *sparse.CSR
	// Ranks is the number of distributed ranks.
	Ranks int
	// Iters is the number of iterations.
	Iters int
	// X0 is the starting vector.
	X0 []float64
	// LinkBandwidth, when positive, throttles inter-rank messages to this
	// many bytes/second of real time, making communication measurable.
	LinkBandwidth float64
}

// InCoreResult reports the baseline outcome.
type InCoreResult struct {
	X []float64
	// Total and Comm are wall-clock aggregates over ranks; CommFraction is
	// the average over ranks of per-rank comm share.
	Total        time.Duration
	Comm         time.Duration
	CommFraction float64
	NetworkBytes int64
}

// RunInCore executes the bulk-synchronous iterated SpMV baseline.
func RunInCore(cfg InCoreConfig) (*InCoreResult, error) {
	m := cfg.Matrix
	if m == nil || m.Rows != m.Cols {
		return nil, fmt.Errorf("mfdn: need a square matrix")
	}
	if cfg.Ranks <= 0 || cfg.Ranks > m.Rows {
		return nil, fmt.Errorf("mfdn: invalid rank count %d", cfg.Ranks)
	}
	if cfg.Iters <= 0 {
		return nil, fmt.Errorf("mfdn: invalid iteration count %d", cfg.Iters)
	}
	if len(cfg.X0) != m.Rows {
		return nil, fmt.Errorf("mfdn: x0 has %d entries, want %d", len(cfg.X0), m.Rows)
	}
	p, err := sparse.NewGridPartition(m.Rows, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	cluster, err := simnet.New(simnet.Config{Nodes: cfg.Ranks, LinkBandwidth: cfg.LinkBandwidth})
	if err != nil {
		return nil, err
	}
	// Row stripes, extracted up front (MFDn holds its stripe in core).
	stripes := make([]*sparse.CSR, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		stripe := &sparse.CSR{Rows: p.Size(r), Cols: m.Cols, RowPtr: make([]int64, p.Size(r)+1)}
		r0 := p.Start(r)
		base := m.RowPtr[r0]
		for i := 0; i < stripe.Rows; i++ {
			stripe.RowPtr[i+1] = m.RowPtr[r0+i+1] - base
		}
		stripe.ColIdx = m.ColIdx[base:m.RowPtr[r0+stripe.Rows]]
		stripe.Val = m.Val[base:m.RowPtr[r0+stripe.Rows]]
		stripes[r] = stripe
	}

	barrier := simnet.NewBarrier(cfg.Ranks)
	x := append([]float64(nil), cfg.X0...)
	next := make([]float64, m.Rows)
	commNanos := make([]int64, cfg.Ranks)
	totalNanos := make([]int64, cfg.Ranks)

	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			node := cluster.Node(r)
			start := time.Now()
			var comm time.Duration
			for it := 0; it < cfg.Iters; it++ {
				// Local multiply into the shared next vector (disjoint
				// stripes, so no data race).
				sparse.MulVec(stripes[r], x, next[p.Start(r):p.Start(r+1)])

				// Allgather the next iterate: send own part to every other
				// rank, receive theirs. Bytes modeled; payload by reference.
				t0 := time.Now()
				part := int64(8 * p.Size(r))
				for o := 0; o < cfg.Ranks; o++ {
					if o != r {
						node.Send(o, "xpart", it, part)
					}
				}
				for o := 0; o < cfg.Ranks-1; o++ {
					node.Recv("xpart")
				}
				barrier.Wait()
				comm += time.Since(t0)

				// Swap buffers once per iteration; rank 0 performs the swap
				// while everyone else waits (a second barrier keeps it
				// race-free, mirroring the Lanczos reorthogonalization
				// synchronization point the paper describes).
				if r == 0 {
					x, next = next, x
				}
				barrier.Wait()
			}
			commNanos[r] = int64(comm)
			totalNanos[r] = int64(time.Since(start))
		}(r)
	}
	wg.Wait()

	res := &InCoreResult{X: append([]float64(nil), x...), NetworkBytes: cluster.TotalNetworkBytes()}
	var fracSum float64
	for r := 0; r < cfg.Ranks; r++ {
		res.Total += time.Duration(totalNanos[r])
		res.Comm += time.Duration(commNanos[r])
		if totalNanos[r] > 0 {
			fracSum += float64(commNanos[r]) / float64(totalNanos[r])
		}
	}
	res.CommFraction = fracSum / float64(cfg.Ranks)
	return res, nil
}

// ModeledRow is one regenerated Table II row.
type ModeledRow struct {
	Name            string
	Np              int
	IterSeconds     float64
	CommFraction    float64
	CPUHoursPerIter float64
	TotalSeconds99  float64

	// Published values for side-by-side reporting.
	PubTotalSeconds float64
	PubCommFraction float64
	PubCPUHours     float64
}

// ModelTable2 regenerates Table II from the calibrated Hopper model and the
// published problem characteristics of Table I.
func ModelTable2() []ModeledRow {
	h := devices.Hopper()
	var rows []ModeledRow
	for i, t1 := range ci.ReferenceTable1 {
		t2 := ci.ReferenceTable2[i]
		c, m := h.IterSeconds(t1.NNZ, t1.Dim, t1.Np)
		rows = append(rows, ModeledRow{
			Name:            t1.Name,
			Np:              t1.Np,
			IterSeconds:     c + m,
			CommFraction:    m / (c + m),
			CPUHoursPerIter: h.CPUHoursPerIter(t1.NNZ, t1.Dim, t1.Np),
			TotalSeconds99:  99 * (c + m),
			PubTotalSeconds: t2.TotalSeconds,
			PubCommFraction: t2.CommFraction,
			PubCPUHours:     t2.CPUHoursPerIter,
		})
	}
	return rows
}
