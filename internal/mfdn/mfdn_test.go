package mfdn

import (
	"math"
	"math/rand"
	"testing"

	"dooc/internal/sparse"
)

func testMatrix(t *testing.T, n int, seed int64) *sparse.CSR {
	t.Helper()
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: n, Cols: n, D: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func reference(m *sparse.CSR, x []float64, iters int) []float64 {
	cur := append([]float64(nil), x...)
	next := make([]float64, len(x))
	for i := 0; i < iters; i++ {
		sparse.MulVec(m, cur, next)
		cur, next = next, cur
	}
	return cur
}

func TestInCoreCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testMatrix(t, 200, 1)
	x0 := make([]float64, 200)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	for _, ranks := range []int{1, 2, 4, 7} {
		res, err := RunInCore(InCoreConfig{Matrix: m, Ranks: ranks, Iters: 3, X0: x0})
		if err != nil {
			t.Fatal(err)
		}
		want := reference(m, x0, 3)
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("ranks=%d: X[%d]=%v want %v", ranks, i, res.X[i], want[i])
			}
		}
	}
}

func TestInCoreNetworkVolumeGrowsWithRanks(t *testing.T) {
	m := testMatrix(t, 240, 2)
	x0 := make([]float64, 240)
	x0[0] = 1
	var prev int64 = -1
	for _, ranks := range []int{2, 4, 8} {
		res, err := RunInCore(InCoreConfig{Matrix: m, Ranks: ranks, Iters: 2, X0: x0})
		if err != nil {
			t.Fatal(err)
		}
		// Allgather volume: iters * sum_r (R-1)*part_r*8 = iters*(R-1)*dim*8.
		want := int64(2 * (ranks - 1) * 240 * 8)
		if res.NetworkBytes != want {
			t.Fatalf("ranks=%d: network bytes %d, want %d", ranks, res.NetworkBytes, want)
		}
		if res.NetworkBytes <= prev {
			t.Fatalf("network volume not growing: %d then %d", prev, res.NetworkBytes)
		}
		prev = res.NetworkBytes
	}
}

func TestInCoreCommFractionGrowsWithRanks(t *testing.T) {
	// With a throttled link, more ranks -> more comm per rank and less
	// compute per rank: the Table II effect, executed for real.
	m := testMatrix(t, 600, 4)
	x0 := make([]float64, 600)
	x0[0] = 1
	frac := func(ranks int) float64 {
		res, err := RunInCore(InCoreConfig{
			Matrix: m, Ranks: ranks, Iters: 2, X0: x0,
			LinkBandwidth: 2 << 20, // 2 MB/s: comm clearly visible
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.CommFraction
	}
	f2, f6 := frac(2), frac(6)
	if f6 <= f2 {
		t.Fatalf("comm fraction did not grow: %v at 2 ranks, %v at 6", f2, f6)
	}
}

func TestInCoreValidation(t *testing.T) {
	m := testMatrix(t, 10, 5)
	x := make([]float64, 10)
	if _, err := RunInCore(InCoreConfig{Matrix: nil, Ranks: 1, Iters: 1, X0: x}); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := RunInCore(InCoreConfig{Matrix: m, Ranks: 0, Iters: 1, X0: x}); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := RunInCore(InCoreConfig{Matrix: m, Ranks: 2, Iters: 0, X0: x}); err == nil {
		t.Error("0 iters accepted")
	}
	if _, err := RunInCore(InCoreConfig{Matrix: m, Ranks: 2, Iters: 1, X0: x[:5]}); err == nil {
		t.Error("wrong x0 length accepted")
	}
}

func TestModelTable2(t *testing.T) {
	rows := ModelTable2()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	prev := 0.0
	for _, r := range rows {
		if r.CommFraction <= prev {
			t.Errorf("%s: comm fraction %v not increasing", r.Name, r.CommFraction)
		}
		prev = r.CommFraction
		if math.Abs(r.CommFraction-r.PubCommFraction) > 0.12 {
			t.Errorf("%s: modeled comm %v vs published %v", r.Name, r.CommFraction, r.PubCommFraction)
		}
		if math.Abs(r.CPUHoursPerIter-r.PubCPUHours)/r.PubCPUHours > 0.25 {
			t.Errorf("%s: modeled cpu-hours %v vs published %v", r.Name, r.CPUHoursPerIter, r.PubCPUHours)
		}
		if math.Abs(r.TotalSeconds99-r.PubTotalSeconds)/r.PubTotalSeconds > 0.25 {
			t.Errorf("%s: modeled total %v vs published %v", r.Name, r.TotalSeconds99, r.PubTotalSeconds)
		}
	}
}
