// Package devices catalogs the hardware the paper's experiments ran on:
// the memory hierarchy of Fig. 1, the NERSC Carver SSD testbed of Section V,
// and the calibrated Hopper (Cray XE6) cost model behind Table II. All
// numbers are either taken from the paper's text or derived from its
// published measurements; derivations are documented field by field.
package devices

import "math"

// Layer is one level of the memory hierarchy (Fig. 1).
type Layer struct {
	Name string
	// TypicalBytes is the order-of-magnitude capacity.
	TypicalBytes float64
	// LatencySeconds is the access latency.
	LatencySeconds float64
	// LatencyCycles is the same latency in 2.67 GHz CPU cycles.
	LatencyCycles float64
	// BandwidthBytes is the sustained bandwidth to the next level up.
	BandwidthBytes float64
}

// Hierarchy returns the Fig. 1 memory hierarchy, extended with the
// PCIe-SSD layer whose arrival motivates the paper: note the three-orders-
// of-magnitude "latency gap" between DRAM and HDD that the SSD fills.
func Hierarchy() []Layer {
	const clock = 2.67e9
	mk := func(name string, bytes, lat, bw float64) Layer {
		return Layer{Name: name, TypicalBytes: bytes, LatencySeconds: lat, LatencyCycles: lat * clock, BandwidthBytes: bw}
	}
	return []Layer{
		mk("registers", 1<<10, 0.4e-9, 1e12),
		mk("cache", 8<<20, 4e-9, 200e9),
		mk("DRAM", 32<<30, 40e-9, 30e9), // ~100 cycles, the paper's figure
		mk("PCIe SSD", 1<<40, 50e-6, 1.0e9),
		mk("HDD (SATA)", 2<<40, 5e-3, 0.15e9), // >= 10,000 cycles: the latency gap
	}
}

// Testbed describes the experimental SSD testbed on Carver (Section V).
type Testbed struct {
	// ComputeNodes and IONodes: "50 nodes: 40 computational nodes and 10
	// I/O nodes".
	ComputeNodes, IONodes int
	// CoresPerNode: two Xeon X5550 quad-cores, hyper-threading disabled.
	CoresPerNode int
	// ClockHz: 2.67 GHz.
	ClockHz float64
	// MemoryPerNode: 24 GB DDR3.
	MemoryPerNode int64
	// IBLinkBytes: 4X QDR InfiniBand, 32 Gb/s point-to-point = 4 GB/s.
	IBLinkBytes float64
	// SSDsPerIONode and SSDReadBytes: two Virident tachIOn cards per I/O
	// node at 1 GB/s sustained each.
	SSDsPerIONode int
	SSDReadBytes  float64
	// GPFSPeakBytes: "The maximum throughput the storage system can deliver
	// is 20 GB/s."
	GPFSPeakBytes float64
	// GPFSEfficiency is the observed fraction of peak the application-level
	// reads sustain. Derived: Tables III/IV report 18.2-18.7 GB/s at
	// saturation, i.e. ~92-93% of the 20 GB/s peak.
	GPFSEfficiency float64
	// ClientReadBytes is the per-node GPFS client ceiling. Derived: the
	// 1-node runs read at 1.4-1.5 GB/s although the fabric allows 4 GB/s.
	ClientReadBytes float64
	// NodeSpMVFlops is the effective per-node SpMV rate used to check that
	// computation stays hidden behind I/O. Any value comfortably above
	// bytes_rate * flops_per_byte works; 2.5 GF/s per 8-core node is
	// conservative for CSR SpMV on Nehalem.
	NodeSpMVFlops float64
	// BWDispersion is the half-width of the per-(node, iteration) uniform
	// load-time multiplier modeling the shared-GPFS variability the paper
	// reports ("some noticeable variation in read bandwidth observed by
	// individual compute nodes"). Calibrated so the simple policy's
	// non-overlapped fraction reproduces Table III (13% -> 36%).
	BWDispersion float64
}

// CarverSSD returns the paper's testbed.
func CarverSSD() Testbed {
	return Testbed{
		ComputeNodes:    40,
		IONodes:         10,
		CoresPerNode:    8,
		ClockHz:         2.67e9,
		MemoryPerNode:   24 << 30,
		IBLinkBytes:     4e9,
		SSDsPerIONode:   2,
		SSDReadBytes:    1e9,
		GPFSPeakBytes:   20e9,
		GPFSEfficiency:  0.925,
		ClientReadBytes: 1.42e9,
		NodeSpMVFlops:   2.5e9,
		BWDispersion:    0.5,
	}
}

// AggregateReadBytes is the effective storage-system ceiling.
func (t Testbed) AggregateReadBytes() float64 { return t.GPFSPeakBytes * t.GPFSEfficiency }

// NodeReadBytes is the effective per-node read bandwidth with n nodes
// active: the client ceiling or the fair share of the aggregate, whichever
// binds. This single min() reproduces the paper's scaling plateau: linear to
// ~12 nodes, flat at ~18.5 GB/s beyond.
func (t Testbed) NodeReadBytes(n int) float64 {
	return math.Min(t.ClientReadBytes, t.AggregateReadBytes()/float64(n))
}

// HopperModel is the calibrated analytic cost model of MFDn on Hopper.
//
// Derivation from the paper's published Tables I and II:
//
//   - Compute: t_flop = 2*nnz / (np * rcore(np)) with a per-core rate that
//     degrades slowly with scale, rcore(np) = R0 * np^-Gamma. Fitting the
//     compute portions of rows test_276 and test_18336 gives R0 = 3.18e8
//     flops/s and Gamma = 0.166; the interpolated middle rows then land
//     within 2% of the published compute times.
//   - Communication: t_comm = Alpha*sqrt(np) + Beta*(D/1e8): a tree-depth
//     latency term plus a vector-volume term (Lanczos distributes and
//     reduces vectors of dimension D each iteration). Fitting rows 1 and 4
//     gives Alpha = 0.02175 s, Beta = 1.024 s; the middle rows land within
//     about 30%, preserving the monotone comm-fraction growth 34% -> 86%.
type HopperModel struct {
	R0, Gamma   float64
	Alpha, Beta float64
	CoresUsed   func(np int) int
}

// Hopper returns the calibrated model.
func Hopper() HopperModel {
	return HopperModel{R0: 3.18e8, Gamma: 0.166, Alpha: 0.02175, Beta: 1.024}
}

// IterSeconds predicts one Lanczos iteration's compute and communication
// seconds for a problem with nnz nonzeros and dimension dim on np cores.
func (h HopperModel) IterSeconds(nnz, dim float64, np int) (compute, comm float64) {
	rcore := h.R0 * math.Pow(float64(np), -h.Gamma)
	compute = 2 * nnz / (float64(np) * rcore)
	comm = h.Alpha*math.Sqrt(float64(np)) + h.Beta*dim/1e8
	return compute, comm
}

// CPUHoursPerIter predicts the CPU-hour cost of one iteration.
func (h HopperModel) CPUHoursPerIter(nnz, dim float64, np int) float64 {
	c, m := h.IterSeconds(nnz, dim, np)
	return float64(np) * (c + m) / 3600
}
