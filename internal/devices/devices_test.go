package devices

import (
	"math"
	"testing"
)

func TestHierarchyShape(t *testing.T) {
	layers := Hierarchy()
	if len(layers) != 5 {
		t.Fatalf("%d layers", len(layers))
	}
	// Capacity grows and latency grows monotonically down the hierarchy.
	for i := 1; i < len(layers); i++ {
		if layers[i].TypicalBytes <= layers[i-1].TypicalBytes {
			t.Errorf("capacity not growing at %s", layers[i].Name)
		}
		if layers[i].LatencySeconds <= layers[i-1].LatencySeconds {
			t.Errorf("latency not growing at %s", layers[i].Name)
		}
	}
	// The paper's latency gap: DRAM ~100 cycles, HDD >= 10,000 cycles.
	var dram, hdd Layer
	for _, l := range layers {
		if l.Name == "DRAM" {
			dram = l
		}
		if l.Name == "HDD (SATA)" {
			hdd = l
		}
	}
	if dram.LatencyCycles < 50 || dram.LatencyCycles > 300 {
		t.Errorf("DRAM latency = %v cycles", dram.LatencyCycles)
	}
	if hdd.LatencyCycles < 10000 {
		t.Errorf("HDD latency = %v cycles, want the paper's >= 10,000", hdd.LatencyCycles)
	}
}

func TestTestbedParameters(t *testing.T) {
	tb := CarverSSD()
	if tb.ComputeNodes != 40 || tb.IONodes != 10 || tb.CoresPerNode != 8 {
		t.Fatalf("testbed shape %+v", tb)
	}
	// 10 I/O nodes x 2 SSDs x 1 GB/s = the 20 GB/s peak.
	peak := float64(tb.IONodes*tb.SSDsPerIONode) * tb.SSDReadBytes
	if peak != tb.GPFSPeakBytes {
		t.Errorf("SSD aggregate %v != declared GPFS peak %v", peak, tb.GPFSPeakBytes)
	}
	if agg := tb.AggregateReadBytes(); agg < 18e9 || agg > 19e9 {
		t.Errorf("effective aggregate %v outside the observed 18.2-18.7 GB/s", agg)
	}
}

func TestNodeReadBandwidthPlateau(t *testing.T) {
	tb := CarverSSD()
	// Single node: client-bound around 1.4 GB/s.
	if bw := tb.NodeReadBytes(1); math.Abs(bw-1.42e9) > 1e6 {
		t.Errorf("1-node bw = %v", bw)
	}
	// 9 nodes: still client-bound (9 x 1.42 = 12.8 < 18.5).
	if bw := tb.NodeReadBytes(9); bw != 1.42e9 {
		t.Errorf("9-node bw = %v, want client-bound", bw)
	}
	// 16+: aggregate-bound; totals plateau.
	tot16 := 16 * tb.NodeReadBytes(16)
	tot36 := 36 * tb.NodeReadBytes(36)
	if math.Abs(tot16-tot36) > 1 {
		t.Errorf("aggregate not flat: %v vs %v", tot16, tot36)
	}
	if tot16 < 18e9 || tot16 > 19e9 {
		t.Errorf("plateau at %v, want ~18.5 GB/s", tot16)
	}
}

func TestHopperModelReproducesTable2Shape(t *testing.T) {
	h := Hopper()
	rows := []struct {
		name     string
		nnz, dim float64
		np       int
		// published values (Table II, per iteration over 99 iterations)
		iterSec  float64
		commFrac float64
		cpuHours float64
	}{
		{"test_276", 2.81e10, 4.66e7, 276, 244.0 / 99, 0.34, 0.19},
		{"test_1128", 1.24e11, 1.60e8, 1128, 543.0 / 99, 0.60, 1.72},
		{"test_4560", 4.62e11, 4.82e8, 4560, 759.0 / 99, 0.67, 9.70},
		{"test_18336", 1.51e12, 1.30e9, 18336, 1870.0 / 99, 0.86, 96.2},
	}
	prevFrac := 0.0
	for _, r := range rows {
		c, m := h.IterSeconds(r.nnz, r.dim, r.np)
		frac := m / (c + m)
		// Shape: comm fraction grows monotonically and brackets the
		// published trend within 10 percentage points.
		if frac <= prevFrac {
			t.Errorf("%s: comm fraction %v not increasing", r.name, frac)
		}
		prevFrac = frac
		if math.Abs(frac-r.commFrac) > 0.12 {
			t.Errorf("%s: comm fraction %v vs published %v", r.name, frac, r.commFrac)
		}
		// Totals within 25% of published.
		if rel := math.Abs((c+m)-r.iterSec) / r.iterSec; rel > 0.25 {
			t.Errorf("%s: iter %vs vs published %vs (%.0f%% off)", r.name, c+m, r.iterSec, rel*100)
		}
		if got := h.CPUHoursPerIter(r.nnz, r.dim, r.np); math.Abs(got-r.cpuHours)/r.cpuHours > 0.25 {
			t.Errorf("%s: CPU-hours %v vs published %v", r.name, got, r.cpuHours)
		}
	}
}
