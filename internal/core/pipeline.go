package core

import (
	"sync"

	"dooc/internal/obs"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// kernelMetrics are the dooc_kernel_* series: kernel-layer dispatch counts
// plus the decode pipeline's overlap accounting. All counters are nil-safe,
// so a System without a registry pays nothing.
type kernelMetrics struct {
	fused   *obs.Counter
	blocked *obs.Counter
	scalar  *obs.Counter

	pipeDecodes *obs.Counter
	pipeStalls  *obs.Counter
	pipeWaits   *obs.Counter
	pipeOverlap *obs.Counter
}

func newKernelMetrics(reg *obs.Registry) kernelMetrics {
	if reg == nil {
		return kernelMetrics{}
	}
	return kernelMetrics{
		fused:       reg.Counter("dooc_kernel_fused_calls_total", "fused SpMV+AXPY/dot kernel invocations"),
		blocked:     reg.Counter("dooc_kernel_blocked_dispatch_total", "SpMV dispatches taking the cache-blocked traversal"),
		scalar:      reg.Counter("dooc_kernel_scalar_dispatch_total", "SpMV dispatches taking the row-serial traversal"),
		pipeDecodes: reg.Counter("dooc_kernel_pipeline_decodes_total", "matrix blocks decoded ahead of use by the pipeline"),
		pipeStalls:  reg.Counter("dooc_kernel_pipeline_stalls_total", "matrix requests that decoded synchronously on the compute path"),
		pipeWaits:   reg.Counter("dooc_kernel_pipeline_waits_total", "matrix requests that blocked on an in-flight pipeline decode"),
		pipeOverlap: reg.Counter("dooc_kernel_pipeline_overlap_total", "pipeline-decoded blocks consumed after their decode fully overlapped compute"),
	}
}

// decodePipeline is the double-buffered decode stage of a node: while the
// computing filter multiplies with block i, the pipeline goroutine decodes
// block i+1 (codec frame -> raw bytes -> CSR) into the node's decode cache,
// fed by the local scheduler's prefetch order. Decompression and CSR
// materialization thereby leave the critical path; the computing filter
// only stalls when it outruns the pipeline (counted, and the overlap
// counter proves when it does not).
//
// Decoding never changes bits — the pipeline produces exactly the CSR the
// synchronous path would, only earlier — so scheduling here cannot affect
// result hashes.
type decodePipeline struct {
	store *storage.Store
	cache *decodeCache
	m     kernelMetrics

	req  chan string
	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	queued   map[string]bool
	inflight map[string]chan struct{}
}

// newDecodePipeline starts the node's decode goroutine. Requires a live
// cache (the pipeline's only output channel is cache residency).
func newDecodePipeline(store *storage.Store, cache *decodeCache, m kernelMetrics) *decodePipeline {
	p := &decodePipeline{
		store:    store,
		cache:    cache,
		m:        m,
		req:      make(chan string, 32),
		stop:     make(chan struct{}),
		queued:   make(map[string]bool),
		inflight: make(map[string]chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *decodePipeline) loop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case name := <-p.req:
			p.decode(name)
		}
	}
}

// decode materializes one block into the cache, publishing an in-flight
// channel so a consumer that catches up can wait instead of duplicating the
// decode.
func (p *decodePipeline) decode(name string) {
	p.mu.Lock()
	delete(p.queued, name)
	if p.cache.peek(name) || p.inflight[name] != nil {
		p.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	p.inflight[name] = ch
	p.mu.Unlock()

	defer func() {
		p.mu.Lock()
		delete(p.inflight, name)
		p.mu.Unlock()
		close(ch)
	}()

	lease, err := p.store.RequestBlock(name, 0, storage.PermRead)
	if err != nil {
		return // consumer will decode synchronously and surface the error
	}
	m, err := sparse.DecodeCRSBytes(lease.Data)
	lease.Release()
	if err != nil {
		return
	}
	p.cache.putPipelined(name, m)
	p.m.pipeDecodes.Inc()
}

// wants reports whether the engine should still issue a storage prefetch
// for this array, enqueueing it for decode as a side effect. Blocks already
// decoded or in the pipeline need no further I/O.
func (p *decodePipeline) wants(name string) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	if p.cache.peek(name) {
		p.mu.Unlock()
		return false
	}
	if p.queued[name] || p.inflight[name] != nil {
		p.mu.Unlock()
		return false
	}
	select {
	case p.req <- name:
		p.queued[name] = true
	default:
		// Queue full: leave it to the storage prefetcher; a later pick
		// retries the enqueue.
	}
	p.mu.Unlock()
	return true
}

// matrix is the consumer entry point: cache hit, else wait for an in-flight
// pipeline decode, else decode synchronously (a pipeline stall).
func (p *decodePipeline) matrix(store *storage.Store, array string) (*sparse.CSR, error) {
	c := p.cache
	c.mu.Lock()
	if e, ok := c.entries[array]; ok {
		m := c.hitLocked(e)
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()

	p.mu.Lock()
	ch := p.inflight[array]
	p.mu.Unlock()
	if ch != nil {
		// The decode is running right now: waiting is cheaper than a duplicate
		// decode, but it is not overlap — strip the credit.
		p.m.pipeWaits.Inc()
		<-ch
		c.clearPipelined(array)
		c.mu.Lock()
		if e, ok := c.entries[array]; ok {
			m := c.hitLocked(e)
			c.mu.Unlock()
			return m, nil
		}
		c.mu.Unlock()
		// Pipeline decode failed; fall through to the synchronous path so the
		// error surfaces on the task.
	}
	p.m.pipeStalls.Inc()
	return c.matrix(store, array)
}

// close stops the pipeline goroutine and waits for any in-flight decode.
func (p *decodePipeline) close() {
	if p == nil {
		return
	}
	close(p.stop)
	p.wg.Wait()
}
