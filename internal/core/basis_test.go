package core

import (
	"math"
	"testing"

	"dooc/internal/lanczos"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// Compile-time check: BasisStore implements lanczos.Basis.
var _ lanczos.Basis = (*BasisStore)(nil)

// TestBasisStoreRoundTrip covers the Basis contract directly.
func TestBasisStoreRoundTrip(t *testing.T) {
	s, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20, ScratchDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := &BasisStore{Store: s, Spill: true}
	vs := [][]float64{{1, 2, 3}, {4, 5, 6}, {-1, 0, 1}}
	for _, v := range vs {
		if err := b.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	for j, want := range vs {
		got, err := b.Vector(j)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v%d[%d] = %v, want %v", j, i, got[i], want[i])
			}
		}
	}
	if _, err := b.Vector(3); err == nil {
		t.Fatal("out-of-range vector accepted")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("Close did not reset")
	}
}

// TestLanczosWithSpilledBasisMatchesMemory: the out-of-core basis must give
// bit-identical spectra to the in-memory basis (identical arithmetic,
// different residence).
func TestLanczosWithSpilledBasisMatchesMemory(t *testing.T) {
	const dim = 60
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 3, Seed: 8, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	op := lanczos.MatrixOperator{M: m}
	inMem, err := lanczos.Solve(op, lanczos.Options{Steps: 40, Seed: 4, WantVectors: true})
	if err != nil {
		t.Fatal(err)
	}

	s, err := storage.NewLocal(storage.Config{
		MemoryBudget: 2048, // far below 40 vectors x 480 B: must spill
		ScratchDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	basis := &BasisStore{Store: s, Spill: true}
	spilled, err := lanczos.Solve(op, lanczos.Options{Steps: 40, Seed: 4, WantVectors: true, Basis: basis})
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled.Eigenvalues) != len(inMem.Eigenvalues) {
		t.Fatalf("step counts differ: %d vs %d", len(spilled.Eigenvalues), len(inMem.Eigenvalues))
	}
	for i := range inMem.Eigenvalues {
		if spilled.Eigenvalues[i] != inMem.Eigenvalues[i] {
			t.Fatalf("eig[%d]: spilled %v vs memory %v", i, spilled.Eigenvalues[i], inMem.Eigenvalues[i])
		}
	}
	for c := range inMem.Vectors {
		for i := range inMem.Vectors[c] {
			if math.Abs(spilled.Vectors[c][i]-inMem.Vectors[c][i]) > 1e-15 {
				t.Fatalf("ritz vector %d differs at %d", c, i)
			}
		}
	}
	// The run must actually have hit the disk.
	st := s.Stats()
	if st.BytesReadDisk == 0 || st.Evictions == 0 {
		t.Fatalf("no out-of-core traffic: %+v", st)
	}
	if err := basis.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBasisReuseRejected: Solve refuses a non-empty basis (stale state
// would corrupt the recurrence).
func TestBasisReuseRejected(t *testing.T) {
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 10, Cols: 10, D: 1, Seed: 9, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	b := &lanczos.MemoryBasis{}
	if err := b.Append(make([]float64, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := lanczos.Solve(lanczos.MatrixOperator{M: m}, lanczos.Options{Steps: 3, Seed: 1, Basis: b}); err == nil {
		t.Fatal("reused basis accepted")
	}
}

// TestFullyOutOfCoreLanczos is the complete MFDn-replacement story: the
// SpMV runs through DOoC (staged matrix, leases, eviction, prefetch) AND
// the Lanczos basis itself is spilled to scratch — nothing of size
// O(k·dim) or O(nnz) stays resident.
func TestFullyOutOfCoreLanczos(t *testing.T) {
	const dim = 40
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 3, Seed: 10, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: 2, Iters: 1, Nodes: 2}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 14,
		PrefetchWindow: 1,
		Reorder:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	op := &Operator{Sys: sys, Cfg: cfg}
	basis := &BasisStore{Store: sys.Store(0), Spill: true}
	res, err := lanczos.Solve(op, lanczos.Options{Steps: dim, Seed: 6, Basis: basis})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lanczos.JacobiEigen(m.Dense(), dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(res.Eigenvalues[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Fatalf("eig[%d]: %v vs dense %v", i, res.Eigenvalues[i], want[i])
		}
	}
	if err := basis.Close(); err != nil {
		t.Fatal(err)
	}
}
