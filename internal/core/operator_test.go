package core

import (
	"math"
	"testing"

	"dooc/internal/lanczos"
	"dooc/internal/sparse"
)

// Compile-time check: core.Operator implements lanczos.Operator.
var _ lanczos.Operator = (*Operator)(nil)

func TestOperatorRepeatedAppliesDoNotCollide(t *testing.T) {
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 30, Cols: 30, D: 2, Seed: 2, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 2, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: 30, K: 2, Iters: 1, Nodes: 2}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	op := &Operator{Sys: sys, Cfg: cfg}
	x := make([]float64, 30)
	x[0] = 1
	for i := 0; i < 3; i++ {
		y, err := op.Apply(x)
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		want := make([]float64, 30)
		sparse.MulVec(m, x, want)
		for j := range want {
			if math.Abs(y[j]-want[j]) > 1e-10 {
				t.Fatalf("apply %d: y[%d]=%v want %v", i, j, y[j], want[j])
			}
		}
		x = y
	}
	if op.Calls() != 3 {
		t.Fatalf("Calls = %d", op.Calls())
	}
}

func TestLanczosOverOutOfCoreOperator(t *testing.T) {
	// The paper's end-to-end story: eigenvalues of a symmetric matrix via
	// Lanczos whose SpMV runs out-of-core through DOoC.
	dim := 48
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 3, Seed: 21, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: 3, Iters: 1, Nodes: 3}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{
		Nodes:          3,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 16,
		PrefetchWindow: 2,
		Reorder:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	op := &Operator{Sys: sys, Cfg: cfg}
	res, err := lanczos.Solve(op, lanczos.Options{Steps: dim, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lanczos.JacobiEigen(m.Dense(), dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(res.Eigenvalues[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Fatalf("eig[%d]: out-of-core lanczos %v vs dense %v", i, res.Eigenvalues[i], want[i])
		}
	}
}
