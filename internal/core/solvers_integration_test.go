package core

import (
	"math"
	"testing"

	"dooc/internal/solvers"
	"dooc/internal/sparse"
)

// spdTestMatrix builds a symmetric positive-definite matrix (diagonally
// dominant shift of the symmetric gap generator).
func spdTestMatrix(t *testing.T, n int, seed int64) *sparse.CSR {
	t.Helper()
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: n, Cols: n, D: 3, Seed: seed, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		row := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.ColIdx[k]) != i {
				row += math.Abs(m.Val[k])
			}
			ts = append(ts, sparse.Triplet{Row: i, Col: int(m.ColIdx[k]), Val: m.Val[k]})
		}
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: row + 1})
	}
	spd, err := sparse.FromTriplets(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	return spd
}

// TestCGOverOutOfCoreOperator solves a linear system where every matrix
// application runs through the full DOoC stack — the paper's "more linear
// algebra kernels" future work, executed out-of-core.
func TestCGOverOutOfCoreOperator(t *testing.T) {
	const dim = 48
	m := spdTestMatrix(t, dim, 31)
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: 3, Iters: 1, Nodes: 2}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 16,
		PrefetchWindow: 1,
		Reorder:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	op := &Operator{Sys: sys, Cfg: cfg}

	b := make([]float64, dim)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x, st, err := solvers.CG(op, b, solvers.CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("CG over DOoC did not converge: %+v", st)
	}
	// Verify in-core: A x == b.
	ax := make([]float64, dim)
	sparse.MulVec(m, x, ax)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-7 {
			t.Fatalf("residual at %d: %v", i, ax[i]-b[i])
		}
	}
	if op.Calls() != st.SpMVs {
		t.Errorf("operator ran %d programs, CG counted %d SpMVs", op.Calls(), st.SpMVs)
	}
}

// TestJacobiOverOutOfCoreOperator exercises the paper's reference-[6]
// solver (Jacobi for large Markov-style systems) over the middleware.
func TestJacobiOverOutOfCoreOperator(t *testing.T) {
	const dim = 36
	m := spdTestMatrix(t, dim, 37)
	sys, err := NewSystem(Options{Nodes: 2, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 2, Iters: 1, Nodes: 2}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	diag := make([]float64, dim)
	for i := range diag {
		diag[i] = m.At(i, i)
	}
	b := make([]float64, dim)
	b[0], b[dim-1] = 1, -1
	op := &Operator{Sys: sys, Cfg: cfg}
	x, st, err := solvers.Jacobi(op, b, solvers.JacobiOptions{Diag: diag, Tol: 1e-10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("Jacobi over DOoC did not converge: %+v", st)
	}
	ax := make([]float64, dim)
	sparse.MulVec(m, x, ax)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("residual at %d: %v", i, ax[i]-b[i])
		}
	}
}
