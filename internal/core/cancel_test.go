package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dooc/internal/dag"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// TestRunCancel closes the cancel channel mid-run and checks the engine
// aborts with ErrCancelled, finishes in-flight tasks (leaving no dangling
// leases), and leaves the system usable for a fresh run.
func TestRunCancel(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 2, WorkersPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const n = 40
	if err := sys.Store(0).Create("out", 8*n, 8); err != nil {
		t.Fatal(err)
	}
	tasks := make([]*dag.Task, n)
	for i := 0; i < n; i++ {
		tasks[i] = &dag.Task{
			ID:      fmt.Sprintf("t%d", i),
			Kind:    "slow",
			Outputs: []dag.Ref{{Array: "out", Block: i, Bytes: 8}},
		}
	}
	cancel := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	spec := RunSpec{
		Tasks: tasks,
		Executors: map[string]Executor{
			"slow": func(ctx *ExecContext) error {
				once.Do(started.Done)
				time.Sleep(2 * time.Millisecond)
				l, err := ctx.Store.RequestBlock("out", ctx.Task.Outputs[0].Block, storage.PermWrite)
				if err != nil {
					return err
				}
				storage.PutFloat64s(l, []float64{1})
				l.Release()
				return nil
			},
		},
		Cancel: cancel,
	}
	go func() {
		started.Wait()
		close(cancel)
	}()
	_, err = sys.Run(spec)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrCancelled", err)
	}

	// All leases are back: the array deletes cleanly.
	if err := sys.Store(0).Delete("out"); err != nil {
		t.Fatalf("delete after cancel: %v", err)
	}

	// The system still runs fresh programs.
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 200, Cols: 200, D: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SpMVConfig{Dim: 200, K: 2, Iters: 1, Nodes: 2, Tag: "post-cancel"}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, 200)
	x0[0] = 1
	if _, err := RunIteratedSpMV(sys, cfg, x0); err != nil {
		t.Fatalf("run after cancel: %v", err)
	}
}

// TestRunCancelSpMV cancels an iterated SpMV through the job-layer entry
// point and checks the transient arrays are gone afterwards: storage memory
// returns to its pre-run level.
func TestRunCancelSpMV(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 2, WorkersPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const dim, k = 600, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SpMVConfig{Dim: dim, K: k, Iters: 6, Nodes: 2, Tag: "cancelme"}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	var before int64
	for i := 0; i < sys.Nodes(); i++ {
		before += sys.Store(i).Stats().MemUsed
	}

	x0 := make([]float64, dim)
	x0[0] = 1
	cancel := make(chan struct{})
	close(cancel) // cancel before the first task starts
	if _, err := RunIteratedSpMVCancel(sys, cfg, x0, cancel); !errors.Is(err, ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}

	var after int64
	for i := 0; i < sys.Nodes(); i++ {
		after += sys.Store(i).Stats().MemUsed
	}
	if after > before {
		t.Fatalf("cancelled run leaked memory: before=%d after=%d", before, after)
	}
}
