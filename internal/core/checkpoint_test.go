package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dooc/internal/sparse"
)

func checkpointFixture(t *testing.T) (*sparse.CSR, []float64, string) {
	t.Helper()
	const dim = 48
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: 3, Iters: 1, Nodes: 2}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	return m, x0, root
}

func checkpointSystem(t *testing.T, root string) *System {
	t.Helper()
	sys, err := NewSystem(Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 20,
		Reorder:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestResumeFromScratchMatchesStraightRun: resuming with no checkpoint is a
// plain (checkpointed) run; its result matches RunIteratedSpMV exactly.
func TestResumeFromScratchMatchesStraightRun(t *testing.T) {
	m, x0, root := checkpointFixture(t)
	sys := checkpointSystem(t, root)
	defer sys.Close()
	cfg := SpMVConfig{Dim: m.Rows, K: 3, Iters: 3, Nodes: 2, Tag: "job1"}
	res, from, err := ResumeIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	if from != 0 {
		t.Fatalf("resumed from %d on a fresh run", from)
	}
	want := referenceIterate(m, x0, 3)
	if d := maxAbsDiff(res.X, want); d > 1e-10 {
		t.Fatalf("checkpointed run differs by %v", d)
	}
}

// TestInterruptedRunResumes: run 2 iterations, tear the system down
// (the "crash"), bring a fresh system up over the same scratch, and resume
// to 5 total iterations. The resumed result must match an uninterrupted
// 5-iteration reference, and the resume must start at iteration 2.
func TestInterruptedRunResumes(t *testing.T) {
	m, x0, root := checkpointFixture(t)

	sys1 := checkpointSystem(t, root)
	cfgFirst := SpMVConfig{Dim: m.Rows, K: 3, Iters: 2, Nodes: 2, Tag: "job2"}
	if _, from, err := ResumeIteratedSpMV(sys1, cfgFirst, x0); err != nil || from != 0 {
		t.Fatalf("first segment: from=%d err=%v", from, err)
	}
	sys1.Close() // the crash

	sys2 := checkpointSystem(t, root)
	defer sys2.Close()
	cfgFull := SpMVConfig{Dim: m.Rows, K: 3, Iters: 5, Nodes: 2, Tag: "job2"}
	res, from, err := ResumeIteratedSpMV(sys2, cfgFull, x0)
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 {
		t.Fatalf("resumed from %d, want 2", from)
	}
	want := referenceIterate(m, x0, 5)
	if d := maxAbsDiff(res.X, want); d > 1e-9 {
		t.Fatalf("resumed result differs by %v", d)
	}
}

// TestResumeAlreadyComplete: asking for fewer iterations than are already
// checkpointed returns the stored iterate without running anything.
func TestResumeAlreadyComplete(t *testing.T) {
	m, x0, root := checkpointFixture(t)
	sys := checkpointSystem(t, root)
	defer sys.Close()
	cfg := SpMVConfig{Dim: m.Rows, K: 3, Iters: 3, Nodes: 2, Tag: "job3"}
	full, _, err := ResumeIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Iters = 2
	res, from, err := ResumeIteratedSpMV(sys, cfg2, x0)
	if err != nil {
		t.Fatal(err)
	}
	if from != 3 {
		t.Fatalf("from = %d, want 3 (latest checkpoint)", from)
	}
	// The returned iterate is x^3, not x^2 — resume never rolls back.
	if d := maxAbsDiff(res.X, full.X); d != 0 {
		t.Fatalf("returned iterate differs from stored checkpoint by %v", d)
	}
}

// mutateCheckpointPart finds the named checkpoint file under one of the
// node scratch directories and rewrites it through mutate.
func mutateCheckpointPart(t *testing.T, root, name string, mutate func([]byte) []byte) {
	t.Helper()
	for node := 0; ; node++ {
		dir := filepath.Join(root, fmt.Sprintf("node%d", node))
		if _, err := os.Stat(dir); err != nil {
			break
		}
		p := filepath.Join(dir, name)
		raw, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		if err := os.WriteFile(p, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatalf("checkpoint part %s not found under %s", name, root)
}

// TestCorruptCheckpointFallsBack: a part torn or bit-rotted by a crash
// mid-write must never be resumed from. A flipped payload byte (CRC
// mismatch) in the newest iteration drops the scan to the previous one; a
// truncation there drops it once more; and the resume from the surviving
// iteration still converges to the uninterrupted reference.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	m, x0, root := checkpointFixture(t)
	sys1 := checkpointSystem(t, root)
	cfg := SpMVConfig{Dim: m.Rows, K: 3, Iters: 3, Nodes: 2, Tag: "job4"}
	if _, _, err := ResumeIteratedSpMV(sys1, cfg, x0); err != nil {
		t.Fatal(err)
	}
	sys1.Close()

	mutateCheckpointPart(t, root, "job4:x_3_1.arr", func(b []byte) []byte {
		b[3] ^= 0x40
		return b
	})
	ck, err := LatestCheckpoint(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Iter != 2 {
		t.Fatalf("after corrupting iteration 3, latest = %+v, want iteration 2", ck)
	}

	mutateCheckpointPart(t, root, "job4:x_2_0.arr", func(b []byte) []byte {
		return b[:len(b)/2]
	})
	ck, err = LatestCheckpoint(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Iter != 1 {
		t.Fatalf("after truncating iteration 2, latest = %+v, want iteration 1", ck)
	}

	sys2 := checkpointSystem(t, root)
	defer sys2.Close()
	cfgFull := cfg
	cfgFull.Iters = 5
	res, from, err := ResumeIteratedSpMV(sys2, cfgFull, x0)
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 {
		t.Fatalf("resumed from %d, want 1 (newest valid checkpoint)", from)
	}
	want := referenceIterate(m, x0, 5)
	if d := maxAbsDiff(res.X, want); d > 1e-9 {
		t.Fatalf("resumed result differs by %v", d)
	}
}

// TestCheckpointValidation covers the guard rails.
func TestCheckpointValidation(t *testing.T) {
	m, x0, root := checkpointFixture(t)
	sysNoScratch, err := NewSystem(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sysNoScratch.Close()
	cfg := SpMVConfig{Dim: m.Rows, K: 3, Iters: 2, Nodes: 2, Tag: "x"}
	if _, _, err := ResumeIteratedSpMV(sysNoScratch, cfg, x0); err == nil {
		t.Error("checkpointing without scratch accepted")
	}
	cfg.Tag = ""
	if _, err := LatestCheckpoint(root, cfg); err == nil {
		t.Error("empty tag accepted")
	}
	cfg.Tag = "nothing-here"
	ck, err := LatestCheckpoint(root, cfg)
	if err != nil || ck != nil {
		t.Errorf("expected no checkpoint, got %+v err %v", ck, err)
	}
}
