package core

import (
	"math/rand"
	"strings"
	"testing"

	"dooc/internal/sparse"
)

// TestSplitMultiplyMatchesUnsplit: the task-splitting path (paper §III-C,
// sub-tasks publishing disjoint interval write leases on a shared partial
// array) must produce bit-identical results to the unsplit path.
func TestSplitMultiplyMatchesUnsplit(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const dim = 45
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	run := func(splitWays, workers int) []float64 {
		sys, err := NewSystem(Options{Nodes: 2, WorkersPerNode: workers, Reorder: true})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		cfg := SpMVConfig{Dim: dim, K: 3, Iters: 3, Nodes: 2, SplitWays: splitWays}
		if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := RunIteratedSpMV(sys, cfg, x0)
		if err != nil {
			t.Fatal(err)
		}
		return res.X
	}
	base := run(0, 1)
	for _, ways := range []int{2, 3, 4} {
		got := run(ways, 3)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("ways=%d: X[%d] = %v, unsplit %v", ways, i, got[i], base[i])
			}
		}
	}
}

// TestSplitWaysClampedToRows: requesting more parts than block rows must
// not hang or error — the engine clamps to one row per part.
func TestSplitWaysClampedToRows(t *testing.T) {
	const dim = 12 // K=3 -> 4-row blocks
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 1, WorkersPerNode: 2, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 3, Iters: 2, Nodes: 1, SplitWays: 64}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, dim)
	x0[0] = 1
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceIterate(m, x0, 2)
	if d := maxAbsDiff(res.X, want); d > 1e-12 {
		t.Fatalf("clamped split differs by %v", d)
	}
}

// TestSplitTasksActuallyRun confirms the split program really dispatches
// multiply-part tasks (not a silent fallback).
func TestSplitTasksActuallyRun(t *testing.T) {
	const dim = 40
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 1, WorkersPerNode: 2, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 2, Iters: 1, Nodes: 1, SplitWays: 2}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, dim)
	x0[0] = 1
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	parts := 0
	for _, ev := range res.Stats.Events {
		if ev.Kind == "multiply-part" {
			parts++
			if !strings.Contains(ev.Task, "part") {
				t.Fatalf("multiply-part event with odd ID %s", ev.Task)
			}
		}
	}
	// 2x2 grid, 2-way split, 1 iteration: 8 part tasks.
	if parts != 8 {
		t.Fatalf("%d multiply-part events, want 8", parts)
	}
}
