package core

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"

	"dooc/internal/obs"
	"dooc/internal/sparse"
)

// obsSeriesValue extracts one labeled series value from a snapshot; node < 0
// matches unlabeled series.
func obsSeriesValue(snap []obs.SeriesSnapshot, name string, node int) int64 {
	want := strconv.Itoa(node)
	for _, s := range snap {
		if s.Name != name {
			continue
		}
		if node < 0 && len(s.Labels) == 0 {
			return s.Value
		}
		for _, l := range s.Labels {
			if l.Key == "node" && l.Value == want {
				return s.Value
			}
		}
	}
	return 0
}

// TestObsReconcilesAcrossLayers runs a multi-node iterated SpMV with the full
// observability stack attached and asserts the cross-layer invariants the
// paper's accounting depends on: engine task counters match RunStats, storage
// series match each store's Stats, scheduler picks match executions, the
// queue-wait histogram saw every task, and the emitted trace is valid Chrome
// trace-event JSON. Run under -race this also proves the instrumentation
// introduces no data races into the hot path.
func TestObsReconcilesAcrossLayers(t *testing.T) {
	const (
		nodes = 3
		dim   = 45
		iters = 3
	)
	rng := rand.New(rand.NewSource(7))
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	sys, err := NewSystem(Options{
		Nodes:            nodes,
		WorkersPerNode:   2,
		Reorder:          true,
		PrefetchWindow:   2,
		DecodeCacheBytes: 1 << 20,
		Obs:              reg,
		Trace:            tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 3, Iters: iters, Nodes: nodes}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	x0 := randVec(rng, dim)
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.X, referenceIterate(m, x0, iters)); d > 1e-9 {
		t.Fatalf("instrumented run diverges from in-core reference by %v", d)
	}

	snap := reg.Snapshot()
	st := res.Stats

	// Engine layer: per-node completion counters mirror RunStats exactly,
	// and in a failure-free run executions == completions == picks.
	var totalTasks int64
	for n := 0; n < nodes; n++ {
		got := obsSeriesValue(snap, "dooc_engine_tasks_completed_total", n)
		if got != int64(st.TasksPerNode[n]) {
			t.Errorf("node %d: tasks_completed = %d, RunStats says %d", n, got, st.TasksPerNode[n])
		}
		totalTasks += int64(st.TasksPerNode[n])
	}
	if totalTasks == 0 {
		t.Fatal("run completed no tasks")
	}
	if retries := reg.Sum("dooc_engine_task_retries_total"); retries != int64(st.TaskRetries) {
		t.Errorf("task_retries = %d, RunStats says %d", retries, st.TaskRetries)
	}
	if picks := reg.Sum("dooc_sched_picks_total"); picks != totalTasks {
		t.Errorf("scheduler picks = %d, executions = %d (must be 1:1 in a clean run)", picks, totalTasks)
	}
	if qw := reg.Sum("dooc_engine_queue_wait_seconds"); qw != totalTasks {
		t.Errorf("queue-wait observations = %d, want one per execution = %d", qw, totalTasks)
	}
	if len(st.Events) != int(totalTasks) {
		t.Errorf("event log has %d entries, want %d", len(st.Events), totalTasks)
	}

	// Storage layer: registry series are cumulative since system creation,
	// exactly like each store's own Stats.
	for n := 0; n < nodes; n++ {
		ss := sys.Store(n).Stats()
		pairs := []struct {
			name string
			want int64
		}{
			{"dooc_storage_read_requests_total", ss.ReadRequests},
			{"dooc_storage_write_requests_total", ss.WriteRequests},
			{"dooc_storage_cache_hits_total", ss.Hits},
			{"dooc_storage_cache_misses_total", ss.Misses},
			{"dooc_storage_evictions_total", ss.Evictions},
			{"dooc_storage_block_loads_total", ss.BlockLoads},
			{"dooc_storage_prefetch_loads_total", ss.PrefetchLoads},
			{"dooc_storage_prefetch_hits_total", ss.PrefetchHits},
		}
		for _, p := range pairs {
			if got := obsSeriesValue(snap, p.name, n); got != p.want {
				t.Errorf("node %d: %s = %d, Stats says %d", n, p.name, got, p.want)
			}
		}
		if ss.Hits+ss.Misses != ss.ReadRequests {
			t.Errorf("node %d: hits(%d)+misses(%d) != reads(%d)", n, ss.Hits, ss.Misses, ss.ReadRequests)
		}
		if ss.PrefetchHits > ss.PrefetchLoads {
			t.Errorf("node %d: prefetch hits(%d) > loads(%d)", n, ss.PrefetchHits, ss.PrefetchLoads)
		}
	}
	if got := reg.Sum("dooc_storage_lease_wait_seconds"); got != reg.Sum("dooc_storage_read_requests_total")+reg.Sum("dooc_storage_write_requests_total") {
		t.Errorf("lease-wait observations (%d) != total requests", got)
	}

	// Decode-cache layer: the per-node dooc_core_decode_cache series mirror
	// each cache's own stats(), and every Matrix lookup lands as exactly one
	// hit or one miss. The pipeline's background decodes are accounted
	// separately (dooc_kernel_pipeline_decodes_total), never as cache misses.
	var decodeHits, decodeMisses int64
	for n := 0; n < nodes; n++ {
		hits, misses := sys.decode[n].stats()
		if got := obsSeriesValue(snap, "dooc_core_decode_cache_hits_total", n); got != hits {
			t.Errorf("node %d: decode_cache_hits = %d, stats says %d", n, got, hits)
		}
		if got := obsSeriesValue(snap, "dooc_core_decode_cache_misses_total", n); got != misses {
			t.Errorf("node %d: decode_cache_misses = %d, stats says %d", n, got, misses)
		}
		decodeHits += hits
		decodeMisses += misses
	}
	if decodeHits+decodeMisses == 0 {
		t.Error("decode cache saw no lookups despite DecodeCacheBytes being set")
	}
	// Kernel layer: every multiply dispatch is counted once, scalar or
	// blocked, and pipeline accounting stays internally consistent.
	dispatches := reg.Sum("dooc_kernel_scalar_dispatch_total") + reg.Sum("dooc_kernel_blocked_dispatch_total")
	if dispatches == 0 {
		t.Error("kernel layer recorded no SpMV dispatches")
	}
	if overlap := reg.Sum("dooc_kernel_pipeline_overlap_total"); overlap > reg.Sum("dooc_kernel_pipeline_decodes_total") {
		t.Errorf("pipeline overlap (%d) exceeds pipeline decodes (%d)", overlap, reg.Sum("dooc_kernel_pipeline_decodes_total"))
	}
	if stalls := reg.Sum("dooc_kernel_pipeline_stalls_total"); stalls > decodeMisses {
		t.Errorf("pipeline stalls (%d) exceed synchronous decodes (%d)", stalls, decodeMisses)
	}

	// RunStats deltas derived from the same counters must agree with a
	// direct before/after subtraction.
	var wantHits int64
	for i := range st.StorageAfter {
		wantHits += st.StorageAfter[i].Hits - st.StorageBefore[i].Hits
	}
	if st.CacheHits() != wantHits {
		t.Errorf("RunStats.CacheHits() = %d, manual delta %d", st.CacheHits(), wantHits)
	}

	// Trace layer: exactly two spans (queued + execution) per task execution
	// once the storage band (lane metadata, grants, loads, spills, evicts)
	// is excluded, and the serialized form must be loadable Chrome
	// trace-event JSON.
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Errorf("emitted trace is invalid: %v", err)
	}
	taskEvents := 0
	for _, ev := range decodeTraceEvents(t, buf.Bytes()) {
		if ev.Ph == "M" || ev.Cat == "storage" {
			continue
		}
		taskEvents++
	}
	if taskEvents != int(2*totalTasks) {
		t.Errorf("trace has %d task events, want %d (2 per task)", taskEvents, 2*totalTasks)
	}
}

// TestObsCountsNodeDeathRecovery reconciles the recovery counters: killing a
// node mid-fleet must surface in dooc_engine_node_deaths_total and the
// re-execution counter must match RunStats.TaskRetries.
func TestObsCountsNodeDeathRecovery(t *testing.T) {
	const (
		nodes = 3
		dim   = 45
	)
	rng := rand.New(rand.NewSource(3))
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sys, err := NewSystem(Options{Nodes: nodes, WorkersPerNode: 2, Reorder: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 3, Iters: 2, Nodes: nodes}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	if err := sys.FailNode(2); err != nil {
		t.Fatal(err)
	}
	x0 := randVec(rng, dim)
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.X, referenceIterate(m, x0, 2)); d > 1e-9 {
		t.Fatalf("post-failure result diverges by %v", d)
	}
	if deaths := reg.Sum("dooc_engine_node_deaths_total"); deaths != int64(res.Stats.NodesFailed) {
		t.Errorf("node_deaths = %d, RunStats says %d", deaths, res.Stats.NodesFailed)
	}
	if res.Stats.NodesFailed != 1 {
		t.Errorf("NodesFailed = %d, want 1", res.Stats.NodesFailed)
	}
	if retries := reg.Sum("dooc_engine_task_retries_total"); retries != int64(res.Stats.TaskRetries) {
		t.Errorf("task_retries = %d, RunStats says %d", retries, res.Stats.TaskRetries)
	}
	if done := obsSeriesValue(reg.Snapshot(), "dooc_engine_tasks_completed_total", 2); done != 0 {
		t.Errorf("dead node 2 completed %d tasks", done)
	}
}
