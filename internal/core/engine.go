package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"dooc/internal/dag"
	"dooc/internal/obs"
	"dooc/internal/scheduler"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// ExecContext is what a computing filter receives for one task. A worker
// reuses one context (and its scratch buffers) across every task it runs, so
// steady-state execution does not allocate per task.
type ExecContext struct {
	Node    int
	Workers int
	Store   *storage.Store
	Task    *dag.Task

	cache   *decodeCache
	pool    *sparse.Pool
	pipe    *decodePipeline
	scratch execScratch

	mu     sync.Mutex
	leases []*storage.Lease
}

// execScratch holds one worker's reusable buffers. Executors that cannot
// write straight into a lease view (big-endian hosts, the doocdebug build)
// stage results here instead of allocating.
type execScratch struct {
	vec  []float64
	seen map[string]bool
}

// ScratchFloats returns a reusable []float64 of length n with unspecified
// contents. At most one scratch vector is live per task; a second call
// invalidates the first.
func (c *ExecContext) ScratchFloats(n int) []float64 {
	if cap(c.scratch.vec) < n {
		c.scratch.vec = make([]float64, n)
	}
	return c.scratch.vec[:n]
}

// ScratchSeen returns an empty reusable string-set.
func (c *ExecContext) ScratchSeen() map[string]bool {
	if c.scratch.seen == nil {
		c.scratch.seen = make(map[string]bool, 8)
	}
	clear(c.scratch.seen)
	return c.scratch.seen
}

// reset points the context at a new task, keeping scratch and lease-slice
// capacity.
func (c *ExecContext) reset(t *dag.Task) {
	c.Task = t
	c.mu.Lock()
	c.leases = c.leases[:0]
	c.mu.Unlock()
}

// Matrix returns the decoded CRS block stored in `array`, consulting the
// node's decode cache when Options.DecodeCacheBytes enabled one. Under
// RunSpec.DecodeAhead the request also consults the node's decode pipeline,
// waiting on an in-flight background decode instead of duplicating it.
func (c *ExecContext) Matrix(array string) (*sparse.CSR, error) {
	if c.pipe != nil {
		return c.pipe.matrix(c.Store, array)
	}
	return c.cache.matrix(c.Store, array)
}

// Pool returns the computing filter's persistent kernel pool (never nil;
// width is Options.WorkersPerNode).
func (c *ExecContext) Pool() *sparse.Pool { return c.pool }

// Request leases an interval through the task's lease tracker. Executors
// should prefer this over ctx.Store.Request: if the executor errors or
// panics before releasing, the engine abandons the lease — read leases are
// returned, unpublished write intervals revert to unwritten — so a
// re-execution of the task can acquire them again.
func (c *ExecContext) Request(array string, lo, hi int64, perm storage.Perm) (*storage.Lease, error) {
	l, err := c.Store.Request(array, lo, hi, perm)
	if err != nil {
		return nil, err
	}
	c.track(l)
	return l, nil
}

// RequestBlock is the tracked variant of ctx.Store.RequestBlock.
func (c *ExecContext) RequestBlock(array string, block int, perm storage.Perm) (*storage.Lease, error) {
	l, err := c.Store.RequestBlock(array, block, perm)
	if err != nil {
		return nil, err
	}
	c.track(l)
	return l, nil
}

func (c *ExecContext) track(l *storage.Lease) {
	c.mu.Lock()
	c.leases = append(c.leases, l)
	c.mu.Unlock()
}

// reclaim abandons every tracked lease the executor left unreleased
// (Abandon is a no-op on released leases).
func (c *ExecContext) reclaim() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, l := range c.leases {
		l.Abandon()
		c.leases[i] = nil
	}
	c.leases = c.leases[:0]
}

// Executor runs one task kind. Implementations lease the task's inputs for
// reading and its outputs for writing through ctx.Store.
type Executor func(ctx *ExecContext) error

// ErrCancelled aborts a run whose RunSpec.Cancel channel closed. Tasks
// already executing finish (and publish) normally; no new task starts. The
// job layer matches it with errors.Is to distinguish a cancelled run from a
// failed one.
var ErrCancelled = errors.New("core: run cancelled")

// RunSpec describes one engine invocation.
type RunSpec struct {
	// Tasks is the task program; the DAG is derived from it.
	Tasks []*dag.Task
	// Executors maps task Kind to its implementation.
	Executors map[string]Executor
	// Locate tells the global scheduler where a datum initially lives.
	// nil data-locality information degrades placement to load balancing.
	Locate func(dag.Ref) (int, bool)
	// Assignment, when non-nil, bypasses the global scheduler (used by
	// ablations to force placements).
	Assignment map[string]int
	// Ephemeral lists arrays that should be deleted as soon as their last
	// consumer task completes (dead intermediate generations). This is the
	// memory-management dividend of immutable versioned arrays.
	Ephemeral map[string]bool
	// Cancel, when non-nil, aborts the run when closed: workers stop picking
	// tasks, in-flight executors finish (their leases are released or
	// abandoned on the usual paths), and Run returns ErrCancelled. A task is
	// only ever started with all its inputs published, so cancellation at
	// task granularity cannot strand a reader on an unwritten interval.
	Cancel <-chan struct{}
	// Span, when valid, is the causal parent for this run: task spans are
	// annotated with trace/span/parent IDs and rolled up into per-iteration
	// spans via IterOf. Zero keeps tracing exactly as cheap as before.
	Span obs.SpanContext
	// IterOf maps a task ID to its iteration index; tasks it recognizes
	// parent under a per-iteration span instead of directly under Span.
	IterOf func(taskID string) (int, bool)
	// DecodeAhead routes the prefetch order into the node decode pipelines,
	// so heavy blocks are codec-decoded and CSR-materialized concurrently
	// with compute. Only set it for programs whose heavy refs are CRS blocks
	// (the SpMV family); requires Options.DecodeCacheBytes > 0 to have any
	// effect.
	DecodeAhead bool
}

// Run executes the program to completion and returns statistics.
func (s *System) Run(spec RunSpec) (*RunStats, error) {
	g, err := dag.Build(spec.Tasks)
	if err != nil {
		return nil, err
	}
	for _, t := range spec.Tasks {
		if _, ok := spec.Executors[t.Kind]; !ok {
			return nil, fmt.Errorf("core: no executor for task kind %q (task %s)", t.Kind, t.ID)
		}
	}
	assign := spec.Assignment
	if assign == nil {
		locate := spec.Locate
		if locate == nil {
			locate = func(dag.Ref) (int, bool) { return 0, false }
		}
		assign = scheduler.Affinity(spec.Tasks, s.opts.Nodes, locate)
	}
	for _, t := range spec.Tasks {
		n, ok := assign[t.ID]
		if !ok || n < 0 || n >= s.opts.Nodes {
			return nil, fmt.Errorf("core: task %q assigned to invalid node %d", t.ID, n)
		}
	}

	// Remaining-consumer counts for ephemeral array reclamation.
	consumers := make(map[string]int)
	for _, t := range spec.Tasks {
		seen := map[string]bool{}
		for _, in := range t.Inputs {
			if !seen[in.Array] {
				seen[in.Array] = true
				consumers[in.Array]++
			}
		}
	}

	run := &engineRun{
		sys:       s,
		graph:     g,
		assign:    assign,
		spec:      spec,
		consumers: consumers,
		dead:      make(map[int]bool),
		retries:   make(map[string]int),
		queuedAt:  make(map[string]time.Time),
		policies:  make([]*scheduler.Policy, s.opts.Nodes),
		metrics:   newEngineMetrics(s.opts.Obs, s.opts.Nodes),
		trace:     s.opts.Trace,
		stats: &RunStats{
			TasksPerNode:  make([]int, s.opts.Nodes),
			StorageBefore: make([]storage.Stats, s.opts.Nodes),
		},
	}
	for i := range run.policies {
		p := scheduler.NewPolicy()
		p.Reorder = s.opts.Reorder
		node := obs.L("node", fmt.Sprint(i))
		p.Picks = s.opts.Obs.Counter("dooc_sched_picks_total", "local-scheduler task selections", node)
		p.Reorders = s.opts.Obs.Counter("dooc_sched_reorders_total", "picks where the data-aware score overrode FIFO order", node)
		p.PrefetchRefs = s.opts.Obs.Counter("dooc_sched_prefetch_refs_total", "data refs handed to the prefetcher", node)
		if c := s.decode[i]; c != nil {
			// Blocks already decoded past the storage tier never burn a
			// prefetch-window slot.
			p.Decoded = c.peek
		}
		run.policies[i] = p
	}
	run.cond = sync.NewCond(&run.mu)
	if run.trace.Enabled() {
		// Stable track names: one process track per node, named worker lanes.
		for i := 0; i < s.opts.Nodes; i++ {
			run.trace.SetProcessName(i, fmt.Sprintf("node%d", i))
			for w := 0; w < s.opts.WorkersPerNode; w++ {
				run.trace.SetThreadName(i, w, fmt.Sprintf("worker%d", w))
			}
		}
		if spec.Span.Valid() {
			run.trace.SetProcessName(obs.PidEngine, "engine")
			run.iterSpans = make(map[int]obs.SpanID)
			run.iterStart = make(map[int]time.Time)
			run.iterEnd = make(map[int]time.Time)
		}
	}
	for i, st := range s.stores {
		run.stats.StorageBefore[i] = st.Stats()
	}

	// Register with the failure registry and apply nodes that died before
	// this run started.
	s.runMu.Lock()
	s.runs[run] = struct{}{}
	preFailed := make([]int, 0, len(s.failedNodes))
	for n := range s.failedNodes {
		preFailed = append(preFailed, n)
	}
	s.runMu.Unlock()
	run.mu.Lock()
	for _, n := range preFailed {
		run.failNode(n)
	}
	run.mu.Unlock()

	// Cancellation watcher: the first close of spec.Cancel flips the run to
	// aborted exactly like a terminal task failure would.
	watcherDone := make(chan struct{})
	if spec.Cancel != nil {
		go func() {
			select {
			case <-spec.Cancel:
				run.mu.Lock()
				if !run.aborted {
					run.aborted = true
					run.errs = append(run.errs, ErrCancelled)
				}
				run.mu.Unlock()
				run.cond.Broadcast()
			case <-watcherDone:
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for node := 0; node < s.opts.Nodes; node++ {
		for w := 0; w < s.opts.WorkersPerNode; w++ {
			wg.Add(1)
			go func(node, lane int) {
				defer wg.Done()
				run.worker(node, lane)
			}(node, w)
		}
	}
	wg.Wait()
	close(watcherDone)
	s.runMu.Lock()
	delete(s.runs, run)
	s.runMu.Unlock()
	// Per-iteration rollup spans: one span per iteration covering its
	// observed task envelope, parented under the run's causal span. Emitted
	// after the workers join, so no hot-path synchronization is added.
	if run.trace.Enabled() && spec.Span.Valid() {
		for it, sp := range run.iterSpans {
			run.trace.SpanCtx(fmt.Sprintf("iter %d", it), "engine", obs.PidEngine, 0,
				run.iterStart[it], run.iterEnd[it],
				obs.SpanContext{Trace: spec.Span.Trace, Span: sp}, spec.Span.Span,
				map[string]any{"iter": it})
		}
	}
	run.stats.Wall = time.Since(start)
	run.stats.StorageAfter = make([]storage.Stats, s.opts.Nodes)
	for i, st := range s.stores {
		run.stats.StorageAfter[i] = st.Stats()
	}
	// Safety net: a run must never report success with an incomplete graph
	// (e.g. every surviving worker exited because all remaining tasks were
	// pinned to dead nodes — impossible after reassignment, but cheap to
	// assert).
	if len(run.errs) == 0 && !run.graph.Done() {
		run.errs = append(run.errs, fmt.Errorf("core: run stalled with incomplete task graph"))
	}
	if len(run.errs) > 0 {
		return run.stats, errors.Join(run.errs...)
	}
	return run.stats, nil
}

// engineRun is the shared state of one Run invocation.
type engineRun struct {
	sys    *System
	graph  *dag.Graph
	assign map[string]int
	spec   RunSpec

	mu        sync.Mutex
	cond      *sync.Cond
	errs      []error
	aborted   bool
	consumers map[string]int
	dead      map[int]bool   // nodes that failed during (or before) the run
	retries   map[string]int // per-task re-executions charged to the budget
	// queuedAt stamps when a task first appeared in a ready set, for the
	// queued→running span in the trace.
	queuedAt map[string]time.Time
	// Per-iteration span rollup (guarded by mu; populated only when the run
	// carries a valid Span and tracing is on): span IDs minted on first use
	// and the iteration's observed wall-clock envelope.
	iterSpans map[int]obs.SpanID
	iterStart map[int]time.Time
	iterEnd   map[int]time.Time
	// readyFor/retireInputs scratch, guarded by mu.
	readyIDs   []string
	readyTasks []*dag.Task
	retireSeen map[string]bool

	policies []*scheduler.Policy
	metrics  engineMetrics
	trace    *obs.Tracer
	stats    *RunStats
}

// engineMetrics are the engine's series in the shared obs registry. With a
// nil registry every field is nil and every operation a no-op.
type engineMetrics struct {
	tasksDone  []*obs.Counter // per node
	retries    *obs.Counter
	nodeDeaths *obs.Counter
	queueWait  *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry, nodes int) engineMetrics {
	m := engineMetrics{
		retries:    reg.Counter("dooc_engine_task_retries_total", "task re-executions after executor failures"),
		nodeDeaths: reg.Counter("dooc_engine_node_deaths_total", "compute nodes marked dead during runs"),
		queueWait:  reg.Histogram("dooc_engine_queue_wait_seconds", "time from task ready to task start", nil),
		tasksDone:  make([]*obs.Counter, nodes),
	}
	for i := range m.tasksDone {
		m.tasksDone[i] = reg.Counter("dooc_engine_tasks_completed_total", "tasks completed", obs.L("node", fmt.Sprint(i)))
	}
	return m
}

// taskParent resolves the causal parent of one task span: the task's
// per-iteration span when IterOf recognizes it (minted on first use, its
// time envelope widened to cover this task), the run's span otherwise. Only
// called with tracing on and a valid run span.
func (r *engineRun) taskParent(taskID string, start, end time.Time) obs.SpanID {
	if r.spec.IterOf == nil {
		return r.spec.Span.Span
	}
	it, ok := r.spec.IterOf(taskID)
	if !ok {
		return r.spec.Span.Span
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp, ok := r.iterSpans[it]
	if !ok {
		sp = obs.NewSpanID()
		r.iterSpans[it] = sp
		r.iterStart[it] = start
		r.iterEnd[it] = end
		return sp
	}
	if start.Before(r.iterStart[it]) {
		r.iterStart[it] = start
	}
	if end.After(r.iterEnd[it]) {
		r.iterEnd[it] = end
	}
	return sp
}

// worker is one computing filter: it repeatedly asks the node's local
// scheduler for the best ready task, executes it, and publishes completion.
// lane identifies the worker within its node (the trace's tid).
func (r *engineRun) worker(node, lane int) {
	store := r.sys.stores[node]
	cache := r.sys.decode[node]
	ctx := &ExecContext{
		Node:    node,
		Workers: r.sys.opts.WorkersPerNode,
		Store:   store,
		cache:   cache,
		pool:    r.sys.kern[node*r.sys.opts.WorkersPerNode+lane],
	}
	if r.spec.DecodeAhead {
		ctx.pipe = r.sys.pipes[node]
	}
	var deadScratch []string
	for {
		r.mu.Lock()
		var task *dag.Task
		for {
			if r.aborted || r.graph.Done() || r.dead[node] {
				r.mu.Unlock()
				r.cond.Broadcast()
				return
			}
			mine := r.readyFor(node)
			if len(mine) > 0 {
				// Residency snapshot for the pick. The map call leaves the
				// lock briefly cold but keeps decisions fresh; the snapshot
				// is recycled as soon as the pick is made. A block living only
				// in the decode cache counts as resident: the multiply that
				// consumes it touches no storage bytes.
				rm := store.Map()
				resident := func(ref dag.Ref) bool {
					return cache.peek(ref.Array) || rm.Resident(ref.Array, blockOrZero(ref))
				}
				task = r.policies[node].Pick(mine, resident)
				// Keep the prefetch window full with the runner-up tasks'
				// heavy data; the decode pipeline rides the same order, and
				// blocks it already holds decoded skip the storage prefetch.
				if w := r.sys.opts.PrefetchWindow; w > 0 {
					for _, ref := range r.policies[node].PrefetchTargets(mine, resident, w) {
						if ctx.pipe.wants(ref.Array) {
							store.PrefetchBlock(ref.Array, blockOrZero(ref))
						}
					}
				}
				store.RecycleMap(rm)
				break
			}
			r.cond.Wait()
		}
		r.graph.Start(task.ID)
		r.policies[node].Touch(task.HeavyInputs())
		queued, hasQueued := r.queuedAt[task.ID]
		delete(r.queuedAt, task.ID)
		r.mu.Unlock()

		ev := Event{Node: node, Task: task.ID, Kind: task.Kind, Start: time.Now()}
		if hasQueued {
			r.metrics.queueWait.Observe(ev.Start.Sub(queued).Seconds())
			if r.trace.Enabled() {
				r.trace.Span(task.ID, "queued", node, lane, queued, ev.Start, map[string]any{"kind": task.Kind})
			}
		}
		ctx.reset(task)
		err := executeTask(r.spec.Executors[task.Kind], ctx)
		ev.End = time.Now()
		if r.trace.Enabled() {
			args := map[string]any{"kind": task.Kind, "ok": err == nil}
			if r.spec.Span.Valid() {
				r.trace.SpanCtx(task.ID, task.Kind, node, lane, ev.Start, ev.End,
					obs.SpanContext{Trace: r.spec.Span.Trace, Span: obs.NewSpanID()},
					r.taskParent(task.ID, ev.Start, ev.End), args)
			} else {
				r.trace.Span(task.ID, task.Kind, node, lane, ev.Start, ev.End, args)
			}
		}

		r.mu.Lock()
		r.stats.Events = append(r.stats.Events, ev)
		r.stats.TasksPerNode[node]++
		if err != nil {
			// Return the task's unreleased leases before re-execution:
			// abandoned write intervals revert to unwritten so the retry can
			// publish them itself.
			r.mu.Unlock()
			ctx.reclaim()
			r.trace.Instant("retry:"+task.ID, "engine", node, lane, time.Now(),
				map[string]any{"error": err.Error()})
			r.mu.Lock()
			r.recoverTask(node, task, err)
			r.mu.Unlock()
			r.cond.Broadcast()
			continue
		}
		r.graph.Complete(task.ID)
		r.metrics.tasksDone[node].Inc()
		dead := r.retireInputs(task, deadScratch[:0])
		deadScratch = dead[:0]
		r.mu.Unlock()
		r.cond.Broadcast()

		// Reclaim dead ephemeral arrays outside the lock.
		for _, name := range dead {
			r.sys.decode[node].invalidate(name)
			// Deletion failures (e.g. a concurrent late reader) are not
			// fatal; the array simply lives a little longer.
			_ = store.Delete(name)
		}
	}
}

// executeTask runs one executor, converting panics into task errors so a
// buggy or fault-tripped computing filter cannot take the whole process
// down — it is recovered, charged to the task's retry budget, and retried
// like any other failure.
func executeTask(exec Executor, ctx *ExecContext) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("executor panic: %v\n%s", p, debug.Stack())
		}
	}()
	return exec(ctx)
}

// recoverTask decides the fate of a failed task execution. Caller holds mu.
func (r *engineRun) recoverTask(node int, task *dag.Task, err error) {
	// The task is still marked running in the graph; always return it to the
	// ready set first so bookkeeping stays consistent on every path.
	r.graph.Requeue(task.ID)
	if r.aborted {
		// Another failure already aborted the run; don't pile on.
		return
	}
	if r.dead[node] {
		// The node died under the task: re-execution on a survivor is the
		// recovery contract, not a task defect — no budget charge. failNode
		// already reassigned the node's incomplete tasks (including this one).
		r.stats.TaskRetries++
		r.metrics.retries.Inc()
		return
	}
	if r.retries[task.ID] < r.sys.opts.TaskRetries {
		r.retries[task.ID]++
		r.stats.TaskRetries++
		r.metrics.retries.Inc()
		return
	}
	r.errs = append(r.errs, fmt.Errorf("core: task %s on node %d (after %d executions): %w",
		task.ID, node, r.retries[task.ID]+1, err))
	r.aborted = true
}

// failNode marks a node dead and moves its incomplete tasks to surviving
// nodes round-robin. Caller holds mu.
func (r *engineRun) failNode(node int) {
	if r.dead[node] {
		return
	}
	r.dead[node] = true
	r.stats.NodesFailed++
	r.metrics.nodeDeaths.Inc()
	r.trace.Instant(fmt.Sprintf("node-death:%d", node), "engine", node, 0, time.Now(), nil)
	var survivors []int
	for n := 0; n < r.sys.opts.Nodes; n++ {
		if !r.dead[n] {
			survivors = append(survivors, n)
		}
	}
	if len(survivors) == 0 {
		if !r.aborted {
			r.errs = append(r.errs, fmt.Errorf("core: no nodes survive; cannot recover"))
			r.aborted = true
		}
		return
	}
	i := 0
	for _, t := range r.graph.Tasks() {
		if r.assign[t.ID] == node && !r.graph.Completed(t.ID) {
			r.assign[t.ID] = survivors[i%len(survivors)]
			i++
		}
	}
}

// readyFor returns this node's ready tasks in DAG order. Caller holds mu.
// The result aliases per-run scratch: it is valid only while mu is held and
// until the next readyFor call (the pick path consumes it immediately).
func (r *engineRun) readyFor(node int) []*dag.Task {
	ids := r.graph.ReadyAppend(r.readyIDs[:0])
	r.readyIDs = ids[:0]
	out := r.readyTasks[:0]
	for _, id := range ids {
		if r.assign[id] == node {
			if _, ok := r.queuedAt[id]; !ok {
				r.queuedAt[id] = time.Now()
			}
			out = append(out, r.graph.Task(id))
		}
	}
	r.readyTasks = out[:0]
	return out
}

// retireInputs decrements consumer counts and appends ephemeral arrays with
// no remaining consumers to dst. Caller holds mu; dst is the caller's own
// scratch (the result outlives the lock).
func (r *engineRun) retireInputs(t *dag.Task, dst []string) []string {
	if r.retireSeen == nil {
		r.retireSeen = make(map[string]bool, 8)
	}
	seen := r.retireSeen
	clear(seen)
	for _, in := range t.Inputs {
		if seen[in.Array] {
			continue
		}
		seen[in.Array] = true
		r.consumers[in.Array]--
		if r.consumers[in.Array] == 0 && r.spec.Ephemeral[in.Array] {
			dst = append(dst, in.Array)
		}
	}
	return dst
}

func blockOrZero(ref dag.Ref) int {
	if ref.Block == dag.Whole || ref.Block < 0 {
		return 0
	}
	return ref.Block
}
