package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dooc/internal/obs"
	"dooc/internal/sparse"
)

// causalEvent is the slice of a Chrome trace event this test inspects.
type causalEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

// arg returns a string-valued arg ("" when absent or non-string).
func (e causalEvent) arg(key string) string {
	s, _ := e.Args[key].(string)
	return s
}

// decodeTraceEvents unwraps a Tracer blob's traceEvents array.
func decodeTraceEvents(t *testing.T, blob []byte) []causalEvent {
	t.Helper()
	var file struct {
		TraceEvents []causalEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &file); err != nil {
		t.Fatal(err)
	}
	return file.TraceEvents
}

// TestEngineSpansFormCausalTree runs a traced iterated SpMV under an
// externally supplied span context (as the job service supplies the job's
// run span) and asserts the causal topology: every annotated span carries
// the same trace ID, per-iteration spans parent to the supplied context,
// task spans parent to their iteration's span, and the whole blob passes
// obs.ValidateCausal once the root is added.
func TestEngineSpansFormCausalTree(t *testing.T) {
	const (
		nodes = 2
		dim   = 40
		iters = 3
	)
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer()
	sys, err := NewSystem(Options{Nodes: nodes, WorkersPerNode: 2, Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 2, Iters: iters, Nodes: nodes}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	root := obs.NewSpanContext()
	cfg.Trace = root
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	if _, err := RunIteratedSpMV(sys, cfg, randVec(rng, dim)); err != nil {
		t.Fatal(err)
	}
	tracer.SpanCtx("solve", "client", obs.PidClient, 0, start, time.Now(),
		root, obs.SpanID{}, nil)

	var blob bytes.Buffer
	if err := tracer.WriteJSON(&blob); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateCausal(blob.Bytes()); err != nil {
		t.Fatalf("engine trace is not one causal tree: %v", err)
	}

	events := decodeTraceEvents(t, blob.Bytes())
	iterSpans := map[string]string{} // span_id -> name
	for _, ev := range events {
		if ev.Cat != "engine" || ev.Ph != "X" {
			continue
		}
		if ev.arg("parent_id") != root.Span.String() {
			t.Fatalf("iteration span %q parents to %s, want the supplied context %s",
				ev.Name, ev.arg("parent_id"), root.Span)
		}
		iterSpans[ev.arg("span_id")] = ev.Name
	}
	if len(iterSpans) != iters {
		t.Fatalf("found %d iteration spans, want %d", len(iterSpans), iters)
	}
	// spmv task IDs number iterations from 1 (x_0 is the start vector).
	for it := 1; it <= iters; it++ {
		want := fmt.Sprintf("iter %d", it)
		found := false
		for _, name := range iterSpans {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("no %q span; have %v", want, iterSpans)
		}
	}
	tasks := 0
	for _, ev := range events {
		if ev.Cat != "mult" && ev.Cat != "sum" {
			continue
		}
		if ev.arg("trace_id") == "" {
			continue // queued-phase spans stay plain
		}
		tasks++
		if ev.arg("trace_id") != root.Trace.String() {
			t.Fatalf("task span %q carries trace %s, want %s", ev.Name, ev.arg("trace_id"), root.Trace)
		}
		if _, ok := iterSpans[ev.arg("parent_id")]; !ok {
			t.Fatalf("task span %q parents to %s, which is not an iteration span",
				ev.Name, ev.arg("parent_id"))
		}
	}
	if tasks == 0 {
		t.Fatal("no causally annotated task spans emitted")
	}
}

// TestUntracedRunEmitsNoCausalSpans: without a span context the engine's
// trace output keeps its pre-existing plain shape — no causal args, no
// iteration rollups — so the zero-cost-when-off contract is visible.
func TestUntracedRunEmitsNoCausalSpans(t *testing.T) {
	const dim = 40
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer()
	sys, err := NewSystem(Options{Nodes: 2, WorkersPerNode: 2, Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 2, Iters: 2, Nodes: 2}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := RunIteratedSpMV(sys, cfg, randVec(rng, dim)); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := tracer.WriteJSON(&blob); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTraceEvents(t, blob.Bytes()) {
		if ev.arg("trace_id") != "" {
			t.Fatalf("untraced run emitted causal span %q", ev.Name)
		}
		if ev.Cat == "engine" && ev.Ph == "X" {
			t.Fatalf("untraced run emitted iteration span %q", ev.Name)
		}
	}
}
