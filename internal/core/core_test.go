package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dooc/internal/dag"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// referenceIterate computes iters in-core power iterations for comparison.
func referenceIterate(m *sparse.CSR, x []float64, iters int) []float64 {
	cur := append([]float64(nil), x...)
	next := make([]float64, len(x))
	for i := 0; i < iters; i++ {
		sparse.MulVec(m, cur, next)
		cur, next = next, cur
	}
	return cur
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestRunSimpleChain(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 1, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	st := sys.Store(0)
	if err := st.Create("a", 8, 8); err != nil {
		t.Fatal(err)
	}
	if err := st.Create("b", 8, 8); err != nil {
		t.Fatal(err)
	}
	tasks := []*dag.Task{
		{ID: "produce", Kind: "write", Outputs: []dag.Ref{{Array: "a", Block: 0, Bytes: 8}}},
		{ID: "transform", Kind: "double", Inputs: []dag.Ref{{Array: "a", Block: 0, Bytes: 8}}, Outputs: []dag.Ref{{Array: "b", Block: 0, Bytes: 8}}},
	}
	exec := map[string]Executor{
		"write": func(ctx *ExecContext) error {
			l, err := ctx.Store.RequestBlock("a", 0, storage.PermWrite)
			if err != nil {
				return err
			}
			storage.PutFloat64s(l, []float64{21})
			l.Release()
			return nil
		},
		"double": func(ctx *ExecContext) error {
			in, err := ctx.Store.RequestBlock("a", 0, storage.PermRead)
			if err != nil {
				return err
			}
			v := storage.GetFloat64s(in)[0]
			in.Release()
			out, err := ctx.Store.RequestBlock("b", 0, storage.PermWrite)
			if err != nil {
				return err
			}
			storage.PutFloat64s(out, []float64{2 * v})
			out.Release()
			return nil
		},
	}
	stats, err := sys.Run(RunSpec{Tasks: tasks, Executors: exec})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := st.ReadAll("b")
	if err != nil {
		t.Fatal(err)
	}
	if got := storage.DecodeFloat64s(raw)[0]; got != 42 {
		t.Fatalf("b = %v, want 42", got)
	}
	if stats.TasksPerNode[0] != 2 {
		t.Fatalf("tasks on node 0 = %d", stats.TasksPerNode[0])
	}
	if len(stats.Events) != 2 {
		t.Fatalf("%d events", len(stats.Events))
	}
}

func TestRunMissingExecutor(t *testing.T) {
	sys, _ := NewSystem(Options{Nodes: 1})
	defer sys.Close()
	_, err := sys.Run(RunSpec{Tasks: []*dag.Task{{ID: "t", Kind: "mystery"}}, Executors: map[string]Executor{}})
	if err == nil || !strings.Contains(err.Error(), "no executor") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTaskErrorAborts(t *testing.T) {
	sys, _ := NewSystem(Options{Nodes: 1, WorkersPerNode: 2})
	defer sys.Close()
	tasks := []*dag.Task{
		{ID: "bad", Kind: "fail"},
		{ID: "dependent", Kind: "never", Inputs: []dag.Ref{{Array: "out", Block: 0}}},
	}
	tasks[0].Outputs = []dag.Ref{{Array: "out", Block: 0}}
	ran := false
	_, err := sys.Run(RunSpec{Tasks: tasks, Executors: map[string]Executor{
		"fail":  func(*ExecContext) error { return fmt.Errorf("intentional") },
		"never": func(*ExecContext) error { ran = true; return nil },
	}})
	if err == nil || !strings.Contains(err.Error(), "intentional") {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("dependent task ran after failure")
	}
}

func TestIteratedSpMVMatchesInCoreSingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 60, Cols: 60, D: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 1, WorkersPerNode: 2, Reorder: true, PrefetchWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: 60, K: 3, Iters: 3, Nodes: 1}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	x0 := randVec(rng, 60)
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceIterate(m, x0, 3)
	if d := maxAbsDiff(res.X, want); d > 1e-9 {
		t.Fatalf("out-of-core result differs from in-core by %v", d)
	}
}

func TestIteratedSpMVMatchesInCoreMultiNode(t *testing.T) {
	for _, nodes := range []int{2, 3} {
		rng := rand.New(rand.NewSource(13))
		dim := 45
		m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(Options{Nodes: nodes, WorkersPerNode: 2, Reorder: true, PrefetchWindow: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := SpMVConfig{Dim: dim, K: 3, Iters: 2, Nodes: nodes}
		if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
			t.Fatal(err)
		}
		x0 := randVec(rng, dim)
		res, err := RunIteratedSpMV(sys, cfg, x0)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceIterate(m, x0, 2)
		if d := maxAbsDiff(res.X, want); d > 1e-9 {
			t.Fatalf("nodes=%d: out-of-core differs by %v", nodes, d)
		}
		// Multi-node runs must move vector parts across nodes.
		if nodes > 1 && sys.Cluster().TotalNetworkBytes() == 0 {
			t.Errorf("nodes=%d: no network traffic recorded", nodes)
		}
		sys.Close()
	}
}

func TestIteratedSpMVOutOfCoreFromScratchFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dim := 64
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: 4, Iters: 3, Nodes: 2}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	// A tight memory budget forces genuine out-of-core behaviour: blocks
	// are evicted and re-read from scratch between iterations.
	sys, err := NewSystem(Options{
		Nodes:          2,
		WorkersPerNode: 2,
		MemoryBudget:   1 << 14, // 16 KiB: a few blocks at most
		ScratchRoot:    root,
		PrefetchWindow: 2,
		Reorder:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	x0 := randVec(rng, dim)
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceIterate(m, x0, 3)
	if d := maxAbsDiff(res.X, want); d > 1e-9 {
		t.Fatalf("out-of-core differs by %v", d)
	}
	if res.Stats.BytesReadDisk() == 0 {
		t.Fatal("no disk reads: run was not out-of-core")
	}
}

func TestEphemeralArraysAreReclaimed(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dim := 40
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 1, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: 2, Iters: 3, Nodes: 1}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := RunIteratedSpMV(sys, cfg, randVec(rng, dim))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != dim {
		t.Fatalf("result has %d entries", len(res.X))
	}
	// All transient generations must be gone: intermediates were reclaimed
	// as their last consumers finished, and the final vector was retired
	// after collection. Only the matrix arrays remain.
	for _, name := range []string{"x_0_0", "x_1_0", "x_2_0", "x_3_0", "xp_1_0_0", "xp_3_1_1"} {
		if _, err := sys.Store(0).Info(name); err == nil {
			t.Errorf("transient array %s still exists", name)
		}
	}
	if _, err := sys.Store(0).Info("A_000_000"); err != nil {
		t.Errorf("matrix array missing: %v", err)
	}
}

func TestReorderingReducesDiskTraffic(t *testing.T) {
	// With a one-block cache and multiple iterations, the data-aware policy
	// must re-read strictly less than FIFO (the Fig. 5 effect, on the real
	// engine with real files).
	rng := rand.New(rand.NewSource(23))
	dim := 120
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	run := func(reorder bool) int64 {
		root := t.TempDir()
		cfg := SpMVConfig{Dim: dim, K: 3, Iters: 4, Nodes: 1}
		if err := StageMatrix(root, m, cfg); err != nil {
			t.Fatal(err)
		}
		// Budget sized so roughly one sub-matrix block fits.
		info, err := sparse.ReadCRSFile(root + "/node0/A_000_000.arr")
		if err != nil {
			t.Fatal(err)
		}
		budget := sparse.FileBytes(info.Rows, info.NNZ()) * 3 / 2
		sys, err := NewSystem(Options{
			Nodes:        1,
			MemoryBudget: budget,
			ScratchRoot:  root,
			Reorder:      reorder,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		res, err := RunIteratedSpMV(sys, cfg, randVec(rng, dim))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.BytesReadDisk()
	}
	fifo := run(false)
	smart := run(true)
	if smart >= fifo {
		t.Fatalf("reordering did not reduce disk traffic: smart=%d fifo=%d", smart, fifo)
	}
}

// TestConcurrentRunsOnOneSystem: two tagged iterated-SpMV programs execute
// simultaneously on the same system and storage network without
// interference (distinct array namespaces, shared matrix blocks).
func TestConcurrentRunsOnOneSystem(t *testing.T) {
	const dim = 40
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 2, WorkersPerNode: 2, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	base := SpMVConfig{Dim: dim, K: 2, Iters: 2, Nodes: 2}
	if err := LoadMatrixInMemory(sys, m, base); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	xa := randVec(rng, dim)
	xb := randVec(rng, dim)

	type out struct {
		x   []float64
		err error
	}
	ra := make(chan out, 1)
	rb := make(chan out, 1)
	go func() {
		cfg := base
		cfg.Tag = "runA"
		res, err := RunIteratedSpMV(sys, cfg, xa)
		if err != nil {
			ra <- out{err: err}
			return
		}
		ra <- out{x: res.X}
	}()
	go func() {
		cfg := base
		cfg.Tag = "runB"
		res, err := RunIteratedSpMV(sys, cfg, xb)
		if err != nil {
			rb <- out{err: err}
			return
		}
		rb <- out{x: res.X}
	}()
	a, b := <-ra, <-rb
	if a.err != nil || b.err != nil {
		t.Fatalf("concurrent runs failed: %v / %v", a.err, b.err)
	}
	wantA := referenceIterate(m, xa, 2)
	wantB := referenceIterate(m, xb, 2)
	if d := maxAbsDiff(a.x, wantA); d > 1e-10 {
		t.Fatalf("run A differs by %v", d)
	}
	if d := maxAbsDiff(b.x, wantB); d > 1e-10 {
		t.Fatalf("run B differs by %v", d)
	}
}
