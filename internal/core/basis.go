package core

import (
	"fmt"

	"dooc/internal/storage"
)

// BasisStore keeps Lanczos basis vectors in DOoC storage arrays instead of
// process memory. With Spill enabled, every appended vector is immediately
// flushed to the scratch directory and evicted, so the resident footprint
// of a k-step run stays O(dim) instead of O(k·dim) — out-of-core
// reorthogonalization, the natural next step after the paper's out-of-core
// SpMV ("our out-of-core code does not implement the full Lanczos algorithm
// required for MFDn computations").
type BasisStore struct {
	// Store is the node-local storage filter holding the vectors.
	Store *storage.Store
	// Prefix namespaces the vector arrays (default "lanczos").
	Prefix string
	// Spill flushes + evicts each vector right after it is written,
	// forcing genuine out-of-core streaming during reorthogonalization.
	// Requires the store to have a scratch directory.
	Spill bool

	count int
}

// name returns the array name of basis vector j.
func (b *BasisStore) name(j int) string {
	p := b.Prefix
	if p == "" {
		p = "lanczos"
	}
	return fmt.Sprintf("%s:v%d", p, j)
}

// Append implements lanczos.Basis.
func (b *BasisStore) Append(v []float64) error {
	name := b.name(b.count)
	size := int64(8 * len(v))
	if err := b.Store.Create(name, size, size); err != nil {
		return err
	}
	l, err := b.Store.Request(name, 0, size, storage.PermWrite)
	if err != nil {
		return err
	}
	storage.PutFloat64s(l, v)
	l.Release()
	if b.Spill {
		if err := b.Store.Flush(name); err != nil {
			return err
		}
		if err := b.Store.Evict(name, 0); err != nil {
			return err
		}
	}
	b.count++
	return nil
}

// Len implements lanczos.Basis.
func (b *BasisStore) Len() int { return b.count }

// Vector implements lanczos.Basis. Evicted vectors are transparently
// re-read from scratch by the storage layer.
func (b *BasisStore) Vector(j int) ([]float64, error) {
	if j < 0 || j >= b.count {
		return nil, fmt.Errorf("core: basis vector %d out of [0,%d)", j, b.count)
	}
	raw, err := b.Store.ReadAll(b.name(j))
	if err != nil {
		return nil, err
	}
	return storage.DecodeFloat64s(raw), nil
}

// Close deletes all stored vectors.
func (b *BasisStore) Close() error {
	var first error
	for j := 0; j < b.count; j++ {
		if err := b.Store.Delete(b.name(j)); err != nil && first == nil {
			first = err
		}
	}
	b.count = 0
	return first
}
