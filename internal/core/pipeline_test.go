package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"dooc/internal/obs"
	"dooc/internal/sparse"
)

// stageBlockArray writes one encoded CRS block into node 0's store.
func stageBlockArray(t *testing.T, sys *System, name string, m *sparse.CSR) {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteCRS(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := sys.Store(0).WriteArray(name, buf.Bytes(), 0); err != nil {
		t.Fatal(err)
	}
}

func testMatrix(t *testing.T, seed int64) *sparse.CSR {
	t.Helper()
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 60, Cols: 60, D: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDecodePipelineAheadOfUse drives one pipeline directly: a block handed
// to wants() must be decoded in the background, count as a fully-overlapped
// decode when consumed, and never be re-requested.
func TestDecodePipelineAheadOfUse(t *testing.T) {
	reg := obs.NewRegistry()
	sys, err := NewSystem(Options{Nodes: 1, DecodeCacheBytes: 1 << 20, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pipe := sys.pipes[0]
	if pipe == nil {
		t.Fatal("DecodeCacheBytes > 0 must start a decode pipeline")
	}
	m := testMatrix(t, 11)
	stageBlockArray(t, sys, "blk", m)

	if !pipe.wants("blk") {
		t.Fatal("first wants() must still request the storage prefetch")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !sys.decode[0].peek("blk") {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never decoded the block")
		}
		time.Sleep(time.Millisecond)
	}
	if pipe.wants("blk") {
		t.Fatal("a decoded block must not be prefetched again")
	}

	got, err := pipe.matrix(sys.Store(0), "blk")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != m.Rows || got.NNZ() != m.NNZ() {
		t.Fatalf("pipeline decoded %dx%d/%d nnz, want %dx%d/%d", got.Rows, got.Cols, got.NNZ(), m.Rows, m.Cols, m.NNZ())
	}
	for i := range m.Val {
		if math.Float64bits(got.Val[i]) != math.Float64bits(m.Val[i]) {
			t.Fatalf("decoded value %d differs", i)
		}
	}

	hits, misses := sys.decode[0].stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("cache saw hits=%d misses=%d, want 1/0 (decode happened off the consumer path)", hits, misses)
	}
	if got := reg.Sum("dooc_kernel_pipeline_decodes_total"); got != 1 {
		t.Errorf("pipeline_decodes = %d, want 1", got)
	}
	if got := reg.Sum("dooc_kernel_pipeline_overlap_total"); got != 1 {
		t.Errorf("pipeline_overlap = %d, want 1 (decode finished before the consumer asked)", got)
	}
	if got := reg.Sum("dooc_kernel_pipeline_stalls_total"); got != 0 {
		t.Errorf("pipeline_stalls = %d, want 0", got)
	}
}

// TestDecodePipelineStallAccounting: a consumer that arrives before any
// prefetch is a stall — the decode runs synchronously and counts as a cache
// miss, exactly like the pipeline-less path.
func TestDecodePipelineStallAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	sys, err := NewSystem(Options{Nodes: 1, DecodeCacheBytes: 1 << 20, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	m := testMatrix(t, 12)
	stageBlockArray(t, sys, "cold", m)

	if _, err := sys.pipes[0].matrix(sys.Store(0), "cold"); err != nil {
		t.Fatal(err)
	}
	hits, misses := sys.decode[0].stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("cache saw hits=%d misses=%d, want 0/1", hits, misses)
	}
	if got := reg.Sum("dooc_kernel_pipeline_stalls_total"); got != 1 {
		t.Errorf("pipeline_stalls = %d, want 1", got)
	}
	if got := reg.Sum("dooc_kernel_pipeline_overlap_total"); got != 0 {
		t.Errorf("pipeline_overlap = %d, want 0", got)
	}
	// Second touch is a plain hit, no new pipeline activity.
	if _, err := sys.pipes[0].matrix(sys.Store(0), "cold"); err != nil {
		t.Fatal(err)
	}
	if hits, _ := sys.decode[0].stats(); hits != 1 {
		t.Fatalf("second touch: hits = %d, want 1", hits)
	}
}

// TestDecodeAheadBitIdentical runs the staged out-of-core SpMV with the
// decode cache + pipeline enabled and disabled under a tight memory budget
// and requires bit-identical iterates: the pipeline moves decode work off
// the critical path but may never change the arithmetic.
func TestDecodeAheadBitIdentical(t *testing.T) {
	const dim, k, nodes, iters = 600, 3, 3, 4
	rng := rand.New(rand.NewSource(21))
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	x0 := randVec(rng, dim)
	cfg := SpMVConfig{Dim: dim, K: k, Iters: iters, Nodes: nodes}

	run := func(cacheBytes int64, reg *obs.Registry) []float64 {
		root := t.TempDir()
		if err := StageMatrix(root, m, cfg); err != nil {
			t.Fatal(err)
		}
		info, err := DiscoverStagedMatrix(root)
		if err != nil {
			t.Fatal(err)
		}
		blockBytes := info.Bytes / int64(k*k)
		sys, err := NewSystem(Options{
			Nodes:            nodes,
			WorkersPerNode:   1,
			MemoryBudget:     blockBytes*2 + 1<<14,
			ScratchRoot:      root,
			PrefetchWindow:   2,
			Reorder:          true,
			DecodeCacheBytes: cacheBytes,
			Obs:              reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		res, err := RunIteratedSpMV(sys, cfg, x0)
		if err != nil {
			t.Fatal(err)
		}
		return res.X
	}

	base := run(0, nil)
	reg := obs.NewRegistry()
	piped := run(1<<22, reg)
	for i := range base {
		if math.Float64bits(base[i]) != math.Float64bits(piped[i]) {
			t.Fatalf("element %d: pipelined run %v, baseline %v", i, piped[i], base[i])
		}
	}
	decodes := reg.Sum("dooc_kernel_pipeline_decodes_total")
	stalls := reg.Sum("dooc_kernel_pipeline_stalls_total")
	if decodes+stalls == 0 {
		t.Error("decode-ahead run materialized no CRS blocks at all")
	}
	t.Logf("pipeline decodes=%d stalls=%d waits=%d overlap=%d",
		decodes, stalls, reg.Sum("dooc_kernel_pipeline_waits_total"), reg.Sum("dooc_kernel_pipeline_overlap_total"))
}
