package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dooc/internal/sparse"
)

// BenchmarkIteratedSpMVRun measures the full engine data path — program
// build, DAG derivation, scheduling, lease traffic, zero-copy executor
// views, generation create/delete — for one small in-memory SpMV solve per
// op. allocs/op here is the end-to-end allocator cost the hotpath harness
// tracks at scale (cmd/doocbench -exp hotpath).
func BenchmarkIteratedSpMVRun(b *testing.B) {
	const dim, k, nodes, iters = 400, 2, 2, 2
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 4, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: nodes, WorkersPerNode: 1, Reorder: true, PrefetchWindow: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	cfg := SpMVConfig{Dim: dim, K: k, Iters: iters, Nodes: nodes}
	if err := LoadMatrixInMemory(sys, m, cfg); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Tag = fmt.Sprintf("bench%d", i)
		if _, err := RunIteratedSpMV(sys, cfg, x0); err != nil {
			b.Fatal(err)
		}
	}
}
