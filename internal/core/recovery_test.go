package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dooc/internal/dag"
	"dooc/internal/faults"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// TestExecutorPanicFailsRunCleanly: a panicking executor must fail the run
// with an attributed error — never crash the process. The panic is charged
// to the task's retry budget like any other failure.
func TestExecutorPanicFailsRunCleanly(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var executions atomic.Int32
	_, err = sys.Run(RunSpec{
		Tasks: []*dag.Task{{ID: "boom", Kind: "boom"}},
		Executors: map[string]Executor{"boom": func(ctx *ExecContext) error {
			executions.Add(1)
			panic("kernel shape mismatch")
		}},
	})
	if err == nil {
		t.Fatal("run succeeded despite panicking executor")
	}
	for _, want := range []string{"panic", "kernel shape mismatch", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// Default budget is 2 retries: 3 executions total.
	if got := executions.Load(); got != 3 {
		t.Fatalf("executed %d times, want 3", got)
	}
}

// TestTaskRetryRecoversTransientFailure: an executor that fails twice —
// leaving an unreleased write lease each time — and succeeds on the third
// try must produce a correct result. The engine has to abandon the failed
// attempts' leases or the retry would deadlock on its own output interval.
func TestTaskRetryRecoversTransientFailure(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Store(0).Create("out", 8, 8); err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int32
	stats, err := sys.Run(RunSpec{
		Tasks: []*dag.Task{{ID: "flaky", Kind: "flaky",
			Outputs: []dag.Ref{{Array: "out", Block: 0, Bytes: 8}}}},
		Executors: map[string]Executor{"flaky": func(ctx *ExecContext) error {
			n := executions.Add(1)
			l, err := ctx.RequestBlock("out", 0, storage.PermWrite)
			if err != nil {
				return err
			}
			if n < 3 {
				copy(l.Data, "GARBAGE!")
				return errors.New("transient device error") // lease leaks: engine must abandon it
			}
			copy(l.Data, "GOODDATA")
			l.Release()
			return nil
		}},
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if stats.TaskRetries != 2 {
		t.Fatalf("TaskRetries = %d, want 2", stats.TaskRetries)
	}
	got, err := sys.Store(0).ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "GOODDATA" {
		t.Fatalf("out = %q, want GOODDATA", got)
	}
}

// TestFailNodeReexecutesTaskOnSurvivor: a task running on a node that dies
// mid-execution is re-executed on a surviving node, its half-written output
// lease reclaimed, and the run completes with the survivor's result.
func TestFailNodeReexecutesTaskOnSurvivor(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Store(0).Create("out", 8, 8); err != nil {
		t.Fatal(err)
	}
	var started sync.Once
	startedCh := make(chan struct{})
	release := make(chan struct{})
	exec := func(ctx *ExecContext) error {
		if ctx.Node == 1 {
			l, err := ctx.RequestBlock("out", 0, storage.PermWrite)
			if err != nil {
				return err
			}
			copy(l.Data, "DOOMED!!")
			started.Do(func() { close(startedCh) })
			<-release
			return errors.New("node 1 crashed mid-task")
		}
		l, err := ctx.RequestBlock("out", 0, storage.PermWrite)
		if err != nil {
			return err
		}
		copy(l.Data, "SURVIVED")
		l.Release()
		return nil
	}
	type result struct {
		stats *RunStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		stats, err := sys.Run(RunSpec{
			Tasks: []*dag.Task{{ID: "only", Kind: "work",
				Outputs: []dag.Ref{{Array: "out", Block: 0, Bytes: 8}}}},
			Executors:  map[string]Executor{"work": exec},
			Assignment: map[string]int{"only": 1},
		})
		done <- result{stats, err}
	}()
	<-startedCh
	if err := sys.FailNode(1); err != nil {
		t.Fatal(err)
	}
	close(release)
	var res result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run hung after node failure")
	}
	if res.err != nil {
		t.Fatalf("run failed: %v", res.err)
	}
	if res.stats.NodesFailed != 1 {
		t.Fatalf("NodesFailed = %d, want 1", res.stats.NodesFailed)
	}
	if res.stats.TaskRetries == 0 {
		t.Fatal("task was never re-executed")
	}
	got, err := sys.Store(0).ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "SURVIVED" {
		t.Fatalf("out = %q, want SURVIVED (the survivor's write)", got)
	}
}

// TestRunFailsWhenNoNodesSurvive: killing the only node aborts the run with
// an attributed error instead of hanging.
func TestRunFailsWhenNoNodesSurvive(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	startedCh := make(chan struct{})
	release := make(chan struct{})
	var started sync.Once
	done := make(chan error, 1)
	go func() {
		_, err := sys.Run(RunSpec{
			Tasks: []*dag.Task{{ID: "t", Kind: "w"}},
			Executors: map[string]Executor{"w": func(ctx *ExecContext) error {
				started.Do(func() { close(startedCh) })
				<-release
				return errors.New("crashed")
			}},
		})
		done <- err
	}()
	<-startedCh
	if err := sys.FailNode(0); err != nil {
		t.Fatal(err)
	}
	close(release)
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "no nodes survive") {
			t.Fatalf("err = %v, want no-nodes-survive error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run hung after losing every node")
	}
}

// TestIteratedSpMVSurvivesInjectedIOFaults: with a bounded budget of
// injected transient I/O errors against the staged matrix reads, the run
// must recover — through ioPool retries and, when those are exhausted, task
// re-execution — and produce the exact reference result.
func TestIteratedSpMVSurvivesInjectedIOFaults(t *testing.T) {
	const dim, k = 48, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	x0 := randVec(rng, dim)
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: k, Iters: 3, Nodes: 2, Tag: "faulty"}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 9, IOErrorRate: 1, MaxInjections: 4})
	sys, err := NewSystem(Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 20,
		Reorder:        true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := RunIteratedSpMV(sys, cfg, x0)
	if err != nil {
		t.Fatalf("run did not survive injected I/O faults: %v", err)
	}
	want := referenceIterate(m, x0, cfg.Iters)
	if d := maxAbsDiff(res.X, want); d > 1e-10 {
		t.Fatalf("result differs from reference by %v", d)
	}
	if inj.Counts().IOErrors == 0 {
		t.Fatal("no faults injected; test proved nothing")
	}
	var retries int64
	for i := range res.Stats.StorageAfter {
		retries += res.Stats.StorageAfter[i].IORetries - res.Stats.StorageBefore[i].IORetries
	}
	if retries == 0 {
		t.Fatal("injected errors but the ioPool never retried")
	}
}

// TestCrashMidIterationResumes is the dirty-crash variant of the resume
// test: every node dies partway through a checkpointed run (leaving
// partially written iterates and partial checkpoint files on scratch), then
// a fresh system resumes over the same scratch and must reach the exact
// uninterrupted reference result.
func TestCrashMidIterationResumes(t *testing.T) {
	m, x0, root := checkpointFixture(t)
	const iters = 4
	cfg := SpMVConfig{Dim: m.Rows, K: 3, Iters: iters, Nodes: 2, Tag: "job4"}

	sys1 := checkpointSystem(t, root)
	done := make(chan error, 1)
	go func() {
		_, _, err := ResumeIteratedSpMV(sys1, cfg, x0)
		done <- err
	}()
	// Wait for all parts of iteration 1's checkpoint to land on disk, then
	// kill both nodes: the run dies somewhere past iteration 1, typically
	// mid-iteration, leaving later iterations' checkpoints incomplete. (The
	// complete-iteration-1 wait also guarantees the resume starts at ≥ 1,
	// so its segment arrays never collide with the crashed segment's
	// leftovers on scratch.)
	ckComplete := func() bool {
		for u := 0; u < cfg.K; u++ {
			found := false
			for node := 0; node < 2; node++ {
				p := filepath.Join(root, fmt.Sprintf("node%d", node), fmt.Sprintf("%s:x_1_%d.arr", cfg.Tag, u))
				if _, err := os.Stat(p); err == nil {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(20 * time.Second)
	for !ckComplete() {
		if time.Now().After(deadline) {
			t.Fatal("iteration-1 checkpoint never appeared")
		}
		time.Sleep(200 * time.Microsecond)
	}
	_ = sys1.FailNode(0)
	_ = sys1.FailNode(1)
	select {
	case err := <-done:
		if err == nil {
			// The whole run may have raced to completion before the kill on a
			// fast machine; the resume below then validates the no-op path.
			t.Log("run completed before both nodes died")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("crashed run never returned")
	}
	sys1.Close()

	sys2 := checkpointSystem(t, root)
	defer sys2.Close()
	res, from, err := ResumeIteratedSpMV(sys2, cfg, x0)
	if err != nil {
		t.Fatalf("resume after dirty crash failed: %v", err)
	}
	if from < 0 || from > iters {
		t.Fatalf("resumed from impossible iteration %d", from)
	}
	want := referenceIterate(m, x0, iters)
	if d := maxAbsDiff(res.X, want); d > 1e-9 {
		t.Fatalf("resumed result differs from uninterrupted reference by %v", d)
	}
}
