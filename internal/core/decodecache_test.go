package core

import (
	"bytes"
	"testing"

	"dooc/internal/sparse"
	"dooc/internal/storage"
)

func stageRaw(t *testing.T, s *storage.Store, name string, m *sparse.CSR) {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteCRS(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteArray(name, buf.Bytes(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCacheHitsAndEviction(t *testing.T) {
	s, err := storage.NewLocal(storage.Config{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: 30, Cols: 30, D: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stageRaw(t, s, "a", m)
	stageRaw(t, s, "b", m)
	stageRaw(t, s, "c", m)

	// Capacity for roughly two decoded copies.
	c := newDecodeCache(2*m.Bytes() + 64)
	for _, name := range []string{"a", "a", "b", "a"} {
		got, err := c.matrix(s, name)
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != m.NNZ() {
			t.Fatalf("%s: nnz %d", name, got.NNZ())
		}
	}
	hits, misses := c.stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", hits, misses)
	}
	// Loading c evicts the LRU (b).
	if _, err := c.matrix(s, "c"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.entries["b"]; ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.entries["a"]; !ok {
		t.Fatal("a evicted although more recently used")
	}
	// Invalidate drops entries and is nil-safe.
	c.invalidate("a")
	if _, ok := c.entries["a"]; ok {
		t.Fatal("invalidate did not drop a")
	}
	var nilCache *decodeCache
	nilCache.invalidate("x")
	if h, m := nilCache.stats(); h != 0 || m != 0 {
		t.Fatal("nil cache stats")
	}
	if _, err := nilCache.matrix(s, "a"); err != nil {
		t.Fatalf("nil cache read-through: %v", err)
	}
}

func TestDecodeCacheDisabledByDefault(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.decode[0] != nil {
		t.Fatal("decode cache enabled without DecodeCacheBytes")
	}
}
