package core

import (
	"math"
	"math/rand"
	"testing"

	"dooc/internal/compress"
	"dooc/internal/sparse"
)

// quantize rounds matrix values to 1/1024 steps — the limited-precision
// structure of physical matrix elements, which the value codec exploits.
func quantize(m *sparse.CSR) {
	for i, v := range m.Val {
		m.Val[i] = math.Round(v*1024) / 1024
	}
}

// TestCompressedStagingAndSpillsMatchRaw runs the same iterated SpMV twice —
// once with V1 staging and no codec, once with DOOCCRS2 staging and
// compressed scratch spills — and requires bit-identical results alongside a
// genuinely smaller staged set and spill traffic.
func TestCompressedStagingAndSpillsMatchRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	dim := 96
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	quantize(m)
	// A quantized starting vector keeps the iterates' mantissas short, so
	// the spilled checkpoint vectors stay compressible (random mantissas
	// would exercise only the bail-out).
	x0 := randVec(rng, dim)
	for i, v := range x0 {
		x0[i] = math.Round(v*256) / 256
	}
	cfg := SpMVConfig{Dim: dim, K: 3, Iters: 3, Nodes: 2, Tag: "ck"}

	// Checkpointed runs flush every iterate, so transient vectors really
	// travel through the spill path (a plain run keeps them memory- or
	// peer-backed and never writes them).
	run := func(compressed bool) ([]float64, StagedMatrixInfo, *RunStats) {
		root := t.TempDir()
		stage := StageMatrix
		if compressed {
			stage = StageMatrixCompressed
		}
		if err := stage(root, m, cfg); err != nil {
			t.Fatal(err)
		}
		info, err := DiscoverStagedMatrix(root)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Nodes:          2,
			WorkersPerNode: 2,
			MemoryBudget:   1 << 14, // force spills and re-reads
			ScratchRoot:    root,
			PrefetchWindow: 2,
			Reorder:        true,
		}
		if compressed {
			opts.Codec = compress.Default()
		}
		sys, err := NewSystem(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		res, resumedFrom, err := ResumeIteratedSpMV(sys, cfg, x0)
		if err != nil {
			t.Fatal(err)
		}
		if resumedFrom != 0 {
			t.Fatalf("fresh run resumed from iteration %d", resumedFrom)
		}
		return res.X, info, res.Stats
	}

	rawX, rawInfo, _ := run(false)
	encX, encInfo, encStats := run(true)

	// Compression must never perturb the numerics: same bits, not just
	// close floats.
	if len(rawX) != len(encX) {
		t.Fatalf("result lengths differ: %d vs %d", len(rawX), len(encX))
	}
	for i := range rawX {
		if math.Float64bits(rawX[i]) != math.Float64bits(encX[i]) {
			t.Fatalf("entry %d differs: %v vs %v", i, rawX[i], encX[i])
		}
	}
	if encInfo.Dim != rawInfo.Dim || encInfo.NNZ != rawInfo.NNZ {
		t.Fatalf("discovery disagrees across formats: %+v vs %+v", encInfo, rawInfo)
	}
	if encInfo.Bytes >= rawInfo.Bytes {
		t.Errorf("V2 staged set is %d bytes, V1 is %d: no shrink", encInfo.Bytes, rawInfo.Bytes)
	}
	if encStats.CompressRawBytes() == 0 {
		t.Fatal("codec run never spilled through the encoder")
	}
	if stored, raw := encStats.CompressStoredBytes(), encStats.CompressRawBytes(); stored >= raw {
		t.Errorf("spill stored %d bytes for %d raw: no shrink", stored, raw)
	}
}
