package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// Checkpointing: a long iterated-SpMV run can persist every produced
// iterate to the scratch directory, so a crashed or interrupted run resumes
// from the last completed iteration instead of from x⁰. This is the
// operational complement of out-of-core execution — the same scratch
// directories, sidecars, and startup scan that hold the matrix also hold
// the solver's progress.

// Checkpoint describes a resumable state found on disk.
type Checkpoint struct {
	// Iter is the last completed iteration.
	Iter int
	// X is the iterate x[Iter].
	X []float64
}

// Checkpoint files carry a CRC32-C trailer over the payload so a file torn
// by a crash mid-write (or bit-rotted) is detected at load, not silently
// resumed from. Trailer-less files the exact payload length are accepted as
// legacy.
var ckCRC = crc32.MakeTable(crc32.Castagnoli)

const ckTrailerLen = 4

// writeCheckpointFile persists one checkpoint part atomically (tmp +
// rename) with its CRC32-C trailer, so the resume scan never observes a
// half-written part under the final name.
func writeCheckpointFile(dst string, data []byte) error {
	buf := make([]byte, len(data)+ckTrailerLen)
	copy(buf, data)
	binary.LittleEndian.PutUint32(buf[len(data):], crc32.Checksum(data, ckCRC))
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readCheckpointPart loads and verifies one part, returning exactly want
// payload bytes.
func readCheckpointPart(path string, want int) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch len(raw) {
	case want + ckTrailerLen:
		if crc32.Checksum(raw[:want], ckCRC) != binary.LittleEndian.Uint32(raw[want:]) {
			return nil, fmt.Errorf("core: checkpoint part %s fails its CRC32-C", path)
		}
		return raw[:want], nil
	case want:
		// Legacy trailer-less part: length is the only check available.
		return raw, nil
	default:
		return nil, fmt.Errorf("core: checkpoint part %s truncated (%d bytes, want %d)", path, len(raw), want)
	}
}

// LatestCheckpoint scans the scratch layout for the newest complete and
// *valid* iterate of a tagged run: every part must pass its length and
// checksum, and a corrupt latest iteration (crash mid-write) falls back to
// the previous valid one instead of failing the resume. Returns (nil, nil)
// when no valid checkpoint exists.
func LatestCheckpoint(scratchRoot string, cfg SpMVConfig) (*Checkpoint, error) {
	if cfg.Tag == "" {
		return nil, fmt.Errorf("core: checkpointed runs need a stable Tag")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, err := cfg.Partition()
	if err != nil {
		return nil, err
	}
	prefix := cfg.Tag + ":"
	// Find, per iteration index, which vector parts exist on disk.
	parts := map[int]map[int]string{} // iter -> u -> file path
	entries, err := os.ReadDir(scratchRoot)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "node") {
			continue
		}
		files, err := os.ReadDir(filepath.Join(scratchRoot, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			name := f.Name()
			if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".arr") {
				continue
			}
			var t, u int
			if _, err := fmt.Sscanf(strings.TrimPrefix(name, prefix), "x_%d_%d.arr", &t, &u); err != nil {
				continue
			}
			if parts[t] == nil {
				parts[t] = map[int]string{}
			}
			parts[t][u] = filepath.Join(scratchRoot, e.Name(), name)
		}
	}
	// Candidate iterations with a complete part set, newest first; the first
	// whose every part verifies wins.
	var cands []int
	for t, us := range parts {
		if len(us) == cfg.K {
			cands = append(cands, t)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cands)))
	for _, t := range cands {
		x := make([]float64, cfg.Dim)
		ok := true
		for u := 0; u < cfg.K; u++ {
			raw, err := readCheckpointPart(parts[t][u], 8*p.Size(u))
			if err != nil {
				ok = false
				break
			}
			storage.DecodeFloat64sInto(x[p.Start(u):p.Start(u+1)], raw)
		}
		if ok {
			return &Checkpoint{Iter: t, X: x}, nil
		}
	}
	return nil, nil
}

// ResumeIteratedSpMV runs a *checkpointed* iterated SpMV to cfg.Iters total
// iterations: it loads the newest checkpoint (or starts from x0 if none)
// and executes only the remaining iterations, flushing every produced
// iterate so the run can be interrupted and resumed again. The returned int
// is the iteration it resumed from. cfg.Tag must be non-empty and stable
// across restarts; the system needs a ScratchRoot.
func ResumeIteratedSpMV(sys *System, cfg SpMVConfig, x0 []float64) (*SpMVResult, int, error) {
	return resumeIteratedSpMV(sys, cfg, x0, nil)
}

// ResumeIteratedSpMVCancel is ResumeIteratedSpMV with a cancellation
// channel — the entry point the durable job layer uses. A cancelled or
// failed segment run deletes its transient arrays (the checkpoint files
// stay, so the next resume picks up where this one stopped).
func ResumeIteratedSpMVCancel(sys *System, cfg SpMVConfig, x0 []float64, cancel <-chan struct{}) (*SpMVResult, int, error) {
	return resumeIteratedSpMV(sys, cfg, x0, cancel)
}

func resumeIteratedSpMV(sys *System, cfg SpMVConfig, x0 []float64, cancel <-chan struct{}) (*SpMVResult, int, error) {
	if sys.opts.ScratchRoot == "" {
		return nil, 0, fmt.Errorf("core: checkpointing needs a system with a ScratchRoot")
	}
	ck, err := LatestCheckpoint(sys.opts.ScratchRoot, cfg)
	if err != nil {
		return nil, 0, err
	}
	start := 0
	x := x0
	if ck != nil {
		start = ck.Iter
		x = ck.X
	}
	if start >= cfg.Iters {
		return &SpMVResult{X: x}, start, nil
	}
	rest := cfg
	rest.Iters = cfg.Iters - start
	// Offset the tag per segment so array names of the segment runs never
	// collide; checkpoint files keep the global iteration index.
	rest.Tag = fmt.Sprintf("%s@%d", cfg.Tag, start)
	res, err := runIteratedSpMV(sys, rest, x, spmvRunOpts{
		cancel:         cancel,
		checkpoint:     true,
		checkpointTag:  cfg.Tag,
		checkpointBase: start,
	})
	if err != nil {
		DeleteSpMVArrays(sys, rest)
		return nil, start, err
	}
	return res, start, nil
}

// PurgeTaggedArtifacts removes every storage array and scratch file whose
// name starts with prefix — the cleanup recovery runs before re-resuming a
// job, because a crashed segment run leaves partially-written arrays that
// the storage startup scan re-registered and a fresh segment run would
// collide with on Create. Registered arrays go through the store (which
// also drops cache residency); unregistered leftovers are removed from the
// filesystem directly. Best-effort by design.
func PurgeTaggedArtifacts(sys *System, prefix string) {
	PurgeTaggedArtifactsExcept(sys, prefix, nil)
}

// PurgeTaggedArtifactsExcept is PurgeTaggedArtifacts with a retention
// predicate: artifacts whose base array name makes keep return true
// survive the purge. The job service retires a job's namespace this way
// while the proxy registry still retains its final iterate — teardown can
// then never race a concurrent resolve of a live handle. A nil keep purges
// everything.
func PurgeTaggedArtifactsExcept(sys *System, prefix string, keep func(base string) bool) {
	for node := 0; node < sys.Nodes(); node++ {
		dir := sys.scratchDir(node)
		if dir == "" {
			continue
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasPrefix(name, prefix) {
				continue
			}
			base := name
			for _, suf := range []string{".arr", ".blk", ".meta"} {
				if strings.HasSuffix(name, suf) {
					base = strings.TrimSuffix(name, suf)
					break
				}
			}
			if keep != nil && keep(base) {
				continue
			}
			for n := range sys.decode {
				sys.decode[n].invalidate(base)
			}
			if err := sys.Store(node).Delete(base); err != nil {
				// Not registered (e.g. a bare .tmp or an orphaned sidecar):
				// remove the path itself.
				os.RemoveAll(filepath.Join(dir, name))
			}
		}
	}
}

// checkpointSumExecutor wraps the reduction executor: after x[t][u] is
// written, it is flushed to scratch and hard-linked to the global
// checkpoint name the resume scan looks for.
func checkpointSumExecutor(sys *System, runPrefix, ckTag string, base int, p sparse.GridPartition) Executor {
	inner := execSum
	return func(ctx *ExecContext) error {
		if err := inner(ctx); err != nil {
			return err
		}
		out := ctx.Task.Outputs[0].Array
		if err := ctx.Store.Flush(out); err != nil {
			return fmt.Errorf("checkpointing %s: %w", out, err)
		}
		// The flushed array carries the segment-local name
		// "<runPrefix>x_<t>_<u>". Persist it under the global checkpoint name
		// "<ckTag>:x_<base+t>_<u>" so LatestCheckpoint finds it. The read-back
		// goes through the store, not the filesystem: the flushed layout may
		// be a raw .arr file or a directory of compressed frames, and the
		// checkpoint file itself stays raw (plus CRC trailer) so resume scans
		// never need a codec.
		var t, u int
		if _, err := fmt.Sscanf(strings.TrimPrefix(out, runPrefix), "x_%d_%d", &t, &u); err != nil {
			return fmt.Errorf("checkpointing %s: cannot parse name: %w", out, err)
		}
		dst := filepath.Join(sys.scratchDir(ctx.Node), fmt.Sprintf("%s:x_%d_%d.arr", ckTag, base+t, u))
		data, err := ctx.Store.ReadAll(out)
		if err != nil {
			return fmt.Errorf("checkpointing %s: %w", out, err)
		}
		if err := writeCheckpointFile(dst, data); err != nil {
			return fmt.Errorf("checkpointing %s: %w", out, err)
		}
		return nil
	}
}

// scratchDir returns node i's scratch directory (empty when out-of-core is
// disabled).
func (s *System) scratchDir(node int) string {
	if s.opts.ScratchRoot == "" {
		return ""
	}
	return filepath.Join(s.opts.ScratchRoot, fmt.Sprintf("node%d", node))
}
