package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// Checkpointing: a long iterated-SpMV run can persist every produced
// iterate to the scratch directory, so a crashed or interrupted run resumes
// from the last completed iteration instead of from x⁰. This is the
// operational complement of out-of-core execution — the same scratch
// directories, sidecars, and startup scan that hold the matrix also hold
// the solver's progress.

// Checkpoint describes a resumable state found on disk.
type Checkpoint struct {
	// Iter is the last completed iteration.
	Iter int
	// X is the iterate x[Iter].
	X []float64
}

// LatestCheckpoint scans the scratch layout for the newest complete iterate
// of a tagged run. Returns (nil, nil) when no checkpoint exists.
func LatestCheckpoint(scratchRoot string, cfg SpMVConfig) (*Checkpoint, error) {
	if cfg.Tag == "" {
		return nil, fmt.Errorf("core: checkpointed runs need a stable Tag")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, err := cfg.Partition()
	if err != nil {
		return nil, err
	}
	prefix := cfg.Tag + ":"
	// Find, per iteration index, which vector parts exist on disk.
	parts := map[int]map[int]string{} // iter -> u -> file path
	entries, err := os.ReadDir(scratchRoot)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "node") {
			continue
		}
		files, err := os.ReadDir(filepath.Join(scratchRoot, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			name := f.Name()
			if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".arr") {
				continue
			}
			var t, u int
			if _, err := fmt.Sscanf(strings.TrimPrefix(name, prefix), "x_%d_%d.arr", &t, &u); err != nil {
				continue
			}
			if parts[t] == nil {
				parts[t] = map[int]string{}
			}
			parts[t][u] = filepath.Join(scratchRoot, e.Name(), name)
		}
	}
	best := -1
	for t, us := range parts {
		if len(us) == cfg.K && t > best {
			best = t
		}
	}
	if best < 0 {
		return nil, nil
	}
	x := make([]float64, cfg.Dim)
	for u := 0; u < cfg.K; u++ {
		raw, err := os.ReadFile(parts[best][u])
		if err != nil {
			return nil, err
		}
		want := 8 * p.Size(u)
		if len(raw) < want {
			return nil, fmt.Errorf("core: checkpoint part %s truncated (%d of %d bytes)", parts[best][u], len(raw), want)
		}
		storage.DecodeFloat64sInto(x[p.Start(u):p.Start(u+1)], raw[:want])
	}
	return &Checkpoint{Iter: best, X: x}, nil
}

// ResumeIteratedSpMV runs a *checkpointed* iterated SpMV to cfg.Iters total
// iterations: it loads the newest checkpoint (or starts from x0 if none)
// and executes only the remaining iterations, flushing every produced
// iterate so the run can be interrupted and resumed again. The returned int
// is the iteration it resumed from. cfg.Tag must be non-empty and stable
// across restarts; the system needs a ScratchRoot.
func ResumeIteratedSpMV(sys *System, cfg SpMVConfig, x0 []float64) (*SpMVResult, int, error) {
	if sys.opts.ScratchRoot == "" {
		return nil, 0, fmt.Errorf("core: checkpointing needs a system with a ScratchRoot")
	}
	ck, err := LatestCheckpoint(sys.opts.ScratchRoot, cfg)
	if err != nil {
		return nil, 0, err
	}
	start := 0
	x := x0
	if ck != nil {
		start = ck.Iter
		x = ck.X
	}
	if start >= cfg.Iters {
		return &SpMVResult{X: x}, start, nil
	}
	rest := cfg
	rest.Iters = cfg.Iters - start
	// Offset the tag per segment so array names of the segment runs never
	// collide; checkpoint files keep the global iteration index.
	rest.Tag = fmt.Sprintf("%s@%d", cfg.Tag, start)
	res, err := runIteratedSpMV(sys, rest, x, spmvRunOpts{
		checkpoint:     true,
		checkpointTag:  cfg.Tag,
		checkpointBase: start,
	})
	if err != nil {
		return nil, start, err
	}
	return res, start, nil
}

// checkpointSumExecutor wraps the reduction executor: after x[t][u] is
// written, it is flushed to scratch and hard-linked to the global
// checkpoint name the resume scan looks for.
func checkpointSumExecutor(sys *System, runPrefix, ckTag string, base int, p sparse.GridPartition) Executor {
	inner := execSum
	return func(ctx *ExecContext) error {
		if err := inner(ctx); err != nil {
			return err
		}
		out := ctx.Task.Outputs[0].Array
		if err := ctx.Store.Flush(out); err != nil {
			return fmt.Errorf("checkpointing %s: %w", out, err)
		}
		// The flushed array carries the segment-local name
		// "<runPrefix>x_<t>_<u>". Persist it under the global checkpoint name
		// "<ckTag>:x_<base+t>_<u>" so LatestCheckpoint finds it. The read-back
		// goes through the store, not the filesystem: the flushed layout may
		// be a raw .arr file or a directory of compressed frames, and the
		// checkpoint file itself stays raw so resume scans never need a codec.
		var t, u int
		if _, err := fmt.Sscanf(strings.TrimPrefix(out, runPrefix), "x_%d_%d", &t, &u); err != nil {
			return fmt.Errorf("checkpointing %s: cannot parse name: %w", out, err)
		}
		dst := filepath.Join(sys.scratchDir(ctx.Node), fmt.Sprintf("%s:x_%d_%d.arr", ckTag, base+t, u))
		data, err := ctx.Store.ReadAll(out)
		if err != nil {
			return fmt.Errorf("checkpointing %s: %w", out, err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			return fmt.Errorf("checkpointing %s: %w", out, err)
		}
		return nil
	}
}

// scratchDir returns node i's scratch directory (empty when out-of-core is
// disabled).
func (s *System) scratchDir(node int) string {
	if s.opts.ScratchRoot == "" {
		return ""
	}
	return filepath.Join(s.opts.ScratchRoot, fmt.Sprintf("node%d", node))
}
