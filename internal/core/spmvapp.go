package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dooc/internal/dag"
	"dooc/internal/obs"
	"dooc/internal/sparse"
	"dooc/internal/spmv"
	"dooc/internal/storage"
)

// SpMVConfig describes one out-of-core iterated SpMV run (Section IV of the
// paper): a Dim×Dim matrix partitioned into a K×K grid of sub-matrices, with
// node OwnerOf(u) responsible for sub-matrix row u.
type SpMVConfig struct {
	Dim   int
	K     int
	Iters int
	Nodes int
	// Tag namespaces the run's transient arrays (vectors, partials) so
	// successive runs over the same staged matrix do not collide.
	Tag string
	// SplitWays, when > 1, decomposes every multiply into that many
	// row-range sub-tasks, each writing a disjoint interval of the shared
	// partial array — the paper's local-scheduler task splitting
	// demonstrated through the storage layer's interval write leases.
	SplitWays int
	// Trace, when valid, is the causal parent (a job's running-phase span)
	// the engine attaches this run's per-iteration and per-task spans
	// under. Zero leaves task spans unannotated, exactly as before.
	Trace obs.SpanContext
}

// Validate checks the configuration.
func (c SpMVConfig) Validate() error {
	if c.Dim <= 0 || c.K <= 0 || c.Iters <= 0 || c.Nodes <= 0 {
		return fmt.Errorf("core: invalid SpMV config %+v", c)
	}
	if c.K > c.Dim {
		return fmt.Errorf("core: K=%d exceeds dimension %d", c.K, c.Dim)
	}
	return nil
}

// OwnerOf maps sub-matrix row u to its owning node.
func (c SpMVConfig) OwnerOf(u int) int { return u % c.Nodes }

// Partition returns the row/column partition.
func (c SpMVConfig) Partition() (sparse.GridPartition, error) {
	return sparse.NewGridPartition(c.Dim, c.K)
}

// StageMatrix writes the K×K blocks of m as CRS-encoded storage arrays in
// each owner node's scratch directory under scratchRoot (the layout
// NewSystem's ScratchRoot option expects). A subsequent NewSystem over the
// same root discovers them via the storage layer's startup scan — this is
// the out-of-core staging step, the analogue of the paper's sub-matrix
// files on GPFS.
func StageMatrix(scratchRoot string, m *sparse.CSR, cfg SpMVConfig) error {
	return stageMatrix(scratchRoot, m, cfg, false)
}

// StageMatrixCompressed is StageMatrix with the section-compressed DOOCCRS2
// container: row pointers, column indices, and values each travel through
// the codec that fits their structure, typically shrinking the staged set
// severalfold. Readers auto-detect the format, so a staged set mixes freely
// with V1 files.
func StageMatrixCompressed(scratchRoot string, m *sparse.CSR, cfg SpMVConfig) error {
	return stageMatrix(scratchRoot, m, cfg, true)
}

func stageMatrix(scratchRoot string, m *sparse.CSR, cfg SpMVConfig, compressed bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if m.Rows != cfg.Dim || m.Cols != cfg.Dim {
		return fmt.Errorf("core: matrix is %dx%d, config says %d", m.Rows, m.Cols, cfg.Dim)
	}
	p, err := cfg.Partition()
	if err != nil {
		return err
	}
	for u := 0; u < cfg.K; u++ {
		dir := filepath.Join(scratchRoot, fmt.Sprintf("node%d", cfg.OwnerOf(u)))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for v := 0; v < cfg.K; v++ {
			b, err := sparse.Block(m, p, u, v)
			if err != nil {
				return err
			}
			var buf bytes.Buffer
			if compressed {
				err = sparse.WriteCRS2(&buf, b)
			} else {
				err = sparse.WriteCRS(&buf, b)
			}
			if err != nil {
				return err
			}
			path := filepath.Join(dir, spmv.MatrixArray(u, v)+".arr")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// StagedMatrixInfo describes a staged block set discovered on disk.
type StagedMatrixInfo struct {
	Dim   int
	K     int
	Nodes int
	// NNZ is the total nonzero count across blocks.
	NNZ int64
	// Bytes is the total staged size.
	Bytes int64
}

// DiscoverStagedMatrix inspects a StageMatrix layout under scratchRoot and
// reconstructs its dimensions from the CRS block headers — what doocrun
// uses so callers need not repeat generator parameters.
func DiscoverStagedMatrix(scratchRoot string) (StagedMatrixInfo, error) {
	var info StagedMatrixInfo
	entries, err := os.ReadDir(scratchRoot)
	if err != nil {
		return info, err
	}
	blockPath := make(map[[2]int]string)
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "node") {
			continue
		}
		var node int
		if _, err := fmt.Sscanf(e.Name(), "node%d", &node); err != nil {
			continue
		}
		if node+1 > info.Nodes {
			info.Nodes = node + 1
		}
		files, err := os.ReadDir(filepath.Join(scratchRoot, e.Name()))
		if err != nil {
			return info, err
		}
		for _, f := range files {
			var u, v int
			if _, err := fmt.Sscanf(f.Name(), "A_%d_%d.arr", &u, &v); err != nil {
				continue
			}
			blockPath[[2]int{u, v}] = filepath.Join(scratchRoot, e.Name(), f.Name())
			if u+1 > info.K {
				info.K = u + 1
			}
			if v+1 > info.K {
				info.K = v + 1
			}
		}
	}
	if info.K == 0 {
		return info, fmt.Errorf("core: no staged blocks under %s", scratchRoot)
	}
	for u := 0; u < info.K; u++ {
		for v := 0; v < info.K; v++ {
			path, ok := blockPath[[2]int{u, v}]
			if !ok {
				return info, fmt.Errorf("core: staged set incomplete: missing block (%d,%d)", u, v)
			}
			rows, _, nnz, err := sparse.ReadCRSHeader(path)
			if err != nil {
				return info, err
			}
			if v == 0 {
				info.Dim += rows
			}
			info.NNZ += nnz
			// Stat rather than compute: V2 files are section-compressed, so
			// their size is not a function of (rows, nnz).
			fi, err := os.Stat(path)
			if err != nil {
				return info, err
			}
			info.Bytes += fi.Size()
		}
	}
	return info, nil
}

// LoadMatrixInMemory stages the blocks directly into the running system's
// stores (for scratch-less tests and small examples).
func LoadMatrixInMemory(sys *System, m *sparse.CSR, cfg SpMVConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	p, err := cfg.Partition()
	if err != nil {
		return err
	}
	for u := 0; u < cfg.K; u++ {
		st := sys.Store(cfg.OwnerOf(u))
		for v := 0; v < cfg.K; v++ {
			b, err := sparse.Block(m, p, u, v)
			if err != nil {
				return err
			}
			var buf bytes.Buffer
			if err := sparse.WriteCRS(&buf, b); err != nil {
				return err
			}
			if err := st.WriteArray(spmv.MatrixArray(u, v), buf.Bytes(), 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// SpMVResult carries the outcome of an iterated SpMV run.
type SpMVResult struct {
	X     []float64
	Stats *RunStats
}

// RunIteratedSpMV executes Iters power iterations y = A x out-of-core and
// returns the final vector. Matrix blocks must already be staged (via
// StageMatrix + system scan, or LoadMatrixInMemory).
func RunIteratedSpMV(sys *System, cfg SpMVConfig, x0 []float64) (*SpMVResult, error) {
	return runIteratedSpMV(sys, cfg, x0, spmvRunOpts{})
}

// RunIteratedSpMVCancel is RunIteratedSpMV with a cancellation channel:
// closing cancel aborts the engine run (Run returns ErrCancelled) and the
// run's transient arrays are deleted before returning, so a cancelled job
// leaves no residue in memory or on scratch. This is the entry point the
// multi-tenant job layer uses.
func RunIteratedSpMVCancel(sys *System, cfg SpMVConfig, x0 []float64, cancel <-chan struct{}) (*SpMVResult, error) {
	res, err := runIteratedSpMV(sys, cfg, x0, spmvRunOpts{cancel: cancel})
	if err != nil {
		DeleteSpMVArrays(sys, cfg)
	}
	return res, err
}

// DeleteSpMVArrays best-effort deletes every transient array a run of cfg
// would have created (vectors and partials under cfg.Tag). Arrays already
// retired by the ephemeral reclamation, never created, or still leased are
// skipped silently — callers invoke this after the engine run has returned,
// when no executor holds leases.
func DeleteSpMVArrays(sys *System, cfg SpMVConfig) {
	DeleteSpMVArraysKeep(sys, cfg, nil)
}

// DeleteSpMVArraysKeep is DeleteSpMVArrays with a retention predicate:
// arrays for which keep returns true survive the teardown. The proxy
// registry retains a completed job's final iterate this way — reclaim then
// happens when the handle's last reference drops, not when the run ends.
// A nil keep deletes everything, exactly like DeleteSpMVArrays.
func DeleteSpMVArraysKeep(sys *System, cfg SpMVConfig, keep func(name string) bool) {
	prefix := ""
	if cfg.Tag != "" {
		prefix = cfg.Tag + ":"
	}
	drop := func(owner *storage.Store, name string) {
		if keep != nil && keep(name) {
			return
		}
		for node := range sys.decode {
			sys.decode[node].invalidate(name)
		}
		_ = owner.Delete(name)
	}
	for u := 0; u < cfg.K; u++ {
		owner := sys.Store(cfg.OwnerOf(u))
		for t := 0; t <= cfg.Iters; t++ {
			drop(owner, prefix+spmv.VecArray(t, u))
		}
		for t := 1; t <= cfg.Iters; t++ {
			for v := 0; v < cfg.K; v++ {
				drop(owner, prefix+spmv.PartialArray(t, u, v))
			}
		}
	}
}

// FinalIterateArrays names the arrays holding a finished run's final
// iterate x^Iters, one per row partition — the storage-tier backing a
// proxy handle retains.
func FinalIterateArrays(cfg SpMVConfig) []string {
	prefix := ""
	if cfg.Tag != "" {
		prefix = cfg.Tag + ":"
	}
	out := make([]string, 0, cfg.K)
	for u := 0; u < cfg.K; u++ {
		out = append(out, prefix+spmv.VecArray(cfg.Iters, u))
	}
	return out
}

// CollectIterate reads iterate t of a run of cfg back out of the storage
// tier and assembles the full vector — the proxy resolve path's fallback
// when the result payload is not already in memory or on the durable
// store.
func CollectIterate(sys *System, cfg SpMVConfig, t int) ([]float64, error) {
	p, err := cfg.Partition()
	if err != nil {
		return nil, err
	}
	prefix := ""
	if cfg.Tag != "" {
		prefix = cfg.Tag + ":"
	}
	x := make([]float64, cfg.Dim)
	for u := 0; u < cfg.K; u++ {
		name := prefix + spmv.VecArray(t, u)
		data, err := sys.Store(cfg.OwnerOf(u)).ReadAll(name)
		if err != nil {
			return nil, fmt.Errorf("core: collecting iterate %d: %w", t, err)
		}
		if len(data) != 8*p.Size(u) {
			return nil, fmt.Errorf("core: collecting iterate %d: %s holds %d bytes, want %d",
				t, name, len(data), 8*p.Size(u))
		}
		storage.DecodeFloat64sInto(x[p.Start(u):p.Start(u+1)], data)
	}
	return x, nil
}

// DropArray removes one named array from whichever store holds it,
// invalidating decode caches first. Best-effort — the proxy registry's
// reclaim hook.
func DropArray(sys *System, name string) {
	for node := range sys.decode {
		sys.decode[node].invalidate(name)
	}
	for node := 0; node < sys.Nodes(); node++ {
		if sys.Store(node).Delete(name) == nil {
			return
		}
	}
}

// RunIteratedSpMVWithAssignment bypasses the affinity scheduler with a
// forced task placement — the data-oblivious baseline of the placement
// ablation.
func RunIteratedSpMVWithAssignment(sys *System, cfg SpMVConfig, x0 []float64, assign map[string]int) error {
	_, err := runIteratedSpMV(sys, cfg, x0, spmvRunOpts{assignment: assign})
	return err
}

// RunIteratedSpMVKeepAll disables dead-generation reclamation — the
// baseline of the immutable-array memory-management ablation. Transient
// arrays are left resident; the caller inspects storage stats afterwards.
func RunIteratedSpMVKeepAll(sys *System, cfg SpMVConfig, x0 []float64) error {
	_, err := runIteratedSpMV(sys, cfg, x0, spmvRunOpts{keepEphemeral: true})
	return err
}

// spmvRunOpts are the internal knobs behind the ablation and checkpoint
// entry points.
type spmvRunOpts struct {
	assignment    map[string]int
	keepEphemeral bool
	cancel        <-chan struct{}

	// checkpoint flushes every produced iterate and records it under
	// checkpointTag with iteration indices offset by checkpointBase.
	checkpoint     bool
	checkpointTag  string
	checkpointBase int
}

func runIteratedSpMV(sys *System, cfg SpMVConfig, x0 []float64, opts spmvRunOpts) (*SpMVResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != cfg.Dim {
		return nil, fmt.Errorf("core: x0 has %d entries, want %d", len(x0), cfg.Dim)
	}
	p, err := cfg.Partition()
	if err != nil {
		return nil, err
	}

	// Determine sub-matrix sizes for scheduling weights.
	var subBytes int64
	for u := 0; u < cfg.K && subBytes == 0; u++ {
		for v := 0; v < cfg.K && subBytes == 0; v++ {
			info, err := sys.Store(0).Info(spmv.MatrixArray(u, v))
			if err != nil {
				return nil, fmt.Errorf("core: matrix block %s not staged: %w", spmv.MatrixArray(u, v), err)
			}
			subBytes = info.Size
		}
	}
	prefix := ""
	if cfg.Tag != "" {
		prefix = cfg.Tag + ":"
	}
	pcfg := spmv.ProgramConfig{
		K:         cfg.K,
		Iters:     cfg.Iters,
		SubBytes:  subBytes,
		VecBytes:  8 * int64(p.Size(0)),
		Prefix:    prefix,
		SplitWays: cfg.SplitWays,
	}
	// Never split below one row per part: an empty stripe would leave its
	// partial array incompletely written and stall the reduction.
	if minRows := p.Size(cfg.K - 1); pcfg.SplitWays > minRows {
		pcfg.SplitWays = minRows
	}

	// Create the vector and partial arrays, seed x^0.
	ephemeral := make(map[string]bool)
	for u := 0; u < cfg.K; u++ {
		sz := int64(8 * p.Size(u))
		owner := sys.Store(cfg.OwnerOf(u))
		for t := 0; t <= cfg.Iters; t++ {
			name := prefix + spmv.VecArray(t, u)
			if err := owner.Create(name, sz, sz); err != nil {
				return nil, err
			}
			if t < cfg.Iters {
				ephemeral[name] = true
			}
		}
		for t := 1; t <= cfg.Iters; t++ {
			for v := 0; v < cfg.K; v++ {
				name := prefix + spmv.PartialArray(t, u, v)
				if err := owner.Create(name, sz, sz); err != nil {
					return nil, err
				}
				ephemeral[name] = true
			}
		}
		w, err := owner.Request(prefix+spmv.VecArray(0, u), 0, sz, storage.PermWrite)
		if err != nil {
			return nil, err
		}
		storage.PutFloat64s(w, x0[p.Start(u):p.Start(u+1)])
		w.Release()
	}

	tasks, err := spmv.Program(pcfg)
	if err != nil {
		return nil, err
	}
	locate := func(r dag.Ref) (int, bool) {
		if u, ok := spmv.OwnerIndex(strings.TrimPrefix(r.Array, prefix)); ok {
			return cfg.OwnerOf(u), true
		}
		return 0, false
	}

	if opts.keepEphemeral {
		ephemeral = nil
	}
	executors := SpMVExecutors()
	if opts.checkpoint {
		executors["sum"] = checkpointSumExecutor(sys, prefix, opts.checkpointTag, opts.checkpointBase, p)
	}
	spec := RunSpec{
		Tasks:      tasks,
		Executors:  executors,
		Locate:     locate,
		Assignment: opts.assignment,
		Ephemeral:  ephemeral,
		Cancel:     opts.cancel,
		Span:       cfg.Trace,
		// Every heavy ref in the SpMV program is a CRS block: let the node
		// decode pipelines materialize them concurrently with compute.
		DecodeAhead: true,
	}
	if cfg.Trace.Valid() {
		// Task IDs carry segment-relative iteration indices; the base shift
		// makes resumed segments report absolute iterations in their spans.
		base := opts.checkpointBase
		spec.IterOf = func(id string) (int, bool) {
			t, ok := spmv.TaskIter(id)
			return t + base, ok
		}
	}
	stats, err := sys.Run(spec)
	if err != nil {
		return nil, err
	}

	// Collect the final vector, then retire it (results live in the caller's
	// memory; keeping dead generations would defeat the reclamation story).
	// The result is sized once and each sub-vector decodes straight into its
	// interval — no per-chunk staging buffers.
	x := make([]float64, cfg.Dim)
	for u := 0; u < cfg.K; u++ {
		name := prefix + spmv.VecArray(cfg.Iters, u)
		st := sys.Store(cfg.OwnerOf(u))
		if err := st.ReadFloat64s(name, x[p.Start(u):p.Start(u+1)]); err != nil {
			return nil, err
		}
		if !opts.keepEphemeral {
			// Best effort: a straggling lease elsewhere just delays
			// reclamation.
			_ = st.Delete(name)
		}
	}
	return &SpMVResult{X: x, Stats: stats}, nil
}

// Operator adapts the out-of-core iterated SpMV to the lanczos.Operator
// interface: each Apply is one full DOoC run (program build, affinity
// placement, out-of-core execution) over the staged matrix.
type Operator struct {
	Sys *System
	Cfg SpMVConfig

	calls int
}

// Dim returns the operator dimension.
func (o *Operator) Dim() int { return o.Cfg.Dim }

// Apply computes A x out-of-core.
func (o *Operator) Apply(x []float64) ([]float64, error) {
	cfg := o.Cfg
	cfg.Iters = 1
	cfg.Tag = fmt.Sprintf("%s#%d", o.Cfg.Tag, o.calls)
	o.calls++
	res, err := RunIteratedSpMV(o.Sys, cfg, x)
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// Calls reports how many SpMV programs the operator has executed.
func (o *Operator) Calls() int { return o.calls }

// SpMVExecutors returns the computing-filter implementations for the
// iterated SpMV program's task kinds.
func SpMVExecutors() map[string]Executor {
	return map[string]Executor{
		"multiply":      execMultiply,
		"multiply-part": execMultiplyPart,
		"sum":           execSum,
	}
}

// execMultiply computes xp[t][u][v] = A[u][v] * x[t-1][v]. The input vector
// is read through a zero-copy view of its lease bytes and the result is
// computed directly into the output write lease, so the steady-state
// multiply moves no vector bytes outside the kernel itself. Leases are held
// for the duration of the compute — the view contract ties view lifetime to
// lease lifetime.
func execMultiply(ctx *ExecContext) error {
	t := ctx.Task
	if len(t.Inputs) != 2 || len(t.Outputs) != 1 {
		return fmt.Errorf("multiply task %s has unexpected shape", t.ID)
	}
	aRef, xRef, outRef := t.Inputs[0], t.Inputs[1], t.Outputs[0]

	a, err := ctx.Matrix(aRef.Array)
	if err != nil {
		return fmt.Errorf("decoding %s: %w", aRef.Array, err)
	}

	xLease, err := ctx.RequestBlock(xRef.Array, 0, storage.PermRead)
	if err != nil {
		return err
	}
	xv := storage.Float64View(xLease)

	out, err := ctx.RequestBlock(outRef.Array, 0, storage.PermWrite)
	if err != nil {
		xLease.Release()
		return err
	}
	y, direct := storage.Float64WriteView(out)
	if !direct {
		y = ctx.ScratchFloats(a.Rows)
	}
	ctx.pool.MulVec(a, xv, y)
	if !direct {
		storage.PutFloat64s(out, y)
	}
	out.Release()
	xLease.Release()
	return nil
}

// execMultiplyPart computes rows [r0, r1) of xp[t][u][v] = A[u][v]*x[t-1][v]
// and publishes them through an interval write lease on the shared partial
// array — disjoint sub-task outputs need no coordination beyond the
// immutable-interval discipline.
func execMultiplyPart(ctx *ExecContext) error {
	t := ctx.Task
	if len(t.Inputs) != 2 || len(t.Outputs) != 1 {
		return fmt.Errorf("multiply-part task %s has unexpected shape", t.ID)
	}
	aRef, xRef, outRef := t.Inputs[0], t.Inputs[1], t.Outputs[0]
	_, _, _, p, ways, err := spmv.ParseMultPart(t.ID)
	if err != nil {
		return err
	}
	if ways < 1 {
		return fmt.Errorf("multiply-part task %s declares %d ways", t.ID, ways)
	}

	a, err := ctx.Matrix(aRef.Array)
	if err != nil {
		return fmt.Errorf("decoding %s: %w", aRef.Array, err)
	}
	xLease, err := ctx.RequestBlock(xRef.Array, 0, storage.PermRead)
	if err != nil {
		return err
	}
	xv := storage.Float64View(xLease)

	// Row range of this part: contiguous stripes covering all rows.
	rows := a.Rows
	r0 := rows * p / ways
	r1 := rows * (p + 1) / ways
	if r0 >= r1 {
		xLease.Release()
		return nil // more parts than rows: this stripe is empty
	}
	out, err := ctx.Request(outRef.Array, int64(8*r0), int64(8*r1), storage.PermWrite)
	if err != nil {
		xLease.Release()
		return err
	}
	y, direct := storage.Float64WriteView(out)
	if !direct {
		y = ctx.ScratchFloats(r1 - r0)
	}
	sparse.MulVecRows(a, xv, y, r0, r1)
	if !direct {
		storage.PutFloat64s(out, y)
	}
	out.Release()
	xLease.Release()
	return nil
}

// execSum computes x[t][u] = Σ_v xp[t][u][v]. Inputs may list the same
// partial array several times (once per written part); each array is summed
// exactly once.
func execSum(ctx *ExecContext) error {
	t := ctx.Task
	if len(t.Outputs) != 1 || len(t.Inputs) == 0 {
		return fmt.Errorf("sum task %s has unexpected shape", t.ID)
	}
	// The accumulator is the output write lease itself: the first part is
	// copied in, the rest added in place. Accumulation order (task input
	// order, first occurrence of each array) is unchanged, so results stay
	// bit-identical to the copying implementation.
	out, err := ctx.RequestBlock(t.Outputs[0].Array, 0, storage.PermWrite)
	if err != nil {
		return err
	}
	acc, direct := storage.Float64WriteView(out)
	if !direct {
		acc = ctx.ScratchFloats(len(out.Data) / 8)
	}
	first := true
	seen := ctx.ScratchSeen()
	for _, in := range t.Inputs {
		if seen[in.Array] {
			continue
		}
		seen[in.Array] = true
		l, err := ctx.RequestBlock(in.Array, 0, storage.PermRead)
		if err != nil {
			out.Abandon()
			return err
		}
		if first {
			storage.DecodeFloat64sInto(acc, l.Data)
			first = false
		} else {
			sparse.Sum(acc, storage.Float64View(l))
		}
		l.Release()
	}
	if !direct {
		storage.PutFloat64s(out, acc)
	}
	out.Release()
	return nil
}
