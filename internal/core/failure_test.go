package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dooc/internal/sparse"
)

// TestCorruptStagedBlockFailsCleanly: a bit-flipped CRS block must surface
// as an error from the run — never a hang, never a silent wrong result.
func TestCorruptStagedBlockFailsCleanly(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const dim, k = 40, 2
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: k, Iters: 2, Nodes: 1}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of one block's payload.
	victim := filepath.Join(root, "node0", "A_001_001.arr")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 1, ScratchRoot: root, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	x0 := make([]float64, dim)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunIteratedSpMV(sys, cfg, x0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run succeeded on a corrupted block")
		}
		if !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("error does not identify the corruption: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run hung on a corrupted block")
	}
}

// TestTruncatedStagedBlockFailsCleanly: same contract for truncation.
func TestTruncatedStagedBlockFailsCleanly(t *testing.T) {
	const dim, k = 30, 2
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: k, Iters: 1, Nodes: 1}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(root, "node0", "A_000_000.arr")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Options{Nodes: 1, ScratchRoot: root, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	x0 := make([]float64, dim)
	x0[0] = 1
	done := make(chan error, 1)
	go func() {
		_, err := RunIteratedSpMV(sys, cfg, x0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run succeeded on a truncated block")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run hung on a truncated block")
	}
}

// TestMissingStagedBlockDetectedAtDiscovery: an incomplete staging layout
// is reported by DiscoverStagedMatrix before any run starts.
func TestMissingStagedBlockDetectedAtDiscovery(t *testing.T) {
	const dim, k = 30, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: k, Iters: 1, Nodes: 2}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(root, "node1", "A_001_002.arr")); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverStagedMatrix(root); err == nil || !strings.Contains(err.Error(), "missing block") {
		t.Fatalf("discovery err = %v, want missing-block error", err)
	}
}

// TestDiscoveryOnEmptyDirErrors documents the empty-layout behaviour.
func TestDiscoveryOnEmptyDirErrors(t *testing.T) {
	if _, err := DiscoverStagedMatrix(t.TempDir()); err == nil {
		t.Fatal("discovery on empty directory succeeded")
	}
}

// TestDiscoverStagedMatrixRoundTrip verifies discovery against known
// staging parameters.
func TestDiscoverStagedMatrixRoundTrip(t *testing.T) {
	const dim, k, nodes = 50, 4, 3
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := SpMVConfig{Dim: dim, K: k, Iters: 1, Nodes: nodes}
	if err := StageMatrix(root, m, cfg); err != nil {
		t.Fatal(err)
	}
	info, err := DiscoverStagedMatrix(root)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dim != dim || info.K != k || info.Nodes != nodes {
		t.Fatalf("info = %+v", info)
	}
	if info.NNZ != m.NNZ() {
		t.Fatalf("NNZ = %d, want %d", info.NNZ, m.NNZ())
	}
}
