// Package core is the DOoC engine: it couples the distributed storage layer
// (internal/storage), the derived task DAG (internal/dag), and the
// hierarchical data-aware scheduler (internal/scheduler) into a runtime that
// executes task programs out-of-core across an in-process cluster.
//
// The division of labor mirrors the paper's Fig. 2:
//
//   - a storage filter and its asynchronous I/O filters run on every node
//     (internal/storage),
//   - the global scheduler assigns tasks to nodes by data affinity,
//   - a local scheduler per node picks the next task among its ready set by
//     residency and recency (discovering the back-and-forth traversal),
//     issues prefetches to keep the I/O filters busy, and dispatches to the
//     node's computing filters (worker goroutines).
package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"dooc/internal/compress"
	"dooc/internal/faults"
	"dooc/internal/obs"
	"dooc/internal/simnet"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// Options configures a System.
type Options struct {
	// Nodes is the cluster size (default 1).
	Nodes int
	// WorkersPerNode is the number of computing filters per node
	// (default 1).
	WorkersPerNode int
	// MemoryBudget is each node's storage budget in bytes (default 1 GiB).
	MemoryBudget int64
	// ScratchRoot, when non-empty, gives every node an out-of-core scratch
	// directory ScratchRoot/node<i>.
	ScratchRoot string
	// PrefetchWindow is how many heavy data the local scheduler keeps in
	// flight ahead of execution (default 2; 0 disables prefetching).
	PrefetchWindow int
	// Reorder enables the local scheduler's data-aware reordering
	// (default true; the ablation benches switch it off).
	Reorder bool
	// IOWorkers per node (default 2).
	IOWorkers int
	// Seed makes random-peer probing deterministic.
	Seed int64
	// DecodeCacheBytes enables a per-node cache of decoded CRS blocks
	// (0 = off). The storage layer faithfully holds raw encoded bytes;
	// without a cache every multiply re-decodes its block, which makes
	// fine task splitting pay the decode cost once per sub-task.
	DecodeCacheBytes int64
	// Eviction selects the storage reclamation policy (default LRU, the
	// paper's; the eviction ablation sweeps FIFO and MRU).
	Eviction storage.EvictionPolicy
	// TaskRetries is how many times a failed task is re-executed before its
	// error aborts the run (default 2, i.e. up to 3 executions). Negative
	// disables re-execution. Re-executions forced by node failure do not
	// count against this budget.
	TaskRetries int
	// Faults, when non-nil, injects I/O errors and stalls into every node's
	// storage filter (fault-injection harness; see internal/faults).
	Faults *faults.Injector
	// Codec, when non-nil, compresses every node's scratch spills into
	// adaptive frames (see internal/compress). Blocks that do not shrink
	// are stored raw automatically.
	Codec compress.Codec
	// Obs, when non-nil, collects metrics from every layer (storage,
	// scheduler, engine) into one registry for Prometheus-style export.
	Obs *obs.Registry
	// Trace, when non-nil, records task lifecycle spans and engine events
	// in Chrome trace-event form (pid = node, tid = worker lane).
	Trace *obs.Tracer
	// Shard, when non-nil, connects every node's storage filter to the
	// cross-process cluster tier (internal/cluster.Node): written blocks
	// are pushed to their consistent-hash owners, durably pushed blocks
	// evict without a disk spill, and misses refetch over the ring.
	Shard storage.ShardBackend
}

func (o *Options) fill() {
	if o.Nodes <= 0 {
		o.Nodes = 1
	}
	if o.WorkersPerNode <= 0 {
		o.WorkersPerNode = 1
	}
	if o.MemoryBudget <= 0 {
		o.MemoryBudget = 1 << 30
	}
	if o.IOWorkers <= 0 {
		o.IOWorkers = 2
	}
	if o.TaskRetries == 0 {
		o.TaskRetries = 2
	} else if o.TaskRetries < 0 {
		o.TaskRetries = 0
	}
}

// System is a running DOoC instance: an in-process cluster of nodes, each
// with a storage filter, I/O filters, and computing filters.
type System struct {
	opts    Options
	cluster *simnet.Cluster
	stores  []*storage.Store
	decode  []*decodeCache // per node; nil entries when disabled

	// Kernel layer: one persistent stripe pool per computing filter (indexed
	// node*WorkersPerNode+lane, started once and parked between multiplies)
	// and one decode pipeline per node (only when the decode cache is on).
	kern    []*sparse.Pool
	pipes   []*decodePipeline
	kernObs kernelMetrics

	// Failure registry. FailNode marks a node dead: active runs stop its
	// workers and reassign its incomplete tasks; runs started afterwards
	// never schedule onto it.
	runMu       sync.Mutex
	runs        map[*engineRun]struct{}
	failedNodes map[int]bool
}

// NewSystem builds and starts a system.
func NewSystem(opts Options) (*System, error) {
	opts.fill()
	cluster, err := simnet.New(simnet.Config{Nodes: opts.Nodes})
	if err != nil {
		return nil, err
	}
	stores, err := storage.NewNetwork(opts.Nodes, func(node int, cfg *storage.Config) {
		cfg.MemoryBudget = opts.MemoryBudget
		cfg.IOWorkers = opts.IOWorkers
		cfg.Seed = opts.Seed + int64(node)
		cfg.Ledger = cluster.Transfer
		cfg.Eviction = opts.Eviction
		cfg.Faults = opts.Faults
		cfg.Obs = opts.Obs
		cfg.Codec = opts.Codec
		cfg.Trace = opts.Trace
		cfg.Shard = opts.Shard
		if opts.ScratchRoot != "" {
			cfg.ScratchDir = filepath.Join(opts.ScratchRoot, fmt.Sprintf("node%d", node))
		}
	})
	if err != nil {
		return nil, err
	}
	sys := &System{
		opts:        opts,
		cluster:     cluster,
		stores:      stores,
		runs:        make(map[*engineRun]struct{}),
		failedNodes: make(map[int]bool),
	}
	sys.kernObs = newKernelMetrics(opts.Obs)
	sys.decode = make([]*decodeCache, opts.Nodes)
	sys.pipes = make([]*decodePipeline, opts.Nodes)
	for i := range sys.decode {
		c := newDecodeCache(opts.DecodeCacheBytes)
		sys.decode[i] = c
		if c != nil {
			c.obsHits = sys.nodeCounter("dooc_core_decode_cache_hits_total", "decoded-block cache hits", i)
			c.obsMisses = sys.nodeCounter("dooc_core_decode_cache_misses_total", "decoded-block cache misses (synchronous decodes)", i)
			c.obsOverlap = sys.kernObs.pipeOverlap
			sys.pipes[i] = newDecodePipeline(stores[i], c, sys.kernObs)
		}
	}
	sys.kern = make([]*sparse.Pool, opts.Nodes*opts.WorkersPerNode)
	for i := range sys.kern {
		p := sparse.NewPool(opts.WorkersPerNode)
		p.Fused = sys.kernObs.fused
		p.Blocked = sys.kernObs.blocked
		p.Scalar = sys.kernObs.scalar
		sys.kern[i] = p
	}
	return sys, nil
}

// nodeCounter registers a per-node counter on the system registry (nil when
// observability is off).
func (s *System) nodeCounter(name, help string, node int) *obs.Counter {
	return s.opts.Obs.Counter(name, help, obs.L("node", fmt.Sprint(node)))
}

// Nodes returns the cluster size.
func (s *System) Nodes() int { return s.opts.Nodes }

// ScratchRoot returns the system's scratch root directory ("" when
// out-of-core spill is disabled). Checkpoint-resumed jobs need one.
func (s *System) ScratchRoot() string { return s.opts.ScratchRoot }

// Store returns node i's storage filter.
func (s *System) Store(i int) *storage.Store { return s.stores[i] }

// Cluster returns the interconnect ledger.
func (s *System) Cluster() *simnet.Cluster { return s.cluster }

// FailNode simulates the death of a compute node: its workers stop picking
// tasks, its running tasks are re-executed on surviving nodes, and future
// runs never schedule onto it. The node's storage filter stays reachable —
// this models a crashed computing filter, not lost disks (the paper's
// storage filters are backed by the shared file system). Returns an error
// if node is out of range.
func (s *System) FailNode(node int) error {
	if node < 0 || node >= s.opts.Nodes {
		return fmt.Errorf("core: fail of invalid node %d", node)
	}
	s.runMu.Lock()
	s.failedNodes[node] = true
	active := make([]*engineRun, 0, len(s.runs))
	for r := range s.runs {
		active = append(active, r)
	}
	s.runMu.Unlock()
	for _, r := range active {
		r.mu.Lock()
		r.failNode(node)
		r.mu.Unlock()
		r.cond.Broadcast()
	}
	return nil
}

// FailedNodes returns the indices of nodes marked dead via FailNode.
func (s *System) FailedNodes() []int {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	var out []int
	for n := range s.failedNodes {
		out = append(out, n)
	}
	return out
}

// Close shuts all nodes down: decode pipelines first (they read through
// storage), then the kernel pools, then the storage filters.
func (s *System) Close() {
	for _, p := range s.pipes {
		p.close()
	}
	for _, p := range s.kern {
		p.Close()
	}
	for _, st := range s.stores {
		st.Close()
	}
}

// Event is one entry of a run's execution log (real time, for Gantt-style
// inspection of actual runs).
type Event struct {
	Node  int
	Task  string
	Kind  string
	Start time.Time
	End   time.Time
}

// RunStats summarizes a Run.
type RunStats struct {
	Wall          time.Duration
	TasksPerNode  []int
	Events        []Event
	StorageBefore []storage.Stats
	StorageAfter  []storage.Stats
	// TaskRetries counts task re-executions after executor failures.
	TaskRetries int
	// NodesFailed counts nodes that died (FailNode) during the run.
	NodesFailed int
}

// storageDelta sums one storage counter's growth across nodes during the run.
func (r *RunStats) storageDelta(field func(*storage.Stats) int64) int64 {
	var n int64
	for i := range r.StorageAfter {
		n += field(&r.StorageAfter[i]) - field(&r.StorageBefore[i])
	}
	return n
}

// BytesReadDisk sums disk reads across nodes during the run.
func (r *RunStats) BytesReadDisk() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.BytesReadDisk })
}

// PeerBytes sums cross-node block fetches during the run.
func (r *RunStats) PeerBytes() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.BytesFetchedPeer })
}

// CacheHits sums read requests served from resident memory during the run.
func (r *RunStats) CacheHits() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.Hits })
}

// CacheMisses sums read requests that had to fetch during the run.
func (r *RunStats) CacheMisses() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.Misses })
}

// Evictions sums blocks reclaimed from memory during the run.
func (r *RunStats) Evictions() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.Evictions })
}

// PrefetchHits sums cache hits on prefetched blocks during the run.
func (r *RunStats) PrefetchHits() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.PrefetchHits })
}

// PrefetchLoads sums block fetches initiated by prefetch during the run.
func (r *RunStats) PrefetchLoads() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.PrefetchLoads })
}

// BlockLoads sums complete block installs (disk or peer) during the run.
func (r *RunStats) BlockLoads() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.BlockLoads })
}

// IORetries sums transient disk errors survived during the run.
func (r *RunStats) IORetries() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.IORetries })
}

// BytesWrittenDisk sums physical disk writes across nodes during the run
// (frame bytes when spills are compressed).
func (r *RunStats) BytesWrittenDisk() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.BytesWrittenDisk })
}

// CompressRawBytes sums logical block bytes fed to spill encoders during
// the run.
func (r *RunStats) CompressRawBytes() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.CompressRawBytes })
}

// CompressStoredBytes sums frame bytes written to scratch during the run.
func (r *RunStats) CompressStoredBytes() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.CompressStoredBytes })
}

// CompressBailouts sums blocks stored raw by the adaptive bail-out during
// the run.
func (r *RunStats) CompressBailouts() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.CompressBailouts })
}

// ShardPushes sums blocks pushed toward their cluster ring owners during
// the run.
func (r *RunStats) ShardPushes() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.ShardPushes })
}

// ShardFetches sums blocks installed from the cluster shard tier during
// the run.
func (r *RunStats) ShardFetches() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.ShardFetches })
}

// ShardBytes sums block bytes fetched from the cluster shard tier during
// the run.
func (r *RunStats) ShardBytes() int64 {
	return r.storageDelta(func(s *storage.Stats) int64 { return s.BytesFetchedShard })
}
