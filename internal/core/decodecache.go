package core

import (
	"sync"

	"dooc/internal/obs"
	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// decodeCache memoizes CRS decoding per node. The storage layer holds raw
// encoded bytes (faithful to the paper's untyped arrays); every task that
// multiplies with a block must otherwise decode it again. Matrix arrays are
// immutable, so a decoded copy keyed by array name is always valid; the
// cache is LRU-bounded and counts its own bytes separately from the storage
// budget (enable via Options.DecodeCacheBytes).
type decodeCache struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	tick    int64
	entries map[string]*decEntry

	hits, misses int64

	// Observability mirrors of hits/misses plus the pipeline-overlap credit
	// (nil counters are no-ops; wired by NewSystem when Options.Obs is set).
	obsHits, obsMisses, obsOverlap *obs.Counter
}

type decEntry struct {
	m       *sparse.CSR
	bytes   int64
	lastUse int64
	// pipelined marks an entry decoded ahead of use by the decode pipeline
	// and not yet consumed: the first hit credits a fully-overlapped decode.
	// A consumer that had to wait on the in-flight decode clears the flag
	// first, so the overlap counter only counts decodes that finished before
	// anyone asked.
	pipelined bool
}

func newDecodeCache(capBytes int64) *decodeCache {
	if capBytes <= 0 {
		return nil
	}
	return &decodeCache{cap: capBytes, entries: make(map[string]*decEntry)}
}

// matrix returns the decoded block for `array`, reading through the store
// on a miss. A nil receiver always reads through (cache disabled).
func (c *decodeCache) matrix(store *storage.Store, array string) (*sparse.CSR, error) {
	if c != nil {
		c.mu.Lock()
		if e, ok := c.entries[array]; ok {
			m := c.hitLocked(e)
			c.mu.Unlock()
			return m, nil
		}
		c.misses++
		c.obsMisses.Inc()
		c.mu.Unlock()
	}
	lease, err := store.RequestBlock(array, 0, storage.PermRead)
	if err != nil {
		return nil, err
	}
	m, err := sparse.DecodeCRSBytes(lease.Data)
	lease.Release()
	if err != nil {
		return nil, err
	}
	if c != nil {
		c.put(array, m)
	}
	return m, nil
}

// hitLocked records a cache hit and returns the entry's matrix; caller
// holds c.mu.
func (c *decodeCache) hitLocked(e *decEntry) *sparse.CSR {
	c.tick++
	e.lastUse = c.tick
	c.hits++
	c.obsHits.Inc()
	if e.pipelined {
		e.pipelined = false
		c.obsOverlap.Inc()
	}
	return e.m
}

// peek reports residency without touching recency or hit/miss accounting —
// used by the scheduler's residency scoring and by the pipeline to skip
// already-decoded blocks.
func (c *decodeCache) peek(array string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	_, ok := c.entries[array]
	c.mu.Unlock()
	return ok
}

// clearPipelined removes the overlap credit from an entry whose consumer
// had to wait for the in-flight decode.
func (c *decodeCache) clearPipelined(array string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[array]; ok {
		e.pipelined = false
	}
	c.mu.Unlock()
}

func (c *decodeCache) put(array string, m *sparse.CSR) {
	c.insert(array, m, false)
}

// putPipelined inserts a block decoded ahead of use by the pipeline.
func (c *decodeCache) putPipelined(array string, m *sparse.CSR) {
	c.insert(array, m, true)
}

func (c *decodeCache) insert(array string, m *sparse.CSR, pipelined bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[array]; dup {
		return
	}
	sz := m.Bytes()
	c.tick++
	c.entries[array] = &decEntry{m: m, bytes: sz, lastUse: c.tick, pipelined: pipelined}
	c.used += sz
	for c.used > c.cap && len(c.entries) > 1 {
		victim := ""
		var vt int64
		for k, e := range c.entries {
			if k == array {
				continue
			}
			if victim == "" || e.lastUse < vt || (e.lastUse == vt && k < victim) {
				victim, vt = k, e.lastUse
			}
		}
		if victim == "" {
			return
		}
		c.used -= c.entries[victim].bytes
		delete(c.entries, victim)
	}
}

// invalidate drops an entry (used when an array is deleted).
func (c *decodeCache) invalidate(array string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[array]; ok {
		c.used -= e.bytes
		delete(c.entries, array)
	}
	c.mu.Unlock()
}

// stats reports cache effectiveness.
func (c *decodeCache) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
