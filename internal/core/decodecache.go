package core

import (
	"sync"

	"dooc/internal/sparse"
	"dooc/internal/storage"
)

// decodeCache memoizes CRS decoding per node. The storage layer holds raw
// encoded bytes (faithful to the paper's untyped arrays); every task that
// multiplies with a block must otherwise decode it again. Matrix arrays are
// immutable, so a decoded copy keyed by array name is always valid; the
// cache is LRU-bounded and counts its own bytes separately from the storage
// budget (enable via Options.DecodeCacheBytes).
type decodeCache struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	tick    int64
	entries map[string]*decEntry

	hits, misses int64
}

type decEntry struct {
	m       *sparse.CSR
	bytes   int64
	lastUse int64
}

func newDecodeCache(capBytes int64) *decodeCache {
	if capBytes <= 0 {
		return nil
	}
	return &decodeCache{cap: capBytes, entries: make(map[string]*decEntry)}
}

// matrix returns the decoded block for `array`, reading through the store
// on a miss. A nil receiver always reads through (cache disabled).
func (c *decodeCache) matrix(store *storage.Store, array string) (*sparse.CSR, error) {
	if c != nil {
		c.mu.Lock()
		if e, ok := c.entries[array]; ok {
			c.tick++
			e.lastUse = c.tick
			c.hits++
			c.mu.Unlock()
			return e.m, nil
		}
		c.misses++
		c.mu.Unlock()
	}
	lease, err := store.RequestBlock(array, 0, storage.PermRead)
	if err != nil {
		return nil, err
	}
	m, err := sparse.DecodeCRSBytes(lease.Data)
	lease.Release()
	if err != nil {
		return nil, err
	}
	if c != nil {
		c.put(array, m)
	}
	return m, nil
}

func (c *decodeCache) put(array string, m *sparse.CSR) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[array]; dup {
		return
	}
	sz := m.Bytes()
	c.tick++
	c.entries[array] = &decEntry{m: m, bytes: sz, lastUse: c.tick}
	c.used += sz
	for c.used > c.cap && len(c.entries) > 1 {
		victim := ""
		var vt int64
		for k, e := range c.entries {
			if k == array {
				continue
			}
			if victim == "" || e.lastUse < vt || (e.lastUse == vt && k < victim) {
				victim, vt = k, e.lastUse
			}
		}
		if victim == "" {
			return
		}
		c.used -= c.entries[victim].bytes
		delete(c.entries, victim)
	}
}

// invalidate drops an entry (used when an array is deleted).
func (c *decodeCache) invalidate(array string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[array]; ok {
		c.used -= e.bytes
		delete(c.entries, array)
	}
	c.mu.Unlock()
}

// stats reports cache effectiveness.
func (c *decodeCache) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
