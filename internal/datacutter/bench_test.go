package datacutter

import (
	"fmt"
	"testing"
)

// BenchmarkSharedStreamThroughput measures buffers/sec through a shared
// stream with varying consumer replication.
func BenchmarkSharedStreamThroughput(b *testing.B) {
	for _, copies := range []int{1, 4} {
		b.Run(fmt.Sprintf("copies=%d", copies), func(b *testing.B) {
			l := NewLayout()
			n := b.N
			l.MustAddFilter("src", func() Filter {
				return FilterFunc(func(ctx *Context) error {
					for i := 0; i < n; i++ {
						ctx.Write("s", Buffer{Value: i, Bytes: 8})
					}
					return nil
				})
			})
			l.MustAddFilter("sink", func() Filter {
				return FilterFunc(func(ctx *Context) error {
					for {
						if _, ok := ctx.Read("s"); !ok {
							return nil
						}
					}
				})
			}, Copies(copies))
			l.MustConnect("s", "src", "sink", Depth(1024))
			rt, err := NewRuntime(l, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := rt.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
