package datacutter

import (
	"testing"

	"dooc/internal/obs"
)

// TestStreamMetricsReconcileWithStats runs a fan-out pipeline with a registry
// attached and checks that the dooc_stream_* series match Runtime.Stats()
// exactly — both are incremented at the same send site, so any divergence is
// an instrumentation bug. Broadcast streams count one buffer per consumer
// copy delivered, which the test pins down too.
func TestStreamMetricsReconcileWithStats(t *testing.T) {
	const n, copies = 64, 3
	reg := obs.NewRegistry()
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for i := 0; i < n; i++ {
				ctx.Write("work", Buffer{Value: i, Bytes: 16})
			}
			return nil
		})
	})
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				if _, ok := ctx.Read("work"); !ok {
					return nil
				}
			}
		})
	}, Copies(copies))
	l.MustConnect("work", "src", "sink", Mode(Broadcast), Depth(4))

	rt, err := NewRuntime(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Obs = reg
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	stats := rt.Stats()
	if len(stats) != 1 {
		t.Fatalf("got %d streams, want 1", len(stats))
	}
	ss := stats[0]
	if ss.Buffers != n*copies {
		t.Errorf("broadcast delivered %d buffers, want %d (one per consumer copy)", ss.Buffers, n*copies)
	}
	if ss.Bytes != int64(n*copies*16) {
		t.Errorf("broadcast delivered %d bytes, want %d", ss.Bytes, n*copies*16)
	}
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "dooc_stream_buffers_total":
			if s.Value != ss.Buffers {
				t.Errorf("registry buffers = %d, Stats says %d", s.Value, ss.Buffers)
			}
		case "dooc_stream_bytes_total":
			if s.Value != ss.Bytes {
				t.Errorf("registry bytes = %d, Stats says %d", s.Value, ss.Bytes)
			}
		}
	}
	if got := reg.Sum("dooc_stream_buffers_total"); got != ss.Buffers {
		t.Errorf("Sum(buffers) = %d, want %d", got, ss.Buffers)
	}
}

// TestStreamMetricsNilRegistry: a runtime without a registry must run
// unchanged — the nil-safe obs API is what keeps instrumentation branch-free.
func TestStreamMetricsNilRegistry(t *testing.T) {
	got := runPipeline(t, 50, 2)
	if len(got) != 50 {
		t.Fatalf("received %d buffers, want 50", len(got))
	}
}
