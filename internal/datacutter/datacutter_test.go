package datacutter

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"dooc/internal/simnet"
)

// pipeline helper: producer emits ints 0..n-1, consumer collects them.
func runPipeline(t *testing.T, n, consumerCopies int) []int {
	t.Helper()
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for i := 0; i < n; i++ {
				ctx.Write("ints", Buffer{Value: i, Bytes: 8})
			}
			return nil
		})
	})
	var mu sync.Mutex
	var got []int
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				b, ok := ctx.Read("ints")
				if !ok {
					return nil
				}
				mu.Lock()
				got = append(got, b.Value.(int))
				mu.Unlock()
			}
		})
	}, Copies(consumerCopies))
	l.MustConnect("ints", "src", "sink")
	rt, err := NewRuntime(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	return got
}

func TestSimplePipeline(t *testing.T) {
	got := runPipeline(t, 100, 1)
	if len(got) != 100 {
		t.Fatalf("received %d buffers, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestReplicatedConsumerReceivesEverythingOnce(t *testing.T) {
	got := runPipeline(t, 500, 4)
	if len(got) != 500 {
		t.Fatalf("received %d buffers, want 500 (demand-driven sharing, no dup/loss)", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d (duplicate or loss)", i, v)
		}
	}
}

func TestMultiStagePipelineWithFanOutFanIn(t *testing.T) {
	// src -> (x2 squared workers) -> sink, values squared.
	const n = 200
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for i := 0; i < n; i++ {
				ctx.Write("in", Buffer{Value: i})
			}
			return nil
		})
	})
	l.MustAddFilter("worker", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				b, ok := ctx.Read("in")
				if !ok {
					return nil
				}
				v := b.Value.(int)
				ctx.Write("out", Buffer{Value: v * v})
			}
		})
	}, Copies(3))
	var mu sync.Mutex
	sum := 0
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				b, ok := ctx.Read("out")
				if !ok {
					return nil
				}
				mu.Lock()
				sum += b.Value.(int)
				mu.Unlock()
			}
		})
	})
	l.MustConnect("in", "src", "worker")
	l.MustConnect("out", "worker", "sink")
	rt, err := NewRuntime(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		want += i * i
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestPerConsumerUnicastRouting(t *testing.T) {
	// Producer addresses each consumer copy explicitly; each copy must see
	// exactly its own values.
	const copies = 4
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for i := 0; i < 100; i++ {
				ctx.WriteTo("uni", i%copies, Buffer{Value: i})
			}
			return nil
		})
	})
	var mu sync.Mutex
	wrong := 0
	counts := make([]int, copies)
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				b, ok := ctx.Read("uni")
				if !ok {
					return nil
				}
				mu.Lock()
				counts[ctx.CopyID()]++
				if b.Value.(int)%copies != ctx.CopyID() {
					wrong++
				}
				mu.Unlock()
			}
		})
	}, Copies(copies))
	l.MustConnect("uni", "src", "sink", Mode(PerConsumer))
	rt, err := NewRuntime(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if wrong != 0 {
		t.Fatalf("%d buffers routed to the wrong copy", wrong)
	}
	for i, c := range counts {
		if c != 25 {
			t.Fatalf("copy %d saw %d buffers, want 25", i, c)
		}
	}
}

func TestRequestReplyProtocol(t *testing.T) {
	// Two client copies send requests carrying their copy ID; a server
	// replies to exactly the requesting copy. This is the storage-layer
	// communication pattern.
	type req struct {
		from int
		x    int
	}
	l := NewLayout()
	l.MustAddFilter("client", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for i := 0; i < 50; i++ {
				ctx.Write("req", Buffer{Value: req{from: ctx.CopyID(), x: i}})
				b, ok := ctx.Read("rep")
				if !ok {
					return fmt.Errorf("reply stream closed early")
				}
				if b.Value.(int) != i*10 {
					return fmt.Errorf("copy %d got %v for %d", ctx.CopyID(), b.Value, i)
				}
			}
			return nil
		})
	}, Copies(2))
	l.MustAddFilter("server", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				b, ok := ctx.Read("req")
				if !ok {
					return nil
				}
				r := b.Value.(req)
				ctx.WriteTo("rep", r.from, Buffer{Value: r.x * 10})
			}
		})
	})
	l.MustConnect("req", "client", "server")
	l.MustConnect("rep", "server", "client", Mode(PerConsumer))
	rt, err := NewRuntime(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterErrorPropagates(t *testing.T) {
	l := NewLayout()
	l.MustAddFilter("bad", func() Filter {
		return FilterFunc(func(ctx *Context) error { return fmt.Errorf("boom") })
	})
	rt, err := NewRuntime(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestFilterPanicBecomesError(t *testing.T) {
	l := NewLayout()
	l.MustAddFilter("explode", func() Filter {
		return FilterFunc(func(ctx *Context) error { panic("kaboom") })
	})
	rt, err := NewRuntime(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want kaboom", err)
	}
}

func TestLayoutValidation(t *testing.T) {
	l := NewLayout()
	if err := l.AddFilter("", nil); err == nil {
		t.Error("expected error for empty name")
	}
	if err := l.AddFilter("f", func() Filter { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := l.AddFilter("f", func() Filter { return nil }); err == nil {
		t.Error("expected duplicate filter error")
	}
	if err := l.AddFilter("neg", func() Filter { return nil }, Copies(0)); err == nil {
		t.Error("expected error for zero copies")
	}
	if err := l.Connect("s", "f", "ghost"); err == nil {
		t.Error("expected unknown consumer error")
	}
	if err := l.Connect("s", "ghost", "f"); err == nil {
		t.Error("expected unknown producer error")
	}
	if err := l.Connect("s", "f", "f"); err != nil {
		t.Errorf("self-loop should be legal (storage uses it): %v", err)
	}
	if err := l.Connect("s", "f", "f"); err == nil {
		t.Error("expected duplicate stream error")
	}
	if err := l.Connect("s2", "f", "f", Depth(0)); err == nil {
		t.Error("expected error for zero depth")
	}
}

func TestPlacementValidation(t *testing.T) {
	l := NewLayout()
	l.MustAddFilter("f", func() Filter { return FilterFunc(func(*Context) error { return nil }) }, OnNodes(5))
	cluster, _ := simnet.New(simnet.Config{Nodes: 2})
	if _, err := NewRuntime(l, cluster); err == nil {
		t.Fatal("expected placement error for node 5 on 2-node cluster")
	}
}

func TestCrossNodeTrafficIsAccounted(t *testing.T) {
	cluster, _ := simnet.New(simnet.Config{Nodes: 2})
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for i := 0; i < 10; i++ {
				ctx.Write("s", Buffer{Value: i, Bytes: 100})
			}
			return nil
		})
	}, OnNodes(0))
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				if _, ok := ctx.Read("s"); !ok {
					return nil
				}
			}
		})
	}, OnNodes(1))
	l.MustConnect("s", "src", "sink")
	rt, err := NewRuntime(l, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cluster.LinkBytes(0, 1); got != 1000 {
		t.Fatalf("LinkBytes(0,1) = %d, want 1000", got)
	}
}

func TestSameNodeTrafficIsFree(t *testing.T) {
	cluster, _ := simnet.New(simnet.Config{Nodes: 2})
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			ctx.Write("s", Buffer{Value: 1, Bytes: 4096})
			return nil
		})
	}, OnNodes(1))
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				if _, ok := ctx.Read("s"); !ok {
					return nil
				}
			}
		})
	}, OnNodes(1))
	l.MustConnect("s", "src", "sink")
	rt, _ := NewRuntime(l, cluster)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cluster.TotalNetworkBytes(); got != 0 {
		t.Fatalf("network bytes = %d, want 0 for co-located filters", got)
	}
}

func TestStreamStats(t *testing.T) {
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for i := 0; i < 7; i++ {
				ctx.Write("s", Buffer{Data: []byte("abc")})
			}
			return nil
		})
	})
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				if _, ok := ctx.Read("s"); !ok {
					return nil
				}
			}
		})
	})
	l.MustConnect("s", "src", "sink")
	rt, _ := NewRuntime(l, nil)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	if len(stats) != 1 || stats[0].Buffers != 7 || stats[0].Bytes != 21 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestWireBytesDefault(t *testing.T) {
	b := Buffer{Data: []byte("hello")}
	if b.WireBytes() != 5 {
		t.Fatalf("WireBytes = %d, want 5", b.WireBytes())
	}
	b.Bytes = 99
	if b.WireBytes() != 99 {
		t.Fatalf("WireBytes = %d, want 99", b.WireBytes())
	}
}

func TestReadWrongRolePanics(t *testing.T) {
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			defer func() {
				if recover() == nil {
					panic("expected role panic")
				}
			}()
			ctx.Read("s") // src is the producer, not consumer
			return nil
		})
	})
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				if _, ok := ctx.Read("s"); !ok {
					return nil
				}
			}
		})
	})
	l.MustConnect("s", "src", "sink")
	rt, _ := NewRuntime(l, nil)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastDeliversToEveryCopy(t *testing.T) {
	const copies, n = 3, 40
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for i := 0; i < n; i++ {
				ctx.Write("bc", Buffer{Value: i, Bytes: 8})
			}
			return nil
		})
	})
	var mu sync.Mutex
	perCopy := make([]int, copies)
	sums := make([]int, copies)
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				b, ok := ctx.Read("bc")
				if !ok {
					return nil
				}
				mu.Lock()
				perCopy[ctx.CopyID()]++
				sums[ctx.CopyID()] += b.Value.(int)
				mu.Unlock()
			}
		})
	}, Copies(copies))
	l.MustConnect("bc", "src", "sink", Mode(Broadcast))
	rt, err := NewRuntime(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	wantSum := n * (n - 1) / 2
	for c := 0; c < copies; c++ {
		if perCopy[c] != n {
			t.Errorf("copy %d received %d buffers, want %d", c, perCopy[c], n)
		}
		if sums[c] != wantSum {
			t.Errorf("copy %d sum %d, want %d", c, sums[c], wantSum)
		}
	}
	// Stream stats count one entry per delivered buffer.
	if s := rt.Stats(); s[0].Buffers != int64(copies*n) {
		t.Errorf("stream buffers = %d, want %d", s[0].Buffers, copies*n)
	}
}

func TestWriteToOnBroadcastPanicsBecomesError(t *testing.T) {
	l := NewLayout()
	l.MustAddFilter("src", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			ctx.WriteTo("bc", 0, Buffer{Value: 1})
			return nil
		})
	})
	l.MustAddFilter("sink", func() Filter {
		return FilterFunc(func(ctx *Context) error {
			for {
				if _, ok := ctx.Read("bc"); !ok {
					return nil
				}
			}
		})
	})
	l.MustConnect("bc", "src", "sink", Mode(Broadcast))
	rt, _ := NewRuntime(l, nil)
	if err := rt.Run(); err == nil {
		t.Fatal("WriteTo on broadcast stream did not error")
	}
}
